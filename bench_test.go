// Benchmarks regenerating the paper's tables and ablating the design
// choices DESIGN.md calls out.
//
//   - BenchmarkTableI: graph generation + property computation (Table I).
//   - BenchmarkSuite: one sub-benchmark per (mode, kernel, graph, framework)
//     cell — the raw material of Tables IV and V. Table IV is the per-cell
//     minimum over frameworks; Table V is each framework's time relative to
//     the GAP rows.
//   - BenchmarkAblation*: the §VI levers — bucket fusion, async vs
//     bulk-synchronous execution, CC algorithm families, Jacobi vs
//     Gauss-Seidel, 32- vs 64-bit indices, relabeling, direction
//     optimization.
//
// The input scale is GAPBENCH_SCALE (log2 vertices, default 10) so the full
// sweep stays tractable; `cmd/gapbench -table IV -scale 12` produces the
// EXPERIMENTS.md numbers at the default reporting scale.
package gapbench_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"gapbench/internal/core"
	"gapbench/internal/galois"
	"gapbench/internal/gap"
	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/graphit"
	"gapbench/internal/grb"
	"gapbench/internal/kernel"
	"gapbench/internal/lagraph"
	"gapbench/internal/par"
)

func benchScale() int {
	if s := os.Getenv("GAPBENCH_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 4 && v <= 24 {
			return v
		}
	}
	return 10
}

var loadInputs = sync.OnceValue(func() []*core.Input {
	specs := core.DefaultSuite(benchScale())
	inputs := make([]*core.Input, len(specs))
	for i, spec := range specs {
		in, err := core.LoadInput(spec)
		if err != nil {
			panic(err)
		}
		inputs[i] = in
	}
	return inputs
})

func inputByName(name string) *core.Input {
	for _, in := range loadInputs() {
		if in.Spec.Name == name {
			return in
		}
	}
	panic("unknown benchmark graph " + name)
}

// benchOptions mirrors core.Runner's rule sets with a fixed worker count so
// results are comparable across hosts.
func benchOptions(in *core.Input, mode kernel.Mode) kernel.Options {
	opt := kernel.Options{Mode: mode, Delta: in.Spec.Delta, Workers: 8, UndirectedView: in.Undirected}
	if mode == kernel.Optimized {
		opt.GraphName = in.Spec.Name
		opt.RelabeledView = in.Relabeled
	}
	return opt
}

// BenchmarkTableI measures generating each benchmark graph and computing its
// Table I properties.
func BenchmarkTableI(b *testing.B) {
	for _, spec := range core.DefaultSuite(benchScale()) {
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := generate.ByName(spec.Name, spec.Scale, spec.Seed)
				if err != nil {
					b.Fatal(err)
				}
				_ = graph.ComputeStats(g)
			}
		})
	}
}

// BenchmarkSuite times every Table IV/V cell.
func BenchmarkSuite(b *testing.B) {
	frameworks := core.Frameworks()
	inputs := loadInputs()
	core.PrepareViews(frameworks, inputs)
	for _, mode := range []kernel.Mode{kernel.Baseline, kernel.Optimized} {
		for _, k := range core.Kernels {
			for _, in := range inputs {
				for _, fw := range frameworks {
					name := fmt.Sprintf("%s/%s/%s/%s", mode, k, in.Spec.Name, fw.Name())
					b.Run(name, func(b *testing.B) {
						runCellBench(b, fw, k, in, mode)
					})
				}
			}
		}
	}
}

func runCellBench(b *testing.B, fw kernel.Framework, k core.Kernel, in *core.Input, mode kernel.Mode) {
	opt := benchOptions(in, mode)
	g := in.Graph
	b.ReportMetric(float64(g.NumEdges()), "edges")
	switch k {
	case core.BFS:
		for i := 0; i < b.N; i++ {
			_ = fw.BFS(g, in.Sources[i%len(in.Sources)], opt)
		}
	case core.SSSP:
		for i := 0; i < b.N; i++ {
			_ = fw.SSSP(g, in.Sources[i%len(in.Sources)], opt)
		}
	case core.PR:
		for i := 0; i < b.N; i++ {
			_ = fw.PR(g, opt)
		}
	case core.CC:
		for i := 0; i < b.N; i++ {
			_ = fw.CC(g, opt)
		}
	case core.BC:
		for i := 0; i < b.N; i++ {
			_ = fw.BC(g, in.BCRoots[i%len(in.BCRoots)], opt)
		}
	case core.TC:
		for i := 0; i < b.N; i++ {
			_ = fw.TC(g, opt)
		}
	}
}

// BenchmarkAblationBucketFusion isolates the bucket-fusion optimization
// (GraphIt-originated, adopted by the GAP reference) on the high-diameter
// Road graph, where §VI reports it cuts synchronization rounds ~10x.
func BenchmarkAblationBucketFusion(b *testing.B) {
	in := inputByName(generate.NameRoad)
	for _, fused := range []bool{true, false} {
		name := "Unfused"
		if fused {
			name = "Fused"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = gap.DeltaStep(in.Graph, in.Sources[i%len(in.Sources)], in.Spec.Delta, kernel.Options{Workers: 8}, fused)
			}
		})
	}
}

// BenchmarkAblationLightHeavy contrasts the GAP reference's simplified
// delta-stepping (all edges per bucket pass) with the full Meyer-Sanders
// light/heavy split, across a low-delta (many buckets) and high-delta
// (heavy re-relaxation risk) setting on Road.
func BenchmarkAblationLightHeavy(b *testing.B) {
	in := inputByName(generate.NameRoad)
	for _, delta := range []kernel.Dist{16, 256} {
		b.Run(fmt.Sprintf("Simplified/delta=%d", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = gap.DeltaStep(in.Graph, in.Sources[i%len(in.Sources)], delta, kernel.Options{Workers: 8}, true)
			}
		})
		b.Run(fmt.Sprintf("LightHeavy/delta=%d", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = gap.DeltaStepLightHeavy(in.Graph, in.Sources[i%len(in.Sources)], delta, kernel.Options{Workers: 8})
			}
		})
	}
}

// BenchmarkAblationAsyncBFS contrasts Galois' asynchronous and
// bulk-synchronous BFS on the high-diameter Road graph and the low-diameter
// Urand graph — the crossover behind its Baseline Urand collapse (§V-A).
func BenchmarkAblationAsyncBFS(b *testing.B) {
	for _, gname := range []string{generate.NameRoad, generate.NameUrand} {
		in := inputByName(gname)
		b.Run("Async/"+gname, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = galois.AsyncBFS(in.Graph, in.Sources[i%len(in.Sources)], 8)
			}
		})
		b.Run("Sync/"+gname, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = galois.SyncBFS(in.Graph, in.Sources[i%len(in.Sources)], 8)
			}
		})
	}
}

// BenchmarkAblationCC races the four CC algorithm families of Table III on
// Road and Urand: sampling Afforest (GAP/Galois/NWGraph), label propagation
// (GraphIt — §V-C's biggest gap), FastSV (LAGraph), and hybrid
// Shiloach-Vishkin (GKC).
func BenchmarkAblationCC(b *testing.B) {
	algos := []struct {
		name string
		fw   kernel.Framework
	}{
		{"Afforest", gap.New()},
		{"LabelProp", graphit.New()},
		{"FastSV", lagraph.New()},
		{"HybridSV", core.FrameworkByName("GKC")},
	}
	for _, gname := range []string{generate.NameRoad, generate.NameUrand} {
		in := inputByName(gname)
		for _, a := range algos {
			if p, ok := a.fw.(kernel.Preparer); ok {
				p.Prepare(in.Graph, in.Undirected)
			}
			b.Run(a.name+"/"+gname, func(b *testing.B) {
				opt := benchOptions(in, kernel.Baseline)
				for i := 0; i < b.N; i++ {
					_ = a.fw.CC(in.Graph, opt)
				}
			})
		}
	}
}

// BenchmarkAblationPR contrasts Jacobi (GAP) with Gauss-Seidel (Galois) on
// the high-diameter Road graph, where §V-D reports the in-place updates
// converge in far fewer sweeps, and on Kron, where (at this reproduction's
// reduced scale) fast mixing inverts the advantage — see EXPERIMENTS.md.
func BenchmarkAblationPR(b *testing.B) {
	for _, gname := range []string{generate.NameRoad, generate.NameKron} {
		in := inputByName(gname)
		b.Run("Jacobi/"+gname, func(b *testing.B) {
			opt := benchOptions(in, kernel.Baseline)
			for i := 0; i < b.N; i++ {
				_ = gap.New().PR(in.Graph, opt)
			}
		})
		b.Run("GaussSeidel/"+gname, func(b *testing.B) {
			opt := benchOptions(in, kernel.Baseline)
			for i := 0; i < b.N; i++ {
				_ = galois.New().PR(in.Graph, opt)
			}
		})
		b.Run("GAPProposedGS/"+gname, func(b *testing.B) {
			// The §VI-recommended Gauss-Seidel reference variant.
			opt := benchOptions(in, kernel.Baseline)
			for i := 0; i < b.N; i++ {
				_ = gap.PageRankGS(in.Graph, opt)
			}
		})
	}
}

// BenchmarkAblationIndexWidth measures one structural SpMV sweep through
// 32-bit CSR (the substrate all frameworks but GraphBLAS use) against the
// 64-bit GraphBLAS matrix — the index-width tax §V discusses.
func BenchmarkAblationIndexWidth(b *testing.B) {
	in := inputByName(generate.NameKron)
	g := in.Graph
	n := int(g.NumNodes())
	b.Run("32bit", func(b *testing.B) {
		x := make([]float64, n)
		for i := range x {
			x[i] = 1
		}
		out := make([]float64, n)
		for i := 0; i < b.N; i++ {
			for v := 0; v < n; v++ {
				sum := 0.0
				for _, u := range g.InNeighbors(graph.NodeID(v)) {
					sum += x[u]
				}
				out[v] = sum
			}
		}
	})
	b.Run("64bit", func(b *testing.B) {
		at := grb.FromGraph(g, true, false)
		x := grb.NewFull[float64](int64(n), 1)
		for i := 0; i < b.N; i++ {
			_ = grb.MxVFull(par.Default(), at, x, grb.PlusFirst(), 1)
		}
	})
}

// BenchmarkAblationRelabel measures the triangle count on the power-law
// Twitter graph with relabeling included (Baseline rules), excluded
// (Optimized rules), and skipped entirely — the §V-F lever.
func BenchmarkAblationRelabel(b *testing.B) {
	in := inputByName(generate.NameTwitter)
	b.Run("RelabelTimed", func(b *testing.B) {
		opt := benchOptions(in, kernel.Baseline)
		for i := 0; i < b.N; i++ {
			_ = gap.New().TC(in.Graph, opt)
		}
	})
	b.Run("RelabelUntimed", func(b *testing.B) {
		opt := benchOptions(in, kernel.Optimized)
		for i := 0; i < b.N; i++ {
			_ = gap.New().TC(in.Graph, opt)
		}
	})
	b.Run("NoRelabel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = gap.OrderedCountBench(in.Undirected, 8)
		}
	})
}

// forkJoinForBlocked is the pre-machine par.ForBlocked kept as an ablation
// reference: a fresh goroutine fork-join per region, the launch discipline
// every par helper used before the persistent worker pool existed. The
// machine replaced it precisely because this spawn+join cost is paid once
// per region — per BFS level, per delta-stepping bucket — which is the
// per-round overhead the paper's §V-A Road analysis attributes the
// high-diameter slowdowns to.
func forkJoinForBlocked(n, workers int, fn func(lo, hi int)) {
	if workers <= 1 || n < 2 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// BenchmarkAblationRegionLaunch ablates the PR's executor refactor: the same
// blocked region run on the persistent machine (channel wake of parked
// workers) versus a per-region goroutine fork-join, across region sizes and
// round counts. The shapes mirror real kernel behavior — many tiny regions
// is a high-diameter BFS/SSSP on Road (thousands of levels with small
// frontiers), few large regions is PageRank on Kron (a handful of full-graph
// sweeps). Pooled dispatch should win the small-region/many-round corner and
// be a wash when regions are large enough to amortize the launch.
func BenchmarkAblationRegionLaunch(b *testing.B) {
	const workers = 8
	m := par.NewMachine(workers)
	defer m.Close()
	shapes := []struct{ size, rounds int }{
		{256, 2048},  // Road-like: tiny frontiers, thousands of rounds
		{4096, 256},  // mid-size frontiers
		{131072, 16}, // Kron/Urand-like: few full sweeps
	}
	data := make([]int64, 131072)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i]++
		}
	}
	for _, sh := range shapes {
		name := fmt.Sprintf("size=%d/rounds=%d", sh.size, sh.rounds)
		b.Run("ForkJoin/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for r := 0; r < sh.rounds; r++ {
					forkJoinForBlocked(sh.size, workers, body)
				}
			}
		})
		b.Run("Pooled/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for r := 0; r < sh.rounds; r++ {
					m.ForBlocked(sh.size, workers, body)
				}
			}
		})
	}
}

// BenchmarkAblationDirectionOpt contrasts GraphIt's direction-optimizing
// schedule with the push-only schedule its Optimized Road BFS uses (§V-A:
// "it does not use direction optimization (always push)").
func BenchmarkAblationDirectionOpt(b *testing.B) {
	for _, gname := range []string{generate.NameRoad, generate.NameKron} {
		in := inputByName(gname)
		b.Run("DirOpt/"+gname, func(b *testing.B) {
			opt := benchOptions(in, kernel.Baseline)
			for i := 0; i < b.N; i++ {
				_ = graphit.New().BFS(in.Graph, in.Sources[i%len(in.Sources)], opt)
			}
		})
		b.Run("PushOnly/"+gname, func(b *testing.B) {
			opt := benchOptions(in, kernel.Optimized)
			opt.GraphName = "Road" // forces the push-only schedule
			for i := 0; i < b.N; i++ {
				_ = graphit.New().BFS(in.Graph, in.Sources[i%len(in.Sources)], opt)
			}
		})
	}
}

// build_bench_test.go: benchmarks for the counting-sort CSR ingest pipeline.
//
// BenchmarkBuild times graph construction from in-memory edge lists across
// the three GAP degree shapes (Kron: heavy-tail, Urand: concentrated, Road:
// bounded), directed and undirected, weighted and unweighted — with a
// retained copy of the pre-pipeline sort-based builder (SortRef) as the
// baseline every Counting cell is measured against. Build time is *untimed*
// under the GAP rules (EXPERIMENTS.md records the accounting), but it
// dominates wall-clock for short benchmark runs, which is why the pipeline
// exists.
//
// BenchmarkTranspose times grb.Matrix.Transpose, the same histogram/scan/
// scatter pipeline under 64-bit indices.
package gapbench_test

import (
	"fmt"
	"sort"
	"testing"

	"gapbench/internal/graph"
	"gapbench/internal/grb"
)

// buildBenchScale gives 2^14 vertices; with edgeFactor 16 that is 2^18
// directed edges per Kron/Urand list — the ISSUE's minimum evidence size.
const (
	buildBenchScale = 14
	edgeFactor      = 16
)

// splitmix64 is the generator used throughout; self-contained so benchmark
// inputs never drift with the generate package.
type benchRNG struct{ x uint64 }

func (r *benchRNG) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *benchRNG) weight() graph.Weight { return graph.Weight(1 + r.next()%255) }

// kronBenchEdges draws an RMAT/Kronecker-shaped list (a=0.57, b=c=0.19):
// heavy-tail degrees, many duplicate edges — the adversarial shape for both
// the comparison sort (long equal runs) and the segment sorts (hub rows).
func kronBenchEdges(scale, ef int, seed uint64) []graph.WEdge {
	r := &benchRNG{x: seed}
	n := 1 << scale
	m := n * ef
	edges := make([]graph.WEdge, m)
	for i := range edges {
		var u, v int
		for bit := 0; bit < scale; bit++ {
			p := r.next() % 100
			switch {
			case p < 57: // a: top-left
			case p < 76: // b: top-right
				v |= 1 << bit
			case p < 95: // c: bottom-left
				u |= 1 << bit
			default: // d: bottom-right
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges[i] = graph.WEdge{U: graph.NodeID(u), V: graph.NodeID(v), W: r.weight()}
	}
	return edges
}

// urandBenchEdges draws endpoints uniformly: Erdős–Rényi-shaped,
// concentrated degrees, few duplicates.
func urandBenchEdges(scale, ef int, seed uint64) []graph.WEdge {
	r := &benchRNG{x: seed}
	n := uint64(1) << scale
	edges := make([]graph.WEdge, int(n)*ef)
	for i := range edges {
		edges[i] = graph.WEdge{
			U: graph.NodeID(r.next() % n),
			V: graph.NodeID(r.next() % n),
			W: r.weight(),
		}
	}
	return edges
}

// roadBenchEdges builds a ring with sparse random chords, both arcs listed —
// bounded degree, nearly duplicate-free, the Road shape.
func roadBenchEdges(scale int, seed uint64) []graph.WEdge {
	r := &benchRNG{x: seed}
	n := uint64(1) << scale
	edges := make([]graph.WEdge, 0, int(n)*3)
	for u := uint64(0); u < n; u++ {
		v := (u + 1) % n
		w := graph.Weight(1 + r.next()%255)
		edges = append(edges,
			graph.WEdge{U: graph.NodeID(u), V: graph.NodeID(v), W: w},
			graph.WEdge{U: graph.NodeID(v), V: graph.NodeID(u), W: w})
		if r.next()%8 == 0 { // occasional chord, like a highway segment
			c := r.next() % n
			cw := graph.Weight(1 + r.next()%255)
			edges = append(edges,
				graph.WEdge{U: graph.NodeID(u), V: graph.NodeID(c), W: cw},
				graph.WEdge{U: graph.NodeID(c), V: graph.NodeID(u), W: cw})
		}
	}
	return edges
}

// sortRefBuild is the pre-pipeline builder, kept verbatim (serialized) as
// the benchmark baseline: materialize the directed edge multiset, comparison
// sort by (U,V,W), global dedup keeping the min-weight duplicate, pack, and
// for directed graphs repeat on the transposed list.
func sortRefBuild(edges []graph.WEdge, n int32, directed bool) {
	work := make([]graph.WEdge, 0, len(edges)*2)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		work = append(work, e)
		if !directed {
			work = append(work, graph.WEdge{U: e.V, V: e.U, W: e.W})
		}
	}
	sortRefCSR(n, work)
	if directed {
		tr := make([]graph.WEdge, len(work))
		for i, e := range work {
			tr[i] = graph.WEdge{U: e.V, V: e.U, W: e.W}
		}
		sortRefCSR(n, tr)
	}
}

func sortRefCSR(n int32, edges []graph.WEdge) ([]int64, []graph.NodeID, []graph.Weight) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		if edges[i].V != edges[j].V {
			return edges[i].V < edges[j].V
		}
		return edges[i].W < edges[j].W
	})
	kept := edges[:0]
	for i, e := range edges {
		if i > 0 && e.U == edges[i-1].U && e.V == edges[i-1].V {
			continue
		}
		kept = append(kept, e)
	}
	index := make([]int64, n+1)
	for _, e := range kept {
		index[e.U+1]++
	}
	for i := int32(0); i < n; i++ {
		index[i+1] += index[i]
	}
	neigh := make([]graph.NodeID, len(kept))
	weight := make([]graph.Weight, len(kept))
	for i, e := range kept {
		neigh[i] = e.V
		weight[i] = e.W
	}
	return index, neigh, weight
}

func BenchmarkBuild(b *testing.B) {
	shapes := []struct {
		name  string
		edges []graph.WEdge
		n     int32
	}{
		{"Kron", kronBenchEdges(buildBenchScale, edgeFactor, 0x1234), 1 << buildBenchScale},
		{"Urand", urandBenchEdges(buildBenchScale, edgeFactor, 0x5678), 1 << buildBenchScale},
		{"Road", roadBenchEdges(buildBenchScale, 0x9abc), 1 << buildBenchScale},
	}
	for _, sh := range shapes {
		for _, directed := range []bool{true, false} {
			dir := "Undirected"
			if directed {
				dir = "Directed"
			}
			for _, weighted := range []bool{true, false} {
				wt := "Unweighted"
				if weighted {
					wt = "Weighted"
				}
				opt := graph.BuildOptions{NumNodes: sh.n, Directed: directed}
				var unweighted []graph.Edge
				if !weighted {
					unweighted = make([]graph.Edge, len(sh.edges))
					for i, e := range sh.edges {
						unweighted[i] = graph.Edge{U: e.U, V: e.V}
					}
				}
				b.Run(fmt.Sprintf("%s/%s/%s/Counting", sh.name, dir, wt), func(b *testing.B) {
					b.ReportMetric(float64(len(sh.edges)), "edges/op")
					for i := 0; i < b.N; i++ {
						var err error
						if weighted {
							_, err = graph.BuildWeighted(sh.edges, opt)
						} else {
							_, err = graph.Build(unweighted, opt)
						}
						if err != nil {
							b.Fatal(err)
						}
					}
				})
				b.Run(fmt.Sprintf("%s/%s/%s/SortRef", sh.name, dir, wt), func(b *testing.B) {
					b.ReportMetric(float64(len(sh.edges)), "edges/op")
					for i := 0; i < b.N; i++ {
						in := sh.edges
						if !weighted {
							// The old Build also went through the weighted
							// path with zero weights.
							in = make([]graph.WEdge, len(sh.edges))
							for j, e := range sh.edges {
								in[j] = graph.WEdge{U: e.U, V: e.V}
							}
						}
						sortRefBuild(in, sh.n, directed)
					}
				})
			}
		}
	}
}

func BenchmarkTranspose(b *testing.B) {
	g, err := graph.BuildWeighted(kronBenchEdges(buildBenchScale, edgeFactor, 0x1234),
		graph.BuildOptions{NumNodes: 1 << buildBenchScale, Directed: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, weighted := range []bool{false, true} {
		name := "Structural"
		if weighted {
			name = "Weighted"
		}
		a := grb.FromGraph(g, false, weighted)
		b.Run(name, func(b *testing.B) {
			b.ReportMetric(float64(a.NVals()), "vals/op")
			for i := 0; i < b.N; i++ {
				_ = a.Transpose()
			}
		})
	}
}

// Command gapbench runs the GAP benchmark evaluation and regenerates the
// paper's tables.
//
// Usage examples:
//
//	gapbench -table I                      # graph properties (Table I)
//	gapbench -table II                     # framework attributes
//	gapbench -table III                    # algorithm choices
//	gapbench -table IV -scale 12 -trials 3 # fastest times per cell
//	gapbench -table V  -scale 12           # speedup heat map vs GAP
//	gapbench -table all -csv results.csv   # everything + CSV export
//	gapbench -graphs Road,Kron -kernels BFS,SSSP -frameworks GAP,Galois
//	gapbench -graphfile g/kron-s13-seed42.sg,g/road-s14-seed42.sg  # mmap saved graphs
//	gapbench -savegraphs ./graphs          # save every input as format-v2 .sg
//	gapbench -tune -tunefile sched.json    # autotune GraphIt schedules, persist them
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gapbench/internal/core"
	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/graphit"
	"gapbench/internal/kernel"
	"gapbench/internal/report"
	"gapbench/internal/tune"
)

func main() {
	var (
		tableFlag  = flag.String("table", "all", "table to produce: I, II, III, IV, V, or all")
		scale      = flag.Int("scale", 12, "base graph scale (log2 vertices); Road/Kron/Urand run 1-2 scales larger, per Table I proportions")
		trials     = flag.Int("trials", 3, "timed trials per cell")
		graphsFlag = flag.String("graphs", "", "comma-separated graph subset (default: all five)")
		kernsFlag  = flag.String("kernels", "", "comma-separated kernel subset (default: all six)")
		fwFlag     = flag.String("frameworks", "", "comma-separated framework subset (default: all six)")
		modeFlag   = flag.String("mode", "both", "baseline, optimized, or both")
		csvPath    = flag.String("csv", "", "write complete results CSV to this path")
		mdPath     = flag.String("md", "", "write Tables IV+V as Markdown to this path")
		graphDir   = flag.String("graphdir", "", "cache directory for serialized graphs (generate once, reload after)")
		graphFiles = flag.String("graphfile", "", "comma-separated serialized graph files to benchmark instead of generating the suite (format-v2 files load zero-copy via mmap)")
		saveGraphs = flag.String("savegraphs", "", "save every input graph to this directory as format-v2 .sg files")
		noVerify   = flag.Bool("noverify", false, "skip oracle verification of results")
		quiet      = flag.Bool("q", false, "suppress per-cell progress lines")
		timeout    = flag.Duration("timeout", 0, "per-trial deadline (0 = none); overruns mark the cell TimedOut instead of hanging the run")
		journal    = flag.String("journal", "", "append each completed cell to this JSONL journal")
		resume     = flag.Bool("resume", false, "replay cells already in -journal instead of re-running them")
		doTune     = flag.Bool("tune", false, "autotune GraphIt schedules for the selected inputs and kernels before benchmarking, persisting them to -tunefile")
		tuneFile   = flag.String("tunefile", "", "persistent schedule store (JSON): -tune writes it; any run with it set loads stored schedules for Optimized-mode cells")
	)
	flag.Parse()

	if *resume && *journal == "" {
		fmt.Fprintln(os.Stderr, "gapbench: -resume requires -journal")
		os.Exit(1)
	}
	if *doTune && *tuneFile == "" {
		fmt.Fprintln(os.Stderr, "gapbench: -tune requires -tunefile")
		os.Exit(1)
	}
	if err := run(*tableFlag, *scale, *trials, *graphsFlag, *kernsFlag, *fwFlag, *modeFlag, *csvPath, *mdPath, *graphDir, *graphFiles, *saveGraphs, !*noVerify, *quiet, *timeout, *journal, *resume, *doTune, *tuneFile); err != nil {
		fmt.Fprintln(os.Stderr, "gapbench:", err)
		os.Exit(1)
	}
}

func run(tableSel string, scale, trials int, graphsCSV, kernelsCSV, fwCSV, modeSel, csvPath, mdPath, graphDir, graphFiles, saveGraphs string, doVerify, quiet bool, timeout time.Duration, journal string, resume, doTune bool, tuneFile string) error {
	frameworks := core.Frameworks()
	if fwCSV != "" {
		var subset []kernel.Framework
		for _, name := range splitCSV(fwCSV) {
			f := core.FrameworkByName(name)
			if f == nil {
				return fmt.Errorf("unknown framework %q (have %v)", name, core.FrameworkNames())
			}
			subset = append(subset, f)
		}
		frameworks = subset
	}

	// Static tables need no benchmark runs.
	wantTable := func(name string) bool { return tableSel == "all" || strings.EqualFold(tableSel, name) }
	if wantTable("II") {
		fmt.Println(report.TableII(frameworks))
	}
	if wantTable("III") {
		fmt.Println(report.TableIII(frameworks))
	}

	specs := core.DefaultSuite(scale)
	if graphsCSV != "" {
		var subset []core.GraphSpec
		for _, name := range splitCSV(graphsCSV) {
			found := false
			for _, s := range specs {
				if strings.EqualFold(s.Name, name) {
					subset = append(subset, s)
					found = true
				}
			}
			if !found {
				return fmt.Errorf("unknown graph %q (have %v)", name, generate.Names)
			}
		}
		specs = subset
	}

	needGraphs := wantTable("I") || wantTable("IV") || wantTable("V") || csvPath != "" || mdPath != ""
	if !needGraphs {
		return nil
	}

	var inputs []*core.Input
	defer func() {
		for _, in := range inputs {
			if err := in.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "gapbench: closing %s: %v\n", in.Spec.Name, err)
			}
		}
	}()
	var stats []graph.Stats
	var names []string
	if graphFiles != "" {
		for _, path := range splitCSV(graphFiles) {
			in, err := core.LoadInputFile(path)
			if err != nil {
				return err
			}
			inputs = append(inputs, in)
			names = append(names, in.Spec.Name)
		}
	} else {
		if !quiet {
			fmt.Fprintf(os.Stderr, "generating %d graphs at base scale %d...\n", len(specs), scale)
		}
		for _, spec := range specs {
			in, err := core.LoadCachedInput(spec, graphDir)
			if err != nil {
				return err
			}
			inputs = append(inputs, in)
		}
		for _, spec := range specs {
			names = append(names, spec.Name)
		}
	}
	if saveGraphs != "" {
		if err := os.MkdirAll(saveGraphs, 0o755); err != nil {
			return err
		}
		for _, in := range inputs {
			path := filepath.Join(saveGraphs, core.GraphFileName(in.Spec, "sg"))
			in.Graph.SetProvenance(in.Spec.Name, uint32(in.Spec.Scale), in.Spec.Seed)
			if err := in.Graph.SaveSG(path); err != nil {
				return err
			}
			if in.File == "" {
				in.File = path
			}
			if !quiet {
				fmt.Fprintf(os.Stderr, "saved %s\n", path)
			}
		}
	}
	if wantTable("I") {
		for _, in := range inputs {
			stats = append(stats, graph.ComputeStats(in.Graph))
		}
	}
	if wantTable("I") {
		fmt.Println(report.TableI(names, stats))
	}

	if !(wantTable("IV") || wantTable("V") || csvPath != "" || mdPath != "") {
		return nil
	}

	var kernels []core.Kernel
	if kernelsCSV != "" {
		for _, name := range splitCSV(kernelsCSV) {
			k := core.Kernel(strings.ToUpper(name))
			ok := false
			for _, known := range core.Kernels {
				if k == known {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("unknown kernel %q (have %v)", name, core.Kernels)
			}
			kernels = append(kernels, k)
		}
	}

	var modes []kernel.Mode
	switch strings.ToLower(modeSel) {
	case "baseline":
		modes = []kernel.Mode{kernel.Baseline}
	case "optimized":
		modes = []kernel.Mode{kernel.Optimized}
	case "both":
		modes = []kernel.Mode{kernel.Baseline, kernel.Optimized}
	default:
		return fmt.Errorf("unknown mode %q (want baseline, optimized, or both)", modeSel)
	}

	runner := core.NewRunner()
	runner.Trials = trials
	runner.Verify = doVerify
	runner.Timeout = timeout
	runner.JournalPath = journal
	runner.Resume = resume
	defer runner.Close()                  // park the per-mode machines
	core.PrepareViews(frameworks, inputs) // untimed load-phase conversions

	if tuneFile != "" {
		store, err := tune.LoadStore(tuneFile)
		if err != nil {
			return err
		}
		if doTune {
			if err := tuneSchedules(store, inputs, kernels, trials, runner.OptimizedWorkers); err != nil {
				return err
			}
		}
		runner.Schedules = store
	}

	progress := func(r core.Result) {
		if quiet {
			return
		}
		status := "ok"
		switch {
		case r.Status != core.OK:
			status = r.Status.String() + ": " + r.Err
		case r.Resumed:
			status = "ok (resumed)"
		case r.Retries > 0:
			status = fmt.Sprintf("ok (%d retries)", r.Retries)
		}
		fmt.Fprintf(os.Stderr, "%-9s %-10s %-4s %-7s best=%.4fs avg=%.4fs %s\n",
			r.Mode, r.Framework, r.Kernel, r.Graph, r.Seconds, r.AvgSeconds, status)
	}
	results, err := runner.RunSuite(frameworks, inputs, modes, kernels, progress)
	if err != nil {
		return err
	}

	if wantTable("IV") {
		fmt.Println(report.TableIV(results, names))
	}
	if wantTable("V") {
		fmt.Println(report.TableV(results, names))
	}
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(report.CSV(results)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", csvPath)
	}
	if mdPath != "" {
		md := report.MarkdownTableIV(results, names) + report.MarkdownTableV(results, names)
		if err := os.WriteFile(mdPath, []byte(md), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", mdPath)
	}
	for _, r := range results {
		if r.Status != core.OK {
			return fmt.Errorf("cells failed (first: %s %s on %s [%s]: %s)",
				r.Framework, r.Kernel, r.Graph, r.Status, r.Err)
		}
	}
	return nil
}

// tunableKernels is the subset of the suite the GraphIt scheduling language
// covers (TC has no schedule space).
var tunableKernels = map[core.Kernel]bool{"BFS": true, "SSSP": true, "PR": true, "CC": true, "BC": true}

// tuneSchedules runs the autotuner for every (input, kernel) pair not already
// covered by the store — stored entries are keyed by the graph's content
// epoch, so a store tuned against different graph bytes misses cleanly and
// gets re-tuned — then persists the store.
func tuneSchedules(store *tune.Store, inputs []*core.Input, kernels []core.Kernel, trials, workers int) error {
	if len(kernels) == 0 {
		kernels = core.Kernels
	}
	mode := kernel.Optimized.String()
	tuned, reused := 0, 0
	for _, in := range inputs {
		for _, k := range kernels {
			if !tunableKernels[k] {
				continue
			}
			kname := strings.ToLower(string(k))
			if _, ok := store.Lookup(kname, in.Graph.Epoch(), mode); ok {
				reused++
				continue
			}
			src := graph.NodeID(0)
			if len(in.Sources) > 0 {
				src = in.Sources[0]
			}
			best, trace := graphit.Autotune(in.Graph, kname, src, trials, workers)
			store.Put(kname, in.Graph.Epoch(), mode, best, tune.BestSeconds(trace, best))
			tuned++
		}
	}
	if err := store.Save(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tune: tuned %d schedules, reused %d from %s\n", tuned, reused, store.Path())
	return nil
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Input acquisition (cache-or-generate, mmap-load with provenance specs)
// lives in internal/core (LoadCachedInput, LoadInputFile) so gapbench and the
// gapd daemon mount graphs identically.

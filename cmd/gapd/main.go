// Command gapd is the fault-tolerant graph-query daemon: it mounts suite
// graphs once (mmap for format-v2 files, generate-and-cache otherwise) into
// shared immutable CSRs and serves concurrent kernel queries — BFS-from-
// source, SSSP, PR top-K, CC component-of — over line-delimited JSON on a
// TCP or unix socket.
//
// Robustness model (internal/serve, DESIGN.md §11): a bounded machine-lease
// pool with admission control (token bucket + queue-depth watermark →
// immediate RESOURCE_EXHAUSTED), per-query deadline budgets, retry with
// exponential backoff + jitter, a circuit breaker quarantining a
// (framework, kernel) pair that keeps losing machines, and graceful
// SIGTERM/SIGINT drain under a hard deadline.
//
// Usage examples:
//
//	gapd -listen unix:/tmp/gapd.sock -graphs Road,Kron -scale 10
//	gapd -listen tcp:127.0.0.1:9736 -graphdir ./graphs -frameworks GAP,Galois
//	gapd -graphfile g/kron-s13-seed42.sg -pool 4 -workers 8 -budget 2s
//	gapd -rate 500 -burst 50 -journal served.jsonl
//
// Query with anything that speaks line-JSON:
//
//	echo '{"kernel":"BFS","graph":"Kron","source":7}' | nc -U /tmp/gapd.sock
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gapbench/internal/core"
	"gapbench/internal/generate"
	"gapbench/internal/kernel"
	"gapbench/internal/serve"
)

func main() {
	var (
		listenAddr = flag.String("listen", "tcp:127.0.0.1:9736", `listen address: "tcp:host:port" or "unix:/path/to.sock"`)
		graphsFlag = flag.String("graphs", "", "comma-separated suite graph subset to serve (default: all five)")
		scale      = flag.Int("scale", 10, "base graph scale when generating (log2 vertices)")
		graphDir   = flag.String("graphdir", "", "cache directory for serialized graphs (generate once, mmap after)")
		graphFiles = flag.String("graphfile", "", "comma-separated serialized graph files to serve instead of generating (format-v2 files load zero-copy via mmap)")
		fwFlag     = flag.String("frameworks", "GAP", "comma-separated frameworks to serve (first is the default backend)")

		poolSize = flag.Int("pool", 2, "machine-lease pool size (concurrent queries executing)")
		workers  = flag.Int("workers", 4, "workers per pooled machine")

		budget    = flag.Duration("budget", time.Second, "default per-query deadline budget")
		maxBudget = flag.Duration("maxbudget", 10*time.Second, "cap on client-requested budgets")
		grace     = flag.Duration("grace", 250*time.Millisecond, "grace past a fired deadline before a kernel's machine is abandoned")

		rate     = flag.Float64("rate", 0, "admission token-bucket rate in queries/sec (0 = unlimited)")
		burst    = flag.Int("burst", 0, "admission token-bucket burst (0 = one second of -rate)")
		maxQueue = flag.Int("maxqueue", 0, "admitted queries allowed to wait for a lease beyond the pool size (0 = 2x pool, negative = none)")

		breakerN        = flag.Int("breaker-threshold", 3, "consecutive machine abandonments that quarantine a (framework, kernel) pair (0 disables)")
		breakerCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "quarantine time before a probe query is let through")

		retries = flag.Int("retries", 1, "retry attempts per query for transient (panicked) failures")

		journal = flag.String("journal", "", "append every served query outcome to this JSONL journal (suite core.Result format)")
		drain   = flag.Duration("drain", 10*time.Second, "hard deadline for the SIGTERM/SIGINT graceful drain")
		seed    = flag.Uint64("seed", 1, "retry-jitter seed")
		quiet   = flag.Bool("q", false, "suppress operational log lines")
	)
	flag.Parse()
	if err := run(*listenAddr, *graphsFlag, *scale, *graphDir, *graphFiles, *fwFlag,
		*poolSize, *workers, *budget, *maxBudget, *grace, *rate, *burst, *maxQueue,
		*breakerN, *breakerCooldown, *retries, *journal, *drain, *seed, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "gapd:", err)
		os.Exit(1)
	}
}

func run(listenAddr, graphsCSV string, scale int, graphDir, graphFiles, fwCSV string,
	poolSize, workers int, budget, maxBudget, grace time.Duration,
	rate float64, burst, maxQueue int, breakerN int, breakerCooldown time.Duration,
	retries int, journal string, drain time.Duration, seed uint64, quiet bool) error {

	logf := log.New(os.Stderr, "gapd: ", log.LstdFlags).Printf
	if quiet {
		logf = func(string, ...any) {}
	}

	var frameworks []kernel.Framework
	for _, name := range splitCSV(fwCSV) {
		f := core.FrameworkByName(name)
		if f == nil {
			return fmt.Errorf("unknown framework %q (have %v)", name, core.FrameworkNames())
		}
		frameworks = append(frameworks, f)
	}
	if len(frameworks) == 0 {
		return fmt.Errorf("-frameworks named no framework")
	}

	var inputs []*core.Input
	defer func() {
		for _, in := range inputs {
			if err := in.Close(); err != nil {
				logf("closing %s: %v", in.Spec.Name, err)
			}
		}
	}()
	if graphFiles != "" {
		for _, path := range splitCSV(graphFiles) {
			in, err := core.LoadInputFile(path)
			if err != nil {
				return err
			}
			inputs = append(inputs, in)
			logf("mounted %s from %s (%d nodes, %d edges)", in.Spec.Name, path, in.Graph.NumNodes(), in.Graph.NumEdges())
		}
	} else {
		specs := core.DefaultSuite(scale)
		if graphsCSV != "" {
			var subset []core.GraphSpec
			for _, name := range splitCSV(graphsCSV) {
				found := false
				for _, s := range specs {
					if strings.EqualFold(s.Name, name) {
						subset = append(subset, s)
						found = true
					}
				}
				if !found {
					return fmt.Errorf("unknown graph %q (have %v)", name, generate.Names)
				}
			}
			specs = subset
		}
		for _, spec := range specs {
			in, err := core.LoadCachedInput(spec, graphDir)
			if err != nil {
				return err
			}
			inputs = append(inputs, in)
			logf("mounted %s (%d nodes, %d edges)", in.Spec.Name, in.Graph.NumNodes(), in.Graph.NumEdges())
		}
	}

	// Untimed load-phase conversion, same rule as the batch suite: no
	// framework pays its internal-representation build on a client's budget.
	core.PrepareViews(frameworks, inputs)

	cfg := serve.Config{
		PoolSize:      poolSize,
		Workers:       workers,
		DefaultBudget: budget,
		MaxBudget:     maxBudget,
		Grace:         grace,
		Admission:     serve.AdmissionConfig{Rate: rate, Burst: burst, MaxQueue: maxQueue},
		Breaker:       serve.BreakerConfig{Threshold: breakerN, Cooldown: breakerCooldown},
		Retry:         serve.RetryConfig{Policy: &core.RetryPolicy{MaxRetries: retries, RetryOn: func(s core.Status) bool { return s == core.Panicked }}},
		JournalPath:   journal,
		Seed:          seed,
		Logf:          logf,
	}
	srv, err := serve.NewServer(cfg, inputs, frameworks)
	if err != nil {
		return err
	}

	l, err := serve.Listen(listenAddr)
	if err != nil {
		return err
	}
	logf("serving %d graph(s), %d framework(s) on %s (pool=%d workers=%d budget=%v)",
		len(inputs), len(frameworks), listenAddr, cfg.PoolSize, cfg.Workers, budget)
	if serve.CheckEnabled() {
		logf("servecheck armed: a leaked machine lease panics at drain")
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()

	select {
	case sig := <-sigCh:
		logf("%v: draining (hard deadline %v)", sig, drain)
		derr := srv.Shutdown(drain)
		st := srv.StatsSnapshot()
		logf("drained: accepted=%d ok=%d shed=%d (rate=%d queue=%d breaker=%d drain=%d) panics=%d timeouts=%d retries=%d abandoned=%d breaker_opens=%d",
			st.Accepted, st.OK, st.ShedRate+st.ShedQueue+st.BreakerShed+st.DrainShed,
			st.ShedRate, st.ShedQueue, st.BreakerShed, st.DrainShed,
			st.Panics, st.Timeouts, st.Retries, st.Abandoned, st.BreakerOpens)
		return derr
	case err := <-errCh:
		return err
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Command gapvet is the repository's own static-analysis pass: a vet-style
// checker for the invariants the paper's methodology depends on. It loads
// and type-checks packages with the standard library alone (go/parser +
// go/types; no x/tools) and applies the rule set from internal/analysis:
//
//	framework-isolation    frameworks must not import each other
//	par-closure-race       no unsynchronized writes to captured variables in par closures
//	index-width            grb/lagraph indices must be 64-bit (GAP spec)
//	timed-region-purity    kernel packages must not reach I/O inside timed regions,
//	                       directly or through any call chain
//	unchecked-error        cmd/ and internal/core must not drop errors
//	atomic-plain-mix       state accessed via sync/atomic must not also be accessed
//	                       plainly on a concurrent path (interprocedural)
//	lock-order             mutexes must be acquired in a consistent global order;
//	                       ABBA inversions are found across function boundaries
//	alloc-in-timed-region  no per-element allocation on the parallel hot paths of
//	                       timed kernel packages
//	swallowed-panic        recover() must record or rethrow the panic value; the
//	                       fault model sanctions no silent swallowing
//	graph-mutation         no stores through CSR memory derived from *graph.Graph
//	                       outside internal/graph (shared graphs are immutable)
//	cancel-liveness        data-dependent kernel loops must reach a cancellation
//	                       poll or a par schedule
//	lease-return           every pool Acquire must settle its lease (Release or
//	                       Abandon) on all paths, panics included
//
// Six of these are dataflow rules: they run on a module-wide call graph
// built from per-function fact summaries (see internal/analysis/facts.go
// and writeset.go), so a violation may be reported in a function that looks
// innocent on its own — the message names the chain that convicts it.
//
// Four more rules run only under -perf, because they need a compiler run:
// gapvet rebuilds the loaded packages with -gcflags='-m=2
// -d=ssa/check_bce/debug=1', parses the escape/inline/BCE diagnostics
// (internal/analysis/compilerfacts.go), and joins them against the same
// dataflow facts:
//
//	escape-in-kernel       no heap escapes inside parallel hot loops of timed
//	                       kernel packages
//	closure-capture-hot    par closures must not capture variables whose heap
//	                       cells are re-allocated per hot call
//	bce-miss               no provably-eliminable bounds checks in innermost
//	                       parallel kernel loops
//	inline-miss            calls in innermost parallel kernel loops should
//	                       target inlinable callees
//
// Usage:
//
//	gapvet [flags] [patterns]
//
// Patterns default to ./... from the module root; "dir", "dir/...", and
// module-path forms are accepted. Each rule has an enable/disable flag named
// after it (e.g. -par-closure-race=false). Findings print one per line as
//
//	file:line: [rule] message
//
// or, under -json, as a JSON array of {file, line, col, rule, message}
// objects on stdout for CI annotation. Findings can be suppressed at the
// site with a justified comment:
//
//	//gapvet:ignore rule-name -- why this is safe
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"gapbench/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse flags, load packages, apply the
// enabled rules, print findings.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gapvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: gapvet [flags] [patterns]")
		fs.PrintDefaults()
	}
	list := fs.Bool("list", false, "list the rules and exit")
	root := fs.String("root", "", "module root directory (default: nearest go.mod above the working directory)")
	perf := fs.Bool("perf", false, "run the compiler-assisted perf rules (invokes 'go build' with diagnostic flags)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	enabled := map[string]*bool{}
	for _, a := range analysis.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-22s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var active []*analysis.Analyzer
	for _, a := range analysis.Analyzers() {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	if len(active) == 0 {
		fmt.Fprintln(stderr, "gapvet: all rules disabled, nothing to do")
		return 2
	}

	dir := *root
	if dir == "" {
		found, err := analysis.FindModuleRoot("")
		if err != nil {
			fmt.Fprintf(stderr, "gapvet: %v\n", err)
			return 2
		}
		dir = found
	}
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(stderr, "gapvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "gapvet: %v\n", err)
		return 2
	}

	var cfacts *analysis.CompilerFacts
	if *perf {
		var dirs []string
		for _, pkg := range pkgs {
			if pkg.Dir != "" {
				dirs = append(dirs, pkg.Dir)
			}
		}
		cfacts, err = analysis.HarvestCompilerFacts(dir, dirs)
		if err != nil {
			fmt.Fprintf(stderr, "gapvet: %v\n", err)
			return 2
		}
		if n := len(cfacts.BuildErrors); n > 0 {
			fmt.Fprintf(stderr, "gapvet: compiler harvest: %d build error line(s); perf facts may be incomplete\n", n)
		}
	}

	diags := analysis.RunWithCompilerFacts(pkgs, active, cfacts)
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "gapvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "gapvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable finding shape emitted under -json,
// mirroring the canonical text form field for field so the two outputs
// round-trip.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// writeJSON renders the diagnostics as an indented JSON array ("[]" when
// clean) followed by a newline.
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

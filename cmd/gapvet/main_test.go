package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gapbench/internal/analysis"
)

// gapvet runs the CLI against the given args and returns exit code, stdout,
// and stderr.
func gapvet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// fixtureArgs targets the deliberately broken fixture tree.
func fixtureArgs(t *testing.T, extra ...string) []string {
	t.Helper()
	root, err := analysis.FindModuleRoot("")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	return append(append([]string{"-root", root}, extra...), "cmd/gapvet/testdata/src/...")
}

// TestGolden locks the full CLI output on the fixture tree: every rule —
// including the four compiler-assisted -perf rules — firing at its expected
// site, the suppressed finding absent, findings sorted, exit code 1.
func TestGolden(t *testing.T) {
	code, stdout, stderr := gapvet(t, fixtureArgs(t, "-perf")...)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	goldenPath := filepath.Join("testdata", "golden.txt")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	if stdout != string(want) {
		t.Errorf("output does not match %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, stdout, want)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing findings summary: %q", stderr)
	}
	if strings.Contains(stdout, "JustifiedSum") || strings.Contains(stdout, "galois/bad.go:31") {
		t.Errorf("suppressed finding leaked into output:\n%s", stdout)
	}
}

// TestJSONRoundTrip checks that -json emits the same findings as the text
// form, field for field: decoding the array and re-rendering each entry as
// "file:line: [rule] message" must reproduce the golden output exactly.
func TestJSONRoundTrip(t *testing.T) {
	code, stdout, stderr := gapvet(t, fixtureArgs(t, "-perf", "-json")...)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("decoding -json output: %v\noutput: %s", err, stdout)
	}
	var rendered strings.Builder
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Rule == "" || f.Message == "" {
			t.Errorf("finding has empty field: %+v", f)
		}
		fmt.Fprintf(&rendered, "%s:%d: [%s] %s\n", f.File, f.Line, f.Rule, f.Message)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden.txt"))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	if rendered.String() != string(want) {
		t.Errorf("re-rendered JSON findings do not match golden.txt:\n--- got ---\n%s--- want ---\n%s", rendered.String(), want)
	}
}

// TestJSONClean emits an empty array, not nothing, when there are no
// findings.
func TestJSONClean(t *testing.T) {
	root, err := analysis.FindModuleRoot("")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	code, stdout, stderr := gapvet(t, "-root", root, "-json", "internal/verify")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want []", stdout)
	}
}

// TestRuleDisableFlags checks the per-rule enable/disable flags: disabling a
// rule removes exactly its findings.
func TestRuleDisableFlags(t *testing.T) {
	_, all, _ := gapvet(t, fixtureArgs(t, "-perf")...)
	for _, a := range analysis.Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			code, out, _ := gapvet(t, fixtureArgs(t, "-perf", "-"+a.Name+"=false")...)
			if strings.Contains(out, "["+a.Name+"]") {
				t.Errorf("-%s=false still produced %s findings:\n%s", a.Name, a.Name, out)
			}
			if code != 1 {
				t.Errorf("other rules should still fire, exit = %d", code)
			}
			// Every other rule's findings must be untouched.
			for _, line := range strings.Split(strings.TrimSpace(all), "\n") {
				if !strings.Contains(line, "["+a.Name+"]") && !strings.Contains(out, line) {
					t.Errorf("disabling %s also dropped %q", a.Name, line)
				}
			}
		})
	}
}

// TestAllRulesDisabled is a usage error, not a silent pass.
func TestAllRulesDisabled(t *testing.T) {
	var flags []string
	for _, a := range analysis.Analyzers() {
		flags = append(flags, "-"+a.Name+"=false")
	}
	code, _, stderr := gapvet(t, fixtureArgs(t, flags...)...)
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "all rules disabled") {
		t.Errorf("stderr = %q", stderr)
	}
}

// TestListFlag prints the rule catalogue.
func TestListFlag(t *testing.T) {
	code, stdout, _ := gapvet(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(stdout, a.Name) || !strings.Contains(stdout, a.Doc) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
}

// TestUnknownFlag exits 2 via flag parsing.
func TestUnknownFlag(t *testing.T) {
	if code, _, _ := gapvet(t, "-no-such-flag"); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestCleanPackageExitsZero runs gapvet over a package with no findings.
func TestCleanPackageExitsZero(t *testing.T) {
	root, err := analysis.FindModuleRoot("")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	code, stdout, stderr := gapvet(t, "-root", root, "internal/verify")
	if code != 0 {
		t.Errorf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("unexpected findings: %s", stdout)
	}
}

// Package arena is a gapvet test fixture (never built): it retains
// graph-derived views past Graph.Close in every way the arena-escape rule
// tracks — a read after a direct close, a return escaping a deferred close,
// and a struct-field retention in a closing function — plus one copy-first
// control that must stay finding-free.
package arena

import "gapbench/internal/graph"

// UseAfterClose reads a view after the arena was released.
func UseAfterClose(g *graph.Graph) int {
	ns := g.OutNeighbors(0)
	_ = g.Close()
	return int(ns[0])
}

// LeakRow returns a view that outlives the deferred unmap.
func LeakRow(path string) []graph.NodeID {
	g, err := graph.Load(path)
	if err != nil {
		return nil
	}
	defer func() { _ = g.Close() }()
	return g.OutNeighbors(0)
}

// rowCache retains a view across the close.
type rowCache struct{ row []graph.NodeID }

func (c *rowCache) Fill(g *graph.Graph) {
	c.row = g.OutNeighbors(0)
	_ = g.Close()
}

// CopyRow is the clean control: copying before the close detaches the result
// from the arena.
func CopyRow(path string) []graph.NodeID {
	g, err := graph.Load(path)
	if err != nil {
		return nil
	}
	defer func() { _ = g.Close() }()
	ns := g.OutNeighbors(0)
	own := make([]graph.NodeID, len(ns))
	copy(own, ns)
	return own
}

// Package galois is a gapvet test fixture (never built): it violates the
// framework-isolation and par-closure-race rules on purpose, and carries one
// justified suppression to exercise the //gapvet:ignore path.
package galois

import (
	"gapbench/internal/gap"
	"gapbench/internal/par"
	"sync"
	"sync/atomic"
)

// CrossImport leans on another framework's constructor, which the isolation
// rule must flag.
func CrossImport() any { return gap.New() }

// RacySum accumulates into a captured variable from a par closure.
func RacySum(xs []int64) int64 {
	var total int64
	par.For(len(xs), 0, func(i int) {
		total += xs[i]
	})
	return total
}

// JustifiedSum shows the suppression form; this finding must NOT appear in
// the golden output.
func JustifiedSum(xs []int64) int64 {
	var total int64
	par.For(len(xs), 1, func(i int) {
		total += xs[i] //gapvet:ignore par-closure-race -- fixture: single worker, sequential by construction
	})
	return total
}

// Claim marks cells via CAS from one goroutine while reset clears them
// plainly from another: the plain path is only reachable through the call
// graph, the cross-function atomic-plain-mix case.
func Claim(state []int32) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := range state {
			atomic.CompareAndSwapInt32(&state[i], 0, 1)
		}
	}()
	go func() {
		defer wg.Done()
		reset(state)
	}()
	wg.Wait()
}

// reset looks sequential on its own: no go statement, no par closure.
func reset(state []int32) {
	for i := range state {
		state[i] = 0
	}
}

// Package galois is a gapvet test fixture (never built): it violates the
// framework-isolation and par-closure-race rules on purpose, and carries one
// justified suppression to exercise the //gapvet:ignore path.
package galois

import (
	"gapbench/internal/gap"
	"gapbench/internal/par"
)

// CrossImport leans on another framework's constructor, which the isolation
// rule must flag.
func CrossImport() any { return gap.New() }

// RacySum accumulates into a captured variable from a par closure.
func RacySum(xs []int64) int64 {
	var total int64
	par.For(len(xs), 0, func(i int) {
		total += xs[i]
	})
	return total
}

// JustifiedSum shows the suppression form; this finding must NOT appear in
// the golden output.
func JustifiedSum(xs []int64) int64 {
	var total int64
	par.For(len(xs), 1, func(i int) {
		total += xs[i] //gapvet:ignore par-closure-race -- fixture: single worker, sequential by construction
	})
	return total
}

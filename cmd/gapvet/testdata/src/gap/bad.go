// Package gap is a gapvet test fixture (never built): it prints from a
// kernel package (timed-region-purity), allocates on a spawned hot path
// directly and through a cross-package call (alloc-in-timed-region), and
// reaches the OS through the sibling kernel package, which the transitive
// purity rule reports at the kernel-side call site.
package gap

import (
	"fmt"

	"gapbench/cmd/gapvet/testdata/src/kernel"
)

// NoisyKernel logs progress from inside what would be a timed region.
func NoisyKernel(level int) {
	fmt.Printf("bfs level %d\n", level)
}

// HotAlloc allocates per element on a spawned path: one make directly in
// the goroutine, and one reached through kernel.Scratch across the package
// boundary.
func HotAlloc(out [][]int64) {
	done := make(chan struct{})
	go func() {
		for i := range out {
			buf := make([]int64, 8)
			copy(buf, kernel.Scratch(8))
			out[i] = buf
		}
		close(done)
	}()
	<-done
}

// Dump reaches os.Create through kernel.Spill; the purity rule reports the
// chain at this call site, naming its endpoint.
func Dump(name string) error {
	return kernel.Spill(name)
}

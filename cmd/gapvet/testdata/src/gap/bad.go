// Package gap is a gapvet test fixture (never built): it prints from a
// kernel package, which the timed-region-purity rule must flag.
package gap

import "fmt"

// NoisyKernel logs progress from inside what would be a timed region.
func NoisyKernel(level int) {
	fmt.Printf("bfs level %d\n", level)
}

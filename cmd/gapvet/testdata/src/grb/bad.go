// Package grb is a gapvet test fixture (never built): it indexes with a
// 32-bit integer, which the index-width rule must flag.
package grb

// Degrees uses an int32 loop variable as a slice index.
func Degrees(n int32) []float64 {
	out := make([]float64, n)
	for u := int32(0); u < n; u++ {
		out[u] = 1
	}
	return out
}

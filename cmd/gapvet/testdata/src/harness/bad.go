// Package harness is a gapvet test fixture (never built): living under a
// cmd/ path, it drops an error return, which the unchecked-error rule must
// flag.
package harness

import "os"

// Cleanup ignores the error from os.Remove.
func Cleanup() {
	os.Remove("results/stale.json")
}

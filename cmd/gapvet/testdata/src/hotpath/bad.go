// Package hotpath is a gapvet fixture for the compiler-assisted perf rules
// (gapvet -perf). Each exported function carries one deliberate
// compiler-level defect on a parallel hot path: a per-element heap escape,
// a hot closure capture, a retained bounds check, and an over-budget callee
// in an innermost loop. The package compiles — the harvest builds it to
// collect the diagnostics — but is never executed.
package hotpath

import (
	"sync"
	"sync/atomic"
)

// Node is heap bait for the escape offender.
type Node struct {
	ID   int
	Next *Node
}

// runParallel is the fixture's spawner: closures handed to it run on worker
// goroutines, which is what puts their loops on the parallel hot path.
func runParallel(workers int, body func(w int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body(id)
		}(w)
	}
	wg.Wait()
}

// HotEscape allocates a Node per element inside a worker loop; every &Node
// literal escapes into the shared result. [escape-in-kernel]
func HotEscape(n int) []*Node {
	parts := make([][]*Node, 2)
	runParallel(2, func(w int) {
		var local []*Node
		for i := w; i < n; i += 2 {
			local = append(local, &Node{ID: i})
		}
		parts[w] = local
	})
	return append(parts[0], parts[1]...)
}

// hotCapture counts positive values; scout's heap cell is re-allocated on
// every call because the worker closure captures it. [closure-capture-hot]
func hotCapture(vals []int64) int64 {
	var scout int64
	runParallel(2, func(w int) {
		for _, v := range vals {
			if v > int64(w) {
				atomic.AddInt64(&scout, 1)
			}
		}
	})
	return scout
}

// DriveRounds calls hotCapture from its round loop, which is what makes the
// per-call allocation hot.
func DriveRounds(vals []int64, rounds int) int64 {
	var total int64
	for r := 0; r < rounds; r++ {
		total += hotCapture(vals)
	}
	return total
}

// Accum carries the bounds-check offender's state.
type Accum struct {
	vals []int64
	hits int64
}

// bump is kept out of line so the store it makes through the receiver
// clobbers the compiler's view of a.vals inside HotIndex's loop.
//
//go:noinline
func (a *Accum) bump() { a.hits++ }

// HotIndex updates a.vals under an index the range loop already bounds; the
// out-of-line bump call makes the compiler re-load the field each
// iteration, so the bounds check survives. [bce-miss]
func (a *Accum) HotIndex() {
	runParallel(1, func(w int) {
		for i := range a.vals {
			a.vals[i] += int64(i + w)
			a.bump()
		}
	})
}

// mixStep is deliberately a hair over the inline budget: calling it from an
// innermost worker loop pays call overhead per element. [inline-miss]
func mixStep(acc, v int64) int64 {
	x := acc ^ (v * 0x5851f42d4c957f2d)
	x ^= x >> 29
	x *= 0x2545f4914f6cdd1d
	x ^= x >> 32
	x *= 0x41c64e6d
	x ^= x >> 31
	x += v<<13 ^ acc>>17
	x *= 0x6c078965
	x ^= x >> 27
	x += acc * 0x3243f6a9
	x ^= x << 7
	x -= v ^ x>>11
	x *= 0x9908b0df
	x ^= x >> 18
	if x == 0 {
		x = v | 1
	}
	return x
}

// HotCalls folds every value through mixStep from the workers' innermost
// loop.
func HotCalls(vals []int64) int64 {
	var acc int64
	runParallel(2, func(w int) {
		local := int64(w)
		for _, v := range vals {
			local = mixStep(local, v)
		}
		atomic.AddInt64(&acc, local)
	})
	return acc
}

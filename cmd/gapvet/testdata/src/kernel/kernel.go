// Package kernel is a helper fixture the sibling fixture packages call into:
// it allocates and reaches the OS, so the interprocedural rules can report
// kernel-side call sites that cross a package boundary. It has no findings
// of its own — util is not a timed kernel package, and its errors are
// returned, not dropped.
package kernel

import "os"

// Scratch returns a freshly allocated buffer.
func Scratch(n int) []int64 {
	return make([]int64, n)
}

// Spill creates a debug spill file.
func Spill(name string) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	return f.Close()
}

// Package lease is a gapvet test fixture (never built): a miniature machine
// lease pool in the serve.Pool shape, with callers that leak leases in the
// ways the lease-return rule must flag. The deferred abandoned-flag sandbox
// at the bottom is the sanctioned pattern and must stay clean.
package lease

// Machine stands in for a par.Machine.
type Machine struct{ closed bool }

// Lease is the pool's loan record: settled by exactly one of Release
// (machine healthy, back to the pool) or Abandon (machine wedged, reap it).
type Lease struct{ m *Machine }

func (l *Lease) Release() {}
func (l *Lease) Abandon() {}

// Pool hands out machine leases.
type Pool struct{}

// Acquire matches the shape the rule guards: first result is a pointer to a
// named type with both Release and Abandon methods.
func (p *Pool) Acquire(tok any) (*Lease, error) { return &Lease{}, nil }

func runKernel() {}

// NeverSettled acquires and walks away: the pool is down one machine for the
// life of the process.
func NeverSettled(p *Pool) error {
	lease, err := p.Acquire(nil)
	if err != nil {
		return err
	}
	_ = lease
	runKernel()
	return nil
}

// PlainRelease settles only on the straight-line path: a panic in runKernel
// unwinds past the Release and leaks the lease.
func PlainRelease(p *Pool) error {
	lease, err := p.Acquire(nil)
	if err != nil {
		return err
	}
	runKernel()
	lease.Release()
	return nil
}

// Sandbox is the sanctioned pattern — the deferred closure settles the lease
// on every exit, panic unwinds included — and must produce no finding.
func Sandbox(p *Pool) error {
	lease, err := p.Acquire(nil)
	if err != nil {
		return err
	}
	abandoned := false
	defer func() {
		if abandoned {
			lease.Abandon()
		} else {
			lease.Release()
		}
	}()
	runKernel()
	return nil
}

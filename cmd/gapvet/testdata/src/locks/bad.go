// Package locks is a gapvet test fixture (never built): it acquires two
// mutexes in opposite orders across functions. Forward only reaches the
// second lock through a helper, so the ABBA inversion is visible only to
// the interprocedural lock graph (lock-order).
package locks

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// lockB acquires B on behalf of whoever calls it.
func lockB() {
	muB.Lock()
	muB.Unlock()
}

// Forward holds A and reaches B only through lockB.
func Forward() {
	muA.Lock()
	lockB()
	muA.Unlock()
}

// Backward acquires the pair in the opposite order.
func Backward() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// Package machine seeds the data-flow spawn bug: a hand-rolled worker pool
// whose submitted closures run on pool goroutines with no syntactic `go`
// statement anywhere on the submit path — the closure travels through a
// func-typed struct field and a channel, exactly the par.Machine shape.
// gapvet's field-based spawn propagation must promote submit to a spawner
// for atomic-plain-mix to see the race in Run.
package machine

import "sync/atomic"

type task struct {
	fn func(w int)
}

type pool struct {
	work chan *task
}

func newPool(workers int) *pool {
	p := &pool{work: make(chan *task, workers)}
	for w := 0; w < workers; w++ {
		go p.loop(w)
	}
	return p
}

func (p *pool) loop(w int) {
	for t := range p.work {
		t.fn(w)
	}
}

func (p *pool) submit(f func(w int)) {
	p.work <- &task{fn: f}
}

var done int64

// Wait spins until the submitted work retires, reading the flag atomically —
// the author's declaration that done is shared between goroutines.
func Wait() {
	for atomic.LoadInt64(&done) == 0 {
	}
}

// Run hands the pool a closure that sets the completion flag with a plain
// write: a data race against Wait's atomic load that is only visible once
// the analysis understands closures stored into the pool's hot func field
// execute on the loop goroutines.
func Run(p *pool, xs []int64) {
	p.submit(func(w int) {
		_ = xs[w]
		done = 1
	})
}

// Package mutate is a gapvet test fixture (never built): it stores through
// CSR memory derived from *graph.Graph in every way the write-set lattice
// tracks — a direct alias, an in-place sort, a parameter passed to a storing
// helper, and a slice escaping through a return value — plus one clean
// copy-first control that must stay finding-free.
package mutate

import (
	"sort"

	"gapbench/internal/graph"
)

// RelabelInPlace stores through a direct accessor alias.
func RelabelInPlace(g *graph.Graph, u graph.NodeID) {
	neigh := g.OutNeighbors(u)
	neigh[0] = neigh[0] + 1
}

// SortNeighbors sorts an accessor slice in place.
func SortNeighbors(g *graph.Graph, u graph.NodeID) {
	ns := g.OutNeighbors(u)
	sort.Slice(ns, func(i, j int) bool { return ns[i] > ns[j] })
}

// zeroWeights stores through its parameter; innocent alone, convicted at the
// call site that binds it to graph memory.
func zeroWeights(ws []graph.Weight) {
	for i := range ws {
		ws[i] = 0
	}
}

// ZeroAll hands graph-derived weights to the storing helper.
func ZeroAll(g *graph.Graph, u graph.NodeID) {
	zeroWeights(g.OutWeights(u))
}

// firstOut leaks graph memory through its return value.
func firstOut(g *graph.Graph) []graph.NodeID {
	return g.OutNeighbors(0)
}

// TruncateFirst stores through the escaped slice two hops from the accessor.
func TruncateFirst(g *graph.Graph) {
	head := firstOut(g)[:1]
	head[0] = -1
}

// CopyAndSort is the clean control: copying into fresh memory launders the
// graph origin, so the in-place sort below is legal.
func CopyAndSort(g *graph.Graph, u graph.NodeID) []graph.NodeID {
	ns := g.OutNeighbors(u)
	own := make([]graph.NodeID, len(ns))
	copy(own, ns)
	sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })
	return own
}

// StompArena stores through the raw arena block every CSR view is carved
// from — the Arena.Bytes seed must make it visible to the lattice.
func StompArena(g *graph.Graph) {
	b := g.Arena().Bytes()
	b[0] = 0xFF
}

// Package sandbox is a gapvet test fixture (never built): it isolates
// kernel trials behind recover() but swallows the panic value in two ways,
// which the swallowed-panic rule must flag. The recording variant at the
// bottom is the sanctioned pattern and must stay clean.
package sandbox

import "fmt"

// lastFailure is where a well-behaved sandbox records what it caught.
var lastFailure string

// tripped only remembers *that* something panicked, not *what* — exactly
// the information loss the rule exists to prevent.
var tripped bool

// EatSilently discards the panic value entirely.
func EatSilently(trial func()) {
	defer func() {
		recover()
	}()
	trial()
}

// EatAfterNilCheck binds the value but only compares it against nil.
func EatAfterNilCheck(trial func()) {
	defer func() {
		if p := recover(); p != nil {
			tripped = true
		}
	}()
	trial()
}

// Record is the sanctioned sandbox: the caught value is rendered into the
// trial record, so a kernel crash stays diagnosable.
func Record(trial func()) {
	defer func() {
		if p := recover(); p != nil {
			lastFailure = fmt.Sprint(p)
		}
	}()
	trial()
}

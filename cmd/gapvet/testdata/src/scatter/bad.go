// Package scatter is a gapvet test fixture (never built) covering the
// counting-sort ingest idiom: a stable parallel scatter where each worker
// bumps cursors in its *own* offset slice and writes output cells at the
// positions those cursors yield. Every write goes through an index
// expression on a captured slice — the sanctioned pattern — so the clean
// function below must produce no par-closure-race findings. BrokenScatter
// then makes the one mistake the rule exists to catch: hoisting a cursor
// into a captured scalar shared by all workers.
package scatter

import "gapbench/internal/par"

// Scatter is the clean per-worker-offset pattern. offsets[w][k] is worker
// w's next write position for key k; out[pos] receives the item. Both
// writes are through index expressions (`off[k] = ...`, `out[pos] = ...`)
// on captured slices at worker-owned positions, which the race rule must
// leave alone.
func Scatter(keys []int, offsets [][]int64, out []int64) {
	par.ForWorker(len(keys), len(offsets), func(w, lo, hi int) {
		off := offsets[w]
		for i := lo; i < hi; i++ {
			k := keys[i]
			pos := off[k]
			off[k] = pos + 1
			out[pos] = int64(i)
		}
	})
}

// BrokenScatter shares one cursor between all workers with a plain
// read-modify-write: the exact race the per-worker offset slices exist to
// avoid, and the one finding this fixture adds to the golden output.
func BrokenScatter(keys []int, out []int64) {
	var cursor int64
	par.ForWorker(len(keys), 0, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[cursor] = int64(keys[i])
			cursor++
		}
	})
}

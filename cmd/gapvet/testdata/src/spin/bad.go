// Package spin is a gapvet test fixture (never built): its data-dependent
// loops spin without ever observing cancellation (cancel-liveness), next to
// controls that stay live through a direct poll and through a par schedule.
package spin

import (
	"sync"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// next pops one vertex; a plain helper with no poll anywhere beneath it.
func next(work []graph.NodeID) []graph.NodeID {
	return work[1:]
}

// Drain spins on a worklist whose trip count the input controls, and nothing
// in the loop can ever observe the trial's cancellation token.
func Drain(work []graph.NodeID) {
	for len(work) > 0 {
		work = next(work)
	}
}

// Expand is a frontier fixed point with the same defect: the loop's call set
// reaches only graph accessors and the plain helper.
func Expand(g *graph.Graph, work []graph.NodeID) {
	for len(work) > 0 {
		u := work[0]
		work = next(work)
		work = append(work, g.OutNeighbors(u)...)
	}
}

// DrainPolite is the polled control: the direct Cancelled() call keeps the
// loop live.
func DrainPolite(work []graph.NodeID, opt kernel.Options) {
	for len(work) > 0 {
		if opt.Cancelled() {
			return
		}
		work = next(work)
	}
}

// forAll is a tiny fork-join schedule of spin's own: the facts engine learns
// it spawns goroutines, the stand-in for a par.Machine region (which polls
// the installed token) inside this self-contained fixture tree.
func forAll(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 2 {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}

// DrainParallel is the schedule control: each round drives a spawning
// schedule, which owns cancellation for the region, so the loop is live.
func DrainParallel(work []graph.NodeID) {
	for len(work) > 0 {
		forAll(len(work), func(i int) {
			_ = work[i]
		})
		work = next(work)
	}
}

// Command graphgen generates the benchmark graphs and serializes them to
// disk, the analogue of the GAP suite's converter producing .sg files so
// benchmark runs never pay generation time.
//
//	graphgen -out ./graphs -scale 12          # all five benchmark graphs
//	graphgen -out ./graphs -graph Road -scale 16 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gapbench/internal/core"
	"gapbench/internal/generate"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		scale    = flag.Int("scale", 12, "base scale (log2 approximate vertex count)")
		seed     = flag.Uint64("seed", 42, "generator seed")
		oneGraph = flag.String("graph", "", "generate only this graph (default: the full five-graph suite)")
	)
	flag.Parse()

	if err := run(*out, *scale, *seed, *oneGraph); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(out string, scale int, seed uint64, oneGraph string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	specs := core.DefaultSuite(scale)
	if oneGraph != "" {
		var filtered []core.GraphSpec
		for _, s := range specs {
			if strings.EqualFold(s.Name, oneGraph) {
				s.Seed = seed
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("unknown graph %q (have %v)", oneGraph, generate.Names)
		}
		specs = filtered
	}
	for _, spec := range specs {
		g, err := generate.ByName(spec.Name, spec.Scale, spec.Seed)
		if err != nil {
			return err
		}
		path := filepath.Join(out, fmt.Sprintf("%s-s%d.gapb", strings.ToLower(spec.Name), spec.Scale))
		if err := g.Save(path); err != nil {
			return err
		}
		fmt.Printf("%-8s n=%-9d m=%-10d -> %s\n", spec.Name, g.NumNodes(), g.NumEdgesUndirected(), path)
	}
	return nil
}

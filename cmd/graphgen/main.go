// Command graphgen generates the benchmark graphs and serializes them to
// disk, the analogue of the GAP suite's converter producing .sg files so
// benchmark runs never pay generation time.
//
//	graphgen -out ./graphs -scale 12          # all five benchmark graphs
//	graphgen -out ./graphs -graph Road -scale 16 -seed 7
//	graphgen -out ./graphs -scale 12 -layout degree   # degree-sorted layout
//	graphgen -out ./graphs -scale 12 -format gapb     # legacy v1 files
//
// The default -format=sg writes format v2: one arena image behind a checksummed
// header, which gapbench -graphfile / -graphdir loads back zero-copy via mmap.
// -format=gapb keeps the v1 streaming codec for old tooling.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gapbench/internal/core"
	"gapbench/internal/generate"
	"gapbench/internal/graph"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		scale    = flag.Int("scale", 12, "base scale (log2 approximate vertex count)")
		seed     = flag.Uint64("seed", 42, "generator seed")
		oneGraph = flag.String("graph", "", "generate only this graph (default: the full five-graph suite)")
		format   = flag.String("format", "sg", "file format: sg (v2, mmap-loadable) or gapb (legacy v1)")
		layout   = flag.String("layout", "plain", "vertex layout: plain (generator order) or degree (descending degree)")
	)
	flag.Parse()

	if err := run(*out, *scale, *seed, *oneGraph, *format, *layout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(out string, scale int, seed uint64, oneGraph, format, layoutName string) error {
	if format != "sg" && format != "gapb" {
		return fmt.Errorf("unknown -format %q (want sg or gapb)", format)
	}
	lay, err := graph.ParseLayout(layoutName)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	specs := core.DefaultSuite(scale)
	if oneGraph != "" {
		var filtered []core.GraphSpec
		for _, s := range specs {
			if strings.EqualFold(s.Name, oneGraph) {
				s.Seed = seed
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("unknown graph %q (have %v)", oneGraph, generate.Names)
		}
		specs = filtered
	}
	for _, spec := range specs {
		g, err := generate.ByName(spec.Name, spec.Scale, spec.Seed)
		if err != nil {
			return err
		}
		if lay == graph.LayoutDegree {
			rg, _ := graph.DegreeRelabel(g)
			if err := g.Close(); err != nil {
				return err
			}
			g = rg
		}
		g.SetProvenance(spec.Name, uint32(spec.Scale), spec.Seed)
		path := filepath.Join(out, core.GraphFileName(spec, format))
		if format == "sg" {
			err = g.SaveSG(path)
		} else {
			err = g.Save(path)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%-8s n=%-9d m=%-10d layout=%-6s -> %s\n",
			spec.Name, g.NumNodes(), g.NumEdgesUndirected(), g.Layout(), path)
		if err := g.Close(); err != nil {
			return err
		}
	}
	return nil
}

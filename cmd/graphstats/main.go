// Command graphstats prints Table I-style properties for graph files:
// binary .gapb serializations or text edge lists (.el unweighted,
// .wel weighted — the GAP reference's interchange formats).
//
//	graphstats ./graphs/road-s14.gapb ./data/some-graph.el
//	graphstats -directed ./data/links.wel
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gapbench/internal/graph"
	"gapbench/internal/report"
)

func main() {
	directed := flag.Bool("directed", false, "treat text edge lists as directed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: graphstats [-directed] <graph.gapb|graph.el|graph.wel> [more...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var names []string
	var stats []graph.Stats
	for _, path := range flag.Args() {
		g, err := load(path, *directed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphstats:", err)
			os.Exit(1)
		}
		names = append(names, strings.TrimSuffix(filepath.Base(path), filepath.Ext(path)))
		stats = append(stats, graph.ComputeStats(g))
	}
	fmt.Print(report.TableI(names, stats))
}

// load dispatches on the file extension: text edge lists build a graph, any
// other extension is treated as a binary serialization.
func load(path string, directed bool) (*graph.Graph, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".el", ".wel":
		return graph.LoadEdgeList(path, graph.BuildOptions{Directed: directed})
	default:
		return graph.Load(path)
	}
}

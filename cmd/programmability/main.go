// Command programmability compares implementation size across the six
// framework reproductions — the §VI "programmability problem" future work,
// made at least measurable. Run from the repository root:
//
//	programmability            # counts internal/<framework> packages
//	programmability -root /path/to/repo
//
// The GraphBLAS row combines internal/grb (the substrate) and
// internal/lagraph (the algorithms), mirroring how that stack is actually
// adopted.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gapbench/internal/loc"
)

func main() {
	root := flag.String("root", ".", "repository root containing internal/")
	flag.Parse()
	if err := run(*root); err != nil {
		fmt.Fprintln(os.Stderr, "programmability:", err)
		os.Exit(1)
	}
}

func run(root string) error {
	rows := []struct {
		name string
		dirs []string
	}{
		{"GAP", []string{"internal/gap"}},
		{"SuiteSparse", []string{"internal/grb", "internal/lagraph"}},
		{"Galois", []string{"internal/galois"}},
		{"GraphIt", []string{"internal/graphit"}},
		{"GKC", []string{"internal/gkc"}},
		{"NWGraph", []string{"internal/nwgraph"}},
	}
	var counts []loc.Count
	for _, row := range rows {
		total := loc.Count{Name: row.name}
		for _, dir := range row.dirs {
			c, err := loc.CountDir(row.name, filepath.Join(root, dir))
			if err != nil {
				return err
			}
			total.Files += c.Files
			total.Code += c.Code
			total.Comments += c.Comments
			total.Blank += c.Blank
		}
		counts = append(counts, total)
	}
	fmt.Println("Implementation size per framework (six GAP kernels + runtime machinery)")
	fmt.Print(loc.Report(counts))
	fmt.Println("\nNote: LoC is a crude programmability proxy; the paper's §VI leaves a")
	fmt.Println("principled measure as an open problem, and so does this reproduction.")
	return nil
}

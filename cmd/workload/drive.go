package main

// drive.go is the gapd load driver: concurrent clients replaying a mixed
// kernel stream against a running daemon, with Zipf-skewed sources (popular
// vertices dominate real query traffic), Poisson or closed-loop arrivals,
// JSONL per-query latency records, and the internal/report tail summaries.
//
//	gapd -listen unix:/tmp/gapd.sock -graphs Road -scale 12 &
//	workload -addr unix:/tmp/gapd.sock -clients 16 -duration 10s
//	workload -addr unix:/tmp/gapd.sock -clients 4 -rate 200 -mix BFS:4,PR:1
//	workload -addr unix:/tmp/gapd.sock -records run.jsonl -bench Serve/all/c16

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gapbench/internal/report"
	"gapbench/internal/serve"
)

// driveConfig parameterizes one load run.
type driveConfig struct {
	Addr     string
	Clients  int
	Duration time.Duration
	// Rate is the total offered Poisson arrival rate in queries/second,
	// split evenly across clients; 0 means closed-loop (each client sends
	// back-to-back).
	Rate float64
	// Mix is the kernel mix as "BFS:4,SSSP:1,PR:2,CC:1" weights.
	Mix string
	// Zipf is the source-vertex skew exponent (>1); 0 means uniform.
	Zipf float64
	// BudgetMS is the per-query deadline budget sent to the daemon.
	BudgetMS int64
	// Records, when set, receives one JSONL QueryRecord per query.
	Records string
	// Bench, when set, appends a go-bench formatted summary line named
	// Benchmark<Bench> for scripts/bench.sh's folding.
	Bench string
	Seed  int64
}

// mixEntry is one kernel with its cumulative weight boundary.
type mixEntry struct {
	kernel string
	bound  float64
}

// parseMix turns "BFS:4,PR:1" into cumulative sampling bounds.
func parseMix(s string) ([]mixEntry, error) {
	if s == "" {
		s = "BFS:4,SSSP:2,PR:2,CC:2"
	}
	var entries []mixEntry
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		name, wstr, found := strings.Cut(strings.TrimSpace(part), ":")
		w := 1.0
		if found {
			var err error
			if w, err = strconv.ParseFloat(wstr, 64); err != nil || w <= 0 {
				return nil, fmt.Errorf("bad mix weight %q", part)
			}
		}
		k := strings.ToUpper(strings.TrimSpace(name))
		switch k {
		case "BFS", "SSSP", "PR", "CC":
		default:
			return nil, fmt.Errorf("mix kernel %q not served (want BFS, SSSP, PR, CC)", name)
		}
		total += w
		entries = append(entries, mixEntry{kernel: k, bound: total})
	}
	for i := range entries {
		entries[i].bound /= total
	}
	return entries, nil
}

// pickKernel samples the mix.
func pickKernel(entries []mixEntry, rng *rand.Rand) string {
	u := rng.Float64()
	for _, e := range entries {
		if u <= e.bound {
			return e.kernel
		}
	}
	return entries[len(entries)-1].kernel
}

// sourcePicker draws source vertices for one graph: Zipf-skewed over the
// vertex ID space when skew > 1 (popular-vertex traffic), uniform otherwise.
type sourcePicker struct {
	nodes int64
	zipf  *rand.Zipf
	rng   *rand.Rand
}

func newSourcePicker(rng *rand.Rand, nodes int64, skew float64) *sourcePicker {
	p := &sourcePicker{nodes: nodes, rng: rng}
	if skew > 1 && nodes > 1 {
		p.zipf = rand.NewZipf(rng, skew, 1, uint64(nodes-1))
	}
	return p
}

func (p *sourcePicker) pick() int64 {
	if p.zipf != nil {
		return int64(p.zipf.Uint64())
	}
	return p.rng.Int63n(p.nodes)
}

// dialDaemon mirrors serve.Listen's address grammar on the client side.
func dialDaemon(addr string) (net.Conn, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Dial("unix", path)
	}
	return net.Dial("tcp", strings.TrimPrefix(addr, "tcp:"))
}

// clientResult is one driver client's records.
type clientResult struct {
	records []report.QueryRecord
	err     error
}

// runDrive executes the load run and writes the summary to out.
func runDrive(cfg driveConfig, out io.Writer) error {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	mix, err := parseMix(cfg.Mix)
	if err != nil {
		return err
	}

	// One control connection discovers the served graphs and sizes the
	// source distributions.
	graphs, err := fetchGraphs(cfg.Addr)
	if err != nil {
		return err
	}
	if len(graphs) == 0 {
		return fmt.Errorf("daemon at %s serves no graphs", cfg.Addr)
	}

	start := time.Now()
	results := make([]clientResult, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = driveClient(cfg, graphs, mix, c, start)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var records []report.QueryRecord
	for c, r := range results {
		if r.err != nil {
			return fmt.Errorf("client %d: %w", c, r.err)
		}
		records = append(records, r.records...)
	}
	sort.Slice(records, func(i, j int) bool { return records[i].OffsetMicros < records[j].OffsetMicros })

	if cfg.Records != "" {
		if err := writeRecords(cfg.Records, records); err != nil {
			return err
		}
	}
	sum := report.Summarize(records, wall)
	fmt.Fprintf(out, "drive: %d clients, %v", cfg.Clients, cfg.Duration.Round(time.Millisecond))
	if cfg.Rate > 0 {
		fmt.Fprintf(out, ", poisson %.1f qps offered", cfg.Rate)
	} else {
		fmt.Fprint(out, ", closed loop")
	}
	fmt.Fprintf(out, ", mix %s\n", mixString(mix))
	fmt.Fprint(out, sum.String())
	fmt.Fprint(out, report.LatencyByKernel(records, wall))
	if cfg.Bench != "" {
		fmt.Fprintln(out, sum.BenchLine(cfg.Bench))
	}
	return nil
}

// mixString renders the normalized mix for the run header.
func mixString(mix []mixEntry) string {
	var parts []string
	prev := 0.0
	for _, e := range mix {
		parts = append(parts, fmt.Sprintf("%s %.0f%%", e.kernel, 100*(e.bound-prev)))
		prev = e.bound
	}
	return strings.Join(parts, " / ")
}

// fetchGraphs asks the daemon what it serves.
func fetchGraphs(addr string) ([]serve.GraphInfo, error) {
	conn, err := dialDaemon(addr)
	if err != nil {
		return nil, err
	}
	defer func() { _ = conn.Close() }() // read-only control exchange; nothing to report
	r := bufio.NewReader(conn)
	resp, err := roundTrip(conn, r, serve.Request{Op: serve.OpGraphs})
	if err != nil {
		return nil, err
	}
	if resp.Code != serve.CodeOK {
		return nil, fmt.Errorf("graphs op: %s %s", resp.Code, resp.Error)
	}
	return resp.Graphs, nil
}

// roundTrip sends one request line and reads one response line.
func roundTrip(conn net.Conn, r *bufio.Reader, req serve.Request) (serve.Response, error) {
	var resp serve.Response
	b, err := json.Marshal(req)
	if err != nil {
		return resp, err
	}
	if _, err := conn.Write(append(b, '\n')); err != nil {
		return resp, err
	}
	line, err := r.ReadBytes('\n')
	if err != nil {
		return resp, err
	}
	err = json.Unmarshal(line, &resp)
	return resp, err
}

// driveClient runs one client connection until the deadline: build a query
// from the mix, wait for its Poisson arrival slot (open loop) or send
// immediately (closed loop), and record what came back.
func driveClient(cfg driveConfig, graphs []serve.GraphInfo, mix []mixEntry, idx int, start time.Time) clientResult {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*7919))
	conn, err := dialDaemon(cfg.Addr)
	if err != nil {
		return clientResult{err: err}
	}
	defer func() { _ = conn.Close() }() // every round trip already checked its own I/O error
	r := bufio.NewReader(conn)

	pickers := make([]*sourcePicker, len(graphs))
	for i, g := range graphs {
		pickers[i] = newSourcePicker(rng, g.Nodes, cfg.Zipf)
	}

	perClientRate := cfg.Rate / float64(cfg.Clients)
	next := time.Duration(0) // next arrival offset (open loop)
	deadline := start.Add(cfg.Duration)
	var records []report.QueryRecord
	for {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		if perClientRate > 0 {
			// Exponential inter-arrival gaps; a client running behind its
			// schedule (response slower than the gap) sends immediately,
			// which is how open-loop drivers surface overload.
			next += time.Duration(rng.ExpFloat64() / perClientRate * float64(time.Second))
			if wait := start.Add(next).Sub(now); wait > 0 {
				if start.Add(next).After(deadline) {
					break
				}
				time.Sleep(wait)
			}
		}

		gi := rng.Intn(len(graphs))
		req := serve.Request{
			Kernel:   pickKernel(mix, rng),
			Graph:    graphs[gi].Name,
			BudgetMS: cfg.BudgetMS,
		}
		switch req.Kernel {
		case "BFS", "SSSP":
			req.Source = pickers[gi].pick()
		case "CC":
			req.Vertex = pickers[gi].pick()
		case "PR":
			req.K = 10
		}
		sent := time.Now()
		resp, err := roundTrip(conn, r, req)
		if err != nil {
			return clientResult{err: fmt.Errorf("after %d queries: %w", len(records), err)}
		}
		micros := resp.Micros
		if micros == 0 {
			micros = int64(math.Round(float64(time.Since(sent)) / float64(time.Microsecond)))
		}
		records = append(records, report.QueryRecord{
			OffsetMicros: sent.Sub(start).Microseconds(),
			Micros:       micros,
			Code:         string(resp.Code),
			Kernel:       req.Kernel,
			Graph:        req.Graph,
			Client:       idx,
		})
	}
	return clientResult{records: records}
}

// writeRecords appends the run's records as JSONL.
func writeRecords(path string, records []report.QueryRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, rec := range records {
		if err := enc.Encode(rec); err != nil {
			_ = f.Close() // the encode error is the one worth reporting
			return err
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close() // the flush error is the one worth reporting
		return err
	}
	return f.Close()
}

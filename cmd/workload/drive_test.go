package main

import (
	"bufio"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gapbench/internal/core"
	"gapbench/internal/kernel"
	"gapbench/internal/report"
	"gapbench/internal/serve"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("BFS:3,PR:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].kernel != "BFS" || mix[1].kernel != "PR" {
		t.Fatalf("mix = %+v", mix)
	}
	if mix[0].bound != 0.75 || mix[1].bound != 1.0 {
		t.Errorf("bounds = %v, %v, want 0.75, 1.0", mix[0].bound, mix[1].bound)
	}
	if _, err := parseMix("BC:1"); err == nil {
		t.Error("unserved kernel BC accepted")
	}
	if _, err := parseMix("BFS:-2"); err == nil {
		t.Error("negative weight accepted")
	}
	// The default mix covers all four served kernels.
	def, err := parseMix("")
	if err != nil || len(def) != 4 {
		t.Fatalf("default mix = %+v, %v", def, err)
	}
	// Sampling respects the weights roughly.
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[pickKernel(mix, rng)]++
	}
	if counts["BFS"] < 2700 || counts["BFS"] > 3300 {
		t.Errorf("BFS drawn %d/4000 with weight 3/4", counts["BFS"])
	}
}

func TestSourcePickerZipfSkews(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := newSourcePicker(rng, 1<<10, 1.5)
	low := 0
	for i := 0; i < 1000; i++ {
		v := p.pick()
		if v < 0 || v >= 1<<10 {
			t.Fatalf("source %d out of range", v)
		}
		if v < 8 {
			low++
		}
	}
	if low < 500 {
		t.Errorf("zipf 1.5 put only %d/1000 draws in the top 8 vertices", low)
	}
	// Uniform mode covers the range without the skew.
	u := newSourcePicker(rng, 1<<10, 0)
	low = 0
	for i := 0; i < 1000; i++ {
		if u.pick() < 8 {
			low++
		}
	}
	if low > 100 {
		t.Errorf("uniform picker drew %d/1000 from the top 8 vertices", low)
	}
}

// TestDriveEndToEnd runs the full driver against an in-process daemon:
// closed-loop and Poisson modes, JSONL records, the bench line, and the
// summary totals all agree.
func TestDriveEndToEnd(t *testing.T) {
	in, err := core.LoadInput(core.GraphSpec{Name: "Kron", Scale: 6, Seed: 1, Delta: 16, SourceSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = in.Close() })
	srv, err := serve.NewServer(serve.Config{PoolSize: 2, Workers: 2, Logf: t.Logf},
		[]*core.Input{in}, []kernel.Framework{core.FrameworkByName("GAP")})
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "gapd.sock")
	l, err := serve.Listen("unix:" + sock)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Shutdown(5 * time.Second) })

	recPath := filepath.Join(t.TempDir(), "records.jsonl")
	var out strings.Builder
	err = runDrive(driveConfig{
		Addr:     "unix:" + sock,
		Clients:  3,
		Duration: 400 * time.Millisecond,
		Mix:      "BFS:2,PR:1,CC:1",
		Zipf:     1.3,
		Records:  recPath,
		Bench:    "Serve/test/c3",
		Seed:     1,
	}, &out)
	if err != nil {
		t.Fatalf("closed-loop drive: %v\noutput: %s", err, out.String())
	}
	for _, want := range []string{"closed loop", "throughput", "p99", "BenchmarkServe/test/c3 1 "} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("driver output missing %q:\n%s", want, out.String())
		}
	}

	// The JSONL records decode and match the daemon's view: every record OK
	// (nothing in this run sheds or faults), kernels within the mix.
	f, err := os.Open(recPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var n int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec report.QueryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		if rec.Code != "OK" {
			t.Errorf("record %d: code %s (%s)", n, rec.Code, rec.Kernel)
		}
		switch rec.Kernel {
		case "BFS", "PR", "CC":
		default:
			t.Errorf("record %d: kernel %q outside the mix", n, rec.Kernel)
		}
		n++
	}
	if n == 0 {
		t.Fatal("driver recorded no queries")
	}
	st := srv.StatsSnapshot()
	if st.OK != int64(n) {
		t.Errorf("daemon served %d OK, driver recorded %d", st.OK, n)
	}

	// Poisson mode: a modest offered rate yields roughly rate*duration
	// arrivals and an open-loop pacing note in the header.
	out.Reset()
	err = runDrive(driveConfig{
		Addr:     "unix:" + sock,
		Clients:  2,
		Duration: 500 * time.Millisecond,
		Rate:     100,
		Mix:      "CC:1",
		Seed:     2,
	}, &out)
	if err != nil {
		t.Fatalf("poisson drive: %v", err)
	}
	if !strings.Contains(out.String(), "poisson 100.0 qps offered") {
		t.Errorf("poisson header missing:\n%s", out.String())
	}
}

// Command workload has two modes.
//
// Characterization (the default): runs the workload characterization that
// motivated the GAP suite's design (§II) — instrumented BFS/SSSP/PR over the
// benchmark graphs, reporting rounds, edge traffic, frontier profiles, and
// direction-switch behaviour.
//
//	workload -scale 12
//	workload -scale 14 -graphs Road,Kron -kernels BFS,SSSP
//
// Load driver (-addr): replays a mixed kernel query stream against a running
// gapd daemon with N concurrent clients, Zipf-skewed sources, and Poisson or
// closed-loop arrivals, then reports throughput, shed rate, and latency
// tails (p50/p99/p999). See drive.go.
//
//	workload -addr unix:/tmp/gapd.sock -clients 16 -duration 10s
//	workload -addr tcp:127.0.0.1:9736 -clients 4 -rate 200 -mix BFS:4,PR:1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gapbench/internal/charact"
	"gapbench/internal/core"
	"gapbench/internal/generate"
)

func main() {
	var (
		scale      = flag.Int("scale", 12, "base graph scale (log2 vertices)")
		graphsFlag = flag.String("graphs", "", "comma-separated graph subset (default all five)")
		kernsFlag  = flag.String("kernels", "BFS,SSSP,PR", "kernels to characterize")

		addr     = flag.String("addr", "", "gapd address (unix:/path or tcp:host:port); set to run the load driver instead of characterization")
		clients  = flag.Int("clients", 4, "driver: concurrent client connections")
		duration = flag.Duration("duration", 10*time.Second, "driver: run length")
		rate     = flag.Float64("rate", 0, "driver: total offered Poisson arrival rate in qps (0 = closed loop)")
		mix      = flag.String("mix", "", "driver: kernel mix weights, e.g. BFS:4,SSSP:2,PR:2,CC:2 (the default)")
		zipf     = flag.Float64("zipf", 1.3, "driver: source-vertex Zipf skew exponent (>1; 0 = uniform)")
		budget   = flag.Int64("budget", 0, "driver: per-query deadline budget in ms (0 = daemon default)")
		records  = flag.String("records", "", "driver: write per-query JSONL latency records here")
		bench    = flag.String("bench", "", "driver: also print a go-bench summary line named Benchmark<name>")
		seed     = flag.Int64("seed", 1, "driver: PRNG seed (client i uses seed+i)")
	)
	flag.Parse()
	var err error
	if *addr != "" {
		err = runDrive(driveConfig{
			Addr:     *addr,
			Clients:  *clients,
			Duration: *duration,
			Rate:     *rate,
			Mix:      *mix,
			Zipf:     *zipf,
			BudgetMS: *budget,
			Records:  *records,
			Bench:    *bench,
			Seed:     *seed,
		}, os.Stdout)
	} else {
		err = run(*scale, *graphsFlag, *kernsFlag)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "workload:", err)
		os.Exit(1)
	}
}

func run(scale int, graphsCSV, kernelsCSV string) error {
	wantGraph := func(name string) bool {
		if graphsCSV == "" {
			return true
		}
		for _, g := range strings.Split(graphsCSV, ",") {
			if strings.EqualFold(strings.TrimSpace(g), name) {
				return true
			}
		}
		return false
	}
	wantKernel := map[string]bool{}
	for _, k := range strings.Split(kernelsCSV, ",") {
		wantKernel[strings.ToUpper(strings.TrimSpace(k))] = true
	}

	var profiles []charact.Profile
	for _, spec := range core.DefaultSuite(scale) {
		if !wantGraph(spec.Name) {
			continue
		}
		g, err := generate.ByName(spec.Name, spec.Scale, spec.Seed)
		if err != nil {
			return err
		}
		src := core.PickSources(g, 1, spec.SourceSeed)[0]
		if wantKernel["BFS"] {
			p := charact.BFS(g, src)
			p.Graph = spec.Name
			profiles = append(profiles, p)
		}
		if wantKernel["SSSP"] {
			p := charact.SSSP(g, src, spec.Delta)
			p.Graph = spec.Name
			profiles = append(profiles, p)
		}
		if wantKernel["PR"] {
			p := charact.PR(g)
			p.Graph = spec.Name
			profiles = append(profiles, p)
		}
	}
	fmt.Print(charact.Report(profiles))
	return nil
}

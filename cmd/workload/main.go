// Command workload runs the workload characterization that motivated the
// GAP suite's design (§II): instrumented BFS/SSSP/PR over the benchmark
// graphs, reporting rounds, edge traffic, frontier profiles, and
// direction-switch behaviour.
//
//	workload -scale 12
//	workload -scale 14 -graphs Road,Kron -kernels BFS,SSSP
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gapbench/internal/charact"
	"gapbench/internal/core"
	"gapbench/internal/generate"
)

func main() {
	var (
		scale      = flag.Int("scale", 12, "base graph scale (log2 vertices)")
		graphsFlag = flag.String("graphs", "", "comma-separated graph subset (default all five)")
		kernsFlag  = flag.String("kernels", "BFS,SSSP,PR", "kernels to characterize")
	)
	flag.Parse()
	if err := run(*scale, *graphsFlag, *kernsFlag); err != nil {
		fmt.Fprintln(os.Stderr, "workload:", err)
		os.Exit(1)
	}
}

func run(scale int, graphsCSV, kernelsCSV string) error {
	wantGraph := func(name string) bool {
		if graphsCSV == "" {
			return true
		}
		for _, g := range strings.Split(graphsCSV, ",") {
			if strings.EqualFold(strings.TrimSpace(g), name) {
				return true
			}
		}
		return false
	}
	wantKernel := map[string]bool{}
	for _, k := range strings.Split(kernelsCSV, ",") {
		wantKernel[strings.ToUpper(strings.TrimSpace(k))] = true
	}

	var profiles []charact.Profile
	for _, spec := range core.DefaultSuite(scale) {
		if !wantGraph(spec.Name) {
			continue
		}
		g, err := generate.ByName(spec.Name, spec.Scale, spec.Seed)
		if err != nil {
			return err
		}
		src := core.PickSources(g, 1, spec.SourceSeed)[0]
		if wantKernel["BFS"] {
			p := charact.BFS(g, src)
			p.Graph = spec.Name
			profiles = append(profiles, p)
		}
		if wantKernel["SSSP"] {
			p := charact.SSSP(g, src, spec.Delta)
			p.Graph = spec.Name
			profiles = append(profiles, p)
		}
		if wantKernel["PR"] {
			p := charact.PR(g)
			p.Graph = spec.Name
			profiles = append(profiles, p)
		}
	}
	fmt.Print(charact.Report(profiles))
	return nil
}

// BenchmarkDirection times the LAGraph BFS under each direction policy so
// EXPERIMENTS.md can tabulate the push-vs-pull crossover per graph and
// scripts/bench.sh can assert the auto dispatcher stays within a few percent
// of the better pinned direction.
package gapbench_test

import (
	"testing"

	"gapbench/internal/core"
	"gapbench/internal/grb"
	"gapbench/internal/kernel"
	"gapbench/internal/lagraph"
)

// BenchmarkDirection: one cell per (graph, policy). Baseline rules keep the
// cells comparable with BenchmarkSuite's Baseline/BFS row while isolating the
// direction decision from the Optimized rule set's other levers.
func BenchmarkDirection(b *testing.B) {
	fw := lagraph.New()
	inputs := loadInputs()
	core.PrepareViews([]kernel.Framework{fw}, inputs)
	policies := []struct {
		name   string
		policy grb.DirPolicy
	}{
		{"Push", grb.DirPush},
		{"Pull", grb.DirPull},
		{"Auto", grb.DirAuto},
	}
	for _, in := range inputs {
		for _, pol := range policies {
			b.Run(in.Spec.Name+"/"+pol.name, func(b *testing.B) {
				opt := benchOptions(in, kernel.Baseline)
				for i := 0; i < b.N; i++ {
					src := in.Sources[i%len(in.Sources)]
					if pi := fw.BFSWithPolicy(in.Graph, src, opt, pol.policy); pi == nil {
						b.Fatal("BFS returned no parent vector")
					}
				}
			})
		}
	}
}

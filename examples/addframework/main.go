// Addframework: the paper's §VI future work — "the most difficult part of
// this project was to work out procedures required to generate consistent
// results. Those same procedures can be used with other graph frameworks,
// allowing us to expand these data sets." This example does exactly that:
// it defines a seventh framework (a deliberately plain, serial, textbook
// implementation), runs it through the same verified benchmark procedure as
// the six reproduced frameworks, and prints its Table V row.
package main

import (
	"container/heap"
	"fmt"
	"log"

	"gapbench"
)

func main() {
	specs := gapbench.DefaultSuite(10)
	var inputs []*gapbench.Input
	var names []string
	for _, spec := range specs {
		in, err := gapbench.LoadInput(spec)
		if err != nil {
			log.Fatal(err)
		}
		inputs = append(inputs, in)
		names = append(names, spec.Name)
	}

	runner := gapbench.NewRunner()
	runner.Trials = 2
	frameworks := []gapbench.Framework{
		gapbench.FrameworkByName("GAP"), // the reference every ratio needs
		textbook{},                      // the newcomer under evaluation
	}
	results, err := runner.RunSuite(frameworks, inputs,
		[]gapbench.Mode{gapbench.Baseline}, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if !r.Verified {
			log.Fatalf("%s %s on %s failed verification: %s", r.Framework, r.Kernel, r.Graph, r.Err)
		}
	}
	fmt.Println("A seventh framework, benchmarked under the paper's procedure:")
	fmt.Println()
	fmt.Print(gapbench.TableV(results, names))
	fmt.Println()
	fmt.Println("Note: on a single-core host at reduced scale, a clean serial")
	fmt.Println("implementation is competitive — the §VI observation that the")
	fmt.Println("reference \"often did better on Road with fewer cores precisely")
	fmt.Println("because it would reduce the synchronization burden\", taken to")
	fmt.Println("its limit. On a many-core machine the parallel frameworks pull")
	fmt.Println("ahead and this row turns red.")
}

// textbook is the simplest correct implementation of each kernel: serial,
// no direction optimization, no delta buckets, no sampling — the natural
// starting point any new framework would be measured from.
type textbook struct{}

func (textbook) Name() string { return "Textbook" }

func (textbook) BFS(g *gapbench.Graph, src gapbench.NodeID, _ gapbench.Options) []gapbench.NodeID {
	parent := make([]gapbench.NodeID, g.NumNodes())
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []gapbench.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.OutNeighbors(u) {
			if parent[v] < 0 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent
}

// SSSP is plain binary-heap Dijkstra.
func (textbook) SSSP(g *gapbench.Graph, src gapbench.NodeID, _ gapbench.Options) []gapbench.Dist {
	const inf = int32(1<<31 - 1)
	dist := make([]gapbench.Dist, g.NumNodes())
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	h := &distHeap{{src, 0}}
	for h.Len() > 0 {
		top := heap.Pop(h).(pair)
		if top.d > dist[top.v] {
			continue
		}
		ws := g.OutWeights(top.v)
		for i, v := range g.OutNeighbors(top.v) {
			if nd := top.d + ws[i]; nd < dist[v] {
				dist[v] = nd
				heap.Push(h, pair{v, nd})
			}
		}
	}
	return dist
}

func (textbook) PR(g *gapbench.Graph, _ gapbench.Options) []float64 {
	n := int(g.NumNodes())
	const damping, tol = 0.85, 1e-4
	base := (1 - damping) / float64(n)
	ranks := make([]float64, n)
	contrib := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	for it := 0; it < 100; it++ {
		dangling := 0.0
		for u := 0; u < n; u++ {
			if d := g.OutDegree(gapbench.NodeID(u)); d > 0 {
				contrib[u] = ranks[u] / float64(d)
			} else {
				contrib[u] = 0
				dangling += ranks[u]
			}
		}
		share := damping * dangling / float64(n)
		delta := 0.0
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(gapbench.NodeID(v)) {
				sum += contrib[u]
			}
			next := base + share + damping*sum
			if next > ranks[v] {
				delta += next - ranks[v]
			} else {
				delta += ranks[v] - next
			}
			ranks[v] = next
		}
		if delta < tol {
			break
		}
	}
	return ranks
}

func (textbook) CC(g *gapbench.Graph, _ gapbench.Options) []gapbench.NodeID {
	labels := make([]gapbench.NodeID, g.NumNodes())
	for i := range labels {
		labels[i] = -1
	}
	var queue []gapbench.NodeID
	for s := gapbench.NodeID(0); s < g.NumNodes(); s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = s
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			visit := func(v gapbench.NodeID) {
				if labels[v] < 0 {
					labels[v] = s
					queue = append(queue, v)
				}
			}
			for _, v := range g.OutNeighbors(u) {
				visit(v)
			}
			if g.Directed() {
				for _, v := range g.InNeighbors(u) {
					visit(v)
				}
			}
		}
	}
	return labels
}

func (textbook) BC(g *gapbench.Graph, sources []gapbench.NodeID, _ gapbench.Options) []float64 {
	n := int(g.NumNodes())
	scores := make([]float64, n)
	depth := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	for _, src := range sources {
		for i := 0; i < n; i++ {
			depth[i], sigma[i], delta[i] = -1, 0, 0
		}
		depth[src], sigma[src] = 0, 1
		order := make([]gapbench.NodeID, 0, n)
		queue := []gapbench.NodeID{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			for _, v := range g.OutNeighbors(u) {
				if depth[v] < 0 {
					depth[v] = depth[u] + 1
					queue = append(queue, v)
				}
				if depth[v] == depth[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			u := order[i]
			for _, v := range g.OutNeighbors(u) {
				if depth[v] == depth[u]+1 {
					delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
				}
			}
			if u != src {
				scores[u] += delta[u]
			}
		}
	}
	maxScore := 0.0
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
	}
	if maxScore > 0 {
		for i := range scores {
			scores[i] /= maxScore
		}
	}
	return scores
}

func (textbook) TC(g *gapbench.Graph, opt gapbench.Options) int64 {
	u := opt.Undirected(g)
	var count int64
	for a := gapbench.NodeID(0); a < u.NumNodes(); a++ {
		na := u.OutNeighbors(a)
		for _, b := range na {
			if b > a {
				break
			}
			nb := u.OutNeighbors(b)
			it := 0
			for _, w := range nb {
				if w > b {
					break
				}
				for na[it] < w {
					it++
				}
				if na[it] == w {
					count++
				}
			}
		}
	}
	return count
}

type pair struct {
	v gapbench.NodeID
	d gapbench.Dist
}
type distHeap []pair

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(pair)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

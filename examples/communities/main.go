// Communities: the LDBC Graphalytics extension kernels (CDLP community
// detection, local clustering coefficient) on the web crawl — the
// "more diverse mix of graph algorithms" the paper's §I credits LDBC with —
// plus a workload characterization of the underlying traversals.
package main

import (
	"fmt"
	"log"

	"gapbench"
)

func main() {
	g, err := gapbench.GenerateGraph("Web", 12, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web crawl: %d pages, %d links\n\n", g.NumNodes(), g.NumEdges())

	// Community detection by synchronous label propagation.
	labels := gapbench.CDLP(g, 10, 0)
	sizes := gapbench.CommunitySizes(labels)
	fmt.Printf("CDLP found %d communities; ten largest: %v\n", len(sizes), sizes[:min(10, len(sizes))])

	// Local clustering: how tightly knit each page's neighborhood is.
	lcc := gapbench.LCC(g, 0)
	var mean float64
	tight := 0
	for _, s := range lcc {
		mean += s
		if s > 0.5 {
			tight++
		}
	}
	mean /= float64(len(lcc))
	fmt.Printf("mean local clustering %.4f; %d pages sit in near-cliques (LCC > 0.5)\n\n", mean, tight)

	// Workload characterization: why the Road column of Table V looks the
	// way it does, in three rows.
	var profiles []gapbench.Profile
	for _, name := range []string{"Road", "Web", "Kron"} {
		gg, err := gapbench.GenerateGraph(name, 12, 42)
		if err != nil {
			log.Fatal(err)
		}
		src := gapbench.NodeID(0)
		for gg.OutDegree(src) == 0 {
			src++
		}
		p := gapbench.CharacterizeBFS(gg, src)
		p.Graph = name
		profiles = append(profiles, p)
	}
	fmt.Print(gapbench.CharacterizationReport(profiles))
}

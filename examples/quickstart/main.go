// Quickstart: build a small graph by hand, run all six GAP kernels through
// every framework, and confirm the frameworks agree — the 60-second tour of
// the public API.
package main

import (
	"fmt"
	"log"

	"gapbench"
)

func main() {
	// A small weighted social circle: two triangles sharing vertex 2, a
	// tail, and an isolated lurker (vertex 7).
	edges := []gapbench.WEdge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 9},
		{U: 2, V: 3, W: 2}, {U: 3, V: 4, W: 4}, {U: 2, V: 4, W: 6},
		{U: 4, V: 5, W: 1}, {U: 5, V: 6, W: 8},
	}
	g, err := gapbench.BuildWeightedGraph(edges, gapbench.BuildOptions{NumNodes: 8, Directed: false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g)

	opt := gapbench.Options{}
	src := gapbench.NodeID(0)

	for _, fw := range gapbench.Frameworks() {
		parents := fw.BFS(g, src, opt)
		dist := fw.SSSP(g, src, opt)
		ranks := fw.PR(g, opt)
		comps := fw.CC(g, opt)
		triangles := fw.TC(g, opt)

		// Cross-validate everything against the built-in oracles.
		for name, err := range map[string]error{
			"BFS":  gapbench.VerifyBFS(g, src, parents),
			"SSSP": gapbench.VerifySSSP(g, src, dist),
			"PR":   gapbench.VerifyPR(g, ranks),
			"CC":   gapbench.VerifyCC(g, comps),
			"TC":   gapbench.VerifyTC(g, triangles),
		} {
			if err != nil {
				log.Fatalf("%s %s: %v", fw.Name(), name, err)
			}
		}
		fmt.Printf("%-12s dist(0->6)=%-3d triangles=%d  top rank v%d\n",
			fw.Name(), dist[6], triangles, argmax(ranks))
	}
	fmt.Println("all six frameworks agree and pass the GAP verifiers")
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

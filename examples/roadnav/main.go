// Roadnav: single-source shortest paths on the synthetic road network — the
// workload the paper's §VI singles out as hardest for bulk-synchronous
// frameworks. The example sweeps the delta-stepping bucket width (the one
// per-graph knob the GAP rules allow everywhere) and compares the
// bucket-fusion and asynchronous strategies on a high-diameter graph.
package main

import (
	"fmt"
	"log"
	"time"

	"gapbench"
)

func main() {
	g, err := gapbench.GenerateGraph("Road", 14, 42)
	if err != nil {
		log.Fatal(err)
	}
	stats := gapbench.ComputeStats(g)
	fmt.Printf("road network: %d intersections, %d segments, diameter ~%d\n",
		stats.NumNodes, stats.NumEdges, stats.ApproxDiameter)

	src := gapbench.NodeID(0)
	gap := gapbench.FrameworkByName("GAP")

	// Delta sensitivity: too small means thousands of rounds, too large
	// degenerates toward Bellman-Ford re-relaxations.
	fmt.Println("\ndelta sweep (GAP reference, bucket fusion on):")
	var dist []gapbench.Dist
	for _, delta := range []gapbench.Dist{2, 16, 64, 256, 4096} {
		start := time.Now()
		dist = gap.SSSP(g, src, gapbench.Options{Delta: delta})
		elapsed := time.Since(start)
		if err := gapbench.VerifySSSP(g, src, dist); err != nil {
			log.Fatalf("delta=%d: %v", delta, err)
		}
		fmt.Printf("  delta=%-5d %8.3fms\n", delta, float64(elapsed.Microseconds())/1000)
	}

	// The same routing query through every framework: identical distances,
	// very different machinery underneath (§V-B).
	fmt.Println("\nframework comparison (delta=64):")
	for _, fw := range gapbench.Frameworks() {
		start := time.Now()
		d := fw.SSSP(g, src, gapbench.Options{Delta: 64})
		elapsed := time.Since(start)
		if err := gapbench.VerifySSSP(g, src, d); err != nil {
			log.Fatalf("%s: %v", fw.Name(), err)
		}
		fmt.Printf("  %-12s %8.3fms\n", fw.Name(), float64(elapsed.Microseconds())/1000)
	}

	// A routing answer, reconstructed from the distance field.
	dest := gapbench.NodeID(g.NumNodes() - 1)
	fmt.Printf("\nroute 0 -> %d: total weight %d over %d hops\n",
		dest, dist[dest], countHops(g, dist, src, dest))
}

// countHops walks the shortest-path tree backward from dest by always
// stepping to an in-neighbor that lies on a shortest path.
func countHops(g *gapbench.Graph, dist []gapbench.Dist, src, dest gapbench.NodeID) int {
	hops := 0
	for v := dest; v != src; {
		var next gapbench.NodeID = -1
		inWeights := g.InWeights(v)
		for i, u := range g.InNeighbors(v) {
			if dist[u]+inWeights[i] == dist[v] {
				next = u
				break
			}
		}
		if next < 0 {
			return -1 // unreachable
		}
		v = next
		hops++
	}
	return hops
}

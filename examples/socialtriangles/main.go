// Socialtriangles: community structure of the synthetic social network —
// triangle counting with and without the degree-relabeling heuristic (the
// optimization §V-F turns on for power-law graphs), plus connected
// components and a clustering-coefficient estimate.
package main

import (
	"fmt"
	"log"
	"time"

	"gapbench"
)

func main() {
	g, err := gapbench.GenerateGraph("Twitter", 13, 42)
	if err != nil {
		log.Fatal(err)
	}
	u := g.Undirected() // friendships, ignoring follow direction
	fmt.Printf("social graph: %d accounts, %d follow edges\n", g.NumNodes(), g.NumEdges())

	// Components first: how many separate communities exist at all?
	labels := gapbench.FrameworkByName("GAP").CC(g, gapbench.Options{})
	if err := gapbench.VerifyCC(g, labels); err != nil {
		log.Fatal(err)
	}
	sizes := map[gapbench.NodeID]int{}
	for _, l := range labels {
		sizes[l]++
	}
	giant := 0
	for _, s := range sizes {
		if s > giant {
			giant = s
		}
	}
	fmt.Printf("components: %d total, giant component holds %.1f%% of accounts\n",
		len(sizes), 100*float64(giant)/float64(g.NumNodes()))

	// Triangle counting across the frameworks. The input is power-law, so
	// every implementation's relabeling heuristic fires; Optimized mode is
	// allowed to exclude that preprocessing (§V-F).
	fmt.Println("\ntriangle counting:")
	var count int64
	for _, fw := range gapbench.Frameworks() {
		start := time.Now()
		c := fw.TC(g, gapbench.Options{UndirectedView: u})
		elapsed := time.Since(start)
		if err := gapbench.VerifyTC(u, c); err != nil {
			log.Fatalf("%s: %v", fw.Name(), err)
		}
		count = c
		fmt.Printf("  %-12s %10d triangles %10.3fms\n", fw.Name(), c, float64(elapsed.Microseconds())/1000)
	}

	// Global clustering coefficient: 3*triangles / open wedges.
	var wedges int64
	for v := gapbench.NodeID(0); v < u.NumNodes(); v++ {
		d := u.OutDegree(v)
		wedges += d * (d - 1) / 2
	}
	fmt.Printf("\nglobal clustering coefficient: %.4f (%d triangles / %d wedges)\n",
		3*float64(count)/float64(wedges), count, wedges)
}

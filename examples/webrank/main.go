// Webrank: PageRank over the synthetic web crawl, contrasting the Jacobi
// iteration the GAP reference uses with the Gauss-Seidel variants §V-D
// credits for Galois' and NWGraph's PR wins, and showing how rankings
// concentrate on host front pages.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"gapbench"
)

func main() {
	g, err := gapbench.GenerateGraph("Web", 13, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web crawl: %d pages, %d links\n", g.NumNodes(), g.NumEdges())

	// Jacobi (GAP, GraphIt, SuiteSparse) vs Gauss-Seidel (Galois, GKC,
	// NWGraph): same fixed point, different convergence behaviour.
	fmt.Println("\nPageRank through each framework:")
	var ranks []float64
	for _, fw := range gapbench.Frameworks() {
		start := time.Now()
		r := fw.PR(g, gapbench.Options{})
		elapsed := time.Since(start)
		if err := gapbench.VerifyPR(g, r); err != nil {
			log.Fatalf("%s: %v", fw.Name(), err)
		}
		if fw.Name() == "GAP" {
			ranks = r
		}
		fmt.Printf("  %-12s %8.3fms\n", fw.Name(), float64(elapsed.Microseconds())/1000)
	}

	// The highest-ranked pages should be host front pages: they soak up
	// both intra-host and cross-host links in the crawl model.
	type page struct {
		id   gapbench.NodeID
		rank float64
	}
	pages := make([]page, len(ranks))
	for i, r := range ranks {
		pages[i] = page{gapbench.NodeID(i), r}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].rank > pages[j].rank })

	fmt.Println("\ntop 10 pages by rank:")
	var massTop float64
	for _, p := range pages[:10] {
		fmt.Printf("  page %-7d rank %.5f  in-degree %d\n", p.id, p.rank, g.InDegree(p.id))
		massTop += p.rank
	}
	fmt.Printf("top 10 pages hold %.1f%% of all rank mass (hub concentration)\n", 100*massTop)
}

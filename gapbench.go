// Package gapbench is the public API of this repository: a Go reproduction
// of "Evaluation of Graph Analytics Frameworks Using the GAP Benchmark
// Suite" (IISWC 2020). It exposes the shared CSR graph substrate, the five
// synthetic benchmark graphs, six graph-framework reproductions (the GAP
// reference, SuiteSparse GraphBLAS + LAGraph, Galois, GraphIt, GKC, and
// NWGraph), and the benchmark harness that regenerates the paper's tables.
//
// Quick start:
//
//	g, _ := gapbench.GenerateGraph("Kron", 14, 42)
//	fw := gapbench.FrameworkByName("GAP")
//	parents := fw.BFS(g, 0, gapbench.Options{})
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package gapbench

import (
	"gapbench/internal/charact"
	"gapbench/internal/core"
	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/ldbc"
	"gapbench/internal/report"
	"gapbench/internal/verify"
)

// Core graph types, aliased from the substrate so user code and internal
// code share one representation.
type (
	// Graph is an immutable CSR graph with out- and in-adjacency.
	Graph = graph.Graph
	// NodeID is a 32-bit vertex identifier.
	NodeID = graph.NodeID
	// Edge is one endpoint pair for graph construction.
	Edge = graph.Edge
	// WEdge is a weighted edge for graph construction.
	WEdge = graph.WEdge
	// BuildOptions configures graph construction.
	BuildOptions = graph.BuildOptions
	// Stats holds Table I-style graph properties.
	Stats = graph.Stats
)

// Framework execution types.
type (
	// Framework is the six-kernel interface every reproduction implements.
	Framework = kernel.Framework
	// Options carries per-run knobs (mode, workers, delta, views).
	Options = kernel.Options
	// Mode selects the Baseline or Optimized rule set.
	Mode = kernel.Mode
	// Dist is an SSSP distance.
	Dist = kernel.Dist
)

// Benchmark harness types.
type (
	// GraphSpec describes one benchmark input.
	GraphSpec = core.GraphSpec
	// Input is a prepared benchmark input (graph, views, sources).
	Input = core.Input
	// Runner executes benchmark cells.
	Runner = core.Runner
	// Result is one timed, verified benchmark cell.
	Result = core.Result
	// Kernel names one of the six benchmark kernels.
	Kernel = core.Kernel
	// Status classifies a trial/cell outcome under the fault model
	// (DESIGN.md §9).
	Status = core.Status
	// TrialRecord is the per-attempt fault log entry on a Result.
	TrialRecord = core.TrialRecord
	// RetryPolicy decides which trial failures get re-attempted.
	RetryPolicy = core.RetryPolicy
)

// Rule sets.
const (
	Baseline  = kernel.Baseline
	Optimized = kernel.Optimized
)

// The benchmark kernels.
const (
	BFS  = core.BFS
	SSSP = core.SSSP
	CC   = core.CC
	PR   = core.PR
	BC   = core.BC
	TC   = core.TC
)

// The trial/cell statuses of the fault model, from best to worst.
const (
	StatusOK           = core.OK
	StatusVerifyFailed = core.VerifyFailed
	StatusPanicked     = core.Panicked
	StatusTimedOut     = core.TimedOut
	StatusSkipped      = core.Skipped
)

// ReadJournal loads the cells of a JSONL run journal (see
// Runner.JournalPath); a missing file is an empty journal.
func ReadJournal(path string) ([]Result, error) { return core.ReadJournal(path) }

// GraphNames lists the five benchmark graphs in Table I order.
var GraphNames = generate.Names

// BuildGraph constructs a CSR graph from an edge list.
func BuildGraph(edges []Edge, opt BuildOptions) (*Graph, error) {
	return graph.Build(edges, opt)
}

// BuildWeightedGraph constructs a weighted CSR graph from an edge list.
func BuildWeightedGraph(edges []WEdge, opt BuildOptions) (*Graph, error) {
	return graph.BuildWeighted(edges, opt)
}

// GenerateGraph synthesizes one of the five benchmark graphs ("Road",
// "Twitter", "Web", "Kron", "Urand") at the given scale (log2 of the
// approximate vertex count).
func GenerateGraph(name string, scale int, seed uint64) (*Graph, error) {
	return generate.ByName(name, scale, seed)
}

// LoadGraph reads a serialized graph written by (*Graph).Save.
func LoadGraph(path string) (*Graph, error) { return graph.Load(path) }

// ComputeStats derives Table I-style properties of a graph.
func ComputeStats(g *Graph) Stats { return graph.ComputeStats(g) }

// Frameworks returns all six evaluated frameworks, the GAP reference first.
func Frameworks() []Framework { return core.Frameworks() }

// FrameworkByName returns the named framework ("GAP", "SuiteSparse",
// "Galois", "GraphIt", "GKC", "NWGraph") or nil.
func FrameworkByName(name string) Framework { return core.FrameworkByName(name) }

// DefaultSuite returns the five benchmark graph specs at the given base
// scale (the paper's Table I line-up, scaled down).
func DefaultSuite(baseScale int) []GraphSpec { return core.DefaultSuite(baseScale) }

// LoadInput generates a benchmark input with all untimed views and sources.
func LoadInput(spec GraphSpec) (*Input, error) { return core.LoadInput(spec) }

// NewRunner returns a benchmark runner with the paper's defaults.
func NewRunner() *Runner { return core.NewRunner() }

// VerifyBFS checks a BFS parent array against the spec (exported for
// downstream users adding their own frameworks).
func VerifyBFS(g *Graph, src NodeID, parent []NodeID) error {
	return verify.CheckBFS(g, src, parent)
}

// VerifySSSP checks SSSP distances against a Dijkstra oracle.
func VerifySSSP(g *Graph, src NodeID, dist []Dist) error {
	return verify.CheckSSSP(g, src, dist)
}

// VerifyPR checks PageRank scores against the fixed-point residual test.
func VerifyPR(g *Graph, ranks []float64) error { return verify.CheckPR(g, ranks) }

// VerifyCC checks component labels against connectivity.
func VerifyCC(g *Graph, labels []NodeID) error { return verify.CheckCC(g, labels) }

// VerifyBC checks betweenness scores against a serial Brandes oracle.
func VerifyBC(g *Graph, sources []NodeID, scores []float64) error {
	return verify.CheckBC(g, sources, scores)
}

// VerifyTC checks a triangle count against the exact oracle.
func VerifyTC(g *Graph, count int64) error { return verify.CheckTC(g, count) }

// TableI renders the graph-property table for the given named graphs.
func TableI(names []string, stats []Stats) string { return report.TableI(names, stats) }

// TableII renders the framework-attribute table.
func TableII(frameworks []Framework) string { return report.TableII(frameworks) }

// TableIII renders the per-kernel algorithm table.
func TableIII(frameworks []Framework) string { return report.TableIII(frameworks) }

// TableIV renders the fastest-time table from suite results.
func TableIV(results []Result, graphs []string) string { return report.TableIV(results, graphs) }

// TableV renders the speedup heat map from suite results.
func TableV(results []Result, graphs []string) string { return report.TableV(results, graphs) }

// ResultsCSV renders results as CSV.
func ResultsCSV(results []Result) string { return report.CSV(results) }

// CDLP runs LDBC Graphalytics community detection by label propagation for
// maxRounds synchronous rounds (an extension kernel beyond the six GAP
// kernels; see internal/ldbc).
func CDLP(g *Graph, maxRounds, workers int) []NodeID {
	return ldbc.CDLP(g, maxRounds, workers)
}

// LCC computes per-vertex local clustering coefficients (LDBC Graphalytics
// extension kernel).
func LCC(g *Graph, workers int) []float64 { return ldbc.LCC(g, workers) }

// CommunitySizes summarizes a CDLP labeling into descending community sizes.
func CommunitySizes(labels []NodeID) []int { return ldbc.CommunitySizes(labels) }

// Profile is a workload-characterization record (rounds, edge traffic,
// frontier sizes) from an instrumented kernel run.
type Profile = charact.Profile

// CharacterizeBFS profiles a direction-optimizing BFS run from src.
func CharacterizeBFS(g *Graph, src NodeID) Profile { return charact.BFS(g, src) }

// CharacterizeSSSP profiles a delta-stepping run from src.
func CharacterizeSSSP(g *Graph, src NodeID, delta Dist) Profile {
	return charact.SSSP(g, src, delta)
}

// CharacterizePR profiles a Jacobi PageRank run.
func CharacterizePR(g *Graph) Profile { return charact.PR(g) }

// CharacterizationReport renders profiles as the workload table + frontier
// sparklines of cmd/workload.
func CharacterizationReport(profiles []Profile) string { return charact.Report(profiles) }

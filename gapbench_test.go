package gapbench_test

import (
	"strings"
	"testing"

	"gapbench"
)

// TestFacadeEndToEnd drives the public API exactly the way the README's
// quick start does: generate, run, verify, report.
func TestFacadeEndToEnd(t *testing.T) {
	g, err := gapbench.GenerateGraph("Kron", 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	stats := gapbench.ComputeStats(g)
	if stats.NumNodes != g.NumNodes() {
		t.Fatal("stats disagree with graph")
	}

	fws := gapbench.Frameworks()
	if len(fws) != 6 {
		t.Fatalf("frameworks = %d", len(fws))
	}
	src := gapbench.NodeID(0)
	for _, fw := range fws {
		if err := gapbench.VerifyBFS(g, src, fw.BFS(g, src, gapbench.Options{})); err != nil {
			t.Errorf("%s BFS: %v", fw.Name(), err)
		}
		if err := gapbench.VerifySSSP(g, src, fw.SSSP(g, src, gapbench.Options{Delta: 16})); err != nil {
			t.Errorf("%s SSSP: %v", fw.Name(), err)
		}
	}

	if gapbench.FrameworkByName("GKC") == nil || gapbench.FrameworkByName("?") != nil {
		t.Fatal("FrameworkByName wrong")
	}
}

func TestFacadeBuildAndIO(t *testing.T) {
	g, err := gapbench.BuildGraph([]gapbench.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, gapbench.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/g.gapb"
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := gapbench.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed edge count")
	}
}

func TestFacadeRunnerAndTables(t *testing.T) {
	in, err := gapbench.LoadInput(gapbench.GraphSpec{Name: "Urand", Scale: 7, Seed: 1, Delta: 16, SourceSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := gapbench.NewRunner()
	r.Trials = 1
	r.BaselineWorkers = 2
	r.OptimizedWorkers = 2
	fws := gapbench.Frameworks()
	results, err := r.RunSuite(fws, []*gapbench.Input{in},
		[]gapbench.Mode{gapbench.Baseline}, []gapbench.Kernel{gapbench.BFS, gapbench.PR}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*len(fws) {
		t.Fatalf("results = %d", len(results))
	}
	for _, res := range results {
		if !res.Verified {
			t.Errorf("%s %s failed verification: %s", res.Framework, res.Kernel, res.Err)
		}
	}
	tableIV := gapbench.TableIV(results, []string{"Urand"})
	if !strings.Contains(tableIV, "BFS") || !strings.Contains(tableIV, "Urand") {
		t.Fatalf("Table IV malformed:\n%s", tableIV)
	}
	tableV := gapbench.TableV(results, []string{"Urand"})
	if !strings.Contains(tableV, "%") {
		t.Fatalf("Table V malformed:\n%s", tableV)
	}
	csv := gapbench.ResultsCSV(results)
	if strings.Count(csv, "\n") != len(results)+1 {
		t.Fatalf("CSV rows = %d, want %d", strings.Count(csv, "\n"), len(results)+1)
	}
	if s := gapbench.TableII(fws); !strings.Contains(s, "sparse linear algebra") {
		t.Fatal("Table II malformed")
	}
	if s := gapbench.TableIII(fws); !strings.Contains(s, "Afforest") {
		t.Fatal("Table III malformed")
	}
	stats := []gapbench.Stats{gapbench.ComputeStats(in.Graph)}
	if s := gapbench.TableI([]string{"Urand"}, stats); !strings.Contains(s, "Urand") {
		t.Fatal("Table I malformed")
	}
}

func TestFacadeSuiteSpecs(t *testing.T) {
	specs := gapbench.DefaultSuite(10)
	if len(specs) != 5 {
		t.Fatalf("suite size = %d", len(specs))
	}
	if len(gapbench.GraphNames) != 5 {
		t.Fatalf("GraphNames = %v", gapbench.GraphNames)
	}
}

func TestFacadeExtensionsAndCharacterization(t *testing.T) {
	g, err := gapbench.BuildWeightedGraph([]gapbench.WEdge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}, {U: 0, V: 2, W: 9}, {U: 3, V: 4, W: 1},
	}, gapbench.BuildOptions{NumNodes: 5, Directed: false})
	if err != nil {
		t.Fatal(err)
	}

	labels := gapbench.CDLP(g, 5, 2)
	sizes := gapbench.CommunitySizes(labels)
	if len(sizes) == 0 || sizes[0] < 2 {
		t.Fatalf("CDLP sizes = %v", sizes)
	}
	lcc := gapbench.LCC(g, 2)
	if lcc[0] != 1 || lcc[3] != 0 {
		t.Fatalf("LCC = %v", lcc)
	}

	fw := gapbench.FrameworkByName("GAP")
	if err := gapbench.VerifyPR(g, fw.PR(g, gapbench.Options{})); err != nil {
		t.Fatal(err)
	}
	if err := gapbench.VerifyCC(g, fw.CC(g, gapbench.Options{})); err != nil {
		t.Fatal(err)
	}
	if err := gapbench.VerifyBC(g, []gapbench.NodeID{0}, fw.BC(g, []gapbench.NodeID{0}, gapbench.Options{})); err != nil {
		t.Fatal(err)
	}
	if err := gapbench.VerifyTC(g, fw.TC(g, gapbench.Options{})); err != nil {
		t.Fatal(err)
	}

	p := gapbench.CharacterizeBFS(g, 0)
	if p.Rounds == 0 {
		t.Fatal("BFS profile empty")
	}
	p2 := gapbench.CharacterizeSSSP(g, 0, 16)
	p3 := gapbench.CharacterizePR(g)
	out := gapbench.CharacterizationReport([]gapbench.Profile{p, p2, p3})
	if !strings.Contains(out, "BFS") || !strings.Contains(out, "SSSP") || !strings.Contains(out, "PR") {
		t.Fatalf("characterization report incomplete:\n%s", out)
	}
}

module gapbench

go 1.24

// graphio_bench_test.go: the build-once-load-many evidence for the arena
// storage layer (DESIGN.md §3).
//
// BenchmarkGraphIO times the three ways a benchmark run can obtain the Kron
// graph:
//
//   - Regenerate: generator + counting-sort build from scratch — what every
//     run pays without serialized graphs;
//   - LoadV1: the legacy streaming codec (decode-and-copy into a heap
//     arena);
//   - MmapV2: the format-v2 zero-copy path — header validation plus an mmap,
//     O(header) regardless of graph size.
//
// The input scale is GAPBENCH_MMAP_SCALE (log2 vertices, default 12 so the
// check.sh bit-rot tier stays cheap); scripts/bench.sh adds a scale-20 cell
// where the mmap-vs-regenerate gap is the headline number.
package gapbench_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"gapbench/internal/generate"
	"gapbench/internal/graph"
)

func mmapBenchScale() int {
	if s := os.Getenv("GAPBENCH_MMAP_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 4 && v <= 24 {
			return v
		}
	}
	return 12
}

func BenchmarkGraphIO(b *testing.B) {
	scale := mmapBenchScale()
	g, err := generate.ByName(generate.NameKron, scale, 42)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	v2 := filepath.Join(dir, "kron.sg")
	v1 := filepath.Join(dir, "kron.gapb")
	if err := g.SaveSG(v2); err != nil {
		b.Fatal(err)
	}
	if err := g.Save(v1); err != nil {
		b.Fatal(err)
	}
	arenaBytes := g.Arena().Size()
	if err := g.Close(); err != nil {
		b.Fatal(err)
	}

	name := func(kind string) string { return fmt.Sprintf("%s/Kron-%d", kind, scale) }
	b.Run(name("Regenerate"), func(b *testing.B) {
		b.SetBytes(arenaBytes)
		for i := 0; i < b.N; i++ {
			rg, err := generate.ByName(generate.NameKron, scale, 42)
			if err != nil {
				b.Fatal(err)
			}
			if err := rg.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	loadBench := func(path string, wantMapped bool) func(*testing.B) {
		return func(b *testing.B) {
			b.SetBytes(arenaBytes)
			for i := 0; i < b.N; i++ {
				lg, err := graph.Load(path)
				if err != nil {
					b.Fatal(err)
				}
				if lg.Arena().Mapped() != wantMapped {
					b.Fatalf("Mapped() = %v, want %v for %s", lg.Arena().Mapped(), wantMapped, path)
				}
				if err := lg.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run(name("LoadV1"), loadBench(v1, false))
	b.Run(name("MmapV2"), loadBench(v2, true))
}

package analysis

import (
	"cmp"
	"go/token"
	"slices"
	"strconv"
	"strings"
)

// AllocInTimedRegion flags heap allocation on the *parallel hot path* of
// timed kernel packages: a make/new/append call or closure creation that
// executes inside a goroutine-spawned region (a par.For/ForDynamic/...
// closure, a `go` statement, or any function the call graph can reach from
// one). The harness times f.BFS(...) wall-clock, so a per-edge or
// per-vertex allocation inside a parallel loop is pure measured overhead —
// and allocator contention under 64 workers distorts exactly the
// cross-framework comparison the paper is making.
//
// Setup and amortized allocation is whitelisted four ways:
//
//   - anything outside spawned regions (the kernel entry allocating its
//     result arrays, frontiers, bitmaps before/between parallel phases) is
//     never flagged — GAP deliberately times those, and every framework
//     pays them alike;
//   - closures handed to par.ForWorker run once per worker, so their
//     allocations are per-worker setup (GKC local buffers, Galois chunk
//     seeds) and are exempt;
//   - func literals directly passed to a call or invoked in place
//     (par.For(n, func...), go func(){}()) are created once per phase or
//     spawn, not per element — only *stored* closures can churn on a hot
//     path;
//   - append is amortized growth: the make that created the buffer is the
//     finding, mirroring the transitive fixpoint's make/new-only rule.
//
// Per-chunk buffers (the GAP QueueBuffer idiom: one make per 64-vertex
// chunk) are genuine findings that a reviewer must either hoist to
// per-worker state or justify with //gapvet:ignore naming the amortization
// argument.
var AllocInTimedRegion = &Analyzer{
	Name:       "alloc-in-timed-region",
	Doc:        "no allocation on parallel hot paths of timed kernel packages",
	NeedsFacts: true,
	Run:        runAllocInTimedRegion,
}

func runAllocInTimedRegion(pass *Pass) {
	prog := pass.Prog
	if prog == nil || !timedPurityPackages[lastSegment(pass.Pkg.Path)] {
		return
	}
	type finding struct {
		pos token.Pos
		msg string
	}
	var findings []finding
	for _, s := range prog.FuncsInPackage(pass.Pkg.Path) {
		// Timed-origin concurrency only: the harness's per-trial sandbox
		// goroutine (internal/core) wraps whole kernel invocations for
		// fault isolation and must not drag every kernel entry point onto
		// the "hot path" — those setup allocations are deliberately timed
		// and paid alike by every framework.
		funcConcurrent := prog.ConcurrentFromTimed(s.ID)
		// Direct allocation sites.
		for _, a := range s.Allocs {
			if a.What == "append" {
				continue // amortized growth: the buffer's make is the finding
			}
			if a.What == "func literal" && a.immediate {
				continue // per-phase/per-spawn closure, not per-element churn
			}
			lexical := prog.timedSpawnCtx(s, a.ctx)
			if !lexical && !funcConcurrent {
				continue
			}
			if lexical && innermostIsForWorker(a.ctx) {
				continue // per-worker setup
			}
			findings = append(findings, finding{a.Pos,
				"allocation (" + a.What + ") on the parallel hot path of timed kernel package " +
					lastSegment(pass.Pkg.Path) + ": hoist to setup or per-worker state (par.ForWorker), or justify with //gapvet:ignore alloc-in-timed-region"})
		}
		// Calls from spawned regions into out-of-package functions that
		// (transitively) allocate. Same-package callees report at their own
		// allocation sites via the funcConcurrent path above.
		for _, c := range s.Calls {
			lexical := prog.timedSpawnCtx(s, c.ctx)
			if !lexical && !funcConcurrent {
				continue
			}
			if lexical && innermostIsForWorker(c.ctx) {
				continue
			}
			callee := prog.Funcs[c.Callee]
			if callee == nil || callee.PkgPath == pass.Pkg.Path {
				continue
			}
			if timedPurityPackages[lastSegment(callee.PkgPath)] {
				continue // the callee's own package reports it
			}
			what, pos, ok := prog.TransAlloc(c.Callee)
			if !ok {
				continue
			}
			at := pass.Pkg.Fset.Position(pos)
			findings = append(findings, finding{c.Pos,
				"call to " + prog.ShortName(c.Callee) + " allocates (" + what + " at " + at.Filename + ":" + strconv.Itoa(at.Line) +
					") on the parallel hot path of timed kernel package " + lastSegment(pass.Pkg.Path) +
					": hoist the allocation to setup, or justify with //gapvet:ignore alloc-in-timed-region"})
		}
	}
	slices.SortFunc(findings, func(a, b finding) int { return cmp.Compare(a.pos, b.pos) })
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// innermostIsForWorker reports whether the nearest enclosing spawner is
// par.ForWorker — either the package-level shim or the *par.Machine method
// (whose closure runs once per worker: setup, not hot path).
func innermostIsForWorker(ctx spawnCtx) bool {
	if len(ctx.spawners) == 0 {
		return false
	}
	inner := string(ctx.spawners[len(ctx.spawners)-1])
	return strings.HasSuffix(inner, "/par.ForWorker") || strings.HasSuffix(inner, ".par.ForWorker") ||
		strings.HasSuffix(inner, "par.Machine).ForWorker")
}

package analysis

import (
	"strings"
	"testing"
)

// TestAllocInTimedRegion covers the direct finding plus every whitelist:
// sequential setup, par.ForWorker closures, append, and immediately-consumed
// func literals. Fixture paths end in "gap" so they count as timed packages.
func TestAllocInTimedRegion(t *testing.T) {
	checkRule(t, AllocInTimedRegion, []ruleCase{
		{
			name: "make inside a par closure fires",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "gapbench/internal/par"

func Kernel(out [][]int32) {
	par.ForDynamic(len(out), 64, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = make([]int32, 8)
		}
	})
}
`},
			want: []string{"allocation (make) on the parallel hot path"},
		},
		{
			name: "stored closure inside a par closure fires",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "gapbench/internal/par"

func Kernel(xs []int64) {
	par.ForBlocked(len(xs), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f := func() int64 { return xs[i] }
			xs[i] = f()
		}
	})
}
`},
			want: []string{"allocation (func literal) on the parallel hot path"},
		},
		{
			name: "sequential setup allocation is deliberately timed, not flagged",
			path: "gapbench/internal/gap",
			files: map[string]string{"ok.go": `package gap

import "gapbench/internal/par"

func Kernel(n int) []int64 {
	out := make([]int64, n)
	par.For(n, 0, func(i int) {
		out[i] = int64(i)
	})
	return out
}
`},
			want: nil,
		},
		{
			name: "par.ForWorker closures are per-worker setup",
			path: "gapbench/internal/gap",
			files: map[string]string{"ok.go": `package gap

import "gapbench/internal/par"

func Kernel(xs []int64) {
	par.ForWorker(len(xs), 0, func(w, lo, hi int) {
		buf := make([]int64, 0, 64)
		for i := lo; i < hi; i++ {
			buf = append(buf, xs[i])
		}
		_ = buf
	})
}
`},
			want: nil,
		},
		{
			name: "append and immediate func literals are exempt",
			path: "gapbench/internal/gap",
			files: map[string]string{"ok.go": `package gap

import "gapbench/internal/par"

func Kernel(xs []int64, sink [][]int64) {
	par.ForBlocked(len(xs), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sink[i] = append(sink[i], xs[i])
		}
	})
	done := make(chan struct{})
	go func() {
		par.For(len(xs), 0, func(i int) { xs[i]++ })
		close(done)
	}()
	<-done
}
`},
			want: nil,
		},
		{
			name: "untimed packages are out of scope",
			path: "gapbench/internal/report",
			files: map[string]string{"ok.go": `package report

import "gapbench/internal/par"

func Render(out [][]int32) {
	par.For(len(out), 0, func(i int) {
		out[i] = make([]int32, 8)
	})
}
`},
			want: nil,
		},
	})
}

// TestAllocInTimedRegionCrossFunction seeds the same-package interprocedural
// case: the make sits in a lexically sequential helper that only the call
// graph places on a parallel path.
func TestAllocInTimedRegionCrossFunction(t *testing.T) {
	src := map[string]string{"bad.go": `package gap

import "gapbench/internal/par"

// scratch looks like setup code on its own.
func scratch(n int) []int32 {
	return make([]int32, n)
}

func Kernel(out [][]int32) {
	par.For(len(out), 0, func(i int) {
		out[i] = scratch(8)
	})
}
`}
	got := runRule(t, AllocInTimedRegion, loadFixture(t, "gapbench/internal/gap", src))
	if len(got) != 1 {
		t.Fatalf("want 1 diagnostic at the helper's make, got %v", got)
	}
	// Reported at scratch's own allocation site (line 7), not the call.
	if !strings.Contains(got[0], "bad.go:7:") || !strings.Contains(got[0], "allocation (make)") {
		t.Errorf("diagnostic = %q, want the make at bad.go:7 flagged", got[0])
	}
}

// TestAllocInTimedRegionCrossPackage seeds the transitive case across a
// package boundary: a timed kernel calls the real internal/graph constructor
// from a parallel region, and the finding lands at the kernel's call site,
// naming the allocation it reaches.
func TestAllocInTimedRegionCrossPackage(t *testing.T) {
	src := map[string]string{"bad.go": `package gap

import (
	"gapbench/internal/graph"
	"gapbench/internal/par"
)

func Kernel(n int64, sink []*graph.Bitmap) {
	par.For(len(sink), 0, func(i int) {
		sink[i] = graph.NewBitmap(n)
	})
}
`}
	fixture := loadFixture(t, "gapbench/internal/gap", src)
	got := runRuleOn(t, AllocInTimedRegion, fixture, loadRealDir(t, "internal/graph"), parPackage(t))
	if len(got) != 1 {
		t.Fatalf("want 1 diagnostic at the cross-package call, got %v", got)
	}
	for _, want := range []string{"bad.go:10:", "call to ", "NewBitmap", "allocates (make at "} {
		if !strings.Contains(got[0], want) {
			t.Errorf("diagnostic = %q, want substring %q", got[0], want)
		}
	}
}

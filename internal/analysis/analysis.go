// Package analysis is a small, stdlib-only static-analysis engine for this
// repository, built directly on go/parser, go/ast, and go/types (no
// golang.org/x/tools dependency). It exists to machine-check the invariants
// the paper's methodology rests on: the six framework reproductions stay
// honestly isolated from each other, the shared internal/par substrate is
// used race-free, GraphBLAS keeps its mandated 64-bit indices, timed kernel
// code stays free of I/O, and the harness does not drop errors.
//
// The cmd/gapvet CLI drives this package; see DESIGN.md's "Static analysis"
// section for the rule catalogue.
package analysis

import (
	"cmp"
	"fmt"
	"go/token"
	"slices"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the canonical "file:line: [rule] message"
// form emitted by gapvet.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one named rule.
type Analyzer struct {
	// Name is the rule identifier used in output, flags, and
	// //gapvet:ignore comments.
	Name string
	// Doc is a one-line description of the invariant the rule protects.
	Doc string
	// NeedsFacts marks interprocedural rules: Run builds the module-wide
	// Program (call graph + function summaries) once per invocation and
	// hands it to the pass when any enabled analyzer sets this.
	NeedsFacts bool
	// NeedsCompilerFacts marks the perf rules that join harvested compiler
	// diagnostics against the Program. These analyzers are skipped — not
	// failed — when no harvest was supplied (Run instead of
	// RunWithCompilerFacts), so the default gapvet invocation stays a pure
	// AST/type pass with no compiler dependency.
	NeedsCompilerFacts bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the module-wide fact database (nil unless the analyzer set
	// NeedsFacts). It spans every package of the Run call, so rules can
	// follow call chains across package boundaries.
	Prog *Program
	// CFacts is the harvested compiler-diagnostics table (nil unless the
	// run supplied one and the analyzer set NeedsCompilerFacts).
	CFacts *CompilerFacts
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full rule set in canonical order: the v1 syntactic
// rules first, then the v2 interprocedural (dataflow-engine) rules, then the
// v3 write-set/liveness rules.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		FrameworkIsolation,
		ParClosureRace,
		IndexWidth,
		TimedRegionPurity,
		UncheckedError,
		AtomicPlainMix,
		LockOrder,
		AllocInTimedRegion,
		SwallowedPanic,
		GraphMutation,
		ArenaEscape,
		CancelLiveness,
		LeaseReturn,
		EscapeInKernel,
		ClosureCaptureHot,
		BCEMiss,
		InlineMiss,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the given analyzers to the packages, honoring
// //gapvet:ignore suppressions, and returns the surviving diagnostics
// sorted by position. When any analyzer needs interprocedural facts, the
// module-wide Program is built once over all packages and shared.
// Analyzers that need compiler facts are skipped; use RunWithCompilerFacts.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunWithCompilerFacts(pkgs, analyzers, nil)
}

// RunWithCompilerFacts is Run with a harvested compiler-diagnostics table
// for the perf rules. With cf == nil, analyzers needing compiler facts are
// skipped entirely — they neither run nor force the Program build.
func RunWithCompilerFacts(pkgs []*Package, analyzers []*Analyzer, cf *CompilerFacts) []Diagnostic {
	var active []*Analyzer
	for _, a := range analyzers {
		if a.NeedsCompilerFacts && cf == nil {
			continue
		}
		active = append(active, a)
	}
	var prog *Program
	for _, a := range active {
		if a.NeedsFacts {
			prog = BuildProgram(pkgs)
			break
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		sink := func(d Diagnostic) {
			if !ignores.matches(d) {
				diags = append(diags, d)
			}
		}
		for _, a := range active {
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog, report: sink}
			if a.NeedsCompilerFacts {
				pass.CFacts = cf
			}
			a.Run(pass)
		}
	}
	slices.SortFunc(diags, func(a, b Diagnostic) int {
		if c := cmp.Compare(a.Pos.Filename, b.Pos.Filename); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Pos.Line, b.Pos.Line); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Pos.Column, b.Pos.Column); c != 0 {
			return c
		}
		return cmp.Compare(a.Rule, b.Rule)
	})
	return diags
}

// ignoreSet records //gapvet:ignore directives per file and line. A
// directive suppresses matching diagnostics on its own line and on the line
// immediately following it (so it can sit on the preceding line).
type ignoreSet map[string]map[int][]string // file -> line -> rules ("" = all)

// collectIgnores scans all comments of a package for ignore directives of
// the form:
//
//	//gapvet:ignore                      suppress every rule here
//	//gapvet:ignore rule1,rule2          suppress the listed rules
//	//gapvet:ignore rule -- free text    trailing justification is encouraged
func collectIgnores(pkg *Package) ignoreSet {
	set := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//gapvet:ignore")
				if !ok {
					continue
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //gapvet:ignoreXXX is not a directive
				}
				// Strip the optional "-- reason" tail.
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = rest[:i]
				}
				var rules []string
				for _, r := range strings.Split(rest, ",") {
					if r = strings.TrimSpace(r); r != "" {
						rules = append(rules, r)
					}
				}
				pos := pkg.Fset.Position(c.Pos())
				if set[pos.Filename] == nil {
					set[pos.Filename] = map[int][]string{}
				}
				if len(rules) == 0 {
					rules = []string{""}
				}
				set[pos.Filename][pos.Line] = append(set[pos.Filename][pos.Line], rules...)
			}
		}
	}
	return set
}

// matches reports whether the diagnostic is suppressed by a directive on
// its own line or the preceding line.
func (s ignoreSet) matches(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, rule := range lines[line] {
			if rule == "" || rule == d.Rule {
				return true
			}
		}
	}
	return false
}

// lastSegment returns the final path element of an import path.
func lastSegment(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

package analysis

import (
	"strings"
	"testing"
)

// TestSuppression covers the //gapvet:ignore directive forms.
func TestSuppression(t *testing.T) {
	src := map[string]string{"bad.go": `package demo

import "gapbench/internal/par"

func Sums(xs []int64) (int64, int64, int64, int64) {
	var a, b, c, d int64
	par.For(len(xs), 0, func(i int) {
		a += xs[i] //gapvet:ignore par-closure-race -- demo of a justified suppression
	})
	par.For(len(xs), 0, func(i int) {
		//gapvet:ignore par-closure-race
		b += xs[i]
	})
	par.For(len(xs), 0, func(i int) {
		c += xs[i] //gapvet:ignore
	})
	par.For(len(xs), 0, func(i int) {
		d += xs[i] //gapvet:ignore framework-isolation,index-width
	})
	return a, b, c, d
}
`}
	got := runRule(t, ParClosureRace, loadFixture(t, "gapbench/internal/demo", src))
	// a: same-line rule suppression; b: previous-line; c: blanket — all
	// suppressed. d: directive lists other rules, so it still fires.
	if len(got) != 1 || !strings.Contains(got[0], `"d"`) {
		t.Fatalf("want exactly the %q diagnostic to survive, got %v", "d", got)
	}
}

// TestSuppressionDoesNotLeakAcrossLines makes sure a directive only covers
// its own and the following line.
func TestSuppressionDoesNotLeakAcrossLines(t *testing.T) {
	src := map[string]string{"bad.go": `package demo

import "gapbench/internal/par"

func Sum(xs []int64) int64 {
	var total int64
	//gapvet:ignore par-closure-race

	par.For(len(xs), 0, func(i int) {
		total += xs[i]
	})
	return total
}
`}
	got := runRule(t, ParClosureRace, loadFixture(t, "gapbench/internal/demo", src))
	if len(got) != 1 {
		t.Fatalf("directive two lines above must not suppress, got %v", got)
	}
}

// TestDiagnosticOrdering checks the canonical file/line sort of Run.
func TestDiagnosticOrdering(t *testing.T) {
	pkg := loadFixture(t, "gapbench/internal/gap", map[string]string{
		"b.go": `package gap

import "fmt"

func two() { fmt.Println(2) }
`,
		"a.go": `package gap

import "fmt"

func one() {
	fmt.Println(1)
	fmt.Println(1)
}
`,
	})
	got := runRule(t, TimedRegionPurity, pkg)
	want := []string{"a.go:6:", "a.go:7:", "b.go:5:"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if !strings.HasPrefix(got[i], want[i]) {
			t.Errorf("diagnostic %d = %q, want prefix %q", i, got[i], want[i])
		}
	}
}

// TestAnalyzerRegistry locks the rule catalogue: names are unique, findable
// by name, and documented.
func TestAnalyzerRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if ByName("no-such-rule") != nil {
		t.Error("ByName of unknown rule must be nil")
	}
	want := []string{
		"framework-isolation", "par-closure-race", "index-width",
		"timed-region-purity", "unchecked-error",
		"atomic-plain-mix", "lock-order", "alloc-in-timed-region",
		"swallowed-panic", "graph-mutation", "arena-escape", "cancel-liveness",
		"lease-return",
		"escape-in-kernel", "closure-capture-hot", "bce-miss", "inline-miss",
	}
	if len(seen) != len(want) {
		t.Fatalf("expected %d analyzers, got %d", len(want), len(seen))
	}
	for _, name := range want {
		if !seen[name] {
			t.Errorf("missing analyzer %q", name)
		}
	}
}

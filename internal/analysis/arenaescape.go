package analysis

// arenaescape.go: with arena-backed storage (internal/graph/arena.go) every
// accessor slice is a view into one shared block, and for mmap-backed graphs
// Graph.Close unmaps that block — a retained view does not dangle politely, it
// faults (or, with the Close-side poisoning, panics). This rule proves the
// common lifetime mistakes statically, over the same origin lattice the
// graph-mutation rule uses (writeset.go):
//
//   - a graph-derived value used after a direct Graph.Close call in the same
//     function (position order stands in for control flow, the lattice's usual
//     trade — a use lexically before the Close is assumed to execute first);
//   - a return of graph-derived memory from a function that closes the graph
//     (including via defer: the returned view outlives the unmap by
//     construction);
//   - a store of graph-derived memory into a struct field or package-level
//     variable in a closing function — retention the runtime can no longer
//     see.
//
// What it deliberately does not track mirrors writeset.go: views retained in
// one function and closed in another, and flows through interfaces. Those are
// graphguard's job — the unmap itself poisons the views, so the escapees
// crash loudly in tests built with -tags=graphguard.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ArenaEscape flags graph-derived memory that outlives Graph.Close.
var ArenaEscape = &Analyzer{
	Name:       "arena-escape",
	Doc:        "no graph-derived slice may be used, returned, or retained past Graph.Close (the arena is unmapped)",
	NeedsFacts: true,
	Run:        runArenaEscape,
}

// graphCloseMethods names the graph-package methods that release arena
// storage.
var graphCloseMethods = map[string]bool{"Close": true}

func runArenaEscape(pass *Pass) {
	prog := pass.Prog
	if prog == nil || lastSegment(pass.Pkg.Path) == "graph" {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			checkArenaEscape(pass, prog, fn, fd)
		}
	}
}

func checkArenaEscape(pass *Pass, prog *Program, fn *types.Func, fd *ast.FuncDecl) {
	// First pass: find the Close calls. closePos is the earliest direct
	// (non-deferred) call; deferred Closes fire at return, so they gate the
	// return/retention checks but establish no in-body position.
	closePos := token.NoPos
	closes := false
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isGraphMethodCall(pass.Pkg, call, graphCloseMethods) {
			closes = true
			if !underDefer(stack) && (closePos == token.NoPos || call.Pos() < closePos) {
				closePos = call.Pos()
			}
		}
		stack = append(stack, n)
		return true
	})
	if !closes {
		return
	}
	w := prog.newOriginWalker(pass.Pkg, fn, fd)
	if w == nil {
		return
	}

	// Only reference-typed values escape: an element read copies the int out
	// of the arena, a slice or pointer keeps pointing into it.
	graphDerived := func(e ast.Expr) bool {
		if w.exprOrigin(e)&originGraph == 0 {
			return false
		}
		tv, ok := pass.Pkg.Info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Pointer:
			return true
		}
		return false
	}
	stack = stack[:0]
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		switch t := n.(type) {
		case *ast.Ident:
			// A read of a graph-derived local after the arena was released.
			if closePos != token.NoPos && t.Pos() > closePos && !isAssignTarget(t, stack) {
				if v, ok := pass.Pkg.Info.Uses[t].(*types.Var); ok && w.locals[v]&originGraph != 0 {
					pass.Reportf(t.Pos(), "%q is a graph-derived view used after Graph.Close in %s: the arena may be unmapped — copy what you need before closing",
						t.Name, fn.Name())
				}
			}
		case *ast.CallExpr:
			if closePos != token.NoPos && t.Pos() > closePos && isGraphAccessorCall(pass.Pkg, t) {
				pass.Reportf(t.Pos(), "graph accessor call after Graph.Close in %s: the arena may be unmapped — read before closing",
					fn.Name())
			}
		case *ast.ReturnStmt:
			if underFuncLit(stack) {
				break
			}
			for _, r := range t.Results {
				if graphDerived(r) && (closePos == token.NoPos || t.Pos() > closePos) {
					pass.Reportf(t.Pos(), "%s returns graph-derived memory but closes the graph: the caller's view outlives the unmap — return a copy",
						fn.Name())
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range t.Lhs {
				if i >= len(t.Rhs) || !graphDerived(t.Rhs[i]) {
					continue
				}
				if what := retentionTarget(pass.Pkg, lhs); what != "" {
					pass.Reportf(t.Pos(), "%s stores graph-derived memory into a %s but closes the graph: the retained view outlives the unmap — store a copy",
						fn.Name(), what)
				}
			}
		}
		stack = append(stack, n)
		return true
	})
}

// underDefer reports whether the ancestor stack passes through a defer
// statement (directly or inside a deferred function literal).
func underDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// isAssignTarget reports whether id is the immediate left-hand side of the
// enclosing assignment — being overwritten, not read.
func isAssignTarget(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if lhs == id {
			return true
		}
	}
	return false
}

// retentionTarget classifies an assignment destination that outlives the
// function: a struct field or a package-level variable. Everything else
// (locals, indexed locals) returns "".
func retentionTarget(pkg *Package, lhs ast.Expr) string {
	switch t := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if v, ok := pkg.Info.Uses[t.Sel].(*types.Var); ok && v.IsField() {
			return "struct field"
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[t].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
			return "package-level variable"
		}
	}
	return ""
}

package analysis

import "testing"

// The arena-escape cases exercise the storage-lifetime rule: graph-derived
// views must not be used, returned, or retained past Graph.Close, while
// copies (and uses that finish before the close) stay clean.
func TestArenaEscape(t *testing.T) {
	checkRule(t, ArenaEscape, []ruleCase{
		{
			name: "use after direct close",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "gapbench/internal/graph"

func Sum(g *graph.Graph) int {
	ns := g.OutNeighbors(0)
	g.Close()
	return int(ns[0])
}
`},
			want: []string{`"ns" is a graph-derived view used after Graph.Close in Sum`},
		},
		{
			name: "accessor call after close",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "gapbench/internal/graph"

func Peek(g *graph.Graph) graph.NodeID {
	g.Close()
	return g.OutNeighbors(0)[0]
}
`},
			want: []string{"graph accessor call after Graph.Close in Peek"},
		},
		{
			name: "return escapes a deferred close",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "gapbench/internal/graph"

func FirstRow(path string) []graph.NodeID {
	g, err := graph.Load(path)
	if err != nil {
		return nil
	}
	defer g.Close()
	return g.OutNeighbors(0)
}
`},
			want: []string{"FirstRow returns graph-derived memory but closes the graph"},
		},
		{
			name: "field retention in a closing function",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "gapbench/internal/graph"

type cache struct{ row []graph.NodeID }

func (c *cache) Fill(g *graph.Graph) {
	c.row = g.OutNeighbors(0)
	g.Close()
}
`},
			want: []string{
				"Fill stores graph-derived memory into a struct field but closes the graph",
			},
		},
		{
			name: "arena bytes are graph-derived too",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "gapbench/internal/graph"

func RawByte(g *graph.Graph) byte {
	b := g.Arena().Bytes()
	g.Close()
	return b[0]
}
`},
			want: []string{`"b" is a graph-derived view used after Graph.Close in RawByte`},
		},
		{
			name: "copy before close is clean",
			path: "gapbench/internal/gap",
			files: map[string]string{"good.go": `package gap

import "gapbench/internal/graph"

func FirstRowCopy(path string) []graph.NodeID {
	g, err := graph.Load(path)
	if err != nil {
		return nil
	}
	defer g.Close()
	ns := g.OutNeighbors(0)
	own := make([]graph.NodeID, len(ns))
	copy(own, ns)
	return own
}
`},
			want: nil,
		},
		{
			name: "use before a later close is clean",
			path: "gapbench/internal/gap",
			files: map[string]string{"good.go": `package gap

import "gapbench/internal/graph"

func SumThenClose(g *graph.Graph) int {
	total := 0
	for _, v := range g.OutNeighbors(0) {
		total += int(v)
	}
	g.Close()
	return total
}
`},
			want: nil,
		},
		{
			name: "no close means no findings",
			path: "gapbench/internal/gap",
			files: map[string]string{"good.go": `package gap

import "gapbench/internal/graph"

type view struct{ row []graph.NodeID }

func (v *view) Fill(g *graph.Graph) {
	v.row = g.OutNeighbors(0)
}
`},
			want: nil,
		},
	})
}

// TestArenaEscapeRealPackages pins the rule silent on the real packages that
// legitimately close graphs: the harness core and the CLIs.
func TestArenaEscapeRealPackages(t *testing.T) {
	for _, rel := range []string{"internal/core", "cmd/gapbench", "cmd/graphgen"} {
		pkg := loadRealDir(t, rel)
		if got := runRuleOn(t, ArenaEscape, pkg, parPackage(t)); len(got) != 0 {
			t.Errorf("arena-escape findings on real %s:\n%v", rel, got)
		}
	}
}

package analysis

import (
	"cmp"
	"go/token"
	"slices"
)

// AtomicPlainMix flags shared state that is accessed through sync/atomic on
// one code path and by plain load/store on another path that can run
// concurrently — across function boundaries. An atomic access anywhere is
// taken as the author's declaration that the variable is shared between
// goroutines; under the Go memory model every *concurrent* access to it
// must then also be atomic, or the program has a data race even if the
// racing loads "only read".
//
// The rule is interprocedural on both sides of the mix: the atomic access
// and the plain access may be in different functions (even different
// packages, for struct fields), and "can run concurrently" is computed from
// the call graph — an access is concurrent when it is lexically inside a
// `go` statement or a closure handed to a goroutine-spawning helper
// (par.For and friends, or anything that transitively spawns), or when its
// enclosing function is reachable from such a context.
//
// Plain accesses in purely sequential positions (initialization loops,
// post-barrier reductions) do not fire: phase-separated kernels that
// initialize plainly and then CAS in parallel are the GAP idiom, not a bug.
// Deliberately mixed dual-path APIs (Bitmap.Set vs Bitmap.SetAtomic) should
// suppress with //gapvet:ignore and a comment explaining the phase
// discipline callers must follow.
var AtomicPlainMix = &Analyzer{
	Name:       "atomic-plain-mix",
	Doc:        "state accessed via sync/atomic must not also be accessed plainly on concurrent paths",
	NeedsFacts: true,
	Run:        runAtomicPlainMix,
}

func runAtomicPlainMix(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	// First atomic site per key, module-wide.
	atomicSite := map[VarKey]token.Pos{}
	for _, id := range prog.order {
		for _, a := range prog.Funcs[id].Accesses {
			if a.Kind != AtomicAccess {
				continue
			}
			if pos, ok := atomicSite[a.Key]; !ok || a.Pos < pos {
				atomicSite[a.Key] = a.Pos
			}
		}
	}
	if len(atomicSite) == 0 {
		return
	}
	// One report per (function, key): the first plain access that can run
	// concurrently, in functions of the package under analysis.
	type finding struct {
		pos     token.Pos
		display string
		key     VarKey
	}
	var findings []finding
	for _, s := range prog.FuncsInPackage(pass.Pkg.Path) {
		reported := map[VarKey]bool{}
		for _, a := range s.Accesses {
			if a.Kind == AtomicAccess || reported[a.Key] {
				continue
			}
			if _, mixed := atomicSite[a.Key]; !mixed {
				continue
			}
			if !prog.ConcurrentAccess(s, a) {
				continue
			}
			reported[a.Key] = true
			findings = append(findings, finding{pos: a.Pos, display: a.Display, key: a.Key})
		}
	}
	slices.SortFunc(findings, func(a, b finding) int { return cmp.Compare(a.pos, b.pos) })
	for _, f := range findings {
		at := pass.Pkg.Fset.Position(atomicSite[f.key])
		pass.Reportf(f.pos,
			"%q is accessed through sync/atomic (e.g. %s:%d) but accessed plainly here on a concurrent path: use atomic access, or document the phase separation with //gapvet:ignore atomic-plain-mix",
			f.display, at.Filename, at.Line)
	}
}

package analysis

import (
	"strings"
	"testing"
)

// TestAtomicPlainMix covers the direct (same-function) mix, the sequential
// phase-separation negative, and the no-atomic negative.
func TestAtomicPlainMix(t *testing.T) {
	checkRule(t, AtomicPlainMix, []ruleCase{
		{
			name: "plain write racing a CAS on the same slice",
			path: "gapbench/internal/demo",
			files: map[string]string{"bad.go": `package demo

import (
	"sync/atomic"

	"gapbench/internal/par"
)

func Claim(dist []int32) {
	par.For(len(dist), 0, func(i int) {
		atomic.CompareAndSwapInt32(&dist[i], -1, 1)
	})
}

func Stomp(dist []int32) {
	par.For(len(dist), 0, func(i int) {
		dist[i] = 7
	})
}
`},
			want: []string{`"dist" is accessed through sync/atomic`},
		},
		{
			name: "sequential init before parallel CAS is the GAP idiom, not a mix",
			path: "gapbench/internal/demo",
			files: map[string]string{"ok.go": `package demo

import (
	"sync/atomic"

	"gapbench/internal/par"
)

func Run(dist []int32) {
	for i := range dist {
		dist[i] = -1
	}
	par.For(len(dist), 0, func(i int) {
		atomic.CompareAndSwapInt32(&dist[i], -1, 1)
	})
	var total int32
	for i := range dist {
		total += dist[i]
	}
	_ = total
}
`},
			want: nil,
		},
		{
			name: "plain-only concurrent access is par-closure-race's business, not ours",
			path: "gapbench/internal/demo",
			files: map[string]string{"ok.go": `package demo

import "gapbench/internal/par"

func Fill(dist []int32) {
	par.For(len(dist), 0, func(i int) {
		dist[i] = 1
	})
}
`},
			want: nil,
		},
		{
			name: "struct field mixed across methods",
			path: "gapbench/internal/demo",
			files: map[string]string{"bad.go": `package demo

import (
	"sync/atomic"

	"gapbench/internal/par"
)

type Counter struct {
	hits int64
}

func (c *Counter) Add(n int) {
	par.For(n, 0, func(i int) {
		atomic.AddInt64(&c.hits, 1)
	})
}

func (c *Counter) Drain(n int) {
	par.For(n, 0, func(i int) {
		c.hits = 0
	})
}
`},
			want: []string{`"demo.hits" is accessed through sync/atomic`},
		},
	})
}

// TestAtomicPlainMixCrossFunction seeds the interprocedural case: the plain
// access sits in a lexically sequential helper, and only the call graph
// knows the helper runs inside a par.For closure.
func TestAtomicPlainMixCrossFunction(t *testing.T) {
	src := map[string]string{"bad.go": `package demo

import (
	"sync/atomic"

	"gapbench/internal/par"
)

// bump looks sequential on its own: no go statement, no par closure.
func bump(dist []int32, i int) {
	dist[i]++
}

func Relax(dist []int32) {
	par.For(len(dist), 0, func(i int) {
		if atomic.LoadInt32(&dist[i]) > 0 {
			bump(dist, i)
		}
	})
}
`}
	got := runRule(t, AtomicPlainMix, loadFixture(t, "gapbench/internal/demo", src))
	if len(got) != 1 {
		t.Fatalf("want 1 diagnostic at the helper's plain access, got %v", got)
	}
	// The finding must be at bump's access (line 11), not at the call site.
	if want := "bad.go:11:"; !strings.Contains(got[0], want) {
		t.Errorf("diagnostic = %q, want it anchored at %s", got[0], want)
	}
	if want := `"dist" is accessed through sync/atomic`; !strings.Contains(got[0], want) {
		t.Errorf("diagnostic = %q, want substring %q", got[0], want)
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// cancelLivenessPackages are the packages whose data-dependent loops must
// observe cancellation: the six framework reproductions. The par substrate
// is excluded — its schedules poll the installed token themselves and are
// exactly what makes a kernel loop live — and so is grb, whose operations
// run under lagraph's polled round loops. "spin" is the gapvet fixture
// package exercising this rule.
var cancelLivenessPackages = map[string]bool{
	"gap":      true,
	"galois":   true,
	"graphit":  true,
	"gkc":      true,
	"lagraph":  true,
	"nwgraph":  true,
	"spin":     true,
	"frontier": true,
}

// CancelLiveness flags kernel loops that can spin forever after the harness
// cancels a trial: a condition-only (or infinite) `for` loop whose trip
// count is data-dependent — frontier drains, worklist pulls, fixed-point
// rounds — and whose condition and body never reach Options.Cancelled(),
// par.CancelToken.Cancelled(), Machine.Interrupted(), or a par schedule
// (which polls the installed token itself). Such a loop makes machine
// abandonment (DESIGN.md §9) the runner's only defense.
//
// Loops are exempt when their termination does not depend on observing the
// token:
//
//   - bounded three-clause loops (Post != nil) and range loops: fixed trip
//     counts, the par chunk-loop shape;
//   - loops with no function calls at all: cursor scans, merge loops, and
//     binary searches terminate by index arithmetic;
//   - loops lexically inside a goroutine or a closure handed to a spawning
//     callee, and loops in functions only reachable on worker goroutines:
//     the region that spawned them owns cancellation, and the machine
//     drains its workers when the token fires;
//   - lock-free CAS retry loops (a sync/atomic CompareAndSwap directly in
//     the loop): every failed attempt means another worker's store landed,
//     so the trip count is bounded by contention, not by input data.
var CancelLiveness = &Analyzer{
	Name:       "cancel-liveness",
	Doc:        "data-dependent kernel loops must reach a cancellation poll or a par schedule",
	NeedsFacts: true,
	Run:        runCancelLiveness,
}

func runCancelLiveness(pass *Pass) {
	prog := pass.Prog
	if prog == nil || !cancelLivenessPackages[lastSegment(pass.Pkg.Path)] {
		return
	}
	type finding struct {
		pos token.Pos
		msg string
	}
	var findings []finding
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sum := prog.Funcs[FuncID(obj.FullName())]
			if sum == nil {
				continue
			}
			if prog.ConcurrentFunc(sum.ID) {
				// Runs on worker goroutines; the spawning region owns the
				// token and the machine drains workers on cancellation.
				continue
			}
			var stack []ast.Node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return false
				}
				if loop, ok := n.(*ast.ForStmt); ok && loop.Post == nil {
					if !inSpawnedClosure(pass.Pkg, prog, stack) &&
						loopHasCalls(pass.Pkg, loop) &&
						!loopIsCASRetry(pass.Pkg, loop) &&
						!loopReachesCancel(prog, sum, loop) {
						findings = append(findings, finding{
							pos: loop.For,
							msg: "data-dependent loop in " + sum.Name +
								" never reaches a cancellation poll or par schedule: poll Options.Cancelled() / Machine.Interrupted() each iteration, or justify with //gapvet:ignore",
						})
					}
				}
				stack = append(stack, n)
				return true
			})
		}
	}
	slices.SortFunc(findings, func(a, b finding) int { return int(a.pos - b.pos) })
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// inSpawnedClosure reports whether the ancestor stack places the node inside
// a goroutine body or a function literal handed to a spawning callee
// (par.For and everything built on it): worker-loop code, whose cancellation
// the spawning region owns.
func inSpawnedClosure(pkg *Package, prog *Program, stack []ast.Node) bool {
	for i, n := range stack {
		switch n.(type) {
		case *ast.GoStmt:
			return true
		case *ast.FuncLit:
			if i == 0 {
				continue
			}
			call, ok := stack[i-1].(*ast.CallExpr)
			if !ok {
				continue
			}
			for _, arg := range call.Args {
				if arg == n {
					if callee, ok2 := calleeOf(pkg, call); ok2 && prog.SpawnsGo(callee) {
						return true
					}
					break
				}
			}
		}
	}
	return false
}

// loopHasCalls reports whether the loop's condition or body contains a real
// function or method call. Loops without any — cursor scans, merge loops,
// binary searches, pointer-jumping — terminate by index arithmetic and are
// not worklist loops.
func loopHasCalls(pkg *Package, loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok2 := pkg.Info.Types[call.Fun]; ok2 && tv.IsType() {
			return true // conversion, not a call
		}
		if id, ok2 := ast.Unparen(call.Fun).(*ast.Ident); ok2 {
			if obj := pkg.Info.Uses[id]; obj != nil && obj.Parent() == types.Universe {
				return true // builtin (len, append, ...)
			}
		}
		found = true
		return false
	})
	return found
}

// loopIsCASRetry reports whether the loop performs a sync/atomic
// CompareAndSwap directly in its condition or body: the lock-free retry
// shape. Such loops make system-wide progress on every iteration — a failed
// CAS means a competing store succeeded — so their trip count is bounded by
// contention and they need no cancellation poll.
func loopIsCASRetry(pkg *Package, loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a CAS in a nested literal is not this loop's retry
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
			strings.HasPrefix(fn.Name(), "CompareAndSwap") {
			found = true
			return false
		}
		return true
	})
	return found
}

// loopReachesCancel reports whether the loop's condition or body (including
// nested literals) reaches a cancellation poll or drives a par schedule:
// a direct poll call, a callee that transitively polls, a callee that
// transitively spawns (machine regions poll the installed token), or a
// goroutine of its own.
func loopReachesCancel(prog *Program, sum *FuncSummary, loop *ast.ForStmt) bool {
	for _, c := range sum.Calls {
		if c.Pos < loop.Pos() || c.Pos >= loop.End() {
			continue
		}
		if isCancelPoll(c.Callee) || prog.ReachesCancelPoll(c.Callee) || prog.SpawnsGo(c.Callee) {
			return true
		}
	}
	live := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			live = true
		}
		return !live
	})
	return live
}

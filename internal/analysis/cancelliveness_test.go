package analysis

import "testing"

// The cancel-liveness cases use the fixture package name "spin", which is in
// the rule's kernel-package scope alongside the six framework reproductions.
func TestCancelLiveness(t *testing.T) {
	checkRule(t, CancelLiveness, []ruleCase{
		{
			name: "unpolled worklist loop",
			path: "gapbench/internal/spin",
			files: map[string]string{"bad.go": `package spin

func step(work []int) []int {
	return work[1:]
}

func Drain(work []int) {
	for len(work) > 0 {
		work = step(work)
	}
}
`},
			want: []string{"data-dependent loop in Drain never reaches a cancellation poll"},
		},
		{
			name: "direct poll keeps the loop live",
			path: "gapbench/internal/spin",
			files: map[string]string{"good.go": `package spin

import "gapbench/internal/kernel"

func step(work []int) []int {
	return work[1:]
}

func DrainPolite(work []int, opt kernel.Options) {
	for len(work) > 0 {
		if opt.Cancelled() {
			return
		}
		work = step(work)
	}
}
`},
			want: nil,
		},
		{
			name: "transitive poll through a helper keeps the loop live",
			path: "gapbench/internal/spin",
			files: map[string]string{"good.go": `package spin

import "gapbench/internal/kernel"

func politeStep(work []int, opt kernel.Options) []int {
	if opt.Cancelled() {
		return nil
	}
	return work[1:]
}

func DrainViaHelper(work []int, opt kernel.Options) {
	for len(work) > 0 {
		work = politeStep(work, opt)
	}
}
`},
			want: nil,
		},
		{
			name: "par schedule keeps the loop live",
			path: "gapbench/internal/spin",
			files: map[string]string{"good.go": `package spin

import "gapbench/internal/par"

func DrainParallel(work []int) {
	for len(work) > 0 {
		next := make([]int, 0, len(work))
		par.ForBlocked(len(work), 2, func(lo, hi int) {
			_ = work[lo:hi]
		})
		work = next
	}
}
`},
			want: nil,
		},
		{
			name: "bounded and call-free shapes are exempt",
			path: "gapbench/internal/spin",
			files: map[string]string{"good.go": `package spin

func consume(v int) {}

func Shapes(xs []int) int {
	for i := 0; i < len(xs); i++ { // three-clause: bounded
		consume(xs[i])
	}
	i := 0
	for i < len(xs) { // condition-only but call-free: index arithmetic
		i++
	}
	return i
}
`},
			want: nil,
		},
		{
			name: "loop inside a spawned goroutine is exempt",
			path: "gapbench/internal/spin",
			files: map[string]string{"good.go": `package spin

func pull(ch chan int) int {
	return <-ch
}

func Spawner(ch chan int) {
	go func() {
		for {
			if pull(ch) < 0 {
				return
			}
		}
	}()
}
`},
			want: nil,
		},
		{
			name: "CAS retry loop is exempt",
			path: "gapbench/internal/spin",
			files: map[string]string{"good.go": `package spin

import "sync/atomic"

func CasMax(p *int32, v int32) {
	for {
		old := atomic.LoadInt32(p)
		if v <= old || atomic.CompareAndSwapInt32(p, old, v) {
			return
		}
	}
}
`},
			want: nil,
		},
		{
			name: "non-kernel packages are out of scope",
			path: "gapbench/internal/report",
			files: map[string]string{"main.go": `package report

func step(work []int) []int {
	return work[1:]
}

func Drain(work []int) {
	for len(work) > 0 {
		work = step(work)
	}
}
`},
			want: nil,
		},
	})
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ParClosureRace flags plain writes to captured outer variables inside
// closures handed to the internal/par loop helpers. Every such closure runs
// concurrently on many goroutines, so an unsynchronized assignment to a
// variable declared outside the closure is a data race (the classic
// `sum += x` / `changed = true` accumulation bug). Writes *through* captured
// slices or pointers at worker-owned indices (`dist[i] = ...`) are the
// intended usage and are not flagged.
//
// Two escape hatches keep the rule precise rather than noisy:
//
//   - closures whose body takes a lock (any `x.Lock()` call) are assumed to
//     guard their shared writes and are skipped entirely;
//   - sync/atomic usage never triggers the rule, because atomic updates are
//     method/function calls, not assignments.
var ParClosureRace = &Analyzer{
	Name: "par-closure-race",
	Doc:  "no unsynchronized writes to captured variables inside par.For / par.ForDynamic / ... closures",
	Run:  runParClosureRace,
}

func runParClosureRace(pass *Pass) {
	pkg := pass.Pkg
	parPath := pkg.Module + "/internal/par"
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			helper, ok := parHelperName(pkg, call, parPath)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					checkParClosure(pass, helper, fl)
				}
			}
			return true
		})
	}
}

// parHelperName reports whether call invokes a helper of internal/par —
// either a package-level shim (par.For, par.ForDynamic, ...) or a method on
// *par.Machine (exec.ForDynamic, opt.Exec().ReduceInt64, ...) — and returns
// its name. Machine methods matter as much as the shims: the closure runs on
// the machine's pool goroutines either way, so the same race rules apply.
func parHelperName(pkg *Package, call *ast.CallExpr, parPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Method form: the selector resolves to a method whose receiver is
	// par.Machine (by value or pointer). The receiver expression can be
	// anything — a local `exec`, a field, or a call like opt.Exec().
	if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if ptr, ok := rt.(*types.Pointer); ok {
				rt = ptr.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				if obj := named.Obj(); obj.Name() == "Machine" && obj.Pkg() != nil && obj.Pkg().Path() == parPath {
					return sel.Sel.Name, true
				}
			}
		}
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
		if pn.Imported().Path() == parPath {
			return sel.Sel.Name, true
		}
		return "", false
	}
	// Fallback when type information is incomplete (broken fixtures): accept
	// the conventional package name.
	if id.Name == "par" && pkg.Info.Uses[id] == nil && pkg.Info.Defs[id] == nil {
		return sel.Sel.Name, true
	}
	return "", false
}

// checkParClosure inspects one closure passed to a par helper.
func checkParClosure(pass *Pass, helper string, fl *ast.FuncLit) {
	if takesLock(fl.Body) {
		// Mutex-guarded closures synchronize their own shared writes; trust
		// the lock rather than guessing which statements it covers.
		return
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true // := declares closure-local variables
			}
			for _, lhs := range st.Lhs {
				reportCapturedWrite(pass, helper, fl, lhs)
			}
		case *ast.IncDecStmt:
			reportCapturedWrite(pass, helper, fl, st.X)
		case *ast.RangeStmt:
			if st.Tok == token.ASSIGN {
				reportCapturedWrite(pass, helper, fl, st.Key)
				reportCapturedWrite(pass, helper, fl, st.Value)
			}
		}
		return true
	})
}

// reportCapturedWrite flags lhs when it is a plain identifier bound to a
// variable declared outside the closure.
func reportCapturedWrite(pass *Pass, helper string, fl *ast.FuncLit, lhs ast.Expr) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		// Writes through index/selector/star expressions address memory the
		// kernel partitions among workers; proving those racy needs alias
		// analysis far beyond this tool, so they are deliberately exempt.
		return
	}
	obj, ok := pass.Pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	if obj.Pos() >= fl.Pos() && obj.Pos() < fl.End() {
		return // declared inside the closure: worker-local, safe
	}
	pass.Reportf(id.Pos(), "write to captured variable %q inside par.%s closure is a data race: use sync/atomic, or accumulate per-worker partials and reduce", id.Name, helper)
}

// takesLock reports whether the body contains any x.Lock() call.
func takesLock(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
				found = true
			}
		}
		return !found
	})
	return found
}

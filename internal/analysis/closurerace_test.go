package analysis

import "testing"

func TestParClosureRace(t *testing.T) {
	checkRule(t, ParClosureRace, []ruleCase{
		{
			name: "captured accumulator write is flagged",
			path: "gapbench/internal/demo",
			files: map[string]string{"bad.go": `package demo

import "gapbench/internal/par"

func Sum(xs []int64) int64 {
	var total int64
	par.For(len(xs), 0, func(i int) {
		total += xs[i]
	})
	return total
}
`},
			want: []string{`bad.go:8: [par-closure-race] write to captured variable "total" inside par.For closure`},
		},
		{
			name: "captured flag write and increment are flagged",
			path: "gapbench/internal/demo",
			files: map[string]string{"bad.go": `package demo

import "gapbench/internal/par"

func Scan(n int) (bool, int) {
	changed := false
	count := 0
	par.ForDynamic(n, 64, 0, func(lo, hi int) {
		changed = true
		count++
	})
	return changed, count
}
`},
			want: []string{
				`write to captured variable "changed" inside par.ForDynamic closure`,
				`write to captured variable "count" inside par.ForDynamic closure`,
			},
		},
		{
			name: "element writes and locals are clean",
			path: "gapbench/internal/demo",
			files: map[string]string{"ok.go": `package demo

import "gapbench/internal/par"

func Fill(dst []int64) {
	par.For(len(dst), 0, func(i int) {
		local := int64(i) * 2
		local++
		dst[i] = local
	})
}
`},
			want: nil,
		},
		{
			name: "per-worker partials with reduce are clean",
			path: "gapbench/internal/demo",
			files: map[string]string{"ok.go": `package demo

import "gapbench/internal/par"

func Sum(xs []int64) int64 {
	return par.ReduceInt64(len(xs), 0, func(lo, hi int) int64 {
		var partial int64
		for i := lo; i < hi; i++ {
			partial += xs[i]
		}
		return partial
	})
}
`},
			want: nil,
		},
		{
			name: "per-worker offset-slice scatter is clean",
			path: "gapbench/internal/demo",
			files: map[string]string{"ok.go": `package demo

import "gapbench/internal/par"

// The counting-sort scatter: each worker bumps cursors in its own offset
// slice and writes output cells at the yielded positions. All writes are
// index expressions on captured slices (disjoint ranges by construction),
// which must not be flagged.
func Scatter(keys []int, offsets [][]int64, out []int64) {
	par.ForWorker(len(keys), len(offsets), func(w, lo, hi int) {
		off := offsets[w]
		for i := lo; i < hi; i++ {
			k := keys[i]
			pos := off[k]
			off[k] = pos + 1
			out[pos] = int64(i)
		}
	})
}
`},
			want: nil,
		},
		{
			name: "shared scatter cursor is flagged",
			path: "gapbench/internal/demo",
			files: map[string]string{"bad.go": `package demo

import "gapbench/internal/par"

func BrokenScatter(keys []int, out []int64) {
	var cursor int64
	par.ForWorker(len(keys), 0, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[cursor] = int64(keys[i])
			cursor++
		}
	})
}
`},
			want: []string{`write to captured variable "cursor" inside par.ForWorker closure`},
		},
		{
			name: "mutex-guarded closure is trusted",
			path: "gapbench/internal/demo",
			files: map[string]string{"ok.go": `package demo

import (
	"sync"

	"gapbench/internal/par"
)

func Sum(xs []int64) int64 {
	var mu sync.Mutex
	var total int64
	par.For(len(xs), 0, func(i int) {
		mu.Lock()
		total += xs[i]
		mu.Unlock()
	})
	return total
}
`},
			want: nil,
		},
		{
			name: "nested closure still sees capture across the par boundary",
			path: "gapbench/internal/demo",
			files: map[string]string{"bad.go": `package demo

import "gapbench/internal/par"

func Walk(n int, visit func(func())) {
	done := 0
	par.For(n, 0, func(i int) {
		visit(func() {
			done = i
		})
	})
	_ = done
}
`},
			want: []string{`write to captured variable "done" inside par.For closure`},
		},
		{
			name: "machine method closures are checked like the shims",
			path: "gapbench/internal/demo",
			files: map[string]string{"bad.go": `package demo

import "gapbench/internal/par"

func Sum(exec *par.Machine, xs []int64) int64 {
	var total int64
	exec.ForDynamic(len(xs), 64, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i]
		}
	})
	return total
}
`},
			want: []string{`write to captured variable "total" inside par.ForDynamic closure`},
		},
		{
			name: "machine obtained from a call expression is still recognized",
			path: "gapbench/internal/demo",
			files: map[string]string{"bad.go": `package demo

import "gapbench/internal/par"

func Scan(n int) bool {
	changed := false
	par.Default().For(n, 0, func(i int) {
		changed = true
	})
	return changed
}
`},
			want: []string{`write to captured variable "changed" inside par.For closure`},
		},
		{
			name: "other packages' For helpers are not par",
			path: "gapbench/internal/demo",
			files: map[string]string{"ok.go": `package demo

type fake struct{}

func (fake) For(n, w int, fn func(int)) { fn(0) }

func Use() {
	par := fake{}
	total := 0
	par.For(1, 1, func(i int) { total += i })
	_ = total
}
`},
			want: nil,
		},
	})
}

// Compiler-diagnostics harvest: run the Go compiler over the module with
// escape analysis, inline-budget, and bounds-check-elimination reporting
// turned on, and parse the position-tagged stderr stream into fact tables
// the perf rules (perfrules.go) join against the dataflow Program.
//
// The join key is the source position, not a symbol name. Escape and BCE
// diagnostics never print a symbol at all ("x escapes to heap",
// "Found IsInBounds"); inline diagnostics print compiler-mangled names
// ("(*chunkAppender).flush", "Relax[go.shape.int32]") that would need a
// demangler to match go/types. Positions need no translation: the compiler
// prints them root-relative with forward slashes, exactly as the loader's
// display names render them (see load.go), so "file:line:col" strings align
// byte-for-byte between the two worlds.
//
// The parser is deliberately tolerant. -m=2 output is an unstable debugging
// interface: flow annotations, "can inline" notes, package headers, and
// stdlib positions all interleave with the lines we want, and future Go
// releases may add shapes we have never seen. Anything unrecognized is
// skipped, never fatal — a harvest that goes blind on a new toolchain
// degrades to zero perf findings, not to a broken gapvet.
package analysis

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// CompilerFactKind classifies one parsed compiler diagnostic.
type CompilerFactKind uint8

const (
	// FactEscape is an "<expr> escapes to heap" line: a value whose address
	// flows somewhere the compiler cannot track, forcing a heap allocation.
	FactEscape CompilerFactKind = iota
	// FactMovedToHeap is a "moved to heap: <var>" line: a declared variable
	// whose storage the compiler hoisted off the stack, typically because a
	// closure captures it by reference.
	FactMovedToHeap
	// FactBoundsCheck is a "Found IsInBounds" / "Found IsSliceInBounds"
	// line from -d=ssa/check_bce/debug=1: a bounds check the SSA pass could
	// not eliminate.
	FactBoundsCheck
	// FactCannotInline is a "cannot inline <fn>: ..." line; when the reason
	// is an exceeded cost budget, Cost and Budget carry the numbers.
	FactCannotInline
)

// String returns the kind's diagnostic vocabulary for messages and tests.
func (k CompilerFactKind) String() string {
	switch k {
	case FactEscape:
		return "escapes-to-heap"
	case FactMovedToHeap:
		return "moved-to-heap"
	case FactBoundsCheck:
		return "bounds-check"
	case FactCannotInline:
		return "cannot-inline"
	}
	return fmt.Sprintf("CompilerFactKind(%d)", int(k))
}

// CompilerFact is one parsed diagnostic, keyed by its source position.
type CompilerFact struct {
	// File is the position's file name exactly as the compiler printed it
	// (root-relative, forward slashes), after stripping any "./" prefix.
	File string
	Line int
	// Col is the 1-based column, or 0 when the diagnostic omitted one.
	Col  int
	Kind CompilerFactKind
	// Detail is the kind-specific payload: the escaping expression, the
	// moved variable's name, "IsInBounds"/"IsSliceInBounds", or the
	// cannot-inline reason.
	Detail string
	// Fn is the function name as the compiler printed it (FactCannotInline
	// only); it is informational, never a join key.
	Fn string
	// Cost and Budget are set for cost-form inline failures ("cost 105
	// exceeds budget 80"), zero otherwise.
	Cost, Budget int
}

// CompilerFacts is the harvested fact table for one compiler run.
type CompilerFacts struct {
	// Facts holds every parsed diagnostic, ordered by file, line, column.
	Facts []CompilerFact
	// BuildErrors records packages that failed to compile during the
	// harvest. A failed package contributes no facts (the rules simply see
	// nothing there) but the harvest itself still succeeds.
	BuildErrors []string

	byFile map[string][]CompilerFact
	// inline maps "file:line" of a function declaration to its
	// cannot-inline fact. Generic instantiations repeat the same decl
	// position; the first parse wins, which is deterministic because the
	// compiler emits shapes in a fixed order per build.
	inline map[string]CompilerFact
}

// AtFile returns the facts whose position lies in the given file
// (root-relative, forward slashes), in line order.
func (cf *CompilerFacts) AtFile(file string) []CompilerFact {
	return cf.byFile[file]
}

// CannotInlineAt returns the cannot-inline fact for the function declared at
// file:line, if the compiler reported one.
func (cf *CompilerFacts) CannotInlineAt(file string, line int) (CompilerFact, bool) {
	f, ok := cf.inline[fmt.Sprintf("%s:%d", file, line)]
	return f, ok
}

// factKey dedupes diagnostics: -m=2 prints escape facts twice (once with a
// flow trace, once bare), check_bce repeats a position per SSA value, and
// generic instantiation replays a function body per shape.
type factKey struct {
	file      string
	line, col int
	kind      CompilerFactKind
	detail    string
}

// ParseCompilerDiagnostics reads a compiler stderr stream and extracts the
// fact table. Unrecognized lines — flow annotations, "can inline" notes,
// "# package" headers, future diagnostics — are skipped silently.
func ParseCompilerDiagnostics(r io.Reader) *CompilerFacts {
	cf := &CompilerFacts{
		byFile: map[string][]CompilerFact{},
		inline: map[string]CompilerFact{},
	}
	seen := map[factKey]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == '#' || line[0] == ' ' || line[0] == '\t' {
			// Package headers and indented escape-flow annotations.
			continue
		}
		fact, ok := parseDiagnosticLine(line)
		if !ok {
			continue
		}
		key := factKey{fact.File, fact.Line, fact.Col, fact.Kind, fact.Detail}
		if seen[key] {
			continue
		}
		seen[key] = true
		if fact.Kind == FactCannotInline {
			declKey := fmt.Sprintf("%s:%d", fact.File, fact.Line)
			if _, dup := cf.inline[declKey]; dup {
				continue // another generic shape of the same declaration
			}
			cf.inline[declKey] = fact
		}
		cf.Facts = append(cf.Facts, fact)
	}
	sort.SliceStable(cf.Facts, func(i, j int) bool {
		a, b := cf.Facts[i], cf.Facts[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	for _, f := range cf.Facts {
		cf.byFile[f.File] = append(cf.byFile[f.File], f)
	}
	return cf
}

// parseDiagnosticLine classifies one non-indented compiler line. The
// expected shape is "file:line:col: message" (the column is occasionally
// absent). Returns ok=false for anything that is not one of the four fact
// kinds or whose position does not parse.
func parseDiagnosticLine(line string) (CompilerFact, bool) {
	file, ln, col, msg, ok := splitPosition(line)
	if !ok {
		return CompilerFact{}, false
	}
	if strings.HasPrefix(file, "/") || strings.HasPrefix(file, "<") {
		// Stdlib or synthetic positions; only module-relative files join.
		return CompilerFact{}, false
	}
	fact := CompilerFact{File: file, Line: ln, Col: col}
	switch {
	case strings.HasPrefix(msg, "moved to heap: "):
		fact.Kind = FactMovedToHeap
		fact.Detail = strings.TrimPrefix(msg, "moved to heap: ")
	case strings.HasSuffix(msg, " escapes to heap") || strings.HasSuffix(msg, " escapes to heap:"):
		fact.Kind = FactEscape
		fact.Detail = strings.TrimSuffix(strings.TrimSuffix(msg, ":"), " escapes to heap")
	case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
		fact.Kind = FactBoundsCheck
		fact.Detail = strings.TrimPrefix(msg, "Found ")
	case strings.HasPrefix(msg, "cannot inline "):
		rest := strings.TrimPrefix(msg, "cannot inline ")
		fn, reason, found := strings.Cut(rest, ": ")
		if !found {
			return CompilerFact{}, false
		}
		fact.Kind = FactCannotInline
		fact.Fn = fn
		fact.Detail = reason
		// "function too complex: cost 105 exceeds budget 80"
		if _, costs, hasCost := strings.Cut(reason, ": cost "); hasCost {
			var c, b int
			if n, err := fmt.Sscanf(costs, "%d exceeds budget %d", &c, &b); err == nil && n == 2 {
				fact.Cost, fact.Budget = c, b
			}
		}
	default:
		return CompilerFact{}, false
	}
	if fact.Detail == "" {
		return CompilerFact{}, false
	}
	return fact, true
}

// splitPosition parses the "file:line:col: " or "file:line: " prefix of a
// diagnostic line. File names may not contain colons here — the compiler
// prints module-relative paths — so scanning for ": " separators suffices.
func splitPosition(line string) (file string, ln, col int, msg string, ok bool) {
	head, msg, found := strings.Cut(line, ": ")
	if !found || msg == "" {
		return "", 0, 0, "", false
	}
	parts := strings.Split(head, ":")
	n := len(parts)
	if n < 2 {
		return "", 0, 0, "", false
	}
	// Trailing numeric fields are line[:col]; everything before is the file.
	if c, err := parseInt(parts[n-1]); err == nil && n >= 3 {
		if l, err2 := parseInt(parts[n-2]); err2 == nil {
			file = strings.Join(parts[:n-2], ":")
			file = strings.TrimPrefix(file, "./")
			if !strings.HasSuffix(file, ".go") {
				return "", 0, 0, "", false
			}
			return file, l, c, msg, true
		}
	}
	if l, err := parseInt(parts[n-1]); err == nil {
		file = strings.Join(parts[:n-1], ":")
		file = strings.TrimPrefix(file, "./")
		if !strings.HasSuffix(file, ".go") {
			return "", 0, 0, "", false
		}
		return file, l, 0, msg, true
	}
	return "", 0, 0, "", false
}

// parseInt is strconv.Atoi restricted to plain positive decimals, so that
// "52" parses but "col 3" or "-1" does not.
func parseInt(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("not a digit: %q", c)
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, fmt.Errorf("overflow")
		}
	}
	return n, nil
}

// benignDiagnostic reports whether a position-tagged line is known -m
// chatter rather than a compile error: inline bookkeeping, no-escape notes,
// parameter-leak annotations. Used only to separate real build failures
// from diagnostics when the compiler exits nonzero.
func benignDiagnostic(line string) bool {
	_, _, _, msg, ok := splitPosition(line)
	if !ok {
		return false
	}
	return strings.HasPrefix(msg, "can inline ") ||
		strings.HasPrefix(msg, "inlining call to ") ||
		strings.HasPrefix(msg, "leaking param") ||
		strings.HasPrefix(msg, "ignoring self-assignment") ||
		strings.HasPrefix(msg, "mark escaped content") ||
		strings.Contains(msg, " does not escape")
}

// HarvestCompilerFacts compiles the given package directories (paths
// relative to the module root) with diagnostic flags enabled and parses the
// result. The flags are scoped to the named packages — not -gcflags=all= —
// so the standard library and dependencies build silently from cache; only
// module code is of interest and only module positions would survive the
// join anyway.
//
// Compilation failures in individual packages are tolerated and recorded in
// BuildErrors: fixture trees under testdata may deliberately not build, and
// a half-broken working tree should still lint the packages that do. The
// error return is reserved for the harvest being impossible (no go tool).
func HarvestCompilerFacts(root string, dirs []string) (*CompilerFacts, error) {
	args := []string{"build", "-gcflags=-m=2 -d=ssa/check_bce/debug=1"}
	seen := map[string]bool{}
	for _, dir := range dirs {
		rel := dir
		if filepath.IsAbs(rel) {
			r, err := filepath.Rel(root, dir)
			if err != nil || strings.HasPrefix(r, "..") {
				continue
			}
			rel = r
		}
		rel = filepath.ToSlash(rel)
		if rel == "" || rel == "." {
			rel = "."
		} else {
			rel = "./" + strings.TrimPrefix(rel, "./")
		}
		if !seen[rel] {
			seen[rel] = true
			args = append(args, rel)
		}
	}
	if len(seen) == 0 {
		return ParseCompilerDiagnostics(strings.NewReader("")), nil
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, runErr := cmd.CombinedOutput()
	cf := ParseCompilerDiagnostics(strings.NewReader(string(out)))
	if runErr != nil {
		if len(out) == 0 {
			// Nothing parsed and nothing to parse: the tool itself failed.
			return nil, fmt.Errorf("compiler harvest: %v", runErr)
		}
		for _, l := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			// Keep compile errors (not diagnostics) for the caller to surface.
			if l == "" || l[0] == '#' || l[0] == ' ' || l[0] == '\t' {
				continue
			}
			if _, ok := parseDiagnosticLine(l); ok || benignDiagnostic(l) {
				continue
			}
			cf.BuildErrors = append(cf.BuildErrors, l)
		}
	}
	return cf, nil
}

package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// UncheckedError flags calls whose error result is silently dropped in the
// harness layers: every package under cmd/ and internal/core. The paper's
// §VI calls for "more formally specified verification and validation
// procedures" — a harness that ignores an I/O or parse error can publish a
// table built from a half-read graph. Kernel packages are out of scope (they
// return values, not errors); tests are out of scope (failures surface
// through the testing package).
//
// The fmt.Print family is exempt: its error return exists for io.Writer
// plumbing and is idiomatically dropped for terminal output.
var UncheckedError = &Analyzer{
	Name: "unchecked-error",
	Doc:  "cmd/ and internal/core must not drop error returns",
	Run:  runUncheckedError,
}

func runUncheckedError(pass *Pass) {
	pkg := pass.Pkg
	if !strings.HasPrefix(pkg.Path, pkg.Module+"/cmd/") && pkg.Path != pkg.Module+"/internal/core" {
		return
	}
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = st.Call
			case *ast.DeferStmt:
				call = st.Call
			}
			if call == nil || !returnsError(pkg, call) || exemptFromErrcheck(pkg, call) {
				return true
			}
			pass.Reportf(call.Pos(), "result of %s contains an unchecked error: handle it or suppress with a justified //gapvet:ignore unchecked-error", callName(call))
			return true
		})
	}
}

// returnsError reports whether the call's type includes an error.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil || tv.IsType() {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// exemptFromErrcheck allows fmt's printing functions, whose dropped error is
// idiomatic.
func exemptFromErrcheck(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return false
	}
	return strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")
}

// callName renders the called expression for the diagnostic message.
func callName(call *ast.CallExpr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), call.Fun); err != nil {
		return "call"
	}
	return buf.String()
}

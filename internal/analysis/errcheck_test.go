package analysis

import "testing"

func TestUncheckedError(t *testing.T) {
	checkRule(t, UncheckedError, []ruleCase{
		{
			name: "dropped error in cmd is flagged",
			path: "gapbench/cmd/demo",
			files: map[string]string{"bad.go": `package main

import "os"

func main() {
	os.Remove("stale.txt")
}
`},
			want: []string{`bad.go:6: [unchecked-error] result of os.Remove contains an unchecked error`},
		},
		{
			name: "dropped multi-return error in core is flagged",
			path: "gapbench/internal/core",
			files: map[string]string{"bad.go": `package core

import "os"

func load() {
	os.Create("out.txt")
}
`},
			want: []string{"result of os.Create contains an unchecked error"},
		},
		{
			name: "deferred and goroutine errors are flagged",
			path: "gapbench/cmd/demo",
			files: map[string]string{"bad.go": `package main

import "os"

func run(f *os.File) {
	defer f.Close()
	go f.Sync()
}

func main() {}
`},
			want: []string{
				"result of f.Close contains an unchecked error",
				"result of f.Sync contains an unchecked error",
			},
		},
		{
			name: "handled errors and fmt printing are clean",
			path: "gapbench/cmd/demo",
			files: map[string]string{"ok.go": `package main

import (
	"fmt"
	"os"
)

func main() {
	if err := os.Remove("stale.txt"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("done")
}
`},
			want: nil,
		},
		{
			name: "kernel packages are out of scope",
			path: "gapbench/internal/gap",
			files: map[string]string{"ok.go": `package gap

import "os"

func sloppy() {
	os.Remove("stale.txt")
}
`},
			want: nil,
		},
	})
}

package analysis

// facts.go is the interprocedural layer of the engine: it lowers every
// function of the loaded packages into a flow-light *summary* (calls made,
// shared-state accesses, allocations, I/O, lock acquisitions) and stitches
// the summaries into a module-wide call graph. Rules that need to see across
// function boundaries (atomic-plain-mix, lock-order, alloc-in-timed-region,
// the transitive half of timed-region-purity) query the resulting Program
// instead of re-walking ASTs.
//
// The engine is deliberately a *summary* dataflow, not an SSA one: facts are
// sets keyed by coarse variable identities, propagated to a fixpoint over
// the call graph. That trades alias precision for a stdlib-only
// implementation that runs in milliseconds over the whole module — the same
// trade the per-function rules already make.
//
// Variable identity (VarKey) is the load-bearing approximation. Three cases:
//
//   - package-level variables: exact (by object);
//   - struct fields: keyed by declaring package + field name + type, so the
//     same field reached through different receiver objects unifies (that is
//     what makes "Bitmap.words is CASed in SetAtomic but read plainly in
//     Get" expressible at all);
//   - locals and parameters: keyed by package + name + type, so the
//     `parent []int32` a kernel allocates and the `parent []int32` its
//     helper mutates unify across the call, without alias analysis.
//
// The name/type heuristic can conflate two unrelated variables that share a
// name and type inside one package; in this codebase's naming discipline
// that conflation is exactly the intent (dist/parent/comp mean the same
// array everywhere), and //gapvet:ignore remains the escape hatch.

import (
	"cmp"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// FuncID names a function or method uniquely across the module, in the form
// types.Func.FullName produces: "pkg/path.Fn" or "(pkg/path.T).M".
type FuncID string

// VarKey identifies a shared-state candidate across function boundaries;
// see the package comment for the three identity classes.
type VarKey string

// AccessKind classifies one recorded access to a VarKey.
type AccessKind uint8

// Access kinds.
const (
	// AtomicAccess is a read or write made through a sync/atomic function.
	AtomicAccess AccessKind = iota
	// PlainRead is an unsynchronized element/field/variable read.
	PlainRead
	// PlainWrite is an unsynchronized element/field/variable write (or a
	// non-atomic address-taking, treated conservatively as a write).
	PlainWrite
)

// spawnCtx records where in the goroutine-spawning structure a fact was
// collected: lexically inside a `go` statement, and/or inside function
// literals passed as arguments to the listed callees (innermost last). A
// fact is concurrent when any enclosing callee transitively spawns
// goroutines (par.For hands its closure to workers, and so does anything
// built on it).
type spawnCtx struct {
	insideGo bool
	spawners []FuncID
}

// Access is one recorded shared-state touch.
type Access struct {
	Key     VarKey
	Display string // human name for diagnostics ("parent", "Bitmap.words")
	Kind    AccessKind
	Pos     token.Pos
	ctx     spawnCtx
}

// CallSite is one statically resolvable call (or a named function passed to
// a spawning helper, which will be invoked by it).
type CallSite struct {
	Callee FuncID
	Pos    token.Pos
	ctx    spawnCtx
	// held lists the lock keys syntactically held at the call, for the
	// interprocedural half of lock-order.
	held []VarKey
}

// AllocSite is one allocation: a make/new/append builtin call or a function
// literal (closures allocate their capture environment).
type AllocSite struct {
	What string // "make", "new", "append", "func literal"
	Pos  token.Pos
	ctx  spawnCtx
	// immediate marks a func literal that is directly consumed by the
	// enclosing call — passed as an argument or invoked in place (including
	// via go/defer). Such literals are created once per phase or spawn, not
	// per element, and alloc-in-timed-region whitelists them.
	immediate bool
}

// IOSite is one direct I/O call, in the same catalogue the
// timed-region-purity rule uses (log.*, os.*, fmt.Print*/Fprint*,
// print/println builtins).
type IOSite struct {
	What string // "log.Printf", "os.Getenv", "builtin println", ...
	Pos  token.Pos
}

// LockEdge records "from was held while to was acquired" at Pos.
type LockEdge struct {
	From, To               VarKey
	FromDisplay, ToDisplay string
	Pos                    token.Pos
}

// FuncSummary is the per-function fact set the interprocedural rules
// consume.
type FuncSummary struct {
	ID      FuncID
	PkgPath string
	Pkg     *Package
	Name    string // short display name ("tdStep", "(*Bitmap).Set")
	Pos     token.Pos

	Calls    []CallSite
	Accesses []Access
	Allocs   []AllocSite
	IO       []IOSite

	// LockEdges are intra-function acquisition orderings; cross-function
	// edges are derived from Calls[i].held x transitive lock sets.
	LockEdges []LockEdge
	// Locks maps every lock key this function acquires directly to the
	// first acquisition site.
	Locks map[VarKey]token.Pos
	// lockNames maps lock keys to display names.
	lockNames map[VarKey]string

	// spawnsGoDirect is true when the body contains a go statement.
	spawnsGoDirect bool

	// funcFieldStores lists struct fields (by identity key) into which this
	// function stores a func-typed value — a closure parked in a work item,
	// the par.Machine pattern (dispatch stores the region body in
	// region.body and sends the region down the wake channel). If any
	// function that may run on a spawned goroutine invokes such a field, the
	// storer effectively spawns its closures despite containing no
	// syntactic `go`.
	funcFieldStores []VarKey
	// funcFieldCalls lists func-typed struct fields this function invokes
	// (runSlot's r.body(slot)), with the spawn context of each call.
	funcFieldCalls []fieldUse
}

// fieldUse is one invocation of a func-typed struct field.
type fieldUse struct {
	Key VarKey
	ctx spawnCtx
}

// ioFact / allocFact are the propagated "this function (transitively)
// performs X" facts, keeping one representative site plus the immediate
// callee it was reached through ("" when direct).
type ioFact struct {
	What string
	Pos  token.Pos
	Via  FuncID
}

type allocFact struct {
	What string
	Pos  token.Pos
	Via  FuncID
}

// Program is the module-wide fact database: every function summary, the call
// graph they induce, and the fixpoint results interprocedural rules query.
type Program struct {
	Module string
	Funcs  map[FuncID]*FuncSummary
	order  []FuncID // deterministic iteration order

	spawnsGo   map[FuncID]bool // transitively spawns goroutines
	concurrent map[FuncID]bool // may execute on a spawned goroutine
	// concurrentTimed narrows concurrent to goroutines *originating in
	// timed kernel packages* (a go statement or par-style spawner inside
	// gap/par/...). The harness's trial-sandbox goroutine in internal/core
	// wraps an entire kernel invocation for fault isolation; it is the
	// timing context itself, not a parallel hot path, so rules about
	// measured-loop overhead (alloc-in-timed-region) must not treat
	// everything under it as spawned.
	concurrentTimed map[FuncID]bool
	transIO         map[FuncID]*ioFact
	transAlloc      map[FuncID]*allocFact
	transLocks      map[FuncID]map[VarKey]token.Pos
	lockNames       map[VarKey]string
	// writes holds the per-function write-set summaries (writeset.go).
	writes map[FuncID]*writeFacts
	// reachesCancel marks functions whose transitive call set contains a
	// cancellation poll (a method named Cancelled or Interrupted); computed
	// lazily by ReachesCancelPoll.
	reachesCancel map[FuncID]bool
}

// BuildProgram summarizes every non-test function of the packages and runs
// the call-graph fixpoints. Test files are excluded throughout: they are
// harness, not timed or concurrent kernel code.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{Funcs: map[FuncID]*FuncSummary{}, lockNames: map[VarKey]string{}}
	if len(pkgs) > 0 {
		p.Module = pkgs[0].Module
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				s := summarize(pkg, fd)
				if s != nil {
					p.Funcs[s.ID] = s
					for k, n := range s.lockNames {
						p.lockNames[k] = n
					}
				}
			}
		}
	}
	p.order = make([]FuncID, 0, len(p.Funcs))
	for id := range p.Funcs {
		p.order = append(p.order, id)
	}
	slices.Sort(p.order)

	p.fixSpawnsGo()
	p.fixConcurrent()
	// Field-based spawn propagation: closures that reach pool goroutines
	// through data (stored in a struct field a spawned worker loop invokes,
	// the par.Machine wake-channel pattern) spawn no goroutine syntactically,
	// so the call-graph fixpoints alone cannot see them. Each round may
	// promote new spawners, which in turn widens the concurrent set, which
	// may make more field invocations hot — iterate the joint fixpoint.
	for p.propagateFieldSpawns() {
		p.fixSpawnsGo()
		p.fixConcurrent()
	}
	p.fixConcurrentTimed()
	p.fixTransIO()
	p.fixTransAlloc()
	p.fixTransLocks()
	p.fixWriteSets(pkgs)
	return p
}

// isCancelPoll reports whether the callee is a cancellation poll: any method
// named Cancelled (par.CancelToken, kernel.Options) or Interrupted
// (par.Machine). Matching on the method name keeps fixtures free to supply
// their own token types.
func isCancelPoll(id FuncID) bool {
	return strings.HasSuffix(string(id), ".Cancelled") || strings.HasSuffix(string(id), ".Interrupted")
}

// ReachesCancelPoll reports whether the function's transitive call set
// contains a cancellation poll. The closure is computed once on first use.
func (p *Program) ReachesCancelPoll(id FuncID) bool {
	if p.reachesCancel == nil {
		p.reachesCancel = map[FuncID]bool{}
		for _, fid := range p.order {
			for _, c := range p.Funcs[fid].Calls {
				if isCancelPoll(c.Callee) {
					p.reachesCancel[fid] = true
					break
				}
			}
		}
		for changed := true; changed; {
			changed = false
			for _, fid := range p.order {
				if p.reachesCancel[fid] {
					continue
				}
				for _, c := range p.Funcs[fid].Calls {
					if p.reachesCancel[c.Callee] {
						p.reachesCancel[fid] = true
						changed = true
						break
					}
				}
			}
		}
	}
	return p.reachesCancel[id]
}

// ---------------------------------------------------------------------------
// Summarization: one walk per function.

// summarize lowers one function declaration into a FuncSummary.
func summarize(pkg *Package, fd *ast.FuncDecl) *FuncSummary {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return nil // broken fixture code; nothing to anchor facts to
	}
	s := &FuncSummary{
		ID:        FuncID(obj.FullName()),
		PkgPath:   pkg.Path,
		Pkg:       pkg,
		Name:      displayFuncName(obj),
		Pos:       fd.Pos(),
		Locks:     map[VarKey]token.Pos{},
		lockNames: map[VarKey]string{},
	}
	b := &summaryBuilder{pkg: pkg, s: s}
	b.walk(fd.Body, nil)
	return s
}

// summaryBuilder carries the traversal state for one function.
type summaryBuilder struct {
	pkg *Package
	s   *FuncSummary

	// held is the stack of lock keys syntactically held at the current
	// point of the (source-ordered) traversal.
	held []VarKey
	// skipPlain marks &x operands consumed by sync/atomic calls so the
	// generic access pass does not double-count them as plain writes.
	skipPlain map[ast.Expr]bool
}

// walk traverses n keeping the ancestor stack, recording facts.
func (b *summaryBuilder) walk(n ast.Node, stack []ast.Node) {
	if n == nil {
		return
	}
	if b.skipPlain == nil {
		b.skipPlain = map[ast.Expr]bool{}
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		b.visit(node, stack)
		stack = append(stack, node)
		return true
	})
}

// visit records the facts observable at one node.
func (b *summaryBuilder) visit(node ast.Node, stack []ast.Node) {
	switch n := node.(type) {
	case *ast.GoStmt:
		b.s.spawnsGoDirect = true
	case *ast.CallExpr:
		b.visitCall(n, stack)
	case *ast.FuncLit:
		// The literal itself allocates its capture environment where it is
		// created; its body is walked with the literal on the stack, so
		// facts inside it pick up the spawn context.
		b.record(&b.s.Allocs, AllocSite{What: "func literal", Pos: n.Pos(),
			ctx: b.spawnContext(stack), immediate: immediateFuncLit(n, stack)})
	case *ast.IndexExpr:
		b.visitAccess(n, n.X, stack)
	case *ast.SelectorExpr:
		// Field selections only; package selectors and method values are
		// not state accesses.
		if v, ok := b.pkg.Info.Uses[n.Sel].(*types.Var); ok && v.IsField() {
			b.visitFieldAccess(n, v, stack)
		}
	case *ast.KeyValueExpr:
		// Struct-literal field initialization with a func-typed value
		// (&region{body: body, ...}): a closure parked in a work item.
		if id, ok := n.Key.(*ast.Ident); ok {
			b.recordFuncFieldStore(id)
		}
	case *ast.AssignStmt:
		// Field assignment with a func-typed value (r.body = fn).
		for _, lhs := range n.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				b.recordFuncFieldStore(sel.Sel)
			}
		}
	case *ast.Ident:
		// Bare package-level variable reads/writes (locals are only
		// interesting through index/selector expressions, which the cases
		// above catch).
		if v, ok := b.pkg.Info.Uses[n].(*types.Var); ok && !v.IsField() && isPackageLevel(v) {
			if key, disp, ok := b.rootKey(n); ok {
				b.recordAccess(key, disp, n, stack)
			}
		}
	}
}

// recordFuncFieldStore records a store into a func-typed struct field when
// id resolves to one (map-literal keys and ordinary fields fall out on the
// IsField / Signature checks).
func (b *summaryBuilder) recordFuncFieldStore(id *ast.Ident) {
	v, ok := b.pkg.Info.Uses[id].(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	if _, isFunc := v.Type().Underlying().(*types.Signature); !isFunc {
		return
	}
	key, _ := fieldKey(v)
	b.s.funcFieldStores = append(b.s.funcFieldStores, key)
}

// visitCall handles the call-shaped fact sources: atomic accesses, lock
// acquisitions, I/O, allocations, and call-graph edges.
func (b *summaryBuilder) visitCall(call *ast.CallExpr, stack []ast.Node) {
	info := b.pkg.Info
	ctx := b.spawnContext(stack)

	// Invocation of a func-typed struct field (runSlot's r.body(slot)): the
	// raw material of the field-based spawn propagation. Recorded and fallen
	// through — a field call resolves to a *types.Var, so none of the other
	// call shapes below can also match it.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
				key, _ := fieldKey(v)
				b.s.funcFieldCalls = append(b.s.funcFieldCalls, fieldUse{Key: key, ctx: ctx})
			}
		}
	}

	// sync/atomic calls: the &target operand is an atomic access, not a
	// plain one.
	if target, ok := atomicCallTarget(info, call); ok {
		b.skipPlain[target] = true
		if inner, ok := target.(*ast.UnaryExpr); ok && inner.Op == token.AND {
			if key, disp, ok2 := b.rootKey(inner.X); ok2 {
				b.record(&b.s.Accesses, Access{Key: key, Display: disp, Kind: AtomicAccess, Pos: call.Pos(), ctx: ctx})
			}
			b.markSkipped(inner.X)
		}
		return
	}

	// Mutex Lock/Unlock tracking (syntactic, source order).
	if key, disp, op, ok := mutexOp(b.pkg, call); ok {
		switch op {
		case "Lock", "RLock", "TryLock":
			for _, h := range b.held {
				if h != key {
					b.s.LockEdges = append(b.s.LockEdges, LockEdge{
						From: h, To: key,
						FromDisplay: b.s.lockNames[h], ToDisplay: disp,
						Pos: call.Pos(),
					})
				}
			}
			if _, seen := b.s.Locks[key]; !seen {
				b.s.Locks[key] = call.Pos()
			}
			b.s.lockNames[key] = disp
			if !inDefer(stack) {
				b.held = append(b.held, key)
			}
		case "Unlock", "RUnlock":
			if inDefer(stack) {
				break // deferred release: held to function exit
			}
			for i := len(b.held) - 1; i >= 0; i-- {
				if b.held[i] == key {
					b.held = append(b.held[:i], b.held[i+1:]...)
					break
				}
			}
		}
		return
	}

	// I/O catalogue (shared with timed-region-purity).
	if what, ok := ioCall(b.pkg, call); ok {
		b.s.IO = append(b.s.IO, IOSite{What: what, Pos: call.Pos()})
		return
	}

	// Allocation builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil && obj.Parent() == types.Universe {
			switch id.Name {
			case "make", "new", "append":
				b.record(&b.s.Allocs, AllocSite{What: id.Name, Pos: call.Pos(), ctx: ctx})
			}
			return
		}
	}

	// Call-graph edge to a statically resolvable module function.
	if callee, ok := calleeOf(b.pkg, call); ok {
		b.s.Calls = append(b.s.Calls, CallSite{
			Callee: callee, Pos: call.Pos(), ctx: ctx,
			held: append([]VarKey(nil), b.held...),
		})
	}
	// Named module functions passed as arguments will be invoked by the
	// callee; record them as edges too (the spawn context is resolved during
	// the concurrency fixpoint via the receiving callee).
	for _, arg := range call.Args {
		if fn, ok := funcValueOf(b.pkg, arg); ok {
			argCtx := ctx
			if callee, ok2 := calleeOf(b.pkg, call); ok2 {
				argCtx.spawners = append(append([]FuncID(nil), ctx.spawners...), callee)
			}
			b.s.Calls = append(b.s.Calls, CallSite{Callee: fn, Pos: arg.Pos(), ctx: argCtx})
		}
	}
}

// visitAccess records a plain element access rooted at base (an IndexExpr's
// X), unless it was consumed by an atomic call.
func (b *summaryBuilder) visitAccess(n ast.Expr, base ast.Expr, stack []ast.Node) {
	if b.skipPlain[n] {
		return
	}
	key, disp, ok := b.rootKey(base)
	if !ok {
		return
	}
	b.recordAccess(key, disp, n, stack)
}

// visitFieldAccess records a plain struct-field access.
func (b *summaryBuilder) visitFieldAccess(n *ast.SelectorExpr, v *types.Var, stack []ast.Node) {
	if b.skipPlain[n] {
		return
	}
	key, disp := fieldKey(v)
	b.recordAccess(key, disp, n, stack)
}

// recordAccess classifies an access expression as read or write from its
// ancestor context and records it.
func (b *summaryBuilder) recordAccess(key VarKey, disp string, e ast.Expr, stack []ast.Node) {
	kind := PlainRead
	if isWriteContext(e, stack) {
		kind = PlainWrite
	}
	b.record(&b.s.Accesses, Access{Key: key, Display: disp, Kind: kind, Pos: e.Pos(), ctx: b.spawnContext(stack)})
}

// record appends, in source order (ast.Inspect visits in position order).
func (b *summaryBuilder) record(dst any, v any) {
	switch d := dst.(type) {
	case *[]Access:
		*d = append(*d, v.(Access))
	case *[]AllocSite:
		*d = append(*d, v.(AllocSite))
	}
}

// markSkipped suppresses plain-access recording for e and its nested
// index/selector spine (the atomic pass already owns it).
func (b *summaryBuilder) markSkipped(e ast.Expr) {
	for {
		b.skipPlain[e] = true
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return
		}
	}
}

// spawnContext derives the goroutine-spawning context of the current node
// from the ancestor stack: enclosing go statements and function literals
// passed as call arguments.
func (b *summaryBuilder) spawnContext(stack []ast.Node) spawnCtx {
	var ctx spawnCtx
	for i, n := range stack {
		switch t := n.(type) {
		case *ast.GoStmt:
			ctx.insideGo = true
		case *ast.FuncLit:
			// Is this literal an argument of an enclosing call?
			if i > 0 {
				if call, ok := stack[i-1].(*ast.CallExpr); ok {
					for _, arg := range call.Args {
						if arg == n {
							if callee, ok2 := calleeOf(b.pkg, call); ok2 {
								ctx.spawners = append(ctx.spawners, callee)
							}
							break
						}
					}
				}
			}
			_ = t
		}
	}
	return ctx
}

// ---------------------------------------------------------------------------
// Identity helpers.

// rootKey resolves the root variable of an lvalue-ish expression to a
// VarKey plus a display name.
func (b *summaryBuilder) rootKey(e ast.Expr) (VarKey, string, bool) {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			if v, ok := b.pkg.Info.Uses[t.Sel].(*types.Var); ok {
				if v.IsField() {
					k, d := fieldKey(v)
					return k, d, true
				}
				if isPackageLevel(v) {
					return VarKey("pkgvar:" + v.Pkg().Path() + "." + v.Name()), v.Name(), true
				}
			}
			return "", "", false
		case *ast.Ident:
			v, ok := b.pkg.Info.Uses[t].(*types.Var)
			if !ok {
				if v, ok = b.pkg.Info.Defs[t].(*types.Var); !ok {
					return "", "", false
				}
			}
			if v.IsField() {
				k, d := fieldKey(v)
				return k, d, true
			}
			if isPackageLevel(v) {
				return VarKey("pkgvar:" + v.Pkg().Path() + "." + v.Name()), v.Name(), true
			}
			// Local or parameter: name+type identity within the package.
			return VarKey("local:" + b.pkg.Path + ":" + v.Name() + ":" + types.TypeString(v.Type(), nil)), v.Name(), true
		default:
			return "", "", false
		}
	}
}

// fieldKey keys a struct field by declaring package, name, and type.
func fieldKey(v *types.Var) (VarKey, string) {
	pkgPath := ""
	if v.Pkg() != nil {
		pkgPath = v.Pkg().Path()
	}
	return VarKey("field:" + pkgPath + "." + v.Name() + ":" + types.TypeString(v.Type(), nil)),
		lastSegment(pkgPath) + "." + v.Name()
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isWriteContext reports whether e (with the given ancestor stack) is
// written: assignment LHS, ++/--, range assignment target, or non-atomic
// address-taking (conservatively a write).
func isWriteContext(e ast.Expr, stack []ast.Node) bool {
	child := ast.Node(e)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			child = p
			continue
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == child {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == child
		case *ast.RangeStmt:
			return p.Key == child || p.Value == child
		case *ast.UnaryExpr:
			return p.Op == token.AND && p.X == child
		default:
			return false
		}
	}
	return false
}

// atomicCallTarget reports whether call is a sync/atomic package function
// and returns its pointer argument expression.
func atomicCallTarget(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, true
	}
	return call.Args[0], true
}

// mutexOp reports whether call locks or unlocks a sync.Mutex/RWMutex and
// returns the lock's key, display name, and the method name.
func mutexOp(pkg *Package, call *ast.CallExpr) (VarKey, string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "Unlock", "RUnlock":
	default:
		return "", "", "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", "", false
	}
	b := &summaryBuilder{pkg: pkg}
	key, disp, ok := b.rootKey(sel.X)
	if !ok {
		return "", "", "", false
	}
	return key, disp, sel.Sel.Name, true
}

// ioCall reports whether call is a direct I/O operation from the
// timed-region-purity catalogue, returning a display name.
func ioCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[fun]; obj != nil && obj.Parent() == types.Universe &&
			(fun.Name == "print" || fun.Name == "println") {
			return "builtin " + fun.Name, true
		}
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return "", false
		}
		pn, ok := pkg.Info.Uses[id].(*types.PkgName)
		if !ok {
			return "", false
		}
		switch pn.Imported().Path() {
		case "log":
			return "log." + fun.Sel.Name, true
		case "os":
			return "os." + fun.Sel.Name, true
		case "fmt":
			if strings.HasPrefix(fun.Sel.Name, "Print") || strings.HasPrefix(fun.Sel.Name, "Fprint") {
				return "fmt." + fun.Sel.Name, true
			}
		}
	}
	return "", false
}

// calleeOf resolves a call to a module-internal named function or method.
func calleeOf(pkg *Package, call *ast.CallExpr) (FuncID, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	default:
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if !strings.HasPrefix(fn.Pkg().Path(), pkg.Module) {
		return "", false
	}
	return FuncID(fn.FullName()), true
}

// funcValueOf resolves an expression used as a value to a module function
// (a named function passed as an argument).
func funcValueOf(pkg *Package, e ast.Expr) (FuncID, bool) {
	var obj types.Object
	switch t := e.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[t]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[t.Sel]
	default:
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), pkg.Module) {
		return "", false
	}
	return FuncID(fn.FullName()), true
}

// displayFuncName renders a short human name for diagnostics: "Fn",
// "(*T).M", qualified with the package's last path segment when the call
// crosses packages (done at message-format time).
func displayFuncName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		return "(" + types.TypeString(t, func(p *types.Package) string { return "" }) + ")." + fn.Name()
	}
	return fn.Name()
}

// immediateFuncLit reports whether the literal is directly consumed by its
// enclosing call: passed as an argument (par.For(n, func...)) or invoked in
// place (go func(){}(), func(){}()). These are created once per phase or
// spawn; only literals that are *stored* (assigned, appended, returned) can
// churn per element on a hot path.
func immediateFuncLit(lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	if call.Fun == lit {
		return true
	}
	for _, arg := range call.Args {
		if arg == lit {
			return true
		}
	}
	return false
}

// inDefer reports whether the ancestor stack passes through a defer
// statement.
func inDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Fixpoints.

// fixSpawnsGo computes which functions transitively spawn goroutines. On
// re-runs (after propagateFieldSpawns promoted data-flow spawners) the
// existing entries are kept and only the call-graph closure is re-taken.
func (p *Program) fixSpawnsGo() {
	if p.spawnsGo == nil {
		p.spawnsGo = map[FuncID]bool{}
		for _, id := range p.order {
			if p.Funcs[id].spawnsGoDirect {
				p.spawnsGo[id] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range p.order {
			if p.spawnsGo[id] {
				continue
			}
			for _, c := range p.Funcs[id].Calls {
				if p.spawnsGo[c.Callee] {
					p.spawnsGo[id] = true
					changed = true
					break
				}
			}
		}
	}
}

// SpawnsGo reports whether the function transitively spawns goroutines.
func (p *Program) SpawnsGo(id FuncID) bool { return p.spawnsGo[id] }

// propagateFieldSpawns handles spawning that flows through data instead of
// the call graph: a closure stored into a func-typed struct field and
// invoked by a goroutine the storer never syntactically calls. The concrete
// instance is par.Machine — dispatch parks the region body in region.body
// and publishes the region on the wake channel; pool workers (spawned once,
// in NewMachine) receive it and call r.body via runSlot. A func-typed field
// is *hot* when any function that may run on a spawned goroutine invokes
// it; a function storing a closure into a hot field then counts as a
// spawner, exactly as if it handed the closure to par.For. Reports whether
// any new spawner was promoted (the caller then re-closes the call-graph
// fixpoints and retries until nothing changes).
func (p *Program) propagateFieldSpawns() bool {
	hot := map[VarKey]bool{}
	for _, id := range p.order {
		for _, u := range p.Funcs[id].funcFieldCalls {
			if p.concurrent[id] || p.concurrentCtx(u.ctx) {
				hot[u.Key] = true
			}
		}
	}
	changed := false
	for _, id := range p.order {
		if p.spawnsGo[id] {
			continue
		}
		for _, key := range p.Funcs[id].funcFieldStores {
			if hot[key] {
				p.spawnsGo[id] = true
				changed = true
				break
			}
		}
	}
	return changed
}

// concurrentCtx reports whether facts collected under ctx may execute on a
// spawned goroutine.
func (p *Program) concurrentCtx(ctx spawnCtx) bool {
	if ctx.insideGo {
		return true
	}
	for _, s := range ctx.spawners {
		if p.spawnsGo[s] {
			return true
		}
	}
	return false
}

// fixConcurrent computes the set of functions that may execute on a spawned
// goroutine: called from a concurrent context, or called (transitively) by
// such a function.
func (p *Program) fixConcurrent() {
	p.concurrent = map[FuncID]bool{}
	for _, id := range p.order {
		for _, c := range p.Funcs[id].Calls {
			if p.concurrentCtx(c.ctx) {
				p.concurrent[c.Callee] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range p.order {
			if !p.concurrent[id] {
				continue
			}
			for _, c := range p.Funcs[id].Calls {
				if !p.concurrent[c.Callee] {
					p.concurrent[c.Callee] = true
					changed = true
				}
			}
		}
	}
}

// ConcurrentFunc reports whether the function may run on a spawned
// goroutine.
func (p *Program) ConcurrentFunc(id FuncID) bool { return p.concurrent[id] }

// timedSpawnCtx reports whether facts collected under ctx may execute on a
// goroutine whose spawn originates in a timed kernel package: a `go`
// statement lexically inside a timed-package function (owner), or a closure
// handed to a goroutine-spawning callee that itself lives in a timed
// package (par.For and friends). A goroutine spawned by harness code —
// internal/core's per-trial sandbox — does not qualify: it carries exactly
// one kernel invocation and is the measurement context, not a worker.
func (p *Program) timedSpawnCtx(owner *FuncSummary, ctx spawnCtx) bool {
	if ctx.insideGo && timedPurityPackages[lastSegment(owner.PkgPath)] {
		return true
	}
	for _, s := range ctx.spawners {
		if !p.spawnsGo[s] {
			continue
		}
		if sum := p.Funcs[s]; sum != nil && timedPurityPackages[lastSegment(sum.PkgPath)] {
			return true
		}
	}
	return false
}

// fixConcurrentTimed mirrors fixConcurrent but seeds only from spawn sites
// that timedSpawnCtx accepts, then closes over the call graph. Run after the
// joint spawnsGo/concurrent fixpoint so field-promoted spawners
// (par.Machine's dispatch) are already visible.
func (p *Program) fixConcurrentTimed() {
	p.concurrentTimed = map[FuncID]bool{}
	for _, id := range p.order {
		owner := p.Funcs[id]
		for _, c := range owner.Calls {
			if p.timedSpawnCtx(owner, c.ctx) {
				p.concurrentTimed[c.Callee] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range p.order {
			if !p.concurrentTimed[id] {
				continue
			}
			for _, c := range p.Funcs[id].Calls {
				if !p.concurrentTimed[c.Callee] {
					p.concurrentTimed[c.Callee] = true
					changed = true
				}
			}
		}
	}
}

// ConcurrentFromTimed reports whether the function may run on a goroutine
// spawned by timed-package code (see timedSpawnCtx).
func (p *Program) ConcurrentFromTimed(id FuncID) bool { return p.concurrentTimed[id] }

// ConcurrentAccess reports whether the access may race: it is lexically
// inside a spawning construct, or its enclosing function is reachable from
// one.
func (p *Program) ConcurrentAccess(owner *FuncSummary, a Access) bool {
	return p.concurrentCtx(a.ctx) || p.concurrent[owner.ID]
}

// fixTransIO propagates "performs I/O" facts up the call graph, keeping the
// representative site with the smallest position for determinism.
func (p *Program) fixTransIO() {
	p.transIO = map[FuncID]*ioFact{}
	for changed := true; changed; {
		changed = false
		for _, id := range p.order {
			s := p.Funcs[id]
			best := p.transIO[id]
			for _, io := range s.IO {
				best = minIOFact(best, &ioFact{What: io.What, Pos: io.Pos})
			}
			for _, c := range s.Calls {
				if f := p.transIO[c.Callee]; f != nil {
					best = minIOFact(best, &ioFact{What: f.What, Pos: f.Pos, Via: c.Callee})
				}
			}
			if best != p.transIO[id] && (p.transIO[id] == nil || best.Pos < p.transIO[id].Pos) {
				p.transIO[id] = best
				changed = true
			}
		}
	}
}

func minIOFact(a, b *ioFact) *ioFact {
	if a == nil || (b != nil && b.Pos < a.Pos) {
		return b
	}
	return a
}

// TransIO returns the representative I/O fact the function (transitively)
// reaches, or nil.
func (p *Program) TransIO(id FuncID) (what string, pos token.Pos, ok bool) {
	if f := p.transIO[id]; f != nil {
		return f.What, f.Pos, true
	}
	return "", token.NoPos, false
}

// fixTransAlloc propagates "allocates" facts up the call graph. Only make
// and new propagate across calls (append and closure creation are too
// pervasive to chase transitively without drowning the signal); all four
// count at the direct site.
func (p *Program) fixTransAlloc() {
	p.transAlloc = map[FuncID]*allocFact{}
	for changed := true; changed; {
		changed = false
		for _, id := range p.order {
			s := p.Funcs[id]
			best := p.transAlloc[id]
			for _, a := range s.Allocs {
				if a.What == "make" || a.What == "new" {
					best = minAllocFact(best, &allocFact{What: a.What, Pos: a.Pos})
				}
			}
			for _, c := range s.Calls {
				if f := p.transAlloc[c.Callee]; f != nil {
					best = minAllocFact(best, &allocFact{What: f.What, Pos: f.Pos, Via: c.Callee})
				}
			}
			if best != p.transAlloc[id] && (p.transAlloc[id] == nil || best.Pos < p.transAlloc[id].Pos) {
				p.transAlloc[id] = best
				changed = true
			}
		}
	}
}

func minAllocFact(a, b *allocFact) *allocFact {
	if a == nil || (b != nil && b.Pos < a.Pos) {
		return b
	}
	return a
}

// TransAlloc returns the representative allocation the function
// (transitively) performs, or ok=false.
func (p *Program) TransAlloc(id FuncID) (what string, pos token.Pos, ok bool) {
	if f := p.transAlloc[id]; f != nil {
		return f.What, f.Pos, true
	}
	return "", token.NoPos, false
}

// fixTransLocks propagates "may acquire lock K" sets up the call graph.
func (p *Program) fixTransLocks() {
	p.transLocks = map[FuncID]map[VarKey]token.Pos{}
	for _, id := range p.order {
		m := map[VarKey]token.Pos{}
		for k, pos := range p.Funcs[id].Locks {
			m[k] = pos
		}
		p.transLocks[id] = m
	}
	for changed := true; changed; {
		changed = false
		for _, id := range p.order {
			m := p.transLocks[id]
			for _, c := range p.Funcs[id].Calls {
				for k, pos := range p.transLocks[c.Callee] {
					if _, ok := m[k]; !ok {
						m[k] = pos
						changed = true
					}
				}
			}
		}
	}
}

// AllLockEdges assembles the module-wide lock acquisition graph: direct
// intra-function edges plus edges induced by calls made while holding a
// lock into functions that (transitively) acquire another.
func (p *Program) AllLockEdges() []LockEdge {
	var edges []LockEdge
	for _, id := range p.order {
		s := p.Funcs[id]
		edges = append(edges, s.LockEdges...)
		for _, c := range s.Calls {
			if len(c.held) == 0 {
				continue
			}
			for k := range p.transLocks[c.Callee] {
				for _, h := range c.held {
					if h == k {
						continue
					}
					edges = append(edges, LockEdge{
						From: h, To: k,
						FromDisplay: p.lockNames[h], ToDisplay: p.lockNames[k],
						Pos: c.Pos,
					})
				}
			}
		}
	}
	slices.SortFunc(edges, func(a, b LockEdge) int {
		if c := cmp.Compare(a.Pos, b.Pos); c != 0 {
			return c
		}
		if c := cmp.Compare(a.From, b.From); c != 0 {
			return c
		}
		return cmp.Compare(a.To, b.To)
	})
	return edges
}

// FuncsInPackage returns the summaries of functions declared in the given
// package, in deterministic order.
func (p *Program) FuncsInPackage(pkgPath string) []*FuncSummary {
	var out []*FuncSummary
	for _, id := range p.order {
		if s := p.Funcs[id]; s.PkgPath == pkgPath {
			out = append(out, s)
		}
	}
	slices.SortFunc(out, func(a, b *FuncSummary) int { return cmp.Compare(a.Pos, b.Pos) })
	return out
}

// ShortName renders a FuncID for diagnostics, trimming the module prefix:
// "gapbench/internal/graph.NewBitmap" -> "graph.NewBitmap".
func (p *Program) ShortName(id FuncID) string {
	s := string(id)
	if p.Module != "" {
		s = strings.ReplaceAll(s, p.Module+"/internal/", "")
		s = strings.ReplaceAll(s, p.Module+"/", "")
	}
	return s
}

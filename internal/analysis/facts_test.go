package analysis

import (
	"strings"
	"testing"
)

// TestFieldSpawnPropagationRealMachine pins the field-based spawn fixpoint
// against the real internal/par: Machine.dispatch never writes a `go`
// statement and never reaches one through the call graph (it is the exported
// schedule methods that touch Default/NewMachine via orDefault) — the body
// closure reaches pool goroutines purely through data. dispatch parks it in
// region.body, workers spawned once in NewMachine receive the region off the
// wake channel, and runSlot invokes the field. Without propagateFieldSpawns,
// SpawnsGo(dispatch) is false and every rule downstream of the concurrency
// facts is blind to machine regions.
func TestFieldSpawnPropagationRealMachine(t *testing.T) {
	prog := BuildProgram([]*Package{parPackage(t)})

	const dispatch = FuncID("(*gapbench/internal/par.Machine).dispatch")
	if _, ok := prog.Funcs[dispatch]; !ok {
		t.Fatalf("no summary for %s — did Machine.dispatch get renamed?", dispatch)
	}
	if !prog.SpawnsGo(dispatch) {
		t.Errorf("SpawnsGo(%s) = false; field-based propagation must recognize the region.body store", dispatch)
	}

	// The worker-side chain: go m.worker(w) -> participate -> runSlot must be
	// classified as concurrent, which is what makes the body field hot.
	for _, id := range []FuncID{
		"(*gapbench/internal/par.Machine).worker",
		"(*gapbench/internal/par.region).participate",
		"(*gapbench/internal/par.region).runSlot",
	} {
		if !prog.ConcurrentFunc(id) {
			t.Errorf("ConcurrentFunc(%s) = false; the pool worker chain must be concurrent", id)
		}
	}

	// Sanity: promotion is targeted, not a package-wide blanket. Size reads a
	// struct field and calls nothing.
	if prog.SpawnsGo("(*gapbench/internal/par.Machine).Size") {
		t.Error("SpawnsGo(Machine.Size) = true; field propagation over-promoted")
	}
}

// miniPoolFixture is a self-contained worker pool in fixture code with the
// same shape as par.Machine but no syntactic `go` anywhere near the submit
// path: loop() runs on goroutines spawned in newPool, pulls tasks off a
// channel, and invokes the func-typed field fn. submit() only stores into
// that field. Only the field-based fixpoint can conclude that closures handed
// to submit run concurrently.
const miniPoolFixture = `package gap

type task struct {
	fn func(w int)
}

type pool struct {
	work chan *task
}

func newPool(workers int) *pool {
	p := &pool{work: make(chan *task, workers)}
	for w := 0; w < workers; w++ {
		go p.loop(w)
	}
	return p
}

func (p *pool) loop(w int) {
	for t := range p.work {
		t.fn(w)
	}
}

func (p *pool) submit(f func(w int)) {
	p.work <- &task{fn: f}
}
`

// TestFieldSpawnPropagationSeededPool checks the promotion chain on the
// in-memory mini pool: loop is concurrent (go p.loop), so the fn field is
// hot, so submit — which stores into it via a composite literal — must be
// promoted to a spawner, and closures passed to submit become concurrent
// contexts.
func TestFieldSpawnPropagationSeededPool(t *testing.T) {
	pkg := loadFixture(t, "gapbench/internal/gap", map[string]string{
		"pool.go": miniPoolFixture,
		"kernel.go": `package gap

func Count(p *pool, xs []int64) {
	p.submit(func(w int) {
		_ = xs[w]
	})
}
`,
	})
	prog := BuildProgram([]*Package{pkg})

	if !prog.ConcurrentFunc("(*gapbench/internal/gap.pool).loop") {
		t.Fatal("pool.loop must be concurrent (go p.loop)")
	}
	if !prog.SpawnsGo("(*gapbench/internal/gap.pool).submit") {
		t.Error("pool.submit must be promoted to a spawner: it stores a closure into the hot fn field")
	}
	if prog.SpawnsGo("(*gapbench/internal/gap.pool).loop") {
		t.Error("pool.loop invokes the field but stores nothing; it must not be promoted")
	}
}

// TestAllocRuleSeesFieldSpawnedClosures is the seeded-bug end-to-end test:
// an allocation inside a closure submitted to the mini pool sits on a
// parallel hot path of a timed kernel package, but no `go` statement or par
// helper is anywhere in sight. The alloc-in-timed-region rule must still
// fire, purely via the field-based spawn propagation.
func TestAllocRuleSeesFieldSpawnedClosures(t *testing.T) {
	pkg := loadFixture(t, "gapbench/internal/gap", map[string]string{
		"pool.go": miniPoolFixture,
		"kernel.go": `package gap

func Relax(p *pool, xs []int64) {
	p.submit(func(w int) {
		buf := make([]int64, 64)
		_ = buf
		_ = xs
	})
}
`,
	})
	got := runRuleOn(t, AllocInTimedRegion, pkg)
	found := false
	for _, d := range got {
		if strings.Contains(d, "kernel.go:5:") && strings.Contains(d, "allocation (make) on the parallel hot path") {
			found = true
		}
	}
	if !found {
		t.Fatalf("the make inside the submitted closure must be flagged; got %v", got)
	}
	// The setup-path make in newPool must stay clean: the pool constructor
	// runs once, outside any spawned region.
	for _, d := range got {
		if strings.Contains(d, "pool.go") {
			t.Errorf("unexpected finding in the pool scaffolding: %s", d)
		}
	}
}

package analysis

import (
	"fmt"
	"go/token"
	"slices"
)

// GraphMutation flags stores through memory derived from the shared
// *graph.Graph CSR arrays anywhere outside internal/graph itself. The
// accessor methods hand out slices that alias graph storage ("must not be
// modified", graph.go); the gapd north star — one immutable CSR served to
// concurrent kernel queries — turns that comment into a hard invariant, and
// this rule proves it statically over the write-set lattice (writeset.go):
// direct element stores, in-place sorts, copy destinations, appends into
// accessor sub-slices (whose capacity extends into the next vertex's
// adjacency), and call sites that pass graph-derived memory to a function
// that stores through the corresponding parameter.
//
// Package graph is whitelisted by package: its builder, relabel, and
// symmetrize code owns the arrays it writes. The graphguard runtime
// sanitizer (build tag graphguard) covers what the lattice cannot see —
// aliases escaping through struct fields or interfaces.
var GraphMutation = &Analyzer{
	Name:       "graph-mutation",
	Doc:        "no stores through CSR memory derived from *graph.Graph outside internal/graph",
	NeedsFacts: true,
	Run:        runGraphMutation,
}

func runGraphMutation(pass *Pass) {
	prog := pass.Prog
	if prog == nil || lastSegment(pass.Pkg.Path) == "graph" {
		return
	}
	type finding struct {
		pos token.Pos
		msg string
	}
	var findings []finding
	for _, s := range prog.FuncsInPackage(pass.Pkg.Path) {
		for _, st := range prog.GraphStores(s.ID) {
			var msg string
			if st.Via != "" {
				msg = fmt.Sprintf("%s passes graph-derived memory to %s, which stores through it: CSR arrays are shared and immutable — copy before mutating",
					s.Name, prog.ShortName(st.Via))
			} else {
				msg = fmt.Sprintf("%s through graph-derived memory in %s: CSR arrays are shared and immutable — copy before mutating",
					st.What, s.Name)
			}
			findings = append(findings, finding{pos: st.Pos, msg: msg})
		}
	}
	slices.SortFunc(findings, func(a, b finding) int { return int(a.pos - b.pos) })
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

package analysis

import "testing"

// The graph-mutation cases exercise the write-set lattice (writeset.go):
// graph-derived origins must survive local aliasing, re-slicing, parameter
// binding, and function returns, while copies into fresh memory must launder
// them away.
func TestGraphMutation(t *testing.T) {
	checkRule(t, GraphMutation, []ruleCase{
		{
			name: "store through direct alias",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "gapbench/internal/graph"

func RelabelInPlace(g *graph.Graph, u graph.NodeID) {
	ns := g.OutNeighbors(u)
	ns[0] = 7
}
`},
			want: []string{"element store through graph-derived memory in RelabelInPlace"},
		},
		{
			name: "store through re-slice chain",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "gapbench/internal/graph"

func Chop(g *graph.Graph, u graph.NodeID) {
	a := g.OutNeighbors(u)
	b := a[1:]
	c := b[:1]
	c[0] = -1
}
`},
			want: []string{"element store through graph-derived memory in Chop"},
		},
		{
			name: "store through parameter convicts the call site",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "gapbench/internal/graph"

func zeroWeights(ws []graph.Weight) {
	for i := range ws {
		ws[i] = 0
	}
}

func ZeroAll(g *graph.Graph, u graph.NodeID) {
	zeroWeights(g.OutWeights(u))
}
`},
			want: []string{"ZeroAll passes graph-derived memory to gap.zeroWeights"},
		},
		{
			name: "store through memory escaping via return",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "gapbench/internal/graph"

func firstOut(g *graph.Graph) []graph.NodeID {
	return g.OutNeighbors(0)
}

func TruncateFirst(g *graph.Graph) {
	head := firstOut(g)[:1]
	head[0] = -1
}
`},
			want: []string{"element store through graph-derived memory in TruncateFirst"},
		},
		{
			name: "in-place sort of an accessor slice",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import (
	"sort"

	"gapbench/internal/graph"
)

func SortNeighbors(g *graph.Graph, u graph.NodeID) {
	ns := g.OutNeighbors(u)
	sort.Slice(ns, func(i, j int) bool { return ns[i] > ns[j] })
}
`},
			want: []string{"graph-derived memory in SortNeighbors"},
		},
		{
			name: "copy destination and append",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "gapbench/internal/graph"

func Stomp(g *graph.Graph, u graph.NodeID, src []graph.NodeID) {
	ns := g.OutNeighbors(u)
	copy(ns, src)
	_ = append(ns, 9)
}
`},
			want: []string{
				"graph-derived memory in Stomp",
				"graph-derived memory in Stomp",
			},
		},
		{
			name: "copy into fresh memory launders the origin",
			path: "gapbench/internal/gap",
			files: map[string]string{"good.go": `package gap

import (
	"sort"

	"gapbench/internal/graph"
)

func CopyAndSort(g *graph.Graph, u graph.NodeID) []graph.NodeID {
	ns := g.OutNeighbors(u)
	own := make([]graph.NodeID, len(ns))
	copy(own, ns)
	sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })
	return own
}
`},
			want: nil,
		},
		{
			name: "reads through accessors stay clean",
			path: "gapbench/internal/gap",
			files: map[string]string{"good.go": `package gap

import "gapbench/internal/graph"

func Degree(g *graph.Graph, u graph.NodeID) int {
	total := 0
	for _, v := range g.OutNeighbors(u) {
		total += int(v)
	}
	return total
}
`},
			want: nil,
		},
	})
}

// TestGraphMutationRealKernels pins the satellite claim that the six real
// framework reproductions are mutation-free: the rule must stay silent on
// the actual internal/gap package (which reads accessor slices on every hot
// path) analyzed together with its substrate.
func TestGraphMutationRealKernels(t *testing.T) {
	gapPkg := loadRealDir(t, "internal/gap")
	if got := runRuleOn(t, GraphMutation, gapPkg, parPackage(t)); len(got) != 0 {
		t.Errorf("graph-mutation findings on real internal/gap:\n%v", got)
	}
}

// TestWriteSetFacts checks the Program-level lattice API directly:
// return-origin and store summaries for a fixture whose helper leaks graph
// memory through its return value.
func TestWriteSetFacts(t *testing.T) {
	pkg := loadFixture(t, "gapbench/internal/gap", map[string]string{"f.go": `package gap

import "gapbench/internal/graph"

func leak(g *graph.Graph) []graph.NodeID {
	return g.InNeighbors(0)
}

func fresh(g *graph.Graph) []graph.NodeID {
	return make([]graph.NodeID, g.NumNodes())
}

func scribble(ns []graph.NodeID) {
	ns[0] = 1
}
`})
	prog := BuildProgram([]*Package{pkg, parPackage(t)})
	if !prog.ReturnsGraphMemory("gapbench/internal/gap.leak", 0) {
		t.Error("leak: result 0 not marked graph-derived")
	}
	if prog.ReturnsGraphMemory("gapbench/internal/gap.fresh", 0) {
		t.Error("fresh: make()d result wrongly marked graph-derived")
	}
	if stores := prog.ParamStores("gapbench/internal/gap.scribble"); len(stores[0]) == 0 {
		t.Error("scribble: store through parameter 0 not summarized")
	}
	if stores := prog.GraphStores("gapbench/internal/gap.scribble"); len(stores) != 0 {
		t.Errorf("scribble: parameter store wrongly counted as graph store: %v", stores)
	}
}

package analysis

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// sharedLoader amortizes standard-library type-checking across all tests in
// this package: the source importer checks fmt/sync/... once per process.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

// testLoader returns the shared loader rooted at the module root.
func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot("")
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("creating loader: %v", loaderErr)
	}
	return loader
}

// loadFixture type-checks an in-memory fixture package.
func loadFixture(t *testing.T, importPath string, files map[string]string) *Package {
	t.Helper()
	pkg, err := testLoader(t).LoadSource(importPath, files)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	return pkg
}

// parOnce caches the real internal/par package: the dataflow rules learn
// "par.For spawns goroutines" from its summaries, so spawn-aware fixtures
// must be analyzed alongside it.
var (
	parOnce sync.Once
	parPkg  *Package
	parErr  error
)

func parPackage(t *testing.T) *Package {
	t.Helper()
	l := testLoader(t)
	parOnce.Do(func() {
		parPkg, parErr = l.LoadDir(filepath.Join(l.Root, "internal", "par"))
	})
	if parErr != nil {
		t.Fatalf("loading internal/par: %v", parErr)
	}
	return parPkg
}

// runRule applies one analyzer to one fixture and renders the diagnostics.
// The real internal/par rides along in the Program (it is finding-free, so
// it contributes summaries, never diagnostics).
func runRule(t *testing.T, a *Analyzer, pkg *Package) []string {
	t.Helper()
	return runRuleOn(t, a, pkg, parPackage(t))
}

// runRuleOn applies one analyzer across several packages at once, so tests
// can exercise cross-package transitive facts (an in-memory fixture calling
// into the real on-disk internal/graph, say). Diagnostics are concatenated
// in the packages' order.
func runRuleOn(t *testing.T, a *Analyzer, pkgs ...*Package) []string {
	t.Helper()
	var out []string
	for _, d := range Run(pkgs, []*Analyzer{a}) {
		out = append(out, d.String())
	}
	return out
}

// loadRealDir loads one of the module's real on-disk packages (path relative
// to the module root, e.g. "internal/graph").
func loadRealDir(t *testing.T, rel string) *Package {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(rel)))
	if err != nil {
		t.Fatalf("loading %s: %v", rel, err)
	}
	return pkg
}

// ruleCase is one table entry: a fixture and the diagnostics it must (or
// must not) produce.
type ruleCase struct {
	name  string
	path  string            // fixture import path
	files map[string]string // file name -> source
	want  []string          // substrings that must each match some diagnostic
}

// checkRule runs the analyzer over a table of fixtures.
func checkRule(t *testing.T, a *Analyzer, cases []ruleCase) {
	t.Helper()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runRule(t, a, loadFixture(t, tc.path, tc.files))
			if len(got) != len(tc.want) {
				t.Fatalf("got %d diagnostics, want %d:\ngot:  %v\nwant: %v", len(got), len(tc.want), got, tc.want)
			}
			for i, want := range tc.want {
				if !strings.Contains(got[i], want) {
					t.Errorf("diagnostic %d = %q, want substring %q", i, got[i], want)
				}
			}
		})
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// indexWidthPackages are the GraphBLAS-side packages whose indices the GAP
// spec (and the package doc of internal/grb) mandates to be 64-bit:
// GraphBLAS "must use 64-bit integers" because it is designed for 2^60-node
// graphs, and the paper charges that width to its timings. A 32-bit index
// sneaking in would quietly change the cost model being reproduced — and
// overflow on production-scale graphs.
var indexWidthPackages = map[string]bool{
	"grb":     true,
	"lagraph": true,
}

// IndexWidth flags 32-bit integers used as indices in internal/grb and
// internal/lagraph: any slice/array/map index expression whose index operand
// is typed int32 or uint32 (int32 *values* — edge weights, distances — are
// fine; it is indices that must be grb.Index). Test files are exempt.
var IndexWidth = &Analyzer{
	Name: "index-width",
	Doc:  "grb/lagraph indices must be 64-bit (grb.Index), never int32/uint32",
	Run:  runIndexWidth,
}

func runIndexWidth(pass *Pass) {
	pkg := pass.Pkg
	if !indexWidthPackages[lastSegment(pkg.Path)] {
		return
	}
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			idx, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[idx.Index]
			if !ok || tv.Type == nil || !tv.IsValue() {
				// A non-value index operand means this IndexExpr is really a
				// generic instantiation like Vector[int32] — a type argument,
				// not an index.
				return true
			}
			basic, ok := tv.Type.Underlying().(*types.Basic)
			if !ok {
				return true // generic instantiation, map with non-int key, ...
			}
			if basic.Kind() == types.Int32 || basic.Kind() == types.Uint32 {
				pass.Reportf(idx.Index.Pos(), "32-bit value of type %s used as an index: the GAP spec requires 64-bit indices here (use grb.Index)", tv.Type)
			}
			return true
		})
	}
}

package analysis

import "testing"

func TestIndexWidth(t *testing.T) {
	checkRule(t, IndexWidth, []ruleCase{
		{
			name: "int32 loop variable used as index is flagged",
			path: "gapbench/internal/lagraph",
			files: map[string]string{"bad.go": `package lagraph

func Degrees(n int32) []float64 {
	out := make([]float64, n)
	for u := int32(0); u < n; u++ {
		out[u] = 1
	}
	return out
}
`},
			want: []string{"bad.go:6: [index-width] 32-bit value of type int32 used as an index"},
		},
		{
			name: "named 32-bit type used as index is flagged",
			path: "gapbench/internal/grb",
			files: map[string]string{"bad.go": `package grb

type smallIndex uint32

func Pick(xs []int64, i smallIndex) int64 {
	return xs[i]
}
`},
			want: []string{"32-bit value of type gapbench/internal/grb.smallIndex used as an index"},
		},
		{
			name: "64-bit indices and int32 values are clean",
			path: "gapbench/internal/grb",
			files: map[string]string{"ok.go": `package grb

type Index = int64

func Scale(weights []int32, idx []Index) {
	for _, i := range idx {
		weights[i] *= 2
	}
}

func Weight(w int32) int32 { return w + 1 }
`},
			want: nil,
		},
		{
			name: "other packages may use 32-bit node ids",
			path: "gapbench/internal/gap",
			files: map[string]string{"ok.go": `package gap

func Parents(n int32) []int32 {
	out := make([]int32, n)
	for u := int32(0); u < n; u++ {
		out[u] = -1
	}
	return out
}
`},
			want: nil,
		},
		{
			name: "generic instantiation with int32 type argument is not an index",
			path: "gapbench/internal/grb",
			files: map[string]string{"ok.go": `package grb

type Vector[T any] struct{ data []T }

func NewVector[T any](n int64) *Vector[T] {
	return &Vector[T]{data: make([]T, n)}
}

func Build(n int64) *Vector[int32] {
	return NewVector[int32](n)
}
`},
			want: nil,
		},
		{
			name: "test files are exempt",
			path: "gapbench/internal/grb",
			files: map[string]string{
				"ok.go": `package grb
`,
				"x_test.go": `package grb

func pick(xs []int64, i int32) int64 { return xs[i] }
`,
			},
			want: nil,
		},
	})
}

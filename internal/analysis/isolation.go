package analysis

import (
	"strconv"
	"strings"
)

// frameworkSegments names the six framework reproduction packages. The
// paper's comparison is only valid while these stay independent: a shared
// trick leaking from one framework into another would silently change the
// abstraction being measured.
var frameworkSegments = map[string]bool{
	"gap":     true,
	"galois":  true,
	"graphit": true,
	"gkc":     true,
	"lagraph": true,
	"nwgraph": true,
}

// isolationAllowed is the substrate a framework package may build on:
// the shared graph representation, the parallel-for substrate, the kernel
// interface/option types, the GraphBLAS layer (for lagraph), the shared
// frontier library and schedule tuner, and core.
var isolationAllowed = map[string]bool{
	"graph":    true,
	"par":      true,
	"kernel":   true,
	"grb":      true,
	"core":     true,
	"frontier": true,
	"tune":     true,
}

// isolationAllowedTest extends the allowance for test files, which drive the
// shared conformance suite and oracles.
var isolationAllowedTest = map[string]bool{
	"generate": true,
	"verify":   true,
	"testutil": true,
	"ldbc":     true,
}

// FrameworkIsolation enforces the paper's validity argument at the import
// graph: no framework package may import another framework package, and
// framework code may only build on the shared substrate packages.
var FrameworkIsolation = &Analyzer{
	Name: "framework-isolation",
	Doc:  "framework packages must not import each other; only the shared substrate (graph, par, kernel, grb, frontier, tune, core) is allowed",
	Run:  runFrameworkIsolation,
}

func runFrameworkIsolation(pass *Pass) {
	pkg := pass.Pkg
	own := lastSegment(pkg.Path)
	if !frameworkSegments[own] {
		return
	}
	prefix := pkg.Module + "/"
	for _, f := range pkg.Files {
		for _, imp := range f.AST.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !strings.HasPrefix(path, prefix) {
				continue // external / stdlib imports are not this rule's business
			}
			seg := lastSegment(path)
			switch {
			case seg == own:
				// A package's external test files importing the package
				// itself is the normal Go testing layout.
			case frameworkSegments[seg]:
				pass.Reportf(imp.Pos(), "framework package %s imports framework package %s: frameworks must stay isolated so the comparison measures abstractions, not shared code", own, seg)
			case isolationAllowed[seg]:
				// Shared substrate, fine everywhere.
			case f.Test && isolationAllowedTest[seg]:
				// Conformance-suite plumbing, fine in tests.
			default:
				pass.Reportf(imp.Pos(), "framework package %s imports %s, which is not part of the shared substrate (graph, par, kernel, grb, frontier, tune, core)", own, path)
			}
		}
	}
}

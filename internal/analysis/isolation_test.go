package analysis

import "testing"

func TestFrameworkIsolation(t *testing.T) {
	checkRule(t, FrameworkIsolation, []ruleCase{
		{
			name: "cross-framework import is flagged",
			path: "gapbench/internal/galois",
			files: map[string]string{"bad.go": `package galois

import "gapbench/internal/gap"

var _ = gap.New
`},
			want: []string{"bad.go:3: [framework-isolation] framework package galois imports framework package gap"},
		},
		{
			name: "substrate imports are clean",
			path: "gapbench/internal/galois",
			files: map[string]string{"ok.go": `package galois

import (
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

func use(g *graph.Graph, o kernel.Options) { par.For(0, 1, func(int) {}) }
`},
			want: nil,
		},
		{
			name: "non-substrate internal import is flagged",
			path: "gapbench/internal/gkc",
			files: map[string]string{"bad.go": `package gkc

import "gapbench/internal/report"

var _ = report.Render
`},
			want: []string{"[framework-isolation] framework package gkc imports gapbench/internal/report, which is not part of the shared substrate"},
		},
		{
			name: "test files may use the conformance suite",
			path: "gapbench/internal/gkc",
			files: map[string]string{
				"ok.go": `package gkc
`,
				"ok_test.go": `package gkc_test

import (
	"gapbench/internal/gkc"
	"gapbench/internal/testutil"
	"gapbench/internal/verify"
)

var (
	_ = gkc.New
	_ = testutil.Sources
	_ = verify.CheckTC
)
`,
			},
			want: nil,
		},
		{
			name: "conformance suite imports are still illegal outside tests",
			path: "gapbench/internal/nwgraph",
			files: map[string]string{"bad.go": `package nwgraph

import "gapbench/internal/verify"

var _ = verify.CheckTC
`},
			want: []string{"framework package nwgraph imports gapbench/internal/verify"},
		},
		{
			name: "non-framework packages are out of scope",
			path: "gapbench/internal/core",
			files: map[string]string{"ok.go": `package core

import (
	"gapbench/internal/galois"
	"gapbench/internal/gap"
)

var (
	_ = gap.New
	_ = galois.New
)
`},
			want: nil,
		},
	})
}

package analysis

import (
	"go/ast"
	"go/types"
)

// LeaseReturn flags machine-pool leases that can leak: a call to an
// `Acquire` method returning a lease — a pointer to a named type carrying
// both `Release` and `Abandon` methods, the serve.Pool shape — must settle
// that lease on every path out of the acquiring function, panic unwinds
// included. The daemon's pool (internal/serve) sizes admission control by
// its lease count; one leaked lease silently shrinks capacity forever, and
// under -tags=servecheck the drain-time leak assertion turns it into a
// crash long after the leak site is gone from any stack.
//
// Accepted settlement shapes:
//
//   - a deferred settle: `defer lease.Release()`, or a deferred closure
//     that reaches lease.Release() or lease.Abandon() on some branch (the
//     abandoned-flag pattern in serve's attempt());
//   - an escape: the lease is returned, passed to another call, stored, or
//     sent — ownership moved, the receiver settles it.
//
// A lease settled only by a plain (non-deferred) call is still reported:
// the straight-line path returns the machine, but a kernel panic between
// Acquire and Release unwinds past the settle and leaks it — that is
// precisely the path the serving sandbox exists to survive.
var LeaseReturn = &Analyzer{
	Name: "lease-return",
	Doc:  "every pool Acquire must settle its lease (Release or Abandon) on all paths, panics included",
	Run:  runLeaseReturn,
}

func runLeaseReturn(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		if f.Test {
			continue // tests leak leases on purpose to exercise the checker
		}
		parents := buildParents(f.AST)
		var stack []ast.Node
		ast.Inspect(f.AST, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isLeaseAcquire(pkg, call) {
				checkAcquireSite(pass, parents, stack, call)
			}
			stack = append(stack, n)
			return true
		})
	}
}

// isLeaseAcquire reports whether call invokes a method named Acquire whose
// first result is a pointer to a named type with both Release and Abandon
// methods — the lease-pool shape this rule guards.
func isLeaseAcquire(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Acquire" {
		return false
	}
	fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || sig.Results().Len() == 0 {
		return false
	}
	ptr, ok := sig.Results().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	return hasNamedMethod(named, "Release") && hasNamedMethod(named, "Abandon")
}

// hasNamedMethod reports whether *T has a method of the given name.
func hasNamedMethod(named *types.Named, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
	_, ok := obj.(*types.Func)
	return ok
}

// checkAcquireSite classifies one Acquire call's lease: bound to a variable
// that is settled/escapes, or discarded outright.
func checkAcquireSite(pass *Pass, parents map[ast.Node]ast.Node, stack []ast.Node, call *ast.CallExpr) {
	scope := enclosingFuncBody(stack)
	if scope == nil {
		return // package-level initializer; out of scope for this rule
	}
	switch parent := parents[call].(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "Acquire's lease is discarded: the machine can never be returned to the pool — bind it and settle with Release or Abandon")
	case *ast.AssignStmt:
		obj := leaseTarget(pass.Pkg, parent, call)
		if obj == nil {
			pass.Reportf(call.Pos(), "Acquire's lease is assigned to _: the machine can never be returned to the pool — bind it and settle with Release or Abandon")
			return
		}
		reportLeaseUse(pass, parents, scope, call, obj)
	case *ast.ValueSpec:
		for i, v := range parent.Values {
			if v != call || i >= len(parent.Names) {
				continue
			}
			if parent.Names[i].Name == "_" {
				pass.Reportf(call.Pos(), "Acquire's lease is assigned to _: the machine can never be returned to the pool — bind it and settle with Release or Abandon")
				continue
			}
			if obj := pass.Pkg.Info.Defs[parent.Names[i]]; obj != nil {
				reportLeaseUse(pass, parents, scope, call, obj)
			}
		}
	}
	// Any other context — `return p.Acquire(tok)`, a call argument — hands
	// the lease (and the settlement duty) straight to someone else.
}

// leaseTarget returns the variable bound to the Acquire call's lease result,
// or nil when it is blank or untracked. Handles both the multi-assign form
// `lease, err := p.Acquire(tok)` (call is the whole Rhs) and 1:1 forms.
func leaseTarget(pkg *Package, assign *ast.AssignStmt, call *ast.CallExpr) types.Object {
	var lhs ast.Expr
	if len(assign.Rhs) == 1 && assign.Rhs[0] == call && len(assign.Lhs) >= 1 {
		lhs = assign.Lhs[0]
	} else {
		for i, rhs := range assign.Rhs {
			if rhs == call && i < len(assign.Lhs) {
				lhs = assign.Lhs[i]
			}
		}
	}
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id] // assignment onto an existing variable
}

// reportLeaseUse scans the enclosing function body for what happens to the
// lease and reports the two leak shapes: never settled, or settled only on
// the non-panic path.
func reportLeaseUse(pass *Pass, parents map[ast.Node]ast.Node, scope ast.Node, call *ast.CallExpr, obj types.Object) {
	var deferredSettle, plainSettle, escapes bool
	pkg := pass.Pkg
	ast.Inspect(scope, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pkg.Info.Uses[id] != obj {
			return true
		}
		switch parent := parents[id].(type) {
		case *ast.SelectorExpr:
			if parent.X != id {
				return true
			}
			if grand, ok2 := parents[parent].(*ast.CallExpr); ok2 && grand.Fun == parent {
				switch parent.Sel.Name {
				case "Release", "Abandon":
					if leaseUnderDefer(parents, scope, grand) {
						deferredSettle = true
					} else {
						plainSettle = true
					}
				}
				return true // a method call on the lease is a use, not an escape
			}
			// Method value (lease.Release as a value): flows somewhere —
			// treat as handed off.
			escapes = true
		case *ast.BinaryExpr:
			// nil checks and comparisons do not move the lease
		case *ast.AssignStmt:
			for _, l := range parent.Lhs {
				if l == ast.Expr(id) {
					return true // reassigning the variable, not using the lease
				}
			}
			if allBlank(parent.Lhs) {
				return true // `_ = lease` silences a use; it moves nothing
			}
			escapes = true // lease copied into another binding or field
		default:
			// Call argument, return value, composite literal, channel send,
			// &lease, index: the lease moves out of this function's hands.
			escapes = true
		}
		return true
	})
	switch {
	case deferredSettle || escapes:
		// Settled on all paths, or ownership moved.
	case plainSettle:
		pass.Reportf(call.Pos(), "lease is settled only on the straight-line path: a panic between Acquire and the Release/Abandon call leaks the machine — settle in a defer (see serve's abandoned-flag pattern), or justify with //gapvet:ignore lease-return")
	default:
		pass.Reportf(call.Pos(), "lease from Acquire is never settled: call Release or Abandon on every path out of %s (a defer covers panic unwinds too), or justify with //gapvet:ignore lease-return", describeScope(scope, parents))
	}
}

// allBlank reports whether every assignment target is the blank identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, l := range lhs {
		if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal on the ancestor stack — the region whose exits must settle the
// lease (a defer in an outer function does not cover an inner literal).
func enclosingFuncBody(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// leaseUnderDefer reports whether node sits beneath a DeferStmt within scope —
// either as the deferred call itself or inside a deferred closure's body.
func leaseUnderDefer(parents map[ast.Node]ast.Node, scope, node ast.Node) bool {
	for n := node; n != nil && n != scope; n = parents[n] {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// describeScope names the function owning the scope body, for messages.
func describeScope(scope ast.Node, parents map[ast.Node]ast.Node) string {
	if fd, ok := parents[scope].(*ast.FuncDecl); ok {
		return fd.Name.Name
	}
	return "the enclosing function"
}

package analysis

import "testing"

// leasePool is the miniature lease-pool declaration shared by the fixtures:
// the Acquire signature the rule matches (method named Acquire, first result
// a pointer to a named type with Release and Abandon methods).
const leasePool = `
type Machine struct{ closed bool }

type Lease struct{ m *Machine }

func (l *Lease) Release() {}
func (l *Lease) Abandon() {}
func (l *Lease) Machine() *Machine { return l.m }

type Pool struct{}

func (p *Pool) Acquire(tok any) (*Lease, error) { return &Lease{}, nil }
`

func TestLeaseReturn(t *testing.T) {
	checkRule(t, LeaseReturn, []ruleCase{
		{
			name: "never settled",
			path: "fixture/leak1",
			files: map[string]string{"pool.go": `package leak1
` + leasePool + `
func Leak(p *Pool) error {
	lease, err := p.Acquire(nil)
	if err != nil {
		return err
	}
	_ = lease.Machine()
	return nil
}
`},
			want: []string{"lease from Acquire is never settled"},
		},
		{
			name: "plain settle leaks on panic path",
			path: "fixture/leak2",
			files: map[string]string{"pool.go": `package leak2
` + leasePool + `
func run() {}

func StraightLine(p *Pool) error {
	lease, err := p.Acquire(nil)
	if err != nil {
		return err
	}
	run()
	lease.Release()
	return nil
}
`},
			want: []string{"settled only on the straight-line path"},
		},
		{
			name: "discarded lease",
			path: "fixture/leak3",
			files: map[string]string{"pool.go": `package leak3
` + leasePool + `
func Discard(p *Pool) {
	p.Acquire(nil)
}

func Blank(p *Pool) {
	_, _ = p.Acquire(nil)
}
`},
			want: []string{
				"lease is discarded",
				"lease is assigned to _",
			},
		},
		{
			name: "deferred direct settle is clean",
			path: "fixture/ok1",
			files: map[string]string{"pool.go": `package ok1
` + leasePool + `
func run() {}

func Deferred(p *Pool) error {
	lease, err := p.Acquire(nil)
	if err != nil {
		return err
	}
	defer lease.Release()
	run()
	return nil
}
`},
			want: nil,
		},
		{
			name: "abandoned-flag defer closure is clean",
			path: "fixture/ok2",
			files: map[string]string{"pool.go": `package ok2
` + leasePool + `
func run() {}

func Sandbox(p *Pool) error {
	lease, err := p.Acquire(nil)
	if err != nil {
		return err
	}
	abandoned := false
	defer func() {
		if abandoned {
			lease.Abandon()
		} else {
			lease.Release()
		}
	}()
	run()
	abandoned = true
	return nil
}
`},
			want: nil,
		},
		{
			name: "escaping lease is a handoff",
			path: "fixture/ok3",
			files: map[string]string{"pool.go": `package ok3
` + leasePool + `
func settle(l *Lease) { l.Release() }

func HandOff(p *Pool) error {
	lease, err := p.Acquire(nil)
	if err != nil {
		return err
	}
	settle(lease)
	return nil
}

func Forward(p *Pool) (*Lease, error) {
	lease, err := p.Acquire(nil)
	return lease, err
}

func Direct(p *Pool) (*Lease, error) {
	return p.Acquire(nil)
}

type holder struct{ l *Lease }

func Stash(p *Pool, h *holder) error {
	lease, err := p.Acquire(nil)
	if err != nil {
		return err
	}
	h.l = lease
	return nil
}
`},
			want: nil,
		},
		{
			name: "defer in outer func does not cover inner literal",
			path: "fixture/leak4",
			files: map[string]string{"pool.go": `package leak4
` + leasePool + `
func Outer(p *Pool) func() {
	return func() {
		lease, err := p.Acquire(nil)
		if err != nil {
			return
		}
		_ = lease
	}
}
`},
			want: []string{"lease from Acquire is never settled"},
		},
		{
			name: "unrelated Acquire signature is ignored",
			path: "fixture/ok4",
			files: map[string]string{"pool.go": `package ok4

type Token struct{}

func (t *Token) Close() {}

type Bucket struct{}

// Acquire here returns a type with no Release/Abandon pair: not a lease.
func (b *Bucket) Acquire() *Token { return &Token{} }

func Use(b *Bucket) {
	b.Acquire()
}
`},
			want: nil,
		},
	})
}

// TestLeaseReturnAcceptsServe locks the rule against the real serving layer:
// internal/serve's attempt() settles through the abandoned-flag deferred
// closure, and the pool's own internals must not fire either.
func TestLeaseReturnAcceptsServe(t *testing.T) {
	got := runRuleOn(t, LeaseReturn, loadRealDir(t, "internal/serve"))
	if len(got) != 0 {
		t.Errorf("lease-return fired on internal/serve:\n%v", got)
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"slices"
	"strings"
)

// File is one parsed source file of a loaded package.
type File struct {
	AST  *ast.File
	Name string // filename as shown in diagnostics (relative to module root)
	Test bool   // true for *_test.go files
}

// Package is one type-checked package ready for analysis. Test files of the
// package (both in-package and external "_test" packages) are loaded as part
// of the same logical Package so analyzers can reason about them, with
// File.Test distinguishing them.
type Package struct {
	Path   string // import path, e.g. "gapbench/internal/gap"
	Module string // module path, e.g. "gapbench"
	Dir    string // absolute directory ("" for in-memory fixtures)
	Fset   *token.FileSet
	Files  []*File
	Types  *types.Package
	Info   *types.Info
	// TypeErrors collects type-checking problems. The loader is deliberately
	// tolerant: gapvet is not a compiler (go build gates compilation), and
	// test fixtures are allowed to be broken in interesting ways.
	TypeErrors []error
}

// Loader loads and type-checks packages of one module using only the
// standard library: module-internal import paths are mapped onto the module
// tree and type-checked from source; everything else (the standard library)
// is delegated to go/importer's "source" importer.
type Loader struct {
	Root   string // absolute module root
	Module string // module path from go.mod
	Fset   *token.FileSet

	std     types.Importer
	cache   map[string]*types.Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at the directory containing go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    abs,
		Module:  mod,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// FindModuleRoot walks up from dir (or the working directory when dir is
// empty) to the nearest directory containing a go.mod.
func FindModuleRoot(dir string) (string, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = wd
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// Import implements types.Importer. Module-internal paths are loaded from
// the module tree (non-test files only, mirroring what a real build would
// import); all other paths go to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		return l.importInternal(path)
	}
	return l.std.Import(path)
}

// importInternal type-checks a module-internal package for use as an import.
func (l *Loader) importInternal(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.Root
	if rel := strings.TrimPrefix(path, l.Module); rel != "" {
		dir = filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	}
	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.AST
	}
	pkg, err := conf.Check(path, l.Fset, asts, nil)
	if err != nil && pkg == nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// parseDir parses the .go files of one directory (sorted for determinism),
// optionally including test files.
func (l *Loader) parseDir(dir string, includeTests bool) ([]*File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	slices.Sort(names)
	var files []*File
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		// Parse under the root-relative display name so diagnostics are
		// stable regardless of the working directory.
		f, err := parser.ParseFile(l.Fset, l.display(full), src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, &File{AST: f, Name: l.display(full), Test: strings.HasSuffix(name, "_test.go")})
	}
	return files, nil
}

// display renders a path relative to the module root with forward slashes,
// the stable form used in diagnostics.
func (l *Loader) display(path string) string {
	if rel, err := filepath.Rel(l.Root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

// pathFor derives the import path of a directory inside the module.
func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// LoadDir loads one directory as a Package: its primary package plus any
// external "_test" package files, all under the directory's import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(abs, true)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	return l.check(l.pathFor(abs), abs, files)
}

// LoadSource loads an in-memory package fixture: a map of file name to Go
// source, type-checked under the given import path. Fixture files may import
// real packages of the module (resolved against the loader's root).
func (l *Loader) LoadSource(importPath string, sources map[string]string) (*Package, error) {
	var names []string
	for name := range sources {
		names = append(names, name)
	}
	slices.Sort(names)
	var files []*File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, sources[name], parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, &File{AST: f, Name: name, Test: strings.HasSuffix(name, "_test.go")})
	}
	return l.check(importPath, "", files)
}

// check type-checks a group of files as one logical Package. External test
// files (package foo_test) are type-checked as a second unit so the mixed
// group still resolves, but analyzers see a single Package.
func (l *Loader) check(importPath, dir string, files []*File) (*Package, error) {
	pkg := &Package{
		Path:   importPath,
		Module: l.Module,
		Dir:    dir,
		Fset:   l.Fset,
		Files:  files,
		Info: &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Defs:  map[*ast.Ident]types.Object{},
			Uses:  map[*ast.Ident]types.Object{},
		},
	}
	// Split in-package files (package foo, including foo's in-package tests)
	// from external test files (package foo_test).
	var primary, external []*ast.File
	for _, f := range files {
		if strings.HasSuffix(f.AST.Name.Name, "_test") {
			external = append(external, f.AST)
		} else {
			primary = append(primary, f.AST)
		}
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	if len(primary) > 0 {
		tpkg, _ := conf.Check(importPath, l.Fset, primary, pkg.Info)
		pkg.Types = tpkg
	}
	if len(external) > 0 {
		// The external test package imports the primary one by path; make the
		// just-checked primary visible to it (test files of the same dir see
		// the version that includes in-package test files).
		if pkg.Types != nil {
			l.cache[importPath] = pkg.Types
		}
		conf.Check(importPath+"_test", l.Fset, external, pkg.Info)
	}
	return pkg, nil
}

// Load expands the given patterns ("./...", directories, or module import
// paths) and loads every matching package. It skips testdata, hidden, and
// vendor directories, mirroring the go tool.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := walkGoDirs(l.Root, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			base = strings.TrimPrefix(base, l.Module+"/")
			if !filepath.IsAbs(base) {
				base = filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(base, "./")))
			}
			if err := walkGoDirs(base, add); err != nil {
				return nil, err
			}
		default:
			dir := strings.TrimPrefix(pat, l.Module+"/")
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(dir, "./")))
			}
			add(dir)
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", dir, err)
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// walkGoDirs calls add for every directory under root that contains .go
// files, skipping testdata, vendor, and hidden directories.
func walkGoDirs(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			add(filepath.Dir(path))
		}
		return nil
	})
}

package analysis

import (
	"cmp"
	"go/token"
	"slices"
)

// LockOrder builds a mutex acquisition graph from the function summaries —
// an edge A -> B means "some execution path acquires B while holding A",
// either directly inside one function or by calling (transitively) into a
// function that acquires B — and reports every pair of locks acquired in
// both orders. Two goroutines interleaving the two orders deadlock, the
// classic ABBA hang; Pollard & Norris (arXiv:1704.02003) trace several
// cross-framework discrepancies to exactly this class of latent concurrency
// bug, which no amount of benchmarking catches until it fires.
//
// Lock identity uses the engine's VarKey scheme, so two *objects* of the
// same field/name+type unify; a deliberate lock hierarchy over same-typed
// locks (parent-then-child) should suppress with //gapvet:ignore and a
// comment naming the ordering rule. Re-acquiring the *same* key while held
// is not reported: with object-merged keys that is usually two different
// mutexes of the same type, not a self-deadlock.
var LockOrder = &Analyzer{
	Name:       "lock-order",
	Doc:        "mutexes must be acquired in a consistent global order (ABBA deadlock detection)",
	NeedsFacts: true,
	Run:        runLockOrder,
}

func runLockOrder(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	edges := prog.AllLockEdges()
	if len(edges) == 0 {
		return
	}
	// First edge per ordered pair.
	type pair struct{ from, to VarKey }
	first := map[pair]LockEdge{}
	for _, e := range edges {
		p := pair{e.From, e.To}
		if _, ok := first[p]; !ok {
			first[p] = e
		}
	}
	// Report each two-lock inversion once, anchored at the earlier edge (so
	// exactly one package reports it and //gapvet:ignore has a stable home).
	var pairs []pair
	for p := range first {
		pairs = append(pairs, p)
	}
	slices.SortFunc(pairs, func(a, b pair) int {
		if c := cmp.Compare(a.from, b.from); c != 0 {
			return c
		}
		return cmp.Compare(a.to, b.to)
	})
	seen := map[pair]bool{}
	for _, p := range pairs {
		rev := pair{p.to, p.from}
		back, ok := first[rev]
		if !ok || seen[p] || seen[rev] {
			continue
		}
		seen[p], seen[rev] = true, true
		fwd := first[p]
		anchor, other := fwd, back
		if other.Pos < anchor.Pos {
			anchor, other = other, anchor
		}
		if !pass.ownsPos(anchor.Pos) {
			continue
		}
		op := pass.Pkg.Fset.Position(other.Pos)
		pass.Reportf(anchor.Pos,
			"lock ordering inversion: %q is acquired while holding %q here, but %s:%d acquires them in the opposite order — two goroutines interleaving these paths deadlock",
			displayLock(anchor.ToDisplay, anchor.To), displayLock(anchor.FromDisplay, anchor.From), op.Filename, op.Line)
	}
}

// displayLock falls back to the raw key when no display name was recorded.
func displayLock(display string, key VarKey) string {
	if display != "" {
		return display
	}
	return string(key)
}

// ownsPos reports whether the position belongs to one of this package's
// files, so module-wide findings are reported exactly once.
func (p *Pass) ownsPos(pos token.Pos) bool {
	name := p.Pkg.Fset.Position(pos).Filename
	for _, f := range p.Pkg.Files {
		if f.Name == name {
			return true
		}
	}
	return false
}

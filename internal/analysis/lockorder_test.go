package analysis

import (
	"strings"
	"testing"
)

// TestLockOrder covers the intra-function ABBA inversion, the consistent-
// order negative, and the release-before-acquire negative.
func TestLockOrder(t *testing.T) {
	checkRule(t, LockOrder, []ruleCase{
		{
			name: "two functions acquire a pair in opposite orders",
			path: "gapbench/internal/demo",
			files: map[string]string{"bad.go": `package demo

import "sync"

var muA, muB sync.Mutex

func Forward() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func Backward() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}
`},
			want: []string{"lock ordering inversion"},
		},
		{
			name: "consistent global order is fine",
			path: "gapbench/internal/demo",
			files: map[string]string{"ok.go": `package demo

import "sync"

var muA, muB sync.Mutex

func One() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func Two() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}
`},
			want: nil,
		},
		{
			name: "releasing before the second acquire breaks the edge",
			path: "gapbench/internal/demo",
			files: map[string]string{"ok.go": `package demo

import "sync"

var muA, muB sync.Mutex

func Forward() {
	muA.Lock()
	muA.Unlock()
	muB.Lock()
	muB.Unlock()
}

func Backward() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}
`},
			want: nil,
		},
		{
			name: "deferred unlock keeps the lock held to function exit",
			path: "gapbench/internal/demo",
			files: map[string]string{"bad.go": `package demo

import "sync"

var muA, muB sync.Mutex

func Forward() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock()
	muB.Unlock()
}

func Backward() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock()
	muA.Unlock()
}
`},
			want: []string{"lock ordering inversion"},
		},
	})
}

// TestLockOrderCrossFunction seeds the interprocedural ABBA: Forward holds A
// and reaches B only through a helper, so the inversion is visible only in
// the held-set x transitive-locks product.
func TestLockOrderCrossFunction(t *testing.T) {
	src := map[string]string{"bad.go": `package demo

import "sync"

var muA, muB sync.Mutex

func lockB() {
	muB.Lock()
	muB.Unlock()
}

func Forward() {
	muA.Lock()
	lockB()
	muA.Unlock()
}

func Backward() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}
`}
	got := runRule(t, LockOrder, loadFixture(t, "gapbench/internal/demo", src))
	if len(got) != 1 {
		t.Fatalf("want exactly one inversion report, got %v", got)
	}
	if !strings.Contains(got[0], "lock ordering inversion") {
		t.Errorf("diagnostic = %q, want an inversion report", got[0])
	}
	// Anchored at the earlier edge: Forward's call to lockB (line 14).
	if !strings.Contains(got[0], "bad.go:14:") {
		t.Errorf("diagnostic = %q, want it anchored at the Forward path (bad.go:14)", got[0])
	}
}

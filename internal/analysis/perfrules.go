// The compiler-assisted perf rules: joins between harvested compiler
// diagnostics (compilerfacts.go) and the dataflow Program. A compiler fact
// alone is noise — the Go compiler reports hundreds of escapes and retained
// bounds checks per build, almost all of them in setup code where they cost
// nothing. A dataflow fact alone is blind — gapvet can prove a loop runs on
// the parallel hot path of a timed region but has no idea what the compiler
// generated for it. The join is the signal: a diagnostic *at a position*
// that the Program proves lies on a timed region's parallel hot path.
//
// All four rules require both NeedsFacts and NeedsCompilerFacts, and all
// four run only under `gapvet -perf` (the harvest costs a compiler
// invocation; see cmd/gapvet).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// perfHotPackage reports whether a package's hot loops are perf-lint
// territory: the timed kernel packages plus the par substrate (see
// timedpurity.go), and the gapvet fixture package "hotpath".
func perfHotPackage(path string) bool {
	seg := lastSegment(path)
	return timedPurityPackages[seg] || seg == "hotpath"
}

// inlineMissSlack bounds how far over budget a callee may be and still be
// reported: within slack× the budget a split fast path is a realistic fix;
// beyond it the function is structurally large and inlining is not the
// answer, so flagging every call site would only teach people to ignore the
// rule.
const inlineMissSlack = 2

// EscapeInKernel: a value escapes to heap inside a loop on the parallel hot
// path of a timed kernel package. Per-iteration heap traffic inside a timed
// region compounds over the paper's sustained trials — the allocation
// belongs in setup or per-worker state. Variable escapes caused by closure
// capture are reported by closure-capture-hot instead, so the two rules
// never double-fire on one position.
var EscapeInKernel = &Analyzer{
	Name:               "escape-in-kernel",
	Doc:                "no heap escapes inside parallel hot loops of timed kernel packages",
	NeedsFacts:         true,
	NeedsCompilerFacts: true,
	Run:                runEscapeInKernel,
}

// ClosureCaptureHot: a variable is moved to heap because a closure handed to
// a par spawner (or a goroutine) captures it by reference, and the enclosing
// function is called from a hot loop of a timed package. Every call then
// re-allocates the captured variable's cell. The fix is to allocate once in
// setup and pass a pointer in, or to capture a per-round copy.
var ClosureCaptureHot = &Analyzer{
	Name:               "closure-capture-hot",
	Doc:                "par closures must not capture variables whose heap cells are re-allocated per hot call",
	NeedsFacts:         true,
	NeedsCompilerFacts: true,
	Run:                runClosureCaptureHot,
}

// BCEMiss: the SSA pass retained a bounds check in an innermost loop on the
// parallel hot path, and the loop's own shape proves the check eliminable —
// the loop ranges over the indexed expression, or its condition compares the
// index against len() of it. The check survives only because the compiler
// re-loads the slice (typically a struct field) on every iteration; hoisting
// it into a local, or asserting `_ = s[len(s)-1]` before the loop, removes a
// branch from the hottest code in the repository. Checks the rule cannot
// prove eliminable are not reported.
var BCEMiss = &Analyzer{
	Name:               "bce-miss",
	Doc:                "no provably-eliminable bounds checks in innermost parallel kernel loops",
	NeedsFacts:         true,
	NeedsCompilerFacts: true,
	Run:                runBCEMiss,
}

// InlineMiss: a call in an innermost hot loop targets a function the
// compiler refused to inline for cost, and the overrun is small enough
// (within inlineMissSlack× the budget) that splitting a fast path under the
// budget is realistic. Call overhead in an innermost kernel loop is pure
// per-edge tax; the canonical fix is the fast-path/slow-path split (check
// the common case inline, call out for the rest).
var InlineMiss = &Analyzer{
	Name:               "inline-miss",
	Doc:                "calls in innermost parallel kernel loops should target inlinable callees",
	NeedsFacts:         true,
	NeedsCompilerFacts: true,
	Run:                runInlineMiss,
}

// pathTo returns the chain of AST nodes enclosing pos, outermost first
// (file, ..., innermost node). Empty if pos lies outside the file.
func pathTo(f *ast.File, pos token.Pos) []ast.Node {
	var best, stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false
		}
		stack = append(stack, n)
		best = append(best[:0], stack...)
		return true
	})
	return best
}

// factPos maps a compiler fact's line:col onto the file's token stream.
// Returns NoPos when the position does not exist (stale harvest, generated
// line directives).
func factPos(pkg *Package, f *File, line, col int) token.Pos {
	tf := pkg.Fset.File(f.AST.Pos())
	if tf == nil || line < 1 || line > tf.LineCount() {
		return token.NoPos
	}
	pos := tf.LineStart(line)
	if col > 1 {
		pos += token.Pos(col - 1)
	}
	// Clamp inside the line so an overshooting column cannot leak onto the
	// next line.
	if line < tf.LineCount() {
		if next := tf.LineStart(line + 1); pos >= next {
			pos = next - 1
		}
	} else if eof := token.Pos(tf.Base() + tf.Size()); pos >= eof {
		pos = eof - 1
	}
	return pos
}

// summaryAt resolves the function summary owning a path (the innermost
// enclosing FuncDecl; closures belong to their declaring function).
func summaryAt(pass *Pass, path []ast.Node) *FuncSummary {
	for i := len(path) - 1; i >= 0; i-- {
		if fd, ok := path[i].(*ast.FuncDecl); ok {
			if obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func); obj != nil {
				return pass.Prog.Funcs[FuncID(obj.FullName())]
			}
			return nil
		}
	}
	return nil
}

// funcDeclOf returns the innermost enclosing *ast.FuncDecl on the path.
func funcDeclOf(path []ast.Node) *ast.FuncDecl {
	for i := len(path) - 1; i >= 0; i-- {
		if fd, ok := path[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// loopsIn collects the for/range statements on the path, outermost first.
func loopsIn(path []ast.Node) []ast.Node {
	var loops []ast.Node
	for _, n := range path {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		}
	}
	return loops
}

// isLeafLoop reports whether the loop contains no nested loop (including
// loops inside nested function literals — if the per-iteration work spawns
// its own loop, that inner loop is the hot one, not this).
func isLeafLoop(loop ast.Node) bool {
	leaf := true
	ast.Inspect(loop, func(n ast.Node) bool {
		if n == loop {
			return true
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			leaf = false
		}
		return leaf
	})
	return leaf
}

// onParallelHotPath reports whether code at the given path runs on worker
// goroutines of a timed region: the enclosing function is transitively
// reachable from a timed-package spawn (ConcurrentFromTimed), or the path
// itself sits inside a goroutine or a closure handed to a spawning callee.
func onParallelHotPath(pass *Pass, sum *FuncSummary, path []ast.Node) bool {
	return pass.Prog.ConcurrentFromTimed(sum.ID) || inSpawnedClosure(pass.Pkg, pass.Prog, path)
}

// fileContaining returns the package file whose span covers pos.
func fileContaining(pkg *Package, pos token.Pos) *File {
	for _, f := range pkg.Files {
		if f.AST.FileStart <= pos && pos < f.AST.FileEnd {
			return f
		}
	}
	return nil
}

func runEscapeInKernel(pass *Pass) {
	if pass.CFacts == nil || pass.Prog == nil || !perfHotPackage(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		facts := pass.CFacts.AtFile(f.Name)
		moved := map[[2]int]bool{}
		for _, fact := range facts {
			if fact.Kind == FactMovedToHeap {
				moved[[2]int{fact.Line, fact.Col}] = true
			}
		}
		for _, fact := range facts {
			if fact.Kind != FactEscape || moved[[2]int{fact.Line, fact.Col}] {
				continue // closure-capture-hot territory
			}
			pos := factPos(pass.Pkg, f, fact.Line, fact.Col)
			if pos == token.NoPos {
				continue
			}
			path := pathTo(f.AST, pos)
			sum := summaryAt(pass, path)
			if sum == nil || len(loopsIn(path)) == 0 {
				continue
			}
			if !onParallelHotPath(pass, sum, path) {
				continue
			}
			if isSpawnedLiteral(pass.Pkg, pass.Prog, path, pos) {
				// The escaping value IS the closure being spawned: the
				// region's per-worker/per-round bookkeeping, not
				// per-element churn. Every spawner pays it once.
				continue
			}
			pass.Reportf(pos, "%s escapes to heap inside a parallel hot loop of %s: hoist the allocation into setup or per-worker state, or justify with //gapvet:ignore escape-in-kernel", fact.Detail, sum.Name)
		}
	}
}

// isSpawnedLiteral reports whether the escape position denotes a function
// literal (or its go statement wrapper) that is itself being spawned — the
// Fun of a go statement or an argument to a spawning callee. Such escapes
// are the cost of starting the region, not of iterating it.
func isSpawnedLiteral(pkg *Package, prog *Program, path []ast.Node, pos token.Pos) bool {
	for i := len(path) - 1; i >= 0; i-- {
		switch t := path[i].(type) {
		case *ast.GoStmt:
			return t.Pos() == pos
		case *ast.FuncLit:
			if t.Pos() != pos || i == 0 {
				return false
			}
			call, ok := path[i-1].(*ast.CallExpr)
			if !ok {
				return false
			}
			if call.Fun == t {
				// go func(){...}(args): the literal is the call target.
				return i >= 2 && isGoStmt(path[i-2])
			}
			for _, arg := range call.Args {
				if arg == t {
					callee, ok := calleeOf(pkg, call)
					return ok && prog.SpawnsGo(callee)
				}
			}
			return false
		}
	}
	return false
}

func isGoStmt(n ast.Node) bool {
	_, ok := n.(*ast.GoStmt)
	return ok
}

func runClosureCaptureHot(pass *Pass) {
	if pass.CFacts == nil || pass.Prog == nil || !perfHotPackage(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, fact := range pass.CFacts.AtFile(f.Name) {
			if fact.Kind != FactMovedToHeap {
				continue
			}
			pos := factPos(pass.Pkg, f, fact.Line, fact.Col)
			if pos == token.NoPos {
				continue
			}
			path := pathTo(f.AST, pos)
			sum := summaryAt(pass, path)
			fd := funcDeclOf(path)
			if sum == nil || fd == nil {
				continue
			}
			obj := declaredVarAt(pass.Pkg, path, pos, fact.Detail)
			if obj == nil {
				continue
			}
			spawner, captured := capturedBySpawnedClosure(pass.Pkg, pass.Prog, fd, obj)
			if !captured {
				continue
			}
			caller, callerPos, hot := hotCallerOf(pass, sum)
			if !hot {
				continue
			}
			where := ""
			if caller != "" {
				p := pass.Pkg.Fset.Position(callerPos)
				where = fmt.Sprintf(" (called from a loop in %s at %s:%d)", caller, p.Filename, p.Line)
			}
			pass.Reportf(pos, "closure passed to %s captures %q, re-allocating its heap cell on every call of %s from a hot loop%s: allocate it once in setup and pass a pointer in, or capture a per-round copy, or justify with //gapvet:ignore closure-capture-hot", spawner, fact.Detail, sum.Name, where)
		}
	}
}

// declaredVarAt resolves the variable declared exactly at pos with the
// given name — the target of a "moved to heap" diagnostic.
func declaredVarAt(pkg *Package, path []ast.Node, pos token.Pos, name string) *types.Var {
	if len(path) > 0 {
		if id, ok := path[len(path)-1].(*ast.Ident); ok && id.Name == name && id.Pos() == pos {
			if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
				return v
			}
		}
	}
	// The column occasionally points at the declaring keyword or a
	// containing expression; fall back to scanning the enclosing function.
	fd := funcDeclOf(path)
	if fd == nil {
		return nil
	}
	var found *types.Var
	ast.Inspect(fd, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name && id.Pos() == pos {
			found, _ = pkg.Info.Defs[id].(*types.Var)
		}
		return true
	})
	return found
}

// capturedBySpawnedClosure reports whether obj is referenced inside a
// function literal that runs on worker goroutines: a literal handed to a
// spawning callee (par.For and friends) or launched by a go statement.
// Returns the spawner's display name.
func capturedBySpawnedClosure(pkg *Package, prog *Program, fd *ast.FuncDecl, obj *types.Var) (string, bool) {
	spawner, found := "", false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		switch t := n.(type) {
		case *ast.GoStmt:
			if fl, ok := t.Call.Fun.(*ast.FuncLit); ok && usesVar(pkg, fl, obj) {
				spawner, found = "go statement", true
				return false
			}
		case *ast.CallExpr:
			callee, ok := calleeOf(pkg, t)
			if !ok || !prog.SpawnsGo(callee) {
				return true
			}
			for _, arg := range t.Args {
				if fl, ok := arg.(*ast.FuncLit); ok && usesVar(pkg, fl, obj) {
					spawner, found = prog.ShortName(callee), true
					return false
				}
			}
		}
		return true
	})
	return spawner, found
}

// usesVar reports whether the node references the variable.
func usesVar(pkg *Package, n ast.Node, obj *types.Var) bool {
	used := false
	ast.Inspect(n, func(m ast.Node) bool {
		if used {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// hotCallerOf decides whether sum's per-call cost lands on a hot path: the
// function itself runs on timed-region workers, or some function of a
// perf-hot package calls it from inside a loop. Callers in the harness
// (internal/core, cmd/) do not count — a per-trial allocation is setup.
func hotCallerOf(pass *Pass, sum *FuncSummary) (caller string, pos token.Pos, hot bool) {
	if pass.Prog.ConcurrentFromTimed(sum.ID) {
		return "", token.NoPos, true
	}
	for _, id := range pass.Prog.order {
		cs := pass.Prog.Funcs[id]
		if !perfHotPackage(cs.PkgPath) {
			continue
		}
		for _, c := range cs.Calls {
			if c.Callee != sum.ID {
				continue
			}
			f := fileContaining(cs.Pkg, c.Pos)
			if f == nil || f.Test {
				continue
			}
			if len(loopsIn(pathTo(f.AST, c.Pos))) > 0 {
				return cs.Name, c.Pos, true
			}
		}
	}
	return "", token.NoPos, false
}

func runBCEMiss(pass *Pass) {
	if pass.CFacts == nil || pass.Prog == nil || !perfHotPackage(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, fact := range pass.CFacts.AtFile(f.Name) {
			if fact.Kind != FactBoundsCheck {
				continue
			}
			pos := factPos(pass.Pkg, f, fact.Line, fact.Col)
			if pos == token.NoPos {
				continue
			}
			path := pathTo(f.AST, pos)
			sum := summaryAt(pass, path)
			if sum == nil {
				continue
			}
			idx := innermostIndexExpr(path)
			if idx == nil {
				continue // an inlined callee's check; its own decl is the fix site
			}
			loops := loopsIn(path)
			if len(loops) == 0 {
				continue
			}
			loop := loops[len(loops)-1]
			if !isLeafLoop(loop) || !onParallelHotPath(pass, sum, path) {
				continue
			}
			if !loopBoundsIndex(pass.Pkg, loop, idx) {
				continue // not provably eliminable; stay quiet
			}
			base := types.ExprString(idx.X)
			hint := "hoist " + base + " into a local before the loop, or assert `_ = " + base + "[len(" + base + ")-1]` ahead of it, so the compiler can eliminate the check"
			fd := funcDeclOf(path)
			if obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func); obj != nil &&
				pass.Prog.ExprAliasesGraph(pass.Pkg, obj, fd, idx.X) {
				hint += " (the slice aliases immutable CSR memory, so its length is loop-invariant)"
			}
			pass.Reportf(pos, "bounds check on %s retained in the innermost parallel loop of %s although the loop already bounds the index: %s, or justify with //gapvet:ignore bce-miss", base, sum.Name, hint)
		}
	}
}

// innermostIndexExpr returns the innermost s[i] expression on the path, or
// nil — a bounds-check position with no IndexExpr belongs to code inlined
// from elsewhere, or to a slice expression.
func innermostIndexExpr(path []ast.Node) *ast.IndexExpr {
	for i := len(path) - 1; i >= 0; i-- {
		if idx, ok := path[i].(*ast.IndexExpr); ok {
			return idx
		}
	}
	return nil
}

// loopBoundsIndex proves the loop already constrains idx's index below
// len(idx.X): a range loop over the same expression whose key is the index
// variable, or a three-clause loop whose condition is `i < len(s)` for the
// same i and s. Under either shape the retained check is the compiler
// failing to see the bound (usually a re-loaded struct field), which the
// fix-it hint repairs.
func loopBoundsIndex(pkg *Package, loop ast.Node, idx *ast.IndexExpr) bool {
	iv, ok := ast.Unparen(idx.Index).(*ast.Ident)
	if !ok {
		return false
	}
	iobj, _ := pkg.Info.Uses[iv].(*types.Var)
	if iobj == nil {
		return false
	}
	switch l := loop.(type) {
	case *ast.RangeStmt:
		key, ok := l.Key.(*ast.Ident)
		if !ok {
			return false
		}
		kobj, _ := pkg.Info.Defs[key].(*types.Var)
		if kobj == nil {
			kobj, _ = pkg.Info.Uses[key].(*types.Var)
		}
		return kobj == iobj && sameExpr(pkg, l.X, idx.X)
	case *ast.ForStmt:
		cond, ok := l.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.LSS {
			return false
		}
		ci, ok := ast.Unparen(cond.X).(*ast.Ident)
		if !ok {
			return false
		}
		if cobj, _ := pkg.Info.Uses[ci].(*types.Var); cobj != iobj {
			return false
		}
		call, ok := ast.Unparen(cond.Y).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return false
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "len" {
			return false
		}
		if obj := pkg.Info.Uses[fn]; obj == nil || obj.Parent() != types.Universe {
			return false
		}
		return sameExpr(pkg, call.Args[0], idx.X)
	}
	return false
}

// sameExpr is structural equality over the ident/selector/index shapes that
// appear as slice bases, using resolved objects so shadowing cannot fool it.
func sameExpr(pkg *Package, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch at := a.(type) {
	case *ast.Ident:
		bt, ok := b.(*ast.Ident)
		return ok && pkg.Info.ObjectOf(at) != nil && pkg.Info.ObjectOf(at) == pkg.Info.ObjectOf(bt)
	case *ast.SelectorExpr:
		bt, ok := b.(*ast.SelectorExpr)
		return ok && pkg.Info.ObjectOf(at.Sel) != nil &&
			pkg.Info.ObjectOf(at.Sel) == pkg.Info.ObjectOf(bt.Sel) &&
			sameExpr(pkg, at.X, bt.X)
	case *ast.IndexExpr:
		bt, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(pkg, at.X, bt.X) && sameExpr(pkg, at.Index, bt.Index)
	}
	return false
}

func runInlineMiss(pass *Pass) {
	if pass.CFacts == nil || pass.Prog == nil || !perfHotPackage(pass.Pkg.Path) {
		return
	}
	for _, sum := range pass.Prog.FuncsInPackage(pass.Pkg.Path) {
		for _, c := range sum.Calls {
			callee := pass.Prog.Funcs[c.Callee]
			if callee == nil || callee.Pos == token.NoPos {
				continue
			}
			dp := callee.Pkg.Fset.Position(callee.Pos)
			fact, ok := pass.CFacts.CannotInlineAt(dp.Filename, dp.Line)
			if !ok || fact.Cost == 0 || fact.Cost > fact.Budget*inlineMissSlack {
				continue
			}
			f := fileContaining(pass.Pkg, c.Pos)
			if f == nil || f.Test {
				continue
			}
			path := pathTo(f.AST, c.Pos)
			if !directCallAt(pass.Pkg, path, c) {
				continue // a func value being passed, not a call
			}
			loops := loopsIn(path)
			if len(loops) == 0 || !isLeafLoop(loops[len(loops)-1]) {
				continue
			}
			sumHere := summaryAt(pass, path)
			if sumHere == nil || !onParallelHotPath(pass, sumHere, path) {
				continue
			}
			pass.Reportf(c.Pos, "call to %s in the innermost parallel loop of %s cannot be inlined (cost %d exceeds budget %d): split a fast path that fits the budget and call out for the slow case, or justify with //gapvet:ignore inline-miss", callee.Name, sumHere.Name, fact.Cost, fact.Budget)
		}
	}
}

// directCallAt confirms the call-site position is an actual CallExpr
// invoking the recorded callee; summaries also record func values passed as
// arguments, which are not calls.
func directCallAt(pkg *Package, path []ast.Node, c CallSite) bool {
	for i := len(path) - 1; i >= 0; i-- {
		call, ok := path[i].(*ast.CallExpr)
		if !ok || call.Pos() != c.Pos {
			continue
		}
		if callee, ok := calleeOf(pkg, call); ok && callee == c.Callee {
			return true
		}
	}
	return false
}

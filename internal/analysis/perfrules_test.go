package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// markPos returns the 1-based line and column of the first occurrence of
// marker in src — the tests anchor synthetic compiler facts to source markers
// instead of hard-coded line numbers, so fixtures can be edited freely.
func markPos(t *testing.T, src, marker string) (int, int) {
	t.Helper()
	for i, l := range strings.Split(src, "\n") {
		if j := strings.Index(l, marker); j >= 0 {
			return i + 1, j + 1
		}
	}
	t.Fatalf("marker %q not found in fixture", marker)
	return 0, 0
}

// fact renders one synthetic diagnostic line positioned at a source marker.
func fact(t *testing.T, src, marker, msg string) string {
	t.Helper()
	ln, col := markPos(t, src, marker)
	return fmt.Sprintf("bad.go:%d:%d: %s", ln, col, msg)
}

// runPerfRule applies one compiler-assisted analyzer to a fixture with a
// synthetic diagnostics stream, the real internal/par riding along for
// spawn-awareness (mirroring how cmd/gapvet invokes RunWithCompilerFacts).
func runPerfRule(t *testing.T, a *Analyzer, pkg *Package, diagnostics []string) []string {
	t.Helper()
	cf := ParseCompilerDiagnostics(strings.NewReader(strings.Join(diagnostics, "\n") + "\n"))
	var out []string
	for _, d := range RunWithCompilerFacts([]*Package{pkg, parPackage(t)}, []*Analyzer{a}, cf) {
		out = append(out, d.String())
	}
	return out
}

const escapeFixture = `package gap

import "gapbench/internal/par"

type box struct{ v int }

var hold *box

func keep(b *box) { hold = b }

func HotEscape(xs []int64) {
	par.For(len(xs), 0, func(i int) {
		for j := 0; j < 4; j++ {
			b := &box{v: 1}
			keep(b)
		}
	})
}

func ColdEscape(xs []int64) {
	for j := 0; j < 4; j++ {
		b := &box{v: 2}
		keep(b)
	}
}

func NoLoopEscape(xs []int64) {
	par.For(len(xs), 0, func(k int) {
		b := &box{v: 3}
		keep(b)
	})
}

func Justified(xs []int64) {
	par.For(len(xs), 0, func(m int) {
		for j := 0; j < 4; j++ {
			//gapvet:ignore escape-in-kernel -- fixture: amortized pool growth
			b := &box{v: 4}
			keep(b)
		}
	})
}

func Rounds(xs []int64) {
	for r := 0; r < 4; r++ {
		par.For(len(xs), 0, func(q int) {
			_ = xs[q]
		})
	}
}
`

// TestEscapeInKernel: only an escape inside a loop, on the parallel hot
// path, that is not the spawned closure itself and not suppressed, fires.
func TestEscapeInKernel(t *testing.T) {
	src := escapeFixture
	pkg := loadFixture(t, "gapbench/internal/gap", map[string]string{"bad.go": src})
	got := runPerfRule(t, EscapeInKernel, pkg, []string{
		fact(t, src, "&box{v: 1}", "&box{...} escapes to heap"),
		fact(t, src, "&box{v: 2}", "&box{...} escapes to heap"),     // not on hot path
		fact(t, src, "&box{v: 3}", "&box{...} escapes to heap"),     // no enclosing loop
		fact(t, src, "&box{v: 4}", "&box{...} escapes to heap"),     // suppressed
		fact(t, src, "func(q int)", "func literal escapes to heap"), // the spawned closure itself
		"bad.go:9999:1: &box{...} escapes to heap",                  // stale position: tolerated
	})
	if len(got) != 1 || !strings.Contains(got[0], "HotEscape") || !strings.Contains(got[0], "parallel hot loop") {
		t.Fatalf("want exactly the HotEscape finding, got %v", got)
	}
}

// TestEscapeSkipsMovedPositions: a moved-to-heap fact at the same position
// hands the site to closure-capture-hot; escape-in-kernel must stay quiet.
func TestEscapeSkipsMovedPositions(t *testing.T) {
	src := escapeFixture
	pkg := loadFixture(t, "gapbench/internal/gap", map[string]string{"bad.go": src})
	got := runPerfRule(t, EscapeInKernel, pkg, []string{
		fact(t, src, "&box{v: 1}", "b escapes to heap"),
		fact(t, src, "&box{v: 1}", "moved to heap: b"),
	})
	if len(got) != 0 {
		t.Fatalf("escape co-located with moved-to-heap must defer to closure-capture-hot, got %v", got)
	}
}

// TestEscapeColdPackage: the same code and facts in a non-kernel package
// produce nothing — the rules only patrol timed kernel packages.
func TestEscapeColdPackage(t *testing.T) {
	src := escapeFixture
	pkg := loadFixture(t, "gapbench/internal/core", map[string]string{"bad.go": src})
	got := runPerfRule(t, EscapeInKernel, pkg, []string{
		fact(t, src, "&box{v: 1}", "&box{...} escapes to heap"),
	})
	if len(got) != 0 {
		t.Fatalf("non-kernel package must be exempt, got %v", got)
	}
}

const captureFixture = `package gap

import "gapbench/internal/par"

func Round(xs []int64) int64 {
	var total int64
	par.For(len(xs), 0, func(i int) {
		total += xs[i]
	})
	return total
}

func Drive(xs []int64) int64 {
	var s int64
	for r := 0; r < 8; r++ {
		s += Round(xs)
	}
	return s
}

func ColdRound(xs []int64) int64 {
	var acc int64
	par.For(len(xs), 0, func(k int) {
		acc += xs[k]
	})
	return acc
}

func DriveOnce(xs []int64) int64 {
	return ColdRound(xs)
}

func Plain(xs []int64) func() {
	var n int64
	f := func() { n++ }
	for r := 0; r < 4; r++ {
		f()
	}
	return f
}
`

// TestClosureCaptureHot: a heap-moved variable captured by a par closure
// fires only when the enclosing function is called from a hot loop, and the
// message names the calling loop.
func TestClosureCaptureHot(t *testing.T) {
	src := captureFixture
	pkg := loadFixture(t, "gapbench/internal/gap", map[string]string{"bad.go": src})
	got := runPerfRule(t, ClosureCaptureHot, pkg, []string{
		fact(t, src, "total int64", "moved to heap: total"),
		fact(t, src, "acc int64", "moved to heap: acc"), // caller not in a loop
		fact(t, src, "n int64", "moved to heap: n"),     // closure is not spawned
	})
	if len(got) != 1 {
		t.Fatalf("want exactly the Round/total finding, got %v", got)
	}
	for _, want := range []string{`captures "total"`, "Round", "called from a loop in Drive"} {
		if !strings.Contains(got[0], want) {
			t.Errorf("finding %q missing %q", got[0], want)
		}
	}
}

const bceFixture = `package gap

import "gapbench/internal/par"

type state struct{ dist []int32 }

func (s *state) RelaxAll(xs []int64) {
	par.For(len(xs), 0, func(w int) {
		for i := 0; i < len(s.dist); i++ {
			s.dist[i]++
		}
	})
}

func (s *state) Sweep(xs []int64) {
	par.For(len(xs), 0, func(w int) {
		d := int32(1)
		for i := range s.dist {
			s.dist[i] += d
		}
	})
}

func (s *state) Unproven(xs []int64, idx []int32) {
	par.For(len(xs), 0, func(w int) {
		for i := 0; i < len(idx); i++ {
			s.dist[idx[i]]++
		}
	})
}

func (s *state) Nested(xs []int64) {
	par.For(len(xs), 0, func(w int) {
		for i := 0; i < len(s.dist); i++ {
			s.dist[i]--
			for k := 0; k < 2; k++ {
				_ = k
			}
		}
	})
}
`

// TestBCEMiss: retained bounds checks fire only when the loop shape proves
// the check eliminable (three-clause i < len(s) or range over the same
// expression), in a leaf loop; indirect indices and non-leaf loops stay
// quiet.
func TestBCEMiss(t *testing.T) {
	src := bceFixture
	pkg := loadFixture(t, "gapbench/internal/gap", map[string]string{"bad.go": src})
	got := runPerfRule(t, BCEMiss, pkg, []string{
		fact(t, src, "s.dist[i]++", "Found IsInBounds"),
		fact(t, src, "s.dist[i] += d", "Found IsInBounds"),
		fact(t, src, "s.dist[idx[i]]++", "Found IsInBounds"), // index not provably bounded
		fact(t, src, "s.dist[i]--", "Found IsInBounds"),      // not a leaf loop
	})
	if len(got) != 2 {
		t.Fatalf("want the RelaxAll and Sweep findings, got %v", got)
	}
	for i, fn := range []string{"RelaxAll", "Sweep"} {
		for _, want := range []string{fn, "bounds check on s.dist", "hoist s.dist into a local"} {
			if !strings.Contains(got[i], want) {
				t.Errorf("finding %d = %q, missing %q", i, got[i], want)
			}
		}
	}
}

const inlineFixture = `package gap

import "gapbench/internal/par"

var total int64

func costly(u, v int, d []int32) {
	d[u%len(d)] += int32(v)
}

func huge(u, v int, d []int32) {
	d[v%len(d)] -= int32(u)
}

func defers(u, v int, d []int32) {
	defer func() { total++ }()
	d[u%len(d)] ^= int32(v)
}

func Kernel(d []int32, xs []int64) {
	par.For(len(xs), 0, func(i int) {
		for j := 0; j < len(d); j++ {
			costly(i, j, d)
			huge(i, j, d)
			defers(i, j, d)
		}
	})
}

func Cold(d []int32) {
	costly(0, 0, d)
}
`

// TestInlineMiss: a hot-loop call to a callee the compiler refused to inline
// fires only when the overrun is within the slack (a fast-path split is
// realistic); structurally-large callees, non-cost reasons, and cold call
// sites stay quiet.
func TestInlineMiss(t *testing.T) {
	src := inlineFixture
	pkg := loadFixture(t, "gapbench/internal/gap", map[string]string{"bad.go": src})
	got := runPerfRule(t, InlineMiss, pkg, []string{
		fact(t, src, "func costly", "cannot inline costly: function too complex: cost 95 exceeds budget 80"),
		fact(t, src, "func huge", "cannot inline huge: function too complex: cost 300 exceeds budget 80"),
		fact(t, src, "func defers", "cannot inline defers: unhandled op DEFER"),
	})
	if len(got) != 1 {
		t.Fatalf("want exactly the costly call-site finding, got %v", got)
	}
	for _, want := range []string{"costly", "Kernel", "cost 95 exceeds budget 80", "split a fast path"} {
		if !strings.Contains(got[0], want) {
			t.Errorf("finding %q missing %q", got[0], want)
		}
	}
}

// TestPerfRulesSkippedWithoutFacts: without a harvested fact table the perf
// rules do not run at all — plain `gapvet` (no -perf) must not pay for them
// or half-fire.
func TestPerfRulesSkippedWithoutFacts(t *testing.T) {
	src := escapeFixture
	pkg := loadFixture(t, "gapbench/internal/gap", map[string]string{"bad.go": src})
	for _, a := range []*Analyzer{EscapeInKernel, ClosureCaptureHot, BCEMiss, InlineMiss} {
		if got := runRule(t, a, pkg); len(got) != 0 {
			t.Errorf("%s ran without compiler facts: %v", a.Name, got)
		}
	}
}

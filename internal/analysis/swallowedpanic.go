package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SwallowedPanic flags recover() calls whose panic value is discarded: a
// bare `recover()`, `_ = recover()`, a value only compared against nil, or a
// bound variable never recorded. The fault model (DESIGN.md §9) sanctions
// exactly two isolation sites — the par region slot capture and the core
// trial sandbox — and both *record* the panic value (message, trimmed
// stack, per-trial status). Any recover that merely eats the value turns a
// reproducible kernel crash into a silent wrong-or-missing result, the
// precise failure the paper's cross-validation methodology exists to
// prevent. To swallow on purpose, rethrow or record the value — or justify
// with //gapvet:ignore swallowed-panic.
var SwallowedPanic = &Analyzer{
	Name: "swallowed-panic",
	Doc:  "recover() must record or rethrow the panic value, not discard it",
	Run:  runSwallowedPanic,
}

func runSwallowedPanic(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		if f.Test {
			continue // test helpers assert through testing.T; out of scope
		}
		parents := buildParents(f.AST)
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltinRecover(pkg, call) {
				return true
			}
			checkRecoverUse(pass, pkg, f.AST, parents, call)
			return true
		})
	}
}

// buildParents records each node's syntactic parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// isBuiltinRecover reports whether call invokes the predeclared recover.
func isBuiltinRecover(pkg *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "recover" {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "recover"
}

// checkRecoverUse classifies the recover call's context and reports when the
// panic value never escapes a nil test.
func checkRecoverUse(pass *Pass, pkg *Package, file *ast.File, parents map[ast.Node]ast.Node, call *ast.CallExpr) {
	switch parent := parents[call].(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "recover() discards the panic value: record it (message/status/stack) or rethrow with panic(v), or justify with //gapvet:ignore swallowed-panic")
	case *ast.BinaryExpr:
		// recover() != nil: the value is tested, then gone.
		if parent.Op == token.EQL || parent.Op == token.NEQ {
			pass.Reportf(call.Pos(), "recover() result is only compared against nil and then discarded: bind it and record or rethrow, or justify with //gapvet:ignore swallowed-panic")
		}
	case *ast.AssignStmt:
		obj := recoverTarget(pkg, parent, call)
		if obj == nil {
			// `_ = recover()` (or an untracked destructuring): swallowed.
			pass.Reportf(call.Pos(), "recover() result assigned to _: record the panic value or rethrow, or justify with //gapvet:ignore swallowed-panic")
			return
		}
		if !valueRecorded(pkg, file, parents, obj) {
			pass.Reportf(call.Pos(), "recover() result %q is only nil-checked, never recorded or rethrown: pass it to a call, assignment, return, or panic, or justify with //gapvet:ignore swallowed-panic", obj.Name())
		}
	case *ast.ValueSpec:
		// var p = recover()
		for i, v := range parent.Values {
			if v != call || i >= len(parent.Names) {
				continue
			}
			obj := pkg.Info.Defs[parent.Names[i]]
			if obj == nil || parent.Names[i].Name == "_" {
				pass.Reportf(call.Pos(), "recover() result assigned to _: record the panic value or rethrow, or justify with //gapvet:ignore swallowed-panic")
				continue
			}
			if !valueRecorded(pkg, file, parents, obj) {
				pass.Reportf(call.Pos(), "recover() result %q is only nil-checked, never recorded or rethrown: pass it to a call, assignment, return, or panic, or justify with //gapvet:ignore swallowed-panic", obj.Name())
			}
		}
	}
	// Any other direct context — call argument, return statement, panic(...)
	// operand — already records or rethrows the value.
}

// recoverTarget returns the object bound to the recover call in assign, or
// nil when the target is blank/untracked.
func recoverTarget(pkg *Package, assign *ast.AssignStmt, call *ast.CallExpr) types.Object {
	for i, rhs := range assign.Rhs {
		if rhs != call || i >= len(assign.Lhs) {
			continue
		}
		id, ok := assign.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			return obj
		}
		return pkg.Info.Uses[id] // p = recover() onto an existing variable
	}
	return nil
}

// valueRecorded reports whether any use of obj escapes a nil comparison: an
// appearance as a call argument, panic operand, return value, assignment
// source, send, composite-literal element, or anything else that carries the
// value onward counts as recording it.
func valueRecorded(pkg *Package, file *ast.File, parents map[ast.Node]ast.Node, obj types.Object) bool {
	recorded := false
	ast.Inspect(file, func(n ast.Node) bool {
		if recorded {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pkg.Info.Uses[id] != obj {
			return true
		}
		switch parent := parents[id].(type) {
		case *ast.BinaryExpr:
			if parent.Op == token.EQL || parent.Op == token.NEQ {
				return true // nil test: not a recording use
			}
			recorded = true
		default:
			// Call argument (including panic(p) and fmt.Sprint(p)),
			// assignment, return, send, composite literal, index, selector:
			// the value flows somewhere.
			recorded = true
		}
		return true
	})
	return recorded
}

package analysis

import "testing"

func TestSwallowedPanic(t *testing.T) {
	checkRule(t, SwallowedPanic, []ruleCase{
		{
			name: "bare recover statement is flagged",
			path: "gapbench/internal/core",
			files: map[string]string{"bad.go": `package core

func eat() {
	defer func() {
		recover()
	}()
}
`},
			want: []string{"bad.go:5: [swallowed-panic] recover() discards the panic value"},
		},
		{
			name: "blank assignment is flagged",
			path: "gapbench/internal/core",
			files: map[string]string{"bad.go": `package core

func eat() {
	defer func() {
		_ = recover()
	}()
}
`},
			want: []string{"recover() result assigned to _"},
		},
		{
			name: "nil comparison only is flagged",
			path: "gapbench/internal/core",
			files: map[string]string{"bad.go": `package core

var tripped bool

func eat() {
	defer func() {
		if recover() != nil {
			tripped = true
		}
	}()
}
`},
			want: []string{"recover() result is only compared against nil and then discarded"},
		},
		{
			name: "bound but only nil-checked is flagged",
			path: "gapbench/internal/core",
			files: map[string]string{"bad.go": `package core

var tripped bool

func eat() {
	defer func() {
		if p := recover(); p != nil {
			tripped = true
		}
	}()
}
`},
			want: []string{`recover() result "p" is only nil-checked, never recorded or rethrown`},
		},
		{
			name: "recorded, rethrown, and returned values are clean",
			path: "gapbench/internal/core",
			files: map[string]string{"ok.go": `package core

import "fmt"

var lastPanic string

func record() {
	defer func() {
		if p := recover(); p != nil {
			lastPanic = fmt.Sprint(p)
		}
	}()
}

func rethrow() {
	defer func() {
		if p := recover(); p != nil {
			panic(p)
		}
	}()
}

func capture() (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return nil
}

// direct use as a call argument needs no binding at all.
func direct() {
	defer func() {
		lastPanic = fmt.Sprint(recover())
	}()
}
`},
			want: nil,
		},
		{
			name: "var declaration binding only nil-checked is flagged",
			path: "gapbench/internal/core",
			files: map[string]string{"bad.go": `package core

var tripped bool

func eat() {
	defer func() {
		var p = recover()
		if p != nil {
			tripped = true
		}
	}()
}
`},
			want: []string{`recover() result "p" is only nil-checked`},
		},
		{
			name: "ignore directive suppresses",
			path: "gapbench/internal/core",
			files: map[string]string{"ok.go": `package core

func eat() {
	defer func() {
		//gapvet:ignore swallowed-panic -- fixture: intentional drop
		recover()
	}()
}
`},
			want: nil,
		},
		{
			name: "test files are out of scope",
			path: "gapbench/internal/core",
			files: map[string]string{"x_test.go": `package core

func eat() {
	defer func() {
		recover()
	}()
}
`},
			want: nil,
		},
	})
}

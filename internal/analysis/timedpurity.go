package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// timedPurityPackages are the packages whose non-test code runs inside the
// benchmark's timed regions: the six framework reproductions registered with
// internal/core plus the substrates their kernels execute on (par, grb).
// The harness times f.BFS(...) et al. with time.Now() around the call, so
// any I/O on these paths lands inside the measurement — the paper's numbers
// assume kernels compute and nothing else. Printing belongs in cmd/ and
// internal/report.
var timedPurityPackages = map[string]bool{
	"gap":     true,
	"galois":  true,
	"graphit": true,
	"gkc":     true,
	"lagraph": true,
	"nwgraph": true,
	"par":     true,
	"grb":     true,
}

// TimedRegionPurity flags I/O calls in timed-kernel packages: every call
// into package log or package os, the printing functions of package fmt
// (Print*, Fprint*), and the print/println builtins. Pure formatting
// (fmt.Sprintf, fmt.Errorf) is allowed.
var TimedRegionPurity = &Analyzer{
	Name: "timed-region-purity",
	Doc:  "kernel packages must not print or touch the OS inside timed regions",
	Run:  runTimedRegionPurity,
}

func runTimedRegionPurity(pass *Pass) {
	pkg := pass.Pkg
	if !timedPurityPackages[lastSegment(pkg.Path)] {
		return
	}
	for _, f := range pkg.Files {
		if f.Test {
			continue // tests are harness, not timed region
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				// The print/println builtins write to stderr.
				if obj := pkg.Info.Uses[fun]; obj != nil && obj.Parent() == types.Universe &&
					(fun.Name == "print" || fun.Name == "println") {
					pass.Reportf(call.Pos(), "builtin %s writes to stderr inside timed kernel package %s: printing belongs in the harness", fun.Name, lastSegment(pkg.Path))
				}
			case *ast.SelectorExpr:
				id, ok := fun.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pkg.Info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				switch pn.Imported().Path() {
				case "log":
					pass.Reportf(call.Pos(), "call to log.%s inside timed kernel package %s: logging belongs in the harness", fun.Sel.Name, lastSegment(pkg.Path))
				case "os":
					pass.Reportf(call.Pos(), "call to os.%s inside timed kernel package %s: OS interaction belongs in the harness", fun.Sel.Name, lastSegment(pkg.Path))
				case "fmt":
					if strings.HasPrefix(fun.Sel.Name, "Print") || strings.HasPrefix(fun.Sel.Name, "Fprint") {
						pass.Reportf(call.Pos(), "call to fmt.%s inside timed kernel package %s: printing belongs in the harness", fun.Sel.Name, lastSegment(pkg.Path))
					}
				}
			}
			return true
		})
	}
}

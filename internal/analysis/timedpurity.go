package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// timedPurityPackages are the packages whose non-test code runs inside the
// benchmark's timed regions: the six framework reproductions registered with
// internal/core plus the substrates their kernels execute on (par, grb).
// The harness times f.BFS(...) et al. with time.Now() around the call, so
// any I/O on these paths lands inside the measurement — the paper's numbers
// assume kernels compute and nothing else. Printing belongs in cmd/ and
// internal/report.
var timedPurityPackages = map[string]bool{
	"gap":      true,
	"galois":   true,
	"graphit":  true,
	"gkc":      true,
	"lagraph":  true,
	"nwgraph":  true,
	"par":      true,
	"grb":      true,
	"frontier": true,
}

// TimedRegionPurity flags I/O calls in timed-kernel packages: every call
// into package log or package os, the printing functions of package fmt
// (Print*, Fprint*), and the print/println builtins. Pure formatting
// (fmt.Sprintf, fmt.Errorf) is allowed.
//
// The rule is transitive: besides direct I/O sites, it reports call sites
// in kernel packages whose callee *reaches* I/O through any call chain the
// module-wide call graph can resolve — a kernel calling a helper in
// internal/graph that spills to os.Stderr is flagged at the kernel's call
// site, naming the chain's endpoint. Chains that stay inside timed
// packages are reported once, at the I/O (or at the first call that leaves
// the timed set), not at every caller along the chain.
var TimedRegionPurity = &Analyzer{
	Name:       "timed-region-purity",
	Doc:        "kernel packages must not reach I/O (directly or transitively) inside timed regions",
	NeedsFacts: true,
	Run:        runTimedRegionPurity,
}

func runTimedRegionPurity(pass *Pass) {
	pkg := pass.Pkg
	if !timedPurityPackages[lastSegment(pkg.Path)] {
		return
	}
	runTransitivePurity(pass)
	for _, f := range pkg.Files {
		if f.Test {
			continue // tests are harness, not timed region
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				// The print/println builtins write to stderr.
				if obj := pkg.Info.Uses[fun]; obj != nil && obj.Parent() == types.Universe &&
					(fun.Name == "print" || fun.Name == "println") {
					pass.Reportf(call.Pos(), "builtin %s writes to stderr inside timed kernel package %s: printing belongs in the harness", fun.Name, lastSegment(pkg.Path))
				}
			case *ast.SelectorExpr:
				id, ok := fun.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pkg.Info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				switch pn.Imported().Path() {
				case "log":
					pass.Reportf(call.Pos(), "call to log.%s inside timed kernel package %s: logging belongs in the harness", fun.Sel.Name, lastSegment(pkg.Path))
				case "os":
					pass.Reportf(call.Pos(), "call to os.%s inside timed kernel package %s: OS interaction belongs in the harness", fun.Sel.Name, lastSegment(pkg.Path))
				case "fmt":
					if strings.HasPrefix(fun.Sel.Name, "Print") || strings.HasPrefix(fun.Sel.Name, "Fprint") {
						pass.Reportf(call.Pos(), "call to fmt.%s inside timed kernel package %s: printing belongs in the harness", fun.Sel.Name, lastSegment(pkg.Path))
					}
				}
			}
			return true
		})
	}
}

// runTransitivePurity reports call sites in this timed package whose callee
// transitively reaches I/O. Callees inside timed packages are skipped: the
// violation is (or will be) reported where the chain leaves the timed set,
// or at the I/O site itself.
func runTransitivePurity(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	for _, s := range prog.FuncsInPackage(pass.Pkg.Path) {
		for _, c := range s.Calls {
			callee := prog.Funcs[c.Callee]
			if callee == nil || timedPurityPackages[lastSegment(callee.PkgPath)] {
				continue
			}
			what, pos, ok := prog.TransIO(c.Callee)
			if !ok {
				continue
			}
			at := pass.Pkg.Fset.Position(pos)
			pass.Reportf(c.Pos,
				"call to %s reaches %s (%s:%d) inside timed kernel package %s: I/O belongs in the harness",
				prog.ShortName(c.Callee), what, at.Filename, at.Line, lastSegment(pass.Pkg.Path))
		}
	}
}

package analysis

import (
	"strings"
	"testing"
)

func TestTimedRegionPurity(t *testing.T) {
	checkRule(t, TimedRegionPurity, []ruleCase{
		{
			name: "printing in a kernel package is flagged",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "fmt"

func BFSDebug(level int) {
	fmt.Println("level", level)
	fmt.Printf("at %d\n", level)
}
`},
			want: []string{
				"bad.go:6: [timed-region-purity] call to fmt.Println inside timed kernel package gap",
				"bad.go:7: [timed-region-purity] call to fmt.Printf inside timed kernel package gap",
			},
		},
		{
			name: "log and os calls are flagged",
			path: "gapbench/internal/par",
			files: map[string]string{"bad.go": `package par

import (
	"log"
	"os"
)

func Trace() {
	log.Printf("workers=%d", 4)
	os.Getenv("GOMAXPROCS")
}
`},
			want: []string{
				"call to log.Printf inside timed kernel package par",
				"call to os.Getenv inside timed kernel package par",
			},
		},
		{
			name: "print builtins are flagged",
			path: "gapbench/internal/grb",
			files: map[string]string{"bad.go": `package grb

func Debug(x int64) {
	println("x =", x)
}
`},
			want: []string{"builtin println writes to stderr inside timed kernel package grb"},
		},
		{
			name: "pure formatting is clean",
			path: "gapbench/internal/galois",
			files: map[string]string{"ok.go": `package galois

import "fmt"

func describe(n int) string {
	return fmt.Sprintf("%d nodes", n)
}

func fail(n int) error {
	return fmt.Errorf("bad frontier size %d", n)
}
`},
			want: nil,
		},
		{
			name: "harness packages may print",
			path: "gapbench/internal/report",
			files: map[string]string{"ok.go": `package report

import "fmt"

func Show(x int) { fmt.Println(x) }
`},
			want: nil,
		},
		{
			name: "kernel test files may print",
			path: "gapbench/internal/gkc",
			files: map[string]string{
				"ok.go": `package gkc
`,
				"debug_test.go": `package gkc

import "fmt"

func dump(x int) { fmt.Println(x) }
`,
			},
			want: nil,
		},
	})
}

// TestTimedRegionPurityTransitive seeds the cross-package chain: a timed
// kernel calls the real internal/graph loader, which opens files. The
// finding lands at the kernel's call site and names the chain's endpoint.
func TestTimedRegionPurityTransitive(t *testing.T) {
	src := map[string]string{"bad.go": `package gap

import "gapbench/internal/graph"

// Reload does no I/O itself; graph.Load does, further down the chain.
func Reload(path string) (*graph.Graph, error) {
	return graph.Load(path)
}
`}
	fixture := loadFixture(t, "gapbench/internal/gap", src)
	got := runRuleOn(t, TimedRegionPurity, fixture, loadRealDir(t, "internal/graph"))
	if len(got) != 1 {
		t.Fatalf("want 1 transitive-purity diagnostic, got %v", got)
	}
	for _, want := range []string{"bad.go:7:", "graph.Load", "reaches os.", "inside timed kernel package gap"} {
		if !strings.Contains(got[0], want) {
			t.Errorf("diagnostic = %q, want substring %q", got[0], want)
		}
	}
}

// TestTimedRegionPurityTransitiveNegative checks that calling an I/O-free
// out-of-package helper stays clean.
func TestTimedRegionPurityTransitiveNegative(t *testing.T) {
	src := map[string]string{"ok.go": `package gap

import "gapbench/internal/graph"

func Fresh(n int64) *graph.Bitmap {
	return graph.NewBitmap(n)
}
`}
	fixture := loadFixture(t, "gapbench/internal/gap", src)
	if got := runRuleOn(t, TimedRegionPurity, fixture, loadRealDir(t, "internal/graph")); len(got) != 0 {
		t.Fatalf("NewBitmap does no I/O; got %v", got)
	}
}

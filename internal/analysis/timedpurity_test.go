package analysis

import "testing"

func TestTimedRegionPurity(t *testing.T) {
	checkRule(t, TimedRegionPurity, []ruleCase{
		{
			name: "printing in a kernel package is flagged",
			path: "gapbench/internal/gap",
			files: map[string]string{"bad.go": `package gap

import "fmt"

func BFSDebug(level int) {
	fmt.Println("level", level)
	fmt.Printf("at %d\n", level)
}
`},
			want: []string{
				"bad.go:6: [timed-region-purity] call to fmt.Println inside timed kernel package gap",
				"bad.go:7: [timed-region-purity] call to fmt.Printf inside timed kernel package gap",
			},
		},
		{
			name: "log and os calls are flagged",
			path: "gapbench/internal/par",
			files: map[string]string{"bad.go": `package par

import (
	"log"
	"os"
)

func Trace() {
	log.Printf("workers=%d", 4)
	os.Getenv("GOMAXPROCS")
}
`},
			want: []string{
				"call to log.Printf inside timed kernel package par",
				"call to os.Getenv inside timed kernel package par",
			},
		},
		{
			name: "print builtins are flagged",
			path: "gapbench/internal/grb",
			files: map[string]string{"bad.go": `package grb

func Debug(x int64) {
	println("x =", x)
}
`},
			want: []string{"builtin println writes to stderr inside timed kernel package grb"},
		},
		{
			name: "pure formatting is clean",
			path: "gapbench/internal/galois",
			files: map[string]string{"ok.go": `package galois

import "fmt"

func describe(n int) string {
	return fmt.Sprintf("%d nodes", n)
}

func fail(n int) error {
	return fmt.Errorf("bad frontier size %d", n)
}
`},
			want: nil,
		},
		{
			name: "harness packages may print",
			path: "gapbench/internal/report",
			files: map[string]string{"ok.go": `package report

import "fmt"

func Show(x int) { fmt.Println(x) }
`},
			want: nil,
		},
		{
			name: "kernel test files may print",
			path: "gapbench/internal/gkc",
			files: map[string]string{
				"ok.go": `package gkc
`,
				"debug_test.go": `package gkc

import "fmt"

func dump(x int) { fmt.Println(x) }
`,
			},
			want: nil,
		},
	})
}

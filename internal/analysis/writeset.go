package analysis

// writeset.go is the write-set half of the facts engine: for every function
// outside internal/graph it computes which stores go through memory *derived
// from the shared CSR graph* and which go through memory derived from the
// function's own parameters. "Derived" is a tiny aliasing lattice, not an
// SSA points-to analysis — the same trade the rest of facts.go makes:
//
//   - the lattice element (origin) is a bitset: one bit for "aliases
//     *graph.Graph backing arrays", one bit per parameter (receiver first);
//   - calls to the registered Graph accessor methods (graphAccessorSeeds)
//     are the graph seed; parameters seed their own bit;
//   - slicing, indexing, dereferencing, field selection, &-taking, slice
//     conversions, and append all pass origins through; local assignments
//     union origins flow-insensitively to a per-function fixpoint;
//   - per-function summaries (stores through graph memory, stores through
//     parameter i, origins of each result) propagate over the module call
//     graph to a global fixpoint, so a kernel handing g.OutWeights(u) to a
//     helper that zeroes its slice parameter is caught at the call site.
//
// What the lattice deliberately does not track: aliases parked in struct
// fields (a graph slice stored into a field and mutated through another
// method later) and flows through interface calls. Those escapes are what
// the graphguard runtime sanitizer exists for (internal/graph, build tag
// graphguard): the static rule proves the common paths, the trial-boundary
// checksum catches the rest.

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
)

// origin is the aliasing lattice element: which tracked memory an expression
// may alias. The top bit marks "derived from *graph.Graph CSR arrays"; lower
// bits mark "derived from parameter i" (receiver = parameter 0 for methods).
type origin uint64

const originGraph origin = 1 << 63

// maxTrackedParams bounds the per-parameter bits (bit 63 is the graph bit).
const maxTrackedParams = 62

func paramBit(i int) origin {
	if i < 0 || i >= maxTrackedParams {
		return 0
	}
	return origin(1) << uint(i)
}

// graphAccessorSeeds is the aliasing seed list: the graph.Graph accessor
// methods whose results alias CSR backing memory. Any new Graph accessor
// that returns backing arrays must be registered here, or stores through its
// result become invisible to the graph-mutation rule (CONTRIBUTING.md).
var graphAccessorSeeds = map[string]bool{
	"OutNeighbors":  true,
	"InNeighbors":   true,
	"OutWeights":    true,
	"InWeights":     true,
	"RawOut":        true,
	"RawIn":         true,
	"RawOutWeights": true,
	"RawInWeights":  true,
	// Arena.Bytes exposes the raw storage block every CSR view is carved
	// from; a write (or a retained alias) through it bypasses all of them.
	"Bytes": true,
}

// StoreSite is one store through tracked (graph- or parameter-derived)
// memory.
type StoreSite struct {
	Pos token.Pos
	// What names the store shape: "element store", "copy destination",
	// "sort.Slice", "append into backing array", ...
	What string
	// Via names the callee for stores reached through a call site — the
	// function passed tracked memory to a callee that stores through the
	// corresponding parameter. Empty for direct stores.
	Via FuncID
}

// writeFacts is the per-function write-set summary the fixpoint iterates.
type writeFacts struct {
	// graphStores are stores through graph-derived memory: direct sites plus
	// call sites handing graph-derived values to a param-storing callee.
	graphStores []StoreSite
	// paramStores maps parameter index (receiver first) to stores through
	// memory derived from that parameter.
	paramStores map[int][]StoreSite
	// retOrigins records, per result index, what the returned value may
	// alias — how graph memory escapes through return values.
	retOrigins []origin
}

// wsFunc pairs one function declaration with its identity for the fixpoint.
type wsFunc struct {
	pkg *Package
	fd  *ast.FuncDecl
	id  FuncID
	fn  *types.Func
}

// fixWriteSets runs the module-wide write-set fixpoint. Functions declared
// in a package named "graph" are skipped entirely: the substrate's own
// builder/relabel/symmetrize code writes CSR arrays by design, and calls
// into it are equally sanctioned.
func (p *Program) fixWriteSets(pkgs []*Package) {
	p.writes = map[FuncID]*writeFacts{}
	var fns []wsFunc
	for _, pkg := range pkgs {
		if lastSegment(pkg.Path) == "graph" {
			continue
		}
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fns = append(fns, wsFunc{pkg: pkg, fd: fd, id: FuncID(obj.FullName()), fn: obj})
			}
		}
	}
	// Summaries only grow, so iterate to a fixpoint; the call-chain depth
	// bounds the useful round count and the cap is a safety net.
	for round := 0; round < 32; round++ {
		changed := false
		for _, fn := range fns {
			if p.analyzeWrites(fn) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// newOriginWalker builds the per-function aliasing state (parameter bits
// plus the local-aliasing fixpoint) shared by the write-set pass and ad-hoc
// origin queries. Returns nil for bodiless or signature-less functions.
func (p *Program) newOriginWalker(pkg *Package, fn *types.Func, fd *ast.FuncDecl) *wsWalker {
	if fd == nil || fd.Body == nil {
		return nil
	}
	w := &wsWalker{
		prog:   p,
		pkg:    pkg,
		params: map[*types.Var]int{},
		locals: map[*types.Var]origin{},
		facts:  &writeFacts{paramStores: map[int][]StoreSite{}},
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	idx := 0
	if r := sig.Recv(); r != nil {
		w.params[r] = 0
		idx = 1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		w.params[sig.Params().At(i)] = idx
		idx++
	}
	w.facts.retOrigins = make([]origin, sig.Results().Len())

	// Local aliasing fixpoint: assignments only union origins into locals,
	// so repeating the walk until nothing moves handles any statement order.
	for {
		w.changedLocals = false
		ast.Inspect(fd.Body, w.visitAssign)
		if !w.changedLocals {
			break
		}
	}
	return w
}

// ExprAliasesGraph reports whether the expression, evaluated inside fd, may
// alias CSR graph backing memory under the origin lattice — the perf rules
// use it to note that a slice's length is loop-invariant because shared
// graphs are immutable (see graphmutation.go).
func (p *Program) ExprAliasesGraph(pkg *Package, fn *types.Func, fd *ast.FuncDecl, e ast.Expr) bool {
	if p.writes == nil || fn == nil {
		return false
	}
	w := p.newOriginWalker(pkg, fn, fd)
	return w != nil && w.exprOrigin(e)&originGraph != 0
}

// analyzeWrites recomputes one function's write facts against the current
// global state and reports whether the facts other functions consume
// (paramStores, retOrigins) changed.
func (p *Program) analyzeWrites(f wsFunc) bool {
	w := p.newOriginWalker(f.pkg, f.fn, f.fd)
	if w == nil {
		return false
	}
	w.collectStores(f.fd.Body)

	old := p.writes[f.id]
	p.writes[f.id] = w.facts
	return !sameWriteFacts(old, w.facts)
}

// sameWriteFacts compares the cross-function-visible parts of two summaries
// (retOrigins and paramStores sizes; both grow monotonically).
func sameWriteFacts(old, cur *writeFacts) bool {
	if old == nil {
		empty := len(cur.paramStores) == 0
		for _, o := range cur.retOrigins {
			if o != 0 {
				empty = false
			}
		}
		return empty
	}
	if !slices.Equal(old.retOrigins, cur.retOrigins) {
		return false
	}
	if len(old.paramStores) != len(cur.paramStores) {
		return false
	}
	for i, sites := range cur.paramStores {
		if len(old.paramStores[i]) != len(sites) {
			return false
		}
	}
	return true
}

// wsWalker carries the per-function analysis state.
type wsWalker struct {
	prog *Program
	pkg  *Package
	// params maps parameter objects (receiver first) to their bit index.
	params map[*types.Var]int
	// locals accumulates origins of local variables (including origins a
	// reassigned parameter variable picks up).
	locals        map[*types.Var]origin
	changedLocals bool
	facts         *writeFacts
}

// visitAssign unions right-hand-side origins into assigned locals.
func (w *wsWalker) visitAssign(n ast.Node) bool {
	switch t := n.(type) {
	case *ast.AssignStmt:
		if len(t.Lhs) > 1 && len(t.Rhs) == 1 {
			if call, ok := ast.Unparen(t.Rhs[0]).(*ast.CallExpr); ok {
				for i, lhs := range t.Lhs {
					w.bindLocal(lhs, w.callOrigin(call, i))
				}
				return true
			}
		}
		for i, lhs := range t.Lhs {
			if i < len(t.Rhs) {
				w.bindLocal(lhs, w.exprOrigin(t.Rhs[i]))
			}
		}
	case *ast.ValueSpec:
		if len(t.Names) > 1 && len(t.Values) == 1 {
			if call, ok := ast.Unparen(t.Values[0]).(*ast.CallExpr); ok {
				for i, name := range t.Names {
					w.bindIdent(name, w.callOrigin(call, i))
				}
				return true
			}
		}
		for i, name := range t.Names {
			if i < len(t.Values) {
				w.bindIdent(name, w.exprOrigin(t.Values[i]))
			}
		}
	}
	return true
}

func (w *wsWalker) bindLocal(lhs ast.Expr, o origin) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		w.bindIdent(id, o)
	}
}

func (w *wsWalker) bindIdent(id *ast.Ident, o origin) {
	if o == 0 {
		return
	}
	v, ok := w.pkg.Info.Defs[id].(*types.Var)
	if !ok {
		if v, ok = w.pkg.Info.Uses[id].(*types.Var); !ok {
			return
		}
	}
	if w.locals[v]&o != o {
		w.locals[v] |= o
		w.changedLocals = true
	}
}

// collectStores records every store through tracked memory, walking with an
// ancestor stack so returns inside nested function literals are not
// attributed to the outer function's results.
func (w *wsWalker) collectStores(body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		switch t := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range t.Lhs {
				w.storeThrough(lhs)
			}
		case *ast.IncDecStmt:
			w.storeThrough(t.X)
		case *ast.CallExpr:
			w.visitCallStores(t)
		case *ast.ReturnStmt:
			if !underFuncLit(stack) {
				w.visitReturn(t)
			}
		}
		stack = append(stack, n)
		return true
	})
}

func underFuncLit(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// storeThrough records lhs as a store when the memory it writes into is
// tracked: x[i] = v, *p = v, p.f = v with a tracked base.
func (w *wsWalker) storeThrough(lhs ast.Expr) {
	switch t := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		w.recordStore(w.exprOrigin(t.X), "element store", t.Pos(), "")
	case *ast.StarExpr:
		w.recordStore(w.exprOrigin(t.X), "pointer store", t.Pos(), "")
	case *ast.SelectorExpr:
		if v, ok := w.pkg.Info.Uses[t.Sel].(*types.Var); ok && v.IsField() {
			w.recordStore(w.exprOrigin(t.X), "field store", t.Pos(), "")
		}
	}
}

// visitReturn unions returned origins into the function's result summary.
func (w *wsWalker) visitReturn(ret *ast.ReturnStmt) {
	if len(ret.Results) == 1 && len(w.facts.retOrigins) > 1 {
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			for i := range w.facts.retOrigins {
				w.facts.retOrigins[i] |= w.callOrigin(call, i)
			}
			return
		}
	}
	for i, r := range ret.Results {
		if i < len(w.facts.retOrigins) {
			w.facts.retOrigins[i] |= w.exprOrigin(r)
		}
	}
}

// visitCallStores handles the call-shaped stores: mutating builtins, the
// in-place stdlib sorters, and module callees that store through a
// parameter the caller binds to tracked memory.
func (w *wsWalker) visitCallStores(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := w.pkg.Info.Uses[id]; obj != nil && obj.Parent() == types.Universe {
			if len(call.Args) == 0 {
				return
			}
			// copy writes through its destination (first argument only: the
			// source is read, so copying *out of* graph memory is fine);
			// append and clear write into their argument's backing array —
			// an accessor sub-slice's capacity extends into the next
			// vertex's adjacency, so appending to one corrupts the CSR.
			switch id.Name {
			case "copy":
				w.recordStore(w.exprOrigin(call.Args[0]), "copy destination", call.Pos(), "")
			case "append":
				w.recordStore(w.exprOrigin(call.Args[0]), "append into backing array", call.Pos(), "")
			case "clear":
				w.recordStore(w.exprOrigin(call.Args[0]), "clear", call.Pos(), "")
			}
			return
		}
	}
	if name, ok := mutatingStdlibCall(w.pkg, call); ok && len(call.Args) > 0 {
		w.recordStore(w.exprOrigin(call.Args[0]), name, call.Pos(), "")
		return
	}
	fn := moduleCallee(w.pkg, call)
	if fn == nil {
		return
	}
	wf := w.prog.writes[FuncID(fn.FullName())]
	if wf == nil || len(wf.paramStores) == 0 {
		return
	}
	idxs := make([]int, 0, len(wf.paramStores))
	for i := range wf.paramStores {
		idxs = append(idxs, i)
	}
	slices.Sort(idxs)
	for _, pi := range idxs {
		if ae := argForParam(call, fn, pi); ae != nil {
			w.recordStore(w.exprOrigin(ae), "argument store", call.Pos(), FuncID(fn.FullName()))
		}
	}
}

// recordStore files one store site under every tracked origin it may write
// through.
func (w *wsWalker) recordStore(o origin, what string, pos token.Pos, via FuncID) {
	if o == 0 {
		return
	}
	site := StoreSite{Pos: pos, What: what, Via: via}
	if o&originGraph != 0 {
		w.facts.graphStores = append(w.facts.graphStores, site)
	}
	for i := 0; i < maxTrackedParams; i++ {
		if o&paramBit(i) != 0 {
			w.facts.paramStores[i] = append(w.facts.paramStores[i], site)
		}
	}
}

// exprOrigin computes what memory e may alias under the current state.
func (w *wsWalker) exprOrigin(e ast.Expr) origin {
	switch t := e.(type) {
	case *ast.ParenExpr:
		return w.exprOrigin(t.X)
	case *ast.Ident:
		v, ok := w.pkg.Info.Uses[t].(*types.Var)
		if !ok {
			if v, ok = w.pkg.Info.Defs[t].(*types.Var); !ok {
				return 0
			}
		}
		o := w.locals[v]
		if i, ok := w.params[v]; ok {
			o |= paramBit(i)
		}
		return o
	case *ast.IndexExpr:
		return w.exprOrigin(t.X)
	case *ast.SliceExpr:
		return w.exprOrigin(t.X)
	case *ast.StarExpr:
		return w.exprOrigin(t.X)
	case *ast.UnaryExpr:
		if t.Op == token.AND {
			return w.exprOrigin(t.X)
		}
	case *ast.SelectorExpr:
		if v, ok := w.pkg.Info.Uses[t.Sel].(*types.Var); ok && v.IsField() {
			return w.exprOrigin(t.X)
		}
	case *ast.CallExpr:
		return w.callOrigin(t, 0)
	}
	return 0
}

// callOrigin computes the origin of result index `result` of a call:
// accessor seeds, slice conversions and append (which alias their operand),
// and module callees whose result summaries map back through the arguments.
func (w *wsWalker) callOrigin(call *ast.CallExpr, result int) origin {
	if tv, ok := w.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: slice conversions share backing memory.
		if len(call.Args) == 1 {
			return w.exprOrigin(call.Args[0])
		}
		return 0
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := w.pkg.Info.Uses[id]; obj != nil && obj.Parent() == types.Universe {
			if id.Name == "append" && len(call.Args) > 0 {
				return w.exprOrigin(call.Args[0])
			}
			return 0
		}
	}
	if isGraphAccessorCall(w.pkg, call) {
		return originGraph
	}
	fn := moduleCallee(w.pkg, call)
	if fn == nil {
		return 0
	}
	wf := w.prog.writes[FuncID(fn.FullName())]
	if wf == nil || result >= len(wf.retOrigins) {
		return 0
	}
	ro := wf.retOrigins[result]
	var o origin
	if ro&originGraph != 0 {
		o |= originGraph
	}
	for i := 0; i < maxTrackedParams; i++ {
		if ro&paramBit(i) != 0 {
			if ae := argForParam(call, fn, i); ae != nil {
				o |= w.exprOrigin(ae)
			}
		}
	}
	return o
}

// isGraphAccessorCall reports whether call invokes one of the registered
// accessor methods on the graph substrate's Graph or Arena types.
func isGraphAccessorCall(pkg *Package, call *ast.CallExpr) bool {
	return isGraphMethodCall(pkg, call, graphAccessorSeeds)
}

// isGraphMethodCall reports whether call invokes a method from names on the
// graph package's Graph or Arena type.
func isGraphMethodCall(pkg *Package, call *ast.CallExpr, names map[string]bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || !names[fn.Name()] {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if name := named.Obj().Name(); name != "Graph" && name != "Arena" {
		return false
	}
	return lastSegment(named.Obj().Pkg().Path()) == "graph"
}

// moduleCallee resolves a call to a module-internal *types.Func (the typed
// sibling of calleeOf, which rules need for signatures).
func moduleCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !inModule(fn.Pkg().Path(), pkg.Module) {
		return nil
	}
	return fn
}

// inModule reports whether path is inside the module (shared with calleeOf's
// prefix convention).
func inModule(path, module string) bool {
	return module != "" && (path == module || len(path) > len(module) && path[:len(module)] == module && path[len(module)] == '/')
}

// argForParam maps callee parameter index i (receiver first for methods)
// back to the caller's argument expression, or nil when it cannot be
// identified (method values, spreads past the argument list).
func argForParam(call *ast.CallExpr, fn *types.Func, i int) ast.Expr {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	if sig.Recv() != nil {
		if i == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		i--
	}
	if i >= 0 && i < len(call.Args) {
		return call.Args[i]
	}
	return nil
}

// mutatingStdlibCall recognizes stdlib calls that reorder or overwrite
// their first argument in place.
func mutatingStdlibCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	switch pn.Imported().Path() {
	case "sort":
		switch sel.Sel.Name {
		case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Float64s", "Strings":
			return "sort." + sel.Sel.Name, true
		}
	case "slices":
		switch sel.Sel.Name {
		case "Sort", "SortFunc", "SortStableFunc", "Reverse":
			return "slices." + sel.Sel.Name, true
		}
	}
	return "", false
}

// ---------------------------------------------------------------------------
// Program API.

// GraphStores returns the function's stores through graph-derived memory —
// direct sites plus call sites that hand graph memory to a param-storing
// callee — in source order.
func (p *Program) GraphStores(id FuncID) []StoreSite {
	if wf := p.writes[id]; wf != nil {
		return wf.graphStores
	}
	return nil
}

// ParamStores returns the function's stores through parameter-derived
// memory, keyed by parameter index (receiver first for methods).
func (p *Program) ParamStores(id FuncID) map[int][]StoreSite {
	if wf := p.writes[id]; wf != nil {
		return wf.paramStores
	}
	return nil
}

// ReturnsGraphMemory reports whether result index i of the function may
// alias CSR backing memory.
func (p *Program) ReturnsGraphMemory(id FuncID, i int) bool {
	wf := p.writes[id]
	return wf != nil && i < len(wf.retOrigins) && wf.retOrigins[i]&originGraph != 0
}

// Package chaos is the fault-injection layer of the harness's fault model
// (DESIGN.md §9): a deterministic wrapper around any kernel.Framework that
// makes chosen benchmark cells panic, stall, hang, or return corrupted
// output. The suite runner is supposed to survive all four and classify each
// one correctly (Panicked / TimedOut / TimedOut-with-abandonment /
// VerifyFailed) — the chaos e2e tests in internal/core assert exactly that.
//
// Injection is compiled in always but armed only under the chaos build tag
// (go test -tags=chaos), mirroring internal/grb's grbcheck sanitizer: the
// package parses identically with and without the tag, so gapvet's
// tag-unaware loader sees one consistent view, and a production binary built
// without the tag carries the wrapper type but never fires a fault.
package chaos

import (
	"fmt"
	"time"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// enabled is armed by the init in enabled_chaos.go under -tags=chaos.
var enabled = false

// Enabled reports whether the binary was built with the chaos tag. Tests
// that need armed faults skip themselves when it is false, instead of
// hiding behind a build tag of their own.
func Enabled() bool { return enabled }

// Mode selects what a fault does to its cell.
type Mode int

const (
	// Panic makes the kernel panic with a recognizable "chaos:" value.
	Panic Mode = iota
	// Stall makes the kernel block cooperatively: it waits for the trial's
	// cancellation token, then returns its partial (untouched) output — the
	// well-behaved slow kernel. Classified TimedOut, machine kept.
	Stall
	// Hang makes the kernel ignore the cancellation token: it keeps sleeping
	// for HangExtra past the cancel before returning — the misbehaving
	// kernel. The runner abandons its machine; classified TimedOut.
	Hang
	// Corrupt runs the real kernel and then deterministically flips its
	// output, so the oracle rejects it. Classified VerifyFailed.
	Corrupt
	// CorruptGraph mutates one CSR adjacency entry in place before running
	// the real kernel — the fault the graphguard sanitizer exists for. The
	// oracle cannot catch it (it verifies against the same corrupted graph),
	// so without -tags=graphguard the trial silently passes with a wrong
	// answer; with it, the runner's seal check panics naming the array.
	// Classified Panicked under graphguard.
	CorruptGraph
)

func (m Mode) String() string {
	switch m {
	case Panic:
		return "Panic"
	case Stall:
		return "Stall"
	case Hang:
		return "Hang"
	case Corrupt:
		return "Corrupt"
	case CorruptGraph:
		return "CorruptGraph"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Fault selects one or more cells and the failure to inject there.
type Fault struct {
	// Kernel names the targeted kernel ("BFS", "SSSP", "PR", "CC", "BC",
	// "TC"); Graph the targeted graph, with "" matching every graph.
	Kernel string
	Graph  string
	Mode   Mode
	// Once arms the fault for a single firing: the first matching trial
	// attempt fails, the retry succeeds — the transient-failure path of the
	// runner's retry policy. Zero-valued faults fire on every attempt
	// (deterministic failures).
	Once bool
	// HangExtra bounds how long a Hang keeps ignoring the cancellation
	// token (so tests can reap the abandoned machine instead of leaking its
	// workers forever). Zero means 30s.
	HangExtra time.Duration
}

// Injector wraps a framework, firing configured faults on matching cells.
// With the chaos tag absent (Enabled() == false) every call passes straight
// through. The Injector is handed to the runner like any other framework;
// its Name is the inner framework's, so results and journals stay keyed to
// the real framework.
type Injector struct {
	inner  kernel.Framework
	faults []*Fault
	// Seed drives output corruption deterministically.
	seed uint64
}

// Wrap builds an Injector around f with the given faults and corruption
// seed. The *Fault pointers are retained: Once-faults record their firing by
// mutating the caller's value.
func Wrap(f kernel.Framework, seed uint64, faults ...*Fault) *Injector {
	return &Injector{inner: f, faults: faults, seed: seed}
}

// Name returns the wrapped framework's name.
func (i *Injector) Name() string { return i.inner.Name() }

// Prepare forwards the load-time conversion when the inner framework has one.
func (i *Injector) Prepare(g *graph.Graph, undirected *graph.Graph) {
	if p, ok := i.inner.(kernel.Preparer); ok {
		p.Prepare(g, undirected)
	}
}

// Attributes forwards Table II metadata when available.
func (i *Injector) Attributes() map[string]string {
	if d, ok := i.inner.(kernel.Describer); ok {
		return d.Attributes()
	}
	return nil
}

// Algorithms forwards Table III metadata when available.
func (i *Injector) Algorithms() kernel.Algorithms {
	if d, ok := i.inner.(kernel.Describer); ok {
		return d.Algorithms()
	}
	return kernel.Algorithms{}
}

// match returns the armed fault for (kernelName, opt), consuming Once-faults.
func (i *Injector) match(kernelName string, opt kernel.Options) *Fault {
	if !enabled {
		return nil
	}
	for _, f := range i.faults {
		if f == nil || f.Kernel != kernelName {
			continue
		}
		if f.Graph != "" && f.Graph != opt.GraphName && f.Graph != "*" {
			// Baseline cells carry no GraphName; a graph-scoped fault only
			// fires when the runner identifies the graph (Optimized mode).
			continue
		}
		if f.Once {
			f.Once = false
			f.Kernel = "" // disarmed
		}
		return f
	}
	return nil
}

// fire runs f's pre-kernel effect. It returns true when the real kernel must
// be skipped and a placeholder output returned (Stall/Hang — the harness
// discards it as TimedOut anyway); Panic never returns; CorruptGraph mutates
// g's CSR in place and lets the real kernel run; Corrupt and nil do nothing
// here (output corruption happens after the real kernel runs).
func (i *Injector) fire(f *Fault, kernelName string, g *graph.Graph, opt kernel.Options) bool {
	if f == nil {
		return false
	}
	switch f.Mode {
	case Panic:
		panic(fmt.Sprintf("chaos: injected panic in %s %s", i.inner.Name(), kernelName))
	case Stall:
		// Cooperative: poll the token like a well-behaved kernel, then bail.
		for !opt.Cancelled() {
			time.Sleep(time.Millisecond)
		}
		return true
	case Hang:
		// Misbehaving: keep ignoring the token past the runner's grace, but
		// bounded so the abandoned machine can be reaped by tests.
		extra := f.HangExtra
		if extra <= 0 {
			extra = 30 * time.Second
		}
		for !opt.Cancelled() {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(extra)
		return true
	case CorruptGraph:
		_, neigh := g.RawOut()
		if n := g.NumNodes(); n > 0 && len(neigh) > 0 {
			v := i.corruptIndex(kernelName, len(neigh))
			// Increment (mod n, staying a valid vertex id) rather than XOR:
			// a second firing must not restore the checksum, so a retried
			// attempt still trips graphguard.
			//gapvet:ignore graph-mutation -- chaos deliberately corrupts shared CSR memory to exercise the graphguard sanitizer
			neigh[v] = (neigh[v] + 1) % n
		}
	}
	return false
}

// splitmix64 is the corruption PRNG: tiny, seedable, stateless per call
// chain — the same fault fires the same way on every run with the same seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// corruptIndex picks the deterministic victim index for an n-element output.
func (i *Injector) corruptIndex(kernelName string, n int) int {
	if n <= 0 {
		return 0
	}
	h := i.seed
	for _, c := range []byte(kernelName) {
		h = splitmix64(h ^ uint64(c))
	}
	return int(h % uint64(n))
}

// BFS forwards to the inner framework, firing any matching fault.
func (i *Injector) BFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	f := i.match("BFS", opt)
	if i.fire(f, "BFS", g, opt) {
		return make([]graph.NodeID, g.NumNodes())
	}
	parent := i.inner.BFS(g, src, opt)
	if f != nil && f.Mode == Corrupt && len(parent) > 0 {
		v := i.corruptIndex("BFS", len(parent))
		parent[v] = graph.NodeID(v) // self-parent off the tree root: invalid
		if graph.NodeID(v) == src {
			parent[v] = -1 // unreachable source: equally invalid
		}
	}
	return parent
}

// SSSP forwards to the inner framework, firing any matching fault.
func (i *Injector) SSSP(g *graph.Graph, src graph.NodeID, opt kernel.Options) []kernel.Dist {
	f := i.match("SSSP", opt)
	if i.fire(f, "SSSP", g, opt) {
		return make([]kernel.Dist, g.NumNodes())
	}
	dist := i.inner.SSSP(g, src, opt)
	if f != nil && f.Mode == Corrupt && len(dist) > 0 {
		dist[i.corruptIndex("SSSP", len(dist))] = -7 // negative distance: invalid
	}
	return dist
}

// PR forwards to the inner framework, firing any matching fault.
func (i *Injector) PR(g *graph.Graph, opt kernel.Options) []float64 {
	f := i.match("PR", opt)
	if i.fire(f, "PR", g, opt) {
		return make([]float64, g.NumNodes())
	}
	ranks := i.inner.PR(g, opt)
	if f != nil && f.Mode == Corrupt && len(ranks) > 0 {
		ranks[i.corruptIndex("PR", len(ranks))] += 0.5 // breaks the fixed point
	}
	return ranks
}

// CC forwards to the inner framework, firing any matching fault.
func (i *Injector) CC(g *graph.Graph, opt kernel.Options) []graph.NodeID {
	f := i.match("CC", opt)
	if i.fire(f, "CC", g, opt) {
		return make([]graph.NodeID, g.NumNodes())
	}
	labels := i.inner.CC(g, opt)
	if f != nil && f.Mode == Corrupt && len(labels) > 1 {
		v := i.corruptIndex("CC", len(labels))
		labels[v] = labels[(v+1)%len(labels)] + 1 + graph.NodeID(len(labels)) // out-of-range label
	}
	return labels
}

// BC forwards to the inner framework, firing any matching fault.
func (i *Injector) BC(g *graph.Graph, sources []graph.NodeID, opt kernel.Options) []float64 {
	f := i.match("BC", opt)
	if i.fire(f, "BC", g, opt) {
		return make([]float64, g.NumNodes())
	}
	scores := i.inner.BC(g, sources, opt)
	if f != nil && f.Mode == Corrupt && len(scores) > 0 {
		scores[i.corruptIndex("BC", len(scores))] = -1 // negative centrality: invalid
	}
	return scores
}

// TC forwards to the inner framework, firing any matching fault.
func (i *Injector) TC(g *graph.Graph, opt kernel.Options) int64 {
	f := i.match("TC", opt)
	if i.fire(f, "TC", g, opt) {
		return 0
	}
	count := i.inner.TC(g, opt)
	if f != nil && f.Mode == Corrupt {
		count = -count - 1 // always wrong, even for 0
	}
	return count
}

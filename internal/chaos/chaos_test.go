package chaos

import (
	"testing"

	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// fixed is a trivial framework whose outputs are recognizable constants.
type fixed struct{}

func (fixed) Name() string { return "Fixed" }
func (fixed) BFS(g *graph.Graph, src graph.NodeID, _ kernel.Options) []graph.NodeID {
	out := make([]graph.NodeID, g.NumNodes())
	for i := range out {
		out[i] = -1
	}
	if int(src) < int(g.NumNodes()) {
		out[src] = src
	}
	return out
}
func (fixed) SSSP(g *graph.Graph, _ graph.NodeID, _ kernel.Options) []kernel.Dist {
	return make([]kernel.Dist, g.NumNodes())
}
func (fixed) PR(g *graph.Graph, _ kernel.Options) []float64 {
	return make([]float64, g.NumNodes())
}
func (fixed) CC(g *graph.Graph, _ kernel.Options) []graph.NodeID {
	return make([]graph.NodeID, g.NumNodes())
}
func (fixed) BC(g *graph.Graph, _ []graph.NodeID, _ kernel.Options) []float64 {
	return make([]float64, g.NumNodes())
}
func (fixed) TC(*graph.Graph, kernel.Options) int64 { return 42 }

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := generate.ByName("Urand", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPassthroughWhenUnmatchedOrDisarmed(t *testing.T) {
	g := testGraph(t)
	// A fault for a different kernel never fires regardless of the tag.
	inj := Wrap(fixed{}, 7, &Fault{Kernel: "PR", Mode: Panic})
	if got := inj.TC(g, kernel.Options{}); got != 42 {
		t.Fatalf("TC = %d, want passthrough 42", got)
	}
	if inj.Name() != "Fixed" {
		t.Fatalf("Name = %q", inj.Name())
	}
	if !Enabled() {
		// Disarmed build: even a matching fault is inert.
		inj = Wrap(fixed{}, 7, &Fault{Kernel: "TC", Mode: Corrupt})
		if got := inj.TC(g, kernel.Options{}); got != 42 {
			t.Fatalf("disarmed TC = %d, want 42", got)
		}
	}
}

func TestCorruptIsDeterministicAndOnceDisarms(t *testing.T) {
	if !Enabled() {
		t.Skip("needs -tags=chaos")
	}
	g := testGraph(t)
	a := Wrap(fixed{}, 7, &Fault{Kernel: "SSSP", Mode: Corrupt}).SSSP(g, 0, kernel.Options{})
	b := Wrap(fixed{}, 7, &Fault{Kernel: "SSSP", Mode: Corrupt}).SSSP(g, 0, kernel.Options{})
	var hitA, hitB = -1, -1
	for i := range a {
		if a[i] != 0 {
			hitA = i
		}
		if b[i] != 0 {
			hitB = i
		}
	}
	if hitA < 0 || hitA != hitB {
		t.Fatalf("corruption sites %d vs %d, want one deterministic site", hitA, hitB)
	}
	c := Wrap(fixed{}, 8, &Fault{Kernel: "SSSP", Mode: Corrupt}).SSSP(g, 0, kernel.Options{})
	hitC := -1
	for i := range c {
		if c[i] != 0 {
			hitC = i
		}
	}
	if hitC == hitA {
		t.Logf("seeds 7 and 8 collided on index %d (possible, just unlucky)", hitC)
	}

	// Once: fires on the first matching call only.
	once := &Fault{Kernel: "TC", Mode: Corrupt, Once: true}
	inj := Wrap(fixed{}, 7, once)
	if got := inj.TC(g, kernel.Options{}); got == 42 {
		t.Fatal("Once fault did not fire on first call")
	}
	if got := inj.TC(g, kernel.Options{}); got != 42 {
		t.Fatalf("Once fault fired twice: second TC = %d", got)
	}
}

func TestGraphScopedFaultNeedsGraphName(t *testing.T) {
	if !Enabled() {
		t.Skip("needs -tags=chaos")
	}
	g := testGraph(t)
	inj := Wrap(fixed{}, 7, &Fault{Kernel: "TC", Graph: "Kron", Mode: Corrupt})
	if got := inj.TC(g, kernel.Options{GraphName: "Urand"}); got != 42 {
		t.Fatalf("fault for Kron fired on Urand: TC = %d", got)
	}
	if got := inj.TC(g, kernel.Options{GraphName: "Kron"}); got == 42 {
		t.Fatal("fault for Kron did not fire on Kron")
	}
}

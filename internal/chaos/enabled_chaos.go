//go:build chaos

package chaos

// Building with -tags=chaos arms fault injection; see chaos.go.
func init() { enabled = true }

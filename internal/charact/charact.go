// Package charact is the workload-characterization companion to the
// benchmark, in the spirit of the IISWC'15 study the GAP suite was designed
// around (§II: "The benchmark was designed in conjunction with a workload
// characterization to ensure it exposes a range of computational demands").
// It runs instrumented versions of the traversal kernels and reports the
// quantities that explain Table V: rounds executed, edges examined per
// round, frontier-size profiles, and direction-switch behaviour — the
// numbers behind "graph topology can have a bigger impact on the workload
// characteristics than the algorithm".
package charact

import (
	"fmt"
	"strings"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// Profile is one instrumented kernel execution.
type Profile struct {
	Kernel string
	Graph  string
	// Rounds is the number of synchronized rounds (BFS levels, SSSP bucket
	// passes, PR iterations).
	Rounds int
	// EdgesExamined counts adjacency entries touched.
	EdgesExamined int64
	// FrontierSizes records the active-vertex count per round.
	FrontierSizes []int64
	// PushRounds and PullRounds break BFS rounds down by direction.
	PushRounds, PullRounds int
}

// MaxFrontier returns the largest per-round frontier.
func (p Profile) MaxFrontier() int64 {
	var m int64
	for _, f := range p.FrontierSizes {
		if f > m {
			m = f
		}
	}
	return m
}

// EdgesPerRound returns the mean edges examined per round.
func (p Profile) EdgesPerRound() float64 {
	if p.Rounds == 0 {
		return 0
	}
	return float64(p.EdgesExamined) / float64(p.Rounds)
}

// BFS runs a serial instrumented direction-optimizing BFS and returns its
// profile. The direction heuristic matches the GAP reference (alpha=15,
// beta=18), so the push/pull round counts are the ones the benchmark's BFS
// actually executes.
func BFS(g *graph.Graph, src graph.NodeID) Profile {
	p := Profile{Kernel: "BFS"}
	n := g.NumNodes()
	if n == 0 {
		return p
	}
	parent := make([]graph.NodeID, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	frontier := []graph.NodeID{src}
	inFrontier := make([]bool, n)
	edgesToCheck := g.NumEdges()
	scout := g.OutDegree(src)
	const alpha, beta = 15, 18

	for len(frontier) > 0 {
		p.Rounds++
		p.FrontierSizes = append(p.FrontierSizes, int64(len(frontier)))
		if scout > edgesToCheck/alpha {
			// Pull round.
			p.PullRounds++
			for i := range inFrontier {
				inFrontier[i] = false
			}
			for _, u := range frontier {
				inFrontier[u] = true
			}
			var next []graph.NodeID
			for v := int32(0); v < n; v++ {
				if parent[v] >= 0 {
					continue
				}
				for _, u := range g.InNeighbors(v) {
					p.EdgesExamined++
					if inFrontier[u] {
						parent[v] = u
						next = append(next, v)
						break
					}
				}
			}
			frontier = next
			scout = 1
		} else {
			// Push round.
			p.PushRounds++
			edgesToCheck -= scout
			scout = 0
			var next []graph.NodeID
			for _, u := range frontier {
				for _, v := range g.OutNeighbors(u) {
					p.EdgesExamined++
					if parent[v] < 0 {
						parent[v] = u
						next = append(next, v)
						scout += g.OutDegree(v)
					}
				}
			}
			frontier = next
		}
	}
	return p
}

// SSSP runs a serial instrumented delta-stepping pass and profiles its
// bucket structure: Rounds is the number of bucket passes (the
// synchronizations bucket fusion exists to remove).
func SSSP(g *graph.Graph, src graph.NodeID, delta kernel.Dist) Profile {
	p := Profile{Kernel: "SSSP"}
	n := int(g.NumNodes())
	if n == 0 {
		return p
	}
	if delta <= 0 {
		delta = 16
	}
	dist := make([]kernel.Dist, n)
	for i := range dist {
		dist[i] = kernel.Inf
	}
	dist[src] = 0
	bins := [][]graph.NodeID{{src}}
	for b := 0; b < len(bins); b++ {
		lo := kernel.Dist(b) * delta
		hi := lo + delta
		for len(bins[b]) > 0 {
			p.Rounds++
			frontier := bins[b]
			bins[b] = nil
			p.FrontierSizes = append(p.FrontierSizes, int64(len(frontier)))
			for _, u := range frontier {
				du := dist[u]
				if du < lo || du >= hi {
					continue
				}
				ws := g.OutWeights(u)
				for i, v := range g.OutNeighbors(u) {
					p.EdgesExamined++
					nd := du + ws[i]
					if nd < dist[v] {
						dist[v] = nd
						nb := int(nd / delta)
						for nb >= len(bins) {
							bins = append(bins, nil)
						}
						bins[nb] = append(bins[nb], v)
					}
				}
			}
		}
	}
	return p
}

// PR runs instrumented Jacobi PageRank and profiles its iteration count and
// total edge traffic.
func PR(g *graph.Graph) Profile {
	p := Profile{Kernel: "PR"}
	n := int(g.NumNodes())
	if n == 0 {
		return p
	}
	base := (1 - kernel.PRDamping) / float64(n)
	ranks := make([]float64, n)
	contrib := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	for it := 0; it < kernel.PRMaxIters; it++ {
		p.Rounds++
		p.FrontierSizes = append(p.FrontierSizes, int64(n))
		dangling := 0.0
		for u := 0; u < n; u++ {
			if d := g.OutDegree(graph.NodeID(u)); d > 0 {
				contrib[u] = ranks[u] / float64(d)
			} else {
				contrib[u] = 0
				dangling += ranks[u]
			}
		}
		share := kernel.PRDamping * dangling / float64(n)
		var delta float64
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(graph.NodeID(v)) {
				p.EdgesExamined++
				sum += contrib[u]
			}
			next := base + share + kernel.PRDamping*sum
			d := next - ranks[v]
			if d < 0 {
				d = -d
			}
			delta += d
			ranks[v] = next
		}
		if delta < kernel.PRTolerance {
			break
		}
	}
	return p
}

// Report renders profiles as an aligned text table plus a frontier
// "sparkline" per profile — the textual stand-in for a characterization
// figure.
func Report(profiles []Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %8s %14s %14s %10s %6s %6s\n",
		"Graph", "Kernel", "Rounds", "Edges", "Edges/Round", "MaxFront", "Push", "Pull")
	for _, p := range profiles {
		fmt.Fprintf(&b, "%-8s %-8s %8d %14d %14.0f %10d %6d %6d\n",
			p.Graph, p.Kernel, p.Rounds, p.EdgesExamined, p.EdgesPerRound(),
			p.MaxFrontier(), p.PushRounds, p.PullRounds)
	}
	b.WriteByte('\n')
	for _, p := range profiles {
		fmt.Fprintf(&b, "%-8s %-8s frontier profile: %s\n", p.Graph, p.Kernel, sparkline(p.FrontierSizes, 60))
	}
	return b.String()
}

// sparkline compresses a series into width buckets of block characters.
func sparkline(series []int64, width int) string {
	if len(series) == 0 {
		return "(empty)"
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	if len(series) < width {
		width = len(series)
	}
	var max int64 = 1
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	out := make([]rune, width)
	for i := 0; i < width; i++ {
		lo := i * len(series) / width
		hi := (i + 1) * len(series) / width
		if hi == lo {
			hi = lo + 1
		}
		var bucketMax int64
		for _, v := range series[lo:hi] {
			if v > bucketMax {
				bucketMax = v
			}
		}
		idx := int(bucketMax * int64(len(blocks)-1) / max)
		out[i] = blocks[idx]
	}
	return string(out)
}

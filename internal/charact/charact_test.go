package charact_test

import (
	"strings"
	"testing"

	"gapbench/internal/charact"
	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/verify"
)

func TestBFSProfileRoadVsKron(t *testing.T) {
	road, err := generate.Road(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	kron, err := generate.Kron(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr := charact.BFS(road, 0)
	pk := charact.BFS(kron, pickSource(kron))

	// The §VI topology story in numbers: Road needs orders of magnitude
	// more rounds than the low-diameter Kron graph.
	if pr.Rounds < 10*pk.Rounds {
		t.Fatalf("road rounds %d not >> kron rounds %d", pr.Rounds, pk.Rounds)
	}
	// Kron's BFS must actually use the pull direction in its dense middle;
	// Road's tiny frontiers must stay push-only.
	if pk.PullRounds == 0 {
		t.Error("kron BFS never switched to pull")
	}
	if pr.PullRounds*5 > pr.Rounds {
		t.Errorf("road BFS pulled %d of %d rounds; its thin frontiers should rarely justify it", pr.PullRounds, pr.Rounds)
	}
	if pr.PushRounds+pr.PullRounds != pr.Rounds {
		t.Error("push+pull rounds do not sum to total")
	}
}

func TestBFSProfileCountsAreConsistent(t *testing.T) {
	g, err := generate.Web(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := pickSource(g)
	p := charact.BFS(g, src)
	if p.Rounds != len(p.FrontierSizes) {
		t.Fatalf("rounds %d != frontier records %d", p.Rounds, len(p.FrontierSizes))
	}
	// Total frontier vertices equals reachable count (every vertex enters
	// the frontier exactly once).
	var total int64
	for _, f := range p.FrontierSizes {
		total += f
	}
	reachable := int64(0)
	for _, d := range verify.BFSDepths(g, src) {
		if d >= 0 {
			reachable++
		}
	}
	if total != reachable {
		t.Fatalf("frontier total %d != reachable %d", total, reachable)
	}
	if p.MaxFrontier() <= 0 || p.EdgesPerRound() <= 0 {
		t.Fatal("degenerate profile statistics")
	}
}

func TestSSSPProfileDeltaControlsRounds(t *testing.T) {
	g, err := generate.Road(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	small := charact.SSSP(g, 0, 4)
	large := charact.SSSP(g, 0, 1024)
	// Wider buckets mean fewer synchronized passes — the knob GAP exposes.
	if large.Rounds >= small.Rounds {
		t.Fatalf("delta=1024 rounds %d not below delta=4 rounds %d", large.Rounds, small.Rounds)
	}
	// But wider buckets re-relax more edges.
	if large.EdgesExamined <= small.EdgesExamined/2 {
		t.Fatalf("suspicious edge counts: %d vs %d", large.EdgesExamined, small.EdgesExamined)
	}
}

func TestPRProfileConverges(t *testing.T) {
	g, err := generate.Urand(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := charact.PR(g)
	if p.Rounds < 2 || p.Rounds >= 100 {
		t.Fatalf("PR rounds = %d, expected a converged iteration count", p.Rounds)
	}
	if p.EdgesExamined != int64(p.Rounds)*g.NumEdges() {
		t.Fatalf("PR edges %d != rounds x edges %d", p.EdgesExamined, int64(p.Rounds)*g.NumEdges())
	}
}

func TestReportRenders(t *testing.T) {
	g, err := generate.Kron(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := charact.BFS(g, pickSource(g))
	p.Graph = "Kron"
	out := charact.Report([]charact.Profile{p})
	for _, want := range []string{"Kron", "BFS", "frontier profile"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if charact.Report(nil) == "" {
		t.Fatal("empty report should still render a header")
	}
}

func pickSource(g *graph.Graph) graph.NodeID {
	for v := int32(0); v < g.NumNodes(); v++ {
		if g.OutDegree(v) > 0 {
			return v
		}
	}
	return 0
}

package charact

import (
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "(empty)" {
		t.Fatalf("empty series = %q", got)
	}
	// Monotone series compresses to a non-decreasing ramp.
	series := []int64{1, 2, 4, 8, 16, 32, 64, 128}
	out := []rune(sparkline(series, 8))
	if len(out) != 8 {
		t.Fatalf("width = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("ramp not monotone: %q", string(out))
		}
	}
	// The peak bucket uses the tallest block.
	if out[len(out)-1] != '█' {
		t.Fatalf("max bucket = %q", out[len(out)-1])
	}
	// Series shorter than the width keeps its own length.
	if got := sparkline([]int64{5, 1}, 60); len([]rune(got)) != 2 {
		t.Fatalf("short series rendered %q", got)
	}
	// Compression buckets take the max of their window.
	long := make([]int64, 120)
	long[60] = 100 // single spike
	s := sparkline(long, 60)
	if !strings.ContainsRune(s, '█') {
		t.Fatalf("spike lost in compression: %q", s)
	}
}

func TestProfileAccessorsEmpty(t *testing.T) {
	var p Profile
	if p.MaxFrontier() != 0 || p.EdgesPerRound() != 0 {
		t.Fatal("empty profile accessors nonzero")
	}
}

package core_test

// End-to-end fault injection: chaos-wrapped frameworks run through the real
// Runner/RunSuite pipeline and every injected failure must surface as
// exactly the right per-cell status while the suite itself keeps going.
// These tests are armed by `go test -tags=chaos`; without the tag the
// injector is inert and the tests skip.

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gapbench/internal/chaos"
	"gapbench/internal/core"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/testutil"
)

func requireChaos(t *testing.T) {
	t.Helper()
	if !chaos.Enabled() {
		t.Skip("needs -tags=chaos")
	}
}

// chaosRunner is the shared shape for the e2e tests: short trials, a real
// deadline, no retries unless the test is about retries.
func chaosRunner() *core.Runner {
	return &core.Runner{
		Trials: 1, BaselineWorkers: 2, OptimizedWorkers: 2, Verify: true,
		Timeout: 150 * time.Millisecond, Grace: 2 * time.Second,
		Retry: &core.RetryPolicy{},
	}
}

func TestChaosSuiteSurvivesMixedFaults(t *testing.T) {
	requireChaos(t)
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := chaosRunner()
	defer r.Close()

	// One injected failure per failure class, all on the same wrapped
	// framework; untargeted kernels must stay OK.
	fw := chaos.Wrap(core.FrameworkByName("GAP"), 7,
		&chaos.Fault{Kernel: "BFS", Mode: chaos.Panic},
		&chaos.Fault{Kernel: "PR", Mode: chaos.Stall},
		&chaos.Fault{Kernel: "CC", Mode: chaos.Corrupt},
	)
	results, err := r.RunSuite(
		[]kernel.Framework{fw}, []*core.Input{in}, []kernel.Mode{kernel.Baseline},
		[]core.Kernel{core.BFS, core.PR, core.CC, core.TC}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[core.Kernel]core.Status{
		core.BFS: core.Panicked,
		core.PR:  core.TimedOut,
		core.CC:  core.VerifyFailed,
		core.TC:  core.OK,
	}
	if len(results) != len(want) {
		t.Fatalf("suite returned %d cells, want %d", len(results), len(want))
	}
	for _, res := range results {
		if res.Status != want[res.Kernel] {
			t.Errorf("%s: status = %v, want %v (err: %s)", res.Kernel, res.Status, want[res.Kernel], res.Err)
		}
		if res.Framework != "GAP" {
			t.Errorf("%s: injector leaked into the framework name: %q", res.Kernel, res.Framework)
		}
	}
	for _, res := range results {
		switch res.Kernel {
		case core.BFS:
			if !strings.Contains(res.Err, "chaos: injected panic") {
				t.Errorf("BFS err %q does not identify the injected panic", res.Err)
			}
		case core.PR:
			if !strings.Contains(res.Err, "deadline") {
				t.Errorf("PR err %q does not mention the deadline", res.Err)
			}
		}
	}
	if r.Abandoned() != 0 {
		t.Errorf("cooperative faults abandoned %d machines", r.Abandoned())
	}
}

func TestChaosCorruptionIsDeterministic(t *testing.T) {
	requireChaos(t)
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	run := func() core.Result {
		r := chaosRunner()
		defer r.Close()
		fw := chaos.Wrap(core.FrameworkByName("GAP"), 42,
			&chaos.Fault{Kernel: "CC", Mode: chaos.Corrupt})
		return r.RunCell(fw, core.CC, in, kernel.Baseline)
	}
	a, b := run(), run()
	if a.Status != core.VerifyFailed || b.Status != core.VerifyFailed {
		t.Fatalf("corrupt cells: %v / %v, want VerifyFailed", a.Status, b.Status)
	}
	// Same seed, same graph, same corruption site: the oracle must reject
	// both runs with the identical message.
	if a.Err != b.Err {
		t.Errorf("corruption not deterministic under a fixed seed:\n%s\nvs\n%s", a.Err, b.Err)
	}
}

func TestChaosOnceFaultIsRetriedToOK(t *testing.T) {
	requireChaos(t)
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := chaosRunner()
	r.Retry = nil // default policy: one retry for Panicked/TimedOut
	defer r.Close()
	fw := chaos.Wrap(core.FrameworkByName("GAP"), 7,
		&chaos.Fault{Kernel: "TC", Mode: chaos.Panic, Once: true})
	res := r.RunCell(fw, core.TC, in, kernel.Baseline)
	if res.Status != core.OK || !res.Verified {
		t.Fatalf("transient chaos fault not recovered: %+v", res)
	}
	if res.Retries != 1 || len(res.TrialRecords) != 2 {
		t.Fatalf("retry accounting: %+v", res)
	}
	if res.TrialRecords[0].Status != core.Panicked || res.TrialRecords[1].Status != core.OK {
		t.Fatalf("TrialRecords = %+v, want [Panicked, OK]", res.TrialRecords)
	}
}

func TestChaosHangAbandonsMachineAndSuiteContinues(t *testing.T) {
	requireChaos(t)
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := chaosRunner()
	r.Timeout = 50 * time.Millisecond
	r.Grace = 100 * time.Millisecond
	defer r.Close()
	fw := chaos.Wrap(core.FrameworkByName("GAP"), 7,
		&chaos.Fault{Kernel: "SSSP", Mode: chaos.Hang, HangExtra: 500 * time.Millisecond})
	results, err := r.RunSuite(
		[]kernel.Framework{fw}, []*core.Input{in}, []kernel.Mode{kernel.Baseline},
		[]core.Kernel{core.SSSP, core.TC}, nil)
	if err != nil {
		t.Fatal(err)
	}
	byKernel := map[core.Kernel]core.Result{}
	for _, res := range results {
		byKernel[res.Kernel] = res
	}
	if res := byKernel[core.SSSP]; res.Status != core.TimedOut || !strings.Contains(res.Err, "machine abandoned") {
		t.Fatalf("hang cell: %+v", res)
	}
	if res := byKernel[core.TC]; res.Status != core.OK || !res.Verified {
		t.Fatalf("suite did not continue past the hang: %+v", res)
	}
	if r.Abandoned() != 1 {
		t.Fatalf("abandoned = %d, want 1", r.Abandoned())
	}
	r.ReapAbandoned() // the hang's HangExtra has elapsed; join for the leak check
}

func TestChaosJournalResumeSkipsCompletedCells(t *testing.T) {
	requireChaos(t)
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	path := filepath.Join(t.TempDir(), "chaos.jsonl")

	// First run dies on BFS (deterministic panic) after TC completed —
	// kernel order puts TC last, so run TC first via the kernels slice.
	r1 := chaosRunner()
	r1.JournalPath = path
	fw1 := chaos.Wrap(core.FrameworkByName("GAP"), 7,
		&chaos.Fault{Kernel: "BFS", Mode: chaos.Panic})
	res1, err := r1.RunSuite([]kernel.Framework{fw1}, []*core.Input{in},
		[]kernel.Mode{kernel.Baseline}, []core.Kernel{core.TC, core.BFS}, nil)
	r1.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(res1) != 2 || res1[0].Status != core.OK || res1[1].Status != core.Panicked {
		t.Fatalf("first chaos run: %+v", res1)
	}

	// Second run resumes without the fault: the journaled TC cell (and the
	// journaled Panicked BFS cell) replay; only re-requested kernels beyond
	// the journal execute. A journaled failure is a recorded outcome — the
	// operator clears it from the journal to re-run it, the runner does not
	// second-guess.
	var executed int
	r2 := chaosRunner()
	r2.JournalPath = path
	r2.Resume = true
	fw2 := chaos.Wrap(core.FrameworkByName("GAP"), 7) // no faults this time
	res2, err := r2.RunSuite([]kernel.Framework{fw2}, []*core.Input{in},
		[]kernel.Mode{kernel.Baseline}, []core.Kernel{core.TC, core.BFS, core.PR},
		func(res core.Result) {
			if !res.Resumed {
				executed++
			}
		})
	r2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if executed != 1 {
		t.Fatalf("resume executed %d cells, want 1 (PR only)", executed)
	}
	byKernel := map[core.Kernel]core.Result{}
	for _, res := range res2 {
		byKernel[res.Kernel] = res
	}
	if !byKernel[core.TC].Resumed || !byKernel[core.BFS].Resumed || byKernel[core.PR].Resumed {
		t.Fatalf("resume flags wrong: %+v", res2)
	}
	if byKernel[core.BFS].Status != core.Panicked {
		t.Errorf("journaled failure rewrote its status: %+v", byKernel[core.BFS])
	}
	if byKernel[core.PR].Status != core.OK {
		t.Errorf("fresh PR cell: %+v", byKernel[core.PR])
	}
}

// TestChaosCorruptGraphCaughtByGraphguard closes the loop between the chaos
// fault model and the graphguard sanitizer: a CorruptGraph fault flips CSR
// memory that the oracle cannot notice (it verifies against the same
// corrupted graph), so only the runner's seal check can convict it — as a
// Panicked record naming the array, not a VerifyFailed. Needs both tags:
// go test -tags='chaos graphguard'.
func TestChaosCorruptGraphCaughtByGraphguard(t *testing.T) {
	requireChaos(t)
	if !graph.GuardEnabled() {
		t.Skip("needs -tags='chaos graphguard'")
	}
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := chaosRunner()
	defer r.Close()

	fw := chaos.Wrap(core.FrameworkByName("GAP"), 11,
		&chaos.Fault{Kernel: "BFS", Mode: chaos.CorruptGraph})
	res := r.RunCell(fw, core.BFS, in, kernel.Baseline)
	if res.Status == core.VerifyFailed {
		t.Fatalf("CorruptGraph surfaced as VerifyFailed (err %q): the oracle cannot own this fault", res.Err)
	}
	if res.Status != core.Panicked {
		t.Fatalf("CorruptGraph cell: status = %v (err %q), want Panicked", res.Status, res.Err)
	}
	if !strings.Contains(res.Err, "graphguard") || !strings.Contains(res.Err, "outNeigh") {
		t.Errorf("err %q does not name the graphguard seal and the corrupted array", res.Err)
	}
}

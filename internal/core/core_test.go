package core_test

import (
	"strings"
	"testing"

	"gapbench/internal/core"
	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

type (
	gGraph = graph.Graph
	gNode  = graph.NodeID
)

func TestDefaultSuiteShape(t *testing.T) {
	specs := core.DefaultSuite(10)
	if len(specs) != 5 {
		t.Fatalf("suite has %d specs, want 5", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		if s.Delta <= 0 {
			t.Errorf("%s: delta %d", s.Name, s.Delta)
		}
	}
	for _, want := range generate.Names {
		if !names[want] {
			t.Errorf("suite missing %s", want)
		}
	}
	// Road carries the largest scale (small edge count but big diameter).
	for _, s := range specs {
		if s.Name == generate.NameRoad && s.Scale <= 10 {
			t.Errorf("road scale %d not above base", s.Scale)
		}
	}
}

func TestLoadInputPreparesEverything(t *testing.T) {
	in, err := core.LoadInput(core.GraphSpec{Name: "Kron", Scale: 7, Seed: 3, Delta: 16, SourceSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if in.Graph == nil || in.Undirected == nil || in.Relabeled == nil {
		t.Fatal("missing views")
	}
	if len(in.Sources) == 0 || len(in.BCRoots) == 0 {
		t.Fatal("missing sources")
	}
	for _, s := range in.Sources {
		if in.Graph.OutDegree(s) == 0 {
			t.Errorf("source %d has no out-edges", s)
		}
	}
	for _, roots := range in.BCRoots {
		if len(roots) != kernel.BCSources {
			t.Errorf("BC root set size %d, want %d", len(roots), kernel.BCSources)
		}
	}
	if _, err := core.LoadInput(core.GraphSpec{Name: "bogus", Scale: 7}); err == nil {
		t.Error("bogus graph name accepted")
	}
}

func TestPickSourcesDeterministic(t *testing.T) {
	in, err := core.LoadInput(core.GraphSpec{Name: "Urand", Scale: 7, Seed: 3, SourceSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a := core.PickSources(in.Graph, 8, 42)
	b := core.PickSources(in.Graph, 8, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("source picking not deterministic")
		}
	}
}

func TestRegistry(t *testing.T) {
	fs := core.Frameworks()
	if len(fs) != 6 {
		t.Fatalf("registry has %d frameworks, want 6", len(fs))
	}
	if fs[0].Name() != core.ReferenceName {
		t.Fatalf("first framework is %s, want the reference %s", fs[0].Name(), core.ReferenceName)
	}
	for _, f := range fs {
		if core.FrameworkByName(f.Name()) == nil {
			t.Errorf("FrameworkByName(%q) = nil", f.Name())
		}
		if _, ok := f.(kernel.Describer); !ok {
			t.Errorf("%s lacks Table II/III metadata", f.Name())
		}
	}
	if core.FrameworkByName("nope") != nil {
		t.Error("unknown framework resolved")
	}
	names := core.FrameworkNames()
	if len(names) != 6 || names[0] != "GAP" {
		t.Fatalf("names = %v", names)
	}
}

func TestRunCellVerifiesAndTimes(t *testing.T) {
	in, err := core.LoadInput(core.GraphSpec{Name: "Kron", Scale: 7, Seed: 1, Delta: 16, SourceSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := &core.Runner{Trials: 2, BaselineWorkers: 2, OptimizedWorkers: 4, Verify: true}
	for _, k := range core.Kernels {
		res := r.RunCell(core.FrameworkByName("GAP"), k, in, kernel.Baseline)
		if !res.Verified {
			t.Errorf("%s: verification failed: %s", k, res.Err)
		}
		if res.Seconds <= 0 || res.AvgSeconds < res.Seconds {
			t.Errorf("%s: timing wrong: best=%v avg=%v", k, res.Seconds, res.AvgSeconds)
		}
		if res.Trials != 2 {
			t.Errorf("%s: trials = %d", k, res.Trials)
		}
	}
}

func TestRunCellCatchesWrongResults(t *testing.T) {
	in, err := core.LoadInput(core.GraphSpec{Name: "Urand", Scale: 6, Seed: 1, Delta: 16, SourceSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := &core.Runner{Trials: 1, BaselineWorkers: 1, OptimizedWorkers: 1, Verify: true}
	res := r.RunCell(brokenFramework{}, core.TC, in, kernel.Baseline)
	if res.Verified {
		t.Fatal("broken framework passed verification")
	}
	if !strings.Contains(res.Err, "tc") {
		t.Fatalf("error %q does not identify the kernel", res.Err)
	}
}

func TestRunSuiteAndSpeedups(t *testing.T) {
	in, err := core.LoadInput(core.GraphSpec{Name: "Kron", Scale: 6, Seed: 1, Delta: 16, SourceSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := &core.Runner{Trials: 1, BaselineWorkers: 2, OptimizedWorkers: 2, Verify: true}
	fws := []kernel.Framework{core.FrameworkByName("GAP"), core.FrameworkByName("GKC")}
	var progressed int
	results, err := r.RunSuite(fws, []*core.Input{in}, []kernel.Mode{kernel.Baseline}, []core.Kernel{core.BFS, core.TC}, func(core.Result) { progressed++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 || progressed != 4 {
		t.Fatalf("results = %d progressed = %d, want 4", len(results), progressed)
	}
	speedups := core.SpeedupVsReference(results)
	if len(speedups) != 2 {
		t.Fatalf("speedups = %v, want 2 GKC entries", speedups)
	}
	for key, ratio := range speedups {
		if !strings.HasPrefix(key, "GKC|") || ratio <= 0 {
			t.Fatalf("bad speedup entry %s=%v", key, ratio)
		}
	}
}

// brokenFramework returns wrong answers for everything; only TC is used.
type brokenFramework struct{}

func (brokenFramework) Name() string { return "Broken" }
func (brokenFramework) BFS(g *gGraph, src gNode, opt kernel.Options) []gNode {
	return make([]gNode, g.NumNodes())
}
func (brokenFramework) SSSP(g *gGraph, src gNode, opt kernel.Options) []kernel.Dist {
	return make([]kernel.Dist, g.NumNodes())
}
func (brokenFramework) PR(g *gGraph, opt kernel.Options) []float64 {
	return make([]float64, g.NumNodes())
}
func (brokenFramework) CC(g *gGraph, opt kernel.Options) []gNode {
	return make([]gNode, g.NumNodes())
}
func (brokenFramework) BC(g *gGraph, sources []gNode, opt kernel.Options) []float64 {
	return make([]float64, g.NumNodes())
}
func (brokenFramework) TC(g *gGraph, opt kernel.Options) int64 { return -1 }

package core_test

import (
	"math"
	"testing"
	"testing/quick"

	"gapbench/internal/core"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// TestCrossValidationProperty is the paper's cross-validation made a
// property test: on random graphs, all six frameworks must agree with each
// other (not merely with the oracle) on every kernel's semantic content —
// BFS reachability and depths, SSSP distances, CC partitions, PR scores, BC
// scores, and the TC scalar.
func TestCrossValidationProperty(t *testing.T) {
	frameworks := core.Frameworks()
	f := func(raw []uint8, directed bool) bool {
		edges := make([]graph.WEdge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.WEdge{
				U: graph.NodeID(raw[i] % 24),
				V: graph.NodeID(raw[i+1] % 24),
				W: graph.Weight(raw[i]%250) + 1,
			})
		}
		g, err := graph.BuildWeighted(edges, graph.BuildOptions{NumNodes: 24, Directed: directed})
		if err != nil {
			return false
		}
		opt := kernel.Options{Workers: 2, UndirectedView: g.Undirected()}
		src := graph.NodeID(0)

		var refDist []kernel.Dist
		var refComp []graph.NodeID
		var refPR, refBC []float64
		var refTC int64
		var refReach []bool
		for i, fw := range frameworks {
			parents := fw.BFS(g, src, opt)
			reach := make([]bool, len(parents))
			for v, p := range parents {
				reach[v] = p >= 0
			}
			dist := fw.SSSP(g, src, opt)
			comp := fw.CC(g, opt)
			pr := fw.PR(g, opt)
			bc := fw.BC(g, []graph.NodeID{src}, opt)
			tc := fw.TC(g, opt)
			if i == 0 {
				refReach, refDist, refComp, refPR, refBC, refTC = reach, dist, comp, pr, bc, tc
				continue
			}
			for v := range reach {
				if reach[v] != refReach[v] {
					return false
				}
				if dist[v] != refDist[v] {
					return false
				}
				if math.Abs(pr[v]-refPR[v]) > 1e-3 {
					return false
				}
				if math.Abs(bc[v]-refBC[v]) > 1e-6 {
					return false
				}
				// Component labels may differ; same-partition relation must
				// match against vertex 0's component.
				if (comp[v] == comp[0]) != (refComp[v] == refComp[0]) {
					return false
				}
			}
			if tc != refTC {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

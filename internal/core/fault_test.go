package core_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gapbench/internal/core"
	"gapbench/internal/kernel"
	"gapbench/internal/testutil"
)

// zeroFramework returns zero-valued outputs for everything: a neutral base
// for the fault-injecting stubs below.
type zeroFramework struct{ name string }

func (f zeroFramework) Name() string { return f.name }
func (zeroFramework) BFS(g *gGraph, src gNode, opt kernel.Options) []gNode {
	return make([]gNode, g.NumNodes())
}
func (zeroFramework) SSSP(g *gGraph, src gNode, opt kernel.Options) []kernel.Dist {
	return make([]kernel.Dist, g.NumNodes())
}
func (zeroFramework) PR(g *gGraph, opt kernel.Options) []float64 {
	return make([]float64, g.NumNodes())
}
func (zeroFramework) CC(g *gGraph, opt kernel.Options) []gNode {
	return make([]gNode, g.NumNodes())
}
func (zeroFramework) BC(g *gGraph, sources []gNode, opt kernel.Options) []float64 {
	return make([]float64, g.NumNodes())
}
func (zeroFramework) TC(g *gGraph, opt kernel.Options) int64 { return 0 }

// panicky always panics in TC.
type panicky struct{ zeroFramework }

func (panicky) TC(g *gGraph, opt kernel.Options) int64 { panic("kernel exploded") }

// flaky panics on the first TC call, then delegates to the real reference
// framework — the transient failure the default retry policy exists for.
type flaky struct {
	kernel.Framework
	calls *atomic.Int32
}

func (f flaky) TC(g *gGraph, opt kernel.Options) int64 {
	if f.calls.Add(1) == 1 {
		panic("transient wobble")
	}
	return f.Framework.TC(g, opt)
}

// staller blocks in TC until the trial's cancellation token fires, then
// returns promptly — the cooperative-timeout path.
type staller struct{ zeroFramework }

func (staller) TC(g *gGraph, opt kernel.Options) int64 {
	for !opt.Cancelled() {
		time.Sleep(100 * time.Microsecond)
	}
	return 0
}

// hanger ignores cancellation entirely for hangFor — the machine-abandonment
// path. It does eventually return so tests can reap the abandoned pool.
const hangFor = 700 * time.Millisecond

type hanger struct{ zeroFramework }

func (hanger) TC(g *gGraph, opt kernel.Options) int64 {
	time.Sleep(hangFor)
	return 0
}

// badPreparer panics during the untimed load-time conversion.
type badPreparer struct{ zeroFramework }

func (badPreparer) Prepare(g *gGraph, undirected *gGraph) { panic("bad view build") }

func loadSmallInput(t *testing.T) *core.Input {
	t.Helper()
	in, err := core.LoadInput(core.GraphSpec{Name: "Kron", Scale: 6, Seed: 1, Delta: 16, SourceSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRunCellSandboxesPanics(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := &core.Runner{Trials: 2, BaselineWorkers: 2, OptimizedWorkers: 2, Verify: true}
	defer r.Close()
	res := r.RunCell(panicky{zeroFramework{"Panicky"}}, core.TC, in, kernel.Baseline)
	if res.Status != core.Panicked {
		t.Fatalf("status = %v, want Panicked", res.Status)
	}
	if res.Verified || res.Seconds != -1 {
		t.Errorf("panicked cell kept a result: verified=%v seconds=%v", res.Verified, res.Seconds)
	}
	if !strings.Contains(res.Err, "kernel exploded") {
		t.Errorf("Err %q does not carry the panic value", res.Err)
	}
	// Default policy: trial 0 attempted twice (both Panicked, with stacks),
	// trial 1 skipped because the cell's fate is sealed.
	if res.Retries != 1 {
		t.Errorf("Retries = %d, want 1", res.Retries)
	}
	if len(res.TrialRecords) != 3 {
		t.Fatalf("TrialRecords = %+v, want 3 entries", res.TrialRecords)
	}
	for i, want := range []core.Status{core.Panicked, core.Panicked, core.Skipped} {
		if res.TrialRecords[i].Status != want {
			t.Errorf("record %d status = %v, want %v", i, res.TrialRecords[i].Status, want)
		}
	}
	if res.TrialRecords[0].Stack == "" || !strings.Contains(res.TrialRecords[0].Stack, "TC") {
		t.Errorf("record 0 stack missing or unhelpful: %q", res.TrialRecords[0].Stack)
	}
	if res.TrialRecords[1].Attempt != 1 || res.TrialRecords[2].Trial != 1 {
		t.Errorf("attempt/trial indices wrong: %+v", res.TrialRecords)
	}

	// The harness survived: the same runner immediately runs a clean cell.
	ok := r.RunCell(core.FrameworkByName("GAP"), core.TC, in, kernel.Baseline)
	if ok.Status != core.OK || !ok.Verified {
		t.Fatalf("clean cell after panic: %+v", ok)
	}
}

func TestRetryRecoversTransientPanic(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := &core.Runner{Trials: 1, BaselineWorkers: 2, OptimizedWorkers: 2, Verify: true}
	defer r.Close()
	f := flaky{Framework: core.FrameworkByName("GAP"), calls: new(atomic.Int32)}
	res := r.RunCell(f, core.TC, in, kernel.Baseline)
	if res.Status != core.OK || !res.Verified {
		t.Fatalf("flaky cell did not recover: %+v", res)
	}
	if res.Retries != 1 {
		t.Errorf("Retries = %d, want 1", res.Retries)
	}
	if len(res.TrialRecords) != 2 ||
		res.TrialRecords[0].Status != core.Panicked ||
		res.TrialRecords[1].Status != core.OK {
		t.Errorf("TrialRecords = %+v, want [Panicked, OK]", res.TrialRecords)
	}
	if res.Seconds <= 0 {
		t.Errorf("recovered cell lost its timing: %v", res.Seconds)
	}
}

func TestNoRetryPolicySingleAttempt(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := &core.Runner{
		Trials: 1, BaselineWorkers: 1, OptimizedWorkers: 1, Verify: true,
		Retry: &core.RetryPolicy{}, // no retries at all
	}
	defer r.Close()
	res := r.RunCell(panicky{zeroFramework{"Panicky"}}, core.TC, in, kernel.Baseline)
	if res.Status != core.Panicked || res.Retries != 0 || len(res.TrialRecords) != 1 {
		t.Fatalf("no-retry policy violated: %+v", res)
	}
}

func TestVerifyFailureIsNotRetried(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := &core.Runner{Trials: 1, BaselineWorkers: 1, OptimizedWorkers: 1, Verify: true}
	defer r.Close()
	res := r.RunCell(brokenFramework{}, core.TC, in, kernel.Baseline)
	if res.Status != core.VerifyFailed {
		t.Fatalf("status = %v, want VerifyFailed", res.Status)
	}
	if res.Retries != 0 || len(res.TrialRecords) != 1 {
		t.Errorf("wrong answer was retried: %+v", res)
	}
}

func TestCooperativeTimeoutKeepsMachine(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := &core.Runner{
		Trials: 1, BaselineWorkers: 2, OptimizedWorkers: 2, Verify: true,
		Timeout: 100 * time.Millisecond, Grace: 2 * time.Second,
		Retry: &core.RetryPolicy{},
	}
	defer r.Close()
	res := r.RunCell(staller{zeroFramework{"Staller"}}, core.TC, in, kernel.Baseline)
	if res.Status != core.TimedOut {
		t.Fatalf("status = %v, want TimedOut (%s)", res.Status, res.Err)
	}
	if !strings.Contains(res.Err, "deadline") {
		t.Errorf("Err %q does not mention the deadline", res.Err)
	}
	if r.Abandoned() != 0 {
		t.Fatalf("cooperative kernel cost a machine: abandoned = %d", r.Abandoned())
	}
	// Same runner, same machine, clean cell.
	ok := r.RunCell(core.FrameworkByName("GAP"), core.TC, in, kernel.Baseline)
	if ok.Status != core.OK || !ok.Verified {
		t.Fatalf("clean cell after cooperative timeout: %+v", ok)
	}
}

func TestStuckKernelAbandonsMachine(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := &core.Runner{
		Trials: 1, BaselineWorkers: 2, OptimizedWorkers: 2, Verify: true,
		Timeout: 50 * time.Millisecond, Grace: 100 * time.Millisecond,
		Retry: &core.RetryPolicy{},
	}
	defer r.Close()
	start := time.Now()
	res := r.RunCell(hanger{zeroFramework{"Hanger"}}, core.TC, in, kernel.Baseline)
	if elapsed := time.Since(start); elapsed >= hangFor {
		t.Fatalf("runner blocked on the stuck kernel for %v", elapsed)
	}
	if res.Status != core.TimedOut || !strings.Contains(res.Err, "machine abandoned") {
		t.Fatalf("status = %v err = %q, want abandoned TimedOut", res.Status, res.Err)
	}
	if r.Abandoned() != 1 {
		t.Fatalf("abandoned = %d, want 1", r.Abandoned())
	}
	// The next cell transparently gets a fresh machine.
	ok := r.RunCell(core.FrameworkByName("GAP"), core.TC, in, kernel.Baseline)
	if ok.Status != core.OK || !ok.Verified {
		t.Fatalf("clean cell after abandonment: %+v", ok)
	}
	// The hanger eventually returns; reaping joins the poisoned pool so the
	// goroutine leak check above can hold.
	r.ReapAbandoned()
	if r.Abandoned() != 0 {
		t.Fatalf("reap left %d abandoned machines", r.Abandoned())
	}
}

// TestRepeatedAbandonmentSelfHeals drives the runner through several
// consecutive machine abandonments — the serving layer's worst day — and
// checks the self-healing invariants: every replacement machine inherits the
// mode's worker count, its cancel token still works (a staller times out
// cooperatively, costing no machine), and one ReapAbandoned joins every
// poisoned machine so nothing leaks.
func TestRepeatedAbandonmentSelfHeals(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := &core.Runner{
		Trials: 1, BaselineWorkers: 3, OptimizedWorkers: 2, Verify: true,
		Timeout: 50 * time.Millisecond, Grace: 100 * time.Millisecond,
		Retry: &core.RetryPolicy{},
	}
	defer r.Close()
	const rounds = 3
	for i := 0; i < rounds; i++ {
		res := r.RunCell(hanger{zeroFramework{"Hanger"}}, core.TC, in, kernel.Baseline)
		if res.Status != core.TimedOut || !strings.Contains(res.Err, "machine abandoned") {
			t.Fatalf("round %d: status = %v err = %q, want abandoned TimedOut", i, res.Status, res.Err)
		}
	}
	if got := r.Abandoned(); got != rounds {
		t.Fatalf("abandoned = %d, want %d", got, rounds)
	}

	// The replacement built after the last abandonment must inherit the
	// baseline worker count, not fall back to some default width.
	ok := r.RunCell(core.FrameworkByName("GAP"), core.TC, in, kernel.Baseline)
	if ok.Status != core.OK || !ok.Verified {
		t.Fatalf("clean cell after %d abandonments: %+v", rounds, ok)
	}
	if ok.Sync.Workers != 3 {
		t.Errorf("replacement machine width = %d, want the configured 3", ok.Sync.Workers)
	}

	// Cancellation must be live on the replacement too: a cooperative staller
	// times out via the token without costing another machine.
	res := r.RunCell(staller{zeroFramework{"Staller"}}, core.TC, in, kernel.Baseline)
	if res.Status != core.TimedOut || strings.Contains(res.Err, "machine abandoned") {
		t.Fatalf("staller on replacement: status = %v err = %q, want cooperative TimedOut", res.Status, res.Err)
	}
	if got := r.Abandoned(); got != rounds {
		t.Fatalf("cooperative timeout cost a machine: abandoned = %d, want %d", got, rounds)
	}

	// One reap joins all three hung machines; a second reap is a no-op.
	r.ReapAbandoned()
	if got := r.Abandoned(); got != 0 {
		t.Fatalf("reap left %d abandoned machines", got)
	}
	r.ReapAbandoned()
	if got := r.Abandoned(); got != 0 {
		t.Fatalf("second reap found %d machines", got)
	}
}

func TestUnknownKernelSkipped(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := &core.Runner{Trials: 1, BaselineWorkers: 1, OptimizedWorkers: 1}
	defer r.Close()
	res := r.RunCell(core.FrameworkByName("GAP"), core.Kernel("nope"), in, kernel.Baseline)
	if res.Status != core.Skipped || res.Verified {
		t.Fatalf("unknown kernel: %+v", res)
	}
}

func TestPreparePanicFailsCellNotSuite(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := &core.Runner{Trials: 2, BaselineWorkers: 1, OptimizedWorkers: 1}
	defer r.Close()
	res := r.RunCell(badPreparer{zeroFramework{"BadPrep"}}, core.TC, in, kernel.Baseline)
	if res.Status != core.Panicked || !strings.Contains(res.Err, "bad view build") {
		t.Fatalf("prepare panic not captured: %+v", res)
	}
	if len(res.TrialRecords) != 2 {
		t.Fatalf("TrialRecords = %+v, want 2 skipped trials", res.TrialRecords)
	}
	for _, rec := range res.TrialRecords {
		if rec.Status != core.Skipped {
			t.Errorf("record %+v, want Skipped", rec)
		}
	}
}

func TestStatusTextRoundTrip(t *testing.T) {
	for _, s := range []core.Status{core.OK, core.VerifyFailed, core.Panicked, core.TimedOut, core.Skipped} {
		b, err := s.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		var back core.Status
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if back != s {
			t.Errorf("round trip %v -> %s -> %v", s, b, back)
		}
	}
	var bad core.Status
	if err := bad.UnmarshalText([]byte("Gremlins")); err == nil {
		t.Error("unknown status text accepted")
	}
}

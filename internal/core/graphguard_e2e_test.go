package core_test

// End-to-end graphguard: a kernel that mutates the shared CSR mid-trial must
// surface as a Panicked cell naming the corrupted array — caught by the
// runner's seal check at the trial boundary, not by the oracle (which would
// happily verify against the same corrupted graph). Armed by
// `go test -tags=graphguard`; without the tag the tests skip.

import (
	"strings"
	"testing"

	"gapbench/internal/core"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/testutil"
)

func requireGraphguard(t *testing.T) {
	t.Helper()
	if !graph.GuardEnabled() {
		t.Skip("needs -tags=graphguard")
	}
}

// graphMutator is the rogue kernel: its BFS bumps one adjacency entry in
// place before returning. (Test files are outside gapvet's facts engine, so
// the deliberate store needs no ignore directive.)
type graphMutator struct{ zeroFramework }

func (graphMutator) BFS(g *gGraph, src gNode, opt kernel.Options) []gNode {
	_, neigh := g.RawOut()
	neigh[0] = (neigh[0] + 1) % g.NumNodes()
	return make([]gNode, g.NumNodes())
}

func TestGraphguardCatchesKernelMutation(t *testing.T) {
	requireGraphguard(t)
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := &core.Runner{Trials: 1, BaselineWorkers: 2, OptimizedWorkers: 2,
		Verify: true, Retry: &core.RetryPolicy{}}
	defer r.Close()

	res := r.RunCell(graphMutator{zeroFramework{name: "mutant"}}, core.BFS, in, kernel.Baseline)
	if res.Status != core.Panicked {
		t.Fatalf("mutating kernel: status = %v (err %q), want Panicked", res.Status, res.Err)
	}
	if !strings.Contains(res.Err, "graphguard") || !strings.Contains(res.Err, "outNeigh") {
		t.Errorf("err %q does not name the graphguard seal and the corrupted array", res.Err)
	}
}

// TestGraphguardCleanKernelPasses pins the other side: a well-behaved kernel
// sails through the seal check, so the sanitizer adds no false positives.
func TestGraphguardCleanKernelPasses(t *testing.T) {
	requireGraphguard(t)
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	r := &core.Runner{Trials: 1, BaselineWorkers: 2, OptimizedWorkers: 2,
		Verify: true, Retry: &core.RetryPolicy{}}
	defer r.Close()

	res := r.RunCell(core.FrameworkByName("GAP"), core.BFS, in, kernel.Baseline)
	if res.Status != core.OK {
		t.Fatalf("clean kernel under graphguard: status = %v (err %q), want OK", res.Status, res.Err)
	}
}

package core

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"

	"gapbench/internal/kernel"
)

// The run journal is a JSONL file: one completed cell Result per line,
// appended as cells finish (never rewritten), so a run killed at cell N
// leaves cells 0..N-1 on disk. A later run with Resume set replays those
// cells and executes only the rest — the suite-level analogue of the
// per-trial sandbox: losing a cell to a crash must not mean losing the
// night's worth of cells before it.

// AppendJournal appends one completed cell to the JSONL journal at path,
// creating the file on first use.
func AppendJournal(path string, res Result) error {
	b, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("core: marshal journal line: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("core: open journal: %w", err)
	}
	_, werr := f.Write(append(b, '\n'))
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("core: write journal: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("core: close journal: %w", cerr)
	}
	return nil
}

// ReadJournal loads every journaled cell from path. A missing file is an
// empty journal (first run), not an error; a malformed line is an error with
// its line number — a corrupt journal should be inspected, not silently
// half-resumed.
func ReadJournal(path string) ([]Result, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: open journal: %w", err)
	}
	defer func() {
		_ = f.Close() // read-only; nothing to report
	}()
	var out []Result
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024) // stacks can push lines past the default token cap
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var res Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			return nil, fmt.Errorf("core: journal %s line %d: %w", path, line, err)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: read journal: %w", err)
	}
	return out, nil
}

// CellID is the journal identity of a cell: the (framework, kernel, graph,
// mode) coordinate, independent of timings and statuses.
func CellID(framework string, k Kernel, graphName string, mode kernel.Mode) string {
	return framework + "|" + string(k) + "|" + graphName + "|" + mode.String()
}

// CellID returns the Result's journal identity.
func (r Result) CellID() string {
	return CellID(r.Framework, r.Kernel, r.Graph, r.Mode)
}

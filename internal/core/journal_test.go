package core_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gapbench/internal/core"
	"gapbench/internal/kernel"
	"gapbench/internal/testutil"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	want := []core.Result{
		{
			Framework: "GAP", Kernel: core.BFS, Graph: "Kron", Mode: kernel.Baseline,
			Status: core.OK, Seconds: 0.25, AvgSeconds: 0.3, StdDev: 0.01,
			Trials: 2, Verified: true,
			TrialRecords: []core.TrialRecord{
				{Trial: 0, Status: core.OK, Seconds: 0.25},
				{Trial: 1, Status: core.OK, Seconds: 0.35},
			},
			Sync: core.SyncStats{Workers: 8, Regions: 12, Barriers: 90},
		},
		{
			Framework: "GKC", Kernel: core.TC, Graph: "Road", Mode: kernel.Optimized,
			Status: core.Panicked, Seconds: -1, Trials: 1, Retries: 1,
			Err: "GKC TC on Road: panic: boom",
			TrialRecords: []core.TrialRecord{
				{Trial: 0, Attempt: 0, Status: core.Panicked, Err: "boom", Stack: "goroutine 9\nfault()"},
				{Trial: 0, Attempt: 1, Status: core.Panicked, Err: "boom"},
			},
		},
	}
	for _, res := range want {
		if err := core.AppendJournal(path, res); err != nil {
			t.Fatal(err)
		}
	}
	got, err := core.ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// Statuses and modes journal as text, not as bare ints, so the file is
	// greppable during an overnight run.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, wantText := range []string{`"Panicked"`, `"Baseline"`, `"Optimized"`, `"OK"`} {
		if !strings.Contains(string(raw), wantText) {
			t.Errorf("journal missing readable token %s:\n%s", wantText, raw)
		}
	}
}

func TestReadJournalEdgeCases(t *testing.T) {
	// Missing file: empty journal, no error.
	got, err := core.ReadJournal(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || got != nil {
		t.Fatalf("missing journal: got %v, %v", got, err)
	}
	// Corrupt line: error naming the line, not a silent half-resume.
	path := filepath.Join(t.TempDir(), "corrupt.jsonl")
	if err := core.AppendJournal(path, core.Result{Framework: "GAP", Kernel: core.BFS, Graph: "Kron"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{half a cell\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := core.ReadJournal(path); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("corrupt journal error = %v, want line 2 named", err)
	}
}

func TestCellID(t *testing.T) {
	res := core.Result{Framework: "GAP", Kernel: core.BFS, Graph: "Kron", Mode: kernel.Optimized}
	if res.CellID() != core.CellID("GAP", core.BFS, "Kron", kernel.Optimized) {
		t.Fatal("CellID mismatch")
	}
	if !strings.Contains(res.CellID(), "Optimized") {
		t.Fatalf("CellID %q does not encode the mode", res.CellID())
	}
}

// countingFramework delegates to the reference and counts kernel executions,
// so the resume test can prove journaled cells are not re-run.
type countingFramework struct {
	kernel.Framework
	runs *int
}

func (f countingFramework) TC(g *gGraph, opt kernel.Options) int64 {
	*f.runs++
	return f.Framework.TC(g, opt)
}
func (f countingFramework) BFS(g *gGraph, src gNode, opt kernel.Options) []gNode {
	*f.runs++
	return f.Framework.BFS(g, src, opt)
}

func TestRunSuiteJournalAndResume(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	in := loadSmallInput(t)
	path := filepath.Join(t.TempDir(), "suite.jsonl")
	runs := 0
	fw := countingFramework{Framework: core.FrameworkByName("GAP"), runs: &runs}

	// First run: BFS only, journaled.
	r1 := &core.Runner{Trials: 1, BaselineWorkers: 2, OptimizedWorkers: 2, Verify: true, JournalPath: path}
	res1, err := r1.RunSuite([]kernel.Framework{fw}, []*core.Input{in}, []kernel.Mode{kernel.Baseline}, []core.Kernel{core.BFS}, nil)
	r1.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(res1) != 1 || res1[0].Status != core.OK || res1[0].Resumed {
		t.Fatalf("first run: %+v", res1)
	}
	if runs != 1 {
		t.Fatalf("first run executed %d kernels, want 1", runs)
	}

	// Second run: BFS + TC with resume. BFS replays from the journal; only
	// TC actually executes.
	runs = 0
	r2 := &core.Runner{Trials: 1, BaselineWorkers: 2, OptimizedWorkers: 2, Verify: true, JournalPath: path, Resume: true}
	res2, err := r2.RunSuite([]kernel.Framework{fw}, []*core.Input{in}, []kernel.Mode{kernel.Baseline}, []core.Kernel{core.BFS, core.TC}, nil)
	r2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 2 {
		t.Fatalf("second run results: %+v", res2)
	}
	var sawResumedBFS, sawFreshTC bool
	for _, res := range res2 {
		switch res.Kernel {
		case core.BFS:
			sawResumedBFS = res.Resumed && res.Status == core.OK
		case core.TC:
			sawFreshTC = !res.Resumed && res.Status == core.OK
		}
	}
	if !sawResumedBFS || !sawFreshTC {
		t.Fatalf("resume semantics wrong: %+v", res2)
	}
	if runs != 1 {
		t.Fatalf("second run executed %d kernels, want 1 (TC only)", runs)
	}

	// Third run: everything journaled now; nothing executes.
	runs = 0
	r3 := &core.Runner{Trials: 1, BaselineWorkers: 2, OptimizedWorkers: 2, Verify: true, JournalPath: path, Resume: true}
	res3, err := r3.RunSuite([]kernel.Framework{fw}, []*core.Input{in}, []kernel.Mode{kernel.Baseline}, []core.Kernel{core.BFS, core.TC}, nil)
	r3.Close()
	if err != nil {
		t.Fatal(err)
	}
	if runs != 0 {
		t.Fatalf("fully journaled run executed %d kernels, want 0", runs)
	}
	for _, res := range res3 {
		if !res.Resumed {
			t.Errorf("cell %s not resumed", res.CellID())
		}
	}
}

package core

// load.go holds the input-acquisition paths shared by every binary that
// mounts suite graphs — the batch CLI (cmd/gapbench), the serving daemon
// (cmd/gapd), and the load driver tooling: generate-or-reload through a cache
// directory, and mmap-loading a serialized graph with its suite spec rebuilt
// from file provenance.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gapbench/internal/generate"
	"gapbench/internal/graph"
)

// LoadCachedInput loads a serialized graph for spec from dir when present,
// generating and caching it otherwise; with no dir it always generates.
// Cache files are format v2 (.sg, mmap-loaded zero-copy); legacy v1 .gapb
// caches stay readable.
func LoadCachedInput(spec GraphSpec, dir string) (*Input, error) {
	if dir == "" {
		return LoadInput(spec)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, GraphFileName(spec, "sg"))
	if g, err := graph.Load(path); err == nil {
		in := PrepareInput(spec, g)
		in.File = path
		return in, nil
	}
	if legacy := filepath.Join(dir, GraphFileName(spec, "gapb")); fileExists(legacy) {
		g, err := graph.Load(legacy)
		if err != nil {
			return nil, fmt.Errorf("loading cached %s: %w", legacy, err)
		}
		in := PrepareInput(spec, g)
		in.File = legacy
		return in, nil
	}
	in, err := LoadInput(spec)
	if err != nil {
		return nil, err
	}
	in.Graph.SetProvenance(spec.Name, uint32(spec.Scale), spec.Seed)
	if err := in.Graph.SaveSG(path); err != nil {
		return nil, fmt.Errorf("caching %s: %w", path, err)
	}
	in.File = path
	return in, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// LoadInputFile mmap-loads one serialized graph and rebuilds its suite spec
// from the provenance stamped in the file header (the graph name selects the
// suite's per-graph Delta and SourceSeed; scale and seed come from the file).
func LoadInputFile(path string) (*Input, error) {
	g, err := graph.Load(path)
	if err != nil {
		return nil, err
	}
	name, provScale, provSeed := g.Provenance()
	spec, err := SpecForName(name)
	if err != nil {
		_ = g.Close() // the spec error is the one worth reporting
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	spec.Scale = int(provScale)
	spec.Seed = provSeed
	in := PrepareInput(spec, g)
	in.File = path
	return in, nil
}

// SpecForName finds the suite template (per-graph Delta, SourceSeed) for a
// provenance graph name.
func SpecForName(name string) (GraphSpec, error) {
	if name == "" {
		return GraphSpec{}, fmt.Errorf("file carries no provenance (regenerate it with graphgen)")
	}
	for _, s := range DefaultSuite(0) {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	return GraphSpec{}, fmt.Errorf("provenance graph %q is not a suite graph (have %v)", name, generate.Names)
}

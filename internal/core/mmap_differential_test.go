package core_test

import (
	"path/filepath"
	"strings"
	"testing"

	"gapbench/internal/core"
	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertSameCSR requires every raw CSR array of the two graphs to be
// element-identical — the mmap views must expose exactly the bytes the heap
// build produced.
func assertSameCSR(t *testing.T, name string, heap, mapped *graph.Graph) {
	t.Helper()
	hoi, hon := heap.RawOut()
	moi, mon := mapped.RawOut()
	if !int64sEqual(hoi, moi) || !int32sEqual(hon, mon) {
		t.Fatalf("%s: out-CSR differs between heap and mmap", name)
	}
	hii, hin := heap.RawIn()
	mii, min := mapped.RawIn()
	if !int64sEqual(hii, mii) || !int32sEqual(hin, min) {
		t.Fatalf("%s: in-CSR differs between heap and mmap", name)
	}
	if !int32sEqual(heap.RawOutWeights(), mapped.RawOutWeights()) ||
		!int32sEqual(heap.RawInWeights(), mapped.RawInWeights()) {
		t.Fatalf("%s: weights differ between heap and mmap", name)
	}
}

// TestHeapVsMmapDifferential is the end-to-end storage-backend differential:
// every suite graph is generated (heap arena), saved in format v2, and
// reloaded through the mmap path; the CSR arrays must be identical and the
// reference framework must pass oracle verification on all six kernels over
// both backends.
func TestHeapVsMmapDifferential(t *testing.T) {
	dir := t.TempDir()
	ref := core.Frameworks()[0]
	r := core.NewRunner()
	r.Trials = 1
	defer r.Close()

	for _, spec := range core.DefaultSuite(6) {
		g, err := generate.ByName(spec.Name, spec.Scale, spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, core.GraphFileName(spec, "sg"))
		if err := g.SaveSG(path); err != nil {
			t.Fatalf("%s: SaveSG: %v", spec.Name, err)
		}
		m, err := graph.Load(path)
		if err != nil {
			t.Fatalf("%s: Load: %v", spec.Name, err)
		}
		if !m.Arena().Mapped() {
			t.Fatalf("%s: loaded graph is not mmap-backed", spec.Name)
		}
		if g.Epoch() != m.Epoch() {
			t.Errorf("%s: epoch %#x (saved) != %#x (loaded)", spec.Name, g.Epoch(), m.Epoch())
		}
		assertSameCSR(t, spec.Name, g, m)

		heapIn := core.PrepareInput(spec, g)
		mmapIn := core.PrepareInput(spec, m)
		mmapIn.File = path
		for _, k := range core.Kernels {
			hres := r.RunCell(ref, k, heapIn, kernel.Baseline)
			mres := r.RunCell(ref, k, mmapIn, kernel.Baseline)
			if hres.Status != core.OK || !hres.Verified {
				t.Errorf("%s/%s heap: status %v (%s)", spec.Name, k, hres.Status, hres.Err)
			}
			if mres.Status != core.OK || !mres.Verified {
				t.Errorf("%s/%s mmap: status %v (%s)", spec.Name, k, mres.Status, mres.Err)
			}
			if mres.GraphFile != path || mres.GraphEpoch != m.Epoch() {
				t.Errorf("%s/%s: result identity (%q, %#x), want (%q, %#x)",
					spec.Name, k, mres.GraphFile, mres.GraphEpoch, path, m.Epoch())
			}
		}
		if err := mmapIn.Close(); err != nil {
			t.Errorf("%s: closing mmap input: %v", spec.Name, err)
		}
		if err := heapIn.Close(); err != nil {
			t.Errorf("%s: closing heap input: %v", spec.Name, err)
		}
	}
}

// TestResumeRefusesMismatchedInput journals a cell against one input, then
// attempts to resume against an input with the same suite name but different
// contents (and a different file) — the runner must refuse rather than mix
// measurements across inputs.
func TestResumeRefusesMismatchedInput(t *testing.T) {
	dir := t.TempDir()
	ref := core.Frameworks()[0]
	spec := core.GraphSpec{Name: generate.NameKron, Scale: 6, Seed: 3, Delta: 16, SourceSeed: 9}

	build := func(scale int, file string) *core.Input {
		g, err := generate.ByName(spec.Name, scale, spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, file)
		if err := g.SaveSG(path); err != nil {
			t.Fatal(err)
		}
		m, err := graph.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		in := core.PrepareInput(spec, m)
		in.File = path
		return in
	}

	journal := filepath.Join(dir, "run.jsonl")
	r := core.NewRunner()
	r.Trials = 1
	r.Verify = false
	r.JournalPath = journal
	defer r.Close()

	in1 := build(6, "a.sg")
	if _, err := r.RunSuite([]kernel.Framework{ref}, []*core.Input{in1},
		[]kernel.Mode{kernel.Baseline}, []core.Kernel{core.BFS}, nil); err != nil {
		t.Fatal(err)
	}

	// Same file name, different graph (regenerated in place at a larger
	// scale): resume must refuse on epoch.
	r2 := core.NewRunner()
	r2.Trials = 1
	r2.Verify = false
	r2.JournalPath = journal
	r2.Resume = true
	defer r2.Close()
	in2 := build(7, "a.sg")
	_, err := r2.RunSuite([]kernel.Framework{ref}, []*core.Input{in2},
		[]kernel.Mode{kernel.Baseline}, []core.Kernel{core.BFS}, nil)
	if err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("resume with changed input: err = %v, want epoch refusal", err)
	}

	// Identical graph, different file name: refuse on the file.
	in3 := build(6, "c.sg")
	_, err = r2.RunSuite([]kernel.Framework{ref}, []*core.Input{in3},
		[]kernel.Mode{kernel.Baseline}, []core.Kernel{core.BFS}, nil)
	if err == nil || !strings.Contains(err.Error(), "a.sg") {
		t.Fatalf("resume with renamed input: err = %v, want file refusal", err)
	}

	// The genuine original resumes cleanly.
	in4 := build(6, "a.sg")
	res, err := r2.RunSuite([]kernel.Framework{ref}, []*core.Input{in4},
		[]kernel.Mode{kernel.Baseline}, []core.Kernel{core.BFS}, nil)
	if err != nil {
		t.Fatalf("resume with matching input: %v", err)
	}
	if len(res) != 1 || !res[0].Resumed {
		t.Fatalf("matching resume did not replay the journaled cell: %+v", res)
	}
}

package core_test

import (
	"testing"

	"gapbench/internal/core"
	"gapbench/internal/kernel"
)

// TestPrepareViewsWarmsPreparers checks the untimed load phase actually
// reaches Preparer frameworks (SuiteSparse is the only one in the registry).
func TestPrepareViewsWarmsPreparers(t *testing.T) {
	in, err := core.LoadInput(core.GraphSpec{Name: "Kron", Scale: 6, Seed: 2, Delta: 16, SourceSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fws := core.Frameworks()
	core.PrepareViews(fws, []*core.Input{in})
	// After warmup, a SuiteSparse kernel run must not need to build matrices
	// inside the timed region; observable as the cell simply succeeding fast
	// and verified (behavioural smoke check).
	r := &core.Runner{Trials: 1, BaselineWorkers: 1, OptimizedWorkers: 1, Verify: true}
	res := r.RunCell(core.FrameworkByName("SuiteSparse"), core.PR, in, kernel.Baseline)
	if !res.Verified {
		t.Fatalf("prepared SuiteSparse PR failed: %s", res.Err)
	}
}

// TestModeOptionPlumbing checks the runner hands frameworks exactly what
// each rule set allows: no graph name or relabeled view in Baseline, both in
// Optimized.
func TestModeOptionPlumbing(t *testing.T) {
	in, err := core.LoadInput(core.GraphSpec{Name: "Urand", Scale: 6, Seed: 2, Delta: 16, SourceSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	spy := &optionsSpy{}
	r := &core.Runner{Trials: 1, BaselineWorkers: 3, OptimizedWorkers: 5, Verify: false}
	r.RunCell(spy, core.TC, in, kernel.Baseline)
	if spy.last.GraphName != "" || spy.last.RelabeledView != nil {
		t.Error("Baseline leaked Optimized-only knowledge")
	}
	if spy.last.Workers != 3 {
		t.Errorf("Baseline workers = %d, want 3", spy.last.Workers)
	}
	if spy.last.UndirectedView == nil {
		t.Error("UndirectedView missing (legal in both modes)")
	}
	r.RunCell(spy, core.TC, in, kernel.Optimized)
	if spy.last.GraphName != "Urand" || spy.last.RelabeledView == nil {
		t.Error("Optimized missing per-graph knowledge")
	}
	if spy.last.Workers != 5 {
		t.Errorf("Optimized workers = %d, want 5", spy.last.Workers)
	}
	if spy.last.Delta != 16 {
		t.Errorf("delta = %d, want the spec's 16", spy.last.Delta)
	}
}

// optionsSpy records the options it is invoked with.
type optionsSpy struct{ last kernel.Options }

func (*optionsSpy) Name() string { return "Spy" }
func (s *optionsSpy) BFS(g *gGraph, src gNode, opt kernel.Options) []gNode {
	s.last = opt
	return make([]gNode, g.NumNodes())
}
func (s *optionsSpy) SSSP(g *gGraph, src gNode, opt kernel.Options) []kernel.Dist {
	s.last = opt
	return make([]kernel.Dist, g.NumNodes())
}
func (s *optionsSpy) PR(g *gGraph, opt kernel.Options) []float64 {
	s.last = opt
	return make([]float64, g.NumNodes())
}
func (s *optionsSpy) CC(g *gGraph, opt kernel.Options) []gNode {
	s.last = opt
	return make([]gNode, g.NumNodes())
}
func (s *optionsSpy) BC(g *gGraph, sources []gNode, opt kernel.Options) []float64 {
	s.last = opt
	return make([]float64, g.NumNodes())
}
func (s *optionsSpy) TC(g *gGraph, opt kernel.Options) int64 {
	s.last = opt
	return 0
}

package core

import (
	"gapbench/internal/galois"
	"gapbench/internal/gap"
	"gapbench/internal/gkc"
	"gapbench/internal/graphit"
	"gapbench/internal/kernel"
	"gapbench/internal/lagraph"
	"gapbench/internal/nwgraph"
)

// ReferenceName is the name of the framework every Table V ratio is
// measured against.
const ReferenceName = "GAP"

// Frameworks returns fresh instances of all six evaluated frameworks in the
// paper's table order: the GAP reference first, then the five frameworks of
// Table II.
func Frameworks() []kernel.Framework {
	return []kernel.Framework{
		gap.New(),
		lagraph.New(),
		galois.New(),
		graphit.New(),
		gkc.New(),
		nwgraph.New(),
	}
}

// FrameworkNames returns the framework names in registry order.
func FrameworkNames() []string {
	fs := Frameworks()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name()
	}
	return names
}

// FrameworkByName returns a fresh instance of the named framework, or nil.
func FrameworkByName(name string) kernel.Framework {
	for _, f := range Frameworks() {
		if f.Name() == name {
			return f
		}
	}
	return nil
}

package core

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"gapbench/internal/kernel"
	"gapbench/internal/par"
	"gapbench/internal/verify"
)

// SyncStats is the synchronization structure of one cell: the counters the
// cell's machine accumulated across its timed trials. This is the observable
// form of the paper's launch-overhead argument (§V-A): Road columns show an
// order of magnitude more regions per second of runtime than Twitter columns,
// and frameworks with persistent executors (Galois) show it least.
type SyncStats struct {
	// Workers is the machine width the cell ran with.
	Workers int
	// Regions counts parallel-loop launches (including serial fast paths);
	// SerialRegions is the inline subset (no worker woken).
	Regions       int64
	SerialRegions int64
	// Barriers counts participant shares joined at region barriers.
	Barriers int64
	// Chunks counts dynamically dispatched work units.
	Chunks int64
	// EffectiveWorkers is the mean participant count over parallel regions.
	EffectiveWorkers float64
}

func syncStatsFrom(s par.Stats) SyncStats {
	return SyncStats{
		Workers:          s.Workers,
		Regions:          s.Regions,
		SerialRegions:    s.SerialRegions,
		Barriers:         s.Barriers,
		Chunks:           s.Chunks,
		EffectiveWorkers: s.EffectiveWorkers(),
	}
}

// Result is one cell of the evaluation: a (framework, kernel, graph, mode)
// combination with its best trial time and verification status.
type Result struct {
	Framework string
	Kernel    Kernel
	Graph     string
	Mode      kernel.Mode
	// Seconds is the best (minimum) per-trial time, GAP's reporting
	// convention for the headline tables.
	Seconds float64
	// AvgSeconds is the mean over trials; StdDev is the per-trial standard
	// deviation. §VI notes "timings for algorithms on Road were more
	// unstable compared to other cases" — the spread is part of the result.
	AvgSeconds float64
	StdDev     float64
	Trials     int
	// Verified reports whether every trial's output passed the oracle
	// check; Err carries the first failure. Per §VI's call for "more
	// formally specified verification and validation procedures", an
	// unverified cell is reported, never silently kept.
	Verified bool
	Err      string
	// Sync is the cell's synchronization structure, accumulated over the
	// timed trials from the mode's machine (reset per cell).
	Sync SyncStats
}

// Runner executes benchmark cells under the paper's two rule sets.
type Runner struct {
	// Trials is the number of timed trials per cell (BFS/SSSP/BC rotate
	// through the input's pre-drawn sources). Minimum 1.
	Trials int
	// BaselineWorkers and OptimizedWorkers model the paper's thread counts:
	// the Baseline data set used the 32 physical cores, the Optimized teams
	// "almost entirely" gained by also using the 32 hyperthreads. The worker
	// counts are fixed (defaults 8 and 16) rather than derived from the host
	// CPU count: each framework's synchronization structure — barriers per
	// round, worklist contention, fork/join fan-out — is then exercised
	// identically everywhere, and on few-core hosts the goroutine scheduler
	// still charges every barrier its real cost, which is precisely the
	// quantity the paper's Road analysis is about.
	BaselineWorkers  int
	OptimizedWorkers int
	// Verify enables oracle checking of every trial (untimed).
	Verify bool

	// machines holds one persistent worker pool per mode, built lazily at
	// the mode's worker count (the Baseline 8-analogue vs the Optimized
	// hyperthread count) and reused across every cell of that mode, exactly
	// like the paper pins each rule set's thread count for a whole data set.
	machines map[kernel.Mode]*par.Machine
}

// NewRunner returns a Runner with the defaults described on the fields.
func NewRunner() *Runner {
	base := runtime.GOMAXPROCS(0) / 2
	if base < 8 {
		base = 8
	}
	// Optimized gets the hyperthreads when the host actually has them;
	// otherwise extra workers are pure scheduling overhead and the counts
	// stay equal (the hyperthreading lever needs silicon to pull on).
	opt := runtime.GOMAXPROCS(0)
	if opt < base {
		opt = base
	}
	return &Runner{Trials: 3, BaselineWorkers: base, OptimizedWorkers: opt, Verify: true}
}

// machine returns the persistent pool for the given mode, building it on
// first use at that mode's worker count.
func (r *Runner) machine(mode kernel.Mode) *par.Machine {
	if r.machines == nil {
		r.machines = make(map[kernel.Mode]*par.Machine)
	}
	m, ok := r.machines[mode]
	if !ok {
		workers := r.BaselineWorkers
		if mode == kernel.Optimized {
			workers = r.OptimizedWorkers
		}
		m = par.NewMachine(workers)
		r.machines[mode] = m
	}
	return m
}

// Close parks the Runner's machines, joining every pool worker. Safe to call
// more than once; a closed Runner still runs cells (regions degrade to serial
// execution on the calling goroutine).
func (r *Runner) Close() {
	for _, m := range r.machines {
		m.Close()
	}
}

// options assembles the kernel.Options for one cell under the mode's rules.
func (r *Runner) options(in *Input, mode kernel.Mode) kernel.Options {
	opt := kernel.Options{
		Mode:           mode,
		Delta:          in.Spec.Delta,
		Workers:        r.BaselineWorkers,
		UndirectedView: in.Undirected,
		Machine:        r.machine(mode),
	}
	if mode == kernel.Optimized {
		// Optimized rule set: per-graph identity is known, hyperthreads are
		// allowed, and relabeling time may be excluded.
		opt.GraphName = in.Spec.Name
		opt.Workers = r.OptimizedWorkers
		opt.RelabeledView = in.Relabeled
	}
	return opt
}

// RunCell times one (framework, kernel, input, mode) cell.
func (r *Runner) RunCell(f kernel.Framework, k Kernel, in *Input, mode kernel.Mode) Result {
	res := Result{Framework: f.Name(), Kernel: k, Graph: in.Spec.Name, Mode: mode, Verified: true}
	if p, ok := f.(kernel.Preparer); ok {
		p.Prepare(in.Graph, in.Undirected) // untimed load-time conversion
	}
	trials := r.Trials
	if trials < 1 {
		trials = 1
	}
	opt := r.options(in, mode)
	g := in.Graph
	// Per-cell stats window: the counters accumulated during this cell's
	// trials become the cell's SyncStats block.
	opt.Machine.ResetStats()

	best := -1.0
	var total float64
	var samples []float64
	record := func(sec float64) {
		if best < 0 || sec < best {
			best = sec
		}
		total += sec
		samples = append(samples, sec)
	}
	fail := func(err error) {
		if res.Verified {
			res.Verified = false
			res.Err = err.Error()
		}
	}

	for t := 0; t < trials; t++ {
		switch k {
		case BFS:
			src := in.Sources[t%len(in.Sources)]
			start := time.Now()
			parent := f.BFS(g, src, opt)
			record(time.Since(start).Seconds())
			if r.Verify {
				if err := verify.CheckBFS(g, src, parent); err != nil {
					fail(fmt.Errorf("%s BFS on %s: %w", f.Name(), in.Spec.Name, err))
				}
			}
		case SSSP:
			src := in.Sources[t%len(in.Sources)]
			start := time.Now()
			dist := f.SSSP(g, src, opt)
			record(time.Since(start).Seconds())
			if r.Verify {
				if err := verify.CheckSSSP(g, src, dist); err != nil {
					fail(fmt.Errorf("%s SSSP on %s: %w", f.Name(), in.Spec.Name, err))
				}
			}
		case PR:
			start := time.Now()
			ranks := f.PR(g, opt)
			record(time.Since(start).Seconds())
			if r.Verify {
				if err := verify.CheckPR(g, ranks); err != nil {
					fail(fmt.Errorf("%s PR on %s: %w", f.Name(), in.Spec.Name, err))
				}
			}
		case CC:
			start := time.Now()
			labels := f.CC(g, opt)
			record(time.Since(start).Seconds())
			if r.Verify {
				if err := verify.CheckCC(g, labels); err != nil {
					fail(fmt.Errorf("%s CC on %s: %w", f.Name(), in.Spec.Name, err))
				}
			}
		case BC:
			roots := in.BCRoots[t%len(in.BCRoots)]
			start := time.Now()
			scores := f.BC(g, roots, opt)
			record(time.Since(start).Seconds())
			if r.Verify {
				if err := verify.CheckBC(g, roots, scores); err != nil {
					fail(fmt.Errorf("%s BC on %s: %w", f.Name(), in.Spec.Name, err))
				}
			}
		case TC:
			start := time.Now()
			count := f.TC(g, opt)
			record(time.Since(start).Seconds())
			if r.Verify {
				if err := verify.CheckTC(in.Undirected, count); err != nil {
					fail(fmt.Errorf("%s TC on %s: %w", f.Name(), in.Spec.Name, err))
				}
			}
		default:
			res.Verified = false
			res.Err = fmt.Sprintf("unknown kernel %q", k)
			return res
		}
	}
	res.Seconds = best
	res.AvgSeconds = total / float64(trials)
	if len(samples) > 1 {
		var sq float64
		for _, s := range samples {
			d := s - res.AvgSeconds
			sq += d * d
		}
		res.StdDev = math.Sqrt(sq / float64(len(samples)-1))
	}
	res.Trials = trials
	res.Sync = syncStatsFrom(opt.Machine.Stats())
	return res
}

// RunSuite runs every (framework, kernel, mode) cell over the inputs,
// reporting progress through report (which may be nil).
func (r *Runner) RunSuite(frameworks []kernel.Framework, inputs []*Input, modes []kernel.Mode, kernels []Kernel, progress func(Result)) []Result {
	if len(kernels) == 0 {
		kernels = Kernels
	}
	var results []Result
	for _, mode := range modes {
		for _, in := range inputs {
			for _, k := range kernels {
				for _, f := range frameworks {
					res := r.RunCell(f, k, in, mode)
					results = append(results, res)
					if progress != nil {
						progress(res)
					}
				}
			}
		}
	}
	return results
}

// PrepareViews warms each graph's per-framework internal representations so
// conversion costs stay out of the timed region, mirroring the benchmark's
// untimed load phase.
func PrepareViews(frameworks []kernel.Framework, inputs []*Input) {
	for _, f := range frameworks {
		p, ok := f.(kernel.Preparer)
		if !ok {
			continue
		}
		for _, in := range inputs {
			p.Prepare(in.Graph, in.Undirected)
		}
	}
}

// SpeedupVsReference computes Table V: the ratio reference-time /
// framework-time for every non-reference cell, keyed by (framework, kernel,
// graph, mode). A ratio of 1.0 means parity, >1 faster than GAP.
func SpeedupVsReference(results []Result) map[string]float64 {
	ref := map[string]float64{}
	for _, res := range results {
		if res.Framework == ReferenceName {
			ref[cellKey(string(res.Kernel), res.Graph, res.Mode)] = res.Seconds
		}
	}
	out := map[string]float64{}
	for _, res := range results {
		if res.Framework == ReferenceName {
			continue
		}
		base, ok := ref[cellKey(string(res.Kernel), res.Graph, res.Mode)]
		if !ok || res.Seconds <= 0 {
			continue
		}
		out[res.Framework+"|"+cellKey(string(res.Kernel), res.Graph, res.Mode)] = base / res.Seconds
	}
	return out
}

func cellKey(k, g string, m kernel.Mode) string {
	return k + "|" + g + "|" + m.String()
}

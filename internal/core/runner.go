package core

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"gapbench/internal/kernel"
	"gapbench/internal/par"
	"gapbench/internal/tune"
	"gapbench/internal/verify"
)

// SyncStats is the synchronization structure of one cell: the counters the
// cell's machine accumulated across its timed trials. This is the observable
// form of the paper's launch-overhead argument (§V-A): Road columns show an
// order of magnitude more regions per second of runtime than Twitter columns,
// and frameworks with persistent executors (Galois) show it least.
type SyncStats struct {
	// Workers is the machine width the cell ran with.
	Workers int
	// Regions counts parallel-loop launches (including serial fast paths);
	// SerialRegions is the inline subset (no worker woken).
	Regions       int64
	SerialRegions int64
	// Barriers counts participant shares joined at region barriers.
	Barriers int64
	// Chunks counts dynamically dispatched work units.
	Chunks int64
	// EffectiveWorkers is the mean participant count over parallel regions.
	EffectiveWorkers float64
}

func syncStatsFrom(s par.Stats) SyncStats {
	return SyncStats{
		Workers:          s.Workers,
		Regions:          s.Regions,
		SerialRegions:    s.SerialRegions,
		Barriers:         s.Barriers,
		Chunks:           s.Chunks,
		EffectiveWorkers: s.EffectiveWorkers(),
	}
}

// TrialRecord is the outcome of one sandboxed trial attempt. A retried trial
// leaves one record per attempt, so transient failures (Panicked on attempt
// 0, OK on attempt 1) stay distinguishable from deterministic ones in the
// journal.
type TrialRecord struct {
	// Trial is the trial index within the cell; Attempt is 0 for the first
	// run and counts up through retries.
	Trial   int
	Attempt int
	Status  Status
	// Seconds is the attempt's kernel wall time (meaningful for OK attempts;
	// zero when the attempt panicked before the kernel returned).
	Seconds float64
	// Err carries the panic value, oracle rejection, or timeout note.
	Err string `json:",omitempty"`
	// Stack is the trimmed goroutine stack for Panicked attempts.
	Stack string `json:",omitempty"`
}

// Result is one cell of the evaluation: a (framework, kernel, graph, mode)
// combination with its best trial time and verification status.
type Result struct {
	Framework string
	Kernel    Kernel
	Graph     string
	Mode      kernel.Mode
	// Status is the cell rollup: OK when every trial's final attempt was OK,
	// otherwise the first failing trial's final status. The zero value is OK,
	// so pre-fault-model result literals keep their meaning.
	Status Status
	// Seconds is the best (minimum) per-trial time over OK trials, GAP's
	// reporting convention for the headline tables; -1 when no trial
	// finished OK.
	Seconds float64
	// AvgSeconds is the mean over OK trials; StdDev is their standard
	// deviation. §VI notes "timings for algorithms on Road were more
	// unstable compared to other cases" — the spread is part of the result.
	AvgSeconds float64
	StdDev     float64
	Trials     int
	// Retries counts extra attempts spent on transient failures across the
	// cell's trials.
	Retries int `json:",omitempty"`
	// Resumed marks a cell replayed from a journal rather than re-run.
	Resumed bool `json:",omitempty"`
	// GraphFile is the serialized graph file the cell's input was loaded
	// from (empty for generated inputs); GraphEpoch is the input graph's
	// identity stamp (the format-v2 header checksum for saved/loaded graphs,
	// a structural hash otherwise). Together they let a resumed run prove a
	// journaled cell and the current input are the same graph.
	GraphFile  string `json:",omitempty"`
	GraphEpoch uint64 `json:",omitempty"`
	// Verified reports whether the cell finished OK (every trial returned in
	// time and, when verification is on, passed the oracle); Err carries the
	// first failure. Per §VI's call for "more formally specified verification
	// and validation procedures", a failed cell is reported, never silently
	// kept.
	Verified bool
	Err      string `json:",omitempty"`
	// TrialRecords is the per-attempt fault log (empty only for resumed
	// cells journaled by older builds).
	TrialRecords []TrialRecord `json:",omitempty"`
	// Sync is the cell's synchronization structure, accumulated over the
	// timed trials from the mode's machine (reset per cell; after a
	// mid-cell machine abandonment it covers the replacement machine's
	// trials only).
	Sync SyncStats
}

// RetryPolicy decides which trial failures are worth a second attempt.
type RetryPolicy struct {
	// MaxRetries is the number of extra attempts per trial.
	MaxRetries int
	// RetryOn reports whether a status should be treated as transient. Nil
	// retries nothing.
	RetryOn func(Status) bool
}

// DefaultRetryPolicy retries Panicked and TimedOut trials once: those can be
// transient (a race that fired, a scheduling hiccup against a tight
// deadline), whereas VerifyFailed is a wrong answer and will be wrong again.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{
		MaxRetries: 1,
		RetryOn:    func(s Status) bool { return s == Panicked || s == TimedOut },
	}
}

func (p *RetryPolicy) maxRetries() int {
	if p == nil {
		return DefaultRetryPolicy().MaxRetries
	}
	return p.MaxRetries
}

func (p *RetryPolicy) shouldRetry(s Status) bool {
	if p == nil {
		return s == Panicked || s == TimedOut
	}
	if p.RetryOn == nil {
		return false
	}
	return p.RetryOn(s)
}

// Runner executes benchmark cells under the paper's two rule sets.
type Runner struct {
	// Trials is the number of timed trials per cell (BFS/SSSP/BC rotate
	// through the input's pre-drawn sources). Minimum 1.
	Trials int
	// BaselineWorkers and OptimizedWorkers model the paper's thread counts:
	// the Baseline data set used the 32 physical cores, the Optimized teams
	// "almost entirely" gained by also using the 32 hyperthreads. The worker
	// counts are fixed (defaults 8 and 16) rather than derived from the host
	// CPU count: each framework's synchronization structure — barriers per
	// round, worklist contention, fork/join fan-out — is then exercised
	// identically everywhere, and on few-core hosts the goroutine scheduler
	// still charges every barrier its real cost, which is precisely the
	// quantity the paper's Road analysis is about.
	BaselineWorkers  int
	OptimizedWorkers int
	// Verify enables oracle checking of every trial (untimed).
	Verify bool

	// Timeout is the per-trial deadline; zero means none. When it passes,
	// the trial's cancellation token fires and the kernel is expected to
	// drain cooperatively (DESIGN.md §9).
	Timeout time.Duration
	// Grace is how long past a fired deadline the runner waits for a kernel
	// to notice the token before abandoning its machine (default 2s).
	Grace time.Duration
	// Retry decides which trial failures get re-attempted; nil means the
	// default policy (one retry for Panicked/TimedOut).
	Retry *RetryPolicy
	// JournalPath, when set, makes RunSuite append every completed cell to a
	// JSONL journal; with Resume also set, cells already journaled are
	// replayed instead of re-run.
	JournalPath string
	Resume      bool

	// Schedules is the persistent autotuned schedule store (written by
	// gapbench -tune, keyed by kernel, graph epoch, and mode). When set,
	// Optimized-mode cells get it through kernel.Options so schedule-aware
	// frameworks skip their in-run heuristics; Baseline cells never see it.
	Schedules *tune.Store

	// machines holds one persistent worker pool per mode, built lazily at
	// the mode's worker count (the Baseline 8-analogue vs the Optimized
	// hyperthread count) and reused across every cell of that mode, exactly
	// like the paper pins each rule set's thread count for a whole data set.
	machines map[kernel.Mode]*par.Machine
	// abandoned holds machines dropped mid-trial because a kernel ignored
	// cancellation past the grace period. Their workers may still be running
	// the stuck kernel, so Close must not join them; ReapAbandoned does,
	// for callers that know the stuck kernels eventually return.
	abandoned []*par.Machine
}

// NewRunner returns a Runner with the defaults described on the fields.
func NewRunner() *Runner {
	base := runtime.GOMAXPROCS(0) / 2
	if base < 8 {
		base = 8
	}
	// Optimized gets the hyperthreads when the host actually has them;
	// otherwise extra workers are pure scheduling overhead and the counts
	// stay equal (the hyperthreading lever needs silicon to pull on).
	opt := runtime.GOMAXPROCS(0)
	if opt < base {
		opt = base
	}
	return &Runner{Trials: 3, BaselineWorkers: base, OptimizedWorkers: opt, Verify: true}
}

// machine returns the persistent pool for the given mode, building it on
// first use at that mode's worker count (and rebuilding it after an
// abandonment dropped the previous one).
func (r *Runner) machine(mode kernel.Mode) *par.Machine {
	if r.machines == nil {
		r.machines = make(map[kernel.Mode]*par.Machine)
	}
	m, ok := r.machines[mode]
	if !ok {
		workers := r.BaselineWorkers
		if mode == kernel.Optimized {
			workers = r.OptimizedWorkers
		}
		m = par.NewMachine(workers)
		r.machines[mode] = m
	}
	return m
}

// abandonMachine removes a poisoned machine from service: the next cell (or
// retry) of the mode lazily builds a fresh pool, and the stuck one is parked
// on the abandoned list so Close never blocks on it.
func (r *Runner) abandonMachine(mode kernel.Mode, m *par.Machine) {
	if r.machines[mode] == m {
		delete(r.machines, mode)
	}
	r.abandoned = append(r.abandoned, m)
}

// Abandoned reports how many machines have been abandoned to stuck kernels
// over the Runner's lifetime.
func (r *Runner) Abandoned() int { return len(r.abandoned) }

// ReapAbandoned joins the workers of every abandoned machine and clears the
// list. It blocks until the stuck kernels actually return, so it is only
// safe when they eventually do (tests use it for goroutine accounting);
// production callers normally leave abandoned machines to process exit.
func (r *Runner) ReapAbandoned() {
	for _, m := range r.abandoned {
		m.Close()
	}
	r.abandoned = nil
}

// Close parks the Runner's live machines, joining every pool worker (but not
// workers of abandoned machines — see ReapAbandoned). Safe to call more than
// once; a closed Runner still runs cells (regions degrade to serial
// execution on the calling goroutine).
func (r *Runner) Close() {
	for _, m := range r.machines {
		m.Close()
	}
}

func (r *Runner) grace() time.Duration {
	if r.Grace > 0 {
		return r.Grace
	}
	return 2 * time.Second
}

// options assembles the kernel.Options for one cell under the mode's rules.
func (r *Runner) options(in *Input, mode kernel.Mode) kernel.Options {
	opt := kernel.Options{
		Mode:           mode,
		Delta:          in.Spec.Delta,
		Workers:        r.BaselineWorkers,
		UndirectedView: in.Undirected,
		Machine:        r.machine(mode),
	}
	if mode == kernel.Optimized {
		// Optimized rule set: per-graph identity is known, hyperthreads are
		// allowed, and relabeling time may be excluded.
		opt.GraphName = in.Spec.Name
		opt.Workers = r.OptimizedWorkers
		opt.RelabeledView = in.Relabeled
		opt.Schedules = r.Schedules
	}
	return opt
}

// trialOutcome is the raw result of one sandboxed attempt.
type trialOutcome struct {
	status  Status
	seconds float64
	err     string
	stack   string
}

// trimStack keeps the head of a panic stack (the frames that identify the
// fault) and drops the scheduler noise below.
func trimStack(stack []byte) string {
	lines := strings.Split(strings.TrimSpace(string(stack)), "\n")
	const maxLines = 24
	if len(lines) > maxLines {
		lines = append(lines[:maxLines], "... (stack trimmed)")
	}
	return strings.Join(lines, "\n")
}

// checkOracle runs an oracle check under its own recover: a panic while
// inspecting garbage kernel output is the kernel's failure, reported as a
// verification error rather than crashing the harness.
func checkOracle(check func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("oracle panicked on kernel output: %v", p)
		}
	}()
	return check()
}

// runAttempt executes one sandboxed trial attempt: the kernel call runs on
// its own goroutine under recover with a per-attempt cancellation token
// installed on both the kernel options and the mode's machine. If a deadline
// is set and the kernel ignores the fired token past the grace period, the
// machine is abandoned and the attempt reports TimedOut — the runner never
// blocks on a stuck kernel.
func (r *Runner) runAttempt(f kernel.Framework, k Kernel, in *Input, mode kernel.Mode, trial int) trialOutcome {
	opt := r.options(in, mode)
	m := opt.Machine
	var tok *par.CancelToken
	if r.Timeout > 0 {
		tok = par.NewDeadlineToken(r.Timeout)
	} else {
		tok = par.NewCancelToken()
	}
	opt.Cancel = tok
	m.SetCancel(tok)

	g := in.Graph
	cellName := fmt.Sprintf("%s %s on %s", f.Name(), k, in.Spec.Name)
	done := make(chan trialOutcome, 1) // buffered: an abandoned sandbox still exits
	go func() {
		out := trialOutcome{status: OK}
		defer func() {
			if p := recover(); p != nil {
				out.status = Panicked
				out.err = fmt.Sprintf("%s: panic: %v", cellName, p)
				out.stack = trimStack(debug.Stack())
			}
			done <- out
		}()
		var check func() error
		start := time.Now()
		switch k {
		case BFS:
			src := in.Sources[trial%len(in.Sources)]
			parent := f.BFS(g, src, opt)
			check = func() error { return verify.CheckBFS(g, src, parent) }
		case SSSP:
			src := in.Sources[trial%len(in.Sources)]
			dist := f.SSSP(g, src, opt)
			check = func() error { return verify.CheckSSSP(g, src, dist) }
		case PR:
			ranks := f.PR(g, opt)
			check = func() error { return verify.CheckPR(g, ranks) }
		case CC:
			labels := f.CC(g, opt)
			check = func() error { return verify.CheckCC(g, labels) }
		case BC:
			roots := in.BCRoots[trial%len(in.BCRoots)]
			scores := f.BC(g, roots, opt)
			check = func() error { return verify.CheckBC(g, roots, scores) }
		case TC:
			count := f.TC(g, opt)
			check = func() error { return verify.CheckTC(in.Undirected, count) }
		}
		out.seconds = time.Since(start).Seconds()
		// graphguard (no-op unless built with -tags=graphguard): the shared
		// CSR must be byte-identical after every trial. A mutation panics
		// here, inside the sandbox, so it surfaces as a Panicked record
		// naming the corrupted array instead of as a wrong result.
		in.Graph.MustCheckSeal()
		in.Undirected.MustCheckSeal()
		in.Relabeled.MustCheckSeal()
		if tok.Cancelled() {
			// The kernel returned, but only because the deadline fired; its
			// partial output is discarded unverified.
			out.status = TimedOut
			out.err = fmt.Sprintf("%s: deadline (%v) exceeded", cellName, r.Timeout)
			return
		}
		if r.Verify {
			if err := checkOracle(check); err != nil {
				out.status = VerifyFailed
				out.err = fmt.Sprintf("%s: %v", cellName, err)
			}
		}
	}()

	if r.Timeout <= 0 {
		out := <-done
		m.SetCancel(nil)
		return out
	}
	select {
	case out := <-done:
		m.SetCancel(nil)
		return out
	case <-time.After(r.Timeout):
		tok.Cancel() // idempotent with the deadline; makes the intent explicit
		select {
		case out := <-done:
			m.SetCancel(nil)
			return out
		case <-time.After(r.grace()):
			// The kernel is ignoring the token. Abandon its machine — the
			// sandbox goroutine and any workers stuck in the kernel keep the
			// old pool; the next attempt/cell gets a fresh one. The token
			// stays installed so the stray kernel's future regions still
			// drain fast if it ever starts polling.
			r.abandonMachine(mode, m)
			return trialOutcome{
				status: TimedOut,
				err: fmt.Sprintf("%s: kernel ignored cancellation for %v past the %v deadline; machine abandoned",
					cellName, r.grace(), r.Timeout),
			}
		}
	}
}

// prepare runs a framework's untimed load-time conversion under recover, so
// a panicking Prepare fails its cell instead of the suite.
func prepare(f kernel.Framework, in *Input) (out trialOutcome) {
	out = trialOutcome{status: OK}
	p, ok := f.(kernel.Preparer)
	if !ok {
		return out
	}
	defer func() {
		if pv := recover(); pv != nil {
			out.status = Panicked
			out.err = fmt.Sprintf("%s: panic in Prepare(%s): %v", f.Name(), in.Spec.Name, pv)
			out.stack = trimStack(debug.Stack())
		}
	}()
	p.Prepare(in.Graph, in.Undirected)
	return out
}

// RunCell times one (framework, kernel, input, mode) cell. Every trial is
// sandboxed (DESIGN.md §9): panics, deadline overruns, and oracle rejections
// become per-trial statuses on the Result, never harness crashes.
func (r *Runner) RunCell(f kernel.Framework, k Kernel, in *Input, mode kernel.Mode) Result {
	res := Result{Framework: f.Name(), Kernel: k, Graph: in.Spec.Name, Mode: mode, Verified: true, Seconds: -1}
	res.GraphFile = in.File
	if in.Graph != nil {
		res.GraphEpoch = in.Graph.Epoch()
	}
	trials := r.Trials
	if trials < 1 {
		trials = 1
	}
	res.Trials = trials

	known := false
	for _, kk := range Kernels {
		if k == kk {
			known = true
			break
		}
	}
	if !known {
		res.Status = Skipped
		res.Verified = false
		res.Err = fmt.Sprintf("unknown kernel %q", k)
		return res
	}

	if out := prepare(f, in); out.status != OK {
		res.Status = out.status
		res.Verified = false
		res.Err = out.err
		for t := 0; t < trials; t++ {
			res.TrialRecords = append(res.TrialRecords, TrialRecord{Trial: t, Status: Skipped})
		}
		return res
	}

	// Per-cell stats window: the counters accumulated during this cell's
	// trials become the cell's SyncStats block.
	r.machine(mode).ResetStats()

	var total float64
	var samples []float64
	record := func(sec float64) {
		if res.Seconds < 0 || sec < res.Seconds {
			res.Seconds = sec
		}
		total += sec
		samples = append(samples, sec)
	}

	failed := false
	for t := 0; t < trials; t++ {
		if failed {
			// An earlier trial failed past retries; the cell's fate is
			// sealed, so don't burn the remaining trial budget on it.
			res.TrialRecords = append(res.TrialRecords, TrialRecord{Trial: t, Status: Skipped})
			continue
		}
		var out trialOutcome
		for attempt := 0; ; attempt++ {
			out = r.runAttempt(f, k, in, mode, t)
			res.TrialRecords = append(res.TrialRecords, TrialRecord{
				Trial: t, Attempt: attempt,
				Status: out.status, Seconds: out.seconds,
				Err: out.err, Stack: out.stack,
			})
			if out.status == OK || attempt >= r.Retry.maxRetries() || !r.Retry.shouldRetry(out.status) {
				break
			}
			res.Retries++
		}
		if out.status == OK {
			record(out.seconds)
		} else {
			failed = true
			if res.Status == OK {
				res.Status = out.status
				res.Verified = false
				res.Err = out.err
			}
		}
	}

	if len(samples) > 0 {
		res.AvgSeconds = total / float64(len(samples))
	}
	if len(samples) > 1 {
		var sq float64
		for _, s := range samples {
			d := s - res.AvgSeconds
			sq += d * d
		}
		res.StdDev = math.Sqrt(sq / float64(len(samples)-1))
	}
	res.Sync = syncStatsFrom(r.machine(mode).Stats())
	return res
}

// RunSuite runs every (framework, kernel, mode) cell over the inputs,
// reporting progress through progress (which may be nil). With JournalPath
// set, each completed cell is appended to the JSONL journal as it finishes;
// with Resume also set, cells already journaled are replayed (marked
// Resumed) instead of re-run, so an interrupted run picks up where it died.
// The error return concerns the harness only (journal I/O); cell-level
// failures are statuses on the Results, never errors.
func (r *Runner) RunSuite(frameworks []kernel.Framework, inputs []*Input, modes []kernel.Mode, kernels []Kernel, progress func(Result)) ([]Result, error) {
	if len(kernels) == 0 {
		kernels = Kernels
	}
	var journaled map[string]Result
	if r.Resume && r.JournalPath != "" {
		prior, err := ReadJournal(r.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("core: resume: %w", err)
		}
		journaled = make(map[string]Result, len(prior))
		for _, res := range prior {
			journaled[res.CellID()] = res
		}
	}
	var results []Result
	for _, mode := range modes {
		for _, in := range inputs {
			for _, k := range kernels {
				for _, f := range frameworks {
					if prior, ok := journaled[CellID(f.Name(), k, in.Spec.Name, mode)]; ok {
						if err := checkResumeIdentity(prior, in); err != nil {
							return results, fmt.Errorf("core: resume: %w", err)
						}
						prior.Resumed = true
						results = append(results, prior)
						if progress != nil {
							progress(prior)
						}
						continue
					}
					res := r.RunCell(f, k, in, mode)
					if r.JournalPath != "" {
						if err := AppendJournal(r.JournalPath, res); err != nil {
							return results, fmt.Errorf("core: journal: %w", err)
						}
					}
					results = append(results, res)
					if progress != nil {
						progress(res)
					}
				}
			}
		}
	}
	return results, nil
}

// checkResumeIdentity refuses to replay a journaled cell over a different
// input than the one it was measured on: the graph file name and the graph
// epoch must agree whenever both sides recorded them. (Either side may have
// none — pre-epoch journals, generated inputs — and then no claim is made.)
func checkResumeIdentity(prior Result, in *Input) error {
	if prior.GraphFile != "" && in.File != "" && prior.GraphFile != in.File {
		return fmt.Errorf("journaled cell %s was measured on %s, current input is %s — delete the journal or rerun with the original file",
			prior.CellID(), prior.GraphFile, in.File)
	}
	var epoch uint64
	if in.Graph != nil {
		epoch = in.Graph.Epoch()
	}
	if prior.GraphEpoch != 0 && epoch != 0 && prior.GraphEpoch != epoch {
		return fmt.Errorf("journaled cell %s was measured on graph epoch %#x, current input %s has epoch %#x — the input changed; delete the journal or restore the input",
			prior.CellID(), prior.GraphEpoch, in.Spec.Name, epoch)
	}
	return nil
}

// PrepareViews warms each graph's per-framework internal representations so
// conversion costs stay out of the timed region, mirroring the benchmark's
// untimed load phase.
func PrepareViews(frameworks []kernel.Framework, inputs []*Input) {
	for _, f := range frameworks {
		p, ok := f.(kernel.Preparer)
		if !ok {
			continue
		}
		for _, in := range inputs {
			p.Prepare(in.Graph, in.Undirected)
		}
	}
}

// SpeedupVsReference computes Table V: the ratio reference-time /
// framework-time for every non-reference cell, keyed by (framework, kernel,
// graph, mode). A ratio of 1.0 means parity, >1 faster than GAP. Cells that
// did not finish OK — on either side of the ratio — contribute nothing: a
// crashed or timed-out cell has no time, not a time of zero.
func SpeedupVsReference(results []Result) map[string]float64 {
	ref := map[string]float64{}
	for _, res := range results {
		if res.Framework == ReferenceName && res.Status == OK && res.Verified && res.Seconds > 0 {
			ref[cellKey(string(res.Kernel), res.Graph, res.Mode)] = res.Seconds
		}
	}
	out := map[string]float64{}
	for _, res := range results {
		if res.Framework == ReferenceName {
			continue
		}
		base, ok := ref[cellKey(string(res.Kernel), res.Graph, res.Mode)]
		if !ok || res.Status != OK || !res.Verified || res.Seconds <= 0 {
			continue
		}
		out[res.Framework+"|"+cellKey(string(res.Kernel), res.Graph, res.Mode)] = base / res.Seconds
	}
	return out
}

func cellKey(k, g string, m kernel.Mode) string {
	return k + "|" + g + "|" + m.String()
}

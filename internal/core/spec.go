// Package core implements the paper's primary contribution: the evaluation
// methodology. It defines the benchmark specification (which kernels, which
// graphs, how trials are run, what Baseline and Optimized allow), the
// framework registry, the suite runner with cross-validation against the
// oracles, and the result records the report tables are built from.
package core

import (
	"fmt"
	"strings"

	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// Kernel names the six GAP benchmark kernels.
type Kernel string

// The six kernels, in the paper's table order.
const (
	BFS  Kernel = "BFS"
	SSSP Kernel = "SSSP"
	CC   Kernel = "CC"
	PR   Kernel = "PR"
	BC   Kernel = "BC"
	TC   Kernel = "TC"
)

// Kernels lists all kernels in Table IV/V order.
var Kernels = []Kernel{BFS, SSSP, CC, PR, BC, TC}

// GraphSpec describes one benchmark input graph.
type GraphSpec struct {
	// Name is the Table I graph name.
	Name string
	// Scale is log2 of the approximate vertex count handed to the generator.
	Scale int
	// Seed drives the generator deterministically.
	Seed uint64
	// Delta is the per-graph SSSP bucket width — the one per-graph knob the
	// GAP rules allow even in Baseline mode.
	Delta kernel.Dist
	// SourceSeed drives trial source selection.
	SourceSeed uint64
}

// DefaultSuite returns the five benchmark graphs at the given base scale.
// Relative sizes follow Table I: Road is the small, huge-diameter outlier;
// the other four carry an order of magnitude more edges. The paper's inputs
// are ~2000x larger; topology, not scale, is what separates the frameworks
// (see DESIGN.md).
func DefaultSuite(baseScale int) []GraphSpec {
	return []GraphSpec{
		{Name: generate.NameRoad, Scale: baseScale + 2, Seed: 42, Delta: 64, SourceSeed: 271828},
		{Name: generate.NameTwitter, Scale: baseScale, Seed: 42, Delta: 16, SourceSeed: 271829},
		{Name: generate.NameWeb, Scale: baseScale, Seed: 42, Delta: 16, SourceSeed: 271830},
		{Name: generate.NameKron, Scale: baseScale + 1, Seed: 42, Delta: 16, SourceSeed: 271831},
		{Name: generate.NameUrand, Scale: baseScale + 1, Seed: 42, Delta: 16, SourceSeed: 271832},
	}
}

// Input is one fully prepared benchmark input: the graph, the untimed views
// the GAP rules permit storing at load time, and the pre-drawn trial
// sources.
type Input struct {
	Spec       GraphSpec
	Graph      *graph.Graph
	Undirected *graph.Graph
	Relabeled  *graph.Graph // degree-sorted undirected view (Optimized-only)
	Sources    []graph.NodeID
	BCRoots    [][]graph.NodeID
	// File is the serialized graph file this input was loaded from, empty
	// for generated inputs. Journals record it (with the graph's epoch) so
	// resumed runs can refuse a mismatched input.
	File string
}

// Close releases the storage of every distinct graph view this input holds
// (the primary graph, the undirected view, and the relabeled view may alias
// one another). After Close, mmap-backed inputs are unmapped and any retained
// kernel view panics on use instead of faulting.
func (in *Input) Close() error {
	if in == nil {
		return nil
	}
	var first error
	closed := make(map[*graph.Graph]bool, 3)
	for _, g := range []*graph.Graph{in.Relabeled, in.Undirected, in.Graph} {
		if g == nil || closed[g] {
			continue
		}
		closed[g] = true
		if err := g.Close(); err != nil && first == nil {
			first = err
		}
	}
	in.Graph, in.Undirected, in.Relabeled = nil, nil, nil
	return first
}

// GraphFileName is the canonical serialized-graph file name for a suite
// spec: lowercase graph name, scale, and generator seed, with the given
// extension ("sg" for format v2, "gapb" for v1). graphgen writes these names
// and gapbench's -graphdir cache looks them up, so the two sides agree by
// construction.
func GraphFileName(spec GraphSpec, ext string) string {
	return fmt.Sprintf("%s-s%d-seed%d.%s", strings.ToLower(spec.Name), spec.Scale, spec.Seed, ext)
}

// maxTrialSources is how many BFS/SSSP sources (and BC root sets) are
// pre-drawn per graph. The GAP spec draws 64; scaled-down runs use fewer,
// configurable per Runner.
const maxTrialSources = 16

// LoadInput generates the graph and builds every untimed view and source
// list the suite needs.
func LoadInput(spec GraphSpec) (*Input, error) {
	g, err := generate.ByName(spec.Name, spec.Scale, spec.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: generating %s: %w", spec.Name, err)
	}
	return PrepareInput(spec, g), nil
}

// PrepareInput builds the Input around an existing graph (used by tests and
// by the CLI when loading a serialized graph).
func PrepareInput(spec GraphSpec, g *graph.Graph) *Input {
	in := &Input{Spec: spec, Graph: g}
	in.Undirected = g.Undirected()
	in.Relabeled, _ = graph.DegreeRelabel(in.Undirected)
	// graphguard (no-op otherwise): checksum the CSR arrays of every view a
	// kernel can reach, so the runner can prove them untouched after each
	// trial.
	in.Graph.Seal()
	in.Undirected.Seal()
	in.Relabeled.Seal()
	in.Sources = PickSources(g, maxTrialSources, spec.SourceSeed)
	for i := 0; i+kernel.BCSources <= len(in.Sources); i += kernel.BCSources {
		in.BCRoots = append(in.BCRoots, in.Sources[i:i+kernel.BCSources])
	}
	if len(in.BCRoots) == 0 && len(in.Sources) > 0 {
		in.BCRoots = [][]graph.NodeID{in.Sources}
	}
	return in
}

// PickSources draws count distinct-ish sources with non-zero out-degree,
// mirroring the GAP SourcePicker (uniform over vertices, rejecting isolated
// ones, deterministic for a given seed).
func PickSources(g *graph.Graph, count int, seed uint64) []graph.NodeID {
	n := uint64(g.NumNodes())
	if n == 0 {
		return nil
	}
	out := make([]graph.NodeID, 0, count)
	x := seed*6364136223846793005 + 1442695040888963407
	for attempts := 0; len(out) < count && attempts < count*1000; attempts++ {
		x = x*6364136223846793005 + 1442695040888963407
		v := graph.NodeID((x >> 17) % n)
		if g.OutDegree(v) > 0 {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}

package core

import "fmt"

// Status classifies the outcome of one trial attempt (and, rolled up, of one
// cell). The taxonomy is the heart of the fault model (DESIGN.md §9): a
// failing framework must never take the suite down with it — it gets a
// status, the suite moves on.
type Status int

// The trial/cell statuses, from best to worst.
const (
	// OK: the kernel returned, the deadline (if any) had not passed, and the
	// oracle check (if enabled) accepted the output.
	OK Status = iota
	// VerifyFailed: the kernel returned in time but the oracle rejected the
	// output (or panicked while inspecting it — garbage output is the
	// kernel's fault, not the oracle's). Deterministic: not retried by the
	// default policy.
	VerifyFailed
	// Panicked: the kernel (or its Prepare) panicked. The panic value and a
	// trimmed stack are recorded on the trial. Possibly transient (a data
	// race that fired): retried once by the default policy.
	Panicked
	// TimedOut: the per-cell deadline passed. Either the kernel noticed the
	// cancellation token and returned (its partial output is discarded), or
	// it ignored the token past the grace period and its machine was
	// abandoned. Possibly transient: retried once by the default policy.
	TimedOut
	// Skipped: the trial was never attempted — an earlier trial in the cell
	// already failed deterministically, the kernel name was unknown, or
	// Prepare failed for the whole cell.
	Skipped
)

var statusNames = [...]string{"OK", "VerifyFailed", "Panicked", "TimedOut", "Skipped"}

func (s Status) String() string {
	if s < 0 || int(s) >= len(statusNames) {
		return fmt.Sprintf("Status(%d)", int(s))
	}
	return statusNames[s]
}

// MarshalText renders the status by name so journal lines and CSV cells stay
// human-readable.
func (s Status) MarshalText() ([]byte, error) {
	if s < 0 || int(s) >= len(statusNames) {
		return nil, fmt.Errorf("core: unknown status %d", int(s))
	}
	return []byte(statusNames[s]), nil
}

// UnmarshalText parses a status name (journal resume path).
func (s *Status) UnmarshalText(b []byte) error {
	for i, name := range statusNames {
		if string(b) == name {
			*s = Status(i)
			return nil
		}
	}
	return fmt.Errorf("core: unknown status %q", b)
}

package frontier

import "fmt"

// The frontier sanitizer: layout conversions must preserve the set — same
// cardinality, same members. A conversion that drops or invents vertices
// degrades into wrong traversals (missed vertices look exactly like an early
// convergence), not crashes, which is why the invariant gets runtime
// assertions rather than trust.
//
// Like grb's sanitizer, the checks are compiled unconditionally but gated on
// frontierCheckEnabled, which is false unless the `grbcheck` build tag flips
// it (check_grbcheck.go) — a var rather than twin build-tagged
// implementations so tooling that parses the package without tag filtering
// (gapvet's loader) never sees duplicate symbols. Run the sanitizer tier
// with:
//
//	go test -tags=grbcheck -short ./internal/frontier/ ./internal/grb/ ./internal/lagraph/
var frontierCheckEnabled = false

// checkFail reports a violated invariant. The invariant name is the stable,
// grep-able identifier tests assert on.
func checkFail(op, invariant, detail string) {
	panic(fmt.Sprintf("frontier: grbcheck: %s: invariant %q violated: %s", op, invariant, detail))
}

// checkConversion asserts that a layout conversion preserved the set:
//
//	conversion-count       in and out agree on Size(), and the sparse side's
//	                       list length matches its count
//	conversion-sorted      a produced sparse list is strictly increasing (no
//	                       duplicates hiding a dropped member; input lists may
//	                       arrive unsorted from a push gather)
//	conversion-membership  every member on one side is present on the other
func checkConversion(op string, in, out *Set) {
	if !frontierCheckEnabled {
		return
	}
	if in.count != out.count {
		checkFail(op, "conversion-count",
			fmt.Sprintf("input has %d members, output has %d", in.count, out.count))
	}
	sparse, bitmap := in, out
	if in.layout == Bitmap {
		sparse, bitmap = out, in
	}
	if int64(len(sparse.list)) != sparse.count {
		checkFail(op, "conversion-count",
			fmt.Sprintf("sparse side reports %d members but stores %d", sparse.count, len(sparse.list)))
	}
	for k, v := range sparse.list {
		if sparse == out && k > 0 && sparse.list[k-1] >= v {
			checkFail(op, "conversion-sorted",
				fmt.Sprintf("list[%d] = %d does not follow list[%d] = %d", k, v, k-1, sparse.list[k-1]))
		}
		if !bitmap.bits.Get(int64(v)) {
			checkFail(op, "conversion-membership",
				fmt.Sprintf("vertex %d is on the sparse side but absent from the bitmap", v))
		}
	}
	// Equal counts + sorted-unique + list ⊆ bitmap ⇒ the sets are equal, as
	// long as the bitmap's count is honest — assert that too.
	if got := bitmap.bits.Count(); got != bitmap.count {
		checkFail(op, "conversion-count",
			fmt.Sprintf("bitmap side reports %d members but %d bits are set", bitmap.count, got))
	}
}

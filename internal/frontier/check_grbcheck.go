//go:build grbcheck

package frontier

// Building with `-tags=grbcheck` arms the frontier conversion sanitizer
// alongside grb's (one tag for the whole runtime-invariant tier).
func init() { frontierCheckEnabled = true }

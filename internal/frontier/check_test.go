//go:build grbcheck

package frontier

import (
	"strings"
	"testing"

	"gapbench/internal/graph"
	"gapbench/internal/par"
)

// mustPanic runs fn and asserts it panics with a frontier sanitizer message
// containing every want substring (the op name and the invariant identifier).
func mustPanic(t *testing.T, fn func(), want ...string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("operation on corrupted set did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want a sanitizer string", r, r)
		}
		if !strings.HasPrefix(msg, "frontier: grbcheck: ") {
			t.Fatalf("panic %q is not a frontier sanitizer report", msg)
		}
		for _, w := range want {
			if !strings.Contains(msg, w) {
				t.Errorf("panic %q does not name %q", msg, w)
			}
		}
	}()
	fn()
}

// TestFrontierCheckEnabled guards the build wiring: this file only compiles
// under the grbcheck tag, and the tag must have flipped the gate on.
func TestFrontierCheckEnabled(t *testing.T) {
	if !frontierCheckEnabled {
		t.Fatal("built with -tags=grbcheck but the sanitizer gate is off")
	}
}

// TestCleanConversionsPass exercises both conversion directions with healthy
// sets: the sanitizer must stay silent.
func TestCleanConversionsPass(t *testing.T) {
	s := FromList(64, []graph.NodeID{9, 0, 33})
	b := s.ToBitmap(par.Default(), 2)
	b.ToList(par.Default(), 2)
	// Unsorted push-gather order is legal input for ToBitmap.
	FromList(64, []graph.NodeID{40, 7, 21}).ToBitmap(par.Default(), 2)
}

// TestCorruptedSparseCount seeds a sparse set whose count disagrees with its
// list and asserts the conversion reports it.
func TestCorruptedSparseCount(t *testing.T) {
	s := FromList(32, []graph.NodeID{1, 2, 3})
	s.count = 5 // corrupt: claims members it does not store
	mustPanic(t, func() { s.ToBitmap(par.Default(), 1) },
		"ToBitmap", "conversion-count")
}

// TestCorruptedBitmapCount seeds a bitmap whose count disagrees with its set
// bits.
func TestCorruptedBitmapCount(t *testing.T) {
	b := NewSet(32, Bitmap)
	b.Add(1)
	b.Add(3)
	b.count = 3 // corrupt: one phantom member
	mustPanic(t, func() { b.ToList(par.Default(), 1) },
		"ToList", "conversion-count")
}

// TestDuplicateHidingDetected is the invariant the sorted check exists for:
// a duplicated list entry makes the bitmap one member short, which must not
// silently pass as equal-count conversion.
func TestDuplicateHidingDetected(t *testing.T) {
	s := FromList(32, []graph.NodeID{2, 2}) // push gathers may be unsorted, but never duplicated
	mustPanic(t, func() { s.ToBitmap(par.Default(), 1) },
		"ToBitmap", "conversion-count")
}

// TestCheckConversionDirect unit-tests the checker itself on hand-corrupted
// pairs that the conversion code paths cannot produce.
func TestCheckConversionDirect(t *testing.T) {
	bitmap := NewSet(32, Bitmap)
	bitmap.Add(1)
	bitmap.Add(3)

	t.Run("membership", func(t *testing.T) {
		out := FromList(32, []graph.NodeID{1, 4}) // 4 is not in the bitmap
		mustPanic(t, func() { checkConversion("ToList", bitmap, out) },
			"ToList", "conversion-membership")
	})
	t.Run("produced list unsorted", func(t *testing.T) {
		out := FromList(32, []graph.NodeID{3, 1}) // ToList output must be sorted
		mustPanic(t, func() { checkConversion("ToList", bitmap, out) },
			"ToList", "conversion-sorted")
	})
	t.Run("clean pair passes", func(t *testing.T) {
		checkConversion("ToList", bitmap, FromList(32, []graph.NodeID{1, 3}))
	})
}

package frontier

// Beamer's direction-optimizing BFS thresholds (Beamer, Asanović, Patterson,
// SC'12), the values the GAP reference implementation ships with.
const (
	DefaultAlpha = 15
	DefaultBeta  = 18
)

// Dispatcher is the Beamer-style alpha/beta direction switch, driven by
// running out-degree sums rather than vertex counts: the push cost of a round
// is the number of edges leaving the frontier (the "scout" sum), not how many
// vertices are on it — one hub vertex on a scale-free graph can carry more
// work than thousands of road-network vertices. The pull side is bounded by
// the edges still entering unvisited vertices, tracked as a running remainder
// (edgesToCheck). Pull when
//
//	scout > edgesToCheck / Alpha
//
// and, once pulling, keep pulling while the awake count grows or stays above
// n/Beta — switching back too eagerly re-pays the pull's full-vertex scan on
// the very next round.
type Dispatcher struct {
	// Alpha and Beta are the switch thresholds; zero Alpha disables the pull
	// side entirely (push-only accounting).
	Alpha, Beta int64

	n            int64
	edges        int64
	edgesToCheck int64
	scout        int64
}

// NewDispatcher returns a dispatcher for a graph with n vertices and `edges`
// directed edges, starting from a frontier whose out-degree sum is scout.
func NewDispatcher(n, edges, scout int64) *Dispatcher {
	return &Dispatcher{
		Alpha: DefaultAlpha, Beta: DefaultBeta,
		n: n, edges: edges, edgesToCheck: edges, scout: scout,
	}
}

// UsePull reports whether the next round should run in the pull direction.
func (d *Dispatcher) UsePull() bool {
	return d.Alpha > 0 && d.scout > d.edgesToCheck/d.Alpha
}

// BeginPush charges the frontier's outgoing edges against the remaining
// unexplored edge budget; call it before a push round.
func (d *Dispatcher) BeginPush() { d.edgesToCheck -= d.scout }

// EndPush records the next frontier's out-degree sum after a push round.
func (d *Dispatcher) EndPush(scout int64) { d.scout = scout }

// KeepPulling reports whether a pull phase should run another round: the
// frontier is still growing (awake >= prev) or still covers more than n/Beta
// vertices. A zero awake count always stops.
func (d *Dispatcher) KeepPulling(awake, prev int64) bool {
	return awake != 0 && (awake >= prev || awake > d.n/d.Beta)
}

// EndPull resets the scout sum after a pull phase ends: the frontier shrank
// below the pull threshold, so the next push round's charge is nominal (the
// reference implementation's scout_count = 1).
func (d *Dispatcher) EndPull() { d.scout = 1 }

// DisableAccounting zeroes the running sums, for push-only schedules that
// skip the active-vertex counting overhead entirely (§V-A's Optimized Road
// BFS). UsePull never fires afterward until EndPush records a new scout.
func (d *Dispatcher) DisableAccounting() {
	d.scout = 0
	d.edgesToCheck = d.edges
}

// Scout returns the current frontier out-degree sum (observability/tests).
func (d *Dispatcher) Scout() int64 { return d.scout }

// EdgesToCheck returns the remaining unexplored-edge budget.
func (d *Dispatcher) EdgesToCheck() int64 { return d.edgesToCheck }

// Package frontier is the shared frontier library behind the paper's
// direction-optimizing traversals. It generalizes the vertexset machinery
// that previously lived inside the GraphIt backend — sparse-list and bitmap
// layouts with explicit (timed) conversions, machine-parallel push and pull
// edge sweeps, and the Beamer alpha/beta direction dispatcher — so that any
// framework reproduction can opt into the same infrastructure instead of
// hand-rolling its own. GraphIt consumes it through thin shims; GKC's BFS
// uses the dispatcher; NWGraph's bottom-up phase uses the bitmap layout.
//
// Membership/count invariants of the layout conversions are asserted under
// the `grbcheck` build tag (check.go), mirroring the grb sanitizer.
package frontier

import (
	"math/bits"
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/par"
)

// Layout selects the set representation.
type Layout int

// Frontier layouts.
const (
	// SparseList stores frontier vertices as an index list — efficient for
	// small frontiers (push traversals).
	SparseList Layout = iota
	// Bitmap stores the frontier as a bitmap — "advantageous when there are
	// many active elements" (§V-E), and the layout pull traversals need for
	// O(1) membership tests.
	Bitmap
)

// Set is a frontier: a set of active vertices over [0, n) in one of the two
// layouts. Conversions are explicit and timed; §V-A attributes GAP-vs-GraphIt
// BFS differences to "different frontier creation mechanisms".
type Set struct {
	n      int64
	layout Layout
	list   []graph.NodeID
	bits   *graph.Bitmap
	count  int64
	// collect is scratch for Push's gather: keeping it in the (already
	// heap-allocated) result set means the traversal closures capture one
	// pointer instead of forcing a separate accumulator cell to the heap on
	// every sweep.
	collect Collector
}

// NewSet returns an empty set of the given layout over [0, n).
func NewSet(n int64, layout Layout) *Set {
	s := &Set{n: n, layout: layout}
	if layout == Bitmap {
		s.bits = graph.NewBitmap(n)
	}
	return s
}

// FromList builds a sparse set from a list (which it takes ownership of).
func FromList(n int64, list []graph.NodeID) *Set {
	return &Set{n: n, layout: SparseList, list: list, count: int64(len(list))}
}

// Size returns the number of active vertices.
func (s *Set) Size() int64 { return s.count }

// Layout returns the current representation.
func (s *Set) Layout() Layout { return s.layout }

// List returns the backing index list of a sparse set (nil for bitmaps —
// convert with ToList first).
func (s *Set) List() []graph.NodeID { return s.list }

// Bits returns the backing bitmap of a bitmap set (nil for sparse lists —
// convert with ToBitmap first).
func (s *Set) Bits() *graph.Bitmap { return s.bits }

// Add inserts a vertex. The bitmap layout is safe for concurrent adders; the
// sparse-list layout is a single-threaded setup path.
func (s *Set) Add(v graph.NodeID) {
	if s.layout == Bitmap {
		if s.bits.SetAtomic(int64(v)) {
			atomic.AddInt64(&s.count, 1)
		}
		return
	}
	s.list = append(s.list, v)
	s.count++
}

// Contains reports membership. The bitmap layout answers in O(1); the
// sparse-list layout scans (callers that test membership in a loop should
// convert with ToBitmap first, which is what the schedules do).
func (s *Set) Contains(v graph.NodeID) bool {
	if s.layout == Bitmap {
		return s.bits.Get(int64(v))
	}
	for _, u := range s.list {
		if u == v {
			return true
		}
	}
	return false
}

// Conversion tile sizes. Work is handed to the machine in word tiles so the
// scheduler polls the cancel token at every tile boundary; below the serial
// threshold a plain scan beats the dispatch cost.
const (
	convertTileWords  = 2048
	serialWordsCutoff = 4096
	convertTileList   = 4096
)

// ToBitmap converts (or returns) the bitmap form. Large conversions scatter
// on the machine with atomic bit sets; tiny ones stay serial.
func (s *Set) ToBitmap(exec *par.Machine, workers int) *Set {
	if s.layout == Bitmap {
		return s
	}
	out := NewSet(s.n, Bitmap)
	if len(s.list) <= convertTileList {
		for _, v := range s.list {
			out.bits.Set(int64(v))
		}
	} else {
		src := s.list // read-only in the closure: captured by value
		exec.ForDynamic(len(src), convertTileList, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.bits.SetAtomic(int64(src[i]))
			}
		})
	}
	out.count = s.count
	checkConversion("ToBitmap", s, out)
	return out
}

// ToList converts (or returns) the sparse-list form. The bitmap is scanned
// word-at-a-time (popcount + trailing-zero extraction, never per-index), and
// large scans run as a two-pass machine-parallel gather: per-tile popcounts,
// a serial prefix sum, then a parallel fill into the exact-size list — so the
// result is sorted and the machine polls the cancel token between tiles.
func (s *Set) ToList(exec *par.Machine, workers int) *Set {
	if s.layout == SparseList {
		return s
	}
	words := s.bits.Words()
	out := &Set{n: s.n, layout: SparseList}
	if len(words) <= serialWordsCutoff {
		list := make([]graph.NodeID, 0, s.count)
		for wi, w := range words {
			base := int64(wi) << 6
			for ; w != 0; w &= w - 1 {
				list = append(list, graph.NodeID(base+int64(bits.TrailingZeros64(w))))
			}
		}
		out.list = list
		out.count = int64(len(list))
		checkConversion("ToList", s, out)
		return out
	}
	tiles := (len(words) + convertTileWords - 1) / convertTileWords
	offsets := make([]int64, tiles+1)
	exec.ForDynamic(tiles, 1, workers, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			var cnt int64
			for _, w := range words[t*convertTileWords : min((t+1)*convertTileWords, len(words))] {
				cnt += int64(bits.OnesCount64(w))
			}
			offsets[t+1] = cnt
		}
	})
	for t := 0; t < tiles; t++ {
		offsets[t+1] += offsets[t]
	}
	list := make([]graph.NodeID, offsets[tiles])
	exec.ForDynamic(tiles, 1, workers, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			pos := offsets[t]
			wlo := t * convertTileWords
			for wi := wlo; wi < min(wlo+convertTileWords, len(words)); wi++ {
				w := words[wi]
				base := int64(wi) << 6
				for ; w != 0; w &= w - 1 {
					list[pos] = graph.NodeID(base + int64(bits.TrailingZeros64(w)))
					pos++
				}
			}
		}
	})
	out.list = list
	out.count = int64(len(list))
	checkConversion("ToList", s, out)
	return out
}

// Push traverses out-edges of the frontier, calling apply(u,v) for each;
// apply returns true when v newly enters the next frontier. The output layout
// follows the schedule.
func Push(exec *par.Machine, g *graph.Graph, cur *Set, layout Layout, workers int, apply func(u, v graph.NodeID) bool) *Set {
	src := cur.ToList(exec, workers)
	out := NewSet(cur.n, layout)
	if layout == Bitmap {
		exec.ForDynamic(len(src.list), 64, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				u := src.list[i]
				for _, v := range g.OutNeighbors(u) {
					if apply(u, v) {
						if out.bits.SetAtomic(int64(v)) {
							atomic.AddInt64(&out.count, 1)
						}
					}
				}
			}
		})
		return out
	}
	// The collector lives inside the result set, which is heap-bound anyway:
	// the closure captures only the out pointer, so a sweep allocates no
	// extra cell for it.
	exec.ForDynamic(len(src.list), 64, workers, func(lo, hi int) {
		var local []graph.NodeID
		for i := lo; i < hi; i++ {
			u := src.list[i]
			for _, v := range g.OutNeighbors(u) {
				if apply(u, v) {
					local = append(local, v)
				}
			}
		}
		out.collect.Add(local)
	})
	out.list = out.collect.Take()
	out.count = int64(len(out.list))
	return out
}

// Pull scans vertices where cond holds, pulling over in-edges from frontier
// members until applyTo accepts one; accepted vertices form the next frontier
// (bitmap layout).
func Pull(exec *par.Machine, g *graph.Graph, cur *Set, workers int, cond func(v graph.NodeID) bool, applyTo func(u, v graph.NodeID) bool) *Set {
	fb := cur.ToBitmap(exec, workers)
	out := NewSet(cur.n, Bitmap)
	// ReduceInt64 carries the per-chunk counts through the scheduler's own
	// reduction, so the sweep captures no accumulator cell of its own.
	out.count = exec.ReduceInt64(int(cur.n), workers, func(lo, hi int) int64 {
		var local int64
		for vi := lo; vi < hi; vi++ {
			v := graph.NodeID(vi)
			if !cond(v) {
				continue
			}
			for _, u := range g.InNeighbors(v) {
				if fb.bits.Get(int64(u)) && applyTo(u, v) {
					out.bits.SetAtomic(int64(v))
					local++
					break
				}
			}
		}
		return local
	})
	return out
}

// Collector merges per-chunk slices under one lock per flush.
type Collector struct {
	mu  spinMutex
	out []graph.NodeID
}

// Add appends a chunk's local gather.
func (c *Collector) Add(local []graph.NodeID) {
	if len(local) == 0 {
		return
	}
	c.mu.Lock()
	c.out = append(c.out, local...)
	c.mu.Unlock()
}

// Take returns everything collected so far.
func (c *Collector) Take() []graph.NodeID { return c.out }

// Reset detaches the collector from its previous round's slice (which the
// caller keeps as the new frontier).
func (c *Collector) Reset() { c.out = nil }

// spinMutex is a tiny test-and-set lock; the critical sections here are a
// few appends, far shorter than a sync.Mutex slow path.
type spinMutex struct{ v atomic.Int32 }

func (m *spinMutex) Lock() {
	for !m.v.CompareAndSwap(0, 1) {
	}
}
func (m *spinMutex) Unlock() { m.v.Store(0) }

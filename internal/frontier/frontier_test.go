package frontier

import (
	"sync/atomic"
	"testing"

	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/par"
)

func TestConversionRoundTripSmall(t *testing.T) {
	s := FromList(16, []graph.NodeID{5, 1, 3})
	if s.Size() != 3 || s.Layout() != SparseList {
		t.Fatalf("FromList: size=%d layout=%v", s.Size(), s.Layout())
	}
	b := s.ToBitmap(par.Default(), 2)
	if b.Size() != 3 || b.Layout() != Bitmap {
		t.Fatalf("ToBitmap: size=%d layout=%v", b.Size(), b.Layout())
	}
	for _, v := range []graph.NodeID{1, 3, 5} {
		if !b.Contains(v) {
			t.Fatalf("bitmap missing %d", v)
		}
	}
	if b.Contains(0) || b.Contains(2) || b.Contains(15) {
		t.Fatal("bitmap contains a vertex that was never added")
	}
	l := b.ToList(par.Default(), 2)
	want := []graph.NodeID{1, 3, 5}
	if len(l.List()) != len(want) {
		t.Fatalf("ToList length %d, want %d", len(l.List()), len(want))
	}
	for i, v := range l.List() {
		if v != want[i] {
			t.Fatalf("ToList[%d] = %d, want %d (conversion must be sorted)", i, v, want[i])
		}
	}
	// Converting an already-converted layout is the identity.
	if b.ToBitmap(par.Default(), 2) != b || l.ToList(par.Default(), 2) != l {
		t.Fatal("same-layout conversion is not the identity")
	}
}

// TestConversionParallelPaths drives both conversions through their
// machine-parallel branches (above serialWordsCutoff words / convertTileList
// entries) and asserts the two-pass gather produces the exact sorted set.
func TestConversionParallelPaths(t *testing.T) {
	const n = int64(serialWordsCutoff*64 + 777) // > serialWordsCutoff words
	m := par.NewMachine(4)
	defer m.Close()
	b := NewSet(n, Bitmap)
	var want []graph.NodeID
	for v := int64(0); v < n; v += 7 {
		b.Add(graph.NodeID(v))
		want = append(want, graph.NodeID(v))
	}
	if int64(len(want)) <= convertTileList {
		t.Fatalf("test setup: %d members does not reach the parallel ToBitmap path", len(want))
	}
	l := b.ToList(m, 4)
	if int64(len(l.List())) != b.Size() || l.Size() != b.Size() {
		t.Fatalf("ToList produced %d members, want %d", len(l.List()), b.Size())
	}
	for i, v := range l.List() {
		if v != want[i] {
			t.Fatalf("parallel ToList[%d] = %d, want %d", i, v, want[i])
		}
	}
	b2 := l.ToBitmap(m, 4)
	if b2.Size() != b.Size() {
		t.Fatalf("round-trip bitmap has %d members, want %d", b2.Size(), b.Size())
	}
	for _, v := range want {
		if !b2.Contains(v) {
			t.Fatalf("round-trip bitmap missing %d", v)
		}
	}
}

// TestPushPullAgree expands one BFS level both ways and asserts the two
// sweeps discover exactly the same next frontier.
func TestPushPullAgree(t *testing.T) {
	g, err := generate.ByName("Kron", 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(g.NumNodes())
	m := par.NewMachine(4)
	defer m.Close()
	var src graph.NodeID
	for g.OutDegree(src) == 0 {
		src++
	}
	cur := FromList(n, []graph.NodeID{src})

	parentPush := make([]int32, n)
	for i := range parentPush {
		parentPush[i] = -1
	}
	parentPush[src] = int32(src)
	nextPush := Push(m, g, cur, Bitmap, 4, func(u, v graph.NodeID) bool {
		return atomic.LoadInt32(&parentPush[v]) < 0 &&
			atomic.CompareAndSwapInt32(&parentPush[v], -1, int32(u))
	})

	parentPull := make([]int32, n)
	for i := range parentPull {
		parentPull[i] = -1
	}
	parentPull[src] = int32(src)
	nextPull := Pull(m, g, cur, 4,
		func(v graph.NodeID) bool { return parentPull[v] < 0 },
		func(u, v graph.NodeID) bool { parentPull[v] = int32(u); return true })

	if nextPush.Size() != nextPull.Size() {
		t.Fatalf("push found %d vertices, pull found %d", nextPush.Size(), nextPull.Size())
	}
	for v := graph.NodeID(0); int64(v) < n; v++ {
		if nextPush.Contains(v) != nextPull.Contains(v) {
			t.Fatalf("push and pull disagree on vertex %d", v)
		}
	}
}

func TestDispatcherBeamerAccounting(t *testing.T) {
	d := NewDispatcher(100, 1000, 10)
	if d.UsePull() {
		t.Fatal("scout 10 <= 1000/15: must start pushing")
	}
	d.BeginPush()
	if d.EdgesToCheck() != 990 {
		t.Fatalf("edgesToCheck = %d after BeginPush, want 990", d.EdgesToCheck())
	}
	d.EndPush(200)
	if d.Scout() != 200 {
		t.Fatalf("scout = %d after EndPush, want 200", d.Scout())
	}
	if !d.UsePull() {
		t.Fatal("scout 200 > 990/15: must switch to pull")
	}
	// KeepPulling: growing frontier, or still above n/beta.
	if !d.KeepPulling(50, 40) {
		t.Fatal("growing awake count must keep pulling")
	}
	if !d.KeepPulling(10, 40) {
		t.Fatal("awake 10 > 100/18: must keep pulling")
	}
	if d.KeepPulling(4, 40) {
		t.Fatal("shrinking awake below n/beta must stop pulling")
	}
	if d.KeepPulling(0, 40) {
		t.Fatal("empty frontier must stop pulling")
	}
	d.EndPull()
	if d.Scout() != 1 {
		t.Fatalf("scout = %d after EndPull, want the pessimistic 1", d.Scout())
	}
	if d.UsePull() {
		t.Fatal("scout 1 must resume pushing")
	}
	d.DisableAccounting()
	if d.Scout() != 0 || d.EdgesToCheck() != 1000 {
		t.Fatalf("DisableAccounting left scout=%d edgesToCheck=%d", d.Scout(), d.EdgesToCheck())
	}
	if d.UsePull() {
		t.Fatal("push-only dispatcher must never pull")
	}
	d2 := NewDispatcher(100, 1000, 999)
	d2.Alpha = 0
	if d2.UsePull() {
		t.Fatal("Alpha=0 disables the pull side entirely")
	}
}

// TestConversionCancelledTerminates is the cancel-liveness contract: a
// machine whose token already fired must still return from the parallel
// conversion paths promptly (with a partial result the harness discards).
func TestConversionCancelledTerminates(t *testing.T) {
	if frontierCheckEnabled {
		t.Skip("partial cancelled conversions legitimately violate the sanitizer's count invariant")
	}
	const n = int64(serialWordsCutoff*64 + 777)
	m := par.NewMachine(4)
	defer m.Close()
	tok := par.NewCancelToken()
	tok.Cancel()
	m.SetCancel(tok)
	defer m.SetCancel(nil)

	b := NewSet(n, Bitmap)
	list := make([]graph.NodeID, 0, n/3)
	for v := int64(0); v < n; v += 3 {
		b.Add(graph.NodeID(v))
		list = append(list, graph.NodeID(v))
	}
	if out := b.ToList(m, 4); out == nil {
		t.Fatal("cancelled ToList returned nil")
	}
	if out := FromList(n, list).ToBitmap(m, 4); out == nil {
		t.Fatal("cancelled ToBitmap returned nil")
	}
}

package galois

import (
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/par"
)

// brandes computes approximate betweenness centrality from the given roots.
// The forward depth assignment runs asynchronously (no level barriers) when
// asyncForward is set — the Galois variant that pays off on high-diameter
// graphs — and level-synchronously otherwise. Path counting and dependency
// accumulation are level-ordered passes in both cases; unlike GAP, no
// successor bitmap is kept, which is the overhead §V-E cites ("GAP is faster
// because it saves the list of successors for each vertex using a bitmap").
func brandes(exec *par.Machine, g *graph.Graph, sources []graph.NodeID, workers int, asyncForward bool) []float64 {
	n := int(g.NumNodes())
	scores := make([]float64, n)
	if n == 0 {
		return scores
	}
	depth := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)

	for _, src := range sources {
		exec.ForBlocked(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				//gapvet:ignore atomic-plain-mix -- reset phase: barrier-separated from the forward phase's CAS on depth
				depth[i] = -1
				sigma[i] = 0
				delta[i] = 0
			}
		})
		depth[src] = 0
		sigma[src] = 1

		var levels [][]graph.NodeID
		if asyncForward {
			levels = forwardAsync(exec, g, src, depth, workers)
		} else {
			levels = forwardSync(exec, g, src, depth, workers)
		}

		// Path counts per level, pulling from predecessors.
		for l := 1; l < len(levels); l++ {
			level := levels[l]
			exec.ForDynamic(len(level), chunkSize, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := level[i]
					var s float64
					for _, u := range g.InNeighbors(v) {
						if depth[u] == depth[v]-1 {
							s += sigma[u]
						}
					}
					sigma[v] = s
				}
			})
		}
		// Dependencies in reverse level order.
		for l := len(levels) - 2; l >= 0; l-- {
			level := levels[l]
			exec.ForDynamic(len(level), chunkSize, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					u := level[i]
					var d float64
					for _, v := range g.OutNeighbors(u) {
						if depth[v] == depth[u]+1 {
							d += sigma[u] / sigma[v] * (1 + delta[v])
						}
					}
					delta[u] = d
					if u != src {
						scores[u] += d
					}
				}
			})
		}
	}

	maxScore := 0.0
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
	}
	if maxScore > 0 {
		exec.ForBlocked(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				scores[i] /= maxScore
			}
		})
	}
	return scores
}

// forwardAsync assigns BFS depths with the asynchronous ordered executor,
// then buckets vertices into levels with one scan.
func forwardAsync(exec *par.Machine, g *graph.Graph, src graph.NodeID, depth []int32, workers int) [][]graph.NodeID {
	n := int(g.NumNodes())
	ForEachOrdered(exec, workers, []graph.NodeID{src}, 0, func(ctx *PCtx, u graph.NodeID) {
		du := atomic.LoadInt32(&depth[u])
		nd := du + 1
		for _, v := range g.OutNeighbors(u) {
			old := atomic.LoadInt32(&depth[v])
			for old < 0 || nd < old {
				if atomic.CompareAndSwapInt32(&depth[v], old, nd) {
					ctx.Push(v, int(nd))
					break
				}
				old = atomic.LoadInt32(&depth[v])
			}
		}
	})
	maxDepth := int32(0)
	for v := 0; v < n; v++ {
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}
	levels := make([][]graph.NodeID, maxDepth+1)
	for v := 0; v < n; v++ {
		if d := depth[v]; d >= 0 {
			levels[d] = append(levels[d], graph.NodeID(v))
		}
	}
	return levels
}

// forwardSync assigns depths with a level-synchronous parallel BFS, keeping
// each level as it forms.
func forwardSync(exec *par.Machine, g *graph.Graph, src graph.NodeID, depth []int32, workers int) [][]graph.NodeID {
	levels := [][]graph.NodeID{{src}}
	current := levels[0]
	for len(current) > 0 {
		if exec.Interrupted() {
			break // partial levels; the harness discards cancelled trials
		}
		d := int32(len(levels))
		cur := current // read-only in the closure: captured by value
		collected := &bag{}
		exec.ForDynamic(len(cur), chunkSize, workers, func(lo, hi int) {
			local := chunkPool.Get().(*chunk)
			local.n = 0
			for i := lo; i < hi; i++ {
				u := cur[i]
				for _, v := range g.OutNeighbors(u) {
					if atomic.LoadInt32(&depth[v]) < 0 &&
						atomic.CompareAndSwapInt32(&depth[v], -1, d) {
						if local.n == chunkSize {
							//gapvet:ignore inline-miss -- overflow branch: reached once per chunkSize pushes, amortized across the chunk
							collected.put(local)
							local = chunkPool.Get().(*chunk)
							local.n = 0
						}
						local.items[local.n] = v
						local.n++
					}
				}
			}
			collected.put(local)
		})
		next := drainBag(collected, nil)
		if len(next) == 0 {
			break
		}
		levels = append(levels, next)
		current = next
	}
	return levels
}

package galois

import (
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/par"
)

// asyncBFS computes BFS parents by asynchronous distance relaxation over the
// ordered executor: the operator CAS-updates a packed (depth, parent) word
// and re-schedules improved vertices at their new depth. There are no
// rounds, so on a high-diameter graph like Road thousands of barrier waits
// disappear — the effect behind Galois' 3.6x Baseline win there (§V-A).
func asyncBFS(exec *par.Machine, g *graph.Graph, src graph.NodeID, workers int) []graph.NodeID {
	n := int(g.NumNodes())
	parent := make([]graph.NodeID, n)
	for i := range parent {
		parent[i] = -1
	}
	if n == 0 {
		return parent
	}
	// state[v] packs depth (high 32 bits) and parent (low 32 bits) so both
	// update in one CAS and can never disagree.
	state := make([]uint64, n)
	unvisited := pack(int32(1<<30), -1)
	for i := range state {
		state[i] = unvisited
	}
	state[src] = pack(0, src)

	ForEachOrdered(exec, workers, []graph.NodeID{src}, 0, func(ctx *PCtx, u graph.NodeID) {
		du := depthOf(atomic.LoadUint64(&state[u]))
		nd := du + 1
		for _, v := range g.OutNeighbors(u) {
			for {
				old := atomic.LoadUint64(&state[v])
				if depthOf(old) <= nd {
					break
				}
				if atomic.CompareAndSwapUint64(&state[v], old, pack(nd, u)) {
					ctx.Push(v, int(nd))
					break
				}
			}
		}
	})

	for v := 0; v < n; v++ {
		if s := state[v]; depthOf(s) < 1<<30 {
			parent[v] = parentOf(s)
		}
	}
	return parent
}

func pack(depth int32, parent graph.NodeID) uint64 {
	return uint64(uint32(depth))<<32 | uint64(uint32(parent))
}
func depthOf(s uint64) int32         { return int32(s >> 32) }
func parentOf(s uint64) graph.NodeID { return graph.NodeID(uint32(s)) }

// syncBFS is the bulk-synchronous direction-optimizing BFS, with the
// frontier handled through the chunked-bag machinery (the generic-library
// overhead §V-A mentions: "the overheads of a generic library such as Galois
// are significant" when runtimes are small).
func syncBFS(exec *par.Machine, g *graph.Graph, src graph.NodeID, workers int) []graph.NodeID {
	n := int64(g.NumNodes())
	parent := make([]graph.NodeID, n)
	for i := range parent {
		parent[i] = -1
	}
	if n == 0 {
		return parent
	}
	parent[src] = src

	frontier := []graph.NodeID{src}
	front := graph.NewBitmap(n)
	next := graph.NewBitmap(n)
	edgesToCheck := g.NumEdges()
	scout := g.OutDegree(src)
	const alpha, beta = 15, 18

	for len(frontier) > 0 {
		if exec.Interrupted() {
			return parent // partial tree; the harness discards cancelled trials
		}
		if scout > edgesToCheck/alpha {
			front.Reset()
			for _, u := range frontier {
				front.Set(int64(u))
			}
			awake := int64(len(frontier))
			for {
				prev := awake
				next.Reset()
				awake = exec.ReduceInt64(int(n), workers, func(lo, hi int) int64 {
					var count int64
					for u := lo; u < hi; u++ {
						//gapvet:ignore atomic-plain-mix -- pull phase: each u writes only parent[u]; barrier-separated from the push phase's CAS
						if parent[u] >= 0 {
							continue
						}
						for _, v := range g.InNeighbors(graph.NodeID(u)) {
							if front.Get(int64(v)) {
								parent[u] = v
								next.SetAtomic(int64(u))
								count++
								break
							}
						}
					}
					return count
				})
				front.Swap(next)
				if awake == 0 || !(awake >= prev || awake > n/beta) {
					break
				}
			}
			frontier = frontier[:0]
			for u := int64(0); u < n; u++ {
				if front.Get(u) {
					frontier = append(frontier, graph.NodeID(u))
				}
			}
			scout = 1
		} else {
			edgesToCheck -= scout
			var newScout atomic.Int64
			collected := &bag{}
			cur := frontier
			exec.ForDynamic(len(cur), chunkSize, workers, func(lo, hi int) {
				local := chunkPool.Get().(*chunk)
				local.n = 0
				var sc int64
				for i := lo; i < hi; i++ {
					u := cur[i]
					for _, v := range g.OutNeighbors(u) {
						if atomic.LoadInt32(&parent[v]) < 0 &&
							atomic.CompareAndSwapInt32(&parent[v], -1, u) {
							if local.n == chunkSize {
								//gapvet:ignore inline-miss -- overflow branch: reached once per chunkSize pushes, amortized across the chunk
								collected.put(local)
								local = chunkPool.Get().(*chunk)
								local.n = 0
							}
							local.items[local.n] = v
							local.n++
							sc += g.OutDegree(v)
						}
					}
				}
				collected.put(local)
				newScout.Add(sc)
			})
			frontier = drainBag(collected, frontier[:0])
			scout = newScout.Load()
		}
	}
	return parent
}

// drainBag empties a bag into dst, recycling the chunks.
func drainBag(b *bag, dst []graph.NodeID) []graph.NodeID {
	//gapvet:ignore cancel-liveness -- bounded: every iteration removes one chunk from a finite bag with no concurrent producers
	for {
		c := b.get()
		if c == nil {
			return dst
		}
		dst = append(dst, c.items[:c.n]...)
		c.n = 0
		chunkPool.Put(c)
	}
}

// AsyncBFS exposes the asynchronous BFS variant directly for ablation
// benchmarks (the Baseline/Optimized dispatch normally chooses it).
func AsyncBFS(g *graph.Graph, src graph.NodeID, workers int) []graph.NodeID {
	return asyncBFS(par.Default(), g, src, workers)
}

// SyncBFS exposes the bulk-synchronous direction-optimizing BFS variant
// directly for ablation benchmarks.
func SyncBFS(g *graph.Graph, src graph.NodeID, workers int) []graph.NodeID {
	return syncBFS(par.Default(), g, src, workers)
}

package galois

import (
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/par"
)

// afforest labels weakly connected components with Afforest — the same
// algorithm as the GAP reference (Table III), expressed with Galois'
// dynamic, work-stolen scheduling. The paper highlights that Galois' general
// operator formulation is what allows it to host a non-vertex-program
// algorithm like Afforest at all (§III-B). When edgeBlocked is set, the
// final phase walks blocks of the edge array instead of per-vertex ranges —
// the Optimized-mode variant that wins on Web "due to better load balancing"
// (§V-C).
func afforest(exec *par.Machine, g *graph.Graph, workers int, edgeBlocked bool) []graph.NodeID {
	n := int(g.NumNodes())
	comp := make([]graph.NodeID, n)
	for i := range comp {
		comp[i] = graph.NodeID(i)
	}
	if n == 0 {
		return comp
	}

	const neighborRounds = 2
	for r := 0; r < neighborRounds; r++ {
		exec.ForDynamic(n, chunkSize, workers, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				neigh := g.OutNeighbors(graph.NodeID(u))
				if r < len(neigh) {
					unionCAS(graph.NodeID(u), neigh[r], comp)
				}
			}
		})
	}
	compressLabels(exec, comp, workers)
	giant := mostFrequentLabel(comp)

	if edgeBlocked {
		finishEdgeBlocked(exec, g, comp, giant, workers)
	} else {
		exec.ForDynamic(n, chunkSize, workers, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				if atomic.LoadInt32(&comp[u]) == giant {
					continue
				}
				neigh := g.OutNeighbors(graph.NodeID(u))
				for r := neighborRounds; r < len(neigh); r++ {
					unionCAS(graph.NodeID(u), neigh[r], comp)
				}
				if g.Directed() {
					for _, v := range g.InNeighbors(graph.NodeID(u)) {
						unionCAS(graph.NodeID(u), v, comp)
					}
				}
			}
		})
	}
	compressLabels(exec, comp, workers)
	return comp
}

// finishEdgeBlocked runs Afforest's final phase over fixed-size blocks of
// the out-edge (and, for directed graphs, in-edge) arrays so a single
// high-degree vertex is spread across many work units.
func finishEdgeBlocked(exec *par.Machine, g *graph.Graph, comp []graph.NodeID, giant graph.NodeID, workers int) {
	const neighborRounds = 2
	index, neigh := g.RawOut()
	n := int32(g.NumNodes())
	linkBlock := func(index []int64, neigh []graph.NodeID, lo, hi int64, skipFirst bool) {
		// Locate the row containing edge lo by binary search, then walk.
		u := int32(searchRow(index, lo))
		for e := lo; e < hi; e++ {
			for index[u+1] <= e {
				u++
			}
			if skipFirst && e < index[u]+neighborRounds {
				continue // first neighborRounds edges were linked in phase 1
			}
			if atomic.LoadInt32(&comp[u]) == giant {
				continue
			}
			unionCAS(u, neigh[e], comp)
		}
	}
	m := index[n]
	exec.ForDynamic(int(m), 4096, workers, func(lo, hi int) {
		linkBlock(index, neigh, int64(lo), int64(hi), true)
	})
	if g.Directed() {
		inIndex, inNeigh := g.RawIn()
		mIn := inIndex[n]
		exec.ForDynamic(int(mIn), 4096, workers, func(lo, hi int) {
			linkBlock(inIndex, inNeigh, int64(lo), int64(hi), false)
		})
	}
}

// searchRow returns the row whose edge range contains edge position e.
func searchRow(index []int64, e int64) int {
	lo, hi := 0, len(index)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if index[mid] <= e {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// unionCAS hooks the higher component root onto the lower with CAS loops
// (identical semantics to the GAP reference's Link). The two loads and the
// equality test are the per-edge fast path — once components converge nearly
// every call sees equal labels — and fit the inline budget; the CAS loop
// lives out of line in unionCASSlow, which re-loads under its own loop
// anyway.
func unionCAS(u, v graph.NodeID, comp []graph.NodeID) {
	if atomic.LoadInt32(&comp[u]) != atomic.LoadInt32(&comp[v]) {
		unionCASSlow(u, v, comp)
	}
}

// unionCASSlow repeatedly hooks the higher root onto the lower one with CAS.
// Kept out of line so unionCAS stays under the inline budget; the loads race
// with concurrent hooks either way, and the loop revalidates before every
// CAS.
//
//go:noinline
func unionCASSlow(u, v graph.NodeID, comp []graph.NodeID) {
	p1 := atomic.LoadInt32(&comp[u])
	p2 := atomic.LoadInt32(&comp[v])
	for p1 != p2 {
		high, low := p1, p2
		if high < low {
			high, low = low, high
		}
		pHigh := atomic.LoadInt32(&comp[high])
		if pHigh == low {
			break
		}
		if pHigh == high && atomic.CompareAndSwapInt32(&comp[high], high, low) {
			break
		}
		p1 = atomic.LoadInt32(&comp[atomic.LoadInt32(&comp[high])])
		p2 = atomic.LoadInt32(&comp[low])
	}
}

// compressLabels pointer-jumps every label to its root.
func compressLabels(exec *par.Machine, comp []graph.NodeID, workers int) {
	exec.ForBlocked(len(comp), workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			c := atomic.LoadInt32(&comp[u])
			for {
				cc := atomic.LoadInt32(&comp[c])
				if c == cc {
					break
				}
				c = cc
			}
			atomic.StoreInt32(&comp[u], c)
		}
	})
}

// mostFrequentLabel samples labels to find the giant component.
func mostFrequentLabel(comp []graph.NodeID) graph.NodeID {
	const samples = 1024
	counts := make(map[graph.NodeID]int, samples)
	n := uint64(len(comp))
	x := uint64(0x853c49e6748fea9b)
	for i := 0; i < samples; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		root := comp[(x>>17)%n]
		for root != comp[root] {
			root = comp[root]
		}
		counts[root]++
	}
	best, bestCount := graph.NodeID(0), -1
	for c, k := range counts {
		if k > bestCount {
			best, bestCount = c, k
		}
	}
	return best
}

package galois

import "sync/atomic"

// wsDeque is a Chase-Lev work-stealing deque of chunks: the owner pushes and
// pops at the bottom (LIFO, cache-warm), thieves steal from the top (FIFO,
// oldest work first). This is the "highly scalable concurrent data
// structures such as worklists" §III-B credits Galois with; the asynchronous
// executor runs one deque per worker.
type wsDeque struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[dequeBuf]
}

// dequeBuf is one circular backing array; it is replaced wholesale on
// growth, so concurrent stealers always read a consistent snapshot.
type dequeBuf struct {
	mask  int64
	items []atomic.Pointer[chunk]
}

func newDequeBuf(capacity int64) *dequeBuf {
	//gapvet:ignore alloc-in-timed-region -- Chase-Lev growth: capacity doubles, so the copy amortizes to O(1) per push
	return &dequeBuf{mask: capacity - 1, items: make([]atomic.Pointer[chunk], capacity)}
}

func newWSDeque() *wsDeque {
	d := &wsDeque{}
	d.buf.Store(newDequeBuf(64))
	return d
}

// pushBottom appends a chunk at the owner's end. Owner-only.
func (d *wsDeque) pushBottom(c *chunk) {
	b := d.bottom.Load()
	t := d.top.Load()
	buf := d.buf.Load()
	if b-t >= buf.mask { // full: grow
		buf = d.grow(buf, t, b)
	}
	buf.items[b&buf.mask].Store(c)
	d.bottom.Store(b + 1)
}

// popBottom removes the most recently pushed chunk. Owner-only; returns nil
// when the deque is empty (including losing the race for the last element).
func (d *wsDeque) popBottom() *chunk {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(t)
		return nil
	}
	c := buf.items[b&buf.mask].Load()
	if b > t {
		return c
	}
	// Single element left: race against stealers via the top counter.
	if !d.top.CompareAndSwap(t, t+1) {
		c = nil // a thief got it
	}
	d.bottom.Store(t + 1)
	return c
}

// steal removes the oldest chunk. Safe for any goroutine; returns nil when
// empty or when another thief won the race.
func (d *wsDeque) steal() *chunk {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	buf := d.buf.Load()
	c := buf.items[t&buf.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return c
}

// grow doubles the buffer, copying the live window [t, b).
func (d *wsDeque) grow(old *dequeBuf, t, b int64) *dequeBuf {
	bigger := newDequeBuf((old.mask + 1) * 2)
	for i := t; i < b; i++ {
		bigger.items[i&bigger.mask].Store(old.items[i&old.mask].Load())
	}
	d.buf.Store(bigger)
	return bigger
}

// size reports an instantaneous (racy) size estimate.
func (d *wsDeque) size() int64 {
	s := d.bottom.Load() - d.top.Load()
	if s < 0 {
		return 0
	}
	return s
}

package galois

import (
	"sync"
	"sync/atomic"
	"testing"
)

func mkChunk(v int32) *chunk {
	c := chunkPool.Get().(*chunk)
	c.n = 1
	c.items[0] = v
	return c
}

func TestDequeOwnerLIFO(t *testing.T) {
	d := newWSDeque()
	if d.popBottom() != nil {
		t.Fatal("pop from empty returned a chunk")
	}
	for i := int32(0); i < 5; i++ {
		d.pushBottom(mkChunk(i))
	}
	if d.size() != 5 {
		t.Fatalf("size = %d", d.size())
	}
	for i := int32(4); i >= 0; i-- {
		c := d.popBottom()
		if c == nil || c.items[0] != i {
			t.Fatalf("pop %d got %v", i, c)
		}
	}
	if d.popBottom() != nil {
		t.Fatal("deque not empty after draining")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := newWSDeque()
	for i := int32(0); i < 4; i++ {
		d.pushBottom(mkChunk(i))
	}
	for i := int32(0); i < 4; i++ {
		c := d.steal()
		if c == nil || c.items[0] != i {
			t.Fatalf("steal %d got %v", i, c)
		}
	}
	if d.steal() != nil {
		t.Fatal("steal from empty returned a chunk")
	}
}

func TestDequeGrowth(t *testing.T) {
	d := newWSDeque()
	const n = 1000 // well past the initial 64 capacity
	for i := int32(0); i < n; i++ {
		d.pushBottom(mkChunk(i))
	}
	seen := map[int32]bool{}
	for {
		c := d.popBottom()
		if c == nil {
			break
		}
		if seen[c.items[0]] {
			t.Fatalf("duplicate %d after growth", c.items[0])
		}
		seen[c.items[0]] = true
	}
	if len(seen) != n {
		t.Fatalf("recovered %d of %d items", len(seen), n)
	}
}

// TestDequeConcurrentStress: one owner pushing/popping, several thieves
// stealing; every chunk must be consumed exactly once.
func TestDequeConcurrentStress(t *testing.T) {
	d := newWSDeque()
	total := int32(50_000)
	if testing.Short() {
		// The -race smoke tier (scripts/check.sh) needs contention, not
		// volume: a tenth of the chunks still interleaves pop and steal.
		total = 5_000
	}
	const thieves = 4
	consumed := make([]atomic.Int32, total)
	var count atomic.Int64
	record := func(c *chunk) {
		if c == nil {
			return
		}
		if consumed[c.items[0]].Add(1) != 1 {
			t.Error("chunk consumed twice")
		}
		count.Add(1)
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < thieves; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					// Final sweep.
					for {
						c := d.steal()
						if c == nil {
							return
						}
						record(c)
					}
				default:
					record(d.steal())
				}
			}
		}()
	}
	// Owner: interleave pushes and pops.
	for i := int32(0); i < total; i++ {
		d.pushBottom(mkChunk(i))
		if i%3 == 0 {
			record(d.popBottom())
		}
	}
	for {
		c := d.popBottom()
		if c == nil {
			break
		}
		record(c)
	}
	close(done)
	wg.Wait()
	// Anything left (raced between owner-empty check and thief aborts).
	for {
		c := d.steal()
		if c == nil {
			break
		}
		record(c)
	}
	if count.Load() != int64(total) {
		t.Fatalf("consumed %d of %d chunks", count.Load(), total)
	}
}

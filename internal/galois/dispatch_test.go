package galois

import (
	"testing"

	"gapbench/internal/generate"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// TestDiameterDispatch checks the §V Baseline heuristic and its Optimized
// override: power-law graphs are assumed low-diameter (bulk-synchronous),
// everything else high-diameter (asynchronous) — which deliberately
// mislabels Urand in Baseline mode, and is corrected by name in Optimized
// mode.
func TestDiameterDispatch(t *testing.T) {
	cases := []struct {
		name         string
		baselineHigh bool // assumed high diameter under Baseline rules
	}{
		{"Road", true},
		{"Twitter", false},
		{"Kron", false},
		{"Urand", true}, // the §V-A mislabel: uniform degrees read as high diameter
	}
	for _, c := range cases {
		g, err := generate.ByName(c.name, 10, 99)
		if err != nil {
			t.Fatal(err)
		}
		base := kernel.Options{Mode: kernel.Baseline, UndirectedView: g.Undirected()}
		if got := assumeHighDiameter(g, base); got != c.baselineHigh {
			t.Errorf("%s: baseline high-diameter = %t, want %t", c.name, got, c.baselineHigh)
		}
		// Cached: second call must agree.
		if got := assumeHighDiameter(g, base); got != c.baselineHigh {
			t.Errorf("%s: cached classification flipped", c.name)
		}
		// Optimized mode knows the graph by name: only Road is high-diameter.
		opt := kernel.Options{Mode: kernel.Optimized, GraphName: c.name, UndirectedView: g.Undirected()}
		if got := assumeHighDiameter(g, opt); got != (c.name == "Road") {
			t.Errorf("%s: optimized high-diameter = %t", c.name, got)
		}
	}
}

// TestAsyncAndSyncBFSAgree cross-checks the two BFS variants' semantics on
// the graph each is NOT normally chosen for.
func TestAsyncAndSyncBFSAgree(t *testing.T) {
	for _, name := range []string{"Road", "Kron"} {
		g, err := generate.ByName(name, 9, 3)
		if err != nil {
			t.Fatal(err)
		}
		var src int32
		for g.OutDegree(src) == 0 {
			src++
		}
		a := asyncBFS(par.Default(), g, src, 4)
		s := syncBFS(par.Default(), g, src, 4)
		for v := range a {
			if (a[v] >= 0) != (s[v] >= 0) {
				t.Fatalf("%s: reachability of %d differs between variants", name, v)
			}
		}
	}
}

// TestBulkAndAsyncSSSPAgree does the same for the delta-stepping variants.
func TestBulkAndAsyncSSSPAgree(t *testing.T) {
	g, err := generate.Web(9, 8)
	if err != nil {
		t.Fatal(err)
	}
	var src int32
	for g.OutDegree(src) == 0 {
		src++
	}
	bulk := bulkSSSP(par.Default(), g, src, 16, 4)
	async := asyncSSSP(par.Default(), g, src, 16, 4)
	for v := range bulk {
		if bulk[v] != async[v] {
			t.Fatalf("dist[%d]: bulk %d != async %d", v, bulk[v], async[v])
		}
	}
}

// TestEdgeBlockedAfforestAgrees validates the Optimized-mode Web variant
// against the per-vertex phase.
func TestEdgeBlockedAfforestAgrees(t *testing.T) {
	g, err := generate.Web(9, 8)
	if err != nil {
		t.Fatal(err)
	}
	plain := afforest(par.Default(), g, 4, false)
	blocked := afforest(par.Default(), g, 4, true)
	canon := func(labels []int32) map[int32]int32 {
		m := map[int32]int32{}
		for v, l := range labels {
			if _, ok := m[l]; !ok {
				m[l] = int32(v)
			}
		}
		return m
	}
	cp, cb := canon(plain), canon(blocked)
	for v := range plain {
		if cp[plain[v]] != cb[blocked[v]] {
			t.Fatalf("partitions differ at %d", v)
		}
	}
}

package galois

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gapbench/internal/graph"
	"gapbench/internal/par"
)

// Ctx is the operator's handle for generating new work (the Galois
// UserContext). Pushes go to a worker-local chunk and spill through the
// executor's sink (the worker's deque, or the next round's bag) when full.
type Ctx struct {
	local   *chunk
	spill   func(*chunk)
	pending *atomic.Int64
}

// Push schedules v for (re-)processing.
func (c *Ctx) Push(v graph.NodeID) {
	c.pending.Add(1)
	if c.local.n == chunkSize {
		c.spill(c.local)
		c.local = chunkPool.Get().(*chunk)
		c.local.n = 0
	}
	c.local.items[c.local.n] = v
	c.local.n++
}

// ForEachAsync runs op over the initial work items and everything they push,
// with no round structure: each worker owns a Chase-Lev deque (LIFO for
// itself, stolen FIFO by idle workers) and drains until global quiescence.
// This is Galois' asynchronous data-driven executor — the mechanism §VI
// credits for converging "sooner because they can update information faster
// without waiting at the bulk synchronous ... iteration boundaries".
//
// The operator may be applied to the same vertex many times and must be a
// monotone relaxation (idempotent at fixed point), which all the kernels
// here are.
//
// The worker loops run as one region on the given machine (one slot per
// worker id): Galois' persistent-thread executor mapped onto our persistent
// pool, so a whole asynchronous traversal costs one launch. When the machine
// has fewer participants than workers the slots run in sequence, which stays
// correct — any single slot can drain the whole computation to quiescence by
// stealing.
func ForEachAsync(exec *par.Machine, workers int, initial []graph.NodeID, op func(ctx *Ctx, v graph.NodeID)) {
	if workers < 1 {
		workers = 1
	}
	deques := make([]*wsDeque, workers)
	for w := range deques {
		deques[w] = newWSDeque()
	}
	// Distribute the seed work round-robin across the deques.
	for at, w := 0, 0; at < len(initial); w = (w + 1) % workers {
		c := chunkPool.Get().(*chunk)
		c.n = copy(c.items[:], initial[at:])
		at += c.n
		deques[w].pushBottom(c)
	}
	var pending atomic.Int64
	pending.Store(int64(len(initial)))

	// Cooperative cancellation: every worker checks the machine's token at
	// its chunk-claim boundary. One worker bailing early leaves pending > 0
	// forever, so the token is the *only* way the others exit — each one
	// observes it either at the loop top or in the idle branch.
	tok := exec.CancelToken()
	exec.ForWorker(workers, workers, func(w, _, _ int) {
		own := deques[w]
		ctx := &Ctx{local: chunkPool.Get().(*chunk), pending: &pending}
		ctx.local.n = 0
		//gapvet:ignore alloc-in-timed-region -- one spill closure per worker goroutine: per-worker setup, not per-element churn
		ctx.spill = func(c *chunk) { own.pushBottom(c) }
		rng := uint64(w)*0x9e3779b97f4a7c15 + 0x853c49e6748fea9b
		idle := 0
		for {
			if tok.Cancelled() {
				break // cancelled: abandon remaining work, results are discarded
			}
			// Own partial chunk first (locality), then own deque, then
			// steal from a random victim.
			c := ctx.local
			if c.n == 0 {
				c = own.popBottom()
				for attempts := 0; c == nil && attempts < 2*workers; attempts++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					victim := int((rng >> 33) % uint64(workers))
					if victim != w {
						c = deques[victim].steal()
					}
				}
				if c == nil {
					if pending.Load() == 0 {
						break
					}
					idle++
					if idle > 16 {
						time.Sleep(time.Duration(min(idle, 200)) * time.Microsecond)
					} else {
						runtime.Gosched()
					}
					continue
				}
				idle = 0
			} else {
				ctx.local = chunkPool.Get().(*chunk)
				ctx.local.n = 0
			}
			n := c.n
			for i := 0; i < n; i++ {
				op(ctx, c.items[i])
			}
			pending.Add(-int64(n))
			c.n = 0
			chunkPool.Put(c)
		}
		chunkPool.Put(ctx.local)
	})
}

// ForEachRounds runs op over work in bulk-synchronous rounds: the operator's
// pushes form the next round's frontier, with a barrier between rounds (the
// level-synchronous executor).
func ForEachRounds(exec *par.Machine, workers int, initial []graph.NodeID, op func(ctx *Ctx, v graph.NodeID)) {
	if workers < 1 {
		workers = 1
	}
	tok := exec.CancelToken()
	frontier := fillBag(initial)
	for !frontier.empty() && !tok.Cancelled() {
		next := &bag{}
		var pending atomic.Int64 // unused for termination here, but Ctx needs it
		exec.ForWorker(workers, workers, func(_, _, _ int) {
			//gapvet:ignore escape-in-kernel -- one context per worker per round: region setup, amortized over the frontier's chunks
			ctx := &Ctx{local: chunkPool.Get().(*chunk), pending: &pending}
			ctx.local.n = 0
			//gapvet:ignore alloc-in-timed-region,escape-in-kernel -- one spill closure per worker slot: per-worker setup, not per-element churn
			ctx.spill = func(c *chunk) { next.put(c) }
			for {
				if tok.Cancelled() {
					break
				}
				c := frontier.get()
				if c == nil {
					break
				}
				for i := 0; i < c.n; i++ {
					op(ctx, c.items[i])
				}
				c.n = 0
				chunkPool.Put(c)
			}
			next.put(ctx.local)
		})
		frontier = next
	}
}

// PCtx is the push context for the ordered executor; pushes carry a priority
// (lower runs earlier, best-effort).
type PCtx struct {
	exec  *obim
	local map[int]*chunk
}

// Push schedules v at the given priority level. Full chunks spill to the
// shared level bags (becoming stealable); the partial chunk per priority
// stays worker-local and is processed locally in priority order — the
// locality that lets one worker race down a high-diameter graph with no
// synchronization at all while others help whenever chunks spill.
func (c *PCtx) Push(v graph.NodeID, priority int) {
	c.exec.pending.Add(1)
	lc := c.local[priority]
	if lc == nil {
		lc = chunkPool.Get().(*chunk)
		lc.n = 0
		c.local[priority] = lc
	}
	lc.items[lc.n] = v
	lc.n++
	if lc.n == chunkSize {
		c.exec.level(priority).put(lc)
		delete(c.local, priority)
	}
}

// popLowestLocal removes and returns the worker's lowest-priority local
// chunk, or nil.
func (c *PCtx) popLowestLocal() *chunk {
	best := -1
	for p, lc := range c.local {
		if lc.n == 0 {
			continue
		}
		if best < 0 || p < best {
			best = p
		}
	}
	if best < 0 {
		return nil
	}
	lc := c.local[best]
	delete(c.local, best)
	return lc
}

// obim is the ordered-by-integer-metric scheduler: one bag per priority
// level, workers always draining the lowest non-empty level they can find.
// Like Galois' OBIM it is best-effort — out-of-order execution is possible
// and the operators tolerate it (label-correcting relaxations).
type obim struct {
	mu      sync.Mutex
	levels  []*bag
	minHint atomic.Int64
	pending atomic.Int64
}

func (o *obim) level(p int) *bag {
	o.mu.Lock()
	for p >= len(o.levels) {
		//gapvet:ignore escape-in-kernel -- one bag per priority level for the scheduler's lifetime; the slice only grows
		o.levels = append(o.levels, &bag{})
	}
	b := o.levels[p]
	o.mu.Unlock()
	if int64(p) < o.minHint.Load() {
		o.minHint.Store(int64(p)) // benign race: a hint, not an invariant
	}
	return b
}

// next returns a chunk from the lowest non-empty shared level. The level
// slice is snapshotted under one lock; the per-level bags have their own
// locks, so idle workers probing for work do not serialize the workers that
// are producing it.
func (o *obim) next() *chunk {
	start := o.minHint.Load()
	if start < 0 {
		start = 0
	}
	o.mu.Lock()
	levels := o.levels
	o.mu.Unlock()
	for p := int(start); p < len(levels); p++ {
		if c := levels[p].get(); c != nil {
			o.minHint.Store(int64(p))
			return c
		}
	}
	// Nothing found from the hint onward; rescan from zero once.
	if start > 0 {
		o.minHint.Store(0)
		return o.next()
	}
	return nil
}

// ForEachOrdered runs op over work in approximate priority order: the OBIM
// executor behind Galois' asynchronous BFS, SSSP, and BC. Each worker
// prefers its own lowest-priority partial chunk (no synchronization), then
// steals from the shared levels; spilled full chunks keep the other workers
// fed. Quiescence is detected with a global outstanding-work counter.
func ForEachOrdered(exec *par.Machine, workers int, initial []graph.NodeID, initialPriority int, op func(ctx *PCtx, v graph.NodeID)) {
	if workers < 1 {
		workers = 1
	}
	o := &obim{}
	seedCtx := &PCtx{exec: o, local: map[int]*chunk{}}
	for _, v := range initial {
		seedCtx.Push(v, initialPriority)
	}
	seedCtx.flushAll()

	// Same cancellation contract as ForEachAsync: the token is the only exit
	// once any worker abandons work with pending > 0.
	tok := exec.CancelToken()
	exec.ForWorker(workers, workers, func(_, _, _ int) {
		ctx := &PCtx{exec: o, local: map[int]*chunk{}}
		idle := 0
		for {
			if tok.Cancelled() {
				break
			}
			c := ctx.popLowestLocal()
			if c == nil {
				c = o.next()
				if c == nil {
					if o.pending.Load() == 0 {
						break
					}
					// Exponential backoff keeps idle workers from
					// hammering the scheduler while one worker races
					// down a long dependence chain (Road).
					idle++
					if idle > 16 {
						time.Sleep(time.Duration(min(idle, 200)) * time.Microsecond)
					} else {
						runtime.Gosched()
					}
					continue
				}
			}
			idle = 0
			n := c.n
			for i := 0; i < n; i++ {
				op(ctx, c.items[i])
			}
			o.pending.Add(-int64(n))
			c.n = 0
			chunkPool.Put(c)
		}
	})
}

// flushAll spills every partial local chunk to the shared levels.
func (c *PCtx) flushAll() {
	for p, lc := range c.local {
		if lc.n > 0 {
			c.exec.level(p).put(lc)
		} else {
			chunkPool.Put(lc)
		}
		delete(c.local, p)
	}
}

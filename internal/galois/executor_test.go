package galois

import (
	"sync"
	"sync/atomic"
	"testing"

	"gapbench/internal/graph"
	"gapbench/internal/par"
	"gapbench/internal/testutil"
)

func TestForEachAsyncProcessesAllInitialWork(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const n = 10_000
	initial := make([]graph.NodeID, n)
	for i := range initial {
		initial[i] = graph.NodeID(i)
	}
	var count atomic.Int64
	for _, workers := range []int{1, 4} {
		count.Store(0)
		ForEachAsync(par.Default(), workers, initial, func(_ *Ctx, v graph.NodeID) {
			count.Add(1)
		})
		if count.Load() != n {
			t.Fatalf("workers=%d processed %d, want %d", workers, count.Load(), n)
		}
	}
}

func TestForEachAsyncProcessesPushes(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// Operator pushes a chain: 0 pushes 1, 1 pushes 2, ... up to limit.
	const limit = 5000
	var seen sync.Map
	var count atomic.Int64
	ForEachAsync(par.Default(), 4, []graph.NodeID{0}, func(ctx *Ctx, v graph.NodeID) {
		if _, dup := seen.LoadOrStore(v, true); dup {
			return
		}
		count.Add(1)
		if v+1 < limit {
			ctx.Push(v + 1)
		}
	})
	if count.Load() != limit {
		t.Fatalf("processed %d distinct items, want %d", count.Load(), limit)
	}
}

func TestForEachAsyncFanOut(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// Each item pushes two children to depth 12: 2^13-1 total ops.
	const depth = 12
	var count atomic.Int64
	ForEachAsync(par.Default(), 4, []graph.NodeID{1}, func(ctx *Ctx, v graph.NodeID) {
		count.Add(1)
		if v < 1<<depth {
			ctx.Push(2 * v)
			ctx.Push(2*v + 1)
		}
	})
	want := int64(1<<(depth+1)) - 1
	if count.Load() != want {
		t.Fatalf("processed %d, want %d", count.Load(), want)
	}
}

func TestForEachRoundsBarrierOrder(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// A chain where each round holds exactly one item: the barrier between
	// rounds forces strictly sequential observation order, regardless of
	// worker count.
	var mu sync.Mutex
	var order []graph.NodeID
	ForEachRounds(par.Default(), 4, []graph.NodeID{0}, func(ctx *Ctx, v graph.NodeID) {
		mu.Lock()
		order = append(order, v)
		mu.Unlock()
		if v+1 < 50 {
			ctx.Push(v + 1)
		}
	})
	if len(order) != 50 {
		t.Fatalf("processed %d, want 50", len(order))
	}
	for i, v := range order {
		if v != graph.NodeID(i) {
			t.Fatalf("order[%d] = %d: barrier violated", i, v)
		}
	}
}

func TestForEachRoundsChainLength(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	var count atomic.Int64
	const chain = 257 // crosses several chunk boundaries
	ForEachRounds(par.Default(), 3, []graph.NodeID{0}, func(ctx *Ctx, v graph.NodeID) {
		count.Add(1)
		if v+1 < chain {
			ctx.Push(v + 1)
		}
	})
	if count.Load() != chain {
		t.Fatalf("processed %d, want %d", count.Load(), chain)
	}
}

func TestForEachOrderedQuiescence(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// A diamond of pushes with duplicate paths, guarded the way real
	// relaxation operators are: only the first claim of an item pushes its
	// successors. All items must be claimed and the executor must reach
	// quiescence.
	const limit = 2000
	claimed := make([]int32, limit+2)
	claim := func(v graph.NodeID) bool {
		return atomic.CompareAndSwapInt32(&claimed[v], 0, 1)
	}
	claim(0)
	ForEachOrdered(par.Default(), 4, []graph.NodeID{0}, 0, func(ctx *PCtx, v graph.NodeID) {
		if v >= limit {
			return
		}
		if claim(v + 1) {
			ctx.Push(v+1, int(v+1))
		}
		if v%3 == 0 && claim(v+2) {
			ctx.Push(v+2, int(v+2)) // duplicate path
		}
	})
	for v := graph.NodeID(0); v <= limit; v++ {
		if claimed[v] == 0 {
			t.Fatalf("item %d never claimed", v)
		}
	}
}

func TestForEachOrderedApproximatePriority(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// Single worker: strictly local-first in ascending priority. Seed two
	// priorities and confirm the low one runs first.
	var order []graph.NodeID
	initial := []graph.NodeID{100} // priority 0 seeds item "100"
	ForEachOrdered(par.Default(), 1, initial, 5, func(ctx *PCtx, v graph.NodeID) {
		order = append(order, v)
		if v == 100 {
			ctx.Push(1, 1) // lower priority than the seed's 5
			ctx.Push(9, 9)
		}
	})
	if len(order) != 3 || order[0] != 100 || order[1] != 1 || order[2] != 9 {
		t.Fatalf("order = %v, want [100 1 9]", order)
	}
}

func TestBagPutGet(t *testing.T) {
	b := &bag{}
	if !b.empty() || b.get() != nil {
		t.Fatal("fresh bag not empty")
	}
	c := chunkPool.Get().(*chunk)
	c.n = 1
	c.items[0] = 7
	b.put(c)
	if b.empty() {
		t.Fatal("bag empty after put")
	}
	got := b.get()
	if got == nil || got.items[0] != 7 {
		t.Fatal("get returned wrong chunk")
	}
	got.n = 0
	chunkPool.Put(got)
	// Empty chunks are dropped silently.
	e := chunkPool.Get().(*chunk)
	e.n = 0
	b.put(e)
	if !b.empty() {
		t.Fatal("empty chunk stored")
	}
}

func TestFillBagRoundTrip(t *testing.T) {
	items := make([]graph.NodeID, 1000)
	for i := range items {
		items[i] = graph.NodeID(i)
	}
	b := fillBag(items)
	got := drainBag(b, nil)
	if len(got) != len(items) {
		t.Fatalf("drained %d, want %d", len(got), len(items))
	}
	seen := map[graph.NodeID]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestPackUnpack(t *testing.T) {
	for _, c := range []struct {
		d int32
		p graph.NodeID
	}{{0, 0}, {5, 42}, {1 << 29, -1}, {7, 1<<31 - 1}} {
		s := pack(c.d, c.p)
		if depthOf(s) != c.d || parentOf(s) != c.p {
			t.Fatalf("pack(%d,%d) round trip gave (%d,%d)", c.d, c.p, depthOf(s), parentOf(s))
		}
	}
}

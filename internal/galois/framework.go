package galois

import (
	"sync"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// Framework is the Galois reproduction.
type Framework struct{}

// New returns the Galois framework.
func New() *Framework { return &Framework{} }

// Name implements kernel.Framework.
func (*Framework) Name() string { return "Galois" }

// Attributes returns the Table II row.
func (*Framework) Attributes() map[string]string {
	return map[string]string{
		"Type":                      "generic high-level library",
		"Internal Graph Data":       "outgoing and/or incoming edges",
		"Programming Abstraction":   "vertex, edge, or chunked-edges centric",
		"Execution Synchronization": "level-synchronous or asynchronous",
		"Intended Users":            "graph domain experts",
	}
}

// Algorithms returns the Table III row.
func (*Framework) Algorithms() kernel.Algorithms {
	return kernel.Algorithms{
		BFS:  "Direction-optimizing (+async variant)",
		SSSP: "Delta-stepping (+async variant)",
		CC:   "Afforest (+edge-blocked variant)",
		PR:   "Gauss-Seidel SpMV",
		BC:   "Brandes (+async forward pass)",
		TC:   "Order invariant",
	}
}

var (
	_ kernel.Framework = (*Framework)(nil)
	_ kernel.Describer = (*Framework)(nil)
)

// diameterGuess caches the degree-distribution sampling per input graph;
// Galois classifies an input once when it is loaded, not per kernel run.
var diameterGuess sync.Map // *graph.Graph -> bool (assumed high diameter)

// assumeHighDiameter is the per-graph dispatch from §V: in the Baseline rule
// set Galois samples the degree distribution and "assumed the graph had a
// low diameter if it has power-law degree distribution and a high diameter
// otherwise" — which mislabels Urand (low diameter, uniform degrees), the
// source of its poor Baseline BFS/BC there. In Optimized mode the graph is
// known by name and only Road is treated as high-diameter.
func assumeHighDiameter(g *graph.Graph, opt kernel.Options) bool {
	if opt.Mode == kernel.Optimized && opt.GraphName != "" {
		return opt.GraphName == "Road"
	}
	if v, ok := diameterGuess.Load(g); ok {
		return v.(bool)
	}
	high := graph.ClassifyDegrees(opt.Undirected(g)) != graph.DistPower
	diameterGuess.Store(g, high)
	return high
}

// BFS implements kernel.Framework: asynchronous relaxation when the graph is
// assumed high-diameter, bulk-synchronous direction-optimizing otherwise.
func (*Framework) BFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	if assumeHighDiameter(g, opt) {
		return asyncBFS(opt.Exec(), g, src, opt.EffectiveWorkers())
	}
	return syncBFS(opt.Exec(), g, src, opt.EffectiveWorkers())
}

// SSSP implements kernel.Framework: asynchronous OBIM delta-stepping for
// assumed-high-diameter graphs, bulk-synchronous delta-stepping otherwise.
// Neither variant has GAP's bucket-fusion optimization, which §V-B credits
// for GAP's edge over Galois.
func (*Framework) SSSP(g *graph.Graph, src graph.NodeID, opt kernel.Options) []kernel.Dist {
	delta := opt.Delta
	if delta <= 0 {
		delta = 16
	}
	if assumeHighDiameter(g, opt) {
		return asyncSSSP(opt.Exec(), g, src, delta, opt.EffectiveWorkers())
	}
	return bulkSSSP(opt.Exec(), g, src, delta, opt.EffectiveWorkers())
}

// PR implements kernel.Framework via Gauss-Seidel in-place updates.
func (*Framework) PR(g *graph.Graph, opt kernel.Options) []float64 {
	return pagerankGS(opt.Exec(), g, opt.EffectiveWorkers())
}

// CC implements kernel.Framework via Afforest; the Optimized rule set on Web
// uses the edge-blocked final phase (§V-C: "the edge blocking variant of the
// Afforest algorithm used in Galois performs much better due to better load
// balancing").
func (*Framework) CC(g *graph.Graph, opt kernel.Options) []graph.NodeID {
	edgeBlocked := opt.Mode == kernel.Optimized && opt.GraphName == "Web"
	return afforest(opt.Exec(), g, opt.EffectiveWorkers(), edgeBlocked)
}

// BC implements kernel.Framework: Brandes with an asynchronous forward pass
// on assumed-high-diameter graphs.
func (*Framework) BC(g *graph.Graph, sources []graph.NodeID, opt kernel.Options) []float64 {
	return brandes(opt.Exec(), g, sources, opt.EffectiveWorkers(), assumeHighDiameter(g, opt))
}

// TC implements kernel.Framework: the GAP order-invariant algorithm with
// fine-grained work stealing. Optimized mode excludes relabeling time (§V-F)
// by using the harness's pre-relabeled view.
func (*Framework) TC(g *graph.Graph, opt kernel.Options) int64 {
	u := opt.Undirected(g)
	if opt.Mode == kernel.Optimized && opt.RelabeledView != nil {
		u = opt.RelabeledView
	} else if graph.SkewedDegrees(u) {
		u, _ = graph.DegreeRelabel(u)
	}
	return triangleCount(opt.Exec(), u, opt.EffectiveWorkers())
}

package galois_test

import (
	"testing"

	"gapbench/internal/galois"
	"gapbench/internal/generate"
	"gapbench/internal/testutil"
)

func TestConformance(t *testing.T) {
	testutil.RunConformance(t, galois.New())
}

func TestDescribe(t *testing.T) {
	testutil.Describe(t, galois.New())
}

func TestAcrossWorkerCounts(t *testing.T) {
	g, err := generate.Road(8, 7)
	if err != nil {
		t.Fatal(err)
	}
	testutil.RunKernelAcrossWorkers(t, galois.New(), g)
}

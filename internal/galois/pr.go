package galois

import (
	"math"
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// pagerankGS is Galois' Gauss-Seidel-style PageRank: per-edge contributions
// (rank/degree) are stored pre-scaled and updated in place, so later
// vertices within a sweep already see this sweep's earlier updates. §V-D:
// "Galois is faster than GAP because its Gauss-Seidel-style algorithm
// converges faster and performs fewer operations", with the advantage
// growing with graph diameter — a shape this reproduction recovers on the
// high-diameter graphs; see EXPERIMENTS.md for the scale-dependent
// exception on the small synthetic expanders.
//
// Parallel Gauss-Seidel is chaotic relaxation: workers read whatever
// contribution a neighbor currently has. The contribution array is accessed
// through atomic loads/stores of float64 bit patterns (plain MOVs on the
// architectures we run on) to keep the chaos well-defined under the Go
// memory model. The sweep is a topology-driven loop over statically blocked
// ranges, the analogue of Galois' NUMA-blocked dense worklist.
func pagerankGS(exec *par.Machine, g *graph.Graph, workers int) []float64 {
	n := int(g.NumNodes())
	if n == 0 {
		return nil
	}
	base := (1 - kernel.PRDamping) / float64(n)
	ranks := make([]float64, n)
	contrib := make([]uint64, n) // float64 bits of rank/out-degree
	invDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		ranks[v] = 1 / float64(n)
		if d := g.OutDegree(graph.NodeID(v)); d > 0 {
			invDeg[v] = 1 / float64(d)
			contrib[v] = math.Float64bits(ranks[v] * invDeg[v])
		}
	}

	for it := 0; it < kernel.PRMaxIters; it++ {
		if exec.Interrupted() {
			return ranks // partial scores; the harness discards cancelled trials
		}
		// Dangling mass from the current scores; staleness within a sweep
		// vanishes at the fixed point.
		dangling := exec.ReduceFloat64(n, workers, func(lo, hi int) float64 {
			var d float64
			for u := lo; u < hi; u++ {
				if invDeg[u] == 0 {
					d += ranks[u]
				}
			}
			return d
		})
		share := kernel.PRDamping * dangling / float64(n)

		delta := exec.ReduceFloat64(n, workers, func(lo, hi int) float64 {
			var d float64
			for vi := lo; vi < hi; vi++ {
				v := graph.NodeID(vi)
				sum := 0.0
				for _, u := range g.InNeighbors(v) {
					sum += math.Float64frombits(atomic.LoadUint64(&contrib[u]))
				}
				next := base + share + kernel.PRDamping*sum
				d += math.Abs(next - ranks[v])
				ranks[v] = next // ranks[v] is owner-written only
				if invDeg[v] != 0 {
					// In place: successors see it within this same sweep.
					atomic.StoreUint64(&contrib[v], math.Float64bits(next*invDeg[v]))
				}
			}
			return d
		})
		if delta < kernel.PRTolerance {
			break
		}
	}
	return ranks
}

package galois

import (
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// relaxEdges applies the SSSP relaxation operator to u: CAS-min every
// out-neighbor's distance and report improvements through push.
func relaxEdges(g *graph.Graph, dist []kernel.Dist, u graph.NodeID, push func(v graph.NodeID, nd kernel.Dist)) {
	du := atomic.LoadInt32(&dist[u])
	neigh := g.OutNeighbors(u)
	ws := g.OutWeights(u)
	for i, v := range neigh {
		nd := du + ws[i]
		old := atomic.LoadInt32(&dist[v])
		for nd < old {
			if atomic.CompareAndSwapInt32(&dist[v], old, nd) {
				push(v, nd)
				break
			}
			old = atomic.LoadInt32(&dist[v])
		}
	}
}

// asyncSSSP is Galois' asynchronous delta-stepping: the relaxation operator
// over the OBIM ordered executor, priority = distance/delta. No per-bucket
// barriers exist, which is what narrows the gap to GAP on Road (§V-B:
// "Asynchronous execution in Galois for Road reduces this performance gap").
func asyncSSSP(exec *par.Machine, g *graph.Graph, src graph.NodeID, delta kernel.Dist, workers int) []kernel.Dist {
	n := int(g.NumNodes())
	dist := make([]kernel.Dist, n)
	for i := range dist {
		dist[i] = kernel.Inf
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	ForEachOrdered(exec, workers, []graph.NodeID{src}, 0, func(ctx *PCtx, u graph.NodeID) {
		relaxEdges(g, dist, u, func(v graph.NodeID, nd kernel.Dist) {
			ctx.Push(v, int(nd/delta))
		})
	})
	return dist
}

// bulkSSSP is bulk-synchronous delta-stepping through the worklist
// machinery: each bucket drains to a fixed point with barriers between
// passes. Deliberately absent is GAP's bucket fusion; §V-B: "GAP is faster
// than Galois due to the bucket fusion optimization".
func bulkSSSP(exec *par.Machine, g *graph.Graph, src graph.NodeID, delta kernel.Dist, workers int) []kernel.Dist {
	n := int(g.NumNodes())
	dist := make([]kernel.Dist, n)
	for i := range dist {
		dist[i] = kernel.Inf
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0

	// buckets[b] holds the pending work for priority level b.
	var buckets []*bag
	level := func(b int) *bag {
		for b >= len(buckets) {
			buckets = append(buckets, &bag{})
		}
		return buckets[b]
	}
	seed := chunkPool.Get().(*chunk)
	seed.items[0] = src
	seed.n = 1
	level(0).put(seed)

	// Per-worker scratch reused across every bulk pass: the tagged-chunk
	// collector and the partial-chunk map are allocated once per search, not
	// once per pass, and drained back to empty at each barrier.
	results := make([]*priorityChunks, workers)
	locals := make([]map[int]*chunk, workers)
	for w := range results {
		results[w] = &priorityChunks{tagged: map[int][]*chunk{}}
		locals[w] = map[int]*chunk{}
	}

	for b := 0; b < len(buckets); b++ {
		lo := kernel.Dist(b) * delta
		hi := lo + delta
		for !buckets[b].empty() {
			if exec.Interrupted() {
				return dist // partial distances; the harness discards cancelled trials
			}
			// One bulk-synchronous pass over the bucket's current chunks.
			work := drainBag(buckets[b], nil)
			exec.ForWorker(len(work), workers, func(w, loI, hiI int) {
				out := results[w]
				local := locals[w]
				for i := loI; i < hiI; i++ {
					u := work[i]
					du := atomic.LoadInt32(&dist[u])
					if du < lo || du >= hi {
						continue // settled earlier or migrated buckets
					}
					//gapvet:ignore inline-miss -- relaxEdges loops over u's whole edge list: call overhead is amortized per edge, and splitting it would split that loop
					relaxEdges(g, dist, u, func(v graph.NodeID, nd kernel.Dist) {
						p := int(nd / delta)
						lc := local[p]
						if lc == nil {
							lc = chunkPool.Get().(*chunk)
							lc.n = 0
							local[p] = lc
						}
						// Tag the chunk with its priority via the bag map on
						// flush; chunks themselves are priority-agnostic.
						if lc.n == chunkSize {
							out.putTagged(p, lc)
							lc = chunkPool.Get().(*chunk)
							lc.n = 0
							local[p] = lc
						}
						lc.items[lc.n] = v
						lc.n++
					})
				}
				for p, lc := range local {
					out.putTagged(p, lc)
					delete(local, p)
				}
			})
			// Barrier: merge per-worker tagged chunks into the global buckets,
			// truncating each tag's slice in place so the next pass reuses its
			// capacity.
			for _, out := range results {
				for p, cs := range out.tagged {
					for _, c := range cs {
						level(p).put(c)
					}
					out.tagged[p] = cs[:0]
				}
			}
		}
	}
	return dist
}

// priorityChunks collects full chunks per priority level inside one worker
// during a bulk pass; the merge into global buckets happens at the barrier.
type priorityChunks struct {
	tagged map[int][]*chunk
}

func (p *priorityChunks) putTagged(prio int, c *chunk) {
	if c.n == 0 {
		chunkPool.Put(c)
		return
	}
	p.tagged[prio] = append(p.tagged[prio], c)
}

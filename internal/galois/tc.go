package galois

import (
	"gapbench/internal/graph"
	"gapbench/internal/par"
)

// triangleCount is the GAP order-invariant triangle count (Table III: Galois
// and GAP share the algorithm) scheduled with fine-grained dynamic chunks —
// the "better work stealing and load balancing" that §V-F says lets Galois
// beat GAP on the skewed Web graph, at the cost of stealing overhead on
// uniform-degree graphs like Urand.
func triangleCount(exec *par.Machine, u *graph.Graph, workers int) int64 {
	n := int(u.NumNodes())
	// Chunk of 8 vertices: much finer than GAP's 64, trading coordination
	// for balance on skewed rows.
	return exec.ReduceDynamicInt64(n, 8, workers, func(lo, hi int) int64 {
		var count int64
		for a := lo; a < hi; a++ {
			na := u.OutNeighbors(graph.NodeID(a))
			for _, b := range na {
				if b > graph.NodeID(a) {
					break
				}
				nb := u.OutNeighbors(b)
				it := 0
				for _, w := range nb {
					if w > b {
						break
					}
					for na[it] < w {
						it++
					}
					if na[it] == w {
						count++
					}
				}
			}
		}
		return count
	})
}

// Package galois reproduces the Galois framework the paper evaluates: the
// operator formulation of graph algorithms over concurrent chunked
// worklists, with bulk-synchronous and asynchronous executors and an
// OBIM-style ordered (priority) scheduler. §III-B and §VI credit exactly
// these mechanisms — sparse worklists, asynchronous data-driven execution,
// Gauss-Seidel in-place updates — for Galois' wins on high-diameter graphs,
// and this package implements them rather than imitating their timings.
package galois

import (
	"sync"

	"gapbench/internal/graph"
)

// chunkSize is the granule of work distribution. Galois distributes work in
// fixed-size chunks to amortize queue synchronization; 64 is its common
// default.
const chunkSize = 64

// chunk is one block of pending vertices.
type chunk struct {
	items [chunkSize]graph.NodeID
	n     int
}

var chunkPool = sync.Pool{New: func() any { return new(chunk) }}

// bag is an unordered concurrent collection of chunks (the Galois
// InsertBag / ChunkedFIFO hybrid): producers push full chunks, consumers
// steal whole chunks. A single mutex suffices because contention is once per
// chunkSize items.
type bag struct {
	mu     sync.Mutex
	chunks []*chunk
}

func (b *bag) put(c *chunk) {
	if c.n == 0 {
		return
	}
	b.mu.Lock()
	b.chunks = append(b.chunks, c)
	b.mu.Unlock()
}

func (b *bag) get() *chunk {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.chunks) == 0 {
		return nil
	}
	c := b.chunks[len(b.chunks)-1]
	b.chunks = b.chunks[:len(b.chunks)-1]
	return c
}

func (b *bag) empty() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.chunks) == 0
}

// fillBag distributes a slice of initial work into a bag in chunks.
func fillBag(items []graph.NodeID) *bag {
	b := &bag{}
	//gapvet:ignore cancel-liveness -- bounded: items shrinks by a full chunk every iteration, so the trip count is len(items)/chunkSize
	for len(items) > 0 {
		c := chunkPool.Get().(*chunk)
		c.n = copy(c.items[:], items)
		items = items[c.n:]
		b.put(c)
	}
	return b
}

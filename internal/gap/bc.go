package gap

import (
	"sync"
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// Brandes computes approximate betweenness centrality from the given root
// vertices using Brandes' algorithm with level-synchronous phases: a parallel
// BFS that records per-level frontiers, a pull-based path-count (sigma) pass
// per level, and a reverse dependency accumulation. Pulling sigma over
// in-edges per level makes both passes race-free, the same effect the GAP
// reference gets from its successor bitmaps. Scores are normalized by the
// maximum, matching the reference output.
func Brandes(g *graph.Graph, sources []graph.NodeID, opt kernel.Options) []float64 {
	n := int(g.NumNodes())
	workers := opt.EffectiveWorkers()
	exec := opt.Exec()
	scores := make([]float64, n)
	if n == 0 {
		return scores
	}

	depth := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	// One level-gathering appender for all sources: bcForward's chunk
	// closures capture the pointer by value, so no per-source (let alone
	// per-level) heap cell is allocated.
	var sink chunkAppender

	for _, src := range sources {
		exec.ForBlocked(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				//gapvet:ignore atomic-plain-mix -- reset phase: barrier-separated from bcForward's CAS on depth
				depth[i] = -1
				sigma[i] = 0
				delta[i] = 0
			}
		})
		depth[src] = 0
		sigma[src] = 1

		// Forward phase: level-synchronous parallel BFS capturing each level.
		levels := bcForward(exec, g, src, depth, workers, &sink)

		// Sigma phase: per level (in order), each vertex pulls path counts
		// from in-neighbors one level up. Writes are owner-only.
		for l := 1; l < len(levels); l++ {
			level := levels[l]
			exec.ForDynamic(len(level), 128, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := level[i]
					var s float64
					for _, u := range g.InNeighbors(v) {
						if depth[u] == depth[v]-1 {
							s += sigma[u]
						}
					}
					sigma[v] = s
				}
			})
		}

		// Backward phase: reverse level order; each vertex folds in its
		// successors' dependencies. Again owner-only writes.
		for l := len(levels) - 2; l >= 0; l-- {
			level := levels[l]
			exec.ForDynamic(len(level), 128, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					u := level[i]
					var d float64
					for _, v := range g.OutNeighbors(u) {
						if depth[v] == depth[u]+1 {
							d += sigma[u] / sigma[v] * (1 + delta[v])
						}
					}
					delta[u] = d
					if u != src {
						scores[u] += d
					}
				}
			})
		}
	}

	// Normalize by the maximum score.
	maxScore := 0.0
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
	}
	if maxScore > 0 {
		exec.ForBlocked(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				scores[i] /= maxScore
			}
		})
	}
	return scores
}

// bcForward runs a push-based parallel BFS from src, assigning depths and
// returning the vertices of each level (level 0 is [src]). The appender is
// caller-owned and the per-level frontier is captured by value, so a round
// allocates nothing beyond its chunk buffers.
func bcForward(exec *par.Machine, g *graph.Graph, src graph.NodeID, depth []int32, workers int, sink *chunkAppender) [][]graph.NodeID {
	levels := [][]graph.NodeID{{src}}
	current := levels[0]
	for len(current) > 0 {
		d := int32(len(levels))
		cur := current // read-only in the closure: captured by value
		sink.reset()
		exec.ForDynamic(len(cur), 64, workers, func(lo, hi int) {
			//gapvet:ignore alloc-in-timed-region -- GAP QueueBuffer idiom: one buffer per 64-vertex chunk, amortized over the chunk's edges
			local := make([]graph.NodeID, 0, 256)
			for i := lo; i < hi; i++ {
				u := cur[i]
				for _, v := range g.OutNeighbors(u) {
					if atomic.LoadInt32(&depth[v]) < 0 &&
						atomic.CompareAndSwapInt32(&depth[v], -1, d) {
						local = append(local, v)
					}
				}
			}
			sink.flush(local)
		})
		next := sink.take()
		if len(next) == 0 {
			break
		}
		levels = append(levels, next)
		current = next
	}
	return levels
}

// chunkAppender gathers per-chunk local buffers into one slice with a single
// lock per flush (cheap relative to the per-edge work it amortizes).
type chunkAppender struct {
	mu  sync.Mutex
	out []graph.NodeID
}

func (c *chunkAppender) reset() { c.out = nil }

func (c *chunkAppender) flush(local []graph.NodeID) {
	if len(local) == 0 {
		return
	}
	c.mu.Lock()
	c.out = append(c.out, local...)
	c.mu.Unlock()
}

func (c *chunkAppender) take() []graph.NodeID { return c.out }

package gap

import (
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// Direction-optimizing BFS tuning constants from Beamer et al. (SC'12), the
// values the GAP reference ships with.
const (
	dobfsAlpha = 15 // push->pull when frontier edges exceed unexplored/alpha
	dobfsBeta  = 18 // pull->push when awake count drops below n/beta
)

// DOBFS runs direction-optimizing breadth-first search from src and returns
// the parent array under the shared result convention.
func DOBFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	n := int64(g.NumNodes())
	workers := opt.EffectiveWorkers()
	exec := opt.Exec()
	parent := make([]graph.NodeID, n)
	for i := range parent {
		parent[i] = -1
	}
	if n == 0 {
		return parent
	}
	parent[src] = src

	queue := graph.NewSlidingQueue(n)
	queue.PushBack(src)
	queue.SlideWindow()
	front := graph.NewBitmap(n)
	curr := graph.NewBitmap(n)

	edgesToCheck := g.NumEdges()
	scoutCount := g.OutDegree(src)
	// One scout accumulator for the whole search: tdStep's chunk closures
	// capture the pointer by value, so no per-round heap cell is allocated.
	var scout atomic.Int64

	for !queue.Empty() {
		if opt.Cancelled() {
			return parent // partial tree; the harness discards cancelled trials
		}
		if scoutCount > edgesToCheck/dobfsAlpha {
			// Switch to pull: the frontier is touching a large fraction of
			// the remaining edges, so scanning unvisited vertices' in-edges
			// is cheaper than pushing from the frontier.
			front.Reset()
			for _, u := range queue.Frontier() {
				front.Set(int64(u))
			}
			awake := queue.Size()
			queue.Reset()
			for {
				if opt.Cancelled() {
					return parent
				}
				prevAwake := awake
				curr.Reset()
				awake = buStep(exec, g, parent, front, curr, workers)
				front.Swap(curr)
				if awake == 0 || !(awake >= prevAwake || awake > n/dobfsBeta) {
					break
				}
			}
			bitmapToQueue(exec, front, queue, workers)
			queue.SlideWindow()
			scoutCount = 1
		} else {
			edgesToCheck -= scoutCount
			scoutCount = tdStep(exec, g, parent, queue, workers, &scout)
			queue.SlideWindow()
		}
	}
	return parent
}

// tdStep is the push ("top-down") step: every frontier vertex claims its
// unvisited out-neighbors with a CAS on the parent array, appending winners
// to the next window through per-chunk local buffers (the GAP QueueBuffer).
// It returns the total out-degree of the newly visited vertices (the scout
// count driving the direction heuristic). The accumulator is caller-owned so
// the chunk closure captures only a pointer, not a per-call heap cell.
func tdStep(exec *par.Machine, g *graph.Graph, parent []graph.NodeID, queue *graph.SlidingQueue, workers int, scout *atomic.Int64) int64 {
	frontier := queue.Frontier()
	scout.Store(0)
	exec.ForDynamic(len(frontier), 64, workers, func(lo, hi int) {
		//gapvet:ignore alloc-in-timed-region -- GAP QueueBuffer idiom: one buffer per 64-vertex chunk, amortized over the chunk's edges
		local := make([]graph.NodeID, 0, 256)
		var localScout int64
		for i := lo; i < hi; i++ {
			u := frontier[i]
			for _, v := range g.OutNeighbors(u) {
				if atomic.LoadInt32(&parent[v]) < 0 &&
					atomic.CompareAndSwapInt32(&parent[v], -1, u) {
					local = append(local, v)
					localScout += g.OutDegree(v)
				}
			}
		}
		if len(local) > 0 {
			base := queue.Reserve(int64(len(local)))
			for i, v := range local {
				queue.Write(base+int64(i), v)
			}
		}
		scout.Add(localScout)
	})
	return scout.Load()
}

// buStep is the pull ("bottom-up") step: every unvisited vertex scans its
// in-neighbors and adopts the first one found in the frontier bitmap. No
// atomics are needed because each vertex writes only its own parent slot. It
// returns the number of vertices awakened into next.
func buStep(exec *par.Machine, g *graph.Graph, parent []graph.NodeID, front, next *graph.Bitmap, workers int) int64 {
	n := int(g.NumNodes())
	return exec.ReduceInt64(n, workers, func(lo, hi int) int64 {
		var awake int64
		for u := lo; u < hi; u++ {
			//gapvet:ignore atomic-plain-mix -- pull phase: each u writes only parent[u]; barrier-separated from tdStep's CAS
			if parent[u] >= 0 {
				continue
			}
			for _, v := range g.InNeighbors(graph.NodeID(u)) {
				if front.Get(int64(v)) {
					parent[u] = v
					next.SetAtomic(int64(u))
					awake++
					break
				}
			}
		}
		return awake
	})
}

// bitmapToQueue converts a frontier bitmap back into the sliding queue after
// the pull phase ends.
func bitmapToQueue(exec *par.Machine, front *graph.Bitmap, queue *graph.SlidingQueue, workers int) {
	n := int(front.Len())
	exec.ForWorker(n, workers, func(_, lo, hi int) {
		local := make([]graph.NodeID, 0, 256)
		for u := lo; u < hi; u++ {
			if front.Get(int64(u)) {
				local = append(local, graph.NodeID(u))
			}
		}
		if len(local) > 0 {
			base := queue.Reserve(int64(len(local)))
			for i, v := range local {
				queue.Write(base+int64(i), v)
			}
		}
	})
}

package gap

import (
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// afforestNeighborRounds is the number of initial per-vertex neighbor links
// (the "subgraph sampling" phase of Sutton et al.'s Afforest).
const afforestNeighborRounds = 2

// Afforest labels weakly connected components with the Afforest algorithm
// (Sutton, Ben-Nun, Barak — IPDPS'18): link a couple of neighbors per vertex,
// identify the giant component by sampling, then finish only the vertices
// outside it. On most graphs the final phase touches almost nothing, giving
// the near-O(V) behaviour §V-C contrasts against label propagation.
func Afforest(g *graph.Graph, opt kernel.Options) []graph.NodeID {
	n := int(g.NumNodes())
	workers := opt.EffectiveWorkers()
	exec := opt.Exec()
	comp := make([]graph.NodeID, n)
	for i := range comp {
		comp[i] = graph.NodeID(i)
	}
	if n == 0 {
		return comp
	}

	// Phase 1: subgraph sampling — link each vertex to its first few
	// neighbors only.
	for r := 0; r < afforestNeighborRounds; r++ {
		exec.ForDynamic(n, 256, workers, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				neigh := g.OutNeighbors(graph.NodeID(u))
				if r < len(neigh) {
					link(graph.NodeID(u), neigh[r], comp)
				}
			}
		})
	}
	compress(exec, comp, workers)

	// Phase 2: find the (very likely) giant component by sampling.
	giant := sampleFrequentComponent(comp)

	// Phase 3: finish everything outside the giant component with the
	// remaining out-edges (and in-edges for directed graphs, since weak
	// connectivity ignores direction).
	exec.ForDynamic(n, 256, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if atomic.LoadInt32(&comp[u]) == giant {
				continue
			}
			neigh := g.OutNeighbors(graph.NodeID(u))
			for r := afforestNeighborRounds; r < len(neigh); r++ {
				link(graph.NodeID(u), neigh[r], comp)
			}
			if g.Directed() {
				for _, v := range g.InNeighbors(graph.NodeID(u)) {
					link(graph.NodeID(u), v, comp)
				}
			}
		}
	})
	compress(exec, comp, workers)
	return comp
}

// link unions the components of u and v. The two loads and the equality
// test are the per-edge fast path — once components converge nearly every
// call sees equal labels — and fit the inline budget; the CAS hook loop
// lives out of line in linkSlow, which re-loads under its own loop anyway.
func link(u, v graph.NodeID, comp []graph.NodeID) {
	if atomic.LoadInt32(&comp[u]) != atomic.LoadInt32(&comp[v]) {
		linkSlow(u, v, comp)
	}
}

// linkSlow repeatedly hooks the higher root onto the lower one with CAS
// (the lock-free union of Afforest and modern Shiloach-Vishkin variants).
// Kept out of line so link stays under the inline budget; the loads race
// with concurrent hooks either way, and the loop revalidates before every
// CAS.
//
//go:noinline
func linkSlow(u, v graph.NodeID, comp []graph.NodeID) {
	p1 := atomic.LoadInt32(&comp[u])
	p2 := atomic.LoadInt32(&comp[v])
	for p1 != p2 {
		high, low := p1, p2
		if high < low {
			high, low = low, high
		}
		pHigh := atomic.LoadInt32(&comp[high])
		if pHigh == low {
			break
		}
		if pHigh == high && atomic.CompareAndSwapInt32(&comp[high], high, low) {
			break
		}
		p1 = atomic.LoadInt32(&comp[atomic.LoadInt32(&comp[high])])
		p2 = atomic.LoadInt32(&comp[low])
	}
}

// compress performs full pointer-jumping so every vertex points directly at
// its component root.
func compress(exec *par.Machine, comp []graph.NodeID, workers int) {
	exec.ForBlocked(len(comp), workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			// Atomic accesses keep the pointer jumping well-defined under the
			// Go memory model even when ranges race on shared ancestors.
			c := atomic.LoadInt32(&comp[u])
			for {
				cc := atomic.LoadInt32(&comp[c])
				if c == cc {
					break
				}
				c = cc
			}
			atomic.StoreInt32(&comp[u], c)
		}
	})
}

// sampleFrequentComponent samples component labels and returns the most
// frequent one — the probable giant component. The probe sequence is a fixed
// linear-congruential walk so results are deterministic.
func sampleFrequentComponent(comp []graph.NodeID) graph.NodeID {
	const samples = 1024
	counts := make(map[graph.NodeID]int, samples)
	n := uint64(len(comp))
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < samples; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		u := (x >> 17) % n
		root := comp[u]
		for root != comp[root] { // follow to the current root
			root = comp[root]
		}
		counts[root]++
	}
	best, bestCount := graph.NodeID(0), -1
	for c, k := range counts {
		if k > bestCount {
			best, bestCount = c, k
		}
	}
	return best
}

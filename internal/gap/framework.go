// Package gap reproduces the GAP Benchmark Suite reference implementations:
// direction-optimizing BFS, delta-stepping SSSP with bucket fusion, Jacobi
// PageRank, Afforest connected components, Brandes betweenness centrality,
// and order-invariant triangle counting with heuristic relabeling. These are
// the "100%" yardstick against which Table V expresses every other framework.
package gap

import (
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// Framework is the GAP reference implementation suite.
type Framework struct{}

// New returns the GAP reference framework.
func New() *Framework { return &Framework{} }

// Name implements kernel.Framework.
func (*Framework) Name() string { return "GAP" }

// Attributes returns the Table II row for the GAP reference code.
func (*Framework) Attributes() map[string]string {
	return map[string]string{
		"Type":                      "direct implementations",
		"Internal Graph Data":       "outgoing & incoming edges",
		"Programming Abstraction":   "vertex-centric",
		"Execution Synchronization": "level-synchronous",
		"Intended Users":            "researchers, benchmarkers",
	}
}

// Algorithms returns the Table III row for the GAP reference code.
func (*Framework) Algorithms() kernel.Algorithms {
	return kernel.Algorithms{
		BFS:  "Direction-optimizing",
		SSSP: "Delta-stepping + bucket fusion",
		CC:   "Afforest",
		PR:   "Jacobi SpMV",
		BC:   "Brandes",
		TC:   "Order invariant + heuristic relabelling",
	}
}

var _ kernel.Framework = (*Framework)(nil)
var _ kernel.Describer = (*Framework)(nil)

// BFS implements kernel.Framework via direction-optimizing BFS.
func (*Framework) BFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	return DOBFS(g, src, opt)
}

// SSSP implements kernel.Framework via delta-stepping with bucket fusion.
func (*Framework) SSSP(g *graph.Graph, src graph.NodeID, opt kernel.Options) []kernel.Dist {
	return DeltaStep(g, src, delta(opt), opt, true)
}

// PR implements kernel.Framework via Jacobi power iteration.
func (*Framework) PR(g *graph.Graph, opt kernel.Options) []float64 {
	return PageRank(g, opt)
}

// CC implements kernel.Framework via Afforest.
func (*Framework) CC(g *graph.Graph, opt kernel.Options) []graph.NodeID {
	return Afforest(g, opt)
}

// BC implements kernel.Framework via Brandes with level-synchronous phases.
func (*Framework) BC(g *graph.Graph, sources []graph.NodeID, opt kernel.Options) []float64 {
	return Brandes(g, sources, opt)
}

// TC implements kernel.Framework via order-invariant counting with the
// worth-relabeling heuristic.
func (*Framework) TC(g *graph.Graph, opt kernel.Options) int64 {
	return TriangleCount(g, opt)
}

// delta resolves the SSSP bucket width: the caller-provided per-graph value
// (the knob GAP allows even in Baseline mode) or the reference default.
func delta(opt kernel.Options) kernel.Dist {
	if opt.Delta > 0 {
		return opt.Delta
	}
	return 16
}

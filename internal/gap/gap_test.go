package gap_test

import (
	"testing"

	"gapbench/internal/gap"
	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/testutil"
	"gapbench/internal/verify"
)

func TestConformance(t *testing.T) {
	testutil.RunConformance(t, gap.New())
}

func TestDescribe(t *testing.T) {
	testutil.Describe(t, gap.New())
}

func TestAcrossWorkerCounts(t *testing.T) {
	g, err := generate.Kron(9, 7)
	if err != nil {
		t.Fatal(err)
	}
	testutil.RunKernelAcrossWorkers(t, gap.New(), g)
}

func TestDeltaStepDeltaInsensitive(t *testing.T) {
	// Distances must be exact for any positive delta; only speed may change.
	g, err := generate.Road(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := testutil.Sources(g)[0]
	for _, delta := range []kernel.Dist{1, 2, 16, 64, 1 << 20} {
		dist := gap.DeltaStep(g, src, delta, kernel.Options{}, true)
		if err := verify.CheckSSSP(g, src, dist); err != nil {
			t.Errorf("delta=%d: %v", delta, err)
		}
	}
}

func TestDeltaStepFusionEquivalence(t *testing.T) {
	g, err := generate.Twitter(8, 11)
	if err != nil {
		t.Fatal(err)
	}
	src := testutil.Sources(g)[0]
	fused := gap.DeltaStep(g, src, 16, kernel.Options{}, true)
	plain := gap.DeltaStep(g, src, 16, kernel.Options{}, false)
	for v := range fused {
		if fused[v] != plain[v] {
			t.Fatalf("dist[%d]: fused %d != unfused %d", v, fused[v], plain[v])
		}
	}
}

func TestWorthRelabeling(t *testing.T) {
	road, err := generate.Road(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gap.WorthRelabeling(road.Undirected()) {
		t.Error("road graph should not trigger relabeling (bounded degree)")
	}
	tw, err := generate.Twitter(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !gap.WorthRelabeling(tw.Undirected()) {
		t.Error("twitter graph should trigger relabeling (power-law degree)")
	}
	urand, err := generate.Urand(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gap.WorthRelabeling(urand.Undirected()) {
		t.Error("urand graph should not trigger relabeling (uniform degree)")
	}
}

func TestBFSRepeatedRunsDeterministicShape(t *testing.T) {
	// Parent arrays may differ between runs (ties are racy by design), but
	// the depth of every vertex implied by the tree must be stable.
	g, err := generate.Web(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	src := testutil.Sources(g)[0]
	ref := verify.BFSDepths(g, src)
	for trial := 0; trial < 3; trial++ {
		parent := gap.New().BFS(g, src, kernel.Options{})
		if err := verify.CheckBFS(g, src, parent); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// CheckBFS already validates depths against the oracle; spot-check
		// reachability agreement too.
		for v := range parent {
			if (parent[v] >= 0) != (ref[v] >= 0) {
				t.Fatalf("trial %d: reachability of %d changed", trial, v)
			}
		}
	}
}

func TestBrandesMatchesOracleOnAllSources(t *testing.T) {
	g, err := generate.Kron(8, 9)
	if err != nil {
		t.Fatal(err)
	}
	srcs := testutil.BCSources(g)
	scores := gap.New().BC(g, srcs, kernel.Options{})
	if err := verify.CheckBC(g, srcs, scores); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleCountKnownValues(t *testing.T) {
	// Clique of k has C(k,3) triangles.
	var edges []graph.WEdge
	const k = 10
	for i := int32(0); i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, graph.WEdge{U: i, V: j, W: 1})
		}
	}
	g, err := graph.BuildWeighted(edges, graph.BuildOptions{NumNodes: k, Directed: false})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(k * (k - 1) * (k - 2) / 6)
	if got := gap.New().TC(g, kernel.Options{}); got != want {
		t.Fatalf("clique%d triangles = %d, want %d", k, got, want)
	}
}

func TestPageRankGSVariant(t *testing.T) {
	// The §VI-proposed Gauss-Seidel reference variant must converge to the
	// same fixed point as the Jacobi reference.
	g, err := generate.Web(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	ranks := gap.PageRankGS(g, kernel.Options{Workers: 2})
	if err := verify.CheckPR(g, ranks); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaStepLightHeavy(t *testing.T) {
	for _, name := range []string{"Road", "Kron"} {
		g, err := generate.ByName(name, 8, 6)
		if err != nil {
			t.Fatal(err)
		}
		src := testutil.Sources(g)[0]
		for _, delta := range []kernel.Dist{8, 64, 512} {
			dist := gap.DeltaStepLightHeavy(g, src, delta, kernel.Options{Workers: 3})
			if err := verify.CheckSSSP(g, src, dist); err != nil {
				t.Fatalf("%s delta=%d: %v", name, delta, err)
			}
		}
	}
}

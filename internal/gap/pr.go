package gap

import (
	"math"
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// PageRank runs the GAP reference algorithm: Jacobi-style pull SpMV — every
// vertex gathers its in-neighbors' contributions from the previous
// iteration's scores. §VI notes this reference "is no longer performance
// competitive" with the Gauss-Seidel variants several frameworks use; that
// deliberate gap is preserved here (and ablated in bench_test.go).
func PageRank(g *graph.Graph, opt kernel.Options) []float64 {
	n := int(g.NumNodes())
	if n == 0 {
		return nil
	}
	workers := opt.EffectiveWorkers()
	exec := opt.Exec()
	base := (1 - kernel.PRDamping) / float64(n)

	ranks := make([]float64, n)
	contrib := make([]float64, n)
	initial := 1 / float64(n)
	for i := range ranks {
		ranks[i] = initial
	}

	for it := 0; it < kernel.PRMaxIters; it++ {
		if opt.Cancelled() {
			return ranks // partial scores; the harness discards cancelled trials
		}
		// Scatter phase: precompute each vertex's per-edge contribution and
		// sum dangling mass.
		dangling := exec.ReduceFloat64(n, workers, func(lo, hi int) float64 {
			var d float64
			for u := lo; u < hi; u++ {
				if deg := g.OutDegree(graph.NodeID(u)); deg > 0 {
					contrib[u] = ranks[u] / float64(deg)
				} else {
					contrib[u] = 0
					d += ranks[u]
				}
			}
			return d
		})
		danglingShare := kernel.PRDamping * dangling / float64(n)

		// Gather phase (pull over in-edges): race-free because vertex v only
		// writes ranks[v], reading the immutable contrib snapshot.
		delta := exec.ReduceFloat64(n, workers, func(lo, hi int) float64 {
			var d float64
			for v := lo; v < hi; v++ {
				sum := 0.0
				for _, u := range g.InNeighbors(graph.NodeID(v)) {
					sum += contrib[u]
				}
				next := base + danglingShare + kernel.PRDamping*sum
				d += math.Abs(next - ranks[v])
				ranks[v] = next
			}
			return d
		})
		if delta < kernel.PRTolerance {
			break
		}
	}
	return ranks
}

// PageRankGS is the Gauss-Seidel variant §VI recommends the reference adopt
// ("switching to a Gauss-Seidel approach for PR is far more practical, and
// the results of this study demonstrate the performance advantages of that
// approach"). It is not wired into the benchmark's GAP rows — the reference
// the paper measured is Jacobi — but it ships as the proposed improvement
// and is ablated in bench_test.go.
func PageRankGS(g *graph.Graph, opt kernel.Options) []float64 {
	n := int(g.NumNodes())
	if n == 0 {
		return nil
	}
	workers := opt.EffectiveWorkers()
	exec := opt.Exec()
	base := (1 - kernel.PRDamping) / float64(n)
	ranks := make([]float64, n)
	contrib := make([]uint64, n)
	invDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		ranks[v] = 1 / float64(n)
		if d := g.OutDegree(graph.NodeID(v)); d > 0 {
			invDeg[v] = 1 / float64(d)
			contrib[v] = math.Float64bits(ranks[v] * invDeg[v])
		}
	}
	for it := 0; it < kernel.PRMaxIters; it++ {
		if opt.Cancelled() {
			return ranks
		}
		dangling := exec.ReduceFloat64(n, workers, func(lo, hi int) float64 {
			var d float64
			for u := lo; u < hi; u++ {
				if invDeg[u] == 0 {
					d += ranks[u]
				}
			}
			return d
		})
		share := kernel.PRDamping * dangling / float64(n)
		delta := exec.ReduceFloat64(n, workers, func(lo, hi int) float64 {
			var d float64
			for vi := lo; vi < hi; vi++ {
				v := graph.NodeID(vi)
				sum := 0.0
				for _, u := range g.InNeighbors(v) {
					sum += math.Float64frombits(atomic.LoadUint64(&contrib[u]))
				}
				next := base + share + kernel.PRDamping*sum
				d += math.Abs(next - ranks[v])
				ranks[v] = next
				if invDeg[v] != 0 {
					atomic.StoreUint64(&contrib[v], math.Float64bits(next*invDeg[v]))
				}
			}
			return d
		})
		if delta < kernel.PRTolerance {
			break
		}
	}
	return ranks
}

package gap

import (
	"sync"
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// fusionThreshold is the bucket-fusion size cap: a worker keeps processing
// its own next batch of the current bucket without a barrier only while the
// batch stays below this size, which bounds load imbalance (§VI: "It sets a
// threshold on the next bucket size to avoid load imbalance").
const fusionThreshold = 1024

// DeltaStep runs delta-stepping SSSP from src with the given bucket width.
// When fusion is true the bucket-fusion optimization (originated in GraphIt,
// incorporated into the GAP reference) lets workers drain same-priority work
// without synchronizing, collapsing the round count on high-diameter graphs.
func DeltaStep(g *graph.Graph, src graph.NodeID, delta kernel.Dist, opt kernel.Options, fusion bool) []kernel.Dist {
	n := int(g.NumNodes())
	workers := opt.EffectiveWorkers()
	exec := opt.Exec()
	dist := make([]kernel.Dist, n)
	for i := range dist {
		dist[i] = kernel.Inf
	}
	if n == 0 {
		return dist
	}
	if delta <= 0 {
		delta = 16
	}
	dist[src] = 0

	// bins[w][b] holds vertices worker w discovered with tentative distance
	// in bucket b. Keeping them per worker avoids all synchronization on the
	// hot relaxation path; the barrier between buckets is where they merge.
	bins := make([][][]graph.NodeID, workers)
	for w := range bins {
		bins[w] = make([][]graph.NodeID, 8)
	}
	binPut := func(w int, b int, v graph.NodeID) {
		for b >= len(bins[w]) {
			bins[w] = append(bins[w], nil)
		}
		bins[w][b] = append(bins[w][b], v)
	}

	frontier := []graph.NodeID{src}
	bucket := 0

	relax := func(w int, u graph.NodeID, du kernel.Dist) {
		neigh := g.OutNeighbors(u)
		ws := g.OutWeights(u)
		for i, v := range neigh {
			nd := du + ws[i]
			old := atomic.LoadInt32(&dist[v])
			for nd < old {
				if atomic.CompareAndSwapInt32(&dist[v], old, nd) {
					binPut(w, int(nd/delta), v)
					break
				}
				old = atomic.LoadInt32(&dist[v])
			}
		}
	}

	for {
		if opt.Cancelled() {
			return dist // partial distances; the harness discards cancelled trials
		}
		lowBound := kernel.Dist(bucket) * delta
		highBound := lowBound + delta

		// Drain the shared frontier with dynamically scheduled chunks while
		// retaining a stable worker id for the private bins: one machine
		// slot per worker, each pulling chunks off a shared cursor. (Before
		// the machine existed this was a hand-rolled goroutine fork-join,
		// re-spawned every bucket — exactly the per-round launch overhead
		// the paper's §V-A Road analysis is about.)
		var cursor atomic.Int64
		active := workers
		if active > len(frontier) {
			active = len(frontier)
		}
		if active < 1 {
			active = 1
		}
		exec.ForWorker(active, active, func(w, _, _ int) {
			const chunk = 64
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= len(frontier) {
					break
				}
				hi := lo + chunk
				if hi > len(frontier) {
					hi = len(frontier)
				}
				for _, u := range frontier[lo:hi] {
					du := atomic.LoadInt32(&dist[u])
					if du >= lowBound && du < highBound {
						relax(w, u, du)
					}
					// Entries below lowBound were settled in an earlier
					// bucket (stale duplicates) and are skipped.
				}
			}
			if !fusion {
				return
			}
			// Bucket fusion: while this worker's own bin for the current
			// bucket stays small, process it immediately. Priority order
			// is preserved (everything in it belongs to this bucket) and
			// a full barrier+merge round is saved each time.
			for bucket < len(bins[w]) {
				batch := bins[w][bucket]
				if len(batch) == 0 || len(batch) > fusionThreshold {
					break
				}
				bins[w][bucket] = nil
				for _, u := range batch {
					du := atomic.LoadInt32(&dist[u])
					if du >= lowBound && du < highBound {
						relax(w, u, du)
					}
				}
			}
		})

		// Barrier: find the next non-empty bucket across all workers and
		// merge those bins into the shared frontier.
		next := -1
		for w := 0; w < workers; w++ {
			for b := bucket; b < len(bins[w]); b++ {
				if len(bins[w][b]) > 0 && (next < 0 || b < next) {
					next = b
					break
				}
			}
		}
		if next < 0 {
			break
		}
		frontier = frontier[:0]
		for w := 0; w < workers; w++ {
			if next < len(bins[w]) {
				frontier = append(frontier, bins[w][next]...)
				bins[w][next] = nil
			}
		}
		bucket = next
	}
	return dist
}

// DeltaStepLightHeavy is the full Meyer–Sanders delta-stepping with the
// light/heavy edge split the GAP reference simplifies away: within a bucket,
// only light edges (weight <= delta) are relaxed until the bucket reaches a
// fixed point; the heavy edges of everything the bucket settled are then
// relaxed exactly once. The split bounds re-relaxation of expensive edges —
// the original algorithm's work-efficiency argument — and is ablated against
// the simplified all-edges variant in bench_test.go.
func DeltaStepLightHeavy(g *graph.Graph, src graph.NodeID, delta kernel.Dist, opt kernel.Options) []kernel.Dist {
	n := int(g.NumNodes())
	workers := opt.EffectiveWorkers()
	exec := opt.Exec()
	dist := make([]kernel.Dist, n)
	for i := range dist {
		dist[i] = kernel.Inf
	}
	if n == 0 {
		return dist
	}
	if delta <= 0 {
		delta = 16
	}
	dist[src] = 0
	if workers < 1 {
		workers = 1
	}

	bins := make([][][]graph.NodeID, workers)
	binPut := func(w, b int, v graph.NodeID) {
		for b >= len(bins[w]) {
			bins[w] = append(bins[w], nil)
		}
		bins[w][b] = append(bins[w][b], v)
	}
	relax := func(w int, u graph.NodeID, du kernel.Dist, light bool) {
		neigh := g.OutNeighbors(u)
		ws := g.OutWeights(u)
		for i, v := range neigh {
			if (ws[i] <= delta) != light {
				continue
			}
			nd := du + ws[i]
			old := atomic.LoadInt32(&dist[v])
			for nd < old {
				if atomic.CompareAndSwapInt32(&dist[v], old, nd) {
					binPut(w, int(nd/delta), v)
					break
				}
				old = atomic.LoadInt32(&dist[v])
			}
		}
	}

	frontier := []graph.NodeID{src}
	var settled []graph.NodeID // bucket members settled this bucket (for heavy phase)
	bucket := 0
	for {
		if opt.Cancelled() {
			return dist
		}
		lo := kernel.Dist(bucket) * delta
		hi := lo + delta
		settled = settled[:0]
		// Light phase: iterate to a fixed point within the bucket.
		for len(frontier) > 0 {
			if opt.Cancelled() {
				return dist
			}
			var mu sync.Mutex
			work := frontier
			exec.ForWorker(len(work), workers, func(w, i0, i1 int) {
				var local []graph.NodeID
				for i := i0; i < i1; i++ {
					u := work[i]
					du := atomic.LoadInt32(&dist[u])
					if du < lo || du >= hi {
						continue
					}
					local = append(local, u)
					relax(w, u, du, true)
				}
				if len(local) > 0 {
					mu.Lock()
					settled = append(settled, local...)
					mu.Unlock()
				}
			})
			// Re-drain anything that fell back into this bucket.
			frontier = frontier[:0]
			for w := range bins {
				if bucket < len(bins[w]) && len(bins[w][bucket]) > 0 {
					frontier = append(frontier, bins[w][bucket]...)
					bins[w][bucket] = nil
				}
			}
		}
		// Heavy phase: each settled vertex relaxes its heavy edges once.
		heavy := settled
		exec.ForWorker(len(heavy), workers, func(w, i0, i1 int) {
			for i := i0; i < i1; i++ {
				u := heavy[i]
				relax(w, u, atomic.LoadInt32(&dist[u]), false)
			}
		})
		// Advance to the next occupied bucket.
		next := -1
		for w := range bins {
			for b := bucket + 1; b < len(bins[w]); b++ {
				if len(bins[w][b]) > 0 && (next < 0 || b < next) {
					next = b
					break
				}
			}
		}
		if next < 0 {
			break
		}
		frontier = frontier[:0]
		for w := range bins {
			if next < len(bins[w]) {
				frontier = append(frontier, bins[w][next]...)
				bins[w][next] = nil
			}
		}
		bucket = next
	}
	return dist
}

package gap

import (
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// TriangleCount counts triangles with the GAP reference strategy: operate on
// the undirected view, optionally relabel vertices by decreasing degree when
// a sampling heuristic says the degree distribution is skewed enough to pay
// for it, then count ordered triangles (u < v < w) by merge-intersecting
// sorted adjacency lists.
//
// Per the benchmark rules the relabeling is timed in Baseline mode; in
// Optimized mode the harness-provided pre-relabeled view is used instead
// (§V-F: "For the Optimized case, we excluded the time to preprocess and
// relabel the graph").
func TriangleCount(g *graph.Graph, opt kernel.Options) int64 {
	u := opt.Undirected(g)
	if opt.Mode == kernel.Optimized && opt.RelabeledView != nil {
		u = opt.RelabeledView
	} else if WorthRelabeling(u) {
		u, _ = graph.DegreeRelabel(u)
	}
	return orderedCount(opt.Exec(), u, opt.EffectiveWorkers())
}

// orderedCount is the GAP reference's OrderedCount: for each vertex u it
// walks only the prefix of neighbors v < u, and for each such v only the
// prefix of v's neighbors w < v, advancing a shared cursor through u's list
// to test membership. Each triangle w < v < u is found exactly once and
// only list prefixes are ever scanned. Dynamic chunking load-balances the
// skewed per-vertex costs.
func orderedCount(exec *par.Machine, u *graph.Graph, workers int) int64 {
	n := int(u.NumNodes())
	return exec.ReduceDynamicInt64(n, 64, workers, func(lo, hi int) int64 {
		var count int64
		for a := lo; a < hi; a++ {
			na := u.OutNeighbors(graph.NodeID(a))
			for _, b := range na {
				if b > graph.NodeID(a) {
					break
				}
				nb := u.OutNeighbors(b)
				it := 0
				for _, w := range nb {
					if w > b {
						break
					}
					// b is in na, so the cursor cannot run off the end
					// while *it < w <= b.
					for na[it] < w {
						it++
					}
					if na[it] == w {
						count++
					}
				}
			}
		}
		return count
	})
}

// WorthRelabeling is the GAP sampling heuristic deciding whether degree
// relabeling will pay for itself. It delegates to the shared
// graph.SkewedDegrees test (sparse graphs never relabel; heavy-tailed ones
// do). Road and Urand fail this test; Twitter, Web and Kron pass it.
func WorthRelabeling(g *graph.Graph) bool {
	return graph.SkewedDegrees(g)
}

// OrderedCountBench exposes the raw ordered count (no relabeling decision)
// for ablation benchmarks.
func OrderedCountBench(undirected *graph.Graph, workers int) int64 {
	return orderedCount(par.Default(), undirected, workers)
}

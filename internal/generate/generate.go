package generate

import (
	"fmt"
	"math"

	"gapbench/internal/graph"
)

// Names of the five benchmark graphs, matching the paper's Table I.
const (
	NameRoad    = "Road"
	NameTwitter = "Twitter"
	NameWeb     = "Web"
	NameKron    = "Kron"
	NameUrand   = "Urand"
)

// Names lists the benchmark graphs in Table I order.
var Names = []string{NameRoad, NameTwitter, NameWeb, NameKron, NameUrand}

// ByName generates the named benchmark graph at the given scale
// (log2 of the approximate vertex count) with the given seed. All generated
// graphs are weighted (weights uniform in [1,255], used only by SSSP).
func ByName(name string, scale int, seed uint64) (*graph.Graph, error) {
	switch name {
	case NameRoad:
		return Road(scale, seed)
	case NameTwitter:
		return Twitter(scale, seed)
	case NameWeb:
		return Web(scale, seed)
	case NameKron:
		return Kron(scale, seed)
	case NameUrand:
		return Urand(scale, seed)
	default:
		return nil, fmt.Errorf("generate: unknown graph %q (want one of %v)", name, Names)
	}
}

// Road builds a directed road-network stand-in: a jittered 2-D lattice with a
// serpentine spanning path (guaranteeing connectivity) plus a random subset
// of the remaining lattice edges. Every segment is two-way. The result has
// bounded degree (≈2.4 average, ≤4+ε max) and a diameter proportional to the
// lattice side — the "small graph, huge diameter" regime that Table I's Road
// occupies and that §VI calls out as the hardest case for bulk-synchronous
// frameworks.
func Road(scale int, seed uint64) (*graph.Graph, error) {
	if scale < 2 || scale > 30 {
		return nil, fmt.Errorf("generate: road scale %d out of range [2,30]", scale)
	}
	side := int64(math.Round(math.Sqrt(float64(int64(1) << scale))))
	if side < 2 {
		side = 2
	}
	n := side * side
	r := newRNG(seed ^ 0x0a0d)
	id := func(x, y int64) graph.NodeID { return graph.NodeID(y*side + x) }

	var edges []graph.WEdge
	addSegment := func(a, b graph.NodeID) {
		w := r.weight()
		// Two-way street: one weight per segment, both directions.
		edges = append(edges, graph.WEdge{U: a, V: b, W: w}, graph.WEdge{U: b, V: a, W: w})
	}

	// Serpentine spanning path: left-to-right on even rows, right-to-left on
	// odd rows, with a connector at each row end.
	for y := int64(0); y < side; y++ {
		for x := int64(0); x+1 < side; x++ {
			addSegment(id(x, y), id(x+1, y))
		}
		if y+1 < side {
			if y%2 == 0 {
				addSegment(id(side-1, y), id(side-1, y+1))
			} else {
				addSegment(id(0, y), id(0, y+1))
			}
		}
	}
	// Sprinkle extra vertical segments so the average out-degree lands near
	// Table I's 2.4 instead of the serpentine's 2.0.
	const extraProb = 0.2
	for y := int64(0); y+1 < side; y++ {
		for x := int64(0); x < side; x++ {
			if y%2 == 0 && x == side-1 || y%2 == 1 && x == 0 {
				continue // already part of the serpentine
			}
			if r.float64v() < extraProb {
				addSegment(id(x, y), id(x, y+1))
			}
		}
	}
	return graph.BuildWeighted(edges, graph.BuildOptions{NumNodes: int32(n), Directed: true})
}

// Twitter builds a directed social-network stand-in: an RMAT draw (kept
// directed, unlike Kron) with edge factor 24, giving power-law in- and
// out-degrees — celebrities with enormous followings, most accounts with few
// — and a tiny diameter, the regime Table I reports for the Twitter follow
// graph (avg degree 23.8, power law, diameter 14).
func Twitter(scale int, seed uint64) (*graph.Graph, error) {
	if scale < 2 || scale > 30 {
		return nil, fmt.Errorf("generate: twitter scale %d out of range [2,30]", scale)
	}
	n := int64(1) << scale
	const edgeFactor = 24
	const a, b, c = 0.52, 0.19, 0.19
	r := newRNG(seed ^ 0x77171)
	m := n * edgeFactor
	edges := make([]graph.WEdge, 0, m)
	for i := int64(0); i < m; i++ {
		u, v := rmatPair(r, scale, a, b, c)
		if u == v {
			continue
		}
		edges = append(edges, graph.WEdge{U: graph.NodeID(u), V: graph.NodeID(v), W: r.weight()})
	}
	return graph.BuildWeighted(edges, graph.BuildOptions{NumNodes: int32(n), Directed: true})
}

// rmatPair draws one RMAT edge endpoint pair by recursive quadrant descent.
func rmatPair(r *rng, scale int, a, b, c float64) (int64, int64) {
	var u, v int64
	for bit := 0; bit < scale; bit++ {
		p := r.float64v()
		switch {
		case p < a:
			// quadrant (0,0)
		case p < a+b:
			v |= 1 << bit
		case p < a+b+c:
			u |= 1 << bit
		default:
			u |= 1 << bit
			v |= 1 << bit
		}
	}
	return u, v
}

// Web builds a directed web-crawl stand-in: vertices are grouped into hosts
// with power-law sizes; most links stay inside a host (locality and high
// clustering), most cross-host links go to nearby hosts in crawl order, and a
// few go to globally popular hosts. This yields power-law degrees with a
// diameter well above other power-law graphs (Table I: 135 for Web vs 14 for
// Twitter) and the strong cache locality §V-D observes for Web.
func Web(scale int, seed uint64) (*graph.Graph, error) {
	if scale < 4 || scale > 30 {
		return nil, fmt.Errorf("generate: web scale %d out of range [4,30]", scale)
	}
	n := int64(1) << scale
	const avgOut = 38
	r := newRNG(seed ^ 0x3eb2)

	// Carve [0,n) into hosts with power-law sizes in [8, n/32].
	type host struct{ start, size int64 }
	var hosts []host
	for at := int64(0); at < n; {
		f := r.float64v()
		size := int64(8 + f*f*f*float64(n/16))
		if at+size > n {
			size = n - at
		}
		hosts = append(hosts, host{start: at, size: size})
		at += size
	}
	hostOf := make([]int32, n)
	for hi, h := range hosts {
		for i := h.start; i < h.start+h.size; i++ {
			hostOf[i] = int32(hi)
		}
	}

	edges := make([]graph.WEdge, 0, n*avgOut)
	nh := int64(len(hosts))
	for u := int64(0); u < n; u++ {
		// Page out-degrees are skewed: index/hub pages link heavily.
		df := r.float64v()
		deg := 1 + int64(3*avgOut*df*df)
		h := hosts[hostOf[u]]
		for k := int64(0); k < deg; k++ {
			var v int64
			if p := r.float64v(); p < 0.80 && h.size > 1 {
				// Intra-host link. Targets are Zipf-skewed toward the front
				// of the host (index pages), with an extra bias to the front
				// page itself — the source of the power-law in-degrees.
				if r.float64v() < 0.3 {
					v = h.start
				} else {
					f := r.float64v()
					v = h.start + int64(f*f*f*float64(h.size))
				}
			} else {
				// Link to an adjacent host in crawl order. Cross-host paths
				// walk the host chain — no global shortcuts — which is what
				// keeps the diameter an order of magnitude above the other
				// power-law graphs (Table I: 135 for Web vs 14 for Twitter).
				delta := r.intn(4) - 1 // -1, 0, +1, +2
				th := int64(hostOf[u]) + delta
				if th < 0 {
					th = 0
				}
				if th >= nh {
					th = nh - 1
				}
				t := hosts[th]
				if r.float64v() < 0.5 {
					v = t.start
				} else {
					f := r.float64v()
					v = t.start + int64(f*f*f*float64(t.size))
				}
			}
			if v == u {
				continue
			}
			edges = append(edges, graph.WEdge{U: graph.NodeID(u), V: graph.NodeID(v), W: r.weight()})
		}
	}
	return graph.BuildWeighted(edges, graph.BuildOptions{NumNodes: int32(n), Directed: true})
}

// Kron builds the Graph500 Kronecker graph: 2^scale vertices, edge factor 16,
// RMAT parameters A=0.57, B=0.19, C=0.19, undirected — exactly the recipe the
// GAP specification prescribes for its synthetic Kron input.
func Kron(scale int, seed uint64) (*graph.Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("generate: kron scale %d out of range [1,30]", scale)
	}
	n := int64(1) << scale
	const edgeFactor = 16
	const a, b, c = 0.57, 0.19, 0.19
	r := newRNG(seed ^ 0x6163)
	m := n * edgeFactor
	edges := make([]graph.WEdge, 0, m)
	for i := int64(0); i < m; i++ {
		u, v := rmatPair(r, scale, a, b, c)
		if u == v {
			continue
		}
		edges = append(edges, graph.WEdge{U: graph.NodeID(u), V: graph.NodeID(v), W: r.weight()})
	}
	return graph.BuildWeighted(edges, graph.BuildOptions{NumNodes: int32(n), Directed: false})
}

// Urand builds the Erdős–Rényi uniform random graph: 2^scale vertices, edge
// factor 16, undirected — the GAP specification's Urand input. Its degree
// distribution is binomial ("normal" in Table I) and its diameter is tiny,
// which §VI notes defeats diameter heuristics keyed to degree skew.
func Urand(scale int, seed uint64) (*graph.Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("generate: urand scale %d out of range [1,30]", scale)
	}
	n := int64(1) << scale
	const edgeFactor = 16
	r := newRNG(seed ^ 0x4a4d4)
	m := n * edgeFactor
	edges := make([]graph.WEdge, 0, m)
	for i := int64(0); i < m; i++ {
		u := r.intn(n)
		v := r.intn(n)
		if u == v {
			continue
		}
		edges = append(edges, graph.WEdge{U: graph.NodeID(u), V: graph.NodeID(v), W: r.weight()})
	}
	return graph.BuildWeighted(edges, graph.BuildOptions{NumNodes: int32(n), Directed: false})
}

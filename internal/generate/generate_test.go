package generate_test

import (
	"testing"
	"testing/quick"

	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/verify"
)

func TestByNameKnownAndUnknown(t *testing.T) {
	for _, name := range generate.Names {
		g, err := generate.ByName(name, 8, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: degenerate graph %v", name, g)
		}
	}
	if _, err := generate.ByName("Nope", 8, 1); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range generate.Names {
		a, err := generate.ByName(name, 8, 12345)
		if err != nil {
			t.Fatal(err)
		}
		b, err := generate.ByName(name, 8, 12345)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: same seed produced different shapes", name)
		}
		for u := int32(0); u < a.NumNodes(); u++ {
			na, nb := a.OutNeighbors(u), b.OutNeighbors(u)
			if len(na) != len(nb) {
				t.Fatalf("%s: row %d differs", name, u)
			}
			for i := range na {
				if na[i] != nb[i] {
					t.Fatalf("%s: row %d differs at %d", name, u, i)
				}
			}
		}
		c, err := generate.ByName(name, 8, 54321)
		if err != nil {
			t.Fatal(err)
		}
		if c.NumEdges() == a.NumEdges() && c.NumNodes() == a.NumNodes() {
			// Same shape is possible; require at least one adjacency diff.
			same := true
		outer:
			for u := int32(0); u < a.NumNodes(); u++ {
				na, nc := a.OutNeighbors(u), c.OutNeighbors(u)
				if len(na) != len(nc) {
					same = false
					break
				}
				for i := range na {
					if na[i] != nc[i] {
						same = false
						break outer
					}
				}
			}
			if same {
				t.Fatalf("%s: different seeds produced identical graphs", name)
			}
		}
	}
}

func TestWeightsInGAPRange(t *testing.T) {
	for _, name := range generate.Names {
		g, err := generate.ByName(name, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Weighted() {
			t.Fatalf("%s: not weighted", name)
		}
		for u := int32(0); u < g.NumNodes(); u++ {
			for _, w := range g.OutWeights(u) {
				if w < 1 || w > 255 {
					t.Fatalf("%s: weight %d outside [1,255]", name, w)
				}
			}
		}
	}
}

func TestRoadProperties(t *testing.T) {
	g, err := generate.Road(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Connected: the serpentine spanning path guarantees one component.
	labels := verify.Components(g)
	for v := range labels {
		if labels[v] != labels[0] {
			t.Fatalf("road graph disconnected at vertex %d", v)
		}
	}
	// Bounded degree.
	var maxDeg int64
	for u := int32(0); u < g.NumNodes(); u++ {
		if d := g.OutDegree(u); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg > 4 {
		t.Fatalf("road max degree = %d, want <= 4 (lattice)", maxDeg)
	}
	// Two-way streets: out-adjacency is symmetric despite Directed=true.
	if !g.Directed() {
		t.Fatal("road should be directed")
	}
	stats := graph.ComputeStats(g)
	if stats.Distribution != graph.DistBounded {
		t.Fatalf("road classified %s, want bounded", stats.Distribution)
	}
	if stats.ApproxDiameter < 30 {
		t.Fatalf("road diameter = %d, suspiciously small", stats.ApproxDiameter)
	}
}

func TestTopologySignatures(t *testing.T) {
	// At benchmark-like scale the five graphs must land in their Table I
	// distribution classes and diameter regimes.
	type sig struct {
		name     string
		scale    int
		class    graph.DegreeDistribution
		directed bool
	}
	for _, s := range []sig{
		{generate.NameTwitter, 11, graph.DistPower, true},
		{generate.NameWeb, 11, graph.DistPower, true},
		{generate.NameKron, 11, graph.DistPower, false},
		{generate.NameUrand, 11, graph.DistNormal, false},
	} {
		g, err := generate.ByName(s.name, s.scale, 42)
		if err != nil {
			t.Fatal(err)
		}
		if g.Directed() != s.directed {
			t.Errorf("%s: directed = %t, want %t", s.name, g.Directed(), s.directed)
		}
		if got := graph.ClassifyDegrees(g); got != s.class {
			t.Errorf("%s: classified %s, want %s", s.name, got, s.class)
		}
	}
	// Web's diameter must sit well above Twitter's (135 vs 14 in Table I).
	web, _ := generate.Web(11, 42)
	tw, _ := generate.Twitter(11, 42)
	dw := graph.ApproxDiameter(web, 4)
	dt := graph.ApproxDiameter(tw, 4)
	if dw < 3*dt {
		t.Errorf("web diameter %d not well above twitter %d", dw, dt)
	}
}

func TestScaleValidation(t *testing.T) {
	for _, name := range generate.Names {
		if _, err := generate.ByName(name, 0, 1); err == nil {
			t.Errorf("%s: scale 0 accepted", name)
		}
		if _, err := generate.ByName(name, 31, 1); err == nil {
			t.Errorf("%s: scale 31 accepted", name)
		}
	}
}

// Property: generated graphs always have sorted, deduplicated, in-range
// adjacency with no self loops.
func TestGeneratedAdjacencyInvariants(t *testing.T) {
	f := func(seed uint64, pick uint8) bool {
		name := generate.Names[int(pick)%len(generate.Names)]
		g, err := generate.ByName(name, 6, seed)
		if err != nil {
			return false
		}
		n := g.NumNodes()
		for u := int32(0); u < n; u++ {
			neigh := g.OutNeighbors(u)
			for i, v := range neigh {
				if v < 0 || v >= n || v == u {
					return false
				}
				if i > 0 && neigh[i-1] >= v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

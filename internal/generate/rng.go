// Package generate synthesizes the five GAP benchmark graphs.
//
// The paper's datasets (Road of USA, Twitter follow links, a .sk web crawl,
// Graph500 Kronecker, uniform random) total several billion edges and are not
// available offline, so this package builds seeded synthetic stand-ins with
// the same topological signatures at reduced scale: degree distribution
// (bounded / power-law / normal), directedness, diameter class, and — for the
// web graph — locality and clustering. The paper's own workload analysis says
// topology dominates workload behaviour, which is what makes this
// substitution meaningful; DESIGN.md records it.
package generate

// rng is a splitmix64 pseudo-random generator. A local implementation keeps
// graph generation bit-reproducible regardless of math/rand changes between
// Go releases, which matters because benchmark results are keyed to the graph.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n). n must be positive.
func (r *rng) intn(n int64) int64 {
	// Lemire-style rejection-free multiply-shift is overkill here; modulo
	// bias at these ranges (< 2^32) against a 64-bit stream is negligible
	// for workload generation, but we still mask the high bits for quality.
	return int64(r.next() % uint64(n))
}

// float64v returns a uniform value in [0, 1).
func (r *rng) float64v() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// weight returns a GAP-spec edge weight, uniform in [1, 255].
func (r *rng) weight() int32 {
	return int32(r.intn(255)) + 1
}

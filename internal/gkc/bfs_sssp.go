package gkc

import (
	"sync/atomic"

	ft "gapbench/internal/frontier"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// bfs is GKC's direction-optimizing BFS. Small frontiers run serially with
// no atomics or fan-out at all; larger ones run the push step with
// per-thread local buffers flushed in bulk to the shared next-frontier
// (§III-E's false-sharing reduction), and the dense middle runs the pull
// step over the in-CSR. The alpha/beta switch arithmetic comes from the
// shared frontier.Dispatcher; the frontier containers stay GKC's own
// (sliding queue plus bitmap ping-pong).
func bfs(exec *par.Machine, g *graph.Graph, src graph.NodeID, workers int) []graph.NodeID {
	n := int64(g.NumNodes())
	parent := make([]graph.NodeID, n)
	for i := range parent {
		parent[i] = -1
	}
	if n == 0 {
		return parent
	}
	parent[src] = src
	frontier := make([]graph.NodeID, 0, 1024)
	next := make([]graph.NodeID, 0, 1024)
	frontier = append(frontier, src)
	front := graph.NewBitmap(n)
	curr := graph.NewBitmap(n)
	disp := ft.NewDispatcher(n, g.NumEdges(), g.OutDegree(src))

	for len(frontier) > 0 {
		if exec.Interrupted() {
			return parent // partial; the harness discards cancelled trials
		}
		switch {
		case disp.UsePull():
			// Pull phase.
			front.Reset()
			for _, u := range frontier {
				front.Set(int64(u))
			}
			awake := int64(len(frontier))
			for {
				prev := awake
				curr.Reset()
				awake = exec.ReduceInt64(int(n), workers, func(lo, hi int) int64 {
					var count int64
					for u := lo; u < hi; u++ {
						//gapvet:ignore atomic-plain-mix -- pull phase: each u writes only parent[u]; barrier-separated from the push phase's CAS
						if parent[u] >= 0 {
							continue
						}
						for _, v := range g.InNeighbors(graph.NodeID(u)) {
							if front.Get(int64(v)) {
								parent[u] = v
								curr.SetAtomic(int64(u))
								count++
								break
							}
						}
					}
					return count
				})
				front.Swap(curr)
				if !disp.KeepPulling(awake, prev) {
					break
				}
			}
			frontier = frontier[:0]
			for u := int64(0); u < n; u++ {
				if front.Get(u) {
					frontier = append(frontier, graph.NodeID(u))
				}
			}
			disp.EndPull()
		case len(frontier) < serialThreshold:
			// Serial push: no atomics, no goroutines — the fast path that
			// wins Road's thousands of tiny levels.
			disp.BeginPush()
			var sc int64
			next = next[:0]
			for _, u := range frontier {
				for _, v := range g.OutNeighbors(u) {
					if parent[v] < 0 {
						parent[v] = u
						next = append(next, v)
						sc += g.OutDegree(v)
					}
				}
			}
			frontier, next = next, frontier
			disp.EndPush(sc)
		default:
			// Parallel push with local buffers.
			disp.BeginPush()
			var newScout atomic.Int64
			shared := graph.NewSlidingQueue(n)
			cur := frontier
			exec.ForDynamic(len(cur), 64, workers, func(lo, hi int) {
				//gapvet:ignore alloc-in-timed-region -- QueueBuffer idiom: one buffer per 64-vertex chunk, amortized over the chunk's edges
				local := make([]graph.NodeID, 0, localBufferSize)
				var sc int64
				for i := lo; i < hi; i++ {
					u := cur[i]
					for _, v := range g.OutNeighbors(u) {
						if atomic.LoadInt32(&parent[v]) < 0 &&
							atomic.CompareAndSwapInt32(&parent[v], -1, u) {
							local = append(local, v)
							sc += g.OutDegree(v)
						}
					}
				}
				if len(local) > 0 {
					base := shared.Reserve(int64(len(local)))
					for i, v := range local {
						shared.Write(base+int64(i), v)
					}
				}
				newScout.Add(sc)
			})
			shared.SlideWindow()
			frontier = append(frontier[:0], shared.Frontier()...)
			disp.EndPush(newScout.Load())
		}
	}
	return parent
}

// sssp is GKC's delta-stepping: per-worker bucket bins, a serial fast path
// for tiny frontiers, and no bucket fusion — the omission behind GKC's weak
// Road SSSP showing (18% in Table V) despite its strong BFS there.
func sssp(exec *par.Machine, g *graph.Graph, src graph.NodeID, delta kernel.Dist, workers int) []kernel.Dist {
	n := int(g.NumNodes())
	dist := make([]kernel.Dist, n)
	for i := range dist {
		dist[i] = kernel.Inf
	}
	if n == 0 {
		return dist
	}
	if workers < 1 {
		workers = 1
	}
	dist[src] = 0
	bins := make([][][]graph.NodeID, workers)
	put := func(w, b int, v graph.NodeID) {
		for b >= len(bins[w]) {
			bins[w] = append(bins[w], nil)
		}
		bins[w][b] = append(bins[w][b], v)
	}

	frontier := []graph.NodeID{src}
	bucket := 0
	for {
		if exec.Interrupted() {
			return dist // partial; the harness discards cancelled trials
		}
		lo := kernel.Dist(bucket) * delta
		hi := lo + delta
		// Every bucket pass is a full fork-join over the frontier — GKC has
		// neither a bucket-fusion equivalent nor BFS's serial fast path in
		// its SSSP, which is why its Road SSSP trails GAP badly in the paper
		// (Table V: 18%) even though its Road BFS leads.
		exec.ForWorker(len(frontier), workers, func(w, i0, i1 int) {
			for i := i0; i < i1; i++ {
				u := frontier[i]
				du := atomic.LoadInt32(&dist[u])
				if du < lo || du >= hi {
					continue
				}
				neigh := g.OutNeighbors(u)
				ws := g.OutWeights(u)
				for k, v := range neigh {
					nd := du + ws[k]
					old := atomic.LoadInt32(&dist[v])
					for nd < old {
						if atomic.CompareAndSwapInt32(&dist[v], old, nd) {
							put(w, int(nd/delta), v)
							break
						}
						old = atomic.LoadInt32(&dist[v])
					}
				}
			}
		})
		next := -1
		for w := range bins {
			for b := bucket; b < len(bins[w]); b++ {
				if len(bins[w][b]) > 0 && (next < 0 || b < next) {
					next = b
					break
				}
			}
		}
		if next < 0 {
			break
		}
		frontier = frontier[:0]
		for w := range bins {
			if next < len(bins[w]) {
				frontier = append(frontier, bins[w][next]...)
				bins[w][next] = nil
			}
		}
		bucket = next
	}
	return dist
}

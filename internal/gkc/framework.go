// Package gkc reproduces the Graph Kernel Collection: hand-tuned black-box
// kernels built the way §III-E describes — per-thread local buffers sized to
// stay cache-resident and flushed in bulk to reduce false sharing, unrolled
// "SIMD-like" inner loops standing in for the AVX intrinsics and inline
// assembly of the original, and heuristics that skip tuning overheads
// (relabeling, parallel fan-out) when the graph is too small or too uniform
// to pay for them. The last point is why GKC shines on Road (§VI: "Road
// benefits from GKC's algorithm because of its small size, resulting in
// higher cache-reuse").
package gkc

import (
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// localBufferSize is the per-thread buffer capacity, sized like GKC sizes
// its buffers to the L2 cache (§III-E: "Local buffers are sized according to
// either the L1 or L2 cache sizes").
const localBufferSize = 4096

// serialThreshold is the frontier size below which kernels run the level
// serially: with only a handful of active vertices, the fork-join fan-out
// costs more than the work (the hand-tuned advantage on Road's thousands of
// tiny frontiers).
const serialThreshold = 512

// Framework is the GKC reproduction.
type Framework struct{}

// New returns the GKC framework.
func New() *Framework { return &Framework{} }

// Name implements kernel.Framework.
func (*Framework) Name() string { return "GKC" }

// Attributes returns the Table II row.
func (*Framework) Attributes() map[string]string {
	return map[string]string{
		"Type":                      "direct implementations",
		"Internal Graph Data":       "outgoing & (opt.) incoming edges",
		"Programming Abstraction":   "arbitrary",
		"Execution Synchronization": "algorithm-specific, level-synchronous",
		"Intended Users":            "application developers",
	}
}

// Algorithms returns the Table III row.
func (*Framework) Algorithms() kernel.Algorithms {
	return kernel.Algorithms{
		BFS:  "Direction-optimizing (local buffers, SIMD)",
		SSSP: "Delta-stepping (SIMD)",
		CC:   "Shiloach-Vishkin Hybrid",
		PR:   "Gauss-Seidel SpMV (SIMD)",
		BC:   "Brandes",
		TC:   "Lee & Low (SIMD set intersection, relabel heuristic)",
	}
}

var (
	_ kernel.Framework = (*Framework)(nil)
	_ kernel.Describer = (*Framework)(nil)
)

// BFS implements kernel.Framework.
func (*Framework) BFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	return bfs(opt.Exec(), g, src, opt.EffectiveWorkers())
}

// SSSP implements kernel.Framework.
func (*Framework) SSSP(g *graph.Graph, src graph.NodeID, opt kernel.Options) []kernel.Dist {
	delta := opt.Delta
	if delta <= 0 {
		delta = 16
	}
	return sssp(opt.Exec(), g, src, delta, opt.EffectiveWorkers())
}

// PR implements kernel.Framework.
func (*Framework) PR(g *graph.Graph, opt kernel.Options) []float64 {
	return pagerank(opt.Exec(), g, opt.EffectiveWorkers())
}

// CC implements kernel.Framework.
func (*Framework) CC(g *graph.Graph, opt kernel.Options) []graph.NodeID {
	return hybridSV(opt.Exec(), g, opt.EffectiveWorkers())
}

// BC implements kernel.Framework.
func (*Framework) BC(g *graph.Graph, sources []graph.NodeID, opt kernel.Options) []float64 {
	return brandes(opt.Exec(), g, sources, opt.EffectiveWorkers())
}

// TC implements kernel.Framework.
func (*Framework) TC(g *graph.Graph, opt kernel.Options) int64 {
	u := opt.Undirected(g)
	// Size/degree heuristic (§VI: "the overheads of sorting and using SIMD
	// are avoided due to the heuristics. Further, Road benefits from GKC's
	// algorithm because of its small size"): sparse graphs skip relabeling,
	// the forward-index build, and the SIMD machinery entirely.
	if u.NumEdges() < 8*int64(u.NumNodes()) {
		return serialPrefixTC(u)
	}
	if opt.Mode == kernel.Optimized && opt.RelabeledView != nil {
		u = opt.RelabeledView
	} else if graph.SkewedDegrees(u) {
		// §V-F: "GKC sorts vertices depending on degree skewness".
		u, _ = graph.DegreeRelabel(u)
	}
	return leeLowTC(opt.Exec(), u, opt.EffectiveWorkers())
}

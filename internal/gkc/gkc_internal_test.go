package gkc

import (
	"testing"
	"testing/quick"

	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/par"
	"gapbench/internal/testutil"
	"gapbench/internal/verify"
)

func TestLeeLowMatchesSerialPrefix(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	for _, name := range []string{"Kron", "Twitter", "Urand"} {
		g, err := generate.ByName(name, 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		u := g.Undirected()
		want := serialPrefixTC(u)
		if got := leeLowTC(par.Default(), u, 4); got != want {
			t.Fatalf("%s: leeLowTC = %d, serial = %d", name, got, want)
		}
		if oracle := verify.Triangles(u); oracle != want {
			t.Fatalf("%s: serial = %d, oracle = %d", name, want, oracle)
		}
	}
}

func TestLeeLowMarkerPath(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// A clique forces every row past the marker threshold.
	const k = 80 // degree 79 >= markerThreshold (64)
	var edges []graph.WEdge
	for i := int32(0); i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, graph.WEdge{U: i, V: j, W: 1})
		}
	}
	g, err := graph.BuildWeighted(edges, graph.BuildOptions{NumNodes: k, Directed: false})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(k) * (k - 1) * (k - 2) / 6
	if got := leeLowTC(par.Default(), g, 4); got != want {
		t.Fatalf("marker path count = %d, want %d", got, want)
	}
}

func TestIntersectHelpers(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	x := []graph.NodeID{1, 4, 6, 9}
	y := []graph.NodeID{2, 4, 9, 12}
	if got := mergeFwd(x, y); got != 2 {
		t.Fatalf("mergeFwd = %d, want 2", got)
	}
	if mergeFwd(nil, y) != 0 || mergeFwd(x, nil) != 0 {
		t.Fatal("empty intersections nonzero")
	}
	if lowerBound(x, 5) != 2 || lowerBound(x, 1) != 0 || lowerBound(x, 10) != 4 {
		t.Fatal("lowerBound wrong")
	}
}

func TestHybridSVEquivalentToOracle(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	for _, name := range []string{"Road", "Kron"} {
		g, err := generate.ByName(name, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.CheckCC(g, hybridSV(par.Default(), g, 4)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestSerialThresholdBFSBoundary(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// A star with hub degree above the serial threshold forces the parallel
	// push path; a path graph stays serial. Both must be correct.
	var star []graph.WEdge
	for i := int32(1); i <= serialThreshold*2; i++ {
		star = append(star, graph.WEdge{U: 0, V: i, W: 1})
		if i > 1 {
			star = append(star, graph.WEdge{U: i, V: i - 1, W: 1})
		}
	}
	g, err := graph.BuildWeighted(star, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckBFS(g, 0, bfs(par.Default(), g, 0, 4)); err != nil {
		t.Fatal(err)
	}
}

// Property: hybridSV and the oracle agree on random small graphs.
func TestHybridSVProperty(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	f := func(raw []uint8) bool {
		edges := make([]graph.WEdge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.WEdge{U: graph.NodeID(raw[i] % 32), V: graph.NodeID(raw[i+1] % 32), W: 1})
		}
		g, err := graph.BuildWeighted(edges, graph.BuildOptions{NumNodes: 32, Directed: false})
		if err != nil {
			return false
		}
		return verify.CheckCC(g, hybridSV(par.Default(), g, 3)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

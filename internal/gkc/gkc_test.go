package gkc_test

import (
	"testing"

	"gapbench/internal/generate"
	"gapbench/internal/gkc"
	"gapbench/internal/testutil"
)

func TestConformance(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	testutil.RunConformance(t, gkc.New())
}

func TestDescribe(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	testutil.Describe(t, gkc.New())
}

func TestAcrossWorkerCounts(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	g, err := generate.Twitter(8, 9)
	if err != nil {
		t.Fatal(err)
	}
	testutil.RunKernelAcrossWorkers(t, gkc.New(), g)
}

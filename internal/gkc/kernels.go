package gkc

import (
	"math"
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// pagerank is GKC's Gauss-Seidel PageRank with a 4-way unrolled gather loop
// standing in for the AVX-256 gathers of the original (§III-E notes GKC
// found AVX-256 faster than AVX-512 on the test platform).
func pagerank(exec *par.Machine, g *graph.Graph, workers int) []float64 {
	n := int(g.NumNodes())
	if n == 0 {
		return nil
	}
	base := (1 - kernel.PRDamping) / float64(n)
	ranks := make([]float64, n)
	contrib := make([]uint64, n) // float64 bits of rank/out-degree
	invDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		ranks[v] = 1 / float64(n)
		if d := g.OutDegree(graph.NodeID(v)); d > 0 {
			invDeg[v] = 1 / float64(d)
			contrib[v] = math.Float64bits(ranks[v] * invDeg[v])
		}
	}
	for it := 0; it < kernel.PRMaxIters; it++ {
		if exec.Interrupted() {
			return ranks // partial; the harness discards cancelled trials
		}
		dangling := exec.ReduceFloat64(n, workers, func(lo, hi int) float64 {
			var d float64
			for u := lo; u < hi; u++ {
				if invDeg[u] == 0 {
					d += ranks[u]
				}
			}
			return d
		})
		danglingShare := kernel.PRDamping * dangling / float64(n)
		delta := exec.ReduceFloat64(n, workers, func(lo, hi int) float64 {
			var d float64
			for vi := lo; vi < hi; vi++ {
				v := graph.NodeID(vi)
				neigh := g.InNeighbors(v)
				var s0, s1, s2, s3 float64
				k := 0
				// 4-lane unrolled gather ("SIMD"); the atomic loads compile
				// to plain MOVs here.
				for ; k+4 <= len(neigh); k += 4 {
					s0 += math.Float64frombits(atomic.LoadUint64(&contrib[neigh[k]]))
					s1 += math.Float64frombits(atomic.LoadUint64(&contrib[neigh[k+1]]))
					s2 += math.Float64frombits(atomic.LoadUint64(&contrib[neigh[k+2]]))
					s3 += math.Float64frombits(atomic.LoadUint64(&contrib[neigh[k+3]]))
				}
				sum := s0 + s1 + s2 + s3
				// Range over the tail slice: a range loop needs no bounds
				// check on neigh (indexing with the unrolled loop's exit k
				// defeats the prove pass, which loses k's non-negativity
				// across the k += 4 loop).
				for _, w := range neigh[k:] {
					sum += math.Float64frombits(atomic.LoadUint64(&contrib[w]))
				}
				next := base + danglingShare + kernel.PRDamping*sum
				d += math.Abs(next - ranks[v])
				ranks[v] = next
				if invDeg[v] != 0 {
					atomic.StoreUint64(&contrib[v], math.Float64bits(next*invDeg[v]))
				}
			}
			return d
		})
		if delta < kernel.PRTolerance {
			break
		}
	}
	return ranks
}

// hybridSV is GKC's hybrid Shiloach-Vishkin connected components: flat,
// cache-friendly sweeps over the CSR edge arrays (hooking) alternated with
// pointer-jumping sweeps, iterated to a fixed point. No sampling phase —
// which is exactly why it does not collapse on Urand the way sampling-based
// Afforest does (§V-C reproduces Sutton et al.'s observation), while paying
// more passes than Afforest on graphs with an early giant component.
func hybridSV(exec *par.Machine, g *graph.Graph, workers int) []graph.NodeID {
	n := int(g.NumNodes())
	comp := make([]graph.NodeID, n)
	for i := range comp {
		comp[i] = graph.NodeID(i)
	}
	if n == 0 {
		return comp
	}
	// One change flag for every sweep: hookSweep's chunk closures capture the
	// pointer by value, so no per-sweep heap cell is allocated.
	var sweepChanged atomic.Bool
	for {
		if exec.Interrupted() {
			return comp
		}
		// Hooking sweep: linear scan of the out-CSR (and in-CSR for directed
		// graphs) — sequential memory traffic, the "SIMD-friendly" layout.
		changed := hookSweep(exec, g, comp, workers, false, &sweepChanged)
		if g.Directed() {
			if hookSweep(exec, g, comp, workers, true, &sweepChanged) {
				changed = true
			}
		}
		// Shortcut sweep: full pointer jumping.
		exec.ForBlocked(n, workers, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				c := atomic.LoadInt32(&comp[u])
				for {
					cc := atomic.LoadInt32(&comp[c])
					if cc == c {
						break
					}
					c = cc
				}
				atomic.StoreInt32(&comp[u], c)
			}
		})
		if !changed {
			return comp
		}
	}
}

// hookSweep hooks every edge's higher root under the lower one, returning
// whether anything changed. The flag is caller-owned so the chunk closure
// captures only a pointer, not a per-sweep heap cell.
func hookSweep(exec *par.Machine, g *graph.Graph, comp []graph.NodeID, workers int, useIn bool, changed *atomic.Bool) bool {
	n := int(g.NumNodes())
	changed.Store(false)
	exec.ForBlocked(n, workers, func(lo, hi int) {
		localChanged := false
		for u := lo; u < hi; u++ {
			var neigh []graph.NodeID
			if useIn {
				neigh = g.InNeighbors(graph.NodeID(u))
			} else {
				neigh = g.OutNeighbors(graph.NodeID(u))
			}
			cu := atomic.LoadInt32(&comp[u])
			for _, v := range neigh {
				cv := atomic.LoadInt32(&comp[v])
				if cu == cv {
					continue
				}
				high, low := cu, cv
				if high < low {
					high, low = low, high
				}
				// Hook only roots (classic SV): comp[high] == high.
				if atomic.CompareAndSwapInt32(&comp[high], high, low) {
					localChanged = true
				}
				cu = atomic.LoadInt32(&comp[u])
			}
		}
		if localChanged {
			changed.Store(true)
		}
	})
	return changed.Load()
}

// brandes is GKC's Brandes BC: level-synchronous with the same serial
// small-frontier fast path as BFS, keeping it within a few percent of GAP
// everywhere (Table V: 97–107%).
func brandes(exec *par.Machine, g *graph.Graph, sources []graph.NodeID, workers int) []float64 {
	n := int(g.NumNodes())
	scores := make([]float64, n)
	if n == 0 {
		return scores
	}
	depth := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)

	for _, src := range sources {
		exec.ForBlocked(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				//gapvet:ignore atomic-plain-mix -- reset phase: barrier-separated from the forward phase's CAS on depth
				depth[i] = -1
				sigma[i] = 0
				delta[i] = 0
			}
		})
		depth[src] = 0
		sigma[src] = 1

		levels := [][]graph.NodeID{{src}}
		current := levels[0]
		for len(current) > 0 {
			if exec.Interrupted() {
				return scores
			}
			d := int32(len(levels))
			var next []graph.NodeID
			if len(current) < serialThreshold {
				for _, u := range current {
					for _, v := range g.OutNeighbors(u) {
						if depth[v] < 0 {
							depth[v] = d
							next = append(next, v)
						}
					}
				}
			} else {
				shared := graph.NewSlidingQueue(int64(n))
				exec.ForDynamic(len(current), 64, workers, func(lo, hi int) {
					//gapvet:ignore alloc-in-timed-region -- QueueBuffer idiom: one buffer per 64-vertex chunk, amortized over the chunk's edges
					local := make([]graph.NodeID, 0, 256)
					for i := lo; i < hi; i++ {
						u := current[i]
						for _, v := range g.OutNeighbors(u) {
							if atomic.LoadInt32(&depth[v]) < 0 &&
								atomic.CompareAndSwapInt32(&depth[v], -1, d) {
								local = append(local, v)
							}
						}
					}
					if len(local) > 0 {
						base := shared.Reserve(int64(len(local)))
						for i, v := range local {
							shared.Write(base+int64(i), v)
						}
					}
				})
				shared.SlideWindow()
				next = append(next, shared.Frontier()...)
			}
			if len(next) == 0 {
				break
			}
			levels = append(levels, next)
			current = next
		}

		for l := 1; l < len(levels); l++ {
			level := levels[l]
			exec.ForDynamic(len(level), 128, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := level[i]
					var s float64
					for _, u := range g.InNeighbors(v) {
						if depth[u] == depth[v]-1 {
							s += sigma[u]
						}
					}
					sigma[v] = s
				}
			})
		}
		for l := len(levels) - 2; l >= 0; l-- {
			level := levels[l]
			exec.ForDynamic(len(level), 128, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					u := level[i]
					var dd float64
					for _, v := range g.OutNeighbors(u) {
						if depth[v] == depth[u]+1 {
							dd += sigma[u] / sigma[v] * (1 + delta[v])
						}
					}
					delta[u] = dd
					if u != src {
						scores[u] += dd
					}
				}
			})
		}
	}

	maxScore := 0.0
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
	}
	if maxScore > 0 {
		for i := range scores {
			scores[i] /= maxScore
		}
	}
	return scores
}

// leeLowTC is the Lee & Low triangle count: build the forward (upper-
// triangular) adjacency once, then count each u < v < w once by intersecting
// forward lists. For high-degree rows a per-worker marker array turns each
// intersection into O(|fwd(v)|) membership tests against the row visited
// last — the cache-reuse trick §III-E/§V-F describes ("set intersections
// with vectors that were previously visited, thereby increasing data reuse
// in caches") — while low-degree rows use a plain cursor merge.
func leeLowTC(exec *par.Machine, u *graph.Graph, workers int) int64 {
	n := int(u.NumNodes())
	// Forward adjacency: neighbors strictly greater than the vertex.
	index := make([]int64, n+1)
	for v := 0; v < n; v++ {
		neigh := u.OutNeighbors(graph.NodeID(v))
		k := lowerBound(neigh, graph.NodeID(v)+1)
		index[v+1] = index[v] + int64(len(neigh)-k)
	}
	fwd := make([]graph.NodeID, index[n])
	exec.ForBlocked(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			neigh := u.OutNeighbors(graph.NodeID(v))
			k := lowerBound(neigh, graph.NodeID(v)+1)
			copy(fwd[index[v]:index[v+1]], neigh[k:])
		}
	})
	row := func(v graph.NodeID) []graph.NodeID { return fwd[index[v]:index[v+1]] }

	const markerThreshold = 64
	if workers < 1 {
		workers = 1
	}
	partial := make([]int64, workers)
	markers := make([][]bool, workers)
	for w := range markers {
		markers[w] = make([]bool, n)
	}
	// One machine slot per worker pulls dynamic chunks off a shared cursor:
	// the slot id w keys the private marker array, and any single slot can
	// drain the cursor to completion, so the schedule is correct even when
	// slots run sequentially. (This was a hand-rolled goroutine fork-join
	// before the machine existed.)
	var cursor atomicCursor
	exec.ForWorker(workers, workers, func(w, _, _ int) {
		mark := markers[w]
		var count int64
		for {
			lo, hi := cursor.take(n, 32)
			if lo >= n {
				break
			}
			for a := lo; a < hi; a++ {
				na := row(graph.NodeID(a))
				if len(na) >= markerThreshold {
					// Marker path: one pass to set, O(1) membership per
					// candidate, one pass to clear.
					for _, b := range na {
						mark[b] = true
					}
					for _, b := range na {
						for _, w2 := range row(b) {
							if mark[w2] {
								count++
							}
						}
					}
					for _, b := range na {
						mark[b] = false
					}
				} else {
					for _, b := range na {
						count += mergeFwd(na, row(b))
					}
				}
			}
		}
		partial[w] = count
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}

// atomicCursor hands out dynamic chunks of the vertex range.
type atomicCursor struct{ next atomic.Int64 }

func (c *atomicCursor) take(n, chunk int) (int, int) {
	lo := int(c.next.Add(int64(chunk))) - chunk
	hi := lo + chunk
	if hi > n {
		hi = n
	}
	return lo, hi
}

// mergeFwd counts common elements of two sorted forward lists with a cursor
// merge.
func mergeFwd(x, y []graph.NodeID) int64 {
	var count int64
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		xi, yj := x[i], y[j]
		switch {
		case xi < yj:
			i++
		case xi > yj:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// lowerBound returns the first index in sorted xs with xs[i] >= x.
func lowerBound(xs []graph.NodeID, x graph.NodeID) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// serialPrefixTC counts triangles with the plain prefix-cursor method and no
// parallel fan-out at all — the cheapest possible path for small sparse
// graphs like Road, where any setup or scheduling overhead dwarfs the count
// itself.
func serialPrefixTC(u *graph.Graph) int64 {
	var count int64
	n := int(u.NumNodes())
	for a := 0; a < n; a++ {
		na := u.OutNeighbors(graph.NodeID(a))
		for _, b := range na {
			if b > graph.NodeID(a) {
				break
			}
			nb := u.OutNeighbors(b)
			it := 0
			for _, w := range nb {
				if w > b {
					break
				}
				for na[it] < w {
					it++
				}
				if na[it] == w {
					count++
				}
			}
		}
	}
	return count
}

package graph

import (
	"fmt"
	"unsafe"
)

// arena.go: the single storage block behind a Graph's CSR views.
//
// A CSR graph is six arrays (out/in index, neighbors, weights), but it is one
// *object*: the arrays are built together, sealed together, and retired
// together. The Arena makes that physical — one contiguous byte block with
// the six arrays carved out as typed views at 64-byte-aligned offsets, in a
// fixed section order shared with the format-v2 serialized file (io_v2.go).
// Two backends provide the block:
//
//   - heap: one make([]byte) per graph, written by the counting-sort ingest
//     pipeline (builder.go). Reclaimed by the GC like any allocation.
//   - mmap: a read-only memory map of a format-v2 file. Loading is O(header)
//     — the section offsets in the file are the arena offsets, so the views
//     are carved straight out of the mapping and no byte is copied or even
//     faulted in until a kernel touches it.
//
// Because the in-memory layout and the on-disk layout are the same function
// (layoutFor), serialization of a heap arena is a header plus one contiguous
// write, and deserialization of a v2 file is a map plus pointer arithmetic.
//
// The views alias one block, so the lifetime rules sharpen: Graph.Close
// releases the arena (unmapping it for the mmap backend), and no
// graph-derived slice may be retained past it. gapvet's arena-escape rule
// (internal/analysis) proves that statically at the call sites it can see;
// Close also poisons the graph's own views (nils them) so a stale *Graph
// fails with a Go panic rather than a fault on an unmapped page.

// arenaAlign is the section alignment: one cache line, so no two sections
// share a line and SIMD-friendly loads never straddle a section boundary.
// File section offsets inherit it (the 256-byte header is 64-aligned and maps
// are page-aligned), which is what makes the mmap views legal []int64s.
const arenaAlign = 64

// Section indices, in arena/file order. The out-CSR comes first so the
// undirected case (no in-sections) is a pure prefix of the directed one.
const (
	secOutIndex = iota
	secOutNeigh
	secOutWeight
	secInIndex
	secInNeigh
	secInWeight
	numSections
)

// arenaLayout is the section map of one arena: byte offsets and sizes for
// the six sections, derived deterministically from the graph shape. The same
// layout describes the heap block and the body of a format-v2 file.
type arenaLayout struct {
	n         int32
	mOut, mIn int64
	directed  bool
	weighted  bool
	off, size [numSections]int64
	total     int64
}

func align64(x int64) int64 { return (x + arenaAlign - 1) &^ (arenaAlign - 1) }

// layoutFor computes the canonical section layout for a graph shape.
// Undirected graphs store no in-sections (the views alias the out-side);
// unweighted graphs store no weight sections.
func layoutFor(n int32, mOut, mIn int64, directed, weighted bool) arenaLayout {
	lay := arenaLayout{n: n, mOut: mOut, mIn: mIn, directed: directed, weighted: weighted}
	add := func(sec int, bytes int64) {
		lay.off[sec] = lay.total
		lay.size[sec] = bytes
		lay.total = align64(lay.total + bytes)
	}
	add(secOutIndex, 8*(int64(n)+1))
	add(secOutNeigh, 4*mOut)
	if weighted {
		add(secOutWeight, 4*mOut)
	} else {
		add(secOutWeight, 0)
	}
	if directed {
		add(secInIndex, 8*(int64(n)+1))
		add(secInNeigh, 4*mIn)
		if weighted {
			add(secInWeight, 4*mIn)
		} else {
			add(secInWeight, 0)
		}
	} else {
		add(secInIndex, 0)
		add(secInNeigh, 0)
		add(secInWeight, 0)
	}
	return lay
}

// Arena is one graph's storage block. The zero value is not useful; arenas
// are created by newHeapArena (builder paths) or the format-v2 loader.
type Arena struct {
	lay arenaLayout
	// data is the live block the views point into. For the mmap backend it
	// is the mapping minus the file header; for the heap backend it is a
	// 64-aligned sub-slice of one allocation.
	data []byte
	// mapped is the full kernel mapping to hand back to munmap; nil for the
	// heap backend.
	mapped []byte
}

// newHeapArena allocates one zeroed block sized and aligned for the layout.
func newHeapArena(lay arenaLayout) *Arena {
	buf := make([]byte, lay.total+arenaAlign)
	base := uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
	skew := (arenaAlign - int64(base%arenaAlign)) % arenaAlign
	return &Arena{lay: lay, data: buf[skew : skew+lay.total]}
}

// Mapped reports whether the arena is a read-only memory map (as opposed to
// writable heap memory).
func (a *Arena) Mapped() bool { return a != nil && a.mapped != nil }

// Size returns the arena's payload size in bytes.
func (a *Arena) Size() int64 {
	if a == nil {
		return 0
	}
	return a.lay.total
}

// Bytes exposes the raw arena block (all six sections plus alignment
// padding). Like the Graph accessors, the returned slice aliases graph
// storage and must not be modified; it is registered as a graph-mutation
// seed in gapvet's write-set lattice.
func (a *Arena) Bytes() []byte { return a.data }

// int64s carves the typed view of an 8-byte-element section; nil when the
// section is absent.
func (a *Arena) int64s(sec int) []int64 {
	if a.lay.size[sec] == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&a.data[a.lay.off[sec]])), a.lay.size[sec]/8)
}

// int32s carves the typed view of a 4-byte-element section; nil when the
// section is absent.
func (a *Arena) int32s(sec int) []int32 {
	if a.lay.size[sec] == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&a.data[a.lay.off[sec]])), a.lay.size[sec]/4)
}

// close releases the backing storage: munmap for the mmap backend, dropping
// the reference (and letting the GC collect) for the heap backend.
func (a *Arena) close() error {
	if a == nil {
		return nil
	}
	m := a.mapped
	a.mapped, a.data = nil, nil
	if m != nil {
		return munmapBytes(m)
	}
	return nil
}

// graphFromArena assembles a Graph over an arena's views. For undirected
// layouts the in-views alias the out-views; for weighted graphs with zero
// edges the weight views are pinned to empty-but-non-nil slices so
// Weighted() survives the round trip.
func graphFromArena(a *Arena, layout Layout) *Graph {
	lay := a.lay
	g := &Graph{n: lay.n, directed: lay.directed, layout: layout, arena: a}
	g.outIndex = a.int64s(secOutIndex)
	g.outNeigh = a.int32s(secOutNeigh)
	if lay.weighted {
		g.outWeight = nonNil32(a.int32s(secOutWeight))
	}
	if lay.directed {
		g.inIndex = a.int64s(secInIndex)
		g.inNeigh = a.int32s(secInNeigh)
		if lay.weighted {
			g.inWeight = nonNil32(a.int32s(secInWeight))
		}
	} else {
		g.inIndex, g.inNeigh, g.inWeight = g.outIndex, g.outNeigh, g.outWeight
	}
	g.epoch = structuralEpoch(lay, layout)
	return g
}

func nonNil32(s []int32) []int32 {
	if s == nil {
		return make([]int32, 0)
	}
	return s
}

// structuralEpoch is the cheap identity stamped on built (non-file) graphs:
// a hash of the shape and layout, not the contents. Graphs loaded from (or
// saved to) a format-v2 file carry the file's header checksum instead, which
// does cover contents — see io_v2.go. Never zero, so "no epoch recorded"
// stays distinguishable in journals.
func structuralEpoch(lay arenaLayout, layout Layout) uint64 {
	h := mix64(uint64(lay.n) + 1)
	h = mix64(h ^ uint64(lay.mOut))
	h = mix64(h ^ uint64(lay.mIn))
	var flags uint64
	if lay.directed {
		flags |= 1
	}
	if lay.weighted {
		flags |= 2
	}
	h = mix64(h ^ flags ^ uint64(layout)<<8)
	if h == 0 {
		h = 1
	}
	return h
}

// validateArenaShape rejects shapes whose layout would overflow or exceed
// the deserialization bounds shared with the v1 reader.
func validateArenaShape(n int64, mOut, mIn int64) error {
	if n < 0 || n > 1<<31-2 {
		return fmt.Errorf("graph: vertex count %d out of range", n)
	}
	if mOut < 0 || mOut > 1<<40 || mIn < 0 || mIn > 1<<40 {
		return fmt.Errorf("graph: entry count %d/%d out of range", mOut, mIn)
	}
	return nil
}

package graph

import "testing"

// White-box tests for the storage arena: section geometry, alignment, view
// aliasing, and close/poison semantics.

func TestLayoutForGeometry(t *testing.T) {
	lay := layoutFor(3, 5, 5, true, true)
	if lay.total%arenaAlign != 0 {
		t.Errorf("total %d not %d-aligned", lay.total, arenaAlign)
	}
	for sec := 0; sec < numSections; sec++ {
		if lay.off[sec]%arenaAlign != 0 {
			t.Errorf("section %d offset %d not aligned", sec, lay.off[sec])
		}
	}
	wantSizes := [numSections]int64{
		secOutIndex: 8 * 4, secOutNeigh: 4 * 5, secOutWeight: 4 * 5,
		secInIndex: 8 * 4, secInNeigh: 4 * 5, secInWeight: 4 * 5,
	}
	if lay.size != wantSizes {
		t.Errorf("sizes = %v, want %v", lay.size, wantSizes)
	}

	// Undirected unweighted: only the out index/neighbor sections exist.
	u := layoutFor(3, 5, 0, false, false)
	for _, sec := range []int{secOutWeight, secInIndex, secInNeigh, secInWeight} {
		if u.size[sec] != 0 {
			t.Errorf("undirected unweighted section %d has size %d", sec, u.size[sec])
		}
	}
	// The directed layout's out-sections are a prefix at the same offsets.
	if u.off[secOutIndex] != lay.off[secOutIndex] || u.off[secOutNeigh] != lay.off[secOutNeigh] {
		t.Error("out-section offsets differ between directed and undirected layouts")
	}
}

func TestHeapArenaAlignment(t *testing.T) {
	for _, n := range []int32{0, 1, 7, 100} {
		a := newHeapArena(layoutFor(n, int64(n)*3, 0, false, false))
		if len(a.data) != int(a.lay.total) {
			t.Fatalf("n=%d: data len %d != total %d", n, len(a.data), a.lay.total)
		}
		if idx := a.int64s(secOutIndex); int64(len(idx)) != int64(n)+1 {
			t.Fatalf("n=%d: index view len %d", n, len(idx))
		}
	}
}

func TestGraphFromArenaUndirectedAliases(t *testing.T) {
	g, err := Build([]Edge{{U: 0, V: 1}, {U: 1, V: 2}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.arena == nil {
		t.Fatal("built graph has no arena")
	}
	if &g.inIndex[0] != &g.outIndex[0] || &g.inNeigh[0] != &g.outNeigh[0] {
		t.Error("undirected in-views do not alias the out-views")
	}
	if g.Epoch() == 0 {
		t.Error("built graph has zero epoch")
	}
}

func TestWeightedEmptyGraphStaysWeighted(t *testing.T) {
	g, err := BuildWeighted(nil, BuildOptions{NumNodes: 4, Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Error("weighted zero-edge graph lost its weighted flag")
	}
}

func TestClosePoisonsViews(t *testing.T) {
	g, err := BuildWeighted([]WEdge{{U: 0, V: 1, W: 2}}, BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if g.outIndex != nil || g.outNeigh != nil || g.inIndex != nil || g.arena != nil {
		t.Error("Close left views or arena in place")
	}
	if err := g.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("OutNeighbors after Close did not panic")
			}
		}()
		_ = g.OutNeighbors(0)
	}()
}

func TestStructuralEpochDistinguishesShapes(t *testing.T) {
	a := structuralEpoch(layoutFor(4, 6, 6, true, false), LayoutPlain)
	b := structuralEpoch(layoutFor(4, 6, 6, true, false), LayoutDegree)
	c := structuralEpoch(layoutFor(5, 6, 6, true, false), LayoutPlain)
	if a == b || a == c || b == c {
		t.Errorf("epochs collide: %#x %#x %#x", a, b, c)
	}
	if a == 0 || b == 0 || c == 0 {
		t.Error("structural epoch must never be zero")
	}
}

func TestValidateArenaShape(t *testing.T) {
	if err := validateArenaShape(10, 100, 100); err != nil {
		t.Errorf("valid shape rejected: %v", err)
	}
	for _, bad := range [][3]int64{
		{-1, 0, 0}, {1 << 31, 0, 0}, {1, -1, 0}, {1, 0, 1<<40 + 1},
	} {
		if err := validateArenaShape(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("shape %v accepted", bad)
		}
	}
}

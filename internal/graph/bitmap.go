package graph

import "sync/atomic"

// Bitmap is a fixed-size bit set over vertex ids with both plain and atomic
// update paths. The GAP reference uses bitmaps for the dense ("pull") side of
// direction-optimizing BFS and for Brandes successor tracking; several of the
// framework reproductions share this type.
type Bitmap struct {
	words []uint64
	n     int64
}

// NewBitmap returns a cleared bitmap capable of holding n bits.
func NewBitmap(n int64) *Bitmap {
	if n < 0 {
		n = 0
	}
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bitmap capacity in bits.
func (b *Bitmap) Len() int64 { return b.n }

// Reset clears every bit.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Set sets bit i without synchronization.
func (b *Bitmap) Set(i int64) {
	b.words[i>>6] |= 1 << uint(i&63)
}

// SetAtomic sets bit i with a compare-and-swap loop, safe for concurrent
// writers. It reports whether this call changed the bit (i.e. the caller won
// the race), which the frontier-building loops use to claim vertices.
func (b *Bitmap) SetAtomic(i int64) bool {
	//gapvet:ignore atomic-plain-mix -- address taken once for the CAS loop; every access through w below is atomic
	w := &b.words[i>>6]
	mask := uint64(1) << uint(i&63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// Get reports bit i without synchronization. Callers racing with SetAtomic
// writers must use GetAtomic; the kernels call Get only on bitmaps that are
// read-only for the duration of the phase (pull-phase frontiers).
func (b *Bitmap) Get(i int64) bool {
	//gapvet:ignore atomic-plain-mix -- plain read path is documented phase-separated; racing readers use GetAtomic
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// GetAtomic reports bit i using an atomic load, for readers racing with
// SetAtomic writers.
func (b *Bitmap) GetAtomic(i int64) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(1<<uint(i&63)) != 0
}

// Words exposes the backing word array, least-significant bit first, for
// word-granular scans (popcount prefix sums, trailing-zero extraction in the
// frontier conversions). Callers must treat it as read-only.
func (b *Bitmap) Words() []uint64 { return b.words }

// Count returns the number of set bits.
func (b *Bitmap) Count() int64 {
	var total int64
	for _, w := range b.words {
		total += int64(popcount(w))
	}
	return total
}

// Swap exchanges the contents of b and o, which must have identical capacity.
// Direction-optimizing BFS ping-pongs two bitmaps this way.
func (b *Bitmap) Swap(o *Bitmap) {
	b.words, o.words = o.words, b.words
	b.n, o.n = o.n, b.n
}

func popcount(x uint64) int {
	// Hacker's Delight bit-twiddling population count; kept branch-free to
	// mirror the SIMD-ish inner loops the hand-tuned frameworks rely on.
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

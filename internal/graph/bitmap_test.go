package graph_test

import (
	"sync"
	"testing"
	"testing/quick"

	"gapbench/internal/graph"
)

func TestBitmapBasics(t *testing.T) {
	b := graph.NewBitmap(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int64{0, 63, 64, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("Count after Reset = %d", b.Count())
	}
}

func TestBitmapSetAtomicClaims(t *testing.T) {
	b := graph.NewBitmap(1)
	if !b.SetAtomic(0) {
		t.Fatal("first SetAtomic returned false")
	}
	if b.SetAtomic(0) {
		t.Fatal("second SetAtomic returned true")
	}
}

func TestBitmapConcurrentClaims(t *testing.T) {
	const n = 1 << 12
	const workers = 8
	b := graph.NewBitmap(n)
	wins := make([]int64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < n; i++ {
				if b.SetAtomic(i) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, c := range wins {
		total += c
	}
	if total != n {
		t.Fatalf("total claims = %d, want %d (each bit claimed exactly once)", total, n)
	}
	if b.Count() != n {
		t.Fatalf("Count = %d, want %d", b.Count(), n)
	}
}

func TestBitmapSwap(t *testing.T) {
	a := graph.NewBitmap(64)
	b := graph.NewBitmap(64)
	a.Set(3)
	b.Set(7)
	a.Swap(b)
	if !a.Get(7) || !b.Get(3) || a.Get(3) || b.Get(7) {
		t.Fatal("Swap did not exchange contents")
	}
}

// Property: Count equals the number of distinct indices set.
func TestBitmapCountProperty(t *testing.T) {
	f := func(indices []uint16) bool {
		b := graph.NewBitmap(1 << 16)
		distinct := map[uint16]bool{}
		for _, i := range indices {
			b.Set(int64(i))
			distinct[i] = true
		}
		return b.Count() == int64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSlidingQueue(t *testing.T) {
	q := graph.NewSlidingQueue(10)
	if !q.Empty() {
		t.Fatal("fresh queue not empty")
	}
	q.PushBack(1)
	q.PushBack(2)
	q.SlideWindow()
	if q.Empty() || q.Size() != 2 {
		t.Fatalf("window size = %d, want 2", q.Size())
	}
	if f := q.Frontier(); f[0] != 1 || f[1] != 2 {
		t.Fatalf("frontier = %v", f)
	}
	// Append during current window becomes next window.
	q.PushBack(3)
	q.SlideWindow()
	if q.Size() != 1 || q.Frontier()[0] != 3 {
		t.Fatalf("second window = %v", q.Frontier())
	}
	q.SlideWindow()
	if !q.Empty() {
		t.Fatal("queue should be empty after final slide")
	}
	q.Reset()
	if !q.Empty() {
		t.Fatal("queue not empty after Reset")
	}
}

func TestSlidingQueueReserveWrite(t *testing.T) {
	q := graph.NewSlidingQueue(100)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := q.Reserve(25)
			for i := int64(0); i < 25; i++ {
				q.Write(base+i, graph.NodeID(w))
			}
		}(w)
	}
	wg.Wait()
	q.SlideWindow()
	if q.Size() != 100 {
		t.Fatalf("size = %d, want 100", q.Size())
	}
	counts := map[graph.NodeID]int{}
	for _, v := range q.Frontier() {
		counts[v]++
	}
	for w := graph.NodeID(0); w < 4; w++ {
		if counts[w] != 25 {
			t.Fatalf("worker %d wrote %d entries, want 25", w, counts[w])
		}
	}
}

package graph

import (
	"fmt"
	"math"

	"gapbench/internal/par"
)

// Edge is one directed edge (or one endpoint pair of an undirected edge) in a
// builder input list.
type Edge struct {
	U, V NodeID
}

// WEdge is an Edge with a weight.
type WEdge struct {
	U, V NodeID
	W    Weight
}

// BuildOptions configures CSR construction.
type BuildOptions struct {
	// NumNodes fixes the vertex count. If zero, it is inferred as
	// max(endpoint)+1.
	NumNodes int32
	// Directed selects a directed graph. Undirected graphs store each edge in
	// both directions and alias the in-CSR to the out-CSR.
	Directed bool
	// KeepSelfLoops retains u->u edges. The GAP builder drops them by default
	// (they are meaningless for every benchmark kernel and break TC).
	KeepSelfLoops bool
	// Workers bounds construction parallelism; <1 means the default.
	Workers int
	// Layout selects the vertex layout baked into the built graph.
	// LayoutPlain (the default) keeps input ids; LayoutDegree renumbers by
	// decreasing out-degree after construction, and is recorded in the
	// format-v2 header so loaded graphs know how they were laid out.
	Layout Layout
}

// Build constructs a CSR graph from an unweighted edge list. Adjacency lists
// come out sorted and deduplicated. It returns an error if any endpoint is
// negative or (when NumNodes is set) out of range.
func Build(edges []Edge, opt BuildOptions) (*Graph, error) {
	we := make([]WEdge, len(edges))
	par.ForBlocked(len(edges), opt.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			we[i] = WEdge{U: edges[i].U, V: edges[i].V}
		}
	})
	return build(we, opt, false)
}

// BuildWeighted constructs a weighted CSR graph from a weighted edge list.
// When duplicate edges (same u,v) appear, the one with the smallest weight is
// kept — the only convention under which deduplication cannot change any
// shortest-path answer.
//
// Construction is the GAP reference's parallel two-pass counting sort, not a
// comparison sort: a sharded per-source histogram, an exclusive scan into the
// CSR index, a stable per-worker-offset scatter, then per-vertex segment
// sorts with in-place min-weight deduplication (see par.ShardedHistogram and
// DESIGN.md "The ingest pipeline"). The directed in-CSR is a second
// histogram/scan/scatter over the deduplicated out-CSR — transposing a
// row-sorted CSR with a stable scatter yields row-sorted output directly.
func BuildWeighted(edges []WEdge, opt BuildOptions) (*Graph, error) {
	return build(edges, opt, true)
}

// build is the shared construction core. The counting-sort passes run over
// scratch arrays (the scatter output is dead weight once rows are
// deduplicated), and only the final compaction writes into the graph's
// storage arena — so the arena is exactly final-sized and holds no
// construction garbage.
func build(edges []WEdge, opt BuildOptions, weighted bool) (*Graph, error) {
	n, err := checkEdges(edges, opt)
	if err != nil {
		return nil, err
	}

	// Materialize the full directed edge multiset: as-given for directed
	// graphs, both directions for undirected ones.
	work := expandEdges(edges, opt)

	index, neigh, weight := scatterCSR(n, work, weighted, opt.Workers)
	kept, newIndex := dedupRows(n, index, neigh, weight, opt.Workers)
	g := assembleCSRGraph(n, opt.Directed, weighted, LayoutPlain, index, newIndex, kept, neigh, weight, opt.Workers)
	if opt.Layout == LayoutDegree {
		rg, _ := DegreeRelabel(g)
		if err := g.Close(); err != nil {
			return nil, err
		}
		return rg, nil
	}
	return g, nil
}

// checkEdges validates endpoints and resolves the vertex count. The checks
// run as parallel max-reductions (largest endpoint, largest negated
// endpoint); only when a violation is detected does a serial pass rerun to
// report the first offending edge in input order, exactly as the historical
// serial loop did.
func checkEdges(edges []WEdge, opt BuildOptions) (int32, error) {
	m := len(edges)
	n := opt.NumNodes
	if m == 0 {
		if n < 0 {
			return 0, fmt.Errorf("graph: invalid node count %d", n)
		}
		return n, nil
	}
	maxEnd := par.ReduceMaxInt64(m, opt.Workers, func(lo, hi int) int64 {
		mx := int64(math.MinInt64)
		for i := lo; i < hi; i++ {
			if v := int64(edges[i].U); v > mx {
				mx = v
			}
			if v := int64(edges[i].V); v > mx {
				mx = v
			}
		}
		return mx
	})
	minEnd := -par.ReduceMaxInt64(m, opt.Workers, func(lo, hi int) int64 {
		mx := int64(math.MinInt64)
		for i := lo; i < hi; i++ {
			if v := -int64(edges[i].U); v > mx {
				mx = v
			}
			if v := -int64(edges[i].V); v > mx {
				mx = v
			}
		}
		return mx
	})
	if minEnd < 0 || (opt.NumNodes > 0 && maxEnd >= int64(opt.NumNodes)) {
		// Rare path: rescan serially for the first offender in input order.
		for _, e := range edges {
			if e.U < 0 || e.V < 0 {
				return 0, fmt.Errorf("graph: negative node id in edge (%d,%d)", e.U, e.V)
			}
			if opt.NumNodes > 0 && (e.U >= opt.NumNodes || e.V >= opt.NumNodes) {
				return 0, fmt.Errorf("graph: edge (%d,%d) out of range for %d nodes", e.U, e.V, opt.NumNodes)
			}
		}
	}
	if opt.NumNodes == 0 {
		// Inference via the max-reduce; int32 wraparound on max(endpoint)+1
		// surfaces below as the historical invalid-count error.
		n = int32(maxEnd) + 1
	}
	if n < 0 {
		return 0, fmt.Errorf("graph: invalid node count %d", n)
	}
	return n, nil
}

// expandEdges materializes the directed edge multiset the CSR is built from:
// self-loops dropped (unless kept), and for undirected graphs each edge
// emitted in both directions. The output order matches the historical serial
// append — a parallel filter over static per-worker ranges writes each
// worker's survivors contiguously at its scanned offset, so global input
// order is preserved and downstream stability arguments still hold.
func expandEdges(edges []WEdge, opt BuildOptions) []WEdge {
	slots := opt.Workers
	if slots < 1 {
		slots = par.DefaultWorkers()
	}
	// counts is indexed by ForWorker slot id; both passes use the identical
	// (n, workers) partition, so per-slot ranges line up.
	counts := make([]int64, slots)
	par.ForWorker(len(edges), opt.Workers, func(w, lo, hi int) {
		var c int64
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U == e.V {
				if opt.KeepSelfLoops {
					c++
				}
				continue
			}
			c++
			if !opt.Directed {
				c++
			}
		}
		counts[w] = c
	})
	var total int64
	for w, c := range counts {
		counts[w] = total
		total += c
	}
	work := make([]WEdge, total)
	par.ForWorker(len(edges), opt.Workers, func(w, lo, hi int) {
		pos := counts[w]
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U == e.V {
				if opt.KeepSelfLoops {
					work[pos] = e
					pos++
				}
				continue
			}
			work[pos] = e
			pos++
			if !opt.Directed {
				work[pos] = WEdge{U: e.V, V: e.U, W: e.W}
				pos++
			}
		}
	})
	return work
}

// scatterCSR packs a directed edge multiset into scratch index/neighbor/
// weight arrays via the counting-sort pipeline: per-source histogram,
// exclusive scan, stable scatter. No comparison sort ever sees the full
// edge list; rows are sorted and deduplicated afterwards by dedupRows.
func scatterCSR(n int32, edges []WEdge, weighted bool, workers int) ([]int64, []NodeID, []Weight) {
	h := par.ShardedHistogram(len(edges), int(n), workers, func(i int) int { return int(edges[i].U) })
	index := h.Index()
	neigh := make([]NodeID, len(edges))
	var weight []Weight
	if weighted {
		weight = make([]Weight, len(edges))
	}
	h.Scatter(func(i int, pos int64) {
		neigh[pos] = edges[i].V
		if weight != nil {
			weight[pos] = edges[i].W
		}
	})
	return index, neigh, weight
}

// dedupRows sorts every adjacency segment by (neighbor, weight) and
// deduplicates in place keeping each neighbor's first (minimum-weight)
// entry. It returns the per-row survivor counts and their exclusive scan —
// the compact CSR index. Rows are processed under a dynamic schedule because
// segment lengths are the degree distribution itself: power-law inputs put
// hub rows many orders of magnitude above the mean.
func dedupRows(n int32, index []int64, neigh []NodeID, weight []Weight, workers int) (kept, newIndex []int64) {
	kept = make([]int64, n)
	par.ForDynamic(int(n), 128, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			s, e := index[u], index[u+1]
			vs := neigh[s:e]
			var ws []Weight
			if weight != nil {
				ws = weight[s:e]
			}
			sortRow(vs, ws)
			// First entry of each neighbor run carries the minimum weight.
			k := 0
			for i := 0; i < len(vs); i++ {
				if i > 0 && vs[i] == vs[k-1] {
					continue
				}
				vs[k] = vs[i]
				if ws != nil {
					ws[k] = ws[i]
				}
				k++
			}
			kept[u] = int64(k)
		}
	})
	newIndex = par.PrefixSum(kept, workers)
	return kept, newIndex
}

// assembleCSRGraph allocates the storage arena for the final graph shape and
// fills it: the deduplicated rows (described by the scratch index plus
// per-row survivor counts) compact into the out-sections, and for directed
// graphs the transpose scatters straight into the in-sections. This is the
// single point where builder output becomes graph-owned memory.
func assembleCSRGraph(n int32, directed, weighted bool, layout Layout, index, newIndex, kept []int64, neigh []NodeID, weight []Weight, workers int) *Graph {
	mOut := newIndex[n]
	mIn := int64(0)
	if directed {
		mIn = mOut
	}
	a := newHeapArena(layoutFor(n, mOut, mIn, directed, weighted))
	outIndex := a.int64s(secOutIndex)
	copy(outIndex, newIndex)
	outNeigh := a.int32s(secOutNeigh)
	outWeight := a.int32s(secOutWeight)
	par.ForDynamic(int(n), 128, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			s, d, c := index[u], newIndex[u], kept[u]
			copy(outNeigh[d:d+c], neigh[s:s+c])
			if outWeight != nil {
				copy(outWeight[d:d+c], weight[s:s+c])
			}
		}
	})
	if directed {
		transposeInto(a, n, outIndex, outNeigh, outWeight, workers)
	}
	return graphFromArena(a, layout)
}

// expandRowIDs inverts a CSR index: rows[i] is the row owning position i.
// The scatter passes of transposition and symmetrization need the source
// endpoint of every stored edge without a per-item search.
func expandRowIDs(n int32, index []int64, workers int) []NodeID {
	rows := make([]NodeID, index[n])
	par.ForDynamic(int(n), 256, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			for i := index[u]; i < index[u+1]; i++ {
				rows[i] = NodeID(u)
			}
		}
	})
	return rows
}

// transposeInto builds the transpose of a deduplicated, row-sorted CSR
// directly into an arena's in-sections with one histogram/scan/scatter
// round. Stability makes the segment sort unnecessary: items are walked in
// row-major order, so within each output row the (source) values arrive in
// increasing order, and dedup is moot because the input rows were already
// duplicate-free.
func transposeInto(a *Arena, n int32, index []int64, neigh []NodeID, weight []Weight, workers int) {
	rows := expandRowIDs(n, index, workers)
	h := par.ShardedHistogram(len(neigh), int(n), workers, func(i int) int { return int(neigh[i]) })
	copy(a.int64s(secInIndex), h.Index())
	tNeigh := a.int32s(secInNeigh)
	tWeight := a.int32s(secInWeight)
	h.Scatter(func(i int, pos int64) {
		tNeigh[pos] = rows[i]
		if tWeight != nil {
			tWeight[pos] = weight[i]
		}
	})
}

// Undirected returns an undirected view of g: g itself when already
// undirected, otherwise a new symmetrized graph (u–v present when either
// direction was). Triangle counting and connected components consume this,
// mirroring the GAP treatment of directed inputs.
//
// Symmetrization is direct CSR→CSR: a doubled histogram (each stored edge
// u→v counts toward row u and row v), scan, stable scatter of both
// orientations, then the usual segment sort + min-weight dedup — no
// intermediate edge-list materialization. Self-loops are dropped, matching
// the historical path through the default builder options.
func (g *Graph) Undirected() *Graph {
	if !g.directed {
		return g
	}
	n := g.n
	hasW := g.Weighted()
	src := expandRowIDs(n, g.outIndex, 0)
	dst := g.outNeigh
	ws := g.outWeight
	m := len(dst)
	loops := par.ReduceInt64(m, 0, func(lo, hi int) int64 {
		var c int64
		for i := lo; i < hi; i++ {
			if src[i] == dst[i] {
				c++
			}
		}
		return c
	})
	if loops > 0 {
		// Rare: only graphs built with KeepSelfLoops reach here. Filter the
		// loops out up front so the doubled histogram needs no skip logic.
		fs := make([]NodeID, 0, m-int(loops))
		fd := make([]NodeID, 0, m-int(loops))
		var fw []Weight
		if hasW {
			fw = make([]Weight, 0, m-int(loops))
		}
		for i := 0; i < m; i++ {
			if src[i] == dst[i] {
				continue
			}
			fs = append(fs, src[i])
			fd = append(fd, dst[i])
			if hasW {
				fw = append(fw, ws[i])
			}
		}
		src, dst, ws, m = fs, fd, fw, len(fs)
	}

	// 2m logical items: item i < m is the stored orientation src[i]→dst[i],
	// item m+i the reverse. Stability keeps per-row entries in a
	// deterministic order before the segment sort canonicalizes them.
	h := par.ShardedHistogram(2*m, int(n), 0, func(i int) int {
		if i < m {
			return int(src[i])
		}
		return int(dst[i-m])
	})
	uIndex := h.Index()
	uNeigh := make([]NodeID, 2*m)
	var uWeight []Weight
	if hasW {
		uWeight = make([]Weight, 2*m)
	}
	h.Scatter(func(i int, pos int64) {
		if i < m {
			uNeigh[pos] = dst[i]
			if hasW {
				uWeight[pos] = ws[i]
			}
		} else {
			uNeigh[pos] = src[i-m]
			if hasW {
				uWeight[pos] = ws[i-m]
			}
		}
	})
	kept, newIndex := dedupRows(n, uIndex, uNeigh, uWeight, 0)
	return assembleCSRGraph(n, false, hasW, g.layout, uIndex, newIndex, kept, uNeigh, uWeight, 0)
}

// FromCSR adopts pre-built CSR arrays after validating their structure:
// index arrays must be monotone and consistent with the neighbor arrays,
// and every neighbor id must be in range. Relabeling and deserialization
// both funnel through here, so corrupt or hostile inputs are rejected
// instead of panicking later inside a kernel.
func FromCSR(n int32, directed bool, outIndex []int64, outNeigh []NodeID, inIndex []int64, inNeigh []NodeID, outWeight, inWeight []Weight) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if err := validateCSR(n, "out", outIndex, outNeigh, outWeight); err != nil {
		return nil, err
	}
	g := &Graph{
		n: n, directed: directed,
		outIndex: outIndex, outNeigh: outNeigh,
		outWeight: outWeight,
	}
	if directed {
		if err := validateCSR(n, "in", inIndex, inNeigh, inWeight); err != nil {
			return nil, err
		}
		g.inIndex, g.inNeigh, g.inWeight = inIndex, inNeigh, inWeight
	} else {
		g.inIndex, g.inNeigh, g.inWeight = outIndex, outNeigh, outWeight
	}
	// Copy the adopted slices into an arena so every validated graph has
	// uniform storage ownership (Close semantics, epoch identity).
	g.materializeArena()
	return g, nil
}

// validateCSR checks one CSR side for structural consistency.
func validateCSR(n int32, side string, index []int64, neigh []NodeID, weight []Weight) error {
	if int64(len(index)) != int64(n)+1 {
		return fmt.Errorf("graph: %s index length %d != n+1 (%d)", side, len(index), int64(n)+1)
	}
	if index[0] != 0 {
		return fmt.Errorf("graph: %s index[0] = %d, want 0", side, index[0])
	}
	if index[n] != int64(len(neigh)) {
		return fmt.Errorf("graph: %s index end %d != neighbor count %d", side, index[n], len(neigh))
	}
	for i := int32(0); i < n; i++ {
		if index[i+1] < index[i] {
			return fmt.Errorf("graph: %s index not monotone at row %d", side, i)
		}
	}
	for _, v := range neigh {
		if v < 0 || v >= n {
			return fmt.Errorf("graph: %s neighbor %d out of range [0,%d)", side, v, n)
		}
	}
	if weight != nil && len(weight) != len(neigh) {
		return fmt.Errorf("graph: %s weight length %d != neighbor count %d", side, len(weight), len(neigh))
	}
	return nil
}

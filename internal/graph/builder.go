package graph

import (
	"fmt"
	"sort"

	"gapbench/internal/par"
)

// Edge is one directed edge (or one endpoint pair of an undirected edge) in a
// builder input list.
type Edge struct {
	U, V NodeID
}

// WEdge is an Edge with a weight.
type WEdge struct {
	U, V NodeID
	W    Weight
}

// BuildOptions configures CSR construction.
type BuildOptions struct {
	// NumNodes fixes the vertex count. If zero, it is inferred as
	// max(endpoint)+1.
	NumNodes int32
	// Directed selects a directed graph. Undirected graphs store each edge in
	// both directions and alias the in-CSR to the out-CSR.
	Directed bool
	// KeepSelfLoops retains u->u edges. The GAP builder drops them by default
	// (they are meaningless for every benchmark kernel and break TC).
	KeepSelfLoops bool
	// Workers bounds construction parallelism; <1 means the default.
	Workers int
}

// Build constructs a CSR graph from an unweighted edge list. Adjacency lists
// come out sorted and deduplicated. It returns an error if any endpoint is
// negative or (when NumNodes is set) out of range.
func Build(edges []Edge, opt BuildOptions) (*Graph, error) {
	we := make([]WEdge, len(edges))
	for i, e := range edges {
		we[i] = WEdge{U: e.U, V: e.V}
	}
	g, err := BuildWeighted(we, opt)
	if err != nil {
		return nil, err
	}
	g.outWeight = nil
	g.inWeight = nil
	return g, nil
}

// BuildWeighted constructs a weighted CSR graph from a weighted edge list.
// When duplicate edges (same u,v) appear, the one with the smallest weight is
// kept — the only convention under which deduplication cannot change any
// shortest-path answer.
func BuildWeighted(edges []WEdge, opt BuildOptions) (*Graph, error) {
	n := opt.NumNodes
	for _, e := range edges {
		if e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("graph: negative node id in edge (%d,%d)", e.U, e.V)
		}
		if opt.NumNodes > 0 && (e.U >= opt.NumNodes || e.V >= opt.NumNodes) {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for %d nodes", e.U, e.V, opt.NumNodes)
		}
		if opt.NumNodes == 0 {
			if e.U >= n {
				n = e.U + 1
			}
			if e.V >= n {
				n = e.V + 1
			}
		}
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: invalid node count %d", n)
	}

	// Materialize the full directed edge multiset: as-given for directed
	// graphs, both directions for undirected ones.
	work := make([]WEdge, 0, len(edges)*2)
	for _, e := range edges {
		if e.U == e.V && !opt.KeepSelfLoops {
			continue
		}
		work = append(work, e)
		if !opt.Directed && e.U != e.V {
			work = append(work, WEdge{U: e.V, V: e.U, W: e.W})
		}
	}

	outIndex, outNeigh, outWeight := buildCSR(n, work, opt.Workers)
	g := &Graph{
		n:         n,
		directed:  opt.Directed,
		outIndex:  outIndex,
		outNeigh:  outNeigh,
		outWeight: outWeight,
	}
	if opt.Directed {
		// Transpose for the in-CSR.
		tr := make([]WEdge, len(work))
		for i, e := range work {
			tr[i] = WEdge{U: e.V, V: e.U, W: e.W}
		}
		g.inIndex, g.inNeigh, g.inWeight = buildCSR(n, tr, opt.Workers)
	} else {
		g.inIndex, g.inNeigh, g.inWeight = outIndex, outNeigh, outWeight
	}
	return g, nil
}

// buildCSR sorts the directed edge list by (U,V), deduplicates (keeping the
// minimum weight), and packs it into index/neighbor/weight arrays.
func buildCSR(n int32, edges []WEdge, workers int) ([]int64, []NodeID, []Weight) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		if edges[i].V != edges[j].V {
			return edges[i].V < edges[j].V
		}
		return edges[i].W < edges[j].W
	})
	// Deduplicate in place; after the sort the min-weight duplicate is first.
	kept := edges[:0]
	for i, e := range edges {
		if i > 0 && e.U == edges[i-1].U && e.V == edges[i-1].V {
			continue
		}
		kept = append(kept, e)
	}

	index := make([]int64, n+1)
	for _, e := range kept {
		index[e.U+1]++
	}
	for i := int32(0); i < n; i++ {
		index[i+1] += index[i]
	}
	neigh := make([]NodeID, len(kept))
	weight := make([]Weight, len(kept))
	par.ForBlocked(len(kept), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			neigh[i] = kept[i].V
			weight[i] = kept[i].W
		}
	})
	return index, neigh, weight
}

// Undirected returns an undirected view of g: g itself when already
// undirected, otherwise a new symmetrized graph (u–v present when either
// direction was). Triangle counting and connected components consume this,
// mirroring the GAP treatment of directed inputs.
func (g *Graph) Undirected() *Graph {
	if !g.directed {
		return g
	}
	edges := make([]WEdge, 0, g.NumEdges())
	hasW := g.Weighted()
	for u := int32(0); u < g.n; u++ {
		neigh := g.OutNeighbors(u)
		var ws []Weight
		if hasW {
			ws = g.OutWeights(u)
		}
		for i, v := range neigh {
			w := Weight(0)
			if hasW {
				w = ws[i]
			}
			edges = append(edges, WEdge{U: u, V: v, W: w})
		}
	}
	ug, err := BuildWeighted(edges, BuildOptions{NumNodes: g.n, Directed: false})
	if err != nil {
		// Inputs came from a valid graph; failure here is a program bug.
		panic("graph: symmetrize: " + err.Error())
	}
	if !hasW {
		ug.outWeight, ug.inWeight = nil, nil
	}
	return ug
}

// FromCSR adopts pre-built CSR arrays after validating their structure:
// index arrays must be monotone and consistent with the neighbor arrays,
// and every neighbor id must be in range. Relabeling and deserialization
// both funnel through here, so corrupt or hostile inputs are rejected
// instead of panicking later inside a kernel.
func FromCSR(n int32, directed bool, outIndex []int64, outNeigh []NodeID, inIndex []int64, inNeigh []NodeID, outWeight, inWeight []Weight) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if err := validateCSR(n, "out", outIndex, outNeigh, outWeight); err != nil {
		return nil, err
	}
	g := &Graph{
		n: n, directed: directed,
		outIndex: outIndex, outNeigh: outNeigh,
		outWeight: outWeight,
	}
	if directed {
		if err := validateCSR(n, "in", inIndex, inNeigh, inWeight); err != nil {
			return nil, err
		}
		g.inIndex, g.inNeigh, g.inWeight = inIndex, inNeigh, inWeight
	} else {
		g.inIndex, g.inNeigh, g.inWeight = outIndex, outNeigh, outWeight
	}
	return g, nil
}

// validateCSR checks one CSR side for structural consistency.
func validateCSR(n int32, side string, index []int64, neigh []NodeID, weight []Weight) error {
	if int64(len(index)) != int64(n)+1 {
		return fmt.Errorf("graph: %s index length %d != n+1 (%d)", side, len(index), int64(n)+1)
	}
	if index[0] != 0 {
		return fmt.Errorf("graph: %s index[0] = %d, want 0", side, index[0])
	}
	if index[n] != int64(len(neigh)) {
		return fmt.Errorf("graph: %s index end %d != neighbor count %d", side, index[n], len(neigh))
	}
	for i := int32(0); i < n; i++ {
		if index[i+1] < index[i] {
			return fmt.Errorf("graph: %s index not monotone at row %d", side, i)
		}
	}
	for _, v := range neigh {
		if v < 0 || v >= n {
			return fmt.Errorf("graph: %s neighbor %d out of range [0,%d)", side, v, n)
		}
	}
	if weight != nil && len(weight) != len(neigh) {
		return fmt.Errorf("graph: %s weight length %d != neighbor count %d", side, len(weight), len(neigh))
	}
	return nil
}

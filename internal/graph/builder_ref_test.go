package graph_test

// builder_ref_test.go: differential tests for the counting-sort ingest
// pipeline. The pre-pipeline builder — comparison sort over the whole edge
// list by (U,V,W), serial global dedup, serial histogram — is retained here
// verbatim (serialized) as the executable specification. The new pipeline
// must produce *byte-identical* CSR arrays on every input: same index, same
// neighbor order, same surviving weight for every duplicate group. Anything
// weaker would silently change benchmark graphs between releases.

import (
	"math/rand"
	"slices"
	"sort"
	"testing"

	"gapbench/internal/graph"
)

// refGraph is the reference builder's output: plain CSR arrays.
type refGraph struct {
	n                   int32
	outIndex, inIndex   []int64
	outNeigh, inNeigh   []graph.NodeID
	outWeight, inWeight []graph.Weight
}

// refBuildCSR is the old buildCSR, kept serial: sort the directed edge list
// by (U,V,W), keep the first of each (U,V) run (the minimum weight), pack.
func refBuildCSR(n int32, edges []graph.WEdge) ([]int64, []graph.NodeID, []graph.Weight) {
	edges = append([]graph.WEdge(nil), edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		if edges[i].V != edges[j].V {
			return edges[i].V < edges[j].V
		}
		return edges[i].W < edges[j].W
	})
	kept := edges[:0]
	for i, e := range edges {
		if i > 0 && e.U == edges[i-1].U && e.V == edges[i-1].V {
			continue
		}
		kept = append(kept, e)
	}
	index := make([]int64, n+1)
	for _, e := range kept {
		index[e.U+1]++
	}
	for i := int32(0); i < n; i++ {
		index[i+1] += index[i]
	}
	neigh := make([]graph.NodeID, len(kept))
	weight := make([]graph.Weight, len(kept))
	for i, e := range kept {
		neigh[i] = e.V
		weight[i] = e.W
	}
	return index, neigh, weight
}

// refBuildWeighted is the old BuildWeighted: validation and NumNodes
// inference in input order, self-loop dropping, undirected doubling, and a
// transposed second refBuildCSR pass for the directed in-CSR.
func refBuildWeighted(t *testing.T, edges []graph.WEdge, opt graph.BuildOptions) (*refGraph, error) {
	t.Helper()
	n := opt.NumNodes
	for _, e := range edges {
		if e.U < 0 || e.V < 0 {
			return nil, errNegative
		}
		if opt.NumNodes > 0 && (e.U >= opt.NumNodes || e.V >= opt.NumNodes) {
			return nil, errOutOfRange
		}
		if opt.NumNodes == 0 {
			if e.U >= n {
				n = e.U + 1
			}
			if e.V >= n {
				n = e.V + 1
			}
		}
	}
	if n < 0 {
		return nil, errBadCount
	}
	work := make([]graph.WEdge, 0, len(edges)*2)
	for _, e := range edges {
		if e.U == e.V && !opt.KeepSelfLoops {
			continue
		}
		work = append(work, e)
		if !opt.Directed && e.U != e.V {
			work = append(work, graph.WEdge{U: e.V, V: e.U, W: e.W})
		}
	}
	rg := &refGraph{n: n}
	rg.outIndex, rg.outNeigh, rg.outWeight = refBuildCSR(n, work)
	if opt.Directed {
		tr := make([]graph.WEdge, len(work))
		for i, e := range work {
			tr[i] = graph.WEdge{U: e.V, V: e.U, W: e.W}
		}
		rg.inIndex, rg.inNeigh, rg.inWeight = refBuildCSR(n, tr)
	} else {
		rg.inIndex, rg.inNeigh, rg.inWeight = rg.outIndex, rg.outNeigh, rg.outWeight
	}
	return rg, nil
}

// Sentinel classes for reference-side validation failures; the differential
// assertion only requires err/no-err agreement plus the real builder's
// message content, which TestBuildRejectsBadInput already pins.
var (
	errNegative   = errClass("negative node id")
	errOutOfRange = errClass("edge out of range")
	errBadCount   = errClass("invalid node count")
)

type errClass string

func (e errClass) Error() string { return string(e) }

// assertCSREqual fails unless the built graph's arrays are identical to the
// reference's. weighted selects whether weight arrays must match or both be
// absent.
func assertCSREqual(t *testing.T, label string, g *graph.Graph, rg *refGraph, weighted bool) {
	t.Helper()
	if g.NumNodes() != rg.n {
		t.Fatalf("%s: NumNodes = %d, reference %d", label, g.NumNodes(), rg.n)
	}
	outIdx, outNeigh := g.RawOut()
	inIdx, inNeigh := g.RawIn()
	if !slices.Equal(outIdx, rg.outIndex) {
		t.Fatalf("%s: out index mismatch\n got %v\nwant %v", label, outIdx, rg.outIndex)
	}
	if !slices.Equal(outNeigh, rg.outNeigh) {
		t.Fatalf("%s: out neighbors mismatch\n got %v\nwant %v", label, outNeigh, rg.outNeigh)
	}
	if !slices.Equal(inIdx, rg.inIndex) {
		t.Fatalf("%s: in index mismatch\n got %v\nwant %v", label, inIdx, rg.inIndex)
	}
	if !slices.Equal(inNeigh, rg.inNeigh) {
		t.Fatalf("%s: in neighbors mismatch\n got %v\nwant %v", label, inNeigh, rg.inNeigh)
	}
	if weighted {
		if !slices.Equal(g.RawOutWeights(), rg.outWeight) {
			t.Fatalf("%s: out weights mismatch\n got %v\nwant %v", label, g.RawOutWeights(), rg.outWeight)
		}
		if !slices.Equal(g.RawInWeights(), rg.inWeight) {
			t.Fatalf("%s: in weights mismatch\n got %v\nwant %v", label, g.RawInWeights(), rg.inWeight)
		}
	} else if g.RawOutWeights() != nil || g.RawInWeights() != nil {
		t.Fatalf("%s: unweighted build retained weights", label)
	}
}

// randomEdges draws m edges over n vertices with deliberately nasty
// structure: a high duplicate rate (small vertex range), frequent self-loops,
// and weights from a tiny range so duplicate groups tie on weight.
func randomEdges(rng *rand.Rand, n int32, m int) []graph.WEdge {
	edges := make([]graph.WEdge, m)
	for i := range edges {
		u := graph.NodeID(rng.Int31n(n))
		v := graph.NodeID(rng.Int31n(n))
		if rng.Intn(8) == 0 {
			v = u // forced self-loop
		}
		edges[i] = graph.WEdge{U: u, V: v, W: graph.Weight(1 + rng.Int31n(4))}
	}
	return edges
}

func TestBuildMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	type shape struct {
		name string
		n    int32
		m    int
	}
	shapes := []shape{
		{"empty", 1, 0},
		{"singleton", 1, 4}, // only self-loops possible
		{"pair", 2, 12},     // dense duplicates
		{"small", 7, 40},
		{"medium", 64, 700},
		{"large", 300, 5000},
	}
	for _, sh := range shapes {
		for _, directed := range []bool{false, true} {
			for _, keep := range []bool{false, true} {
				for _, fixN := range []bool{false, true} {
					edges := randomEdges(rng, sh.n, sh.m)
					opt := graph.BuildOptions{Directed: directed, KeepSelfLoops: keep}
					if fixN {
						opt.NumNodes = sh.n
					}
					label := sh.name
					if directed {
						label += "/directed"
					}
					if keep {
						label += "/loops"
					}
					if fixN {
						label += "/fixedN"
					}
					rg, refErr := refBuildWeighted(t, edges, opt)
					g, err := graph.BuildWeighted(edges, opt)
					if (err != nil) != (refErr != nil) {
						t.Fatalf("%s: err = %v, reference err = %v", label, err, refErr)
					}
					if err != nil {
						continue
					}
					assertCSREqual(t, label+"/weighted", g, rg, true)

					// Unweighted Build over the same endpoints must match the
					// reference with all weights forced to zero.
					ue := make([]graph.Edge, len(edges))
					ze := make([]graph.WEdge, len(edges))
					for i, e := range edges {
						ue[i] = graph.Edge{U: e.U, V: e.V}
						ze[i] = graph.WEdge{U: e.U, V: e.V}
					}
					urg, _ := refBuildWeighted(t, ze, opt)
					ug, err := graph.Build(ue, opt)
					if err != nil {
						t.Fatalf("%s: Build: %v", label, err)
					}
					assertCSREqual(t, label+"/unweighted", ug, urg, false)
				}
			}
		}
	}
}

func TestBuildErrorAgreementWithReference(t *testing.T) {
	cases := []struct {
		name  string
		edges []graph.WEdge
		opt   graph.BuildOptions
	}{
		{"negative-u", []graph.WEdge{{U: -1, V: 0}}, graph.BuildOptions{}},
		{"negative-v", []graph.WEdge{{U: 0, V: -3}}, graph.BuildOptions{Directed: true}},
		{"out-of-range", []graph.WEdge{{U: 0, V: 5}}, graph.BuildOptions{NumNodes: 3}},
		{"overflow-wrap", []graph.WEdge{{U: 0, V: 1<<31 - 1}}, graph.BuildOptions{}},
	}
	for _, c := range cases {
		_, refErr := refBuildWeighted(t, c.edges, c.opt)
		_, err := graph.BuildWeighted(c.edges, c.opt)
		if (err != nil) != (refErr != nil) {
			t.Errorf("%s: err = %v, reference err = %v", c.name, err, refErr)
		}
	}
}

// TestUndirectedMatchesReference pins the direct CSR symmetrization against
// the old path: materialize every stored arc of the directed graph as an
// edge list and rebuild undirected.
func TestUndirectedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0xd1ff))
	for _, weighted := range []bool{false, true} {
		for trial := 0; trial < 6; trial++ {
			n := int32(2 + rng.Int31n(120))
			edges := randomEdges(rng, n, 10*int(n))
			if !weighted {
				for i := range edges {
					edges[i].W = 0
				}
			}
			g, err := graph.BuildWeighted(edges, graph.BuildOptions{NumNodes: n, Directed: true})
			if err != nil {
				t.Fatal(err)
			}
			if !weighted {
				g2, err := graph.Build(edgesOnly(edges), graph.BuildOptions{NumNodes: n, Directed: true})
				if err != nil {
					t.Fatal(err)
				}
				g = g2
			}

			// Reference: old Undirected() — re-list the stored arcs, rebuild.
			var stored []graph.WEdge
			for u := int32(0); u < n; u++ {
				ns := g.OutNeighbors(u)
				ws := g.OutWeights(u)
				for i, v := range ns {
					w := graph.Weight(0)
					if ws != nil {
						w = ws[i]
					}
					stored = append(stored, graph.WEdge{U: u, V: v, W: w})
				}
			}
			rg, err := refBuildWeighted(t, stored, graph.BuildOptions{NumNodes: n, Directed: false})
			if err != nil {
				t.Fatal(err)
			}
			ug := g.Undirected()
			if ug.Directed() {
				t.Fatal("Undirected returned a directed graph")
			}
			assertCSREqual(t, "undirected", ug, rg, weighted)
		}
	}
}

func edgesOnly(we []graph.WEdge) []graph.Edge {
	out := make([]graph.Edge, len(we))
	for i, e := range we {
		out[i] = graph.Edge{U: e.U, V: e.V}
	}
	return out
}

// TestDegreeRelabelMatchesStableSortReference pins the counting-sort
// permutation against the old sort.SliceStable ordering: decreasing degree,
// equal degrees keep ascending vertex ids.
func TestDegreeRelabelMatchesStableSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9e37))
	for trial := 0; trial < 8; trial++ {
		n := int32(1 + rng.Int31n(200))
		g, err := graph.Build(edgesOnly(randomEdges(rng, n, 6*int(n))),
			graph.BuildOptions{NumNodes: n, Directed: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		_, perm := graph.DegreeRelabel(g)

		// Reference permutation via a stable comparison sort.
		order := make([]graph.NodeID, n)
		for i := range order {
			order[i] = graph.NodeID(i)
		}
		sort.SliceStable(order, func(i, j int) bool {
			return g.OutDegree(order[i]) > g.OutDegree(order[j])
		})
		want := make([]graph.NodeID, n)
		for newID, old := range order {
			want[old] = graph.NodeID(newID)
		}
		if !slices.Equal(perm, want) {
			t.Fatalf("trial %d: perm mismatch\n got %v\nwant %v", trial, perm, want)
		}
	}
}

package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text edge-list support, matching the GAP reference's .el/.wel formats: one
// edge per line ("u v" or "u v w"), '#' comments, blank lines ignored. This
// is the interchange path for loading real datasets into the benchmark.

// ReadEdgeList parses a text edge list. It returns the edges and whether a
// weight column was present (mixed lines are an error). Unweighted edges get
// weight 1.
func ReadEdgeList(r io.Reader) ([]WEdge, bool, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []WEdge
	weighted := false
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, false, fmt.Errorf("graph: line %d: want 2 or 3 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, false, fmt.Errorf("graph: line %d: bad source %q", lineNo, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, false, fmt.Errorf("graph: line %d: bad destination %q", lineNo, fields[1])
		}
		w := int64(1)
		if len(fields) == 3 {
			if len(edges) > 0 && !weighted {
				return nil, false, fmt.Errorf("graph: line %d: weight column appears mid-file", lineNo)
			}
			weighted = true
			if w, err = strconv.ParseInt(fields[2], 10, 32); err != nil {
				return nil, false, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
			}
		} else if weighted {
			return nil, false, fmt.Errorf("graph: line %d: weight column disappears mid-file", lineNo)
		}
		edges = append(edges, WEdge{U: NodeID(u), V: NodeID(v), W: Weight(w)})
	}
	if err := scanner.Err(); err != nil {
		return nil, false, err
	}
	return edges, weighted, nil
}

// LoadEdgeList reads a .el/.wel file and builds a graph with the given
// options. For unweighted files the resulting graph is unweighted.
func LoadEdgeList(path string, opt BuildOptions) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	edges, weighted, err := ReadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	g, err := BuildWeighted(edges, opt)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !weighted {
		g.outWeight, g.inWeight = nil, nil
	}
	return g, nil
}

// WriteEdgeList emits the graph as a text edge list ("u v" or "u v w" when
// weighted). Undirected graphs emit each edge once (u <= v order).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for u := int32(0); u < g.n; u++ {
		neigh := g.OutNeighbors(u)
		ws := g.OutWeights(u)
		for i, v := range neigh {
			if !g.directed && v < u {
				continue // undirected: emit each pair once
			}
			var err error
			if ws != nil {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", u, v, ws[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

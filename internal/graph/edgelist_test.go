package graph_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gapbench/internal/graph"
)

func TestReadEdgeListUnweighted(t *testing.T) {
	in := "# a comment\n0 1\n\n1 2\n 2 0 \n"
	edges, weighted, err := graph.ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if weighted {
		t.Fatal("unweighted input reported weighted")
	}
	if len(edges) != 3 || edges[2].U != 2 || edges[2].V != 0 || edges[0].W != 1 {
		t.Fatalf("edges = %v", edges)
	}
}

func TestReadEdgeListWeighted(t *testing.T) {
	edges, weighted, err := graph.ReadEdgeList(strings.NewReader("0 1 5\n1 2 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !weighted || edges[1].W != 7 {
		t.Fatalf("weighted=%t edges=%v", weighted, edges)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for name, in := range map[string]string{
		"too many fields":   "0 1 2 3\n",
		"bad source":        "x 1\n",
		"bad destination":   "0 y\n",
		"bad weight":        "0 1 z\n",
		"weight appears":    "0 1\n1 2 3\n",
		"weight disappears": "0 1 3\n1 2\n",
	} {
		if _, _, err := graph.ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := graph.BuildWeighted([]graph.WEdge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 5}, {U: 2, V: 0, W: 7},
	}, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.wel")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := graph.LoadEdgeList(path, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, back) {
		t.Fatal("edge-list round trip changed the graph")
	}
}

func TestEdgeListUndirectedEmitsOnce(t *testing.T) {
	g := mustBuild(t, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, graph.BuildOptions{Directed: false})
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1
	if lines != 2 {
		t.Fatalf("undirected graph emitted %d lines, want 2:\n%s", lines, buf.String())
	}
	// Reload as undirected and compare.
	back, _, err := graph.ReadEdgeList(&buf)
	_ = back
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadEdgeListUnweightedStripsWeights(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.el")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadEdgeList(path, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Weighted() {
		t.Fatal("unweighted edge list produced a weighted graph")
	}
}

package graph_test

import (
	"bytes"
	"strings"
	"testing"

	"gapbench/internal/graph"
)

// FuzzReadEdgeList exercises the text parser with arbitrary input: it must
// never panic, and anything it accepts must build into a graph whose edge
// count is bounded by the accepted line count.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("0 1 250\n# comment\n\n2 3 9\n")
	f.Add("not numbers\n")
	f.Add("1")
	f.Fuzz(func(t *testing.T, input string) {
		edges, _, err := graph.ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, e := range edges {
			if e.U < 0 || e.V < 0 {
				t.Fatalf("parser accepted negative id: %+v", e)
			}
		}
		// Accepted edges must survive graph construction when in range.
		g, err := graph.BuildWeighted(edges, graph.BuildOptions{Directed: true})
		if err != nil {
			return
		}
		if g.NumEdges() > int64(len(edges)) {
			t.Fatalf("built %d edges from %d inputs", g.NumEdges(), len(edges))
		}
	})
}

// FuzzBuildMatchesReference decodes arbitrary bytes into small edge lists
// (high collision rate: 32 vertices, 4 weight values, so duplicates and
// weight ties abound) and cross-checks the counting-sort builder against the
// retained sort-based reference from builder_ref_test.go.
func FuzzBuildMatchesReference(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 1, 0, 0, 3}, false, false)
	f.Add([]byte{3, 3, 3, 3, 7, 1, 3, 3, 2}, true, true)
	f.Add([]byte{}, true, false)
	f.Fuzz(func(t *testing.T, data []byte, directed, keep bool) {
		var edges []graph.WEdge
		for i := 0; i+2 < len(data); i += 3 {
			edges = append(edges, graph.WEdge{
				U: graph.NodeID(data[i] % 32),
				V: graph.NodeID(data[i+1] % 32),
				W: graph.Weight(data[i+2] % 4),
			})
		}
		opt := graph.BuildOptions{Directed: directed, KeepSelfLoops: keep}
		rg, refErr := refBuildWeighted(t, edges, opt)
		g, err := graph.BuildWeighted(edges, opt)
		if (err != nil) != (refErr != nil) {
			t.Fatalf("err = %v, reference err = %v", err, refErr)
		}
		if err != nil {
			return
		}
		assertCSREqual(t, "fuzz", g, rg, true)
	})
}

// FuzzReadFrom feeds arbitrary bytes to the binary deserializer: it must
// never panic and never return a structurally inconsistent graph.
func FuzzReadFrom(f *testing.F) {
	g, err := graph.BuildWeighted([]graph.WEdge{{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 5}},
		graph.BuildOptions{Directed: true})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var buf2 bytes.Buffer
	if err := g.WriteSG(&buf2); err != nil {
		f.Fatal(err)
	}
	f.Add(buf2.Bytes())
	f.Add([]byte("GAPB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := graph.ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Structural invariants on anything accepted.
		n := got.NumNodes()
		for u := int32(0); u < n; u++ {
			for _, v := range got.OutNeighbors(u) {
				if v < 0 || v >= n {
					t.Fatalf("deserialized out-of-range neighbor %d (n=%d)", v, n)
				}
			}
		}
	})
}

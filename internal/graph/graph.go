// Package graph is the shared graph substrate: a compressed-sparse-row (CSR)
// in-memory graph with both outgoing and incoming adjacency, 32-bit vertex
// identifiers, and optional 32-bit integer edge weights.
//
// Every framework in this repository operates on this one representation, in
// keeping with the GAP benchmark rule that "all algorithm implementations of a
// framework must operate on the same graph format". The GraphBLAS
// reproduction wraps it in 64-bit-indexed sparse matrices (paying the width
// tax the paper describes); everything else reads the CSR arrays directly.
package graph

import "fmt"

// NodeID identifies a vertex. The paper notes that all frameworks except
// GraphBLAS use 32-bit indices; this type is that 32-bit index.
type NodeID = int32

// Weight is an integer edge weight. The GAP benchmark assigns SSSP weights
// uniformly at random in [1, 255].
type Weight = int32

// Layout identifies the vertex/neighbor ordering a graph was built with. It
// is chosen at build time, recorded in the format-v2 file header, and
// transparent to kernels: every layout is a plain CSR, the layouts differ
// only in which vertex got which id (and therefore how adjacency segments
// cluster in memory).
type Layout uint8

const (
	// LayoutPlain keeps the vertex ids the generator or edge list assigned.
	LayoutPlain Layout = iota
	// LayoutDegree renumbers vertices in decreasing out-degree order
	// (DegreeRelabel) so hub rows — the rows kernels touch most — pack into
	// the leading pages of the neighbor sections, which keeps bandwidth-bound
	// kernels streaming instead of striding.
	LayoutDegree
)

// String names the layout as recorded in file headers and flag values.
func (l Layout) String() string {
	switch l {
	case LayoutPlain:
		return "plain"
	case LayoutDegree:
		return "degree"
	}
	return fmt.Sprintf("layout(%d)", uint8(l))
}

// ParseLayout inverts Layout.String for CLI flags.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "plain", "":
		return LayoutPlain, nil
	case "degree":
		return LayoutDegree, nil
	}
	return LayoutPlain, fmt.Errorf("graph: unknown layout %q (want plain or degree)", s)
}

// Graph is an immutable CSR graph. For directed graphs both the out-CSR and
// the in-CSR (transpose) are stored, matching the GAP reference which keeps
// both forms so that transposition never appears in timed regions. For
// undirected graphs the two views alias the same arrays.
//
// Adjacency lists are sorted by destination and deduplicated, as the paper
// states all frameworks do.
type Graph struct {
	n        int32
	directed bool

	outIndex []int64  // len n+1; out-neighbors of u are outNeigh[outIndex[u]:outIndex[u+1]]
	outNeigh []NodeID // len = number of stored directed edges
	inIndex  []int64  // transpose; aliases outIndex when undirected
	inNeigh  []NodeID

	// Weights parallel the adjacency arrays; nil for unweighted graphs.
	outWeight []Weight
	inWeight  []Weight

	// seal holds the graphguard checksums recorded by Seal (guard.go); nil
	// when unsealed or when the graphguard build tag is off.
	seal *[6]uint64

	// arena is the storage block the six views above point into; nil only
	// for graphs assembled from caller-owned slices (FromCSR fast path is
	// gone — builders and loaders always populate it, but the zero Graph
	// stays valid for tests poking fields directly).
	arena  *Arena
	layout Layout

	// epoch identifies the graph for journals and caches: the file header
	// checksum for graphs saved to or loaded from a format-v2 file (content
	// identity), a structural hash otherwise. Never zero once built.
	epoch uint64

	// hdrSums are the per-section checksums from the format-v2 header, kept
	// so mmap-backed graphs can Seal in O(1) instead of re-hashing gigabytes
	// (guard.go). Nil for graphs that never met a v2 file.
	hdrSums *[numSections]uint64

	// Provenance recorded by the generator (graphgen) and carried through
	// the v2 header so a loaded file can be matched back to its suite spec.
	provName  string
	provScale uint32
	provSeed  uint64
}

// Layout reports the vertex layout the graph was built with.
func (g *Graph) Layout() Layout { return g.layout }

// Epoch returns the graph's identity stamp: the format-v2 header checksum
// for saved/loaded graphs, a structural hash for built ones, 0 only for
// hand-assembled zero-value graphs. Journals record it so resumed runs can
// refuse an input that changed under them.
func (g *Graph) Epoch() uint64 { return g.epoch }

// Arena returns the storage arena backing the CSR views, or nil for graphs
// assembled without one.
func (g *Graph) Arena() *Arena { return g.arena }

// Provenance returns the generator identity carried in the format-v2 header:
// suite graph name, scale, and seed. Empty/zero when unknown (v1 files,
// hand-built graphs).
func (g *Graph) Provenance() (name string, scale uint32, seed uint64) {
	return g.provName, g.provScale, g.provSeed
}

// SetProvenance records the generator identity to be written into the
// format-v2 header. Call before Save/WriteSG.
func (g *Graph) SetProvenance(name string, scale uint32, seed uint64) {
	if len(name) > provNameLen {
		name = name[:provNameLen]
	}
	g.provName, g.provScale, g.provSeed = name, scale, seed
}

// Close releases the graph's storage. For mmap-backed graphs this unmaps the
// file; for heap-backed graphs it drops the arena reference. Either way every
// CSR view is poisoned (nilled) first, so any retained *Graph fails with an
// ordinary nil-slice panic instead of faulting on an unmapped page. Safe on
// nil and safe to call twice. gapvet's arena-escape rule checks statically
// that no graph-derived slice outlives this call.
func (g *Graph) Close() error {
	if g == nil {
		return nil
	}
	g.outIndex, g.outNeigh, g.outWeight = nil, nil, nil
	g.inIndex, g.inNeigh, g.inWeight = nil, nil, nil
	g.seal, g.hdrSums = nil, nil
	a := g.arena
	g.arena = nil
	return a.close()
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int32 { return g.n }

// NumEdges returns the number of directed edges stored in the out-CSR. For an
// undirected graph each edge {u,v} is stored in both directions and therefore
// counted twice; use NumEdgesUndirected for the edge count in the usual sense.
func (g *Graph) NumEdges() int64 { return int64(len(g.outNeigh)) }

// NumEdgesUndirected returns the number of undirected edges: NumEdges for a
// directed graph, NumEdges/2 for an undirected one.
func (g *Graph) NumEdgesUndirected() int64 {
	if g.directed {
		return g.NumEdges()
	}
	return g.NumEdges() / 2
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Weighted reports whether edges carry weights.
func (g *Graph) Weighted() bool { return g.outWeight != nil }

// OutDegree returns the number of outgoing edges of u.
func (g *Graph) OutDegree(u NodeID) int64 { return g.outIndex[u+1] - g.outIndex[u] }

// InDegree returns the number of incoming edges of u.
func (g *Graph) InDegree(u NodeID) int64 { return g.inIndex[u+1] - g.inIndex[u] }

// OutNeighbors returns u's sorted out-adjacency list. The returned slice
// aliases graph storage and must not be modified.
func (g *Graph) OutNeighbors(u NodeID) []NodeID {
	return g.outNeigh[g.outIndex[u]:g.outIndex[u+1]]
}

// InNeighbors returns u's sorted in-adjacency list. The returned slice
// aliases graph storage and must not be modified.
func (g *Graph) InNeighbors(u NodeID) []NodeID {
	return g.inNeigh[g.inIndex[u]:g.inIndex[u+1]]
}

// OutWeights returns the weights parallel to OutNeighbors(u). It returns nil
// for unweighted graphs.
func (g *Graph) OutWeights(u NodeID) []Weight {
	if g.outWeight == nil {
		return nil
	}
	return g.outWeight[g.outIndex[u]:g.outIndex[u+1]]
}

// InWeights returns the weights parallel to InNeighbors(u). It returns nil
// for unweighted graphs.
func (g *Graph) InWeights(u NodeID) []Weight {
	if g.inWeight == nil {
		return nil
	}
	return g.inWeight[g.inIndex[u]:g.inIndex[u+1]]
}

// RawOut exposes the out-CSR arrays (index, neighbors). Frameworks that
// hand-tune inner loops (GKC, GAP reference) read these directly instead of
// going through the accessor methods.
func (g *Graph) RawOut() ([]int64, []NodeID) { return g.outIndex, g.outNeigh }

// RawIn exposes the in-CSR arrays (index, neighbors).
func (g *Graph) RawIn() ([]int64, []NodeID) { return g.inIndex, g.inNeigh }

// RawOutWeights exposes the weight array parallel to the out-CSR neighbor
// array, or nil for unweighted graphs.
func (g *Graph) RawOutWeights() []Weight { return g.outWeight }

// RawInWeights exposes the weight array parallel to the in-CSR neighbor
// array, or nil for unweighted graphs.
func (g *Graph) RawInWeights() []Weight { return g.inWeight }

// String summarizes the graph for diagnostics.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	w := ""
	if g.Weighted() {
		w = ", weighted"
	}
	return fmt.Sprintf("graph{%s%s, n=%d, m=%d}", kind, w, g.n, g.NumEdgesUndirected())
}

package graph_test

import (
	"testing"

	"gapbench/internal/graph"
)

func mustBuild(t *testing.T, edges []graph.Edge, opt graph.BuildOptions) *graph.Graph {
	t.Helper()
	g, err := graph.Build(edges, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildDirectedBasics(t *testing.T) {
	g := mustBuild(t, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 2, V: 1}}, graph.BuildOptions{Directed: true})
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if !g.Directed() {
		t.Fatal("Directed() = false")
	}
	if got := g.OutNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("OutNeighbors(0) = %v, want [1 2]", got)
	}
	if got := g.InNeighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("InNeighbors(1) = %v, want [0 2]", got)
	}
	if g.OutDegree(1) != 0 || g.InDegree(0) != 0 {
		t.Fatal("degrees of sink/source vertices wrong")
	}
}

func TestBuildUndirectedSymmetry(t *testing.T) {
	g := mustBuild(t, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, graph.BuildOptions{Directed: false})
	if g.NumEdges() != 4 {
		t.Fatalf("stored directed entries = %d, want 4", g.NumEdges())
	}
	if g.NumEdgesUndirected() != 2 {
		t.Fatalf("undirected edges = %d, want 2", g.NumEdgesUndirected())
	}
	for u := int32(0); u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(u) {
			found := false
			for _, w := range g.OutNeighbors(v) {
				if w == u {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", u, v)
			}
		}
	}
}

func TestBuildDeduplicatesAndSorts(t *testing.T) {
	g := mustBuild(t, []graph.Edge{
		{U: 0, V: 2}, {U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 1}, {U: 0, V: 3},
	}, graph.BuildOptions{Directed: true})
	got := g.OutNeighbors(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("OutNeighbors(0) = %v, want sorted dedup [1 2 3]", got)
	}
}

func TestBuildDropsSelfLoopsByDefault(t *testing.T) {
	g := mustBuild(t, []graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}}, graph.BuildOptions{Directed: true})
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (self loop dropped)", g.NumEdges())
	}
	g2, err := graph.Build([]graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}}, graph.BuildOptions{Directed: true, KeepSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (self loop kept)", g2.NumEdges())
	}
}

func TestBuildWeightedKeepsMinDuplicate(t *testing.T) {
	g, err := graph.BuildWeighted([]graph.WEdge{
		{U: 0, V: 1, W: 9}, {U: 0, V: 1, W: 3}, {U: 0, V: 1, W: 7},
	}, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if ws := g.OutWeights(0); len(ws) != 1 || ws[0] != 3 {
		t.Fatalf("weights = %v, want [3]", ws)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := graph.Build([]graph.Edge{{U: -1, V: 0}}, graph.BuildOptions{}); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := graph.Build([]graph.Edge{{U: 0, V: 5}}, graph.BuildOptions{NumNodes: 3}); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestBuildEmptyAndIsolated(t *testing.T) {
	g := mustBuild(t, nil, graph.BuildOptions{NumNodes: 4, Directed: false})
	if g.NumNodes() != 4 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	for u := int32(0); u < 4; u++ {
		if len(g.OutNeighbors(u)) != 0 {
			t.Fatalf("vertex %d has neighbors in empty graph", u)
		}
	}
	empty := mustBuild(t, nil, graph.BuildOptions{})
	if empty.NumNodes() != 0 {
		t.Fatalf("zero-vertex graph has n=%d", empty.NumNodes())
	}
}

func TestUndirectedView(t *testing.T) {
	g := mustBuild(t, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 1}}, graph.BuildOptions{Directed: true})
	u := g.Undirected()
	if u.Directed() {
		t.Fatal("Undirected() returned a directed graph")
	}
	if u.NumEdgesUndirected() != 2 {
		t.Fatalf("undirected edges = %d, want 2", u.NumEdgesUndirected())
	}
	if got := u.OutNeighbors(1); len(got) != 2 {
		t.Fatalf("vertex 1 neighbors = %v, want two", got)
	}
	// Undirected of undirected is identity.
	if u.Undirected() != u {
		t.Fatal("Undirected() of undirected graph should return the same graph")
	}
}

func TestDegreeRelabel(t *testing.T) {
	// Star: vertex 3 is the hub and must become vertex 0.
	g := mustBuild(t, []graph.Edge{{U: 3, V: 0}, {U: 3, V: 1}, {U: 3, V: 2}, {U: 0, V: 1}},
		graph.BuildOptions{Directed: false})
	rg, perm := graph.DegreeRelabel(g)
	if perm[3] != 0 {
		t.Fatalf("hub mapped to %d, want 0", perm[3])
	}
	if rg.OutDegree(0) != g.OutDegree(3) {
		t.Fatalf("hub degree changed: %d vs %d", rg.OutDegree(0), g.OutDegree(3))
	}
	if rg.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", rg.NumEdges(), g.NumEdges())
	}
	// Adjacency stays sorted after permutation.
	for u := int32(0); u < rg.NumNodes(); u++ {
		neigh := rg.OutNeighbors(u)
		for i := 1; i < len(neigh); i++ {
			if neigh[i-1] >= neigh[i] {
				t.Fatalf("row %d unsorted: %v", u, neigh)
			}
		}
	}
}

func TestFromCSRValidation(t *testing.T) {
	if _, err := graph.FromCSR(2, false, []int64{0, 1}, []graph.NodeID{1}, nil, nil, nil, nil); err == nil {
		t.Error("short index accepted")
	}
	if _, err := graph.FromCSR(2, false, []int64{0, 1, 5}, []graph.NodeID{1}, nil, nil, nil, nil); err == nil {
		t.Error("inconsistent index end accepted")
	}
}

package graph

import "fmt"

// graphguard is the runtime complement to gapvet's graph-mutation rule: the
// static write-set lattice (internal/analysis/writeset.go) proves the absence
// of stores through accessor-derived slices, but cannot see aliases that
// escape through struct fields, interfaces, or unsafe code. Building with
// -tags=graphguard closes that gap dynamically — Seal records a checksum of
// every CSR array, and core.Runner re-verifies the seal after each trial, so
// any mutation of shared graph memory (a kernel bug, or chaos's deliberate
// CorruptGraph fault) is caught at the trial boundary and named.
//
// The pattern mirrors the grbcheck and chaos sanitizers: a plain var toggled
// by an init function behind a build tag, so the default build carries no
// checksum cost and no behavioural difference.

// graphguardEnabled is set by the init in guard_graphguard.go when the
// graphguard build tag is present.
var graphguardEnabled = false

// GuardEnabled reports whether the binary was built with -tags=graphguard.
func GuardEnabled() bool { return graphguardEnabled }

// sealNames names the checksummed arrays, in seal-slot order. CheckSeal
// reports the first mismatching name so a failure identifies which array a
// rogue store hit.
var sealNames = [...]string{"outIndex", "outNeigh", "inIndex", "inNeigh", "outWeight", "inWeight"}

// Seal records a checksum of each CSR array. A no-op unless the graphguard
// build tag is on. Safe to call more than once; the last seal wins, so a
// legitimate in-package rebuild (relabel, symmetrize) just re-seals.
//
// Graphs that carry format-v2 header checksums — mmap-loaded ones above all
// — seal from the header in O(1) instead of re-hashing every array, which
// for a mapped multi-gigabyte graph also avoids faulting the whole file in
// just to seal it. The header sums were computed with the same checksum
// functions at save time, so CheckSeal compares like with like.
func (g *Graph) Seal() {
	if !graphguardEnabled || g == nil {
		return
	}
	if s := g.hdrSums; s != nil {
		sums := [len(sealNames)]uint64{
			s[secOutIndex], s[secOutNeigh],
			s[secInIndex], s[secInNeigh],
			s[secOutWeight], s[secInWeight],
		}
		if !g.directed {
			// The in-views alias the out-views; the header stores the
			// in-sections as absent.
			sums[2], sums[3], sums[5] = s[secOutIndex], s[secOutNeigh], s[secOutWeight]
		}
		g.seal = &sums
		return
	}
	g.seal = &[len(sealNames)]uint64{
		checksum64(g.outIndex),
		checksum32(g.outNeigh),
		checksum64(g.inIndex),
		checksum32(g.inNeigh),
		checksum32(g.outWeight),
		checksum32(g.inWeight),
	}
}

// CheckSeal re-computes the checksums and returns an error naming the first
// array that no longer matches its seal. Returns nil when the guard is off,
// the graph is nil or unsealed, or all arrays verify.
func (g *Graph) CheckSeal() error {
	if !graphguardEnabled || g == nil || g.seal == nil {
		return nil
	}
	now := [len(sealNames)]uint64{
		checksum64(g.outIndex),
		checksum32(g.outNeigh),
		checksum64(g.inIndex),
		checksum32(g.inNeigh),
		checksum32(g.outWeight),
		checksum32(g.inWeight),
	}
	for i, want := range *g.seal {
		if now[i] != want {
			return fmt.Errorf("graphguard: CSR array %s modified since Seal (checksum %#x, sealed %#x)", sealNames[i], now[i], want)
		}
	}
	return nil
}

// MustCheckSeal panics if CheckSeal fails. The core runner calls it inside
// the trial sandbox, so the panic surfaces as a Panicked trial record naming
// the corrupted array rather than as a wrong benchmark result.
func (g *Graph) MustCheckSeal() {
	if err := g.CheckSeal(); err != nil {
		panic(err)
	}
}

// checksum64 mixes a []int64 with a splitmix64-style finalizer per element.
// Order-dependent (position is mixed in), so swapped elements are caught,
// not just changed sums.
func checksum64(s []int64) uint64 {
	h := uint64(len(s)) + 1
	for i, v := range s {
		h = mix64(h ^ mix64(uint64(v)+uint64(i)*0x9e3779b97f4a7c15))
	}
	return h
}

// checksum32 is checksum64 for the int32-based arrays (NodeID, Weight).
func checksum32(s []int32) uint64 {
	h := uint64(len(s)) + 2
	for i, v := range s {
		h = mix64(h ^ mix64(uint64(uint32(v))+uint64(i)*0x9e3779b97f4a7c15))
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

//go:build graphguard

package graph

// Building with -tags=graphguard turns the CSR seal sanitizer on; see
// guard.go.
func init() { graphguardEnabled = true }

package graph

import (
	"strings"
	"testing"
)

// guardGraph builds a small directed weighted graph, so all six CSR arrays
// are distinct (an undirected graph aliases the in-CSR to the out-CSR).
func guardGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := BuildWeighted([]WEdge{
		{U: 0, V: 1, W: 3}, {U: 0, V: 2, W: 1}, {U: 1, V: 2, W: 5},
		{U: 2, V: 3, W: 2}, {U: 3, V: 0, W: 4}, {U: 3, V: 1, W: 9},
	}, BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The checksums are always compiled (only Seal's arming is tag-gated), so
// their properties are testable without the graphguard tag.

func TestGuardChecksumIsOrderSensitive(t *testing.T) {
	a := checksum32([]int32{1, 2, 3})
	b := checksum32([]int32{2, 1, 3})
	if a == b {
		t.Errorf("checksum32 did not distinguish swapped elements: %#x", a)
	}
	c := checksum64([]int64{7, 8})
	d := checksum64([]int64{8, 7})
	if c == d {
		t.Errorf("checksum64 did not distinguish swapped elements: %#x", c)
	}
}

func TestGuardChecksumIsLengthSensitive(t *testing.T) {
	if checksum32([]int32{0}) == checksum32([]int32{0, 0}) {
		t.Error("checksum32 did not distinguish [0] from [0 0]")
	}
	if checksum64(nil) == checksum64([]int64{0}) {
		t.Error("checksum64 did not distinguish nil from [0]")
	}
}

func TestGuardNilAndUnsealedAreNoOps(t *testing.T) {
	var nilG *Graph
	nilG.Seal() // must not panic
	if err := nilG.CheckSeal(); err != nil {
		t.Errorf("nil graph: CheckSeal = %v, want nil", err)
	}
	g := guardGraph(t)
	if err := g.CheckSeal(); err != nil {
		t.Errorf("unsealed graph: CheckSeal = %v, want nil", err)
	}
	g.MustCheckSeal() // must not panic
}

func TestGuardDisabledSealIsInert(t *testing.T) {
	if GuardEnabled() {
		t.Skip("needs a build without -tags=graphguard")
	}
	g := guardGraph(t)
	g.Seal()
	if g.seal != nil {
		t.Error("Seal recorded checksums with the guard off")
	}
}

// TestGuardDetectsEachArray mutates one element of every CSR array in turn
// and requires CheckSeal to name exactly that array, then restores it and
// requires the seal to verify again.
func TestGuardDetectsEachArray(t *testing.T) {
	if !GuardEnabled() {
		t.Skip("needs -tags=graphguard")
	}
	g := guardGraph(t)
	g.Seal()
	if err := g.CheckSeal(); err != nil {
		t.Fatalf("fresh seal: %v", err)
	}
	cases := []struct {
		name           string
		mutate, revert func()
	}{
		{"outIndex", func() { g.outIndex[1]++ }, func() { g.outIndex[1]-- }},
		{"outNeigh", func() { g.outNeigh[0]++ }, func() { g.outNeigh[0]-- }},
		{"inIndex", func() { g.inIndex[2]++ }, func() { g.inIndex[2]-- }},
		{"inNeigh", func() { g.inNeigh[1]++ }, func() { g.inNeigh[1]-- }},
		{"outWeight", func() { g.outWeight[3]++ }, func() { g.outWeight[3]-- }},
		{"inWeight", func() { g.inWeight[0]++ }, func() { g.inWeight[0]-- }},
	}
	for _, c := range cases {
		c.mutate()
		err := g.CheckSeal()
		if err == nil {
			t.Errorf("%s: mutation not detected", c.name)
		} else if !strings.Contains(err.Error(), c.name) {
			t.Errorf("%s: error %q does not name the array", c.name, err)
		}
		c.revert()
		if err := g.CheckSeal(); err != nil {
			t.Errorf("%s: seal broken after revert: %v", c.name, err)
		}
	}
}

func TestGuardResealAcceptsRebuild(t *testing.T) {
	if !GuardEnabled() {
		t.Skip("needs -tags=graphguard")
	}
	g := guardGraph(t)
	g.Seal()
	g.outNeigh[0]++ // a legitimate in-package rebuild would do this...
	g.Seal()        // ...and re-seal afterwards
	if err := g.CheckSeal(); err != nil {
		t.Errorf("re-seal did not adopt the new contents: %v", err)
	}
}

func TestGuardMustCheckSealPanics(t *testing.T) {
	if !GuardEnabled() {
		t.Skip("needs -tags=graphguard")
	}
	g := guardGraph(t)
	g.Seal()
	g.inNeigh[0]++
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("MustCheckSeal did not panic on a corrupted array")
		}
		if !strings.Contains(fmtPanic(p), "inNeigh") {
			t.Errorf("panic %v does not name the corrupted array", p)
		}
	}()
	g.MustCheckSeal()
}

func fmtPanic(p any) string {
	if err, ok := p.(error); ok {
		return err.Error()
	}
	if s, ok := p.(string); ok {
		return s
	}
	return ""
}

// TestGuardSealFromHeaderSums proves the O(1) header-based seal agrees with
// the recomputing CheckSeal: seal a graph carrying v2 header checksums, then
// let CheckSeal re-hash every live array against it. Covers the directed
// (all six slots distinct) and undirected (in-views alias out-views, header
// in-sections absent) cases.
func TestGuardSealFromHeaderSums(t *testing.T) {
	if !GuardEnabled() {
		t.Skip("needs -tags=graphguard")
	}
	dg := guardGraph(t)
	ug, err := BuildWeighted([]WEdge{{U: 0, V: 1, W: 4}, {U: 1, V: 2, W: 6}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*Graph{"directed": dg, "undirected": ug} {
		path := t.TempDir() + "/" + name + ".sg"
		if err := g.SaveSG(path); err != nil {
			t.Fatalf("%s: SaveSG: %v", name, err)
		}
		// The save stamped hdrSums on the heap graph itself: Seal must take
		// the cheap path and still verify.
		if g.hdrSums == nil {
			t.Fatalf("%s: SaveSG did not record header checksums", name)
		}
		g.Seal()
		if err := g.CheckSeal(); err != nil {
			t.Errorf("%s: header-based seal does not verify: %v", name, err)
		}
		g.outNeigh[0]++
		if err := g.CheckSeal(); err == nil {
			t.Errorf("%s: mutation under header-based seal not detected", name)
		}
		g.outNeigh[0]--

		// And the same for the mmap-loaded copy.
		m, err := Load(path)
		if err != nil {
			t.Fatalf("%s: Load: %v", name, err)
		}
		if !m.Arena().Mapped() {
			t.Fatalf("%s: loaded graph not mapped", name)
		}
		m.Seal()
		if err := m.CheckSeal(); err != nil {
			t.Errorf("%s: mmap graph seal does not verify: %v", name, err)
		}
		if err := m.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
	}
}

package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"
)

// Binary serialization of CSR graphs, the analogue of the GAP reference's
// ".sg"/".wsg" serialized-graph files: generating a benchmark graph once and
// reloading it is far cheaper than regenerating it per run.
//
// This file is the version-1 stream format plus the version dispatch; the
// version-2 arena format (mmap-loadable) lives in io_v2.go. Write/Save still
// emit v1 for compatibility; WriteSG/SaveSG emit v2, and Load/ReadFrom accept
// both.
//
// v1 layout (little-endian):
//
//	magic "GAPB" | version u32 | flags u32 (bit0 directed, bit1 weighted)
//	n u32 | m u64 (out-CSR entry count)
//	outIndex [n+1]u64 | outNeigh [m]u32 | [outWeight [m]u32]
//	directed only: mIn u64 | inIndex [n+1]u64 | inNeigh [mIn]u32 | [inWeight [mIn]u32]

const (
	fileMagic   = "GAPB"
	fileVersion = 1

	flagDirected = 1 << 0
	flagWeighted = 1 << 1
)

// Write serializes the graph. It returns the first write error encountered.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	var flags uint32
	if g.directed {
		flags |= flagDirected
	}
	if g.Weighted() {
		flags |= flagWeighted
	}
	for _, v := range []uint32{fileVersion, flags, uint32(g.n)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(g.outNeigh))); err != nil {
		return err
	}
	if err := putInts(bw, g.outIndex); err != nil {
		return err
	}
	if err := putInts(bw, g.outNeigh); err != nil {
		return err
	}
	if g.Weighted() {
		if err := putInts(bw, g.outWeight); err != nil {
			return err
		}
	}
	if g.directed {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(g.inNeigh))); err != nil {
			return err
		}
		if err := putInts(bw, g.inIndex); err != nil {
			return err
		}
		if err := putInts(bw, g.inNeigh); err != nil {
			return err
		}
		if g.Weighted() {
			if err := putInts(bw, g.inWeight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFrom deserializes a graph written by Write (v1) or WriteSG (v2). Both
// paths copy into heap storage and fully validate; use Load on a file path
// to get the zero-copy mmap fast path for v2.
func ReadFrom(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var prefix [8]byte
	if _, err := io.ReadFull(br, prefix[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(prefix[:4]) != fileMagic {
		return nil, fmt.Errorf("graph: bad magic %q", prefix[:4])
	}
	switch version := binary.LittleEndian.Uint32(prefix[4:]); version {
	case fileVersion:
		// fall through to the v1 stream decoder below
	case sgVersion:
		return readSGFrom(br, prefix)
	default:
		return nil, fmt.Errorf("graph: unsupported file version %d", version)
	}
	var flags, n uint32
	for _, p := range []*uint32{&flags, &n} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	directed := flags&flagDirected != 0
	weighted := flags&flagWeighted != 0

	if n > 1<<31-2 {
		return nil, fmt.Errorf("graph: vertex count %d out of range", n)
	}
	readSide := func() ([]int64, []NodeID, []Weight, error) {
		var m uint64
		if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
			return nil, nil, nil, err
		}
		// Bound the claimed entry count before allocating: a corrupt or
		// hostile header must not drive a giant (or negative) make().
		if m > 1<<40 {
			return nil, nil, nil, fmt.Errorf("graph: entry count %d out of range", m)
		}
		index, err := readInts[int64](br, int(n)+1)
		if err != nil {
			return nil, nil, nil, err
		}
		// The index must account for exactly the claimed entries before the
		// neighbor arrays are allocated — a corrupt index otherwise survives
		// until FromCSR, after up to 2*m values were read and buffered.
		if index[n] != int64(m) {
			return nil, nil, nil, fmt.Errorf("graph: index end %d != entry count %d", index[n], m)
		}
		neigh, err := readInts[NodeID](br, int(m))
		if err != nil {
			return nil, nil, nil, err
		}
		var weight []Weight
		if weighted {
			if weight, err = readInts[Weight](br, int(m)); err != nil {
				return nil, nil, nil, err
			}
		}
		return index, neigh, weight, nil
	}

	outIndex, outNeigh, outWeight, err := readSide()
	if err != nil {
		return nil, fmt.Errorf("graph: reading out-CSR: %w", err)
	}
	var inIndex []int64
	var inNeigh []NodeID
	var inWeight []Weight
	if directed {
		if inIndex, inNeigh, inWeight, err = readSide(); err != nil {
			return nil, fmt.Errorf("graph: reading in-CSR: %w", err)
		}
	}
	return FromCSR(int32(n), directed, outIndex, outNeigh, inIndex, inNeigh, outWeight, inWeight)
}

// Save writes the graph to a file.
func (g *Graph) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a graph from a file written by Save or SaveSG. Format-v2 files
// are memory-mapped read-only — O(header) work, zero copies — and must be
// released with Close; v1 files decode through the stream copy path.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var prefix [8]byte
	if _, err := io.ReadFull(f, prefix[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(prefix[:4]) == fileMagic && binary.LittleEndian.Uint32(prefix[4:]) == sgVersion {
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		return loadSG(f, st.Size())
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return ReadFrom(f)
}

// putInts writes a little-endian integer array through one reused chunk
// buffer. One generic body replaces the former writeInt64s/writeInt32s pair;
// the per-byte shift loop compiles to the same stores the width-specific
// binary.LittleEndian calls did.
func putInts[T int32 | int64](w io.Writer, xs []T) error {
	var zero T
	width := int(unsafe.Sizeof(zero))
	buf := make([]byte, 1<<15)
	per := len(buf) / width
	for len(xs) > 0 {
		chunk := len(xs)
		if chunk > per {
			chunk = per
		}
		for i := 0; i < chunk; i++ {
			v := uint64(xs[i])
			for j := 0; j < width; j++ {
				buf[i*width+j] = byte(v >> (8 * j))
			}
		}
		if _, err := w.Write(buf[:chunk*width]); err != nil {
			return err
		}
		xs = xs[chunk:]
	}
	return nil
}

// readInts reads n little-endian integers, unifying the former
// readInt64s/readInt32s pair. The output grows incrementally (capped at 8
// MiB of initial capacity) so a corrupt header claiming billions of entries
// fails at end-of-input instead of pre-allocating unbounded memory.
func readInts[T int32 | int64](r io.Reader, n int) ([]T, error) {
	var zero T
	width := int(unsafe.Sizeof(zero))
	initial := n
	if lim := (1 << 23) / width; initial > lim {
		initial = lim
	}
	out := make([]T, 0, initial)
	buf := make([]byte, 1<<15)
	per := len(buf) / width
	for i := 0; i < n; {
		chunk := n - i
		if chunk > per {
			chunk = per
		}
		if _, err := io.ReadFull(r, buf[:chunk*width]); err != nil {
			return nil, err
		}
		for j := 0; j < chunk; j++ {
			var v uint64
			for k := 0; k < width; k++ {
				v |= uint64(buf[j*width+k]) << (8 * k)
			}
			out = append(out, T(v))
		}
		i += chunk
	}
	return out, nil
}

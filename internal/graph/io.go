package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary serialization of CSR graphs, the analogue of the GAP reference's
// ".sg"/".wsg" serialized-graph files: generating a benchmark graph once and
// reloading it is far cheaper than regenerating it per run.
//
// Layout (little-endian):
//
//	magic "GAPB" | version u32 | flags u32 (bit0 directed, bit1 weighted)
//	n u32 | m u64 (out-CSR entry count)
//	outIndex [n+1]u64 | outNeigh [m]u32 | [outWeight [m]u32]
//	directed only: mIn u64 | inIndex [n+1]u64 | inNeigh [mIn]u32 | [inWeight [mIn]u32]

const (
	fileMagic   = "GAPB"
	fileVersion = 1

	flagDirected = 1 << 0
	flagWeighted = 1 << 1
)

// Write serializes the graph. It returns the first write error encountered.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	var flags uint32
	if g.directed {
		flags |= flagDirected
	}
	if g.Weighted() {
		flags |= flagWeighted
	}
	for _, v := range []uint32{fileVersion, flags, uint32(g.n)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(g.outNeigh))); err != nil {
		return err
	}
	if err := writeInt64s(bw, g.outIndex); err != nil {
		return err
	}
	if err := writeInt32s(bw, g.outNeigh); err != nil {
		return err
	}
	if g.Weighted() {
		if err := writeInt32s(bw, g.outWeight); err != nil {
			return err
		}
	}
	if g.directed {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(g.inNeigh))); err != nil {
			return err
		}
		if err := writeInt64s(bw, g.inIndex); err != nil {
			return err
		}
		if err := writeInt32s(bw, g.inNeigh); err != nil {
			return err
		}
		if g.Weighted() {
			if err := writeInt32s(bw, g.inWeight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFrom deserializes a graph written by Write.
func ReadFrom(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var version, flags, n uint32
	for _, p := range []*uint32{&version, &flags, &n} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != fileVersion {
		return nil, fmt.Errorf("graph: unsupported file version %d", version)
	}
	directed := flags&flagDirected != 0
	weighted := flags&flagWeighted != 0

	if n > 1<<31-2 {
		return nil, fmt.Errorf("graph: vertex count %d out of range", n)
	}
	readSide := func() ([]int64, []NodeID, []Weight, error) {
		var m uint64
		if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
			return nil, nil, nil, err
		}
		// Bound the claimed entry count before allocating: a corrupt or
		// hostile header must not drive a giant (or negative) make().
		if m > 1<<40 {
			return nil, nil, nil, fmt.Errorf("graph: entry count %d out of range", m)
		}
		index, err := readInt64s(br, int(n)+1)
		if err != nil {
			return nil, nil, nil, err
		}
		neigh, err := readInt32s(br, int(m))
		if err != nil {
			return nil, nil, nil, err
		}
		var weight []Weight
		if weighted {
			if weight, err = readInt32s(br, int(m)); err != nil {
				return nil, nil, nil, err
			}
		}
		return index, neigh, weight, nil
	}

	outIndex, outNeigh, outWeight, err := readSide()
	if err != nil {
		return nil, fmt.Errorf("graph: reading out-CSR: %w", err)
	}
	var inIndex []int64
	var inNeigh []NodeID
	var inWeight []Weight
	if directed {
		if inIndex, inNeigh, inWeight, err = readSide(); err != nil {
			return nil, fmt.Errorf("graph: reading in-CSR: %w", err)
		}
	}
	return FromCSR(int32(n), directed, outIndex, outNeigh, inIndex, inNeigh, outWeight, inWeight)
}

// Save writes the graph to a file.
func (g *Graph) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a graph from a file written by Save.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f)
}

func writeInt64s(w io.Writer, xs []int64) error {
	buf := make([]byte, 8*4096)
	for len(xs) > 0 {
		chunk := len(xs)
		if chunk > 4096 {
			chunk = 4096
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(xs[i]))
		}
		if _, err := w.Write(buf[:chunk*8]); err != nil {
			return err
		}
		xs = xs[chunk:]
	}
	return nil
}

func writeInt32s(w io.Writer, xs []int32) error {
	buf := make([]byte, 4*8192)
	for len(xs) > 0 {
		chunk := len(xs)
		if chunk > 8192 {
			chunk = 8192
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(xs[i]))
		}
		if _, err := w.Write(buf[:chunk*4]); err != nil {
			return err
		}
		xs = xs[chunk:]
	}
	return nil
}

// readInt64s reads n little-endian int64s. The output grows incrementally
// so a corrupt header claiming billions of entries fails at end-of-input
// instead of pre-allocating unbounded memory.
func readInt64s(r io.Reader, n int) ([]int64, error) {
	initial := n
	if initial > 1<<20 {
		initial = 1 << 20
	}
	out := make([]int64, 0, initial)
	buf := make([]byte, 8*4096)
	for i := 0; i < n; {
		chunk := n - i
		if chunk > 4096 {
			chunk = 4096
		}
		if _, err := io.ReadFull(r, buf[:chunk*8]); err != nil {
			return nil, err
		}
		for j := 0; j < chunk; j++ {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[j*8:])))
		}
		i += chunk
	}
	return out, nil
}

// readInt32s reads n little-endian int32s with the same incremental growth
// as readInt64s.
func readInt32s(r io.Reader, n int) ([]int32, error) {
	initial := n
	if initial > 1<<21 {
		initial = 1 << 21
	}
	out := make([]int32, 0, initial)
	buf := make([]byte, 4*8192)
	for i := 0; i < n; {
		chunk := n - i
		if chunk > 8192 {
			chunk = 8192
		}
		if _, err := io.ReadFull(r, buf[:chunk*4]); err != nil {
			return nil, err
		}
		for j := 0; j < chunk; j++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[j*4:])))
		}
		i += chunk
	}
	return out, nil
}

package graph_test

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"gapbench/internal/graph"
)

func graphsEqual(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() ||
		a.Directed() != b.Directed() || a.Weighted() != b.Weighted() {
		return false
	}
	for u := int32(0); u < a.NumNodes(); u++ {
		na, nb := a.OutNeighbors(u), b.OutNeighbors(u)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
		if a.Weighted() {
			wa, wb := a.OutWeights(u), b.OutWeights(u)
			for i := range wa {
				if wa[i] != wb[i] {
					return false
				}
			}
		}
		ia, ib := a.InNeighbors(u), b.InNeighbors(u)
		if len(ia) != len(ib) {
			return false
		}
		for i := range ia {
			if ia[i] != ib[i] {
				return false
			}
		}
	}
	return true
}

func TestSerializationRoundTrip(t *testing.T) {
	cases := []*graph.Graph{
		mustBuild(t, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, graph.BuildOptions{Directed: true}),
		mustBuild(t, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, graph.BuildOptions{Directed: false}),
		mustBuild(t, nil, graph.BuildOptions{NumNodes: 5}),
	}
	wg, err := graph.BuildWeighted([]graph.WEdge{{U: 0, V: 1, W: 42}, {U: 1, V: 0, W: 7}}, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, wg)

	for i, g := range cases {
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("case %d: Write: %v", i, err)
		}
		back, err := graph.ReadFrom(&buf)
		if err != nil {
			t.Fatalf("case %d: ReadFrom: %v", i, err)
		}
		if !graphsEqual(g, back) {
			t.Fatalf("case %d: round trip changed the graph", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := mustBuild(t, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, graph.BuildOptions{Directed: true})
	path := filepath.Join(t.TempDir(), "g.gapb")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := graph.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, back) {
		t.Fatal("file round trip changed the graph")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := graph.ReadFrom(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := graph.ReadFrom(bytes.NewReader([]byte("GAPB\x09\x00\x00\x00"))); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := graph.ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated payload.
	g := mustBuild(t, []graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{Directed: true})
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-4]
	if _, err := graph.ReadFrom(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated payload accepted")
	}
}

// Property: any random edge list survives a serialization round trip.
func TestSerializationProperty(t *testing.T) {
	f := func(raw []uint16, directed bool) bool {
		edges := make([]graph.WEdge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.WEdge{
				U: graph.NodeID(raw[i] % 64),
				V: graph.NodeID(raw[i+1] % 64),
				W: graph.Weight(raw[i]%255) + 1,
			})
		}
		g, err := graph.BuildWeighted(edges, graph.BuildOptions{NumNodes: 64, Directed: directed})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			return false
		}
		back, err := graph.ReadFrom(&buf)
		if err != nil {
			return false
		}
		return graphsEqual(g, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package graph

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"
)

// io_v2.go: the format-v2 serialized graph — the arena, on disk.
//
// Version 1 (io.go) is a stream: length-prefixed arrays, decoded element by
// element into fresh heap slices. Version 2 is a *map*: a fixed 256-byte
// header followed by the arena block verbatim, sections at the same
// 64-byte-aligned offsets layoutFor assigns in memory. Saving a built graph
// is therefore the header plus one contiguous write, and loading is a
// read-only mmap plus pointer arithmetic — O(header) work regardless of
// graph size, with no allocation proportional to the edge count.
//
// Header layout (little-endian, 256 bytes):
//
//	[0:4)    magic "GAPB"
//	[4:8)    version u32 = 2
//	[8:12)   flags u32 (bit0 directed, bit1 weighted, bit2 little-endian)
//	[12:16)  layout u32 (Layout)
//	[16:24)  n u64
//	[24:32)  mOut u64
//	[32:40)  mIn u64 (0 when undirected)
//	[40:44)  provenance: generator scale u32
//	[48:56)  provenance: generator seed u64
//	[56:72)  provenance: graph name, NUL-padded [16]byte
//	[72:216) six section records {fileOff u64, bytes u64, checksum u64}
//	[216:248) reserved (zero)
//	[248:256) headerSum u64 = hashBytes(header[0:248])
//
// The section records are redundant with (n, mOut, mIn, flags) — layoutFor
// derives them — and the loader exploits that: it recomputes the layout and
// requires the stored records to match exactly, so a file whose geometry
// disagrees with its own shape fields is rejected before anything is mapped.
// Per-section checksums use the graphguard hash (guard.go), which lets
// mmap-backed graphs Seal from the header instead of re-hashing gigabytes,
// and gives VerifyChecksums a content check that is independent of load.
//
// The body is mapped, not decoded, so format v2 is little-endian only; the
// flag bit exists so a hypothetical big-endian writer is detected rather
// than misread. v1 files remain fully readable through the copy path.

const (
	sgVersion   = 2
	provNameLen = 16

	// sgHeaderSize is a multiple of arenaAlign, so file section offsets
	// (header + arena offset) stay 64-byte aligned and mmap'd sections may
	// legally be viewed as []int64.
	sgHeaderSize = 256

	flagLittleEndian = 1 << 2

	offFlags     = 8
	offLayout    = 12
	offN         = 16
	offMOut      = 24
	offMIn       = 32
	offScale     = 40
	offSeed      = 48
	offName      = 56
	offSections  = 72 // 6 × {fileOff u64, bytes u64, checksum u64}
	offHeaderSum = 248
)

// hostLE reports whether this process runs little-endian. The v2 body is
// reinterpreted in place, so both the mmap and the copy path require it.
var hostLE = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// hashBytes chains the splitmix64 finalizer over 8-byte words (zero-padded
// tail). Order-dependent, like the array checksums in guard.go.
func hashBytes(b []byte) uint64 {
	h := uint64(len(b)) + 3
	for ; len(b) >= 8; b = b[8:] {
		h = mix64(h ^ binary.LittleEndian.Uint64(b))
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		h = mix64(h ^ binary.LittleEndian.Uint64(tail[:]))
	}
	return mix64(h)
}

// sectionSums computes the per-section checksums over the arena's typed
// views. Absent sections hash as empty (the checksum functions fold the
// length in, so "empty" is still a defined constant, not zero).
func (g *Graph) sectionSums() [numSections]uint64 {
	a := g.arena
	return [numSections]uint64{
		secOutIndex:  checksum64(a.int64s(secOutIndex)),
		secOutNeigh:  checksum32(a.int32s(secOutNeigh)),
		secOutWeight: checksum32(a.int32s(secOutWeight)),
		secInIndex:   checksum64(a.int64s(secInIndex)),
		secInNeigh:   checksum32(a.int32s(secInNeigh)),
		secInWeight:  checksum32(a.int32s(secInWeight)),
	}
}

// materializeArena ensures the graph's views live in one arena, copying them
// into a fresh heap arena if the graph was assembled from loose slices (the
// zero-value escape hatch tests use). Builders and loaders always produce
// arena-backed graphs, so this is normally a no-op.
func (g *Graph) materializeArena() {
	if g.arena != nil {
		return
	}
	mIn := int64(0)
	if g.directed {
		mIn = int64(len(g.inNeigh))
	}
	lay := layoutFor(g.n, int64(len(g.outNeigh)), mIn, g.directed, g.Weighted())
	a := newHeapArena(lay)
	copy(a.int64s(secOutIndex), g.outIndex)
	copy(a.int32s(secOutNeigh), g.outNeigh)
	copy(a.int32s(secOutWeight), g.outWeight)
	copy(a.int64s(secInIndex), g.inIndex)
	copy(a.int32s(secInNeigh), g.inNeigh)
	copy(a.int32s(secInWeight), g.inWeight)
	ng := graphFromArena(a, g.layout)
	g.outIndex, g.outNeigh, g.outWeight = ng.outIndex, ng.outNeigh, ng.outWeight
	g.inIndex, g.inNeigh, g.inWeight = ng.inIndex, ng.inNeigh, ng.inWeight
	g.arena = a
	if g.epoch == 0 {
		g.epoch = ng.epoch
	}
}

// encodeSGHeader builds the 256-byte v2 header for g's arena.
func (g *Graph) encodeSGHeader(sums [numSections]uint64) [sgHeaderSize]byte {
	a := g.arena
	le := binary.LittleEndian
	var h [sgHeaderSize]byte
	copy(h[0:4], fileMagic)
	le.PutUint32(h[4:], sgVersion)
	flags := uint32(flagLittleEndian)
	if g.directed {
		flags |= flagDirected
	}
	if g.Weighted() {
		flags |= flagWeighted
	}
	le.PutUint32(h[offFlags:], flags)
	le.PutUint32(h[offLayout:], uint32(g.layout))
	le.PutUint64(h[offN:], uint64(g.n))
	le.PutUint64(h[offMOut:], uint64(a.lay.mOut))
	le.PutUint64(h[offMIn:], uint64(a.lay.mIn))
	le.PutUint32(h[offScale:], g.provScale)
	le.PutUint64(h[offSeed:], g.provSeed)
	copy(h[offName:offName+provNameLen], g.provName)
	for sec := 0; sec < numSections; sec++ {
		base := offSections + sec*24
		le.PutUint64(h[base:], uint64(sgHeaderSize+a.lay.off[sec]))
		le.PutUint64(h[base+8:], uint64(a.lay.size[sec]))
		le.PutUint64(h[base+16:], sums[sec])
	}
	le.PutUint64(h[offHeaderSum:], hashBytes(h[:offHeaderSum]))
	return h
}

// WriteSG serializes the graph in format v2: header, then the arena block in
// one write. On success the graph's epoch becomes the header checksum — a
// content identity shared with every future load of these bytes — and the
// section checksums are retained for cheap sealing.
func (g *Graph) WriteSG(w io.Writer) error {
	if !hostLE {
		return fmt.Errorf("graph: format v2 requires a little-endian host")
	}
	g.materializeArena()
	sums := g.sectionSums()
	hdr := g.encodeSGHeader(sums)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(g.arena.data); err != nil {
		return err
	}
	g.hdrSums = &sums
	g.epoch = binary.LittleEndian.Uint64(hdr[offHeaderSum:])
	return nil
}

// SaveSG writes the graph to path in format v2.
func (g *Graph) SaveSG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteSG(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sgHeader is the decoded, validated v2 header.
type sgHeader struct {
	directed, weighted bool
	layout             Layout
	lay                arenaLayout
	sums               [numSections]uint64
	headerSum          uint64
	name               string
	scale              uint32
	seed               uint64
}

// parseSGHeader validates a v2 header: magic, version, checksum, flags,
// shape bounds, and exact agreement between the stored section records and
// the layout recomputed from the shape. Everything a load needs to trust the
// geometry, in O(header).
func parseSGHeader(h []byte) (*sgHeader, error) {
	if len(h) < sgHeaderSize {
		return nil, fmt.Errorf("graph: v2 header truncated (%d bytes)", len(h))
	}
	le := binary.LittleEndian
	if string(h[0:4]) != fileMagic {
		return nil, fmt.Errorf("graph: bad magic %q", h[0:4])
	}
	if v := le.Uint32(h[4:]); v != sgVersion {
		return nil, fmt.Errorf("graph: unsupported file version %d", v)
	}
	headerSum := le.Uint64(h[offHeaderSum:])
	if got := hashBytes(h[:offHeaderSum]); got != headerSum {
		return nil, fmt.Errorf("graph: v2 header checksum mismatch (computed %#x, stored %#x)", got, headerSum)
	}
	flags := le.Uint32(h[offFlags:])
	if flags&^(flagDirected|flagWeighted|flagLittleEndian) != 0 {
		return nil, fmt.Errorf("graph: unknown flags %#x", flags)
	}
	if flags&flagLittleEndian == 0 {
		return nil, fmt.Errorf("graph: big-endian v2 file not supported")
	}
	layoutU := le.Uint32(h[offLayout:])
	if layoutU > uint32(LayoutDegree) {
		return nil, fmt.Errorf("graph: unknown layout %d", layoutU)
	}
	n := le.Uint64(h[offN:])
	mOut := le.Uint64(h[offMOut:])
	mIn := le.Uint64(h[offMIn:])
	if err := validateArenaShape(int64(n), int64(mOut), int64(mIn)); err != nil {
		return nil, err
	}
	hd := &sgHeader{
		directed:  flags&flagDirected != 0,
		weighted:  flags&flagWeighted != 0,
		layout:    Layout(layoutU),
		headerSum: headerSum,
		scale:     le.Uint32(h[offScale:]),
		seed:      le.Uint64(h[offSeed:]),
	}
	if !hd.directed && mIn != 0 {
		return nil, fmt.Errorf("graph: undirected v2 file claims %d in-entries", mIn)
	}
	hd.lay = layoutFor(int32(n), int64(mOut), int64(mIn), hd.directed, hd.weighted)
	for sec := 0; sec < numSections; sec++ {
		base := offSections + sec*24
		off := le.Uint64(h[base:])
		size := le.Uint64(h[base+8:])
		if int64(off) != sgHeaderSize+hd.lay.off[sec] || int64(size) != hd.lay.size[sec] {
			return nil, fmt.Errorf("graph: v2 section %d record (off=%d size=%d) disagrees with shape (off=%d size=%d)",
				sec, off, size, sgHeaderSize+hd.lay.off[sec], hd.lay.size[sec])
		}
		hd.sums[sec] = le.Uint64(h[base+16:])
	}
	name := h[offName : offName+provNameLen]
	for i, c := range name {
		if c == 0 {
			name = name[:i]
			break
		}
	}
	hd.name = string(name)
	return hd, nil
}

// checkIndexEnds performs the O(1) structural checks a v2 load relies on:
// both index arrays must start at 0 and end at the claimed entry counts.
// Interior monotonicity is covered by the section checksums (for integrity)
// rather than a scan — the point of the mmap path is to touch no pages
// proportional to the graph.
func checkIndexEnds(g *Graph, lay arenaLayout) error {
	if g.outIndex[0] != 0 || g.outIndex[lay.n] != lay.mOut {
		return fmt.Errorf("graph: v2 out-index ends %d..%d, want 0..%d", g.outIndex[0], g.outIndex[lay.n], lay.mOut)
	}
	if lay.directed {
		if g.inIndex[0] != 0 || g.inIndex[lay.n] != lay.mIn {
			return fmt.Errorf("graph: v2 in-index ends %d..%d, want 0..%d", g.inIndex[0], g.inIndex[lay.n], lay.mIn)
		}
	}
	return nil
}

// loadSG maps an open format-v2 file read-only and assembles a Graph over
// the mapping. Validation is O(header): header checksum, geometry agreement,
// file size, and the index endpoints. No section byte is copied, and none is
// even faulted in until a kernel touches it.
func loadSG(f *os.File, size int64) (*Graph, error) {
	if !hostLE {
		return nil, fmt.Errorf("graph: format v2 requires a little-endian host")
	}
	var h [sgHeaderSize]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		return nil, fmt.Errorf("graph: reading v2 header: %w", err)
	}
	hd, err := parseSGHeader(h[:])
	if err != nil {
		return nil, err
	}
	if want := sgHeaderSize + hd.lay.total; size != want {
		return nil, fmt.Errorf("graph: file is %d bytes, header describes %d", size, want)
	}
	m, err := mmapFile(f, size)
	if err != nil {
		return nil, err
	}
	a := &Arena{lay: hd.lay, data: m[sgHeaderSize:], mapped: m}
	g := graphFromArena(a, hd.layout)
	if err := checkIndexEnds(g, hd.lay); err != nil {
		a.close()
		return nil, err
	}
	sums := hd.sums
	g.hdrSums = &sums
	g.epoch = hd.headerSum
	g.provName, g.provScale, g.provSeed = hd.name, hd.scale, hd.seed
	return g, nil
}

// readSGFrom is the stream (copy) path for format v2, used by ReadFrom when
// the source is not a mappable file. The caller has already consumed the
// 8-byte magic+version prefix; rest is the remainder of the stream. Since
// the copy already pays O(bytes), this path also verifies every section
// checksum and the full CSR structure, making it the strict reader v1 users
// expect.
func readSGFrom(rest io.Reader, prefix [8]byte) (*Graph, error) {
	if !hostLE {
		return nil, fmt.Errorf("graph: format v2 requires a little-endian host")
	}
	var h [sgHeaderSize]byte
	copy(h[:8], prefix[:])
	if _, err := io.ReadFull(rest, h[8:]); err != nil {
		return nil, fmt.Errorf("graph: reading v2 header: %w", err)
	}
	hd, err := parseSGHeader(h[:])
	if err != nil {
		return nil, err
	}
	a := newHeapArena(hd.lay)
	if _, err := io.ReadFull(rest, a.data); err != nil {
		return nil, fmt.Errorf("graph: reading v2 body: %w", err)
	}
	g := graphFromArena(a, hd.layout)
	sums := hd.sums
	g.hdrSums = &sums
	g.epoch = hd.headerSum
	g.provName, g.provScale, g.provSeed = hd.name, hd.scale, hd.seed
	if err := g.VerifyChecksums(); err != nil {
		return nil, err
	}
	if err := validateCSR(hd.lay.n, "out", g.outIndex, g.outNeigh, g.outWeight); err != nil {
		return nil, err
	}
	if hd.directed {
		if err := validateCSR(hd.lay.n, "in", g.inIndex, g.inNeigh, g.inWeight); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// VerifyChecksums recomputes the per-section checksums and compares them to
// the ones recorded in the graph's v2 header. It returns nil for graphs that
// never met a v2 file (nothing recorded to verify). Unlike the O(header)
// load validation, this reads every byte — it is the deep content check the
// differential tests and the graphguard seal tests lean on.
func (g *Graph) VerifyChecksums() error {
	if g == nil || g.hdrSums == nil || g.arena == nil {
		return nil
	}
	now := g.sectionSums()
	for sec, want := range *g.hdrSums {
		if now[sec] != want {
			return fmt.Errorf("graph: section %d checksum mismatch (computed %#x, header %#x)", sec, now[sec], want)
		}
	}
	return nil
}

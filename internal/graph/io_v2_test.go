package graph_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"gapbench/internal/graph"
)

// sgCases builds the format-v2 round-trip corpus: every combination of
// direction and weights, plus empty and degree-relabeled graphs.
func sgCases(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	wg, err := graph.BuildWeighted([]graph.WEdge{
		{U: 0, V: 1, W: 3}, {U: 0, V: 2, W: 1}, {U: 1, V: 2, W: 5},
		{U: 2, V: 3, W: 2}, {U: 3, V: 0, W: 4}, {U: 3, V: 1, W: 9},
	}, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	uwg, err := graph.BuildWeighted([]graph.WEdge{
		{U: 0, V: 1, W: 7}, {U: 1, V: 2, W: 2}, {U: 2, V: 0, W: 1},
	}, graph.BuildOptions{Directed: false})
	if err != nil {
		t.Fatal(err)
	}
	deg, err := graph.Build([]graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2},
	}, graph.BuildOptions{Directed: true, Layout: graph.LayoutDegree})
	if err != nil {
		t.Fatal(err)
	}
	emptyW, err := graph.BuildWeighted(nil, graph.BuildOptions{NumNodes: 3, Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"directed":   mustBuild(t, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, graph.BuildOptions{Directed: true}),
		"undirected": mustBuild(t, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, graph.BuildOptions{}),
		"weighted":   wg,
		"uweighted":  uwg,
		"degree":     deg,
		"empty":      mustBuild(t, nil, graph.BuildOptions{NumNodes: 5}),
		"emptyW":     emptyW,
	}
}

func TestSGRoundTripStream(t *testing.T) {
	for name, g := range sgCases(t) {
		g.SetProvenance(name, 4, 27)
		var buf bytes.Buffer
		if err := g.WriteSG(&buf); err != nil {
			t.Fatalf("%s: WriteSG: %v", name, err)
		}
		back, err := graph.ReadFrom(&buf)
		if err != nil {
			t.Fatalf("%s: ReadFrom: %v", name, err)
		}
		if !graphsEqual(g, back) {
			t.Fatalf("%s: v2 stream round trip changed the graph", name)
		}
		if back.Layout() != g.Layout() {
			t.Errorf("%s: layout %v -> %v", name, g.Layout(), back.Layout())
		}
		if back.Epoch() != g.Epoch() {
			t.Errorf("%s: epoch %#x -> %#x", name, g.Epoch(), back.Epoch())
		}
		if pn, ps, pd := back.Provenance(); pn != name || ps != 4 || pd != 27 {
			t.Errorf("%s: provenance = (%q,%d,%d)", name, pn, ps, pd)
		}
	}
}

func TestSGRoundTripMmap(t *testing.T) {
	dir := t.TempDir()
	for name, g := range sgCases(t) {
		path := filepath.Join(dir, name+".sg")
		if err := g.SaveSG(path); err != nil {
			t.Fatalf("%s: SaveSG: %v", name, err)
		}
		back, err := graph.Load(path)
		if err != nil {
			t.Fatalf("%s: Load: %v", name, err)
		}
		if !back.Arena().Mapped() {
			t.Errorf("%s: loaded v2 graph is not mmap-backed", name)
		}
		if !graphsEqual(g, back) {
			t.Fatalf("%s: mmap round trip changed the graph", name)
		}
		if back.Epoch() != g.Epoch() {
			t.Errorf("%s: epoch %#x -> %#x", name, g.Epoch(), back.Epoch())
		}
		if err := back.VerifyChecksums(); err != nil {
			t.Errorf("%s: VerifyChecksums: %v", name, err)
		}
		if err := back.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
	}
}

// saveSample writes one small weighted directed graph and returns its bytes.
func saveSample(t *testing.T) (string, []byte) {
	t.Helper()
	g := sgCases(t)["weighted"]
	path := filepath.Join(t.TempDir(), "g.sg")
	if err := g.SaveSG(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

// TestSGHeaderCorruption flips every header byte in turn: each flip must make
// Load fail cleanly (the header checksum covers bytes [0,248), and flipping
// the stored checksum itself breaks the comparison), and must never panic.
func TestSGHeaderCorruption(t *testing.T) {
	path, raw := saveSample(t)
	for off := 0; off < 256; off++ {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := graph.Load(path); err == nil {
			t.Fatalf("flipped header byte %d accepted", off)
		}
		if _, err := graph.ReadFrom(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipped header byte %d accepted by stream reader", off)
		}
	}
}

func TestSGTruncation(t *testing.T) {
	path, raw := saveSample(t)
	for _, n := range []int{0, 3, 8, 100, 255, 256, len(raw) - 1} {
		if err := os.WriteFile(path, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := graph.Load(path); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
		if _, err := graph.ReadFrom(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted by stream reader", n)
		}
	}
	// Trailing garbage must be rejected too: the header states the exact size.
	if err := os.WriteFile(path, append(append([]byte(nil), raw...), 0), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := graph.Load(path); err == nil {
		t.Error("oversized file accepted")
	}
}

// TestSGBodyCorruption flips a neighbor byte: the O(header) mmap load cannot
// see it (by design), but VerifyChecksums must, and the strict stream reader
// must reject the file outright.
func TestSGBodyCorruption(t *testing.T) {
	path, raw := saveSample(t)
	bad := append([]byte(nil), raw...)
	bad[256+64] ^= 1 // first byte of the outNeigh section
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Load(path)
	if err != nil {
		t.Fatalf("Load after body flip: %v (mmap load should defer content checks)", err)
	}
	if err := g.VerifyChecksums(); err == nil {
		t.Error("VerifyChecksums missed a flipped neighbor byte")
	}
	if err := g.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := graph.ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("stream reader accepted a flipped neighbor byte")
	}
}

func TestSGMmapCloseThenUsePanics(t *testing.T) {
	path, _ := saveSample(t)
	g, err := graph.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("use after Close did not panic")
		}
	}()
	_ = g.OutNeighbors(0)
}

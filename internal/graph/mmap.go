package graph

import (
	"fmt"
	"os"
	"syscall"
)

// mmap.go: the thin OS boundary of the arena's mmap backend. Maps are
// read-only (PROT_READ) and shared (MAP_SHARED) — a format-v2 graph file is
// immutable once written, so every process benchmarking the same input
// shares one page-cache copy, which is the point: gapd restarts and
// chaos/resume re-runs reload multi-gigabyte graphs in O(header) with no
// private dirty pages.

// mmapFile maps length bytes of f read-only. The caller owns the returned
// slice and must release it with munmapBytes; the file descriptor itself may
// be closed immediately (the mapping keeps the pages alive).
func mmapFile(f *os.File, length int64) ([]byte, error) {
	if length <= 0 {
		return nil, fmt.Errorf("graph: mmap length %d out of range", length)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(length), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", f.Name(), err)
	}
	return b, nil
}

// munmapBytes releases a mapping created by mmapFile.
func munmapBytes(b []byte) error {
	if b == nil {
		return nil
	}
	if err := syscall.Munmap(b); err != nil {
		return fmt.Errorf("graph: munmap: %w", err)
	}
	return nil
}

package graph

import "sync/atomic"

// SlidingQueue is the GAP reference's frontier container: a single backing
// array holding the current frontier as a window [head, tail) while the next
// frontier is appended concurrently after tail. SlideWindow advances the
// window so the appended elements become the new frontier, with no copying.
type SlidingQueue struct {
	buf   []NodeID
	head  int64
	tail  int64 // start of the in-progress next window
	next  atomic.Int64
	limit int64
}

// NewSlidingQueue returns a queue able to hold capacity ids in total across
// all windows (for BFS this is NumNodes: each vertex enters at most once).
func NewSlidingQueue(capacity int64) *SlidingQueue {
	return &SlidingQueue{buf: make([]NodeID, capacity), limit: capacity}
}

// PushBack appends one id to the next window without synchronization.
func (q *SlidingQueue) PushBack(v NodeID) {
	i := q.next.Load()
	q.buf[i] = v
	q.next.Store(i + 1)
}

// Reserve atomically claims room for count appends and returns the first
// index of the claimed block; the caller fills buf[idx:idx+count] via Write.
// This is how per-thread local buffers are flushed into the shared frontier.
func (q *SlidingQueue) Reserve(count int64) int64 {
	return q.next.Add(count) - count
}

// Write stores v at an index previously claimed with Reserve.
func (q *SlidingQueue) Write(idx int64, v NodeID) { q.buf[idx] = v }

// SlideWindow makes everything appended since the last slide the current
// frontier.
func (q *SlidingQueue) SlideWindow() {
	q.head = q.tail
	q.tail = q.next.Load()
}

// Empty reports whether the current frontier window is empty.
func (q *SlidingQueue) Empty() bool { return q.head == q.tail }

// Size returns the number of ids in the current frontier window.
func (q *SlidingQueue) Size() int64 { return q.tail - q.head }

// Frontier returns the current window. The slice aliases queue storage.
func (q *SlidingQueue) Frontier() []NodeID { return q.buf[q.head:q.tail] }

// Reset empties the queue entirely (all windows).
func (q *SlidingQueue) Reset() {
	q.head, q.tail = 0, 0
	q.next.Store(0)
}

package graph

import (
	"cmp"
	"slices"

	"gapbench/internal/par"
)

// DegreeRelabel returns a copy of g with vertices renumbered in decreasing
// out-degree order, plus the permutation used (perm[old] = new). Triangle
// counting implementations relabel this way so that each edge is oriented
// from the lower-degree endpoint toward the higher-degree one, shrinking the
// intersection search space; the GAP rules require the relabeling time to be
// counted unless the Optimized rule set is in effect.
//
// Degrees are bounded by n, so the ordering is a counting sort — histogram
// over (maxDegree - degree), exclusive scan, stable scatter — O(n + maxdeg)
// instead of the comparison sort's O(n log n). The scatter's stability is the
// determinism guarantee the old stable sort provided: vertices are walked in
// id order, so equal-degree vertices keep ascending ids.
func DegreeRelabel(g *Graph) (*Graph, []NodeID) {
	n := g.NumNodes()
	perm := make([]NodeID, n)
	if n > 0 {
		maxDeg := par.ReduceMaxInt64(int(n), 0, func(lo, hi int) int64 {
			var mx int64
			for u := lo; u < hi; u++ {
				if d := g.OutDegree(NodeID(u)); d > mx {
					mx = d
				}
			}
			return mx
		})
		// Bin b holds degree maxDeg-b, so ascending bins are descending
		// degrees and the scatter position is directly the new vertex id.
		h := par.ShardedHistogram(int(n), int(maxDeg)+1, 0, func(i int) int {
			return int(maxDeg - g.OutDegree(NodeID(i)))
		})
		h.Scatter(func(i int, pos int64) { perm[i] = NodeID(pos) })
	}
	return ApplyPermutation(g, perm), perm
}

// ApplyPermutation renumbers g's vertices: vertex old becomes perm[old]. The
// permutation must be a bijection on [0, n).
func ApplyPermutation(g *Graph, perm []NodeID) *Graph {
	n := g.NumNodes()
	outIndex, outNeigh, outWeight := permuteCSR(g, perm, false)
	ng := &Graph{
		n: n, directed: g.directed,
		outIndex: outIndex, outNeigh: outNeigh, outWeight: outWeight,
	}
	if g.directed {
		ng.inIndex, ng.inNeigh, ng.inWeight = permuteCSR(g, perm, true)
	} else {
		ng.inIndex, ng.inNeigh, ng.inWeight = outIndex, outNeigh, outWeight
	}
	return ng
}

// permuteCSR rebuilds one CSR side (out or in) under the permutation, keeping
// adjacency sorted.
func permuteCSR(g *Graph, perm []NodeID, in bool) ([]int64, []NodeID, []Weight) {
	n := g.NumNodes()
	degree := func(u NodeID) int64 {
		if in {
			return g.InDegree(u)
		}
		return g.OutDegree(u)
	}
	neighbors := func(u NodeID) []NodeID {
		if in {
			return g.InNeighbors(u)
		}
		return g.OutNeighbors(u)
	}
	weights := func(u NodeID) []Weight {
		if in {
			return g.InWeights(u)
		}
		return g.OutWeights(u)
	}

	index := make([]int64, n+1)
	for old := int32(0); old < n; old++ {
		index[perm[old]+1] = degree(old)
	}
	for i := int32(0); i < n; i++ {
		index[i+1] += index[i]
	}
	neigh := make([]NodeID, index[n])
	var weight []Weight
	hasW := g.Weighted()
	if hasW {
		weight = make([]Weight, index[n])
	}
	par.For(int(n), 0, func(oldInt int) {
		old := NodeID(oldInt)
		base := index[perm[old]]
		ns := neighbors(old)
		var ws []Weight
		if hasW {
			ws = weights(old)
		}
		type pair struct {
			v NodeID
			w Weight
		}
		row := make([]pair, len(ns))
		for i, v := range ns {
			w := Weight(0)
			if hasW {
				w = ws[i]
			}
			row[i] = pair{perm[v], w}
		}
		// Rows are duplicate-free, so ordering by the renamed neighbor alone
		// is total; SortFunc avoids sort.Slice's reflection-based swaps.
		slices.SortFunc(row, func(a, b pair) int { return cmp.Compare(a.v, b.v) })
		for i, p := range row {
			neigh[base+int64(i)] = p.v
			if hasW {
				weight[base+int64(i)] = p.w
			}
		}
	})
	return index, neigh, weight
}

package graph

import (
	"cmp"
	"slices"

	"gapbench/internal/par"
)

// DegreeRelabel returns a copy of g with vertices renumbered in decreasing
// out-degree order, plus the permutation used (perm[old] = new). Triangle
// counting implementations relabel this way so that each edge is oriented
// from the lower-degree endpoint toward the higher-degree one, shrinking the
// intersection search space; the GAP rules require the relabeling time to be
// counted unless the Optimized rule set is in effect.
//
// Degrees are bounded by n, so the ordering is a counting sort — histogram
// over (maxDegree - degree), exclusive scan, stable scatter — O(n + maxdeg)
// instead of the comparison sort's O(n log n). The scatter's stability is the
// determinism guarantee the old stable sort provided: vertices are walked in
// id order, so equal-degree vertices keep ascending ids.
func DegreeRelabel(g *Graph) (*Graph, []NodeID) {
	n := g.NumNodes()
	perm := make([]NodeID, n)
	if n > 0 {
		maxDeg := par.ReduceMaxInt64(int(n), 0, func(lo, hi int) int64 {
			var mx int64
			for u := lo; u < hi; u++ {
				if d := g.OutDegree(NodeID(u)); d > mx {
					mx = d
				}
			}
			return mx
		})
		// Bin b holds degree maxDeg-b, so ascending bins are descending
		// degrees and the scatter position is directly the new vertex id.
		h := par.ShardedHistogram(int(n), int(maxDeg)+1, 0, func(i int) int {
			return int(maxDeg - g.OutDegree(NodeID(i)))
		})
		h.Scatter(func(i int, pos int64) { perm[i] = NodeID(pos) })
	}
	return applyPermutation(g, perm, LayoutDegree), perm
}

// ApplyPermutation renumbers g's vertices: vertex old becomes perm[old]. The
// permutation must be a bijection on [0, n).
func ApplyPermutation(g *Graph, perm []NodeID) *Graph {
	return applyPermutation(g, perm, g.layout)
}

// applyPermutation rebuilds both CSR sides under the permutation into a
// fresh storage arena stamped with the given layout tag.
func applyPermutation(g *Graph, perm []NodeID, layout Layout) *Graph {
	n := g.NumNodes()
	mIn := int64(0)
	if g.directed {
		mIn = int64(len(g.inNeigh))
	}
	a := newHeapArena(layoutFor(n, g.NumEdges(), mIn, g.directed, g.Weighted()))
	permuteCSR(g, perm, false, a.int64s(secOutIndex), a.int32s(secOutNeigh), a.int32s(secOutWeight))
	if g.directed {
		permuteCSR(g, perm, true, a.int64s(secInIndex), a.int32s(secInNeigh), a.int32s(secInWeight))
	}
	return graphFromArena(a, layout)
}

// permuteCSR rebuilds one CSR side (out or in) under the permutation into
// the provided arena views, keeping adjacency sorted. weight is nil for
// unweighted (or empty) graphs.
func permuteCSR(g *Graph, perm []NodeID, in bool, index []int64, neigh []NodeID, weight []Weight) {
	n := g.NumNodes()
	degree := func(u NodeID) int64 {
		if in {
			return g.InDegree(u)
		}
		return g.OutDegree(u)
	}
	neighbors := func(u NodeID) []NodeID {
		if in {
			return g.InNeighbors(u)
		}
		return g.OutNeighbors(u)
	}
	weights := func(u NodeID) []Weight {
		if in {
			return g.InWeights(u)
		}
		return g.OutWeights(u)
	}

	for old := int32(0); old < n; old++ {
		index[perm[old]+1] = degree(old)
	}
	for i := int32(0); i < n; i++ {
		index[i+1] += index[i]
	}
	hasW := g.Weighted() && weight != nil
	par.For(int(n), 0, func(oldInt int) {
		old := NodeID(oldInt)
		base := index[perm[old]]
		ns := neighbors(old)
		var ws []Weight
		if hasW {
			ws = weights(old)
		}
		type pair struct {
			v NodeID
			w Weight
		}
		row := make([]pair, len(ns))
		for i, v := range ns {
			w := Weight(0)
			if hasW {
				w = ws[i]
			}
			row[i] = pair{perm[v], w}
		}
		// Rows are duplicate-free, so ordering by the renamed neighbor alone
		// is total; SortFunc avoids sort.Slice's reflection-based swaps.
		slices.SortFunc(row, func(a, b pair) int { return cmp.Compare(a.v, b.v) })
		for i, p := range row {
			neigh[base+int64(i)] = p.v
			if hasW {
				weight[base+int64(i)] = p.w
			}
		}
	})
}

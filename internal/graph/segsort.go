package graph

import "slices"

// segsort.go: the per-vertex segment sort used by the counting-sort ingest
// pipeline. After the stable scatter groups edges by source vertex, each
// adjacency segment is sorted independently — rows are short on every GAP
// shape (average degree 16-38, heavy-tail hubs excepted), so an insertion
// sort with a quicksort fallback beats a general-purpose sort's dispatch
// overhead, and the weighted variant co-sorts the parallel weight array
// without materializing (neighbor, weight) pair structs.

// sortRowThreshold is the segment length at or below which insertion sort
// runs directly; above it quicksort partitions first. 24 matches the stdlib
// pdqsort's small-slice cutoff neighborhood.
const sortRowThreshold = 24

// sortRow sorts one adjacency segment in place. With ws == nil it orders
// neighbors ascending; otherwise it orders (neighbor, weight)
// lexicographically, keeping ws parallel to vs — the order the min-weight
// deduplication pass depends on (the first entry of a neighbor run carries
// the minimum weight).
func sortRow(vs []NodeID, ws []Weight) {
	if ws == nil {
		slices.Sort(vs)
		return
	}
	sortRowW(vs, ws)
}

// sortRowW is the weighted co-sort: quicksort on (v, w) keys with
// median-of-three pivoting, falling back to insertion sort on short runs.
func sortRowW(vs []NodeID, ws []Weight) {
	for len(vs) > sortRowThreshold {
		p := partitionRow(vs, ws)
		// Recurse into the smaller half, loop on the larger: O(log n) stack.
		if p < len(vs)-p-1 {
			sortRowW(vs[:p], ws[:p])
			vs, ws = vs[p+1:], ws[p+1:]
		} else {
			sortRowW(vs[p+1:], ws[p+1:])
			vs, ws = vs[:p], ws[:p]
		}
	}
	insertRow(vs, ws)
}

// rowLess orders (v1,w1) before (v2,w2) lexicographically.
func rowLess(v1 NodeID, w1 Weight, v2 NodeID, w2 Weight) bool {
	return v1 < v2 || (v1 == v2 && w1 < w2)
}

// insertRow is insertion sort over the paired arrays.
func insertRow(vs []NodeID, ws []Weight) {
	for i := 1; i < len(vs); i++ {
		v, w := vs[i], ws[i]
		j := i - 1
		for j >= 0 && rowLess(v, w, vs[j], ws[j]) {
			vs[j+1], ws[j+1] = vs[j], ws[j]
			j--
		}
		vs[j+1], ws[j+1] = v, w
	}
}

// partitionRow is a Hoare-style partition with a median-of-three pivot moved
// to the end; it returns the pivot's final position.
func partitionRow(vs []NodeID, ws []Weight) int {
	hi := len(vs) - 1
	mid := hi / 2
	// Order vs[0], vs[mid], vs[hi] so the median lands at mid.
	if rowLess(vs[mid], ws[mid], vs[0], ws[0]) {
		vs[0], vs[mid] = vs[mid], vs[0]
		ws[0], ws[mid] = ws[mid], ws[0]
	}
	if rowLess(vs[hi], ws[hi], vs[0], ws[0]) {
		vs[0], vs[hi] = vs[hi], vs[0]
		ws[0], ws[hi] = ws[hi], ws[0]
	}
	if rowLess(vs[hi], ws[hi], vs[mid], ws[mid]) {
		vs[mid], vs[hi] = vs[hi], vs[mid]
		ws[mid], ws[hi] = ws[hi], ws[mid]
	}
	vs[mid], vs[hi] = vs[hi], vs[mid]
	ws[mid], ws[hi] = ws[hi], ws[mid]
	pv, pw := vs[hi], ws[hi]
	at := 0
	for i := 0; i < hi; i++ {
		if rowLess(vs[i], ws[i], pv, pw) {
			vs[at], vs[i] = vs[i], vs[at]
			ws[at], ws[i] = ws[i], ws[at]
			at++
		}
	}
	vs[at], vs[hi] = vs[hi], vs[at]
	ws[at], ws[hi] = ws[hi], ws[at]
	return at
}

package graph

import (
	"cmp"
	"math"
	"slices"
)

// DegreeDistribution classifies a graph's out-degree distribution the way the
// paper's Table I does.
type DegreeDistribution string

// Degree distribution classes from Table I.
const (
	DistBounded DegreeDistribution = "bounded" // road networks: max degree is a small constant
	DistPower   DegreeDistribution = "power"   // social/web/Kronecker: heavy tail
	DistNormal  DegreeDistribution = "normal"  // Erdős–Rényi: concentrated around the mean
)

// Stats summarizes a graph with the properties reported in Table I.
type Stats struct {
	NumNodes       int32
	NumEdges       int64 // undirected-sense edge count
	Directed       bool
	AvgDegree      float64
	MaxDegree      int64
	Distribution   DegreeDistribution
	ApproxDiameter int64
}

// ComputeStats derives Table I-style properties. The diameter is a lower
// bound found by repeated double-sweep BFS (exact diameters on these graph
// sizes are infeasible, and Table I itself reports approximations).
func ComputeStats(g *Graph) Stats {
	s := Stats{
		NumNodes: g.NumNodes(),
		NumEdges: g.NumEdgesUndirected(),
		Directed: g.Directed(),
	}
	if g.NumNodes() == 0 {
		return s
	}
	s.AvgDegree = float64(g.NumEdgesUndirected()) / float64(g.NumNodes())
	for u := int32(0); u < g.NumNodes(); u++ {
		if d := g.OutDegree(u); d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	s.Distribution = ClassifyDegrees(g)
	s.ApproxDiameter = ApproxDiameter(g, 4)
	return s
}

// ClassifyDegrees buckets the out-degree distribution into the three classes
// Table I uses. The discriminators follow the sampling heuristic the paper
// attributes to Galois and GAP: a heavy tail (max degree far above average)
// means power law; a small constant max degree means bounded; otherwise the
// distribution is concentrated (normal).
func ClassifyDegrees(g *Graph) DegreeDistribution {
	n := g.NumNodes()
	if n == 0 {
		return DistBounded
	}
	// For directed graphs classify on total (in+out) degree: a social or web
	// graph's heavy tail lives in its in-degree (followers, inbound links).
	degree := func(u NodeID) int64 {
		d := g.OutDegree(u)
		if g.Directed() {
			d += g.InDegree(u)
		}
		return d
	}
	var total int64
	var maxDeg int64
	for u := int32(0); u < n; u++ {
		d := degree(u)
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(total) / float64(n)
	var sumSq float64
	for u := int32(0); u < n; u++ {
		diff := float64(degree(u)) - avg
		sumSq += diff * diff
	}
	cv := 0.0
	if avg > 0 {
		cv = math.Sqrt(sumSq/float64(n)) / avg
	}
	// Median via a deterministic sample (exact enough for classification).
	sample := make([]int64, 0, 1024)
	x := uint64(0x1234567887654321)
	for i := 0; i < 1024; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		sample = append(sample, degree(NodeID((x>>17)%uint64(n))))
	}
	slices.Sort(sample)
	median := float64(sample[len(sample)/2])

	switch {
	case maxDeg <= 24 && avg <= 12:
		return DistBounded
	// A heavy tail shows up either as a large coefficient of variation or
	// as a maximum degree far above the median (hub pages, celebrities).
	case cv > 1.5 || float64(maxDeg) > 8*median:
		return DistPower
	default:
		return DistNormal
	}
}

// ApproxDiameter lower-bounds the diameter with the classic double-sweep
// heuristic, restarted `sweeps` times from the farthest vertex found so far.
// Directed graphs are swept over the union of out- and in-adjacency (the
// paper's diameters are for the underlying undirected structure).
func ApproxDiameter(g *Graph, sweeps int) int64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	depth := make([]int32, n)
	// Start from the highest-degree vertex: on power-law graphs this lands in
	// the core immediately, and on meshes it is as good as any start.
	start := NodeID(0)
	var best int64 = -1
	for u := int32(0); u < n; u++ {
		if d := g.OutDegree(u); d > best {
			best, start = d, u
		}
	}
	var ecc int64
	for s := 0; s < sweeps; s++ {
		far, e := bfsEccentricity(g, start, depth)
		if e > ecc {
			ecc = e
		}
		if far == start {
			break
		}
		start = far
	}
	return ecc
}

// bfsEccentricity runs an undirected-sense BFS from src, returning the last
// vertex reached and its depth. The scratch slice is reused across sweeps.
func bfsEccentricity(g *Graph, src NodeID, depth []int32) (NodeID, int64) {
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := make([]NodeID, 0, 1024)
	queue = append(queue, src)
	last, lastDepth := src, int64(0)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := depth[u]
		visit := func(v NodeID) {
			if depth[v] < 0 {
				depth[v] = du + 1
				if int64(du+1) > lastDepth {
					lastDepth, last = int64(du+1), v
				}
				queue = append(queue, v)
			}
		}
		for _, v := range g.OutNeighbors(u) {
			visit(v)
		}
		if g.Directed() {
			for _, v := range g.InNeighbors(u) {
				visit(v)
			}
		}
	}
	return last, lastDepth
}

// DegreeHistogram returns (degree, count) pairs sorted by degree, for
// plotting or distribution tests.
func DegreeHistogram(g *Graph) [][2]int64 {
	counts := map[int64]int64{}
	for u := int32(0); u < g.NumNodes(); u++ {
		counts[g.OutDegree(u)]++
	}
	out := make([][2]int64, 0, len(counts))
	for d, c := range counts {
		out = append(out, [2]int64{d, c})
	}
	slices.SortFunc(out, func(a, b [2]int64) int { return cmp.Compare(a[0], b[0]) })
	return out
}

// SkewedDegrees is a sampling heuristic shared by the triangle-counting
// implementations: it reports whether the degree distribution is skewed
// enough that degree relabeling is likely to pay for itself. It samples up
// to 1000 vertex degrees with a fixed probe sequence and reports true when
// the graph is dense enough to matter (average degree >= 10) and the sample
// mean exceeds 1.3x the sample median — the GAP reference's
// WorthRelabelling test.
func SkewedDegrees(g *Graph) bool {
	n := int64(g.NumNodes())
	if n == 0 {
		return false
	}
	if g.NumEdges()/n < 10 {
		return false
	}
	const samples = 1000
	degrees := make([]int64, 0, samples)
	x := uint64(0xdeadbeefcafef00d)
	for i := 0; i < samples; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		degrees = append(degrees, g.OutDegree(NodeID((x>>17)%uint64(n))))
	}
	slices.Sort(degrees)
	median := degrees[len(degrees)/2]
	var sum int64
	for _, d := range degrees {
		sum += d
	}
	mean := float64(sum) / float64(len(degrees))
	return mean/1.3 > float64(median)
}

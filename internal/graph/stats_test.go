package graph_test

import (
	"testing"

	"gapbench/internal/graph"
)

func TestApproxDiameterPath(t *testing.T) {
	// Path of 10 vertices: diameter exactly 9.
	var edges []graph.Edge
	for i := int32(0); i < 9; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	g := mustBuild(t, edges, graph.BuildOptions{Directed: false})
	if d := graph.ApproxDiameter(g, 4); d != 9 {
		t.Fatalf("path diameter = %d, want 9", d)
	}
}

func TestApproxDiameterStarAndClique(t *testing.T) {
	var star []graph.Edge
	for i := int32(1); i < 8; i++ {
		star = append(star, graph.Edge{U: 0, V: i})
	}
	g := mustBuild(t, star, graph.BuildOptions{Directed: false})
	if d := graph.ApproxDiameter(g, 4); d != 2 {
		t.Fatalf("star diameter = %d, want 2", d)
	}
	var clique []graph.Edge
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			clique = append(clique, graph.Edge{U: i, V: j})
		}
	}
	k := mustBuild(t, clique, graph.BuildOptions{Directed: false})
	if d := graph.ApproxDiameter(k, 4); d != 1 {
		t.Fatalf("clique diameter = %d, want 1", d)
	}
}

func TestApproxDiameterDirectedUsesBothDirections(t *testing.T) {
	// Directed path 0->1->2: undirected-sense diameter is 2 even though
	// nothing reaches 0 along edges.
	g := mustBuild(t, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, graph.BuildOptions{Directed: true})
	if d := graph.ApproxDiameter(g, 4); d != 2 {
		t.Fatalf("directed path diameter = %d, want 2", d)
	}
}

func TestClassifyDegreesClasses(t *testing.T) {
	// Bounded: a cycle (every degree 2).
	var cycle []graph.Edge
	for i := int32(0); i < 100; i++ {
		cycle = append(cycle, graph.Edge{U: i, V: (i + 1) % 100})
	}
	g := mustBuild(t, cycle, graph.BuildOptions{Directed: false})
	if got := graph.ClassifyDegrees(g); got != graph.DistBounded {
		t.Errorf("cycle classified as %s, want bounded", got)
	}

	// Power: a big star plus a cycle (hub degree >> median), dense enough
	// to clear the bounded gate.
	var star []graph.Edge
	for i := int32(1); i < 400; i++ {
		star = append(star, graph.Edge{U: 0, V: i})
		star = append(star, graph.Edge{U: i, V: i%20 + 1})
		star = append(star, graph.Edge{U: i, V: i%30 + 2})
	}
	h := mustBuild(t, star, graph.BuildOptions{Directed: false})
	if got := graph.ClassifyDegrees(h); got != graph.DistPower {
		t.Errorf("hub graph classified as %s, want power", got)
	}
}

func TestComputeStats(t *testing.T) {
	g := mustBuild(t, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, graph.BuildOptions{Directed: false})
	s := graph.ComputeStats(g)
	if s.NumNodes != 4 || s.NumEdges != 3 {
		t.Fatalf("stats n=%d m=%d", s.NumNodes, s.NumEdges)
	}
	if s.ApproxDiameter != 3 {
		t.Fatalf("diameter = %d, want 3", s.ApproxDiameter)
	}
	if s.MaxDegree != 2 {
		t.Fatalf("max degree = %d, want 2", s.MaxDegree)
	}
	empty := mustBuild(t, nil, graph.BuildOptions{})
	es := graph.ComputeStats(empty)
	if es.NumNodes != 0 {
		t.Fatal("empty graph stats wrong")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := mustBuild(t, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}}, graph.BuildOptions{Directed: true})
	h := graph.DegreeHistogram(g)
	// Degrees: v0=2, v1=0, v2=0 -> histogram [(0,2),(2,1)].
	if len(h) != 2 || h[0] != [2]int64{0, 2} || h[1] != [2]int64{2, 1} {
		t.Fatalf("histogram = %v", h)
	}
}

func TestSkewedDegrees(t *testing.T) {
	// Uniformly dense graph: not skewed.
	var edges []graph.Edge
	for i := int32(0); i < 64; i++ {
		for d := int32(1); d <= 12; d++ {
			edges = append(edges, graph.Edge{U: i, V: (i + d) % 64})
		}
	}
	g := mustBuild(t, edges, graph.BuildOptions{Directed: false})
	if graph.SkewedDegrees(g) {
		t.Error("uniform graph reported skewed")
	}
	// Sparse graph: never worth relabeling regardless of shape.
	sparse := mustBuild(t, []graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{NumNodes: 100, Directed: false})
	if graph.SkewedDegrees(sparse) {
		t.Error("sparse graph reported skewed")
	}
}

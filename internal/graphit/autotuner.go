package graphit

import (
	"time"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// TuneResult records one autotuner candidate.
type TuneResult struct {
	Schedule Schedule
	Seconds  float64
}

// Autotune explores the schedule space for a kernel on a concrete graph and
// returns the fastest schedule found, with the full exploration trace. This
// is the miniature counterpart of GraphIt's OpenTuner-based autotuner
// (§III-D: "explores the optimization space and finds high-performance
// schedules quickly"); the space here is small enough to sweep exhaustively
// with `trials` timed runs per point. Tuning time is NOT part of any
// benchmark timing — the paper's Optimized rule set explicitly excludes it
// ("They were not required to include the time for such tuning efforts").
func Autotune(g *graph.Graph, kernelName string, src graph.NodeID, trials, workers int) (Schedule, []TuneResult) {
	if trials < 1 {
		trials = 1
	}
	exec := par.Default() // tuning is untimed; the default machine is fine
	candidates := scheduleSpace(kernelName, g)
	results := make([]TuneResult, 0, len(candidates))
	best := candidates[0]
	bestSec := -1.0
	delta := kernel.Dist(16)
	for _, cand := range candidates {
		sec := -1.0
		for t := 0; t < trials; t++ {
			start := time.Now()
			switch kernelName {
			case "bfs":
				_ = bfs(exec, g, src, cand, workers)
			case "sssp":
				_ = sssp(exec, g, src, delta, cand, workers)
			case "pr":
				_ = pr(exec, g, cand, workers)
			case "cc":
				_ = cc(exec, g, cand, workers)
			default: // bc
				_ = bc(exec, g, []graph.NodeID{src}, cand, workers)
			}
			if s := time.Since(start).Seconds(); sec < 0 || s < sec {
				sec = s
			}
		}
		results = append(results, TuneResult{Schedule: cand, Seconds: sec})
		if bestSec < 0 || sec < bestSec {
			best, bestSec = cand, sec
		}
	}
	return best, results
}

// scheduleSpace enumerates the meaningful schedule points for a kernel.
func scheduleSpace(kernelName string, g *graph.Graph) []Schedule {
	segs := segmentsFor(g)
	switch kernelName {
	case "bfs":
		return []Schedule{
			{Direction: DirOpt, Frontier: SparseList},
			{Direction: DirOpt, Frontier: Bitvector},
			{Direction: PushOnly, Frontier: SparseList},
		}
	case "sssp":
		return []Schedule{
			{Direction: PushOnly, BucketFusion: true},
			{Direction: PushOnly, BucketFusion: false},
		}
	case "pr":
		return []Schedule{
			{CacheTiling: false},
			{CacheTiling: true, NumSegments: segs},
			{CacheTiling: true, NumSegments: 2 * segs},
		}
	case "cc":
		return []Schedule{
			{ShortCircuit: false},
			{ShortCircuit: true},
		}
	default: // bc
		return []Schedule{
			{Direction: DirOpt, Frontier: Bitvector},
			{Direction: DirOpt, Frontier: SparseList},
		}
	}
}

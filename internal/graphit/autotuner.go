package graphit

import (
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
	"gapbench/internal/tune"
)

// TuneResult records one autotuner candidate (the shared tuner's trace
// entry).
type TuneResult = tune.TrialResult

// Autotune explores the schedule space for a kernel on a concrete graph and
// returns the fastest schedule found, with the full exploration trace. The
// space enumeration and timing live in the shared tuner (internal/tune);
// this shim binds the candidates to GraphIt's kernels. Tuning time is NOT
// part of any benchmark timing — the paper's Optimized rule set explicitly
// excludes it ("They were not required to include the time for such tuning
// efforts").
func Autotune(g *graph.Graph, kernelName string, src graph.NodeID, trials, workers int) (Schedule, []TuneResult) {
	exec := par.Default() // tuning is untimed; the default machine is fine
	delta := kernel.Dist(16)
	return tune.Explore(scheduleSpace(kernelName, g), trials, func(cand Schedule) {
		switch kernelName {
		case "bfs":
			_ = bfs(exec, g, src, cand, workers)
		case "sssp":
			_ = sssp(exec, g, src, delta, cand, workers)
		case "pr":
			_ = pr(exec, g, cand, workers)
		case "cc":
			_ = cc(exec, g, cand, workers)
		default: // bc
			_ = bc(exec, g, []graph.NodeID{src}, cand, workers)
		}
	})
}

// scheduleSpace enumerates the meaningful schedule points for a kernel.
func scheduleSpace(kernelName string, g *graph.Graph) []Schedule {
	return tune.Space(kernelName, int64(g.NumNodes()))
}

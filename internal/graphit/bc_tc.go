package graphit

import (
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// bc is GraphIt's Brandes: the forward traversal tracks frontiers in the
// layout the schedule picks (bitvector by default — "advantageous when there
// are many active elements in the frontier", sparse list for the Optimized
// Road schedule), and the backward pass walks the transposed graph (§V-E:
// "GraphIt transposes the graph for the backward pass"): dependencies are
// pushed from each successor to its parents over in-edges.
func bc(exec *par.Machine, g *graph.Graph, sources []graph.NodeID, sched Schedule, workers int) []float64 {
	n := int(g.NumNodes())
	scores := make([]float64, n)
	if n == 0 {
		return scores
	}
	depth := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)

	for _, src := range sources {
		src := src // assigned-once copy: the phase closures capture it by value, not as a heap cell
		exec.ForBlocked(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				//gapvet:ignore atomic-plain-mix -- reset phase: barrier-separated from the forward phase's CAS on depth
				depth[i] = -1
				sigma[i] = 0
				delta[i] = 0
			}
		})
		depth[src] = 0
		sigma[src] = 1

		// Forward: rounds of edgeset-apply keeping one VertexSet per level.
		var levels []*VertexSet
		frontier := FromList(int64(n), []graph.NodeID{src})
		if sched.Frontier == Bitvector {
			frontier = frontier.ToBitmap(exec, workers)
		}
		levels = append(levels, frontier)
		for frontier.Size() > 0 {
			d := int32(len(levels))
			next := EdgesetApplyPush(exec, g, frontier, sched.Frontier, workers, func(u, v graph.NodeID) bool {
				return atomic.LoadInt32(&depth[v]) < 0 &&
					atomic.CompareAndSwapInt32(&depth[v], -1, d)
			})
			if next.Size() == 0 {
				break
			}
			levels = append(levels, next)
			frontier = next
		}

		// Path counts per level (pull from parents over in-edges).
		for l := 1; l < len(levels); l++ {
			level := levels[l].ToList(exec, workers).List()
			exec.ForDynamic(len(level), 64, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := level[i]
					var s float64
					for _, u := range g.InNeighbors(v) {
						if depth[u] == depth[v]-1 {
							s += sigma[u]
						}
					}
					sigma[v] = s
				}
			})
		}

		// Backward over the transpose: each level-d vertex pushes its
		// dependency share to parents through in-edges; parents gather.
		for l := len(levels) - 2; l >= 0; l-- {
			level := levels[l].ToList(exec, workers).List()
			exec.ForDynamic(len(level), 64, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					u := level[i]
					var d float64
					for _, v := range g.OutNeighbors(u) {
						if depth[v] == depth[u]+1 {
							d += sigma[u] / sigma[v] * (1 + delta[v])
						}
					}
					delta[u] = d
					if u != src {
						scores[u] += d
					}
				}
			})
		}
	}

	maxScore := 0.0
	for _, s := range scores {
		if s > maxScore {
			maxScore = s
		}
	}
	if maxScore > 0 {
		exec.ForBlocked(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				scores[i] /= maxScore
			}
		})
	}
	return scores
}

// tc is GraphIt's order-invariant triangle count. §V-F notes GraphIt's set
// intersection "is observed to have less branch misprediction": the inner
// merge is written with branch-light arithmetic stepping. Optimized mode on
// small graphs switches back to the naive merge ("Changing back to the naive
// intersection method used in GAP improved performance").
func tc(exec *par.Machine, g *graph.Graph, opt kernel.Options, workers int) int64 {
	u := opt.Undirected(g)
	if opt.Mode == kernel.Optimized && opt.RelabeledView != nil {
		u = opt.RelabeledView
	} else if graph.SkewedDegrees(u) {
		ur, _ := graph.DegreeRelabel(u)
		u = ur
	}
	naive := opt.Mode == kernel.Optimized && u.NumNodes() < 1<<17
	n := int(u.NumNodes())
	return exec.ReduceDynamicInt64(n, 64, workers, func(lo, hi int) int64 {
		var count int64
		for a := lo; a < hi; a++ {
			na := u.OutNeighbors(graph.NodeID(a))
			// Prefix below the diagonal, like the GAP algorithm GraphIt's
			// generated code mirrors.
			cut := 0
			for cut < len(na) && na[cut] <= graph.NodeID(a) {
				cut++
			}
			pa := na[:cut]
			for _, b := range pa {
				nb := u.OutNeighbors(b)
				cutB := 0
				for cutB < len(nb) && nb[cutB] <= b {
					cutB++
				}
				if naive {
					count += mergeCount(pa, nb[:cutB], -1)
				} else {
					count += mergeCountBranchless(pa, nb[:cutB], -1)
				}
			}
		}
		return count
	})
}

// mergeCount is the standard three-way branch merge intersection.
func mergeCount(x, y []graph.NodeID, floor graph.NodeID) int64 {
	var count int64
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			if x[i] > floor {
				count++
			}
			i++
			j++
		}
	}
	return count
}

// mergeCountBranchless advances both cursors with comparison arithmetic
// instead of a three-way branch (Inoue et al.'s misprediction-reducing
// formulation GraphIt's generated code uses).
func mergeCountBranchless(x, y []graph.NodeID, floor graph.NodeID) int64 {
	var count int64
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		xi, yj := x[i], y[j]
		if xi == yj && xi > floor {
			count++
		}
		// Branch-free cursor stepping: bool-to-int advances.
		if xi <= yj {
			i++
		}
		if yj <= xi {
			j++
		}
	}
	return count
}

package graphit

import (
	"gapbench/internal/frontier"
	"gapbench/internal/graph"
	"gapbench/internal/par"
)

// The vertexset engine that used to live here is now the shared frontier
// library (internal/frontier) — promoted so other framework reproductions
// can opt into the same sparse-list/bitmap layouts and push/pull sweeps.
// GraphIt keeps its DSL-flavored names as thin shims over it; the semantics
// (explicit timed conversions, §V-A's "different frontier creation
// mechanisms") are unchanged.

// VertexSet is GraphIt's frontier, an alias for the shared frontier set.
type VertexSet = frontier.Set

// NewVertexSet returns an empty vertex set of the given layout.
func NewVertexSet(n int64, layout FrontierLayout) *VertexSet {
	return frontier.NewSet(n, layout)
}

// FromList builds a sparse vertex set from a list.
func FromList(n int64, list []graph.NodeID) *VertexSet {
	return frontier.FromList(n, list)
}

// EdgesetApplyPush traverses out-edges of the frontier, calling apply(u,v)
// for each; apply returns true when v newly enters the next frontier. The
// output layout follows the schedule.
func EdgesetApplyPush(exec *par.Machine, g *graph.Graph, cur *VertexSet, layout FrontierLayout, workers int, apply func(u, v graph.NodeID) bool) *VertexSet {
	return frontier.Push(exec, g, cur, layout, workers, apply)
}

// EdgesetApplyPull scans vertices where cond holds, pulling over in-edges
// from frontier members until applyTo accepts one; accepted vertices form
// the next frontier (bitvector layout).
func EdgesetApplyPull(exec *par.Machine, g *graph.Graph, cur *VertexSet, workers int, cond func(v graph.NodeID) bool, applyTo func(u, v graph.NodeID) bool) *VertexSet {
	return frontier.Pull(exec, g, cur, workers, cond, applyTo)
}

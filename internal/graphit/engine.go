package graphit

import (
	"sync/atomic"

	"gapbench/internal/graph"
	"gapbench/internal/par"
)

// VertexSet is GraphIt's frontier abstraction, stored as either a sparse
// index list or a bitvector per the schedule. Conversions are explicit and
// timed; §V-A attributes GAP-vs-GraphIt BFS differences to "different
// frontier creation mechanisms".
type VertexSet struct {
	n      int64
	layout FrontierLayout
	list   []graph.NodeID
	bits   *graph.Bitmap
	count  int64
	// collect is scratch for EdgesetApplyPush's gather: keeping it in the
	// (already heap-allocated) result set means the traversal closures
	// capture one pointer instead of forcing a separate accumulator cell to
	// the heap on every sweep.
	collect chunkCollect
}

// NewVertexSet returns an empty vertex set of the given layout.
func NewVertexSet(n int64, layout FrontierLayout) *VertexSet {
	vs := &VertexSet{n: n, layout: layout}
	if layout == Bitvector {
		vs.bits = graph.NewBitmap(n)
	}
	return vs
}

// FromList builds a sparse vertex set from a list.
func FromList(n int64, list []graph.NodeID) *VertexSet {
	return &VertexSet{n: n, layout: SparseList, list: list, count: int64(len(list))}
}

// Size returns the number of active vertices.
func (vs *VertexSet) Size() int64 { return vs.count }

// Add appends a vertex (single-threaded setup path).
func (vs *VertexSet) Add(v graph.NodeID) {
	if vs.layout == Bitvector {
		if vs.bits.SetAtomic(int64(v)) {
			atomic.AddInt64(&vs.count, 1)
		}
		return
	}
	vs.list = append(vs.list, v)
	vs.count++
}

// ToBitvector converts (or returns) the bitvector form.
func (vs *VertexSet) ToBitvector() *VertexSet {
	if vs.layout == Bitvector {
		return vs
	}
	out := NewVertexSet(vs.n, Bitvector)
	for _, v := range vs.list {
		out.bits.Set(int64(v))
	}
	out.count = vs.count
	return out
}

// ToList converts (or returns) the sparse-list form.
func (vs *VertexSet) ToList() *VertexSet {
	if vs.layout == SparseList {
		return vs
	}
	out := &VertexSet{n: vs.n, layout: SparseList, list: make([]graph.NodeID, 0, vs.count)}
	for i := int64(0); i < vs.n; i++ {
		if vs.bits.Get(i) {
			out.list = append(out.list, graph.NodeID(i))
		}
	}
	out.count = int64(len(out.list))
	return out
}

// Contains reports membership. The bitvector layout answers in O(1); the
// sparse-list layout scans (callers that test membership in a loop should
// convert with ToBitvector first, which is what the schedules do).
func (vs *VertexSet) Contains(v graph.NodeID) bool {
	if vs.layout == Bitvector {
		return vs.bits.Get(int64(v))
	}
	for _, u := range vs.list {
		if u == v {
			return true
		}
	}
	return false
}

// EdgesetApplyPush traverses out-edges of the frontier, calling apply(u,v)
// for each; apply returns true when v newly enters the next frontier. The
// output layout follows the schedule.
func EdgesetApplyPush(exec *par.Machine, g *graph.Graph, frontier *VertexSet, layout FrontierLayout, workers int, apply func(u, v graph.NodeID) bool) *VertexSet {
	src := frontier.ToList()
	out := NewVertexSet(frontier.n, layout)
	if layout == Bitvector {
		exec.ForDynamic(len(src.list), 64, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				u := src.list[i]
				for _, v := range g.OutNeighbors(u) {
					if apply(u, v) {
						if out.bits.SetAtomic(int64(v)) {
							atomic.AddInt64(&out.count, 1)
						}
					}
				}
			}
		})
		return out
	}
	// The collector lives inside the result set, which is heap-bound anyway:
	// the closure captures only the out pointer, so a sweep allocates no
	// extra cell for it.
	exec.ForDynamic(len(src.list), 64, workers, func(lo, hi int) {
		var local []graph.NodeID
		for i := lo; i < hi; i++ {
			u := src.list[i]
			for _, v := range g.OutNeighbors(u) {
				if apply(u, v) {
					local = append(local, v)
				}
			}
		}
		out.collect.add(local)
	})
	out.list = out.collect.take()
	out.count = int64(len(out.list))
	return out
}

// EdgesetApplyPull scans vertices where cond holds, pulling over in-edges
// from frontier members until applyTo accepts one; accepted vertices form
// the next frontier (bitvector layout).
func EdgesetApplyPull(exec *par.Machine, g *graph.Graph, frontier *VertexSet, workers int, cond func(v graph.NodeID) bool, applyTo func(u, v graph.NodeID) bool) *VertexSet {
	fb := frontier.ToBitvector()
	out := NewVertexSet(frontier.n, Bitvector)
	// ReduceInt64 carries the per-chunk counts through the scheduler's own
	// reduction, so the sweep captures no accumulator cell of its own.
	out.count = exec.ReduceInt64(int(frontier.n), workers, func(lo, hi int) int64 {
		var local int64
		for vi := lo; vi < hi; vi++ {
			v := graph.NodeID(vi)
			if !cond(v) {
				continue
			}
			for _, u := range g.InNeighbors(v) {
				if fb.bits.Get(int64(u)) && applyTo(u, v) {
					out.bits.SetAtomic(int64(v))
					local++
					break
				}
			}
		}
		return local
	})
	return out
}

// chunkCollect merges per-chunk slices under one lock per flush.
type chunkCollect struct {
	mu  spinMutex
	out []graph.NodeID
}

func (c *chunkCollect) add(local []graph.NodeID) {
	if len(local) == 0 {
		return
	}
	c.mu.Lock()
	c.out = append(c.out, local...)
	c.mu.Unlock()
}

func (c *chunkCollect) take() []graph.NodeID { return c.out }

// reset detaches the collector from its previous round's slice (which the
// caller keeps as the new frontier).
func (c *chunkCollect) reset() { c.out = nil }

// spinMutex is a tiny test-and-set lock; the critical sections here are a
// few appends, far shorter than a sync.Mutex slow path.
type spinMutex struct{ v atomic.Int32 }

func (m *spinMutex) Lock() {
	for !m.v.CompareAndSwap(0, 1) {
	}
}
func (m *spinMutex) Unlock() { m.v.Store(0) }

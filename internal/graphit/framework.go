package graphit

import (
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// Framework is the GraphIt reproduction.
type Framework struct{}

// New returns the GraphIt framework.
func New() *Framework { return &Framework{} }

// Name implements kernel.Framework.
func (*Framework) Name() string { return "GraphIt" }

// Attributes returns the Table II row.
func (*Framework) Attributes() map[string]string {
	return map[string]string{
		"Type":                      "domain-specific language compiler",
		"Internal Graph Data":       "outgoing & incoming edges w/ (opt.) blocking",
		"Programming Abstraction":   "vertex or edge centric",
		"Execution Synchronization": "level-synchronous",
		"Intended Users":            "graph domain experts",
	}
}

// Algorithms returns the Table III row.
func (*Framework) Algorithms() kernel.Algorithms {
	return kernel.Algorithms{
		BFS:  "Direction-optimizing",
		SSSP: "Delta-stepping + bucket fusion",
		CC:   "Label Propagation",
		PR:   "Jacobi SpMV (+cache tiling)",
		BC:   "Brandes (bitvector frontier)",
		TC:   "Order invariant",
	}
}

var (
	_ kernel.Framework = (*Framework)(nil)
	_ kernel.Describer = (*Framework)(nil)
)

// BFS implements kernel.Framework.
func (*Framework) BFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	return bfs(opt.Exec(), g, src, scheduleFor("bfs", g, opt), opt.EffectiveWorkers())
}

// SSSP implements kernel.Framework.
func (*Framework) SSSP(g *graph.Graph, src graph.NodeID, opt kernel.Options) []kernel.Dist {
	delta := opt.Delta
	if delta <= 0 {
		delta = 16
	}
	return sssp(opt.Exec(), g, src, delta, scheduleFor("sssp", g, opt), opt.EffectiveWorkers())
}

// PR implements kernel.Framework.
func (*Framework) PR(g *graph.Graph, opt kernel.Options) []float64 {
	return pr(opt.Exec(), g, scheduleFor("pr", g, opt), opt.EffectiveWorkers())
}

// CC implements kernel.Framework.
func (*Framework) CC(g *graph.Graph, opt kernel.Options) []graph.NodeID {
	return cc(opt.Exec(), g, scheduleFor("cc", g, opt), opt.EffectiveWorkers())
}

// BC implements kernel.Framework.
func (*Framework) BC(g *graph.Graph, sources []graph.NodeID, opt kernel.Options) []float64 {
	return bc(opt.Exec(), g, sources, scheduleFor("bc", g, opt), opt.EffectiveWorkers())
}

// TC implements kernel.Framework.
func (*Framework) TC(g *graph.Graph, opt kernel.Options) int64 {
	return tc(opt.Exec(), g, opt, opt.EffectiveWorkers())
}

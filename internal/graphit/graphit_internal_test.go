package graphit

import (
	"testing"

	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
	"gapbench/internal/testutil"
)

func TestVertexSetConversions(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	vs := FromList(100, []graph.NodeID{3, 50, 99})
	if vs.Size() != 3 {
		t.Fatalf("Size = %d", vs.Size())
	}
	bv := vs.ToBitmap(par.Default(), 2)
	if bv.Size() != 3 || !bv.Contains(50) || bv.Contains(4) {
		t.Fatal("bitvector conversion wrong")
	}
	back := bv.ToList(par.Default(), 2)
	if back.Size() != 3 {
		t.Fatalf("round-trip Size = %d", back.Size())
	}
	got := map[graph.NodeID]bool{}
	for _, v := range back.List() {
		got[v] = true
	}
	for _, v := range []graph.NodeID{3, 50, 99} {
		if !got[v] {
			t.Fatalf("round trip lost %d", v)
		}
	}
	// Add on both layouts.
	sp := NewVertexSet(10, SparseList)
	sp.Add(4)
	if sp.Size() != 1 {
		t.Fatal("sparse Add wrong")
	}
	bb := NewVertexSet(10, Bitvector)
	bb.Add(4)
	bb.Add(4) // duplicate must not double-count
	if bb.Size() != 1 {
		t.Fatalf("bitvector Add counted duplicates: %d", bb.Size())
	}
}

func TestEdgesetApplyPush(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	g, err := graph.Build([]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}}, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	frontier := FromList(3, []graph.NodeID{0})
	visited := make([]bool, 3)
	visited[0] = true
	for _, layout := range []FrontierLayout{SparseList, Bitvector} {
		v2 := append([]bool(nil), visited...)
		next := EdgesetApplyPush(par.Default(), g, frontier, layout, 2, func(u, v graph.NodeID) bool {
			if !v2[v] {
				v2[v] = true
				return true
			}
			return false
		})
		if next.Size() != 2 {
			t.Fatalf("layout %d: next size = %d, want 2", layout, next.Size())
		}
	}
}

func TestEdgesetApplyPull(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	g, err := graph.Build([]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}}, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	frontier := FromList(3, []graph.NodeID{0})
	parent := []graph.NodeID{0, -1, -1}
	next := EdgesetApplyPull(par.Default(), g, frontier, 2,
		func(v graph.NodeID) bool { return parent[v] < 0 },
		func(u, v graph.NodeID) bool { parent[v] = u; return true })
	if next.Size() != 2 {
		t.Fatalf("pull next size = %d, want 2", next.Size())
	}
	if parent[1] != 0 || parent[2] != 0 {
		t.Fatalf("parents = %v", parent)
	}
}

func TestAutotuneSchedules(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	small, _ := generate.Kron(8, 1)
	if s := autotune("bfs", small); s.Direction != DirOpt {
		t.Error("bfs autotune should direction-optimize")
	}
	if s := autotune("sssp", small); !s.BucketFusion {
		t.Error("sssp autotune should enable bucket fusion")
	}
	if s := autotune("pr", small); s.CacheTiling {
		t.Error("small graph should not tile")
	}
	if s := autotune("bc", small); s.Frontier != Bitvector {
		t.Error("bc autotune should use a bitvector frontier")
	}
}

func TestSpecializeSchedules(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	g, _ := generate.Road(10, 1)
	opt := kernel.Options{Mode: kernel.Optimized, GraphName: "Road"}
	if s := scheduleFor("bfs", g, opt); s.Direction != PushOnly {
		t.Error("optimized Road BFS should be push-only (§V-A)")
	}
	if s := scheduleFor("cc", g, opt); !s.ShortCircuit {
		t.Error("optimized Road CC should short-circuit (§V-C)")
	}
	if s := scheduleFor("bc", g, opt); s.Frontier != SparseList {
		t.Error("optimized Road BC should drop the bitvector (§V-E)")
	}
	web := kernel.Options{Mode: kernel.Optimized, GraphName: "Web"}
	if s := scheduleFor("pr", g, web); s.CacheTiling {
		t.Error("optimized Web PR should not tile (§V-D: Web has good locality)")
	}
	// Baseline never consults the graph name.
	base := kernel.Options{Mode: kernel.Baseline, GraphName: ""}
	if s := scheduleFor("bfs", g, base); s.Direction != DirOpt {
		t.Error("baseline BFS must stay direction-optimizing")
	}
}

func TestSegmentsPartitionInEdges(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	g, err := generate.Kron(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	segs := buildSegments(g, 4)
	if len(segs) != 4 {
		t.Fatalf("segments = %d", len(segs))
	}
	n := int(g.NumNodes())
	width := (n + 3) / 4
	var total int64
	for si, seg := range segs {
		for v := 0; v < n; v++ {
			row := seg.neigh[seg.index[v]:seg.index[v+1]]
			total += int64(len(row))
			for _, u := range row {
				if int(u)/width != si {
					t.Fatalf("segment %d holds source %d (width %d)", si, u, width)
				}
			}
		}
	}
	if total != g.NumEdges() {
		t.Fatalf("segments hold %d edges, graph has %d", total, g.NumEdges())
	}
	// Per-vertex union across segments must equal the in-adjacency.
	for v := 0; v < n; v++ {
		var merged []graph.NodeID
		for _, seg := range segs {
			merged = append(merged, seg.neigh[seg.index[v]:seg.index[v+1]]...)
		}
		want := g.InNeighbors(graph.NodeID(v))
		if len(merged) != len(want) {
			t.Fatalf("vertex %d: segmented in-degree %d, want %d", v, len(merged), len(want))
		}
	}
}

func TestMergeVariantsAgree(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	x := []graph.NodeID{1, 3, 5, 7, 9, 11}
	y := []graph.NodeID{2, 3, 4, 7, 11, 13}
	if a, b := mergeCount(x, y, -1), mergeCountBranchless(x, y, -1); a != b || a != 3 {
		t.Fatalf("merge variants disagree: %d vs %d", a, b)
	}
	if a := mergeCount(x, y, 7); a != 1 { // only 11 above floor 7
		t.Fatalf("floored merge = %d, want 1", a)
	}
	if mergeCount(nil, y, -1) != 0 || mergeCountBranchless(x, nil, -1) != 0 {
		t.Fatal("empty list intersection nonzero")
	}
}

func TestLabelPropShortCircuitEquivalence(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	g, err := generate.Road(8, 9)
	if err != nil {
		t.Fatal(err)
	}
	plain := cc(par.Default(), g, Schedule{}, 2)
	short := cc(par.Default(), g, Schedule{ShortCircuit: true}, 2)
	// Label values may differ; partition must not.
	canon := func(labels []graph.NodeID) map[graph.NodeID]graph.NodeID {
		m := map[graph.NodeID]graph.NodeID{}
		for v, l := range labels {
			if _, ok := m[l]; !ok {
				m[l] = graph.NodeID(v)
			}
		}
		return m
	}
	cp, cs := canon(plain), canon(short)
	for v := range plain {
		if cp[plain[v]] != cs[short[v]] {
			t.Fatalf("partitions differ at vertex %d", v)
		}
	}
}

func TestAutotuneExploresAndPicksBest(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	g, err := generate.Kron(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	var src graph.NodeID
	for g.OutDegree(src) == 0 {
		src++
	}
	for _, k := range []string{"bfs", "sssp", "pr", "cc", "bc"} {
		best, trace := Autotune(g, k, src, 1, 2)
		if len(trace) < 2 {
			t.Fatalf("%s: explored %d points, want >= 2", k, len(trace))
		}
		bestSec := -1.0
		for _, r := range trace {
			if r.Seconds <= 0 {
				t.Fatalf("%s: non-positive trial time", k)
			}
			if bestSec < 0 || r.Seconds < bestSec {
				bestSec = r.Seconds
			}
			if r.Schedule == best && r.Seconds != bestSec {
				// best must correspond to the minimum-time trace entry
				// (ties broken by order; just check it's not worse).
				if r.Seconds > bestSec {
					t.Fatalf("%s: returned schedule is not the fastest", k)
				}
			}
		}
	}
}

func TestVertexSetContainsBothLayouts(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	sp := FromList(10, []graph.NodeID{2, 7})
	if !sp.Contains(7) || sp.Contains(3) {
		t.Fatal("sparse Contains wrong")
	}
	bv := sp.ToBitmap(par.Default(), 2)
	if !bv.Contains(2) || bv.Contains(0) {
		t.Fatal("bitvector Contains wrong")
	}
}

package graphit_test

import (
	"testing"

	"gapbench/internal/generate"
	"gapbench/internal/graphit"
	"gapbench/internal/testutil"
)

func TestConformance(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	testutil.RunConformance(t, graphit.New())
}

func TestDescribe(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	testutil.Describe(t, graphit.New())
}

func TestAcrossWorkerCounts(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	g, err := generate.Web(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	testutil.RunKernelAcrossWorkers(t, graphit.New(), g)
}

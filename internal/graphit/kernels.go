package graphit

import (
	"math"
	"sync/atomic"

	"gapbench/internal/frontier"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// bfs is the GraphIt BFS: edgeset-apply rounds with the traversal direction
// chosen by the schedule (DirOpt per-round via the shared Beamer dispatcher,
// or PushOnly for the Optimized Road schedule that skips the active-vertex
// counting overhead, §V-A).
func bfs(exec *par.Machine, g *graph.Graph, src graph.NodeID, sched Schedule, workers int) []graph.NodeID {
	n := int64(g.NumNodes())
	parent := make([]graph.NodeID, n)
	for i := range parent {
		parent[i] = -1
	}
	if n == 0 {
		return parent
	}
	parent[src] = src
	front := FromList(n, []graph.NodeID{src})
	disp := frontier.NewDispatcher(n, g.NumEdges(), g.OutDegree(src))
	// One scout accumulator for the whole search: the apply closure captures
	// the pointer by value, so no per-round heap cell is allocated.
	newScout := new(atomic.Int64)

	for front.Size() > 0 {
		if exec.Interrupted() {
			return parent // partial; the harness discards cancelled trials
		}
		usePull := sched.Direction == PullOnly ||
			(sched.Direction == DirOpt && disp.UsePull())
		if usePull {
			awake := front.Size()
			cur := front.ToBitmap(exec, workers)
			for {
				if exec.Interrupted() {
					return parent
				}
				prev := awake
				next := EdgesetApplyPull(exec, g, cur, workers,
					//gapvet:ignore atomic-plain-mix -- pull phase: each v writes only parent[v]; barrier-separated from the push phase's CAS
					func(v graph.NodeID) bool { return parent[v] < 0 },
					func(u, v graph.NodeID) bool { parent[v] = u; return true })
				awake = next.Size()
				cur = next
				if !disp.KeepPulling(awake, prev) {
					break
				}
			}
			front = cur.ToList(exec, workers)
			disp.EndPull()
		} else {
			disp.BeginPush()
			newScout.Store(0)
			front = EdgesetApplyPush(exec, g, front, sched.Frontier, workers, func(u, v graph.NodeID) bool {
				if atomic.LoadInt32(&parent[v]) < 0 &&
					atomic.CompareAndSwapInt32(&parent[v], -1, u) {
					newScout.Add(g.OutDegree(v))
					return true
				}
				return false
			})
			disp.EndPush(newScout.Load())
			if sched.Direction == PushOnly {
				// No active-vertex accounting in push-only schedules.
				disp.DisableAccounting()
			}
		}
	}
	return parent
}

// sssp is GraphIt's delta-stepping with the bucket-fusion optimization it
// originated (§VI): a thread whose next bucket has the same priority keeps
// processing without synchronizing, cutting rounds ~10x on Road.
func sssp(exec *par.Machine, g *graph.Graph, src graph.NodeID, delta kernel.Dist, sched Schedule, workers int) []kernel.Dist {
	n := int(g.NumNodes())
	dist := make([]kernel.Dist, n)
	for i := range dist {
		dist[i] = kernel.Inf
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0

	type workerBins struct {
		bins [][]graph.NodeID
	}
	if workers < 1 {
		workers = 1
	}
	wb := make([]workerBins, workers)
	put := func(w *workerBins, b int, v graph.NodeID) {
		for b >= len(w.bins) {
			w.bins = append(w.bins, nil)
		}
		w.bins[b] = append(w.bins[b], v)
	}

	frontier := []graph.NodeID{src}
	bucket := 0
	const fusionThreshold = 1024

	for {
		if exec.Interrupted() {
			return dist
		}
		lo := kernel.Dist(bucket) * delta
		hi := lo + delta
		fr, b0 := frontier, bucket // read-only in the closure: captured by value
		exec.ForWorker(len(fr), workers, func(wid, lo2, hi2 int) {
			w := &wb[wid]
			relax := func(u graph.NodeID) {
				du := atomic.LoadInt32(&dist[u])
				if du < lo || du >= hi {
					return
				}
				neigh := g.OutNeighbors(u)
				ws := g.OutWeights(u)
				for i, v := range neigh {
					nd := du + ws[i]
					old := atomic.LoadInt32(&dist[v])
					for nd < old {
						if atomic.CompareAndSwapInt32(&dist[v], old, nd) {
							put(w, int(nd/delta), v)
							break
						}
						old = atomic.LoadInt32(&dist[v])
					}
				}
			}
			for i := lo2; i < hi2; i++ {
				relax(fr[i])
			}
			if sched.BucketFusion {
				// Bucket fusion: keep draining our own current-priority bin
				// while it stays small.
				for b0 < len(w.bins) {
					batch := w.bins[b0]
					if len(batch) == 0 || len(batch) > fusionThreshold {
						break
					}
					w.bins[b0] = nil
					for _, u := range batch {
						relax(u)
					}
				}
			}
		})
		next := -1
		for w := range wb {
			for b := bucket; b < len(wb[w].bins); b++ {
				if len(wb[w].bins[b]) > 0 && (next < 0 || b < next) {
					next = b
					break
				}
			}
		}
		if next < 0 {
			break
		}
		frontier = frontier[:0]
		for w := range wb {
			if next < len(wb[w].bins) {
				frontier = append(frontier, wb[w].bins[next]...)
				wb[w].bins[next] = nil
			}
		}
		bucket = next
	}
	return dist
}

// propagateMin CAS-lowers comp[v] to cu, appending v to local when this call
// won the update. Kept as a named function so the label-propagation loop does
// not allocate a closure per frontier vertex on the timed hot path.
func propagateMin(comp []graph.NodeID, cu int32, v graph.NodeID, local []graph.NodeID) []graph.NodeID {
	old := atomic.LoadInt32(&comp[v])
	for cu < old {
		if atomic.CompareAndSwapInt32(&comp[v], old, cu) {
			return append(local, v)
		}
		old = atomic.LoadInt32(&comp[v])
	}
	return local
}

// cc is GraphIt's label-propagation connected components: O(E*D) where
// Afforest is O(V)-ish, because "GraphIt does not yet support sampling
// algorithms" (§V-C) — the largest deliberate performance gap in the paper's
// tables. The short-circuit schedule pointer-jumps label chains between
// rounds, the Optimized Road variant worth ~3x (still far behind).
func cc(exec *par.Machine, g *graph.Graph, sched Schedule, workers int) []graph.NodeID {
	n := int(g.NumNodes())
	comp := make([]graph.NodeID, n)
	for i := range comp {
		comp[i] = graph.NodeID(i)
	}
	if n == 0 {
		return comp
	}
	front := make([]graph.NodeID, n)
	for i := range front {
		front[i] = graph.NodeID(i)
	}

	// One collector for every propagation round: the chunk closures capture
	// the pointer by value, so a round allocates no accumulator cell.
	collect := new(frontier.Collector)

	for len(front) > 0 {
		if exec.Interrupted() {
			return comp
		}
		collect.Reset()
		fr := front // read-only in the closure: captured by value
		exec.ForDynamic(len(fr), 128, workers, func(lo, hi int) {
			var local []graph.NodeID
			for i := lo; i < hi; i++ {
				u := fr[i]
				cu := atomic.LoadInt32(&comp[u])
				for _, v := range g.OutNeighbors(u) {
					local = propagateMin(comp, cu, v, local)
				}
				if g.Directed() {
					for _, v := range g.InNeighbors(u) {
						local = propagateMin(comp, cu, v, local)
					}
				}
			}
			collect.Add(local)
		})
		front = collect.Take()
		if sched.ShortCircuit {
			// Pointer-jump chains: comp[v] <- comp[comp[v]] to a fixed point.
			exec.ForBlocked(n, workers, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					c := atomic.LoadInt32(&comp[v])
					for {
						cc := atomic.LoadInt32(&comp[c])
						if cc == c {
							break
						}
						c = cc
					}
					atomic.StoreInt32(&comp[v], c)
				}
			})
		}
	}
	return comp
}

// pr is GraphIt's Jacobi PageRank with optional cache tiling (§V-D): the
// in-edge array is split into source-range segments so the random reads of
// contributions stay within a cache-sized window. Building the segmented
// representation is timed and "amortized within 2-5 iterations".
func pr(exec *par.Machine, g *graph.Graph, sched Schedule, workers int) []float64 {
	n := int(g.NumNodes())
	if n == 0 {
		return nil
	}
	base := (1 - kernel.PRDamping) / float64(n)
	ranks := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)
	initial := 1 / float64(n)
	for i := range ranks {
		ranks[i] = initial
	}

	var segments []segmentCSR
	if sched.CacheTiling && sched.NumSegments > 1 {
		segments = buildSegments(g, sched.NumSegments)
	}

	for it := 0; it < kernel.PRMaxIters; it++ {
		if exec.Interrupted() {
			return ranks
		}
		// Per-iteration copies: the sweep closures capture the slice headers
		// by value, so the swapped outer variables never become heap cells.
		r, nx := ranks, next
		dangling := exec.ReduceFloat64(n, workers, func(lo, hi int) float64 {
			var d float64
			for u := lo; u < hi; u++ {
				if deg := g.OutDegree(graph.NodeID(u)); deg > 0 {
					contrib[u] = r[u] / float64(deg)
				} else {
					contrib[u] = 0
					d += r[u]
				}
			}
			return d
		})
		danglingShare := kernel.PRDamping * dangling / float64(n)

		if segments != nil {
			exec.ForBlocked(n, workers, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					nx[v] = 0
				}
			})
			for _, seg := range segments {
				exec.ForBlocked(n, workers, func(lo, hi int) {
					for v := lo; v < hi; v++ {
						sum := 0.0
						for _, u := range seg.neigh[seg.index[v]:seg.index[v+1]] {
							sum += contrib[u]
						}
						nx[v] += sum
					}
				})
			}
			exec.ForBlocked(n, workers, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					nx[v] = base + danglingShare + kernel.PRDamping*nx[v]
				}
			})
		} else {
			exec.ForBlocked(n, workers, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					sum := 0.0
					for _, u := range g.InNeighbors(graph.NodeID(v)) {
						sum += contrib[u]
					}
					nx[v] = base + danglingShare + kernel.PRDamping*sum
				}
			})
		}
		delta := exec.ReduceFloat64(n, workers, func(lo, hi int) float64 {
			var d float64
			for v := lo; v < hi; v++ {
				d += math.Abs(nx[v] - r[v])
			}
			return d
		})
		ranks, next = next, ranks
		if delta < kernel.PRTolerance {
			break
		}
	}
	return ranks
}

// segmentCSR is one cache tile: the in-CSR restricted to sources within one
// contiguous range.
type segmentCSR struct {
	index []int64
	neigh []graph.NodeID
}

// buildSegments splits the in-edge lists by source range into numSegments
// tiles (the graph-tiling preprocessing of Zhang et al.'s cache
// optimization).
func buildSegments(g *graph.Graph, numSegments int) []segmentCSR {
	n := int(g.NumNodes())
	width := (n + numSegments - 1) / numSegments
	segs := make([]segmentCSR, numSegments)
	for s := range segs {
		segs[s].index = make([]int64, n+1)
	}
	for v := 0; v < n; v++ {
		for _, u := range g.InNeighbors(graph.NodeID(v)) {
			s := int(u) / width
			segs[s].index[v+1]++
		}
	}
	for s := range segs {
		idx := segs[s].index
		for v := 0; v < n; v++ {
			idx[v+1] += idx[v]
		}
		segs[s].neigh = make([]graph.NodeID, idx[n])
	}
	fill := make([]int64, numSegments)
	for v := 0; v < n; v++ {
		for s := range fill {
			fill[s] = segs[s].index[v]
		}
		for _, u := range g.InNeighbors(graph.NodeID(v)) {
			s := int(u) / width
			segs[s].neigh[fill[s]] = u
			fill[s]++
		}
	}
	return segs
}

// Package graphit reproduces the GraphIt DSL the paper evaluates. GraphIt
// separates what an algorithm computes from how it is executed; here the
// "what" is written against the shared frontier library (internal/frontier,
// consumed via thin shims in engine.go) and the "how" is a Schedule value —
// direction choice, frontier layout, bucket fusion, cache tiling — selected
// per kernel by a heuristic autotuner in Baseline mode and by per-graph
// specialization tables (or a persisted `gapbench -tune` result) in
// Optimized mode, exactly the split §III-D describes and §V exploits ("it
// used schedules/optimizations specialized for the size and structure of the
// graphs for the Optimized case. This was not allowed for the Baseline").
package graphit

import (
	"gapbench/internal/frontier"
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
	"gapbench/internal/tune"
)

// Direction is an edge-traversal direction choice (shared with the tuner).
type Direction = tune.Direction

// Traversal directions the scheduling language exposes.
const (
	// DirOpt switches between push and pull per round via the Beamer
	// degree-sum dispatcher.
	DirOpt = tune.DirOpt
	// PushOnly always traverses from the frontier outward (no per-round
	// accounting — the Optimized-mode Road BFS trick from §V-A).
	PushOnly = tune.PushOnly
	// PullOnly always traverses into unvisited vertices.
	PullOnly = tune.PullOnly
)

// FrontierLayout selects the vertexset representation.
type FrontierLayout = frontier.Layout

// Frontier layouts.
const (
	// SparseList stores frontier vertices as an index list.
	SparseList = frontier.SparseList
	// Bitvector stores the frontier as a bitmap — "advantageous when there
	// are many active elements" (§V-E).
	Bitvector = frontier.Bitmap
)

// Schedule is one point in GraphIt's optimization space (the shared tuner's
// schedule type, so tuned entries round-trip through the store unchanged).
type Schedule = tune.Schedule

// autotune returns the Baseline-mode schedule for a kernel: run-time
// heuristics only, no knowledge of which benchmark graph this is (the paper
// allowed "existing internal auto-tuners and heuristics").
func autotune(kernelName string, g *graph.Graph) Schedule {
	switch kernelName {
	case "bfs":
		return Schedule{Direction: DirOpt, Frontier: SparseList}
	case "sssp":
		return Schedule{Direction: PushOnly, Frontier: SparseList, BucketFusion: true}
	case "pr":
		// Tile when the graph is large enough that the rank vector falls
		// out of cache.
		return Schedule{CacheTiling: g.NumNodes() > 1<<15, NumSegments: segmentsFor(g)}
	case "cc":
		return Schedule{Direction: DirOpt, Frontier: SparseList, CacheTiling: g.NumNodes() > 1<<15, NumSegments: segmentsFor(g)}
	case "bc":
		return Schedule{Direction: DirOpt, Frontier: Bitvector}
	default: // tc
		return Schedule{}
	}
}

// specialize returns the Optimized-mode schedule: per-graph tables, the way
// each GraphIt benchmark shipped a tuned schedule per input.
func specialize(kernelName string, g *graph.Graph, opt kernel.Options) Schedule {
	s := autotune(kernelName, g)
	switch kernelName {
	case "bfs":
		if opt.GraphName == "Road" {
			// §V-A: "it does not use direction optimization (always push).
			// This eliminates the runtime overhead of checking the number
			// of active vertices."
			s.Direction = PushOnly
		}
	case "cc":
		if opt.GraphName == "Road" {
			// §V-C: "label propagation with a short-circuiting approach on
			// Road as the vertex chains tended to go longer on
			// high-diameter graphs", ~3x but still far behind Afforest.
			s.ShortCircuit = true
		}
		s.CacheTiling = opt.GraphName == "Twitter" || opt.GraphName == "Kron" || opt.GraphName == "Urand"
	case "pr":
		// §V-D: cache optimization from tiling pays on everything except
		// Web, which "had good locality and did not benefit as much".
		s.CacheTiling = opt.GraphName != "Web"
	case "bc":
		if opt.GraphName == "Road" {
			// §V-E: "reduces overhead by not using a bitvector for the
			// frontier on Road".
			s.Frontier = SparseList
		}
	}
	return s
}

// scheduleFor picks the schedule under the active rule set. Optimized runs
// consult the persistent tuned-schedule store first (written by `gapbench
// -tune`, keyed by the graph's build epoch — a cached field, so the lookup
// costs one map probe on the timed path), then fall back to the per-graph
// specialization tables; Baseline runs use run-time heuristics only.
func scheduleFor(kernelName string, g *graph.Graph, opt kernel.Options) Schedule {
	if opt.Mode == kernel.Optimized {
		if opt.Schedules != nil {
			if s, ok := opt.Schedules.Lookup(kernelName, g.Epoch(), opt.Mode.String()); ok {
				return s
			}
		}
		if opt.GraphName != "" {
			return specialize(kernelName, g, opt)
		}
	}
	return autotune(kernelName, g)
}

// segmentsFor sizes PR's cache tiles so each segment's source-vertex range
// fits roughly in a per-core cache slice.
func segmentsFor(g *graph.Graph) int {
	return tune.SegmentsFor(int64(g.NumNodes()))
}

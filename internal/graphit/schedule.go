// Package graphit reproduces the GraphIt DSL the paper evaluates. GraphIt
// separates what an algorithm computes from how it is executed; here the
// "what" is written against a small edgeset-apply engine (engine.go) and the
// "how" is a Schedule value — direction choice, frontier layout, bucket
// fusion, cache tiling — selected per kernel by a heuristic autotuner in
// Baseline mode and by per-graph specialization tables in Optimized mode,
// exactly the split §III-D describes and §V exploits ("it used
// schedules/optimizations specialized for the size and structure of the
// graphs for the Optimized case. This was not allowed for the Baseline").
package graphit

import (
	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

// Direction is an edge-traversal direction choice.
type Direction int

// Traversal directions the scheduling language exposes.
const (
	// DirOpt switches between push and pull per round using frontier size.
	DirOpt Direction = iota
	// PushOnly always traverses from the frontier outward (no per-round
	// size check — the Optimized-mode Road BFS trick from §V-A).
	PushOnly
	// PullOnly always traverses into unvisited vertices.
	PullOnly
)

// FrontierLayout selects the vertexset representation.
type FrontierLayout int

// Frontier layouts.
const (
	// SparseList stores frontier vertices as an index list.
	SparseList FrontierLayout = iota
	// Bitvector stores the frontier as a bitmap — "advantageous when there
	// are many active elements" (§V-E).
	Bitvector
)

// Schedule is one point in GraphIt's optimization space.
type Schedule struct {
	Direction    Direction
	Frontier     FrontierLayout
	BucketFusion bool // SSSP: process same-priority buckets without a barrier
	CacheTiling  bool // PR/CC: segment in-edges into cache-sized tiles
	ShortCircuit bool // CC label propagation: pointer-jump chains
	NumSegments  int  // tile count when CacheTiling is set
}

// autotune returns the Baseline-mode schedule for a kernel: run-time
// heuristics only, no knowledge of which benchmark graph this is (the paper
// allowed "existing internal auto-tuners and heuristics").
func autotune(kernelName string, g *graph.Graph) Schedule {
	switch kernelName {
	case "bfs":
		return Schedule{Direction: DirOpt, Frontier: SparseList}
	case "sssp":
		return Schedule{Direction: PushOnly, Frontier: SparseList, BucketFusion: true}
	case "pr":
		// Tile when the graph is large enough that the rank vector falls
		// out of cache.
		return Schedule{CacheTiling: g.NumNodes() > 1<<15, NumSegments: segmentsFor(g)}
	case "cc":
		return Schedule{Direction: DirOpt, Frontier: SparseList, CacheTiling: g.NumNodes() > 1<<15, NumSegments: segmentsFor(g)}
	case "bc":
		return Schedule{Direction: DirOpt, Frontier: Bitvector}
	default: // tc
		return Schedule{}
	}
}

// specialize returns the Optimized-mode schedule: per-graph tables, the way
// each GraphIt benchmark shipped a tuned schedule per input.
func specialize(kernelName string, g *graph.Graph, opt kernel.Options) Schedule {
	s := autotune(kernelName, g)
	switch kernelName {
	case "bfs":
		if opt.GraphName == "Road" {
			// §V-A: "it does not use direction optimization (always push).
			// This eliminates the runtime overhead of checking the number
			// of active vertices."
			s.Direction = PushOnly
		}
	case "cc":
		if opt.GraphName == "Road" {
			// §V-C: "label propagation with a short-circuiting approach on
			// Road as the vertex chains tended to go longer on
			// high-diameter graphs", ~3x but still far behind Afforest.
			s.ShortCircuit = true
		}
		s.CacheTiling = opt.GraphName == "Twitter" || opt.GraphName == "Kron" || opt.GraphName == "Urand"
	case "pr":
		// §V-D: cache optimization from tiling pays on everything except
		// Web, which "had good locality and did not benefit as much".
		s.CacheTiling = opt.GraphName != "Web"
	case "bc":
		if opt.GraphName == "Road" {
			// §V-E: "reduces overhead by not using a bitvector for the
			// frontier on Road".
			s.Frontier = SparseList
		}
	}
	return s
}

// scheduleFor picks the schedule under the active rule set.
func scheduleFor(kernelName string, g *graph.Graph, opt kernel.Options) Schedule {
	if opt.Mode == kernel.Optimized && opt.GraphName != "" {
		return specialize(kernelName, g, opt)
	}
	return autotune(kernelName, g)
}

// segmentsFor sizes PR's cache tiles so each segment's source-vertex range
// fits roughly in a per-core cache slice.
func segmentsFor(g *graph.Graph) int {
	const targetVerticesPerSegment = 1 << 15
	n := int(g.NumNodes())
	segs := (n + targetVerticesPerSegment - 1) / targetVerticesPerSegment
	if segs < 1 {
		segs = 1
	}
	return segs
}

package grb

import "fmt"

// grbcheck is the package's runtime sanitizer: structural invariants of the
// opaque vector/matrix representations are asserted at every operation
// boundary, and a violation panics naming the invariant, the operation, and
// the offending position. SuiteSparse ships the same idea as GxB_*_check;
// here it exists because the formats are easy to corrupt from inside the
// package (the algorithm layer in internal/lagraph reaches into ind/val for
// speed, exactly like LAGraph's pack/unpack does) and a silently unsorted
// sparse list degrades into wrong answers, not crashes.
//
// The checks are compiled unconditionally but gated on grbcheckEnabled,
// which is false unless the `grbcheck` build tag flips it (check_grbcheck.go)
// — a var rather than twin build-tagged implementations so that tooling
// which parses the package without tag filtering (gapvet's loader) never
// sees duplicate symbols. Run the sanitizer tier with:
//
//	go test -tags=grbcheck -short ./internal/grb/ ./internal/lagraph/
var grbcheckEnabled = false

// checkFail reports a violated invariant. The invariant name is the stable,
// grep-able identifier tests assert on.
func checkFail(op, invariant, detail string) {
	panic(fmt.Sprintf("grb: grbcheck: %s: invariant %q violated: %s", op, invariant, detail))
}

// checkVector asserts the representation invariants of v for its current
// format:
//
//	sparse-length-agreement  len(ind) == len(val)
//	sparse-sorted-unique     ind is strictly increasing
//	index-in-range           every stored index is in [0, n)
//	dense-length             bitmap/full backing array spans all n entries
//	bitmap-present-length    bitmap presence bitset spans all n entries
func checkVector[T Number](op string, v *Vector[T]) {
	if !grbcheckEnabled || v == nil {
		return
	}
	switch v.format {
	case Sparse:
		if len(v.ind) != len(v.val) {
			checkFail(op, "sparse-length-agreement",
				fmt.Sprintf("%d indices but %d values", len(v.ind), len(v.val)))
		}
		for k, i := range v.ind {
			if i < 0 || i >= v.n {
				checkFail(op, "index-in-range",
					fmt.Sprintf("ind[%d] = %d outside [0, %d)", k, i, v.n))
			}
			if k > 0 && v.ind[k-1] >= i {
				checkFail(op, "sparse-sorted-unique",
					fmt.Sprintf("ind[%d] = %d does not follow ind[%d] = %d", k, i, k-1, v.ind[k-1]))
			}
		}
	case Bitmap:
		if Index(len(v.dense)) != v.n {
			checkFail(op, "dense-length",
				fmt.Sprintf("dense has %d entries, vector size is %d", len(v.dense), v.n))
		}
		if v.present == nil || v.present.Len() != v.n {
			got := Index(-1)
			if v.present != nil {
				got = v.present.Len()
			}
			checkFail(op, "bitmap-present-length",
				fmt.Sprintf("presence bitset spans %d entries, vector size is %d", got, v.n))
		}
	default: // Full
		if Index(len(v.dense)) != v.n {
			checkFail(op, "dense-length",
				fmt.Sprintf("dense has %d entries, vector size is %d", len(v.dense), v.n))
		}
	}
}

// checkMatrix asserts the CSR invariants of m:
//
//	rowptr-length    len(rowPtr) == nrows+1 and rowPtr[0] == 0
//	rowptr-monotone  rowPtr is nondecreasing and ends at len(colInd)
//	colind-in-range  every column index is in [0, ncols)
//	weight-length    weight is nil or parallel to colInd
func checkMatrix(op string, m *Matrix) {
	if !grbcheckEnabled || m == nil {
		return
	}
	if Index(len(m.rowPtr)) != m.nrows+1 || m.rowPtr[0] != 0 {
		checkFail(op, "rowptr-length",
			fmt.Sprintf("rowPtr has %d entries for %d rows (rowPtr[0] must be 0)", len(m.rowPtr), m.nrows))
	}
	for r := Index(0); r < m.nrows; r++ {
		if m.rowPtr[r+1] < m.rowPtr[r] {
			checkFail(op, "rowptr-monotone",
				fmt.Sprintf("rowPtr[%d] = %d < rowPtr[%d] = %d", r+1, m.rowPtr[r+1], r, m.rowPtr[r]))
		}
	}
	if m.rowPtr[m.nrows] != Index(len(m.colInd)) {
		checkFail(op, "rowptr-monotone",
			fmt.Sprintf("rowPtr[%d] = %d but %d entries are stored", m.nrows, m.rowPtr[m.nrows], len(m.colInd)))
	}
	for t, c := range m.colInd {
		if c < 0 || c >= m.ncols {
			checkFail(op, "colind-in-range",
				fmt.Sprintf("colInd[%d] = %d outside [0, %d)", t, c, m.ncols))
		}
	}
	if m.weight != nil && len(m.weight) != len(m.colInd) {
		checkFail(op, "weight-length",
			fmt.Sprintf("%d weights for %d entries", len(m.weight), len(m.colInd)))
	}
}

// checkMask asserts that a non-nil mask spans the output it guards:
//
//	mask-length  mask presence bitset spans all n output positions
func checkMask(op string, mask *Mask, n Index) {
	if !grbcheckEnabled || mask == nil {
		return
	}
	if mask.present.Len() != n {
		checkFail(op, "mask-length",
			fmt.Sprintf("mask spans %d entries, output size is %d", mask.present.Len(), n))
	}
}

// checkLengths asserts two parallel operand arrays agree:
//
//	operand-length-agreement  index and value operands are parallel
func checkLengths(op string, nIdx, nVal int) {
	if !grbcheckEnabled {
		return
	}
	if nIdx != nVal {
		checkFail(op, "operand-length-agreement",
			fmt.Sprintf("%d indices but %d values", nIdx, nVal))
	}
}

// checkSameSize asserts two vectors in one element-wise operation agree on
// length:
//
//	vector-size-agreement  both operands have the same size
func checkSameSize[T Number](op string, a, b *Vector[T]) {
	if !grbcheckEnabled {
		return
	}
	if a.n != b.n {
		checkFail(op, "vector-size-agreement",
			fmt.Sprintf("operands have sizes %d and %d", a.n, b.n))
	}
}

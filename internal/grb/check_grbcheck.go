//go:build grbcheck

package grb

// Building with -tags=grbcheck turns the runtime sanitizer on; see check.go.
func init() { grbcheckEnabled = true }

//go:build grbcheck

package grb

import (
	"gapbench/internal/par"

	"strings"
	"testing"
)

// mustPanic runs fn and asserts it panics with a grbcheck message containing
// every want substring (the op name and the invariant identifier).
func mustPanic(t *testing.T, fn func(), want ...string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("operation on corrupted operand did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want a grbcheck string", r, r)
		}
		if !strings.HasPrefix(msg, "grb: grbcheck: ") {
			t.Fatalf("panic %q is not a grbcheck report", msg)
		}
		for _, w := range want {
			if !strings.Contains(msg, w) {
				t.Errorf("panic %q does not name %q", msg, w)
			}
		}
	}()
	fn()
}

func testMatrix(t *testing.T) *Matrix {
	t.Helper()
	return FromGraphStructuralForTest(t)
}

// TestGrbcheckEnabled guards the build wiring: this file only compiles under
// the grbcheck tag, and the tag must have flipped the gate on.
func TestGrbcheckEnabled(t *testing.T) {
	if !grbcheckEnabled {
		t.Fatal("built with -tags=grbcheck but the sanitizer gate is off")
	}
}

// TestGrbcheckCleanOpsPass exercises each checked operation with healthy
// operands: the sanitizer must stay silent on well-formed inputs.
func TestGrbcheckCleanOpsPass(t *testing.T) {
	a := testMatrix(t)
	q := NewSparse[int64](a.NCols())
	q.SetElement(2, 1)
	q.SetElement(0, 1)
	VxM(par.Default(), q, a, MinFirst(), nil, 2)
	MxV(par.Default(), a, q, MinFirst(), nil, 2)
	MxVFull(par.Default(), a, NewFull[int64](a.NCols(), 1), MinFirst(), 2)
	EWiseAdd(q, q, func(x, y int64) int64 { return x + y })
	EWiseMult(q, q, func(x, y int64) int64 { return x * y })
	a.Transpose()
	ScatterMin(NewFull[int64](a.NCols(), 9), []int64{0, 1}, []int64{3, 4})
	SelectRange(NewFull[int64](a.NCols(), 1), 0, 2)
}

// TestGrbcheckCorruptedVector seeds each vector corruption and asserts the
// panic names the violated invariant.
func TestGrbcheckCorruptedVector(t *testing.T) {
	a := testMatrix(t)

	t.Run("unsorted sparse indices", func(t *testing.T) {
		q := NewSparse[int64](a.NCols())
		q.SetElement(0, 1)
		q.SetElement(2, 1)
		q.ind[0], q.ind[1] = q.ind[1], q.ind[0] // corrupt: 2 before 0
		mustPanic(t, func() { VxM(par.Default(), q, a, MinFirst(), nil, 1) },
			"VxM input q", "sparse-sorted-unique")
	})

	t.Run("duplicate sparse index", func(t *testing.T) {
		q := NewSparse[int64](a.NCols())
		q.SetElement(1, 1)
		q.ind = append(q.ind, 1) // corrupt: 1 stored twice
		q.val = append(q.val, 5)
		mustPanic(t, func() { VxM(par.Default(), q, a, MinFirst(), nil, 1) },
			"VxM input q", "sparse-sorted-unique")
	})

	t.Run("index value length mismatch", func(t *testing.T) {
		q := NewSparse[int64](a.NCols())
		q.SetElement(1, 1)
		q.ind = append(q.ind, 3) // corrupt: index without a value
		mustPanic(t, func() { MxV(par.Default(), a, q, MinFirst(), nil, 1) },
			"MxV input q", "sparse-length-agreement")
	})

	t.Run("sparse index out of range", func(t *testing.T) {
		q := NewSparse[int64](a.NCols())
		q.SetElement(1, 1)
		q.ind[0] = a.NCols() + 7 // corrupt: beyond the vector
		mustPanic(t, func() { MxV(par.Default(), a, q, MinFirst(), nil, 1) },
			"MxV input q", "index-in-range")
	})

	t.Run("truncated dense backing", func(t *testing.T) {
		q := NewFull[int64](a.NCols(), 1)
		q.dense = q.dense[:len(q.dense)-1] // corrupt: short array
		mustPanic(t, func() { MxVFull(par.Default(), a, q, MinFirst(), 1) },
			"MxVFullInto input q", "dense-length")
	})

	t.Run("bitmap presence bitset wrong length", func(t *testing.T) {
		q := NewFull[int64](a.NCols(), 1).ToBitmap()
		q.present = NewBitset(a.NCols() - 1) // corrupt: short bitset
		mustPanic(t, func() { EWiseAdd(q, q, func(x, y int64) int64 { return x + y }) },
			"EWiseAdd input a", "bitmap-present-length")
	})

	t.Run("element-wise size mismatch", func(t *testing.T) {
		x := NewSparse[int64](4)
		y := NewSparse[int64](5)
		mustPanic(t, func() { EWiseMult(x, y, func(x, y int64) int64 { return x * y }) },
			"EWiseMult", "vector-size-agreement")
	})

	t.Run("scatter operand mismatch", func(t *testing.T) {
		dst := NewFull[int64](4, 9)
		mustPanic(t, func() { ScatterMin(dst, []int64{0, 1}, []int64{3}) },
			"ScatterMin", "operand-length-agreement")
	})
}

// TestGrbcheckCorruptedMatrix seeds CSR corruptions.
func TestGrbcheckCorruptedMatrix(t *testing.T) {
	q := NewSparse[int64](4)
	q.SetElement(0, 1)

	t.Run("non-monotone rowPtr", func(t *testing.T) {
		a := testMatrix(t)
		a.rowPtr[2], a.rowPtr[1] = a.rowPtr[1], a.rowPtr[2]+2 // corrupt
		mustPanic(t, func() { VxM(par.Default(), q, a, MinFirst(), nil, 1) },
			"VxM input A", "rowptr-monotone")
	})

	t.Run("column index out of range", func(t *testing.T) {
		a := testMatrix(t)
		a.colInd[0] = a.NCols() + 3 // corrupt
		mustPanic(t, func() { MxMPlusPairReduce(par.Default(), a, a, 1) },
			"MxMPlusPairReduce input L", "colind-in-range")
	})

	t.Run("rowPtr length wrong", func(t *testing.T) {
		a := testMatrix(t)
		a.rowPtr = a.rowPtr[:len(a.rowPtr)-1] // corrupt
		mustPanic(t, func() { a.Transpose() },
			"Transpose input", "rowptr-length")
	})

	t.Run("weights not parallel to entries", func(t *testing.T) {
		a := testMatrix(t)
		a.weight = []int32{1} // corrupt: 1 weight for many entries
		mustPanic(t, func() { MxV(par.Default(), a, q, MinFirst(), nil, 1) },
			"MxV input A", "weight-length")
	})
}

// TestGrbcheckCorruptedMask seeds a mask that does not span the output.
func TestGrbcheckCorruptedMask(t *testing.T) {
	a := testMatrix(t)
	q := NewSparse[int64](a.NCols())
	q.SetElement(0, 1)
	short := NewMask(NewBitset(a.NCols()-2), false)
	mustPanic(t, func() { VxM(par.Default(), q, a, MinFirst(), short, 1) },
		"VxM mask", "mask-length")
}

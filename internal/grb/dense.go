package grb

import (
	"math/bits"

	"gapbench/internal/par"
)

// DenseMatrix is a k-by-n dense matrix with structural presence per entry —
// the "dense and 4-by-n" operand §V-E says dominates LAGraph's batched
// Brandes: one row per BC root, one column per vertex, so all four frontiers
// advance through single bulk operations.
type DenseMatrix struct {
	rows int
	n    Index
	val  [][]float64
	pres []*Bitset
}

// NewDenseMatrix returns an empty k-by-n dense matrix.
func NewDenseMatrix(k int, n Index) *DenseMatrix {
	d := &DenseMatrix{rows: k, n: n, val: make([][]float64, k), pres: make([]*Bitset, k)}
	for r := 0; r < k; r++ {
		d.val[r] = make([]float64, n)
		d.pres[r] = NewBitset(n)
	}
	return d
}

// Rows returns k.
func (d *DenseMatrix) Rows() int { return d.rows }

// Cols returns n.
func (d *DenseMatrix) Cols() Index { return d.n }

// Set stores value at (r, c) and marks it present.
func (d *DenseMatrix) Set(r int, c Index, v float64) {
	d.val[r][c] = v
	d.pres[r].Set(c)
}

// Get returns the value and presence at (r, c).
func (d *DenseMatrix) Get(r int, c Index) (float64, bool) {
	return d.val[r][c], d.pres[r].Get(c)
}

// RowNVals returns the number of present entries in row r.
func (d *DenseMatrix) RowNVals(r int) Index { return d.pres[r].Count() }

// NVals returns the total number of present entries.
func (d *DenseMatrix) NVals() Index {
	var total Index
	for r := 0; r < d.rows; r++ {
		total += d.pres[r].Count()
	}
	return total
}

// RowStructure exposes row r's presence bitset (for masks).
func (d *DenseMatrix) RowStructure(r int) *Bitset { return d.pres[r] }

// RowValues exposes row r's backing values.
func (d *DenseMatrix) RowValues(r int) []float64 { return d.val[r] }

// DenseMxM computes W<rowMasks> = F * A over the plus_first semiring for a
// dense k-by-n F: W[r][j] = Σ_{k: F[r][k] present, A[k][j] present} F[r][k],
// with each output row masked by rowMask(r). This is one batched frontier
// advance for all k BC roots — the matrix-matrix product §V-E describes.
// Parallelism is over the columns of the frontier rows (dynamic chunks over
// present entries).
func DenseMxM(exec *par.Machine, f *DenseMatrix, a *Matrix, rowMask func(r int) *Mask, workers int) *DenseMatrix {
	checkMatrix("DenseMxM input A", a)
	out := NewDenseMatrix(f.rows, f.n)
	for r := 0; r < f.rows; r++ {
		mask := rowMask(r)
		checkMask("DenseMxM row mask", mask, a.ncols)
		src := f.val[r]
		pres := f.pres[r]
		dst := out.val[r]
		dstPres := out.pres[r]
		// Gather the present source columns once, then scatter in parallel
		// with per-worker partials merged serially (same bulk structure as
		// VxM).
		var active []Index
		for c := Index(0); c < f.n; c++ {
			if pres.Get(c) {
				active = append(active, c)
			}
		}
		type contrib struct {
			j Index
			x float64
		}
		nw := workers
		if nw < 1 {
			nw = 1
		}
		partial := make([][]contrib, nw)
		exec.ForWorker(len(active), workers, func(w, lo, hi int) {
			var local []contrib
			for i := lo; i < hi; i++ {
				k := active[i]
				x := src[k]
				cols, _ := a.Row(k)
				for _, j := range cols {
					if mask.Allow(j) {
						local = append(local, contrib{j, x})
					}
				}
			}
			partial[w] = local
		})
		for _, local := range partial {
			for _, e := range local {
				if dstPres.Get(e.j) {
					dst[e.j] += e.x
				} else {
					dst[e.j] = e.x
					dstPres.Set(e.j)
				}
			}
		}
	}
	return out
}

// DenseMxMDir is DenseMxM with per-row Beamer dispatch: each root row decides
// push vs pull independently from its own running accounting in st[r] (nil
// entries pin push, matching DenseMxM). The scout count is the degree sum of
// the row's present columns — one hub root can carry more scatter work than
// thousands of road roots at the same frontier size, so per-row vertex counts
// would misprice the batch. Push scatters like DenseMxM; pull gathers over
// at's rows restricted to the row mask's survivors (plus_first semantics),
// machine-parallel in dynamic chunks so the cancel token is polled between
// chunks.
func DenseMxMDir(exec *par.Machine, f *DenseMatrix, a, at *Matrix, rowMask func(r int) *Mask, st []*PushPullState, workers int) *DenseMatrix {
	checkMatrix("DenseMxMDir input A", a)
	checkMatrix("DenseMxMDir input A'", at)
	out := NewDenseMatrix(f.rows, f.n)
	if workers < 1 {
		workers = 1
	}
	for r := 0; r < f.rows; r++ {
		mask := rowMask(r)
		checkMask("DenseMxMDir row mask", mask, a.ncols)
		src := f.val[r]
		pres := f.pres[r]
		dst := out.val[r]
		dstPres := out.pres[r]
		// Word-scan gather of the present source columns, summing their a-row
		// degrees along the way (this root's scout count).
		var active []Index
		var scout Index
		for wi, w := range pres.words {
			base := Index(wi) << 6
			for ; w != 0; w &= w - 1 {
				k := base + Index(bits.TrailingZeros64(w))
				active = append(active, k)
				scout += a.RowDegree(k)
			}
		}
		var rst *PushPullState
		if st != nil {
			rst = st[r]
		}
		pull := rst != nil && (rst.Policy == DirPull ||
			(rst.Policy == DirAuto && rst.Alpha > 0 && scout > rst.edgesToCheck/Index(rst.Alpha)))
		if pull {
			pullRow := func(j Index) {
				cols, _ := at.Row(j)
				var acc float64
				hit := false
				for _, k := range cols {
					if pres.Get(k) {
						acc += src[k]
						hit = true
					}
				}
				if hit {
					dst[j] = acc
					dstPres.SetAtomic(j)
				}
			}
			if rows, ok := maskSurvivorRows(exec, mask, at.nrows, nil, workers); ok {
				exec.ForDynamic(len(rows), 64, workers, func(lo, hi int) {
					for t := lo; t < hi; t++ {
						pullRow(rows[t])
					}
				})
			} else {
				// No mask: every output column is live.
				exec.ForDynamic(int(at.nrows), 64, workers, func(lo, hi int) {
					for t := lo; t < hi; t++ {
						pullRow(Index(t))
					}
				})
			}
			continue
		}
		if rst != nil {
			rst.edgesToCheck -= scout
		}
		// Push: the DenseMxM scatter path over the pre-gathered active columns.
		type contrib struct {
			j Index
			x float64
		}
		partial := make([][]contrib, workers)
		exec.ForWorker(len(active), workers, func(w, lo, hi int) {
			var local []contrib
			for i := lo; i < hi; i++ {
				k := active[i]
				x := src[k]
				cols, _ := a.Row(k)
				for _, j := range cols {
					if mask.Allow(j) {
						local = append(local, contrib{j, x})
					}
				}
			}
			partial[w] = local
		})
		for _, local := range partial {
			for _, e := range local {
				if dstPres.Get(e.j) {
					dst[e.j] += e.x
				} else {
					dst[e.j] = e.x
					dstPres.Set(e.j)
				}
			}
		}
	}
	return out
}

// Package grb reproduces the SuiteSparse:GraphBLAS substrate the paper
// evaluates: sparse matrices and vectors over semirings, with masked
// matrix-vector products, element-wise operations, selection, and reduction.
// Graph algorithms built on it live in the sibling package lagraph, mirroring
// the GraphBLAS/LAGraph split ("GraphBLAS does not include any graph
// algorithms directly; these are in algorithms that use GraphBLAS").
//
// Two structural costs the paper attributes to GraphBLAS are reproduced
// deliberately:
//
//   - 64-bit indices everywhere (GraphBLAS is designed for 2^60-node graphs,
//     so it "must use 64-bit integers" while other frameworks use 32-bit).
//   - Bulk, unfused operations: every primitive materializes its result, and
//     vectors are converted between sparse, bitmap, and full formats with the
//     conversion time inside the timed region, as §V-A describes.
package grb

import "sync/atomic"

// Index is a GraphBLAS vertex/matrix index. Deliberately 64-bit; see the
// package comment.
type Index = int64

// Number constrains the value types the semiring operations run over.
type Number interface {
	~int32 | ~int64 | ~float64
}

// Bitset tracks structural presence of vector entries in bitmap format.
type Bitset struct {
	words []uint64
	n     Index
}

// NewBitset returns a cleared bitset for n entries.
func NewBitset(n Index) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Set marks entry i present. Not safe for concurrent writers that may share
// a word; parallel producers use SetAtomic.
func (b *Bitset) Set(i Index) { b.words[i>>6] |= 1 << uint(i&63) }

// SetAtomic marks entry i present with an atomic OR, safe for concurrent
// writers whose indices may share a 64-bit word (adjacent rows at worker
// range boundaries).
func (b *Bitset) SetAtomic(i Index) {
	atomic.OrUint64(&b.words[i>>6], 1<<uint(i&63))
}

// Clear marks entry i absent.
func (b *Bitset) Clear(i Index) { b.words[i>>6] &^= 1 << uint(i&63) }

// Get reports whether entry i is present. The ops read *input* bitsets with
// Get (read-only for the duration of the operation) while writing *output*
// bitsets with SetAtomic; the two are distinct objects even though field
// identity unifies them.
func (b *Bitset) Get(i Index) bool {
	//gapvet:ignore atomic-plain-mix -- input bitsets are read-only during an op; SetAtomic targets the distinct output bitset
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Len returns the bitset capacity.
func (b *Bitset) Len() Index { return b.n }

// Count returns the number of present entries.
func (b *Bitset) Count() Index {
	var total Index
	for _, w := range b.words {
		for ; w != 0; w &= w - 1 {
			total++
		}
	}
	return total
}

// Reset clears all entries.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns a copy of the bitset.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Mask is a structural mask for an operation's output, like the C API's
// GrB_Descriptor mask settings: writes to position i are allowed iff
// Allow(i). A nil *Mask allows every position.
type Mask struct {
	present    *Bitset
	complement bool
}

// NewMask wraps a presence bitset; complement inverts it (the C API's
// GrB_COMP, written <!m> in the paper's pseudocode).
func NewMask(present *Bitset, complement bool) *Mask {
	return &Mask{present: present, complement: complement}
}

// Allow reports whether the mask permits writing position i.
func (m *Mask) Allow(i Index) bool {
	if m == nil {
		return true
	}
	return m.present.Get(i) != m.complement
}

package grb_test

import (
	"testing"
	"testing/quick"

	"gapbench/internal/graph"
	"gapbench/internal/grb"
	"gapbench/internal/par"
)

func testMatrix(t *testing.T) *grb.Matrix {
	t.Helper()
	// Directed triangle plus a tail: 0->1, 1->2, 2->0, 2->3.
	g, err := graph.BuildWeighted([]graph.WEdge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 3}, {U: 2, V: 0, W: 1}, {U: 2, V: 3, W: 9},
	}, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	return grb.FromGraph(g, false, true)
}

func TestBitsetBasics(t *testing.T) {
	b := grb.NewBitset(70)
	b.Set(0)
	b.Set(69)
	if !b.Get(0) || !b.Get(69) || b.Get(1) {
		t.Fatal("Set/Get wrong")
	}
	if b.Count() != 2 {
		t.Fatalf("Count = %d", b.Count())
	}
	b.Clear(0)
	if b.Get(0) || b.Count() != 1 {
		t.Fatal("Clear wrong")
	}
	c := b.Clone()
	c.Set(5)
	if b.Get(5) {
		t.Fatal("Clone shares storage")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset wrong")
	}
}

func TestMaskSemantics(t *testing.T) {
	present := grb.NewBitset(4)
	present.Set(1)
	m := grb.NewMask(present, false)
	if m.Allow(0) || !m.Allow(1) {
		t.Fatal("plain mask wrong")
	}
	c := grb.NewMask(present, true)
	if !c.Allow(0) || c.Allow(1) {
		t.Fatal("complement mask wrong")
	}
	var nilMask *grb.Mask
	if !nilMask.Allow(3) {
		t.Fatal("nil mask must allow everything")
	}
}

func TestVectorFormats(t *testing.T) {
	v := grb.NewSparse[int64](10)
	v.SetElement(7, 70)
	v.SetElement(2, 20)
	v.SetElement(7, 71) // overwrite
	if v.NVals() != 2 {
		t.Fatalf("NVals = %d", v.NVals())
	}
	if x, ok := v.Extract(7); !ok || x != 71 {
		t.Fatalf("Extract(7) = %v,%v", x, ok)
	}
	if _, ok := v.Extract(3); ok {
		t.Fatal("Extract(3) found a value")
	}

	b := v.ToBitmap()
	if b.NVals() != 2 {
		t.Fatalf("bitmap NVals = %d", b.NVals())
	}
	if x, ok := b.Extract(2); !ok || x != 20 {
		t.Fatalf("bitmap Extract(2) = %v,%v", x, ok)
	}
	s := b.ToSparse()
	if s.NVals() != 2 {
		t.Fatalf("sparse NVals = %d", s.NVals())
	}
	var got []grb.Index
	s.Iterate(func(i grb.Index, x int64) { got = append(got, i) })
	if len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Fatalf("iterate order = %v, want [2 7]", got)
	}

	full := grb.NewFull[int64](4, 9)
	if full.NVals() != 4 {
		t.Fatalf("full NVals = %d", full.NVals())
	}
	fs := full.ToSparse()
	if fs.NVals() != 4 {
		t.Fatalf("full->sparse NVals = %d", fs.NVals())
	}
}

func TestVectorDensePanicsOnSparse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dense() on sparse vector did not panic")
		}
	}()
	grb.NewSparse[int64](3).Dense()
}

func TestMatrixFromGraph(t *testing.T) {
	a := testMatrix(t)
	if a.NRows() != 4 || a.NCols() != 4 || a.NVals() != 4 {
		t.Fatalf("shape %dx%d nvals %d", a.NRows(), a.NCols(), a.NVals())
	}
	cols, ws := a.Row(2)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 3 {
		t.Fatalf("row 2 = %v", cols)
	}
	if ws[0] != 1 || ws[1] != 9 {
		t.Fatalf("row 2 weights = %v", ws)
	}
	if a.RowDegree(3) != 0 {
		t.Fatal("sink row has entries")
	}
}

func TestTrilTriu(t *testing.T) {
	g, err := graph.Build([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, graph.BuildOptions{Directed: false})
	if err != nil {
		t.Fatal(err)
	}
	a := grb.FromGraph(g, false, false)
	l := a.Tril(-1)
	u := a.Triu(1)
	if l.NVals() != 3 || u.NVals() != 3 {
		t.Fatalf("L nvals=%d U nvals=%d, want 3 each", l.NVals(), u.NVals())
	}
	for r := grb.Index(0); r < 3; r++ {
		lc, _ := l.Row(r)
		for _, c := range lc {
			if c >= r {
				t.Fatalf("L row %d has entry %d above diagonal", r, c)
			}
		}
		uc, _ := u.Row(r)
		for _, c := range uc {
			if c <= r {
				t.Fatalf("U row %d has entry %d below diagonal", r, c)
			}
		}
	}
}

func TestVxMMinPlus(t *testing.T) {
	a := testMatrix(t)
	q := grb.NewSparse[int32](4)
	q.SetElement(0, 0) // dist[0] = 0
	out := grb.VxM(par.Default(), q, a, grb.MinPlus(), nil, 2)
	if x, ok := out.Extract(1); !ok || x != 5 {
		t.Fatalf("relaxed dist[1] = %v,%v want 5", x, ok)
	}
	if _, ok := out.Extract(3); ok {
		t.Fatal("vertex 3 relaxed from 0 in one hop")
	}
}

func TestVxMMasked(t *testing.T) {
	a := testMatrix(t)
	q := grb.NewSparse[int64](4)
	q.SetElement(2, 2)
	visited := grb.NewBitset(4)
	visited.Set(0) // 0 already visited: masked out
	out := grb.VxM(par.Default(), q, a, grb.AnySecondi(), grb.NewMask(visited, true), 2)
	if _, ok := out.Extract(0); ok {
		t.Fatal("masked-out position written")
	}
	if p, ok := out.Extract(3); !ok || p != 2 {
		t.Fatalf("parent of 3 = %v,%v want 2", p, ok)
	}
}

// testMatrixTranspose returns the transpose (in-CSR) of testMatrix's graph.
func testMatrixTranspose(t *testing.T) *grb.Matrix {
	t.Helper()
	g, err := graph.BuildWeighted([]graph.WEdge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 3}, {U: 2, V: 0, W: 1}, {U: 2, V: 3, W: 9},
	}, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	return grb.FromGraph(g, true, false)
}

func TestMxVPull(t *testing.T) {
	at := testMatrixTranspose(t)
	// Frontier = {2}; pulling over AT finds vertices whose in-neighbors
	// include 2: rows of AT holding column 2 -> vertices 0 and 3.
	q := grb.NewSparse[int64](4)
	q.SetElement(2, 2)
	out := grb.MxV(par.Default(), at, q, grb.AnySecondi(), nil, 2)
	if p, ok := out.Extract(0); !ok || p != 2 {
		t.Fatalf("parent of 0 = %v,%v want 2", p, ok)
	}
	if p, ok := out.Extract(3); !ok || p != 2 {
		t.Fatalf("parent of 3 = %v,%v want 2", p, ok)
	}
	if _, ok := out.Extract(1); ok {
		t.Fatal("vertex 1 has no in-neighbor 2 but got a parent")
	}
}

func TestMxVFullPlusFirst(t *testing.T) {
	at := testMatrixTranspose(t)
	q := grb.NewFull[float64](4, 1)
	out := grb.MxVFull(par.Default(), at, q, grb.PlusFirst(), 2)
	// In-degrees: v0<-2, v1<-0, v2<-1, v3<-2 -> each sums 1 per in-edge.
	want := []float64{1, 1, 1, 1}
	for i, w := range want {
		if out.Dense()[i] != w {
			t.Fatalf("out[%d] = %v, want %v", i, out.Dense()[i], w)
		}
	}
}

func TestScatterMin(t *testing.T) {
	dst := grb.NewFull[int64](4, 100)
	grb.ScatterMin(dst, []int64{1, 1, 2}, []int64{50, 30, 200})
	d := dst.Dense()
	if d[1] != 30 {
		t.Fatalf("dst[1] = %d, want 30 (min of duplicates)", d[1])
	}
	if d[2] != 100 {
		t.Fatalf("dst[2] = %d, want 100 (200 not smaller)", d[2])
	}
}

func TestMxMPlusPairReduceTriangle(t *testing.T) {
	// Undirected triangle: exactly one triangle.
	g, err := graph.Build([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, graph.BuildOptions{Directed: false})
	if err != nil {
		t.Fatal(err)
	}
	a := grb.FromGraph(g, false, false)
	if got := grb.MxMPlusPairReduce(par.Default(), a.Tril(-1), a.Triu(1), 2); got != 1 {
		t.Fatalf("triangles = %d, want 1", got)
	}
}

func TestSelectRange(t *testing.T) {
	v := grb.NewFull[int32](6, 0)
	d := v.Dense()
	copy(d, []int32{5, 10, 15, 20, 25, 30})
	sel := grb.SelectRange(v, 10, 25)
	if sel.NVals() != 3 {
		t.Fatalf("NVals = %d, want 3", sel.NVals())
	}
	var idx []grb.Index
	sel.Iterate(func(i grb.Index, _ int32) { idx = append(idx, i) })
	if idx[0] != 1 || idx[1] != 2 || idx[2] != 3 {
		t.Fatalf("selected = %v", idx)
	}
}

func TestReduceVecAndApply(t *testing.T) {
	v := grb.NewSparse[int64](10)
	v.SetElement(1, 3)
	v.SetElement(5, 4)
	if got := grb.ReduceVec(v, grb.PlusMonoidI64()); got != 7 {
		t.Fatalf("reduce = %d, want 7", got)
	}
	grb.EWiseApply(v, func(_ grb.Index, x int64) int64 { return x * 2 })
	if got := grb.ReduceVec(v, grb.PlusMonoidI64()); got != 14 {
		t.Fatalf("reduce after apply = %d, want 14", got)
	}
}

// Property: sparse<->bitmap conversions preserve contents exactly.
func TestFormatConversionProperty(t *testing.T) {
	f := func(pairs []uint8) bool {
		v := grb.NewSparse[int64](256)
		ref := map[grb.Index]int64{}
		for i, p := range pairs {
			v.SetElement(grb.Index(p), int64(i))
			ref[grb.Index(p)] = int64(i)
		}
		round := v.ToBitmap().ToSparse()
		if round.NVals() != grb.Index(len(ref)) {
			return false
		}
		ok := true
		round.Iterate(func(i grb.Index, x int64) {
			if ref[i] != x {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the semiring monoids are associative and commutative with
// correct identities over random values.
func TestMonoidLaws(t *testing.T) {
	plus := grb.PlusMonoidI64()
	minI32 := grb.MinMonoidI32()
	f := func(a, b, c int32) bool {
		x, y, z := int64(a), int64(b), int64(c)
		if plus.Op(plus.Op(x, y), z) != plus.Op(x, plus.Op(y, z)) {
			return false
		}
		if plus.Op(x, y) != plus.Op(y, x) || plus.Op(x, plus.Identity) != x {
			return false
		}
		if minI32.Op(minI32.Op(a, b), c) != minI32.Op(a, minI32.Op(b, c)) {
			return false
		}
		return minI32.Op(a, minI32.Identity) == a && minI32.Op(a, b) == minI32.Op(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEWiseAddAndMult(t *testing.T) {
	a := grb.NewSparse[int64](8)
	a.SetElement(1, 10)
	a.SetElement(3, 30)
	b := grb.NewSparse[int64](8)
	b.SetElement(3, 3)
	b.SetElement(5, 5)
	add := grb.EWiseAdd(a, b, func(x, y int64) int64 { return x + y })
	if add.NVals() != 3 {
		t.Fatalf("union NVals = %d, want 3", add.NVals())
	}
	if x, _ := add.Extract(3); x != 33 {
		t.Fatalf("add[3] = %d, want 33", x)
	}
	if x, _ := add.Extract(5); x != 5 {
		t.Fatalf("add[5] = %d, want 5", x)
	}
	mult := grb.EWiseMult(a, b, func(x, y int64) int64 { return x * y })
	if mult.NVals() != 1 {
		t.Fatalf("intersection NVals = %d, want 1", mult.NVals())
	}
	if x, _ := mult.Extract(3); x != 90 {
		t.Fatalf("mult[3] = %d, want 90", x)
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	a := testMatrix(t)
	at := a.Transpose()
	if at.NVals() != a.NVals() {
		t.Fatalf("transpose nvals %d != %d", at.NVals(), a.NVals())
	}
	// (A')' == A entry for entry.
	back := at.Transpose()
	for r := grb.Index(0); r < a.NRows(); r++ {
		c1, w1 := a.Row(r)
		c2, w2 := back.Row(r)
		if len(c1) != len(c2) {
			t.Fatalf("row %d length changed", r)
		}
		for i := range c1 {
			if c1[i] != c2[i] || w1[i] != w2[i] {
				t.Fatalf("row %d entry %d changed", r, i)
			}
		}
	}
	// A'[v] must list v's in-neighbors.
	cols, _ := at.Row(0)
	if len(cols) != 1 || cols[0] != 2 {
		t.Fatalf("AT row 0 = %v, want [2]", cols)
	}
}

func TestApplyWeightsAndReduce(t *testing.T) {
	a := testMatrix(t)
	doubled := a.ApplyWeights(func(w int32) int32 { return 2 * w })
	_, ws := doubled.Row(0)
	if ws[0] != 10 {
		t.Fatalf("doubled weight = %d, want 10", ws[0])
	}
	sum := a.ReduceMatrixWeights(grb.PlusMonoidI64())
	if sum != 5+3+1+9 {
		t.Fatalf("weight sum = %d, want 18", sum)
	}
	// Structural reduce counts entries.
	structural := grb.FromGraphStructuralForTest(t)
	if got := structural.ReduceMatrixWeights(grb.PlusMonoidI64()); got != 4 {
		t.Fatalf("structural reduce = %d, want 4", got)
	}
}

func TestRowDegreesAndDiag(t *testing.T) {
	a := testMatrix(t)
	deg := a.RowDegrees().Dense()
	want := []int64{1, 1, 2, 0}
	for i, w := range want {
		if deg[i] != w {
			t.Fatalf("degree[%d] = %d, want %d", i, deg[i], w)
		}
	}
	v := grb.NewSparse[int32](4)
	v.SetElement(1, 7)
	v.SetElement(3, 9)
	d := grb.Diag(v)
	if d.NVals() != 2 {
		t.Fatalf("diag nvals = %d", d.NVals())
	}
	cols, ws := d.Row(1)
	if len(cols) != 1 || cols[0] != 1 || ws[0] != 7 {
		t.Fatalf("diag row 1 = %v %v", cols, ws)
	}
	if d.RowDegree(0) != 0 || d.RowDegree(2) != 0 {
		t.Fatal("diag has off-pattern rows")
	}
}

func TestExtractSubvector(t *testing.T) {
	v := grb.NewSparse[int64](10)
	v.SetElement(2, 20)
	v.SetElement(4, 40)
	sub := grb.ExtractSubvector(v, []grb.Index{2, 3, 4})
	if sub.NVals() != 2 {
		t.Fatalf("NVals = %d, want 2 (index 3 absent)", sub.NVals())
	}
	if x, _ := sub.Extract(4); x != 40 {
		t.Fatalf("sub[4] = %d", x)
	}
}

func TestGenericSemiringPaths(t *testing.T) {
	// A user-defined semiring (max_second over int64) must run through the
	// generic operator-pointer paths of VxM, MxV and MxVFull.
	maxSecond := grb.Semiring[int64]{
		Monoid: grb.Monoid[int64]{Identity: -1, Op: func(x, y int64) int64 {
			if x > y {
				return x
			}
			return y
		}},
		Mult: func(qval int64, w int32, _ grb.Index) int64 { return qval + int64(w) },
	}
	a := testMatrix(t)
	q := grb.NewSparse[int64](4)
	q.SetElement(2, 10)
	push := grb.VxM(par.Default(), q, a, maxSecond, nil, 2)
	// Row 2 holds (0,w=1) and (3,w=9): outputs 11 and 19.
	if x, _ := push.Extract(0); x != 11 {
		t.Fatalf("push[0] = %d, want 11", x)
	}
	if x, _ := push.Extract(3); x != 19 {
		t.Fatalf("push[3] = %d, want 19", x)
	}
	at := testMatrixTranspose(t)
	pull := grb.MxV(par.Default(), at, q, maxSecond, nil, 2)
	if x, ok := pull.Extract(0); !ok || x != 10 { // AT row 0: in-neighbor 2, structural weight... transpose keeps no weights here
		t.Fatalf("pull[0] = %d,%v want 10", x, ok)
	}
	full := grb.MxVFull(par.Default(), at, grb.NewFull[int64](4, 5), maxSecond, 2)
	if full.Dense()[0] != 5 {
		t.Fatalf("full[0] = %d, want 5", full.Dense()[0])
	}
}

func TestGenericSemiringTerminal(t *testing.T) {
	// A terminal value must stop the row reduction early (observable only
	// through correctness here: the result is the terminal).
	term := int64(99)
	clamp := grb.Semiring[int64]{
		Monoid: grb.Monoid[int64]{Identity: 0, Terminal: &term, Op: func(x, y int64) int64 {
			if x == 99 || y == 99 {
				return 99
			}
			return x + y
		}},
		Mult: func(qval int64, _ int32, _ grb.Index) int64 { return qval },
	}
	at := testMatrixTranspose(t)
	q := grb.NewFull[int64](4, 99)
	out := grb.MxV(par.Default(), at, q, clamp, nil, 1)
	if x, ok := out.Extract(0); !ok || x != 99 {
		t.Fatalf("terminal reduction = %d,%v", x, ok)
	}
}

func TestVectorCloneAndStructure(t *testing.T) {
	v := grb.NewSparse[int64](10)
	v.SetElement(4, 44)
	c := v.Clone()
	c.SetElement(5, 55)
	if v.NVals() != 1 || c.NVals() != 2 {
		t.Fatal("clone shares storage")
	}
	st := v.Structure()
	if !st.Get(4) || st.Get(5) {
		t.Fatal("sparse Structure wrong")
	}
	full := grb.NewFull[int64](3, 1)
	if full.Structure().Count() != 3 {
		t.Fatal("full Structure wrong")
	}
	bm := v.ToBitmap()
	if !bm.Structure().Get(4) {
		t.Fatal("bitmap Structure wrong")
	}
	if bm.Fmt() != grb.Bitmap || v.Fmt() != grb.Sparse {
		t.Fatal("Fmt wrong")
	}
	if st.Len() != 10 {
		t.Fatal("Len wrong")
	}
}

func TestAssignMaskedAndApplyFormats(t *testing.T) {
	dst := grb.NewFull[int64](6, 0)
	src := grb.NewSparse[int64](6)
	src.SetElement(1, 11)
	src.SetElement(2, 22)
	allow := grb.NewBitset(6)
	allow.Set(1)
	grb.AssignMasked(dst, src, grb.NewMask(allow, false))
	d := dst.Dense()
	if d[1] != 11 || d[2] != 0 {
		t.Fatalf("masked assign wrong: %v", d)
	}
	// EWiseApply across formats.
	grb.EWiseApply(dst, func(_ grb.Index, x int64) int64 { return x + 1 })
	if d[1] != 12 || d[0] != 1 {
		t.Fatalf("full apply wrong: %v", d)
	}
	bm := src.ToBitmap()
	grb.EWiseApply(bm, func(_ grb.Index, x int64) int64 { return -x })
	if x, _ := bm.Extract(1); x != -11 {
		t.Fatalf("bitmap apply wrong: %d", x)
	}
	minI64 := grb.Monoid[int64]{Identity: 1 << 62, Op: func(x, y int64) int64 {
		if x < y {
			return x
		}
		return y
	}}
	if got := grb.ReduceVec(bm, minI64); got != -22 {
		t.Fatalf("reduce after apply = %d", got)
	}
}

func TestMonoidConstructors(t *testing.T) {
	if grb.PlusMonoidF64().Op(1.5, 2.5) != 4 {
		t.Fatal("PlusMonoidF64 wrong")
	}
	if grb.PlusPair().Mult(123, 9, 7) != 1 {
		t.Fatal("PlusPair mult must ignore operands")
	}
	mf := grb.MinFirst()
	if mf.Mult(42, 9, 7) != 42 {
		t.Fatal("MinFirst mult must return qval")
	}
}

func TestDenseMatrixBasics(t *testing.T) {
	d := grb.NewDenseMatrix(2, 5)
	if d.Rows() != 2 || d.Cols() != 5 || d.NVals() != 0 {
		t.Fatal("fresh dense matrix wrong")
	}
	d.Set(0, 3, 1.5)
	d.Set(1, 0, 2.5)
	if v, ok := d.Get(0, 3); !ok || v != 1.5 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if _, ok := d.Get(0, 0); ok {
		t.Fatal("absent entry present")
	}
	if d.RowNVals(0) != 1 || d.NVals() != 2 {
		t.Fatal("counts wrong")
	}
}

func TestDenseMxMMatchesVectorProduct(t *testing.T) {
	a := testMatrix(t)
	// Two frontier rows: {0:1} and {2:3}.
	f := grb.NewDenseMatrix(2, 4)
	f.Set(0, 0, 1)
	f.Set(1, 2, 3)
	noMask := func(int) *grb.Mask { return nil }
	out := grb.DenseMxM(par.Default(), f, a, noMask, 2)
	// Row 0: vertex 0 -> 1 with value 1.
	if v, ok := out.Get(0, 1); !ok || v != 1 {
		t.Fatalf("out[0][1] = %v,%v", v, ok)
	}
	// Row 1: vertex 2 -> {0, 3} each with value 3.
	for _, c := range []grb.Index{0, 3} {
		if v, ok := out.Get(1, c); !ok || v != 3 {
			t.Fatalf("out[1][%d] = %v,%v", c, v, ok)
		}
	}
	if out.RowNVals(0) != 1 || out.RowNVals(1) != 2 {
		t.Fatal("row counts wrong")
	}
	// Masked: forbid column 3 in row 1.
	allow := grb.NewBitset(4)
	allow.Set(3)
	masked := grb.DenseMxM(par.Default(), f, a, func(r int) *grb.Mask {
		if r == 1 {
			return grb.NewMask(allow, true) // complement: everything but 3
		}
		return nil
	}, 2)
	if _, ok := masked.Get(1, 3); ok {
		t.Fatal("masked column written")
	}
	if _, ok := masked.Get(1, 0); !ok {
		t.Fatal("allowed column missing")
	}
}

func TestDenseMxMAccumulatesSharedTargets(t *testing.T) {
	// Two sources in one row pointing at a shared target must sum (plus
	// monoid), the sigma-accumulation BC depends on.
	g, err := graph.Build([]graph.Edge{{U: 0, V: 2}, {U: 1, V: 2}}, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	a := grb.FromGraph(g, false, false)
	f := grb.NewDenseMatrix(1, 3)
	f.Set(0, 0, 2)
	f.Set(0, 1, 5)
	out := grb.DenseMxM(par.Default(), f, a, func(int) *grb.Mask { return nil }, 2)
	if v, ok := out.Get(0, 2); !ok || v != 7 {
		t.Fatalf("accumulated = %v,%v want 7", v, ok)
	}
}

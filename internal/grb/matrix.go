package grb

import (
	"gapbench/internal/graph"
)

// Matrix is a sparse matrix in CSR format with 64-bit indices and optional
// int32 weights. For graph algorithms it is the adjacency matrix: A[k][j]
// present means edge k->j.
type Matrix struct {
	nrows, ncols Index
	rowPtr       []Index
	colInd       []Index
	weight       []int32 // nil for structural (unweighted) matrices
}

// NRows returns the number of rows.
func (m *Matrix) NRows() Index { return m.nrows }

// NCols returns the number of columns.
func (m *Matrix) NCols() Index { return m.ncols }

// NVals returns the number of stored entries.
func (m *Matrix) NVals() Index { return Index(len(m.colInd)) }

// Row returns row k's column indices and weights (weights nil when the
// matrix is structural).
func (m *Matrix) Row(k Index) ([]Index, []int32) {
	lo, hi := m.rowPtr[k], m.rowPtr[k+1]
	if m.weight == nil {
		return m.colInd[lo:hi], nil
	}
	return m.colInd[lo:hi], m.weight[lo:hi]
}

// RowDegree returns the number of entries in row k.
func (m *Matrix) RowDegree(k Index) Index { return m.rowPtr[k+1] - m.rowPtr[k] }

// FromGraph converts a CSR graph into an adjacency Matrix. transpose selects
// the in-CSR (A'), which LAGraph keeps alongside A for pull steps. The
// 32-to-64-bit index widening here doubles the adjacency footprint — the
// memory-bandwidth tax §V's "they can all use 32-bit integers, while
// GraphBLAS must use 64-bit integers" describes. withWeights carries the
// graph's edge weights into the matrix (needed only by min-plus SSSP).
func FromGraph(g *graph.Graph, transpose, withWeights bool) *Matrix {
	var index []int64
	var neigh []graph.NodeID
	var ws []graph.Weight
	if transpose {
		index, neigh = g.RawIn()
		ws = g.RawInWeights()
	} else {
		index, neigh = g.RawOut()
		ws = g.RawOutWeights()
	}
	n := Index(g.NumNodes())
	m := &Matrix{
		nrows:  n,
		ncols:  n,
		rowPtr: make([]Index, n+1),
		colInd: make([]Index, len(neigh)),
	}
	copy(m.rowPtr, index)
	for i, v := range neigh {
		m.colInd[i] = Index(v)
	}
	if withWeights && ws != nil {
		m.weight = append([]int32(nil), ws...)
	}
	return m
}

// Tril returns the strictly-lower-triangular part of m (entries with
// col < row + k, GxB_select with GxB_TRIL; k = -1 gives L = tril(A,-1)).
func (m *Matrix) Tril(k Index) *Matrix {
	return m.selectCols(func(row, col Index) bool { return col <= row+k })
}

// Triu returns the upper-triangular part of m (entries with col >= row + k;
// k = 1 gives U = triu(A,1)).
func (m *Matrix) Triu(k Index) *Matrix {
	return m.selectCols(func(row, col Index) bool { return col >= row+k })
}

func (m *Matrix) selectCols(keep func(row, col Index) bool) *Matrix {
	out := &Matrix{nrows: m.nrows, ncols: m.ncols, rowPtr: make([]Index, m.nrows+1)}
	for r := Index(0); r < m.nrows; r++ {
		cols, ws := m.Row(r)
		for i, c := range cols {
			if keep(r, c) {
				out.colInd = append(out.colInd, c)
				if ws != nil {
					out.weight = append(out.weight, ws[i])
				}
			}
		}
		out.rowPtr[r+1] = Index(len(out.colInd))
	}
	if m.weight == nil {
		out.weight = nil
	}
	return out
}

// FromGraphStructuralForTest builds the package's canonical 4-vertex test
// matrix without weights; exported for the test suite only.
func FromGraphStructuralForTest(t interface{ Fatal(...any) }) *Matrix {
	g, err := graph.BuildWeighted([]graph.WEdge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 3}, {U: 2, V: 0, W: 1}, {U: 2, V: 3, W: 9},
	}, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	return FromGraph(g, false, false)
}

package grb

import (
	"fmt"

	"gapbench/internal/par"
)

// entry is one scattered (index, value) contribution in a push product.
type entry[T Number] struct {
	j Index
	x T
}

// VxM computes w<mask> = q' * A over the semiring: a push-style product that
// scatters each stored q entry along its matrix row,
//
//	w[j] = ⊕_{k : q[k] present, A[k][j] present}  Mult(q[k], A[k][j], k)
//
// The input is converted to sparse format first (timed, per the SuiteSparse
// behaviour the paper describes) and the result is returned in bitmap
// format. Workers scatter into private buffers that are merged serially —
// the bulk-synchronous structure that gives GraphBLAS its per-operation
// overhead on tiny frontiers. Built-in semirings take specialized loops
// (SuiteSparse's pre-generated kernels); anything else runs the generic
// operator-pointer path.
func VxM[T Number](exec *par.Machine, q *Vector[T], a *Matrix, s Semiring[T], mask *Mask, workers int) *Vector[T] {
	out := &Vector[T]{n: q.n, format: Bitmap, dense: make([]T, q.n), present: NewBitset(q.n)}
	vxmInto(exec, q, a, s, mask, out, workers)
	return out
}

// vxmInto is VxM writing into a caller-provided bitmap-format output whose
// presence bitset is clear (the dense backing may hold stale values — every
// write below marks presence first-write-wins, so stale slots stay hidden).
func vxmInto[T Number](exec *par.Machine, q *Vector[T], a *Matrix, s Semiring[T], mask *Mask, out *Vector[T], workers int) {
	checkVector("VxM input q", q)
	checkMatrix("VxM input A", a)
	checkMask("VxM mask", mask, a.ncols)
	qs := q.ToSparse()
	checkVector("VxM sparse-converted q", qs)
	nq := len(qs.ind)
	if workers < 1 {
		workers = 1
	}
	// Per-slot scatter buffers merged serially below: one machine slot per
	// worker over a static partition of the stored q entries (the same
	// bulk-synchronous structure as the old hand-rolled fork-join, minus the
	// per-operation goroutine spawn GraphBLAS pays for on tiny frontiers).
	// Frontiers whose scatter is smaller than a region launch skip the
	// machine entirely and run the same body in the calling goroutine.
	serial := false
	if nq <= 64 {
		var scout Index
		for _, k := range qs.ind {
			scout += a.RowDegree(k)
		}
		serial = scout <= 2048
	}
	if serial {
		workers = 1
	}
	partial := make([][]entry[T], workers)
	scatter := func(w, lo, hi int) {
		var local []entry[T]
		for t := lo; t < hi; t++ {
			k := qs.ind[t]
			qv := qs.val[t]
			cols, ws := a.Row(k)
			switch s.Kind {
			case KindAnySecondi:
				vk := T(k)
				for _, j := range cols {
					if mask.Allow(j) {
						local = append(local, entry[T]{j, vk})
					}
				}
			case KindPlusFirst, KindMinFirst:
				for _, j := range cols {
					if mask.Allow(j) {
						local = append(local, entry[T]{j, qv})
					}
				}
			case KindMinPlus:
				for i, j := range cols {
					if mask.Allow(j) {
						local = append(local, entry[T]{j, qv + T(ws[i])})
					}
				}
			default:
				for i, j := range cols {
					if !mask.Allow(j) {
						continue
					}
					wt := int32(0)
					if ws != nil {
						wt = ws[i]
					}
					local = append(local, entry[T]{j, s.Mult(qv, wt, k)})
				}
			}
		}
		partial[w] = local
	}
	if serial {
		scatter(0, 0, nq)
	} else {
		exec.ForWorker(nq, workers, scatter)
	}

	merge := func(combine func(old, new T) T) {
		for _, local := range partial {
			for _, e := range local {
				if out.present.Get(e.j) {
					out.dense[e.j] = combine(out.dense[e.j], e.x)
				} else {
					out.dense[e.j] = e.x
					out.present.Set(e.j)
				}
			}
		}
	}
	switch s.Kind {
	case KindAnySecondi:
		merge(func(old, _ T) T { return old }) // ANY: first write wins
	case KindMinPlus, KindMinFirst:
		merge(func(old, x T) T {
			if x < old {
				return x
			}
			return old
		})
	case KindPlusFirst, KindPlusPair:
		merge(func(old, x T) T { return old + x })
	default:
		merge(s.Monoid.Op)
	}
	checkVector("VxM output", out)
}

// MxV computes w<mask> = A * q over the semiring: a pull-style product that
// gathers each output row's matrix entries against q,
//
//	w[i] = ⊕_{k : A[i][k] present, q[k] present}  Mult(q[k], A[i][k], k)
//
// q is converted to bitmap format first (timed). ANY monoids exit a row on
// the first contribution, which is what makes the pull direction profitable
// for BFS. The result is returned in bitmap format.
func MxV[T Number](exec *par.Machine, a *Matrix, q *Vector[T], s Semiring[T], mask *Mask, workers int) *Vector[T] {
	checkVector("MxV input q", q)
	checkMatrix("MxV input A", a)
	checkMask("MxV mask", mask, a.nrows)
	qb := q.ToBitmap()
	checkVector("MxV bitmap-converted q", qb)
	out := &Vector[T]{n: a.nrows, format: Bitmap, dense: make([]T, a.nrows), present: NewBitset(a.nrows)}
	switch s.Kind {
	case KindAnySecondi:
		// Specialized kernel: take the first frontier in-neighbor and stop.
		exec.ForBlocked(int(a.nrows), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if !mask.Allow(Index(i)) {
					continue
				}
				cols, _ := a.Row(Index(i))
				for _, k := range cols {
					if qb.present.Get(k) {
						out.dense[i] = T(k)
						out.present.SetAtomic(Index(i))
						break
					}
				}
			}
		})
		return out
	case KindPlusFirst:
		// Specialized kernel: sum the present q values along the row.
		exec.ForBlocked(int(a.nrows), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if !mask.Allow(Index(i)) {
					continue
				}
				cols, _ := a.Row(Index(i))
				var acc T
				hit := false
				for _, k := range cols {
					if qb.present.Get(k) {
						acc += qb.dense[k]
						hit = true
					}
				}
				if hit {
					out.dense[i] = acc
					out.present.SetAtomic(Index(i))
				}
			}
		})
		return out
	}
	// Generic operator-pointer path.
	exec.ForBlocked(int(a.nrows), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !mask.Allow(Index(i)) {
				continue
			}
			cols, ws := a.Row(Index(i))
			acc := s.Monoid.Identity
			hit := false
			for t, k := range cols {
				if !qb.present.Get(k) {
					continue
				}
				wt := int32(0)
				if ws != nil {
					wt = ws[t]
				}
				x := s.Mult(qb.dense[k], wt, k)
				if hit {
					acc = s.Monoid.Op(acc, x)
				} else {
					acc = x
					hit = true
				}
				if s.Monoid.Any {
					break
				}
				if s.Monoid.Terminal != nil && acc == *s.Monoid.Terminal {
					break
				}
			}
			if hit {
				out.dense[i] = acc
				out.present.SetAtomic(Index(i))
			}
		}
	})
	return out
}

// MxVFull computes w = A * q where q is a full vector and every output is
// produced (no mask, no sparsity): the SpMV at the heart of PageRank and
// FastSV. Built-in semirings run specialized loops.
func MxVFull[T Number](exec *par.Machine, a *Matrix, q *Vector[T], s Semiring[T], workers int) *Vector[T] {
	out := NewFull[T](a.nrows, s.Monoid.Identity)
	MxVFullInto(exec, a, q, s, out, workers)
	return out
}

// MxVFullInto is MxVFull writing into the caller's full vector out (length
// a.nrows): every output position is overwritten, so round loops can reuse
// one scratch vector per run instead of materializing a fresh result each
// iteration — the PR/CC per-round allocation hoist.
func MxVFullInto[T Number](exec *par.Machine, a *Matrix, q *Vector[T], s Semiring[T], out *Vector[T], workers int) {
	checkVector("MxVFullInto input q", q)
	checkMatrix("MxVFullInto input A", a)
	if out.format == Sparse || Index(len(out.dense)) != a.nrows {
		panic(fmt.Sprintf("grb: MxVFullInto output must be a full/bitmap vector of length %d", a.nrows))
	}
	dense := q.Dense()
	res := out.Dense()
	switch s.Kind {
	case KindPlusFirst:
		exec.ForBlocked(int(a.nrows), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				cols, _ := a.Row(Index(i))
				var acc T
				for _, k := range cols {
					acc += dense[k]
				}
				res[i] = acc
			}
		})
		return
	case KindMinFirst:
		exec.ForBlocked(int(a.nrows), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				cols, _ := a.Row(Index(i))
				acc := s.Monoid.Identity
				for _, k := range cols {
					if dense[k] < acc {
						acc = dense[k]
					}
				}
				res[i] = acc
			}
		})
		return
	}
	exec.ForBlocked(int(a.nrows), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, ws := a.Row(Index(i))
			acc := s.Monoid.Identity
			for t, k := range cols {
				wt := int32(0)
				if ws != nil {
					wt = ws[t]
				}
				acc = s.Monoid.Op(acc, s.Mult(dense[k], wt, k))
			}
			res[i] = acc
		}
	})
}

// ScatterMin performs dst[idx[t]] = min(dst[idx[t]], val[t]) over full int64
// vectors. The GraphBLAS C API leaves duplicate-index assignment undefined
// (§V-C: "the matrix assignment with the MIN operator as the accumulator
// does not take the minimum of multiple entries"), so LAGraph's FastSV ships
// its own kernel for this — as does this package.
func ScatterMin(dst *Vector[int64], idx, val []int64) {
	checkVector("ScatterMin dst", dst)
	checkLengths("ScatterMin operands", len(idx), len(val))
	d := dst.Dense()
	for t, i := range idx {
		if val[t] < d[i] {
			d[i] = val[t]
		}
	}
}

// MxMPlusPairReduce computes sum(C) where C<L> = L * U' over the plus_pair
// semiring: C[i][j] (for stored L[i][j]) is |row_i(L) ∩ row_j(U)|, the
// LAGraph triangle count. Faithful to §V-F, the whole value matrix is first
// materialized, then reduced and discarded — "It would be much faster to
// skip construction of the matrix and simply sum up its entries as they are
// computed", an unfused cost this reproduction keeps.
func MxMPlusPairReduce(exec *par.Machine, l, u *Matrix, workers int) int64 {
	checkMatrix("MxMPlusPairReduce input L", l)
	checkMatrix("MxMPlusPairReduce input U", u)
	// Materialize C's values row by row (structure equals L's).
	values := make([]int64, l.NVals())
	exec.ForDynamic(int(l.nrows), 64, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			li, _ := l.Row(Index(i))
			base := l.rowPtr[i]
			for t, j := range li {
				uj, _ := u.Row(j)
				values[base+Index(t)] = intersectSorted(li, uj)
			}
		}
	})
	// Reduce to scalar.
	var total int64
	for _, v := range values {
		total += v
	}
	return total
}

// intersectSorted counts common elements of two sorted index lists.
func intersectSorted(x, y []Index) int64 {
	var count int64
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

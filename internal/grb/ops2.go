package grb

// Element-wise and structural operations completing the GraphBLAS-style
// surface: eWiseAdd/eWiseMult on vectors, transpose, matrix apply/reduce,
// diagonal construction, and subvector extraction. The benchmark kernels use
// a few of these; the rest exist because a GraphBLAS that only runs six
// algorithms is not a GraphBLAS — downstream users compose new algorithms
// from exactly these primitives.

import "gapbench/internal/par"

// EWiseAdd combines two vectors with union semantics: positions present in
// either input appear in the output; positions present in both are combined
// with add.
func EWiseAdd[T Number](a, b *Vector[T], add func(x, y T) T) *Vector[T] {
	checkVector("EWiseAdd input a", a)
	checkVector("EWiseAdd input b", b)
	checkSameSize("EWiseAdd", a, b)
	out := &Vector[T]{n: a.n, format: Bitmap, dense: make([]T, a.n), present: NewBitset(a.n)}
	a.Iterate(func(i Index, x T) {
		out.dense[i] = x
		out.present.Set(i)
	})
	b.Iterate(func(i Index, y T) {
		if out.present.Get(i) {
			out.dense[i] = add(out.dense[i], y)
		} else {
			out.dense[i] = y
			out.present.Set(i)
		}
	})
	return out
}

// EWiseMult combines two vectors with intersection semantics: only positions
// present in both inputs appear, combined with mult.
func EWiseMult[T Number](a, b *Vector[T], mult func(x, y T) T) *Vector[T] {
	checkVector("EWiseMult input a", a)
	checkVector("EWiseMult input b", b)
	checkSameSize("EWiseMult", a, b)
	out := &Vector[T]{n: a.n, format: Bitmap, dense: make([]T, a.n), present: NewBitset(a.n)}
	bb := b.ToBitmap()
	a.Iterate(func(i Index, x T) {
		if bb.present.Get(i) {
			out.dense[i] = mult(x, bb.dense[i])
			out.present.Set(i)
		}
	})
	return out
}

// Transpose returns A' as a new CSR matrix (GrB_transpose materialized; the
// LAGraph_Graph convention of caching A' at load time builds on this).
//
// Like the graph builder's in-CSR construction, this is the parallel
// counting-sort pipeline — a sharded per-column histogram, an exclusive scan
// (which *is* the transposed rowPtr), and a stable per-worker-offset scatter.
// Stability preserves the grbcheck CSR invariants without a sort: entries are
// walked in row-major order, so each transposed row receives its (source-row)
// column indices in strictly increasing order, sorted and duplicate-free.
func (m *Matrix) Transpose() *Matrix {
	checkMatrix("Transpose input", m)
	nv := int(m.NVals())
	t := &Matrix{
		nrows:  m.ncols,
		ncols:  m.nrows,
		colInd: make([]Index, nv),
	}
	if m.weight != nil {
		t.weight = make([]int32, nv)
	}
	// rows[i] = source row owning entry i (the transposed column index).
	rows := make([]Index, nv)
	par.ForDynamic(int(m.nrows), 256, 0, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
				rows[i] = Index(r)
			}
		}
	})
	h := par.ShardedHistogram(nv, int(m.ncols), 0, func(i int) int { return int(m.colInd[i]) })
	t.rowPtr = h.Index()
	h.Scatter(func(i int, pos int64) {
		t.colInd[pos] = rows[i]
		if t.weight != nil {
			t.weight[pos] = m.weight[i]
		}
	})
	checkMatrix("Transpose output", t)
	return t
}

// ApplyWeights returns a copy of the matrix with every stored weight passed
// through fn (GrB_apply on values; structural matrices are returned
// unchanged except for the copy).
func (m *Matrix) ApplyWeights(fn func(w int32) int32) *Matrix {
	out := &Matrix{
		nrows:  m.nrows,
		ncols:  m.ncols,
		rowPtr: append([]Index(nil), m.rowPtr...),
		colInd: append([]Index(nil), m.colInd...),
	}
	if m.weight != nil {
		out.weight = make([]int32, len(m.weight))
		for i, w := range m.weight {
			out.weight[i] = fn(w)
		}
	}
	return out
}

// RowDegrees returns each row's entry count as a full vector — the
// GrB_reduce-by-row over the structural PLUS monoid that PageRank divides
// by.
func (m *Matrix) RowDegrees() *Vector[int64] {
	out := NewFull[int64](m.nrows, 0)
	d := out.Dense()
	for r := Index(0); r < m.nrows; r++ {
		d[r] = int64(m.RowDegree(r))
	}
	return out
}

// ReduceMatrixWeights folds every stored weight with the monoid
// (GrB_reduce to scalar).
func (m *Matrix) ReduceMatrixWeights(monoid Monoid[int64]) int64 {
	acc := monoid.Identity
	if m.weight == nil {
		for range m.colInd {
			acc = monoid.Op(acc, 1)
		}
		return acc
	}
	for _, w := range m.weight {
		acc = monoid.Op(acc, int64(w))
	}
	return acc
}

// Diag builds a diagonal matrix from a vector's stored entries, with the
// entry values as weights (GrB_Matrix_diag).
func Diag(v *Vector[int32]) *Matrix {
	n := v.Size()
	m := &Matrix{nrows: n, ncols: n, rowPtr: make([]Index, n+1)}
	v.Iterate(func(i Index, x int32) {
		m.colInd = append(m.colInd, i)
		m.weight = append(m.weight, x)
	})
	for _, c := range m.colInd {
		m.rowPtr[c+1]++
	}
	for i := Index(0); i < n; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m
}

// ExtractSubvector gathers v at the given indices into a sparse vector of
// the same length, keeping only present entries (GrB_extract with an index
// list).
func ExtractSubvector[T Number](v *Vector[T], indices []Index) *Vector[T] {
	out := NewSparse[T](v.n)
	for _, i := range indices {
		if x, ok := v.Extract(i); ok {
			out.SetElement(i, x)
		}
	}
	return out
}

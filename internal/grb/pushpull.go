package grb

import (
	"fmt"
	"math/bits"

	"gapbench/internal/par"
)

// Direction-aware masked SpMV. VxM (push) scatters the stored frontier
// entries and costs O(edges leaving the frontier); MxV (pull) gathers but
// iterates every output row, so a tiny frontier under a nearly-full
// complement mask still pays O(n) per round — the structural overhead §V-A
// attributes to GraphBLAS on high-diameter graphs. PushPullVxM closes that
// gap: it estimates the push cost as the *degree sum* of the stored frontier
// entries (Beamer's scout count — one hub can carry more work than thousands
// of road vertices, so vertex counts under-price push on skewed graphs),
// compares it against the remaining unexplored-edge budget, and on the pull
// side iterates only the rows the mask still allows (the complement-mask
// survivors) instead of all n.

// DirPolicy forces or frees PushPullVxM's direction choice.
type DirPolicy int

// Direction policies.
const (
	// DirAuto lets the Beamer-style degree-sum heuristic decide per call.
	DirAuto DirPolicy = iota
	// DirPush always scatters (VxM).
	DirPush
	// DirPull always gathers over the mask survivors.
	DirPull
)

// PushPullState carries the running Beamer accounting across the rounds of
// one search. Create one per traversal with NewPushPullState; each
// PushPullVxM call updates the unexplored-edge budget it consults.
type PushPullState struct {
	// Policy pins the direction (DirPush/DirPull) or frees it (DirAuto).
	Policy DirPolicy
	// Alpha is the push-vs-pull threshold (Beamer's alpha; pull when
	// scout > edgesToCheck/Alpha). Zero disables the pull side.
	Alpha int64
	// FloorOff disables the pull-floor gate (Beamer's beta test, sharpened).
	// Beamer's beta compares the awake count against n/beta because a
	// top-down BFS only estimates how much a bottom-up step will scan; a
	// masked SpMV knows it exactly — the pull gather probes every
	// mask-survivor row at least once, so the survivor count — priced at
	// pullProbeCost in-edge checks per row — bounds pull cost from below.
	// Auto therefore only pulls when the scout degree sum (the exact push
	// cost) exceeds that floor: a frontier that satisfies the alpha test on
	// degree sums alone (a few hubs late in a crawl) still pushes when most
	// rows would probe their in-edges fruitlessly.
	FloorOff bool
	// Recycle lets PushPullVxM reuse output vectors through a two-slot ring
	// held by this state. A returned vector is then invalidated two calls
	// later, so only enable it for round loops (like BFS) where round r's
	// product is dead once round r+1 has consumed it as the frontier.
	Recycle bool

	edges        Index
	edgesToCheck Index
	ring         [2]any  // recycled *Vector[T] outputs (type-erased)
	rowsBuf      []Index // survivor-row scratch for the pull gather
}

// NewPushPullState returns fresh accounting for a traversal over a.
func NewPushPullState(a *Matrix, policy DirPolicy) *PushPullState {
	e := a.NVals()
	return &PushPullState{Policy: policy, Alpha: 15, edges: e, edgesToCheck: e}
}

// pullProbeCost prices a survivor row for the pull-floor gate: the gather's
// first-in-neighbor early exit takes a few in-edge probes to fire on average
// (and never fires for rows not adjacent to the frontier), so a survivor row
// costs several edge-checks, not one. Measured flip rounds separate cleanly:
// profitable pulls carry scout ≥ 5x the survivor count, losing ones 1–3x.
const pullProbeCost = 4

// pullFloor returns the number of rows a pull gather must probe: the
// mask-survivor count (every output row without a mask). One popcount over
// the mask words per dispatch — cheap next to either direction's real work.
func pullFloor(mask *Mask, nrows Index) Index {
	if mask == nil {
		return nrows
	}
	c := mask.present.Count()
	if mask.complement {
		return nrows - c
	}
	return c
}

// frontierScout sums the a-row degrees of q's stored entries — the exact
// edge count a push step would traverse. Sparse frontiers reduce over the
// index list; bitmap frontiers reduce word-at-a-time on the machine.
func frontierScout[T Number](exec *par.Machine, a *Matrix, q *Vector[T], workers int) Index {
	switch q.format {
	case Sparse:
		ind := q.ind
		if len(ind) <= 1024 {
			var s Index
			for _, k := range ind {
				s += a.RowDegree(k)
			}
			return s
		}
		return Index(exec.ReduceInt64(len(ind), workers, func(lo, hi int) int64 {
			var s int64
			for _, k := range ind[lo:hi] {
				s += int64(a.RowDegree(k))
			}
			return s
		}))
	case Bitmap:
		words := q.present.words
		if len(words) <= 512 {
			var s Index
			for wi, w := range words {
				base := Index(wi) << 6
				for ; w != 0; w &= w - 1 {
					s += a.RowDegree(base + Index(bits.TrailingZeros64(w)))
				}
			}
			return s
		}
		return Index(exec.ReduceInt64(len(words), workers, func(lo, hi int) int64 {
			var s int64
			for wi := lo; wi < hi; wi++ {
				w := words[wi]
				base := Index(wi) << 6
				for ; w != 0; w &= w - 1 {
					s += int64(a.RowDegree(base + Index(bits.TrailingZeros64(w))))
				}
			}
			return s
		}))
	default: // Full: every entry present, so a push would touch every edge
		return a.NVals()
	}
}

// PushPullVxM computes w<mask> = q' * A, choosing the direction per call:
// push runs VxM over a, pull runs the sparse-aware gather over at (the
// transpose of a) restricted to the mask's surviving rows. Both directions
// produce the same bitmap-format product (asserted under grbcheck for small
// operands — see checkDirectionEquivalence), so callers treat this as a
// drop-in masked SpMV with Beamer dispatch.
func PushPullVxM[T Number](exec *par.Machine, q *Vector[T], a, at *Matrix, s Semiring[T], mask *Mask, st *PushPullState, workers int) *Vector[T] {
	if st == nil {
		st = NewPushPullState(a, DirAuto)
	}
	scout := frontierScout(exec, a, q, workers)
	// The floor gate itself is gated: counting survivors costs a popcount
	// over nrows/64 mask words, and a pull costs at least that same scan, so
	// a scout that cannot beat the word count pushes without counting (the
	// thousands of thin late rounds on a high-diameter graph take this exit).
	pull := st.Policy == DirPull ||
		(st.Policy == DirAuto && st.Alpha > 0 && scout > st.edgesToCheck/Index(st.Alpha) &&
			(st.FloorOff || (scout > a.nrows>>6 &&
				scout > pullFloor(mask, a.nrows)*pullProbeCost)))
	var out *Vector[T]
	if pull {
		out = vxmPull(exec, at, q, s, mask, st, workers)
	} else {
		st.edgesToCheck -= scout
		out = recycledOut(st, q, a.ncols)
		// A scatter smaller than a region launch runs serial in q's native
		// format: no sparse conversion, no per-worker partials, one pass.
		if scout <= pushSerialCutoff {
			checkVector("PushPullVxM push input q", q)
			checkMatrix("PushPullVxM push input A", a)
			checkMask("PushPullVxM push mask", mask, a.ncols)
			vxmPushSerial(a, q, s, mask, out)
			checkVector("PushPullVxM push output", out)
		} else {
			vxmInto(exec, q, a, s, mask, out, workers)
		}
	}
	if grbcheckEnabled && a.nrows <= directionCheckMaxN {
		// The recheck passes a nil state so its product never aliases the
		// primary result through the recycling ring.
		var other *Vector[T]
		if pull {
			other = VxM(exec, q, a, s, mask, workers)
			checkDirectionEquivalence("PushPullVxM", s, other, out)
		} else {
			other = vxmPull(exec, at, q, s, mask, nil, workers)
			checkDirectionEquivalence("PushPullVxM", s, out, other)
		}
	}
	return out
}

// recycledOut hands back a bitmap-format output vector for a dispatch round:
// a fresh allocation normally, or — when st.Recycle is on — a slot from the
// state's two-vector ring that is not the live frontier q. Recycled vectors
// only reset their presence bitset; the dense backing keeps stale values,
// which is sound because every reader checks presence first.
func recycledOut[T Number](st *PushPullState, q *Vector[T], n Index) *Vector[T] {
	if st == nil || !st.Recycle {
		return &Vector[T]{n: n, format: Bitmap, dense: make([]T, n), present: NewBitset(n)}
	}
	for i := range st.ring {
		if v, ok := st.ring[i].(*Vector[T]); ok && v != q && v.n == n {
			v.present.Reset()
			return v
		}
	}
	out := &Vector[T]{n: n, format: Bitmap, dense: make([]T, n), present: NewBitset(n)}
	for i := range st.ring {
		if v, ok := st.ring[i].(*Vector[T]); !ok || v != q {
			st.ring[i] = out
			break
		}
	}
	return out
}

// maskSurvivorRows collects the row indices a mask allows, scanning the mask
// bitset word-at-a-time with a two-pass machine-parallel gather (per-tile
// popcounts, serial prefix, parallel fill) so the machine polls the cancel
// token between tiles. A nil mask returns (nil, false): every row survives
// and the caller should run the dense row loop instead.
func maskSurvivorRows(exec *par.Machine, mask *Mask, n Index, buf []Index, workers int) ([]Index, bool) {
	if mask == nil {
		return nil, false
	}
	words := mask.present.words
	// maskWord returns the survivor bits of word wi, honoring complement and
	// clearing the tail bits past n so ^w cannot invent rows.
	maskWord := func(wi int) uint64 {
		w := words[wi]
		if mask.complement {
			w = ^w
		}
		if valid := n - Index(wi)<<6; valid < 64 {
			w &= (1 << uint(valid)) - 1
		}
		return w
	}
	const tileWords = 2048
	if len(words) <= 4096 {
		var cnt int
		for wi := range words {
			cnt += bits.OnesCount64(maskWord(wi))
		}
		rows := buf[:0]
		if cap(rows) < cnt {
			rows = make([]Index, 0, cnt)
		}
		for wi := range words {
			w := maskWord(wi)
			base := Index(wi) << 6
			for ; w != 0; w &= w - 1 {
				rows = append(rows, base+Index(bits.TrailingZeros64(w)))
			}
		}
		return rows, true
	}
	tiles := (len(words) + tileWords - 1) / tileWords
	offsets := make([]int64, tiles+1)
	exec.ForDynamic(tiles, 1, workers, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			var cnt int64
			for wi := t * tileWords; wi < min((t+1)*tileWords, len(words)); wi++ {
				cnt += int64(bits.OnesCount64(maskWord(wi)))
			}
			offsets[t+1] = cnt
		}
	})
	for t := 0; t < tiles; t++ {
		offsets[t+1] += offsets[t]
	}
	rows := buf[:0]
	if cap(rows) < int(offsets[tiles]) {
		rows = make([]Index, offsets[tiles])
	} else {
		rows = rows[:offsets[tiles]]
	}
	exec.ForDynamic(tiles, 1, workers, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			pos := offsets[t]
			for wi := t * tileWords; wi < min((t+1)*tileWords, len(words)); wi++ {
				w := maskWord(wi)
				base := Index(wi) << 6
				for ; w != 0; w &= w - 1 {
					rows[pos] = base + Index(bits.TrailingZeros64(w))
					pos++
				}
			}
		}
	})
	return rows, true
}

// vxmPull is the sparse-aware pull: w<mask> = A' * q computed by gathering
// over at's rows, but only the rows the mask allows — the complement-mask
// survivor set that shrinks every BFS round, where MxV would rescan all n.
// Rows are handed to the machine in dynamic chunks, so the cancel token is
// polled at chunk boundaries like every other par schedule.
func vxmPull[T Number](exec *par.Machine, at *Matrix, q *Vector[T], s Semiring[T], mask *Mask, st *PushPullState, workers int) *Vector[T] {
	checkVector("PushPullVxM pull input q", q)
	checkMatrix("PushPullVxM pull input A'", at)
	checkMask("PushPullVxM pull mask", mask, at.nrows)
	var buf []Index
	if st != nil {
		buf = st.rowsBuf
	}
	rows, ok := maskSurvivorRows(exec, mask, at.nrows, buf, workers)
	if st != nil && rows != nil {
		st.rowsBuf = rows[:0]
	}
	if !ok {
		// No mask: every row is live, which is exactly MxV's dense row loop.
		return MxV(exec, at, q, s, nil, workers)
	}
	qb := q.ToBitmap()
	checkVector("PushPullVxM pull bitmap-converted q", qb)
	out := recycledOut(st, q, at.nrows)
	// Tiny survivor sets run serial: one machine dispatch costs more than the
	// whole gather, and the serial loop can use plain (non-atomic) bit sets.
	const serialRowsCutoff = 2048
	if len(rows) <= serialRowsCutoff {
		vxmPullSerial(at, qb, s, rows, out)
		checkVector("PushPullVxM pull output", out)
		return out
	}
	switch s.Kind {
	case KindAnySecondi:
		// Specialized kernel: take the first frontier in-neighbor and stop.
		exec.ForDynamic(len(rows), 64, workers, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i := rows[t]
				cols, _ := at.Row(i)
				for _, k := range cols {
					if qb.present.Get(k) {
						out.dense[i] = T(k)
						out.present.SetAtomic(i)
						break
					}
				}
			}
		})
	case KindPlusFirst:
		// Specialized kernel: sum the present q values along the row.
		exec.ForDynamic(len(rows), 64, workers, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i := rows[t]
				cols, _ := at.Row(i)
				var acc T
				hit := false
				for _, k := range cols {
					if qb.present.Get(k) {
						acc += qb.dense[k]
						hit = true
					}
				}
				if hit {
					out.dense[i] = acc
					out.present.SetAtomic(i)
				}
			}
		})
	default:
		// Generic operator-pointer path.
		exec.ForDynamic(len(rows), 64, workers, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i := rows[t]
				cols, ws := at.Row(i)
				acc := s.Monoid.Identity
				hit := false
				for c, k := range cols {
					if !qb.present.Get(k) {
						continue
					}
					wt := int32(0)
					if ws != nil {
						wt = ws[c]
					}
					x := s.Mult(qb.dense[k], wt, k)
					if hit {
						acc = s.Monoid.Op(acc, x)
					} else {
						acc = x
						hit = true
					}
					if s.Monoid.Any {
						break
					}
					if s.Monoid.Terminal != nil && acc == *s.Monoid.Terminal {
						break
					}
				}
				if hit {
					out.dense[i] = acc
					out.present.SetAtomic(i)
				}
			}
		})
	}
	checkVector("PushPullVxM pull output", out)
	return out
}

// pushSerialCutoff is the scatter size (in edges) below which a push round
// runs in the calling goroutine: one region launch on an oversubscribed
// machine costs more than scattering this many entries.
const pushSerialCutoff = 16384

// vxmPushSerial is the single-threaded push: scatter each stored q entry
// along its matrix row, merging into out directly (no per-worker partials).
// Iteration order is ascending, so ANY monoids keep the lowest-index witness.
func vxmPushSerial[T Number](a *Matrix, q *Vector[T], s Semiring[T], mask *Mask, out *Vector[T]) {
	q.Iterate(func(k Index, qv T) {
		cols, ws := a.Row(k)
		switch s.Kind {
		case KindAnySecondi:
			vk := T(k)
			for _, j := range cols {
				if mask.Allow(j) && !out.present.Get(j) {
					out.dense[j] = vk
					out.present.Set(j)
				}
			}
		case KindPlusFirst:
			for _, j := range cols {
				if !mask.Allow(j) {
					continue
				}
				if out.present.Get(j) {
					out.dense[j] += qv
				} else {
					out.dense[j] = qv
					out.present.Set(j)
				}
			}
		case KindMinFirst:
			for _, j := range cols {
				if !mask.Allow(j) {
					continue
				}
				if !out.present.Get(j) {
					out.dense[j] = qv
					out.present.Set(j)
				} else if qv < out.dense[j] {
					out.dense[j] = qv
				}
			}
		case KindMinPlus:
			for c, j := range cols {
				if !mask.Allow(j) {
					continue
				}
				x := qv + T(ws[c])
				if !out.present.Get(j) {
					out.dense[j] = x
					out.present.Set(j)
				} else if x < out.dense[j] {
					out.dense[j] = x
				}
			}
		default:
			for c, j := range cols {
				if !mask.Allow(j) {
					continue
				}
				wt := int32(0)
				if ws != nil {
					wt = ws[c]
				}
				x := s.Mult(qv, wt, k)
				if out.present.Get(j) {
					out.dense[j] = s.Monoid.Op(out.dense[j], x)
				} else {
					out.dense[j] = x
					out.present.Set(j)
				}
			}
		}
	})
}

// vxmPullSerial is the single-threaded gather over a small survivor set.
func vxmPullSerial[T Number](at *Matrix, qb *Vector[T], s Semiring[T], rows []Index, out *Vector[T]) {
	switch s.Kind {
	case KindAnySecondi:
		for _, i := range rows {
			cols, _ := at.Row(i)
			for _, k := range cols {
				if qb.present.Get(k) {
					out.dense[i] = T(k)
					out.present.Set(i)
					break
				}
			}
		}
	case KindPlusFirst:
		for _, i := range rows {
			cols, _ := at.Row(i)
			var acc T
			hit := false
			for _, k := range cols {
				if qb.present.Get(k) {
					acc += qb.dense[k]
					hit = true
				}
			}
			if hit {
				out.dense[i] = acc
				out.present.Set(i)
			}
		}
	default:
		for _, i := range rows {
			cols, ws := at.Row(i)
			acc := s.Monoid.Identity
			hit := false
			for c, k := range cols {
				if !qb.present.Get(k) {
					continue
				}
				wt := int32(0)
				if ws != nil {
					wt = ws[c]
				}
				x := s.Mult(qb.dense[k], wt, k)
				if hit {
					acc = s.Monoid.Op(acc, x)
				} else {
					acc = x
					hit = true
				}
				if s.Monoid.Any {
					break
				}
				if s.Monoid.Terminal != nil && acc == *s.Monoid.Terminal {
					break
				}
			}
			if hit {
				out.dense[i] = acc
				out.present.Set(i)
			}
		}
	}
}

// directionCheckMaxN gates the O(n + edges) recomputation behind the
// direction-equivalence assertion to small operands, so the sanitizer tier
// stays fast while still exercising every dispatch site.
const directionCheckMaxN = 1 << 12

// checkDirectionEquivalence asserts a push product and a pull product of the
// same operands agree:
//
//	direction-structure-equivalence  identical present structure
//	direction-value-equivalence      identical stored values (skipped for ANY
//	                                 monoids, which legitimately keep
//	                                 whichever witness arrived first — push's
//	                                 CAS winner vs pull's row-order hit)
func checkDirectionEquivalence[T Number](op string, s Semiring[T], push, pull *Vector[T]) {
	if !grbcheckEnabled {
		return
	}
	if push.n != pull.n {
		checkFail(op, "direction-structure-equivalence",
			fmt.Sprintf("push product has size %d, pull product %d", push.n, pull.n))
	}
	pw, lw := push.present.words, pull.present.words
	for wi := range pw {
		if pw[wi] != lw[wi] {
			diff := pw[wi] ^ lw[wi]
			i := Index(wi)<<6 + Index(bits.TrailingZeros64(diff))
			checkFail(op, "direction-structure-equivalence",
				fmt.Sprintf("push and pull disagree on the presence of index %d", i))
		}
	}
	if s.Monoid.Any {
		return
	}
	for i := Index(0); i < push.n; i++ {
		if push.present.Get(i) && push.dense[i] != pull.dense[i] {
			checkFail(op, "direction-value-equivalence",
				fmt.Sprintf("index %d: push computed %v, pull computed %v", i, push.dense[i], pull.dense[i]))
		}
	}
}

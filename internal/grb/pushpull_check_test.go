//go:build grbcheck

package grb

import (
	"testing"

	"gapbench/internal/par"
)

// TestGrbcheckCorruptedDispatch mirrors the corrupted-vector tests for the
// direction dispatcher: a dispatch whose two directions compute different
// products must be reported, not silently returned.
func TestGrbcheckCorruptedDispatch(t *testing.T) {
	t.Run("wrong transpose changes structure", func(t *testing.T) {
		a := testMatrix(t)
		// Corrupt dispatch: pass A itself as "A transpose". The graph is
		// asymmetric (0->1 without 1->0), so the pull recomputation under the
		// small-n equivalence gate reaches different output rows.
		q := NewSparse[int64](a.NRows())
		q.SetElement(0, 7)
		st := NewPushPullState(a, DirPush)
		mustPanic(t, func() { PushPullVxM(par.Default(), q, a, a, MinFirst(), nil, st, 1) },
			"PushPullVxM", "direction-structure-equivalence")
	})

	t.Run("duplicated transpose entry changes values", func(t *testing.T) {
		// A: row 0 -> {1, 2}. True A': 1 -> {0}, 2 -> {0}. The corrupted A'
		// duplicates row 1's entry, so a plus_first pull sums q[0] twice —
		// same output structure, different value.
		a := &Matrix{nrows: 3, ncols: 3, rowPtr: []Index{0, 2, 2, 2}, colInd: []Index{1, 2}}
		atBad := &Matrix{nrows: 3, ncols: 3, rowPtr: []Index{0, 0, 2, 3}, colInd: []Index{0, 0, 0}}
		q := NewSparse[float64](3)
		q.SetElement(0, 5)
		st := NewPushPullState(a, DirPush)
		mustPanic(t, func() { PushPullVxM(par.Default(), q, a, atBad, PlusFirst(), nil, st, 1) },
			"PushPullVxM", "direction-value-equivalence")
	})

	t.Run("clean dispatch passes", func(t *testing.T) {
		a := testMatrix(t)
		at := a.Transpose()
		q := NewSparse[int64](a.NRows())
		q.SetElement(0, 7)
		for _, policy := range []DirPolicy{DirPush, DirPull, DirAuto} {
			st := NewPushPullState(a, policy)
			PushPullVxM(par.Default(), q, a, at, MinFirst(), nil, st, 1)
		}
	})
}

// TestDirectionEquivalenceChecker unit-tests the checker on hand-corrupted
// product pairs the dispatch code cannot produce.
func TestDirectionEquivalenceChecker(t *testing.T) {
	mk := func(entries map[Index]int64) *Vector[int64] {
		v := NewSparse[int64](8)
		for i, x := range entries {
			v.SetElement(i, x)
		}
		return v.ToBitmap()
	}

	t.Run("structure mismatch", func(t *testing.T) {
		mustPanic(t, func() {
			checkDirectionEquivalence("PushPullVxM", MinFirst(), mk(map[Index]int64{1: 5}), mk(map[Index]int64{2: 5}))
		}, "PushPullVxM", "direction-structure-equivalence")
	})
	t.Run("value mismatch", func(t *testing.T) {
		mustPanic(t, func() {
			checkDirectionEquivalence("PushPullVxM", MinFirst(), mk(map[Index]int64{1: 5}), mk(map[Index]int64{1: 6}))
		}, "PushPullVxM", "direction-value-equivalence")
	})
	t.Run("ANY monoid skips values", func(t *testing.T) {
		// Push's CAS winner and pull's row-order first hit legitimately
		// differ under an ANY monoid; only the structure must agree.
		checkDirectionEquivalence("PushPullVxM", AnySecondi(), mk(map[Index]int64{1: 5}), mk(map[Index]int64{1: 6}))
	})
	t.Run("equal products pass", func(t *testing.T) {
		checkDirectionEquivalence("PushPullVxM", MinFirst(), mk(map[Index]int64{1: 5, 3: 2}), mk(map[Index]int64{1: 5, 3: 2}))
	})
}

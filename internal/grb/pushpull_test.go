package grb

import (
	"testing"

	"gapbench/internal/graph"
	"gapbench/internal/par"
)

// pushPullMatrices builds the canonical 4-vertex test graph (0->1, 1->2,
// 2->0, 2->3) as (A, A').
func pushPullMatrices(t *testing.T) (*Matrix, *Matrix) {
	t.Helper()
	g, err := graph.BuildWeighted([]graph.WEdge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 3}, {U: 2, V: 0, W: 1}, {U: 2, V: 3, W: 9},
	}, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	return FromGraph(g, false, false), FromGraph(g, true, false)
}

func sameVector(t *testing.T, label string, a, b *Vector[int64]) {
	t.Helper()
	if a.Size() != b.Size() {
		t.Fatalf("%s: sizes %d vs %d", label, a.Size(), b.Size())
	}
	for i := Index(0); i < a.Size(); i++ {
		av, aok := a.Extract(i)
		bv, bok := b.Extract(i)
		if aok != bok || (aok && av != bv) {
			t.Fatalf("%s: index %d: (%v,%v) vs (%v,%v)", label, i, av, aok, bv, bok)
		}
	}
}

// TestPushPullVxMDirectionsAgree runs the same masked product pinned to each
// direction and freed, and asserts all three agree with the plain VxM on a
// non-ANY semiring (exact value equality holds there).
func TestPushPullVxMDirectionsAgree(t *testing.T) {
	a, at := pushPullMatrices(t)
	s := MinFirst()
	visited := NewBitset(a.NRows())
	visited.Set(0)
	mask := NewMask(visited, true) // complement: row 0 already settled

	q := NewSparse[int64](a.NRows())
	q.SetElement(0, 7)
	q.SetElement(2, 4)
	want := VxM(par.Default(), q, a, s, mask, 2)

	for _, tc := range []struct {
		name   string
		policy DirPolicy
	}{{"push", DirPush}, {"pull", DirPull}, {"auto", DirAuto}} {
		t.Run(tc.name, func(t *testing.T) {
			st := NewPushPullState(a, tc.policy)
			got := PushPullVxM(par.Default(), q, a, at, s, mask, st, 2)
			sameVector(t, tc.name, want, got)
		})
	}

	// nil state defaults to fresh auto accounting.
	sameVector(t, "nil-state", want, PushPullVxM(par.Default(), q, a, at, s, mask, nil, 2))
}

// TestPushPullVxMAutoFlipsToPull: once the frontier's degree sum exceeds the
// remaining unexplored-edge budget over alpha, the auto policy must gather.
func TestPushPullVxMAutoFlipsToPull(t *testing.T) {
	a, at := pushPullMatrices(t)
	st := NewPushPullState(a, DirAuto)
	st.edgesToCheck = 0 // exhausted budget: any nonzero scout must pull
	st.FloorOff = true  // isolate the alpha test from the survivor floor
	q := NewSparse[int64](a.NRows())
	q.SetElement(2, 4) // out-degree 2: scout > 0/alpha
	got := PushPullVxM(par.Default(), q, a, at, MinFirst(), nil, st, 2)
	sameVector(t, "forced-auto-pull", MxV(par.Default(), at, q, MinFirst(), nil, 2), got)
	if st.edgesToCheck != 0 {
		t.Fatal("pull rounds must not consume the push budget")
	}
}

// TestPushPullVxMFloorKeepsThinFrontierPushing: even with the alpha test
// satisfied, auto must push while the scout degree sum cannot cover the
// pull gather's per-survivor-row floor.
func TestPushPullVxMFloorKeepsThinFrontierPushing(t *testing.T) {
	a, at := pushPullMatrices(t)
	st := NewPushPullState(a, DirAuto)
	st.edgesToCheck = 0 // alpha test passes on any nonzero scout
	q := NewSparse[int64](a.NRows())
	q.SetElement(2, 4)                                                  // scout 2
	got := PushPullVxM(par.Default(), q, a, at, MinFirst(), nil, st, 2) // floor = 4 rows
	sameVector(t, "floor-forced-push", MxV(par.Default(), at, q, MinFirst(), nil, 2), got)
	if st.edgesToCheck == 0 {
		t.Fatal("untouched push budget: the thin frontier pulled instead of pushing")
	}
	if pullFloor(nil, a.NRows()) != a.NRows() {
		t.Fatalf("nil-mask pullFloor = %d, want nrows %d", pullFloor(nil, a.NRows()), a.NRows())
	}
	// Disabling the floor restores the alpha-only dispatch: same operands
	// now gather (the budget stays untouched).
	st.FloorOff = true
	st.edgesToCheck = 0
	if PushPullVxM(par.Default(), q, a, at, MinFirst(), nil, st, 2) == nil {
		t.Fatal("FloorOff dispatch returned nil")
	}
	if st.edgesToCheck != 0 {
		t.Fatal("FloorOff dispatch consumed the push budget: it pushed instead of pulling")
	}
}

func TestFrontierScoutCountsDegrees(t *testing.T) {
	a, _ := pushPullMatrices(t)
	q := NewSparse[int64](a.NRows())
	q.SetElement(1, 1) // deg 1
	q.SetElement(2, 1) // deg 2
	if got := frontierScout(par.Default(), a, q, 2); got != 3 {
		t.Fatalf("sparse scout = %d, want 3", got)
	}
	if got := frontierScout(par.Default(), a, q.ToBitmap(), 2); got != 3 {
		t.Fatalf("bitmap scout = %d, want 3", got)
	}
	full := NewFull[int64](a.NRows(), 1)
	if got := frontierScout(par.Default(), a, full, 2); got != a.NVals() {
		t.Fatalf("full scout = %d, want every edge (%d)", got, a.NVals())
	}
}

func TestMaskSurvivorRows(t *testing.T) {
	const n = Index(70) // spills one word: tail bits past n must not survive ^w
	set := NewBitset(n)
	for _, i := range []Index{0, 1, 64, 69} {
		set.Set(i)
	}

	t.Run("nil mask", func(t *testing.T) {
		if rows, ok := maskSurvivorRows(par.Default(), nil, n, nil, 2); ok || rows != nil {
			t.Fatal("nil mask must report no survivor list")
		}
	})
	t.Run("plain", func(t *testing.T) {
		rows, ok := maskSurvivorRows(par.Default(), NewMask(set, false), n, nil, 2)
		if !ok || len(rows) != 4 {
			t.Fatalf("got %d survivors, want the 4 set rows", len(rows))
		}
		for i, want := range []Index{0, 1, 64, 69} {
			if rows[i] != want {
				t.Fatalf("rows[%d] = %d, want %d", i, rows[i], want)
			}
		}
	})
	t.Run("complement clears tail", func(t *testing.T) {
		rows, ok := maskSurvivorRows(par.Default(), NewMask(set, true), n, nil, 2)
		if !ok || Index(len(rows)) != n-4 {
			t.Fatalf("got %d survivors, want %d", len(rows), n-4)
		}
		for k, r := range rows {
			if r >= n {
				t.Fatalf("survivor %d past n=%d: complement invented a tail row", r, n)
			}
			if set.Get(r) {
				t.Fatalf("survivor %d is masked off", r)
			}
			if k > 0 && rows[k-1] >= r {
				t.Fatal("survivor list must be sorted")
			}
		}
	})
}

// TestMaskSurvivorRowsParallelGather drives the two-pass machine-parallel
// path (above the serial word cutoff) and checks it against the serial
// semantics.
func TestMaskSurvivorRowsParallelGather(t *testing.T) {
	const n = Index(4097*64 + 13)
	set := NewBitset(n)
	for i := Index(0); i < n; i += 2 {
		set.Set(i)
	}
	m := par.NewMachine(4)
	defer m.Close()
	rows, ok := maskSurvivorRows(m, NewMask(set, true), n, nil, 4)
	if !ok {
		t.Fatal("expected a survivor list")
	}
	want := n / 2 // odd indices survive the complement (n is odd: (n-1)/2+... = n/2 rounded down)
	if Index(len(rows)) != want {
		t.Fatalf("got %d survivors, want %d", len(rows), want)
	}
	for k, r := range rows {
		if r != Index(2*k+1) {
			t.Fatalf("rows[%d] = %d, want %d", k, r, 2*k+1)
		}
	}
}

// TestDenseMxMDirMatchesDenseMxM pins each direction per row and asserts the
// batched product matches the push-only reference.
func TestDenseMxMDirMatchesDenseMxM(t *testing.T) {
	a, at := pushPullMatrices(t)
	n := a.NRows()
	f := NewDenseMatrix(2, n)
	f.Set(0, 2, 1.5)
	f.Set(1, 0, 2.0)
	f.Set(1, 1, 3.0)
	visited := []*Bitset{NewBitset(n), NewBitset(n)}
	visited[0].Set(2)
	visited[1].Set(0)
	rowMask := func(r int) *Mask { return NewMask(visited[r], true) }

	want := DenseMxM(par.Default(), f, a, rowMask, 2)
	for _, tc := range []struct {
		name string
		st   []*PushPullState
	}{
		{"nil states (push)", nil},
		{"pinned push", []*PushPullState{NewPushPullState(a, DirPush), NewPushPullState(a, DirPush)}},
		{"pinned pull", []*PushPullState{NewPushPullState(a, DirPull), NewPushPullState(a, DirPull)}},
		{"mixed", []*PushPullState{NewPushPullState(a, DirPull), NewPushPullState(a, DirPush)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := DenseMxMDir(par.Default(), f, a, at, rowMask, tc.st, 2)
			for r := 0; r < 2; r++ {
				for c := Index(0); c < n; c++ {
					wv, wok := want.Get(r, c)
					gv, gok := got.Get(r, c)
					if wok != gok || (wok && wv != gv) {
						t.Fatalf("row %d col %d: (%v,%v) vs (%v,%v)", r, c, wv, wok, gv, gok)
					}
				}
			}
		})
	}
}

// TestPushPullCancelTerminates is the cancel-liveness contract: the pull
// gather and its survivor scan poll the machine token at chunk boundaries, so
// an already-cancelled machine returns promptly.
func TestPushPullCancelTerminates(t *testing.T) {
	if grbcheckEnabled {
		t.Skip("partial cancelled products legitimately fail the sanitizer's equivalence recheck")
	}
	a, at := pushPullMatrices(t)
	m := par.NewMachine(2)
	defer m.Close()
	tok := par.NewCancelToken()
	tok.Cancel()
	m.SetCancel(tok)
	defer m.SetCancel(nil)
	q := NewSparse[int64](a.NRows())
	q.SetElement(0, 7)
	st := NewPushPullState(a, DirPull)
	if out := PushPullVxM(m, q, a, at, MinFirst(), nil, st, 2); out == nil {
		t.Fatal("cancelled PushPullVxM returned nil")
	}
}

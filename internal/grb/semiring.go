package grb

import "math"

// Monoid is an associative, commutative reduction operator with identity,
// optionally with a terminal (absorbing) value that permits early exit — the
// property the "any" monoid exploits in the paper's BFS ("the monoid [can]
// terminate as soon as any parent is found").
type Monoid[T Number] struct {
	Identity T
	Op       func(x, y T) T
	// Terminal, when non-nil, is a value t with Op(t, y) == t for all y, so
	// a reduction can stop the moment it appears.
	Terminal *T
	// Any marks the ANY monoid: every partial result is acceptable, so a
	// reduction may stop after the first contribution.
	Any bool
}

// Kind identifies a built-in semiring. SuiteSparse ships pre-generated,
// specialized kernels for its built-in semirings and falls back to a generic
// (operator-pointer) path for user-defined ones; the Kind tag lets the ops
// in this package do the same, which is what keeps the common algorithms
// within striking distance of the hand-written frameworks.
type Kind int

// Built-in semiring kinds with specialized kernels.
const (
	KindGeneric Kind = iota
	KindAnySecondi
	KindMinPlus
	KindPlusFirst
	KindPlusPair
	KindMinFirst
)

// Semiring pairs a reduction monoid with a multiplicative operator. The
// multiply receives the vector operand's value (qval), the matrix entry's
// stored weight, and the index k of the matrix row being combined — enough
// to express FIRST/SECOND/PLUS/SECONDI and friends in the orientation used
// by VxM/MxV here:
//
//	result[j] = ⊕_k  Mult(q[k], A[k][j].weight, k)
type Semiring[T Number] struct {
	Kind   Kind
	Monoid Monoid[T]
	Mult   func(qval T, weight int32, k Index) T
}

// AnySecondi returns the any_secondi semiring over int64: the multiply
// yields the contributing row index k, and ANY keeps whichever arrives
// first. This is the BFS parent semiring from §III-A.
func AnySecondi() Semiring[int64] {
	return Semiring[int64]{
		Kind: KindAnySecondi,
		Monoid: Monoid[int64]{Identity: -1, Op: func(x, y int64) int64 {
			if x >= 0 {
				return x
			}
			return y
		}, Any: true},
		Mult: func(_ int64, _ int32, k Index) int64 { return k },
	}
}

// MinPlus returns the tropical min-plus semiring over int32 distances, the
// SSSP semiring (§III-A: "min-plus-int32").
func MinPlus() Semiring[int32] {
	inf := int32(math.MaxInt32)
	return Semiring[int32]{
		Kind: KindMinPlus,
		Monoid: Monoid[int32]{Identity: inf, Op: func(x, y int32) int32 {
			if x < y {
				return x
			}
			return y
		}, Terminal: nil},
		Mult: func(qval int32, weight int32, _ Index) int32 {
			if qval == inf {
				return inf
			}
			return qval + weight
		},
	}
}

// PlusFirst returns the plus_first semiring over float64: sum the vector
// operand's values across present matrix entries, touching only the matrix
// structure. Under this package's VxM orientation it plays the role
// LAGraph's plus_second/plus_first semirings play for PR and BC.
func PlusFirst() Semiring[float64] {
	return Semiring[float64]{
		Kind:   KindPlusFirst,
		Monoid: Monoid[float64]{Identity: 0, Op: func(x, y float64) float64 { return x + y }},
		Mult:   func(qval float64, _ int32, _ Index) float64 { return qval },
	}
}

// PlusPair returns the plus_pair semiring over int64: every structural
// match contributes exactly 1, so a masked matrix multiply counts set
// intersections — the triangle-counting semiring from §III-A.
func PlusPair() Semiring[int64] {
	return Semiring[int64]{
		Kind:   KindPlusPair,
		Monoid: Monoid[int64]{Identity: 0, Op: func(x, y int64) int64 { return x + y }},
		Mult:   func(_ int64, _ int32, _ Index) int64 { return 1 },
	}
}

// MinFirst returns the min_first semiring over int64: the minimum of the
// vector operand's values across present matrix entries. Under this
// package's orientation it is the hooking semiring FastSV uses
// (min_second in LAGraph's orientation).
func MinFirst() Semiring[int64] {
	return Semiring[int64]{
		Kind: KindMinFirst,
		Monoid: Monoid[int64]{Identity: math.MaxInt64, Op: func(x, y int64) int64 {
			if x < y {
				return x
			}
			return y
		}},
		Mult: func(qval int64, _ int32, _ Index) int64 { return qval },
	}
}

// PlusMonoidF64 is the float64 plus monoid for reductions.
func PlusMonoidF64() Monoid[float64] {
	return Monoid[float64]{Identity: 0, Op: func(x, y float64) float64 { return x + y }}
}

// PlusMonoidI64 is the int64 plus monoid for reductions (TC's final sum).
func PlusMonoidI64() Monoid[int64] {
	return Monoid[int64]{Identity: 0, Op: func(x, y int64) int64 { return x + y }}
}

// MinMonoidI32 is the int32 min monoid.
func MinMonoidI32() Monoid[int32] {
	return Monoid[int32]{Identity: math.MaxInt32, Op: func(x, y int32) int32 {
		if x < y {
			return x
		}
		return y
	}}
}

package grb_test

// transpose_ref_test.go: differential test for the counting-sort-based
// Matrix.Transpose. The reference is the obvious serial bucket transpose —
// walk rows in order, append each entry to its destination column's bucket —
// which yields transposed rows whose column indices ascend by construction.
// The pipeline implementation must match it entry for entry, weights
// included.

import (
	"math/rand"
	"testing"

	"gapbench/internal/graph"
	"gapbench/internal/grb"
)

func TestTransposeMatchesBucketReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7ab1e))
	for trial := 0; trial < 5; trial++ {
		n := int32(2 + rng.Int31n(80))
		edges := make([]graph.WEdge, 12*n)
		for i := range edges {
			edges[i] = graph.WEdge{
				U: rng.Int31n(n), V: rng.Int31n(n), W: 1 + rng.Int31n(9),
			}
		}
		g, err := graph.BuildWeighted(edges, graph.BuildOptions{NumNodes: n, Directed: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, withWeights := range []bool{false, true} {
			a := grb.FromGraph(g, false, withWeights)
			at := a.Transpose()
			if at.NRows() != a.NCols() || at.NCols() != a.NRows() || at.NVals() != a.NVals() {
				t.Fatalf("trial %d: transpose dims/nvals %dx%d/%d, want %dx%d/%d",
					trial, at.NRows(), at.NCols(), at.NVals(), a.NCols(), a.NRows(), a.NVals())
			}

			// Reference bucket transpose.
			type entry struct {
				row grb.Index
				w   int32
			}
			buckets := make([][]entry, a.NCols())
			for r := grb.Index(0); r < a.NRows(); r++ {
				cols, ws := a.Row(r)
				for i, c := range cols {
					w := int32(0)
					if ws != nil {
						w = ws[i]
					}
					buckets[c] = append(buckets[c], entry{row: r, w: w})
				}
			}
			for c := grb.Index(0); c < at.NRows(); c++ {
				rows, ws := at.Row(c)
				if len(rows) != len(buckets[c]) {
					t.Fatalf("trial %d: transposed row %d has %d entries, want %d",
						trial, c, len(rows), len(buckets[c]))
				}
				if withWeights == (ws == nil) {
					t.Fatalf("trial %d: transposed row %d weights presence = %v, withWeights = %v",
						trial, c, ws != nil, withWeights)
				}
				for i, e := range buckets[c] {
					if rows[i] != e.row {
						t.Fatalf("trial %d: transposed row %d entry %d = %d, want %d",
							trial, c, i, rows[i], e.row)
					}
					if withWeights && ws[i] != e.w {
						t.Fatalf("trial %d: transposed row %d weight %d = %d, want %d",
							trial, c, i, ws[i], e.w)
					}
				}
			}
		}
	}
}

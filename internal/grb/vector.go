package grb

import (
	"fmt"
	"math/bits"
)

// Format is a vector's internal representation. SuiteSparse keeps vectors in
// one of several opaque formats and converts between them as operations
// demand; §V-A notes the BFS "relies on three internal data structures ...
// a bitmap, a sparse list (CSR), and a full [vector]" and that "this
// conversion time is included in the total run time". The same three formats
// and the same timed conversions exist here.
type Format int

// Vector storage formats.
const (
	// Sparse stores sorted (index, value) pairs; efficient when few entries
	// are present (push frontiers).
	Sparse Format = iota
	// Bitmap stores a presence bitset plus a full-length value array;
	// efficient for membership tests (pull frontiers).
	Bitmap
	// Full stores a value at every position (PageRank scores, distances).
	Full
)

// Vector is a GraphBLAS vector of T with structural sparsity.
type Vector[T Number] struct {
	n      Index
	format Format

	// Sparse representation: parallel sorted arrays.
	ind []Index
	val []T

	// Bitmap/Full representation: dense values, presence bitset for Bitmap.
	dense   []T
	present *Bitset
}

// NewSparse returns an empty sparse vector of length n.
func NewSparse[T Number](n Index) *Vector[T] {
	return &Vector[T]{n: n, format: Sparse}
}

// NewFull returns a full vector of length n with every entry set to fill.
func NewFull[T Number](n Index, fill T) *Vector[T] {
	dense := make([]T, n)
	for i := range dense {
		dense[i] = fill
	}
	return &Vector[T]{n: n, format: Full, dense: dense}
}

// Size returns the vector length.
func (v *Vector[T]) Size() Index { return v.n }

// Format returns the current representation.
func (v *Vector[T]) Fmt() Format { return v.format }

// NVals returns the number of stored entries.
func (v *Vector[T]) NVals() Index {
	switch v.format {
	case Sparse:
		return Index(len(v.ind))
	case Bitmap:
		return v.present.Count()
	default:
		return v.n
	}
}

// SetElement stores value at index i (present afterward).
func (v *Vector[T]) SetElement(i Index, value T) {
	switch v.format {
	case Sparse:
		// Keep the sparse list sorted; this is the C API's O(log n + k)
		// insertion path, fine for the few-entry uses it gets.
		lo, hi := 0, len(v.ind)
		for lo < hi {
			mid := (lo + hi) / 2
			if v.ind[mid] < i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(v.ind) && v.ind[lo] == i {
			v.val[lo] = value
			return
		}
		v.ind = append(v.ind, 0)
		v.val = append(v.val, value)
		copy(v.ind[lo+1:], v.ind[lo:])
		copy(v.val[lo+1:], v.val[lo:])
		v.ind[lo] = i
		v.val[lo] = value
	case Bitmap:
		v.dense[i] = value
		v.present.Set(i)
	default:
		v.dense[i] = value
	}
}

// Extract returns the value at index i and whether it is present.
func (v *Vector[T]) Extract(i Index) (T, bool) {
	switch v.format {
	case Sparse:
		lo, hi := 0, len(v.ind)
		for lo < hi {
			mid := (lo + hi) / 2
			if v.ind[mid] < i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(v.ind) && v.ind[lo] == i {
			return v.val[lo], true
		}
		var zero T
		return zero, false
	case Bitmap:
		if v.present.Get(i) {
			return v.dense[i], true
		}
		var zero T
		return zero, false
	default:
		return v.dense[i], true
	}
}

// ToSparse converts the vector to sparse format (a full scan when coming
// from bitmap/full — deliberately timed work). The bitmap path scans the
// presence words with popcount/trailing-zero extraction, skipping empty
// words outright: on a nearly-empty frontier the scan cost is O(n/64) word
// loads instead of n per-index probes, which is what stops GraphBLAS BFS
// from paying a dense scan per round on high-diameter graphs.
func (v *Vector[T]) ToSparse() *Vector[T] {
	if v.format == Sparse {
		return v
	}
	out := &Vector[T]{n: v.n, format: Sparse}
	if v.format == Full {
		out.ind = make([]Index, v.n)
		out.val = make([]T, v.n)
		for i := Index(0); i < v.n; i++ {
			out.ind[i] = i
			out.val[i] = v.dense[i]
		}
		return out
	}
	words := v.present.words
	nv := 0
	for _, w := range words {
		nv += bits.OnesCount64(w)
	}
	out.ind = make([]Index, 0, nv)
	out.val = make([]T, 0, nv)
	for wi, w := range words {
		base := Index(wi) << 6
		for ; w != 0; w &= w - 1 {
			i := base + Index(bits.TrailingZeros64(w))
			out.ind = append(out.ind, i)
			out.val = append(out.val, v.dense[i])
		}
	}
	return out
}

// ToBitmap converts the vector to bitmap format.
func (v *Vector[T]) ToBitmap() *Vector[T] {
	switch v.format {
	case Bitmap:
		return v
	case Full:
		present := NewBitset(v.n)
		for i := Index(0); i < v.n; i++ {
			present.Set(i)
		}
		return &Vector[T]{n: v.n, format: Bitmap, dense: v.dense, present: present}
	default:
		out := &Vector[T]{n: v.n, format: Bitmap, dense: make([]T, v.n), present: NewBitset(v.n)}
		for k, i := range v.ind {
			out.dense[i] = v.val[k]
			out.present.Set(i)
		}
		return out
	}
}

// Structure returns the presence bitset of the vector (building one for
// sparse/full vectors), for use as a mask.
func (v *Vector[T]) Structure() *Bitset {
	switch v.format {
	case Bitmap:
		return v.present
	case Full:
		b := NewBitset(v.n)
		for i := Index(0); i < v.n; i++ {
			b.Set(i)
		}
		return b
	default:
		b := NewBitset(v.n)
		for _, i := range v.ind {
			b.Set(i)
		}
		return b
	}
}

// Iterate calls fn for every stored entry in ascending index order. The
// bitmap path walks the presence words directly (zero words cost one load),
// like ToSparse.
func (v *Vector[T]) Iterate(fn func(i Index, x T)) {
	switch v.format {
	case Sparse:
		for k, i := range v.ind {
			fn(i, v.val[k])
		}
	case Bitmap:
		for wi, w := range v.present.words {
			base := Index(wi) << 6
			for ; w != 0; w &= w - 1 {
				i := base + Index(bits.TrailingZeros64(w))
				fn(i, v.dense[i])
			}
		}
	default:
		for i := Index(0); i < v.n; i++ {
			fn(i, v.dense[i])
		}
	}
}

// Dense returns the backing dense array of a Bitmap or Full vector. It
// panics for sparse vectors (convert first), like touching the wrong opaque
// representation through the C API would.
func (v *Vector[T]) Dense() []T {
	if v.format == Sparse {
		panic(fmt.Sprintf("grb: Dense() on sparse vector of size %d", v.n))
	}
	return v.dense
}

// Clone returns a deep copy.
func (v *Vector[T]) Clone() *Vector[T] {
	out := &Vector[T]{n: v.n, format: v.format}
	out.ind = append([]Index(nil), v.ind...)
	out.val = append([]T(nil), v.val...)
	out.dense = append([]T(nil), v.dense...)
	if v.present != nil {
		out.present = v.present.Clone()
	}
	return out
}

// ReduceVec folds all stored entries with the monoid.
func ReduceVec[T Number](v *Vector[T], m Monoid[T]) T {
	acc := m.Identity
	v.Iterate(func(_ Index, x T) { acc = m.Op(acc, x) })
	return acc
}

// AssignMasked copies src's stored entries into dst where the mask allows
// (the C API's GrB_assign with a mask: pi<q> = q in the paper's BFS).
func AssignMasked[T Number](dst, src *Vector[T], mask *Mask) {
	checkVector("AssignMasked dst", dst)
	checkVector("AssignMasked src", src)
	checkMask("AssignMasked mask", mask, dst.n)
	// pi<q> = q with q's own structure as the mask (the BFS accumulate) is a
	// word-level bitset union plus value copies — no per-entry format switch.
	if dst.format == Bitmap && src.format == Bitmap &&
		mask != nil && !mask.complement && mask.present == src.present {
		dw, sw := dst.present.words, src.present.words
		for wi, w := range sw {
			if w == 0 {
				continue
			}
			dw[wi] |= w
			base := Index(wi) << 6
			for ; w != 0; w &= w - 1 {
				i := base + Index(bits.TrailingZeros64(w))
				dst.dense[i] = src.dense[i]
			}
		}
		return
	}
	src.Iterate(func(i Index, x T) {
		if mask.Allow(i) {
			dst.SetElement(i, x)
		}
	})
}

// EWiseApply rewrites each stored entry of v through fn in place.
func EWiseApply[T Number](v *Vector[T], fn func(i Index, x T) T) {
	switch v.format {
	case Sparse:
		for k, i := range v.ind {
			v.val[k] = fn(i, v.val[k])
		}
	case Bitmap:
		for i := Index(0); i < v.n; i++ {
			if v.present.Get(i) {
				v.dense[i] = fn(i, v.dense[i])
			}
		}
	default:
		for i := Index(0); i < v.n; i++ {
			v.dense[i] = fn(i, v.dense[i])
		}
	}
}

// SelectRange extracts the entries of a Full vector whose value lies in
// [lo, hi) as a sparse vector — the GxB_select analogue delta-stepping uses
// to build each bucket. The scan over all n entries per call is the
// per-bucket overhead §V-B blames for GraphBLAS' Road SSSP times.
func SelectRange[T Number](v *Vector[T], lo, hi T) *Vector[T] {
	checkVector("SelectRange input", v)
	out := NewSparse[T](v.n)
	v.Iterate(func(i Index, x T) {
		if x >= lo && x < hi {
			out.ind = append(out.ind, i)
			out.val = append(out.val, x)
		}
	})
	return out
}

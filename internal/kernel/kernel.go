// Package kernel defines the contracts shared by every framework
// reproduction: the six GAP kernel signatures, their result conventions, and
// the run options that encode the paper's Baseline/Optimized rule sets.
//
// Result conventions (fixed so results can be cross-validated between
// frameworks, the way the paper's teams cross-validated each other):
//
//   - BFS returns a parent array: parent[src] = src, parent[v] = the BFS-tree
//     parent for reached v, -1 for unreachable v.
//   - SSSP returns distances with Inf for unreachable vertices.
//   - PR returns per-vertex scores that sum to ~1, damping 0.85, run until
//     the per-iteration L1 delta falls below Tolerance (or MaxIters).
//   - CC returns component labels; two vertices get equal labels iff they are
//     in the same weakly connected component. Label values are arbitrary.
//   - BC returns scores normalized by the maximum score, computed from the
//     given root vertices only (the benchmark uses 4 roots per trial).
//   - TC returns the global triangle count, each triangle counted once.
package kernel

import (
	"fmt"
	"math"

	"gapbench/internal/graph"
	"gapbench/internal/par"
	"gapbench/internal/tune"
)

// Dist is an SSSP path distance (sum of up-to-255 weights).
type Dist = int32

// Inf is the SSSP distance of an unreachable vertex.
const Inf Dist = math.MaxInt32

// PageRank parameters from the GAP benchmark specification.
const (
	PRDamping   = 0.85
	PRTolerance = 1e-4
	PRMaxIters  = 100
)

// BCSources is the number of root vertices per BC trial (the paper
// approximates BC "by considering only four root vertices per trial").
const BCSources = 4

// Mode selects the paper's rule set.
type Mode int

// The two evaluation rule sets from §IV.
const (
	// Baseline forbids per-graph hand tuning: fixed worker count, run-time
	// heuristics only. (The SSSP delta parameter is the sanctioned
	// exception.)
	Baseline Mode = iota
	// Optimized allows everything the paper's Optimized data set allowed:
	// per-graph algorithm choice, extra workers (hyperthreading), untimed
	// relabeling, schedule specialization.
	Optimized
)

func (m Mode) String() string {
	if m == Optimized {
		return "Optimized"
	}
	return "Baseline"
}

// MarshalText renders the mode by name so journal lines stay human-readable.
func (m Mode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText parses a mode name (the journal resume path).
func (m *Mode) UnmarshalText(b []byte) error {
	switch string(b) {
	case "Baseline":
		*m = Baseline
	case "Optimized":
		*m = Optimized
	default:
		return fmt.Errorf("kernel: unknown mode %q", b)
	}
	return nil
}

// Options carries per-run knobs to a kernel.
type Options struct {
	// Workers is the degree of parallelism; <1 means the process default.
	Workers int
	// Mode selects the Baseline or Optimized rule set.
	Mode Mode
	// GraphName identifies the input for Optimized-mode per-graph dispatch
	// ("Road", "Twitter", ...). Baseline runs leave it empty — frameworks
	// must then rely on run-time heuristics, exactly as §IV-A requires.
	GraphName string
	// Delta is the SSSP bucket width. Zero means "framework default". GAP
	// allows tuning this per graph even in Baseline mode.
	Delta Dist

	// Machine is the persistent worker pool the kernel's parallel regions
	// run on. The harness constructs one machine per mode so each cell's
	// synchronization structure (regions, barriers, dynamic chunks) is
	// observable via par.Machine.Stats. Nil means the process-default
	// machine — kernels must reach it through Exec(), never directly.
	Machine *par.Machine

	// Cancel is the trial's cooperative cancellation token (nil when the
	// harness set no deadline). The machine already polls it at slot and
	// chunk boundaries, so parallel regions drain on their own; kernels must
	// additionally poll it in their own round/iteration loops (PR
	// convergence sweeps, SSSP bucket rounds, BFS frontier steps) via
	// Cancelled() and return early — the returned result is garbage, which
	// is fine: the harness discards every cancelled trial. A kernel that
	// ignores the token past the runner's grace period gets its machine
	// abandoned (DESIGN.md §9), so polling is also self-interest.
	Cancel *par.CancelToken

	// Schedules is the persistent tuned-schedule store written by `gapbench
	// -tune` (nil when no store is attached). Frameworks with a schedule
	// language consult it in Optimized mode, keyed by (kernel, graph Epoch,
	// mode) — the cross-process form of the paper's Optimized-rule-set
	// tuning. Baseline runs must ignore it, like every other per-graph
	// knowledge channel.
	Schedules *tune.Store

	// UndirectedView is the symmetrized form of the input, prebuilt by the
	// harness. The GAP rules let implementations store multiple forms of the
	// graph at load time, so consulting this is legal in both modes. Nil
	// means the kernel must derive it itself.
	UndirectedView *graph.Graph
	// RelabeledView is the degree-sorted undirected form, prebuilt untimed.
	// The paper's Optimized rule set is the only one that lets frameworks
	// exclude relabeling time, so kernels must ignore this unless
	// Mode == Optimized.
	RelabeledView *graph.Graph
}

// Undirected returns the prebuilt undirected view when available, falling
// back to deriving one (whose cost then lands inside the timed region, which
// is exactly what the GAP rules prescribe for format conversion).
func (o Options) Undirected(g *graph.Graph) *graph.Graph {
	if o.UndirectedView != nil {
		return o.UndirectedView
	}
	return g.Undirected()
}

// Exec returns the machine the kernel's parallel regions must run on,
// defaulting to the process-wide machine when the harness did not attach one.
// Framework code should call methods on the returned machine (opt.Exec().For,
// …) rather than the package-level par shims, so per-cell launch and barrier
// counts reflect the framework's real structure instead of vanishing into the
// shared default pool.
func (o Options) Exec() *par.Machine {
	if o.Machine != nil {
		return o.Machine
	}
	return par.Default()
}

// Cancelled reports whether the harness has cancelled this trial (deadline
// passed or caller-driven). Nil-safe; kernels poll it at round boundaries
// and bail out with whatever partial result they have.
func (o Options) Cancelled() bool {
	return o.Cancel.Cancelled()
}

// EffectiveWorkers resolves Options.Workers against the process default.
func (o Options) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return defaultWorkers()
}

// Framework is the interface every framework reproduction implements. One
// value of this interface corresponds to one column of the paper's Table II.
type Framework interface {
	// Name returns the framework's display name as used in the paper.
	Name() string
	// BFS computes a breadth-first-search parent tree from src.
	BFS(g *graph.Graph, src graph.NodeID, opt Options) []graph.NodeID
	// SSSP computes shortest-path distances from src over positive weights.
	SSSP(g *graph.Graph, src graph.NodeID, opt Options) []Dist
	// PR computes PageRank scores to the GAP tolerance.
	PR(g *graph.Graph, opt Options) []float64
	// CC labels weakly connected components.
	CC(g *graph.Graph, opt Options) []graph.NodeID
	// BC computes approximate betweenness centrality from the given roots.
	BC(g *graph.Graph, sources []graph.NodeID, opt Options) []float64
	// TC counts triangles in the undirected view of g.
	TC(g *graph.Graph, opt Options) int64
}

// Algorithms describes which algorithm a framework uses per kernel (the
// paper's Table III row for that framework).
type Algorithms struct {
	BFS, SSSP, CC, PR, BC, TC string
}

// Preparer is implemented by frameworks that build internal representations
// of the input graph at load time. The harness calls Prepare once per graph,
// untimed — the analogue of each paper framework loading the benchmark graph
// into its own native structures before trials begin. (Per-kernel format
// conversion beyond this remains timed, per the GAP rules.)
type Preparer interface {
	Prepare(g *graph.Graph, undirected *graph.Graph)
}

// Describer is implemented by frameworks that report their Table II/III
// metadata.
type Describer interface {
	// Attributes returns Table II-style attribute key/values.
	Attributes() map[string]string
	// Algorithms returns the Table III row.
	Algorithms() Algorithms
}

package kernel_test

import (
	"testing"

	"gapbench/internal/graph"
	"gapbench/internal/kernel"
)

func TestModeString(t *testing.T) {
	if kernel.Baseline.String() != "Baseline" || kernel.Optimized.String() != "Optimized" {
		t.Fatal("mode strings wrong")
	}
}

func TestEffectiveWorkers(t *testing.T) {
	if got := (kernel.Options{Workers: 5}).EffectiveWorkers(); got != 5 {
		t.Fatalf("explicit workers = %d", got)
	}
	if got := (kernel.Options{}).EffectiveWorkers(); got < 1 {
		t.Fatalf("default workers = %d", got)
	}
}

func TestOptionsUndirected(t *testing.T) {
	g, err := graph.Build([]graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without a prebuilt view the kernel derives one.
	u := (kernel.Options{}).Undirected(g)
	if u.Directed() {
		t.Fatal("derived view is directed")
	}
	// With a prebuilt view it is used verbatim.
	view := g.Undirected()
	if got := (kernel.Options{UndirectedView: view}).Undirected(g); got != view {
		t.Fatal("prebuilt view not used")
	}
}

func TestConstantsMatchGAPSpec(t *testing.T) {
	if kernel.PRDamping != 0.85 {
		t.Errorf("damping = %v", kernel.PRDamping)
	}
	if kernel.BCSources != 4 {
		t.Errorf("BC sources = %d", kernel.BCSources)
	}
	if kernel.Inf <= 0 {
		t.Error("Inf not positive")
	}
}

package lagraph

import (
	"math"

	"gapbench/internal/grb"
	"gapbench/internal/kernel"
	"gapbench/internal/par"
)

// bfsParents is the LAGraph direction-optimizing BFS of §III-A: the push
// step is q'<!pi> = q'*A over the any_secondi semiring, the pull step is
// q<!pi> = A'*q, followed by the masked assignment pi<q> = q. The vector q
// is converted to a sparse list for pushing and a bitmap for pulling, with
// the conversions inside the timed region. Direction dispatch lives in
// grb.PushPullVxM: a Beamer-style degree-sum heuristic (or a pinned policy,
// for the direction benchmarks) replaces the old frontier-size cutoff, and
// the pull side gathers only over the complement mask's surviving rows
// instead of rescanning all n each round.
func bfsParents(exec *par.Machine, m *matrices, src grb.Index, policy grb.DirPolicy, workers int) *grb.Vector[int64] {
	s := grb.AnySecondi()
	// pi starts in bitmap format: one entry (the source, its own parent).
	pi := grb.NewSparse[int64](m.a.NRows()).ToBitmap()
	pi.SetElement(src, src)
	q := grb.NewSparse[int64](m.a.NRows())
	q.SetElement(src, src)
	st := grb.NewPushPullState(m.a, policy)
	// Round r's frontier is dead once round r+1 has consumed it, so the
	// dispatch state may recycle its output vectors through its ring.
	st.Recycle = true

	for q.NVals() > 0 {
		if exec.Interrupted() {
			return pi // partial; the harness discards cancelled trials
		}
		notVisited := grb.NewMask(pi.Structure(), true)
		q = grb.PushPullVxM(exec, q, m.a, m.at, s, notVisited, st, workers)
		grb.AssignMasked(pi, q, grb.NewMask(q.Structure(), false))
	}
	return pi
}

// deltaStepping is the LAGraph min-plus delta-stepping SSSP. Each bucket is
// extracted from the full distance vector with a select (an O(n) scan per
// bucket — the structural cost that makes GraphBLAS SSSP collapse on Road,
// §V-B), then relaxed to a fixed point with masked min-plus products.
func deltaStepping(exec *par.Machine, aw *grb.Matrix, src grb.Index, delta kernel.Dist, workers int) *grb.Vector[int32] {
	n := aw.NRows()
	s := grb.MinPlus()
	t := grb.NewFull[int32](n, kernel.Inf)
	t.SetElement(src, 0)
	dense := t.Dense()

	for b := int32(0); ; {
		if exec.Interrupted() {
			return t // partial; the harness discards cancelled trials
		}
		lo := b * delta
		hi := lo + delta
		tm := grb.SelectRange(t, lo, hi)
		if tm.NVals() == 0 {
			// Skip ahead to the next occupied bucket, if any.
			next := int32(math.MaxInt32)
			for _, d := range dense {
				if d >= hi && d < next {
					next = d
				}
			}
			if next == math.MaxInt32 {
				break
			}
			b = next / delta
			continue
		}
		// Relax this bucket to a fixed point.
		for tm.NVals() > 0 {
			relaxed := grb.VxM(exec, tm, aw, s, nil, workers)
			improvedInBucket := grb.NewSparse[int32](n)
			relaxed.Iterate(func(j grb.Index, x int32) {
				if x < dense[j] {
					dense[j] = x
					if x >= lo && x < hi {
						improvedInBucket.SetElement(j, x)
					}
				}
			})
			tm = improvedInBucket
		}
		b++
	}
	return t
}

// pagerank is LAGraph's PR: full-vector operations only. The structural
// plus_first SpMV touches only the adjacency pattern; contributions are
// prescaled by out-degree, so this is exactly the paper's "plus-second"
// formulation under this package's operand orientation.
func pagerank(exec *par.Machine, m *matrices, workers int) *grb.Vector[float64] {
	n := m.at.NRows()
	if n == 0 {
		return grb.NewFull[float64](0, 0)
	}
	s := grb.PlusFirst()
	base := (1 - kernel.PRDamping) / float64(n)
	r := grb.NewFull(n, 1/float64(n))
	w := grb.NewFull[float64](n, 0)
	// One scratch result vector reused across iterations via MxVFullInto —
	// the per-round Dense() materialization the gapvet perf lint flagged is
	// now a pointer swap.
	next := grb.NewFull[float64](n, 0)

	for it := 0; it < kernel.PRMaxIters; it++ {
		if exec.Interrupted() {
			return r // partial; the harness discards cancelled trials
		}
		rd := r.Dense()
		wd := w.Dense()
		dangling := 0.0
		for i := grb.Index(0); i < n; i++ {
			if m.degree[i] > 0 {
				wd[i] = rd[i] / m.degree[i]
			} else {
				wd[i] = 0
				dangling += rd[i]
			}
		}
		danglingShare := kernel.PRDamping * dangling / float64(n)
		grb.MxVFullInto(exec, m.at, w, s, next, workers)
		nd := next.Dense()
		var diff float64
		for i := grb.Index(0); i < n; i++ {
			nd[i] = base + danglingShare + kernel.PRDamping*nd[i]
			diff += math.Abs(nd[i] - rd[i])
		}
		r, next = next, r
		if diff < kernel.PRTolerance {
			break
		}
	}
	return r
}

// fastSV is the FastSV connected-components algorithm (Zhang, Azad, Hu —
// §III-A) in GraphBLAS form: each round takes the minimum neighbor label
// with a min_second product, hooks grandparents with the scatter-min kernel
// LAGraph had to hand-roll (§V-C), and shortcuts by pointer jumping, until
// the label vector reaches a fixed point.
func fastSV(exec *par.Machine, und *grb.Matrix, workers int) *grb.Vector[int64] {
	n := und.NRows()
	s := grb.MinFirst()
	f := grb.NewFull[int64](n, 0)
	fd := f.Dense()
	for i := range fd {
		fd[i] = int64(i)
	}
	if n == 0 {
		return f
	}
	gp := append([]int64(nil), fd...) // grandparent snapshot
	// Round-loop scratch hoisted out of the loop: the min-neighbor vector is
	// recomputed in place via MxVFullInto (every position is overwritten) and
	// the scatter-min operand slices are refilled, not reallocated.
	mngp := grb.NewFull[int64](n, s.Monoid.Identity)
	md := mngp.Dense()
	idx := make([]int64, n)
	val := make([]int64, n)

	for {
		if exec.Interrupted() {
			return f // partial; the harness discards cancelled trials
		}
		// mngp[v] = min_{u in N(v)} f[u] (isolated vertices keep MaxInt64).
		grb.MxVFullInto(exec, und, f, s, mngp, workers)

		// Stochastic hooking: f[gp[v]] = min(f[gp[v]], mngp[v]).
		for v := grb.Index(0); v < n; v++ {
			idx[v] = gp[v]
			val[v] = md[v]
		}
		grb.ScatterMin(f, idx, val)

		// Aggressive hooking + shortcutting: f[v] = min(f[v], mngp[v], gp[v]).
		for v := grb.Index(0); v < n; v++ {
			x := fd[v]
			if md[v] < x {
				x = md[v]
			}
			if gp[v] < x {
				x = gp[v]
			}
			fd[v] = x
		}

		// New grandparents; converged when they stop changing.
		changed := false
		for v := grb.Index(0); v < n; v++ {
			ng := fd[fd[v]]
			if ng != gp[v] {
				changed = true
			}
			gp[v] = ng
		}
		// Pointer jump once per round (FastSV's shortcut step).
		for v := grb.Index(0); v < n; v++ {
			fd[v] = gp[v]
		}
		if !changed {
			break
		}
	}
	return f
}

// betweenness is LAGraph's batch Brandes, batched for real: all roots
// advance together as one dense k-by-n matrix (§V-E: "most of the
// operations are matrix-matrix, where one matrix is dense and 4-by-n").
// The forward sweep is a masked dense-times-sparse product per level that
// accumulates per-root path counts; the backward sweep runs the same
// product over A' against the recorded per-root level structures.
func betweenness(exec *par.Machine, m *matrices, sources []grb.Index, workers int) []float64 {
	n := m.a.NRows()
	k := len(sources)
	scores := make([]float64, n)
	if n == 0 || k == 0 {
		return scores
	}

	// sigma[r] accumulates per-root path counts; visited[r] masks the
	// frontier; levels[r][d] is the bitset of vertices at depth d.
	sigma := grb.NewDenseMatrix(k, n)
	visited := make([]*grb.Bitset, k)
	levels := make([][]*grb.Bitset, k)
	frontier := grb.NewDenseMatrix(k, n)
	for r, src := range sources {
		visited[r] = grb.NewBitset(n)
		visited[r].Set(src)
		sigma.Set(r, src, 1)
		frontier.Set(r, src, 1)
		lvl := grb.NewBitset(n)
		lvl.Set(src)
		levels[r] = append(levels[r], lvl)
	}

	// Per-root complement masks built once for the whole forward phase: each
	// wraps the live visited[r] bitset, so in-place updates flow through and
	// the mask factory allocates nothing on the workers' hot path.
	fwdMasks := make([]*grb.Mask, k)
	for r := range fwdMasks {
		fwdMasks[r] = grb.NewMask(visited[r], true)
	}
	// Per-root Beamer accounting: each root row of the batch flips between the
	// scatter and the survivor-gather direction on its own schedule.
	states := make([]*grb.PushPullState, k)
	for r := range states {
		states[r] = grb.NewPushPullState(m.a, grb.DirAuto)
	}

	// Forward: one batched product per global level until every root's
	// frontier is empty.
	for frontier.NVals() > 0 {
		if exec.Interrupted() {
			return scores // partial scores; the harness discards cancelled trials
		}
		next := grb.DenseMxMDir(exec, frontier, m.a, m.at, func(r int) *grb.Mask {
			return fwdMasks[r]
		}, states, workers)
		for r := 0; r < k; r++ {
			lvl := grb.NewBitset(n)
			pres := next.RowStructure(r)
			vals := next.RowValues(r)
			sv := sigma.RowValues(r)
			for c := grb.Index(0); c < n; c++ {
				if pres.Get(c) {
					sv[c] += vals[c]
					sigma.RowStructure(r).Set(c)
					visited[r].Set(c)
					lvl.Set(c)
				}
			}
			levels[r] = append(levels[r], lvl)
		}
		frontier = next
	}

	// Backward: per global depth (deepest first), one batched product over
	// A' pushes dependency shares from each root's level-d vertices to its
	// level-(d-1) parents.
	maxDepth := 0
	for r := 0; r < k; r++ {
		if len(levels[r]) > maxDepth {
			maxDepth = len(levels[r])
		}
	}
	delta := make([][]float64, k)
	for r := range delta {
		delta[r] = make([]float64, n)
	}
	// One shared all-absent mask for roots whose level structure is already
	// exhausted: hoisted out of the mask factory so DenseMxM does not allocate
	// an O(n/64) bitset per row per depth (it is never written, so sharing it
	// across rows and depths is safe).
	emptyMask := grb.NewMask(grb.NewBitset(n), false)
	// Per-root parent-level masks, rebuilt sequentially each depth so the
	// mask factory allocates nothing on the workers' hot path.
	bwdMasks := make([]*grb.Mask, k)
	for d := maxDepth - 1; d >= 1; d-- {
		w := grb.NewDenseMatrix(k, n)
		for r := 0; r < k; r++ {
			if d-1 < len(levels[r]) {
				bwdMasks[r] = grb.NewMask(levels[r][d-1], false)
			} else {
				bwdMasks[r] = emptyMask // all-absent: allows nothing
			}
			if d >= len(levels[r]) {
				continue
			}
			lvl := levels[r][d]
			sv := sigma.RowValues(r)
			for c := grb.Index(0); c < n; c++ {
				if lvl.Get(c) {
					w.Set(r, c, (1+delta[r][c])/sv[c])
				}
			}
		}
		t := grb.DenseMxM(exec, w, m.at, func(r int) *grb.Mask {
			return bwdMasks[r]
		}, workers)
		for r := 0; r < k; r++ {
			pres := t.RowStructure(r)
			vals := t.RowValues(r)
			sv := sigma.RowValues(r)
			for c := grb.Index(0); c < n; c++ {
				if pres.Get(c) {
					delta[r][c] += sv[c] * vals[c]
				}
			}
		}
	}
	for r, src := range sources {
		for v := grb.Index(0); v < n; v++ {
			if v != src {
				scores[v] += delta[r][v]
			}
		}
	}

	maxScore := 0.0
	for _, x := range scores {
		if x > maxScore {
			maxScore = x
		}
	}
	if maxScore > 0 {
		for i := range scores {
			scores[i] /= maxScore
		}
	}
	return scores
}

// triangleCount is the LAGraph TC of §III-A: L = tril(A,-1), U = triu(A,1),
// C<L> = L*U' over plus_pair, then reduce C to a scalar. The value matrix is
// materialized and then discarded, the unfused cost §V-F quantifies at ~2x.
func triangleCount(exec *par.Machine, und *grb.Matrix, workers int) int64 {
	l := und.Tril(-1)
	u := und.Triu(1)
	return grb.MxMPlusPairReduce(exec, l, u, workers)
}

// LocalClustering is an extension algorithm in the LAGraph spirit ("a
// community effort to collect graph algorithms built on top of the
// GraphBLAS"): per-vertex local clustering coefficients computed with the
// same masked L*U' plus_pair machinery as the triangle count. For vertex v,
// triangles through v are recovered from the per-edge intersection counts of
// C<L> = L*U': each triangle {a<b<c} contributes its count on edge (c,b) of
// L, and every triangle touches its three corners once.
func LocalClustering(exec *par.Machine, und *grb.Matrix, workers int) []float64 {
	n := und.NRows()
	l := und.Tril(-1)
	u := und.Triu(1)
	_ = workers // the corner attribution below is a serial reduction
	// Per-vertex triangle counts from the structure of C<L> = L*U': the
	// intersection of L's row c with U's row b enumerates the triangles
	// {w, b, c} with w < b < c, and each match credits all three corners.
	tri := make([]float64, n)
	for c := grb.Index(0); c < n; c++ {
		lc, _ := l.Row(c)
		for _, b := range lc {
			ub, _ := u.Row(b)
			i, j := 0, 0
			for i < len(lc) && j < len(ub) {
				switch {
				case lc[i] < ub[j]:
					i++
				case lc[i] > ub[j]:
					j++
				default:
					w := lc[i]
					tri[c]++
					tri[b]++
					tri[w]++
					i++
					j++
				}
			}
		}
	}
	out := make([]float64, n)
	for v := grb.Index(0); v < n; v++ {
		d := float64(und.RowDegree(v))
		if d >= 2 {
			out[v] = 2 * tri[v] / (d * (d - 1))
		}
	}
	return out
}

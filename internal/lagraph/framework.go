// Package lagraph reproduces the LAGraph algorithm collection the paper
// benchmarks on top of SuiteSparse:GraphBLAS: the six GAP kernels expressed
// purely as sparse-linear-algebra operations from internal/grb. Each
// algorithm's semiring matches §III-A: any_secondi BFS, min-plus SSSP,
// FastSV CC, structural-Jacobi PR, batch Brandes BC, and the masked
// L*U' plus_pair triangle count.
package lagraph

import (
	"sync"

	"gapbench/internal/graph"
	"gapbench/internal/grb"
	"gapbench/internal/kernel"
)

// matrices is the cached GraphBLAS form of one input graph, built at load
// time like a LAGraph_Graph: the adjacency matrix, its transpose, a weighted
// copy for SSSP, and the symmetrized matrix for CC/TC.
type matrices struct {
	a      *grb.Matrix // out-adjacency, structural
	at     *grb.Matrix // in-adjacency (transpose), structural
	aw     *grb.Matrix // out-adjacency with weights
	und    *grb.Matrix // symmetrized, structural
	degree []float64   // out-degrees as float64 (PR divides by them)
}

// Framework is the SuiteSparse GraphBLAS + LAGraph reproduction.
type Framework struct {
	mu    sync.Mutex
	cache map[*graph.Graph]*matrices
}

// New returns the GraphBLAS/LAGraph framework.
func New() *Framework {
	return &Framework{cache: make(map[*graph.Graph]*matrices)}
}

// Name implements kernel.Framework.
func (*Framework) Name() string { return "SuiteSparse" }

// Attributes returns the Table II row.
func (*Framework) Attributes() map[string]string {
	return map[string]string{
		"Type":                      "high-level library",
		"Internal Graph Data":       "outgoing & incoming edges w/ (opt.) hypersparsity",
		"Programming Abstraction":   "sparse linear algebra",
		"Execution Synchronization": "level-synchronous",
		"Intended Users":            "graph/matrix domain experts",
	}
}

// Algorithms returns the Table III row.
func (*Framework) Algorithms() kernel.Algorithms {
	return kernel.Algorithms{
		BFS:  "Direction-optimizing (any_secondi)",
		SSSP: "Delta-stepping (min_plus)",
		CC:   "FastSV (min_second)",
		PR:   "Jacobi SpMV (plus_second)",
		BC:   "Brandes (plus_first)",
		TC:   "L*U' masked plus_pair",
	}
}

var (
	_ kernel.Framework = (*Framework)(nil)
	_ kernel.Describer = (*Framework)(nil)
	_ kernel.Preparer  = (*Framework)(nil)
)

// Prepare converts the graph into GraphBLAS matrices once, untimed — the
// LAGraph_Graph construction that happens when a benchmark graph is loaded.
func (f *Framework) Prepare(g *graph.Graph, undirected *graph.Graph) {
	f.matrices(g, undirected)
}

// matrices returns the cached GraphBLAS form, building it on first use.
func (f *Framework) matrices(g *graph.Graph, undirected *graph.Graph) *matrices {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.cache[g]; ok {
		return m
	}
	if undirected == nil {
		undirected = g.Undirected()
	}
	m := &matrices{
		a:  grb.FromGraph(g, false, false),
		at: grb.FromGraph(g, true, false),
		aw: grb.FromGraph(g, false, true),
	}
	if g.Directed() {
		m.und = grb.FromGraph(undirected, false, false)
	} else {
		m.und = m.a
	}
	// Indexing stays 64-bit on the GraphBLAS side (the GAP spec's index-width
	// rule, enforced by gapvet); NodeID narrows only at the graph boundary.
	m.degree = make([]float64, g.NumNodes())
	for u := range m.degree {
		m.degree[u] = float64(g.OutDegree(graph.NodeID(u)))
	}
	f.cache[g] = m
	return m
}

// BFS implements kernel.Framework.
func (f *Framework) BFS(g *graph.Graph, src graph.NodeID, opt kernel.Options) []graph.NodeID {
	return f.BFSWithPolicy(g, src, opt, grb.DirAuto)
}

// BFSWithPolicy is BFS with the direction dispatch pinned (grb.DirPush /
// grb.DirPull) or freed (grb.DirAuto) — the hook the push-vs-pull crossover
// benchmarks use to measure each direction in isolation.
func (f *Framework) BFSWithPolicy(g *graph.Graph, src graph.NodeID, opt kernel.Options, policy grb.DirPolicy) []graph.NodeID {
	m := f.matrices(g, opt.UndirectedView)
	pi := bfsParents(opt.Exec(), m, grb.Index(src), policy, opt.EffectiveWorkers())
	// Export the 64-bit GraphBLAS vector into the shared 32-bit convention.
	out := make([]graph.NodeID, g.NumNodes())
	for i := range out {
		out[i] = -1
	}
	pi.Iterate(func(i grb.Index, p int64) { out[i] = graph.NodeID(p) })
	return out
}

// SSSP implements kernel.Framework.
func (f *Framework) SSSP(g *graph.Graph, src graph.NodeID, opt kernel.Options) []kernel.Dist {
	m := f.matrices(g, opt.UndirectedView)
	delta := opt.Delta
	if delta <= 0 {
		delta = 16
	}
	t := deltaStepping(opt.Exec(), m.aw, grb.Index(src), delta, opt.EffectiveWorkers())
	return append([]kernel.Dist(nil), t.Dense()...)
}

// PR implements kernel.Framework.
func (f *Framework) PR(g *graph.Graph, opt kernel.Options) []float64 {
	m := f.matrices(g, opt.UndirectedView)
	r := pagerank(opt.Exec(), m, opt.EffectiveWorkers())
	return append([]float64(nil), r.Dense()...)
}

// CC implements kernel.Framework.
func (f *Framework) CC(g *graph.Graph, opt kernel.Options) []graph.NodeID {
	m := f.matrices(g, opt.UndirectedView)
	fvec := fastSV(opt.Exec(), m.und, opt.EffectiveWorkers())
	out := make([]graph.NodeID, g.NumNodes())
	for i, v := range fvec.Dense() {
		out[i] = graph.NodeID(v)
	}
	return out
}

// BC implements kernel.Framework.
func (f *Framework) BC(g *graph.Graph, sources []graph.NodeID, opt kernel.Options) []float64 {
	m := f.matrices(g, opt.UndirectedView)
	srcs := make([]grb.Index, len(sources))
	for i, s := range sources {
		srcs[i] = grb.Index(s)
	}
	return betweenness(opt.Exec(), m, srcs, opt.EffectiveWorkers())
}

// TC implements kernel.Framework.
func (f *Framework) TC(g *graph.Graph, opt kernel.Options) int64 {
	m := f.matrices(g, opt.UndirectedView)
	und := m.und
	// Optional heuristic-driven permutation of A before the masked multiply
	// (§III-A: "preceded by an optional permutation of A, decided by a
	// heuristic"). In Optimized mode the pre-relabeled view is free.
	if opt.Mode == kernel.Optimized && opt.RelabeledView != nil {
		und = grb.FromGraph(opt.RelabeledView, false, false)
	} else if ug := opt.Undirected(g); graph.SkewedDegrees(ug) {
		rg, _ := graph.DegreeRelabel(ug)
		und = grb.FromGraph(rg, false, false)
	}
	return triangleCount(opt.Exec(), und, opt.EffectiveWorkers())
}

package lagraph

import (
	"testing"

	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/grb"
	"gapbench/internal/kernel"
	"gapbench/internal/ldbc"
	"gapbench/internal/par"
	"gapbench/internal/verify"
)

func prepared(t *testing.T, name string, scale int) (*Framework, *graph.Graph, *matrices) {
	t.Helper()
	g, err := generate.ByName(name, scale, 17)
	if err != nil {
		t.Fatal(err)
	}
	f := New()
	u := g.Undirected()
	f.Prepare(g, u)
	return f, g, f.matrices(g, u)
}

func TestMatricesCachedPerGraph(t *testing.T) {
	f, g, m := prepared(t, "Kron", 7)
	if again := f.matrices(g, nil); again != m {
		t.Fatal("matrices rebuilt for the same graph")
	}
	if m.a.NVals() != g.NumEdges() {
		t.Fatalf("A nvals = %d, graph edges = %d", m.a.NVals(), g.NumEdges())
	}
	if m.at.NVals() != m.a.NVals() {
		t.Fatal("A' nvals differs from A")
	}
	if m.aw.NVals() != m.a.NVals() {
		t.Fatal("weighted A nvals differs")
	}
	for u := int32(0); u < g.NumNodes(); u++ {
		if m.degree[u] != float64(g.OutDegree(u)) {
			t.Fatalf("degree[%d] wrong", u)
		}
	}
}

func TestUndirectedMatrixForDirectedGraphs(t *testing.T) {
	f, g, m := prepared(t, "Twitter", 7)
	_ = f
	if !g.Directed() {
		t.Fatal("twitter should be directed")
	}
	if m.und == m.a {
		t.Fatal("directed graph must get a separate symmetrized matrix")
	}
	// The symmetrized matrix must contain both directions of every edge.
	for u := grb.Index(0); u < m.a.NRows(); u++ {
		cols, _ := m.a.Row(u)
		for _, v := range cols {
			found := false
			back, _ := m.und.Row(v)
			for _, w := range back {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing reverse in symmetrized matrix", u, v)
			}
		}
	}
}

func TestBFSParentsVector(t *testing.T) {
	_, g, m := prepared(t, "Web", 7)
	src := grb.Index(0)
	for g.OutDegree(graph.NodeID(src)) == 0 {
		src++
	}
	pi := bfsParents(par.Default(), m, src, grb.DirAuto, 2)
	if p, ok := pi.Extract(src); !ok || p != int64(src) {
		t.Fatalf("source parent = %v,%v", p, ok)
	}
	// Convert and verify via the shared checker.
	out := make([]graph.NodeID, g.NumNodes())
	for i := range out {
		out[i] = -1
	}
	pi.Iterate(func(i grb.Index, p int64) { out[i] = graph.NodeID(p) })
	if err := verify.CheckBFS(g, graph.NodeID(src), out); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaSteppingAgainstDijkstra(t *testing.T) {
	_, g, m := prepared(t, "Road", 8)
	for _, delta := range []kernel.Dist{4, 64, 1024} {
		dist := deltaStepping(par.Default(), m.aw, 0, delta, 2)
		if err := verify.CheckSSSP(g, 0, dist.Dense()); err != nil {
			t.Fatalf("delta=%d: %v", delta, err)
		}
	}
}

func TestFastSVFixedPoint(t *testing.T) {
	_, g, m := prepared(t, "Kron", 8)
	f := fastSV(par.Default(), m.und, 2)
	labels := f.Dense()
	// Fixed point: every label is a root (f[f[v]] == f[v]) and labels are
	// minima over components (checked via the oracle).
	for v := range labels {
		if labels[labels[v]] != labels[v] {
			t.Fatalf("label of %d not a root", v)
		}
	}
	out := make([]graph.NodeID, len(labels))
	for i, l := range labels {
		out[i] = graph.NodeID(l)
	}
	if err := verify.CheckCC(g, out); err != nil {
		t.Fatal(err)
	}
	// FastSV converges to the minimum vertex id per component.
	comp := verify.Components(g)
	for v := range labels {
		if graph.NodeID(labels[v]) != comp[v] {
			t.Fatalf("label[%d] = %d, want min-id %d", v, labels[v], comp[v])
		}
	}
}

func TestTriangleCountMatchesOracle(t *testing.T) {
	_, g, m := prepared(t, "Urand", 7)
	want := verify.Triangles(g)
	if got := triangleCount(par.Default(), m.und, 2); got != want {
		t.Fatalf("triangles = %d, want %d", got, want)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	f, g, _ := prepared(t, "Twitter", 7)
	r := f.PR(g, kernel.Options{Workers: 2})
	if err := verify.CheckPR(g, r); err != nil {
		t.Fatal(err)
	}
}

func TestLocalClusteringMatchesLDBC(t *testing.T) {
	_, g, m := prepared(t, "Kron", 7)
	got := LocalClustering(par.Default(), m.und, 2)
	want := ldbc.LCC(g, 2)
	for v := range got {
		if diff := got[v] - want[v]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("lcc[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

package lagraph_test

import (
	"testing"

	"gapbench/internal/lagraph"
	"gapbench/internal/testutil"
)

func TestConformance(t *testing.T) {
	testutil.RunConformance(t, lagraph.New())
}

func TestDescribe(t *testing.T) {
	testutil.Describe(t, lagraph.New())
}

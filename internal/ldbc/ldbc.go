// Package ldbc implements the two LDBC Graphalytics kernels the paper's
// introduction contrasts with the GAP suite (§I): community detection using
// label propagation (CDLP) and local clustering coefficient (LCC). They
// extend the evaluation beyond the six GAP kernels the way the paper's
// "expand these data sets" future work suggests, reusing the same substrate,
// parallel helpers, and verification style.
package ldbc

import (
	"sort"

	"gapbench/internal/graph"
	"gapbench/internal/par"
)

// CDLP runs synchronous community detection by label propagation, following
// the LDBC Graphalytics specification: every vertex starts in its own
// community; each round every vertex adopts the most frequent label among
// its neighbors (over the undirected structure), breaking ties toward the
// smallest label; after maxRounds rounds the labels are the communities.
// The synchronous update with deterministic tie-breaking makes the result
// identical for any worker count.
func CDLP(g *graph.Graph, maxRounds, workers int) []graph.NodeID {
	n := int(g.NumNodes())
	labels := make([]graph.NodeID, n)
	next := make([]graph.NodeID, n)
	for i := range labels {
		labels[i] = graph.NodeID(i)
	}
	if n == 0 || maxRounds <= 0 {
		return labels
	}

	for round := 0; round < maxRounds; round++ {
		changed := par.ReduceInt64(n, workers, func(lo, hi int) int64 {
			counts := map[graph.NodeID]int{}
			var changedLocal int64
			for v := lo; v < hi; v++ {
				clear(counts)
				for _, u := range g.OutNeighbors(graph.NodeID(v)) {
					counts[labels[u]]++
				}
				if g.Directed() {
					for _, u := range g.InNeighbors(graph.NodeID(v)) {
						counts[labels[u]]++
					}
				}
				best := labels[v]
				bestCount := 0
				for l, c := range counts {
					if c > bestCount || (c == bestCount && l < best) {
						best, bestCount = l, c
					}
				}
				if bestCount == 0 {
					best = labels[v] // isolated vertex keeps its label
				}
				next[v] = best
				if best != labels[v] {
					changedLocal++
				}
			}
			return changedLocal
		})
		labels, next = next, labels
		if changed == 0 {
			break
		}
	}
	return labels
}

// CDLPSerial is the oracle implementation: one goroutine, same semantics.
func CDLPSerial(g *graph.Graph, maxRounds int) []graph.NodeID {
	return CDLP(g, maxRounds, 1)
}

// LCC computes each vertex's local clustering coefficient over the
// undirected structure: the number of edges among its neighbors divided by
// deg*(deg-1)/2. Vertices of degree < 2 score 0, per the LDBC convention.
func LCC(g *graph.Graph, workers int) []float64 {
	u := g.Undirected()
	n := int(u.NumNodes())
	out := make([]float64, n)
	par.ForDynamic(n, 64, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			neigh := u.OutNeighbors(graph.NodeID(v))
			d := len(neigh)
			if d < 2 {
				continue
			}
			// Count edges among neighbors: for each neighbor a, intersect
			// its adjacency with neigh (both sorted). Each neighbor edge
			// {a,b} is seen twice (from a and from b).
			var links int64
			for _, a := range neigh {
				links += intersectCount(neigh, u.OutNeighbors(a))
			}
			out[v] = float64(links) / float64(d*(d-1))
		}
	})
	return out
}

// LCCSerial is the oracle implementation.
func LCCSerial(g *graph.Graph) []float64 { return LCC(g, 1) }

// GlobalClustering summarizes LCC into the average local clustering
// coefficient (the statistic the Web graph generator's locality shows up
// in).
func GlobalClustering(g *graph.Graph, workers int) float64 {
	scores := LCC(g, workers)
	if len(scores) == 0 {
		return 0
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	return sum / float64(len(scores))
}

// CommunitySizes returns the community sizes of a labeling, descending.
func CommunitySizes(labels []graph.NodeID) []int {
	counts := map[graph.NodeID]int{}
	for _, l := range labels {
		counts[l]++
	}
	sizes := make([]int, 0, len(counts))
	for _, c := range counts {
		sizes = append(sizes, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// intersectCount counts common elements of two sorted lists.
func intersectCount(x, y []graph.NodeID) int64 {
	var count int64
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

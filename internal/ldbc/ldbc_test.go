package ldbc_test

import (
	"math"
	"testing"
	"testing/quick"

	"gapbench/internal/generate"
	"gapbench/internal/graph"
	"gapbench/internal/ldbc"
	"gapbench/internal/verify"
)

func build(t *testing.T, edges []graph.Edge, n int32, directed bool) *graph.Graph {
	t.Helper()
	g, err := graph.Build(edges, graph.BuildOptions{NumNodes: n, Directed: directed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCDLPTwoCliques(t *testing.T) {
	// Two 4-cliques joined by one bridge edge: two communities emerge.
	var edges []graph.Edge
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{U: i, V: j}, graph.Edge{U: i + 4, V: j + 4})
		}
	}
	edges = append(edges, graph.Edge{U: 3, V: 4})
	g := build(t, edges, 8, false)
	labels := ldbc.CDLP(g, 10, 2)
	for v := int32(1); v < 4; v++ {
		if labels[v] != labels[0] {
			t.Fatalf("clique 1 split: %v", labels)
		}
	}
	for v := int32(5); v < 8; v++ {
		if labels[v] != labels[4] {
			t.Fatalf("clique 2 split: %v", labels)
		}
	}
	if labels[0] == labels[4] {
		t.Fatalf("cliques merged: %v", labels)
	}
	sizes := ldbc.CommunitySizes(labels)
	if len(sizes) != 2 || sizes[0] != 4 || sizes[1] != 4 {
		t.Fatalf("community sizes = %v", sizes)
	}
}

func TestCDLPDeterministicAcrossWorkers(t *testing.T) {
	g, err := generate.Twitter(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := ldbc.CDLP(g, 5, 1)
	b := ldbc.CDLP(g, 5, 4)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("labels differ at %d: synchronous CDLP must be deterministic", v)
		}
	}
}

func TestCDLPIsolatedAndEmpty(t *testing.T) {
	g := build(t, nil, 3, false)
	labels := ldbc.CDLP(g, 5, 2)
	for v, l := range labels {
		if l != graph.NodeID(v) {
			t.Fatalf("isolated vertex %d changed label to %d", v, l)
		}
	}
	empty := build(t, nil, 0, false)
	if got := ldbc.CDLP(empty, 5, 2); len(got) != 0 {
		t.Fatal("empty graph produced labels")
	}
}

func TestLCCKnownValues(t *testing.T) {
	// Triangle with a pendant: vertices 0,1 have neighbors {1,2}/{0,2}
	// fully linked (LCC 1); vertex 2 has neighbors {0,1,3} with one link of
	// three possible (LCC 1/3); pendant 3 scores 0.
	g := build(t, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}}, 4, false)
	lcc := ldbc.LCC(g, 2)
	want := []float64{1, 1, 1.0 / 3, 0}
	for v, w := range want {
		if math.Abs(lcc[v]-w) > 1e-12 {
			t.Fatalf("lcc[%d] = %v, want %v", v, lcc[v], w)
		}
	}
}

func TestLCCCliqueIsAllOnes(t *testing.T) {
	var edges []graph.Edge
	for i := int32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	g := build(t, edges, 6, false)
	for v, s := range ldbc.LCC(g, 3) {
		if s != 1 {
			t.Fatalf("clique lcc[%d] = %v", v, s)
		}
	}
}

// Property: the sum of LCC numerators equals 3x triangle count relation:
// sum over v of lcc[v]*C(deg,2) counts each triangle exactly 3 times.
func TestLCCTriangleIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := generate.Kron(6, seed)
		if err != nil {
			return false
		}
		u := g.Undirected()
		lcc := ldbc.LCC(u, 2)
		var weighted float64
		for v, s := range lcc {
			d := float64(u.OutDegree(graph.NodeID(v)))
			weighted += s * d * (d - 1) / 2
		}
		return math.Abs(weighted-3*float64(verify.Triangles(u))) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	g, err := generate.Web(8, 7)
	if err != nil {
		t.Fatal(err)
	}
	ls, lp := ldbc.CDLPSerial(g, 6), ldbc.CDLP(g, 6, 4)
	for v := range ls {
		if ls[v] != lp[v] {
			t.Fatalf("CDLP parallel/serial differ at %d", v)
		}
	}
	ss, sp := ldbc.LCCSerial(g), ldbc.LCC(g, 4)
	for v := range ss {
		if math.Abs(ss[v]-sp[v]) > 1e-12 {
			t.Fatalf("LCC parallel/serial differ at %d", v)
		}
	}
}

func TestWebMoreClusteredThanUrand(t *testing.T) {
	// The Web generator's host locality must show up as clustering well
	// above the Erdős–Rényi baseline — the §V-D "Web had good locality"
	// signature.
	web, err := generate.Web(10, 42)
	if err != nil {
		t.Fatal(err)
	}
	ur, err := generate.Urand(10, 42)
	if err != nil {
		t.Fatal(err)
	}
	cw := ldbc.GlobalClustering(web, 2)
	cu := ldbc.GlobalClustering(ur, 2)
	if cw < 3*cu {
		t.Fatalf("web clustering %.4f not well above urand %.4f", cw, cu)
	}
}
